#!/usr/bin/env bash
# Repository lint, two tiers:
#
#   1. grep audits (always run, and the whole story under --grep-only):
#      keep the benchmark apps honest — every app must go through the
#      dfth_pthread.h shims and the tracked heap (df_malloc/df_free), never
#      raw pthreads or untracked allocation, or the space measurements the
#      apps exist for are silently wrong. Core layers must not use raw stdio.
#   2. structural analysis (skipped under --grep-only, or when the tool is
#      missing): dfth-check — the fiber-aware analyzer in tools/dfth-check —
#      over src/apps, src/compat, bench and examples, then clang-tidy driven
#      by build/compile_commands.json (exported unconditionally by the
#      top-level CMakeLists).
#
# --grep-only exists for machines with no build tree: the audits need only
# sed/grep, so CI bootstrap legs and pre-commit hooks can still run them.
set -u

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
cd "$repo_root"
status=0

grep_only=0
for arg in "$@"; do
  case "$arg" in
    --grep-only) grep_only=1 ;;
    *) echo "usage: $0 [--grep-only]" >&2; exit 2 ;;
  esac
done

# ---- 1. bypass audit --------------------------------------------------------
app_files=$(find src/apps -name '*.cpp' -o -name '*.h')
# tests/check/fixtures deliberately contains the violations dfth-check is
# tested against (raw pthread_mutex_lock, sleep, ...) — not audit targets.
aux_files=$(find tests bench -path tests/check/fixtures -prune -o \
            \( -name '*.cpp' -o -name '*.h' \) -print)

# Greps the given sources with // comments stripped, so prose like "forks a
# new thread" in a comment doesn't trip the allocation check. First argument
# is the file list, second is the pattern.
audit_grep() {
  local files="$1" pattern="$2" f out found=1
  for f in $files; do
    out=$(sed 's|//.*||' "$f" | grep -nE "$pattern")
    if [ -n "$out" ]; then
      printf '%s\n' "$out" | sed "s|^|$f:|"
      found=0
    fi
  done
  return $found
}

# Raw pthread usage (the apps must use the dfth_pthread.h shims). dfth-check
# refines this below — it knows which calls block and which code runs on a
# fiber — but the grep keeps even non-blocking raw pthread out of the apps.
if audit_grep "$app_files" '\bpthread_[a-z_]+[[:space:]]*\('; then
  echo "lint: raw pthread_* call in src/apps (use compat/dfth_pthread.h)" >&2
  status=1
fi

# Apps must not sidestep the runtime with kernel threads either: std::thread
# workers are invisible to the scheduler, the space accounting, and the
# fork/join DAG the race detector reasons over.
if audit_grep "$app_files" '\bstd::thread\b'; then
  echo "lint: std::thread in src/apps (use dfth::spawn/join)" >&2
  status=1
fi

# Untracked heap allocation. Placement-new is fine (constructs in storage
# the tracked heap already accounts for); allocating new/new[] is not.
if audit_grep "$app_files" '\b(malloc|calloc|realloc|free)[[:space:]]*\('; then
  echo "lint: raw malloc/free in src/apps (use df_malloc/df_free)" >&2
  status=1
fi
if audit_grep "$app_files" '\bnew\b' | grep -vE 'new[[:space:]]*\('; then
  echo "lint: allocating new in src/apps (use df_malloc or placement-new)" >&2
  status=1
fi

# Tests and benchmarks go through the shims and tracked heap too, or the
# suites stop exercising the code paths they exist to cover. (std::thread is
# allowed there: harness code that drives the runtime from outside — and the
# fig03 kernel-thread reference column — legitimately needs it.)
if audit_grep "$aux_files" '\bpthread_[a-z_]+[[:space:]]*\('; then
  echo "lint: raw pthread_* call in tests/bench (use compat/dfth_pthread.h)" >&2
  status=1
fi
if audit_grep "$aux_files" '\b(malloc|calloc|realloc|free)[[:space:]]*\('; then
  echo "lint: raw malloc/free in tests/bench (use df_malloc/df_free)" >&2
  status=1
fi

# The engine and scheduler layers must report through util/log.h and the
# obs tracer/counters, never ad-hoc stdio: raw prints bypass the log-level
# gate and corrupt the machine-readable output the bench/CI pipeline parses.
core_files=$(find src/core src/runtime -name '*.cpp' -o -name '*.h')
if audit_grep "$core_files" '\b(printf|fprintf|puts|fputs)[[:space:]]*\(|std::(cout|cerr)\b'; then
  echo "lint: raw stdio in src/core or src/runtime (use DFTH_LOG_* or obs/)" >&2
  status=1
fi

# Same rule for the observability, resilience and replay layers, minus the
# designated stdio sinks: obs/export.cpp IS the file writer the pipeline
# parses, resil/watchdog.cpp must dump its flight recorder to stderr from an
# async-signal path where the logger is off the table, and replay/log.cpp is
# the schedule-log reader/writer (binary file I/O, same standing as
# export.cpp).
obs_files=$(find src/obs src/resil src/replay \
            \( -path src/obs/export.cpp -o -path src/resil/watchdog.cpp \
               -o -path src/replay/log.cpp \) \
            -prune -o \( -name '*.cpp' -o -name '*.h' \) -print)
if audit_grep "$obs_files" '\b(printf|fprintf|puts|fputs)[[:space:]]*\(|std::(cout|cerr)\b'; then
  echo "lint: raw stdio in src/obs, src/resil or src/replay (use DFTH_LOG_* — only export.cpp, watchdog.cpp and replay/log.cpp are stdio sinks)" >&2
  status=1
fi

# The replay layer must not sidestep the runtime it is recording: no raw
# pthread primitives (its own locks are std:: on host threads by design, but
# pthread_* would bypass the compat shims' accounting elsewhere) and no
# untracked allocation of log buffers.
replay_files=$(find src/replay -name '*.cpp' -o -name '*.h')
if audit_grep "$replay_files" '\bpthread_[a-z_]+[[:space:]]*\('; then
  echo "lint: raw pthread_* call in src/replay" >&2
  status=1
fi

# The serving layer holds the same line as the engines it fronts: no raw
# stdio (everything it measures flows through ServeReport counters into the
# bench JSON the CI serve leg parses), no raw pthread primitives (handlers
# and the pump run on fibers — blocking a kernel thread stalls a whole
# lane), and no untracked allocation (request payloads must charge the
# tracked heap or the admission budget it enforces is fiction).
serve_files=$(find src/serve -name '*.cpp' -o -name '*.h')
if audit_grep "$serve_files" '\b(printf|fprintf|puts|fputs)[[:space:]]*\(|std::(cout|cerr)\b'; then
  echo "lint: raw stdio in src/serve (use DFTH_LOG_* or ServeReport counters)" >&2
  status=1
fi
if audit_grep "$serve_files" '\bpthread_[a-z_]+[[:space:]]*\('; then
  echo "lint: raw pthread_* call in src/serve (use runtime/sync.h)" >&2
  status=1
fi
if audit_grep "$serve_files" '\b(malloc|calloc|realloc|free)[[:space:]]*\('; then
  echo "lint: raw malloc/free in src/serve (use df_malloc/df_free)" >&2
  status=1
fi

if [ "$status" -eq 0 ]; then
  echo "lint: allocation/threading/stdio audit clean (src/apps, src/core, src/runtime, src/obs, src/resil, src/replay, src/serve, tests, bench)"
fi

if [ "$grep_only" -eq 1 ]; then
  echo "lint: --grep-only, skipping dfth-check and clang-tidy"
  exit $status
fi

# ---- 2. dfth-check (fiber-aware static analysis) ----------------------------
# Blocking calls on fibers, unannotated shared writes, fiber-stack escapes,
# and lock-order cycles. One combined invocation: fiber reachability crosses
# TU boundaries (bench lambdas call into src/apps).
dfth_check=build/tools/dfth-check/dfth-check
if [ -x "$dfth_check" ]; then
  if ! "$dfth_check" src/apps src/compat bench examples; then
    echo "lint: dfth-check reported findings" >&2
    status=1
  else
    echo "lint: dfth-check clean (src/apps, src/compat, bench, examples)"
  fi
else
  echo "lint: dfth-check not built ($dfth_check missing), skipping fiber analysis"
fi

# ---- 3. clang-tidy (optional: skipped when not installed) -------------------
if command -v clang-tidy >/dev/null 2>&1; then
  # The top-level CMakeLists sets CMAKE_EXPORT_COMPILE_COMMANDS, so any
  # configured build tree has the database; configure one if none exists yet.
  if [ ! -f build/compile_commands.json ]; then
    cmake -B build -S . >/dev/null
  fi
  tidy_files=$(find src -name '*.cpp' ! -name 'context_x86_64*')
  if ! clang-tidy -p build --quiet $tidy_files; then
    echo "lint: clang-tidy reported errors" >&2
    status=1
  fi
else
  echo "lint: clang-tidy not installed, skipping static analysis"
fi

exit $status
