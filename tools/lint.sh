#!/usr/bin/env bash
# Repository lint: clang-tidy (when installed) over the library sources plus
# a grep audit that keeps the benchmark apps honest — every app must go
# through the dfth_pthread.h shims and the tracked heap (df_malloc/df_free),
# never raw pthreads or untracked allocation, or the space measurements the
# apps exist for are silently wrong.
set -u

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
cd "$repo_root"
status=0

# ---- 1. app-layer bypass audit ---------------------------------------------
app_files=$(find src/apps -name '*.cpp' -o -name '*.h')

# Greps the app sources with // comments stripped, so prose like "forks a
# new thread" in a comment doesn't trip the allocation check.
app_grep() {
  local pattern="$1" f out found=1
  for f in $app_files; do
    out=$(sed 's|//.*||' "$f" | grep -nE "$pattern")
    if [ -n "$out" ]; then
      printf '%s\n' "$out" | sed "s|^|$f:|"
      found=0
    fi
  done
  return $found
}

# Raw pthread usage (the apps must use the dfth_pthread.h shims).
if app_grep '\bpthread_[a-z_]+[[:space:]]*\('; then
  echo "lint: raw pthread_* call in src/apps (use compat/dfth_pthread.h)" >&2
  status=1
fi

# Untracked heap allocation. Placement-new is fine (constructs in storage
# the tracked heap already accounts for); allocating new/new[] is not.
if app_grep '\b(malloc|calloc|realloc|free)[[:space:]]*\('; then
  echo "lint: raw malloc/free in src/apps (use df_malloc/df_free)" >&2
  status=1
fi
if app_grep '\bnew\b' | grep -vE 'new[[:space:]]*\('; then
  echo "lint: allocating new in src/apps (use df_malloc or placement-new)" >&2
  status=1
fi

if [ "$status" -eq 0 ]; then
  echo "lint: app-layer allocation/threading audit clean"
fi

# ---- 2. clang-tidy (optional: skipped when not installed) -------------------
if command -v clang-tidy >/dev/null 2>&1; then
  if [ ! -f build/compile_commands.json ]; then
    cmake -B build -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
  fi
  tidy_files=$(find src -name '*.cpp' ! -name 'context_x86_64*')
  if ! clang-tidy -p build --quiet $tidy_files; then
    echo "lint: clang-tidy reported errors" >&2
    status=1
  fi
else
  echo "lint: clang-tidy not installed, skipping static analysis"
fi

exit $status
