#!/usr/bin/env bash
# Repository lint: clang-tidy (when installed) over the library sources plus
# a grep audit that keeps the benchmark apps honest — every app must go
# through the dfth_pthread.h shims and the tracked heap (df_malloc/df_free),
# never raw pthreads or untracked allocation, or the space measurements the
# apps exist for are silently wrong.
set -u

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
cd "$repo_root"
status=0

# ---- 1. bypass audit --------------------------------------------------------
app_files=$(find src/apps -name '*.cpp' -o -name '*.h')
aux_files=$(find tests bench -name '*.cpp' -o -name '*.h')

# Greps the given sources with // comments stripped, so prose like "forks a
# new thread" in a comment doesn't trip the allocation check. First argument
# is the file list, second is the pattern.
audit_grep() {
  local files="$1" pattern="$2" f out found=1
  for f in $files; do
    out=$(sed 's|//.*||' "$f" | grep -nE "$pattern")
    if [ -n "$out" ]; then
      printf '%s\n' "$out" | sed "s|^|$f:|"
      found=0
    fi
  done
  return $found
}

# Raw pthread usage (the apps must use the dfth_pthread.h shims).
if audit_grep "$app_files" '\bpthread_[a-z_]+[[:space:]]*\('; then
  echo "lint: raw pthread_* call in src/apps (use compat/dfth_pthread.h)" >&2
  status=1
fi

# Apps must not sidestep the runtime with kernel threads either: std::thread
# workers are invisible to the scheduler, the space accounting, and the
# fork/join DAG the race detector reasons over.
if audit_grep "$app_files" '\bstd::thread\b'; then
  echo "lint: std::thread in src/apps (use dfth::spawn/join)" >&2
  status=1
fi

# Untracked heap allocation. Placement-new is fine (constructs in storage
# the tracked heap already accounts for); allocating new/new[] is not.
if audit_grep "$app_files" '\b(malloc|calloc|realloc|free)[[:space:]]*\('; then
  echo "lint: raw malloc/free in src/apps (use df_malloc/df_free)" >&2
  status=1
fi
if audit_grep "$app_files" '\bnew\b' | grep -vE 'new[[:space:]]*\('; then
  echo "lint: allocating new in src/apps (use df_malloc or placement-new)" >&2
  status=1
fi

# Tests and benchmarks go through the shims and tracked heap too, or the
# suites stop exercising the code paths they exist to cover. (std::thread is
# allowed there: harness code that drives the runtime from outside — and the
# fig03 kernel-thread reference column — legitimately needs it.)
if audit_grep "$aux_files" '\bpthread_[a-z_]+[[:space:]]*\('; then
  echo "lint: raw pthread_* call in tests/bench (use compat/dfth_pthread.h)" >&2
  status=1
fi
if audit_grep "$aux_files" '\b(malloc|calloc|realloc|free)[[:space:]]*\('; then
  echo "lint: raw malloc/free in tests/bench (use df_malloc/df_free)" >&2
  status=1
fi

# The engine and scheduler layers must report through util/log.h and the
# obs tracer/counters, never ad-hoc stdio: raw prints bypass the log-level
# gate and corrupt the machine-readable output the bench/CI pipeline parses.
core_files=$(find src/core src/runtime -name '*.cpp' -o -name '*.h')
if audit_grep "$core_files" '\b(printf|fprintf|puts|fputs)[[:space:]]*\(|std::(cout|cerr)\b'; then
  echo "lint: raw stdio in src/core or src/runtime (use DFTH_LOG_* or obs/)" >&2
  status=1
fi

if [ "$status" -eq 0 ]; then
  echo "lint: allocation/threading/stdio audit clean (src/apps, src/core, src/runtime, tests, bench)"
fi

# ---- 2. clang-tidy (optional: skipped when not installed) -------------------
if command -v clang-tidy >/dev/null 2>&1; then
  if [ ! -f build/compile_commands.json ]; then
    cmake -B build -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
  fi
  tidy_files=$(find src -name '*.cpp' ! -name 'context_x86_64*')
  if ! clang-tidy -p build --quiet $tidy_files; then
    echo "lint: clang-tidy reported errors" >&2
    status=1
  fi
else
  echo "lint: clang-tidy not installed, skipping static analysis"
fi

exit $status
