// dfth-trace: offline summaries of the JSON artifacts the runtime writes.
// Every writer emits one record per line with a fixed key order, so this
// tool parses with plain string scanning — the toolchain has no JSON
// library, and none is needed.
//
//   dfth-trace summary trace.json [--top N]
//   dfth-trace --serve BENCH_serve_soak.json
//
// `summary` reads a Chrome-trace file from obs/export.h
// (write_chrome_trace): events by kind, the ring-overflow drop count,
// per-lane occupancy, the dispatch-gap distribution (p50/p99/p999 plus the
// longest gaps — idle stretches between consecutive slices on a lane), the
// largest traced allocations, and the ready-queue / live-thread peaks from
// the counter tracks.
//
// `--serve` reads the bench/serve_soak report (DESIGN.md §12): per pass it
// prints the request outcome breakdown against the exactly-once invariant,
// the server-side rejection reasons, shed-tier activity, peak tracked RSS
// against the admission budget, the per-endpoint latency table, and the
// admission-headroom time series folded into a tier-residency summary.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <string>
#include <vector>

namespace {

struct Event {
  std::string name;
  char ph = 0;
  int lane = -1;
  double ts_us = 0;
  double dur_us = 0;
  std::int64_t arg = 0;     // args.arg (instants)
  std::int64_t live = -1;   // args.live / args.ready / args.heap (counters)
  std::int64_t ready = -1;
  std::int64_t heap = -1;
};

/// Extracts the value after `"key": ` as a raw token (up to , } or end).
bool raw_value(const std::string& line, const char* key, std::string* out) {
  const std::string pat = std::string("\"") + key + "\": ";
  const auto pos = line.find(pat);
  if (pos == std::string::npos) return false;
  auto start = pos + pat.size();
  auto end = start;
  int depth = 0;
  while (end < line.size()) {
    const char c = line[end];
    if (c == '{') ++depth;
    if (depth == 0 && (c == ',' || c == '}')) break;
    if (c == '}') --depth;
    ++end;
  }
  *out = line.substr(start, end - start);
  return true;
}

bool string_value(const std::string& line, const char* key, std::string* out) {
  std::string raw;
  if (!raw_value(line, key, &raw)) return false;
  if (raw.size() < 2 || raw.front() != '"' || raw.back() != '"') return false;
  *out = raw.substr(1, raw.size() - 2);
  return true;
}

bool num_value(const std::string& line, const char* key, double* out) {
  std::string raw;
  if (!raw_value(line, key, &raw)) return false;
  *out = std::atof(raw.c_str());
  return true;
}

bool int_value(const std::string& line, const char* key, std::int64_t* out) {
  std::string raw;
  if (!raw_value(line, key, &raw)) return false;
  *out = std::atoll(raw.c_str());
  return true;
}

bool parse_event(const std::string& line, Event* ev) {
  std::string ph;
  if (!string_value(line, "ph", &ph) || ph.empty()) return false;
  ev->ph = ph[0];
  string_value(line, "name", &ev->name);
  double tid = -1;
  if (num_value(line, "tid", &tid)) ev->lane = static_cast<int>(tid);
  num_value(line, "ts", &ev->ts_us);
  num_value(line, "dur", &ev->dur_us);
  int_value(line, "arg", &ev->arg);
  int_value(line, "live", &ev->live);
  int_value(line, "ready", &ev->ready);
  int_value(line, "heap", &ev->heap);
  return true;
}

struct Gap {
  int lane;
  double start_us;
  double len_us;
};

int summarize(const std::string& path, std::size_t top_n) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "dfth-trace: cannot open %s\n", path.c_str());
    return 1;
  }

  std::vector<Event> events;
  std::map<int, std::string> lane_names;
  std::int64_t dropped = -1;
  std::string line;
  while (std::getline(in, line)) {
    Event ev;
    if (!parse_event(line, &ev)) continue;
    if (ev.ph == 'M') {
      if (ev.name == "dfth_dropped") {
        // Ring-overflow marker emitted by write_chrome_trace.
        int_value(line, "dropped", &dropped);
        continue;
      }
      // thread_name metadata: {"args": {"name": "worker 0"}} — the args
      // name is the *second* "name" key; take the last match.
      const auto pos = line.rfind("\"name\": \"");
      if (pos != std::string::npos) {
        const auto start = pos + std::strlen("\"name\": \"");
        const auto end = line.find('"', start);
        lane_names[ev.lane] = line.substr(start, end - start);
      }
      continue;
    }
    events.push_back(std::move(ev));
  }

  // Events by kind.
  std::map<std::string, std::size_t> by_kind;
  double t_end = 0;
  for (const Event& ev : events) {
    if (ev.ph == 'C') continue;
    ++by_kind[ev.name + (ev.ph == 'X' ? " (slice)" : "")];
    t_end = std::max(t_end, ev.ts_us + ev.dur_us);
  }

  std::printf("trace: %s\n", path.c_str());
  std::printf("span: %.1f us, %zu events\n", t_end, events.size());
  if (dropped > 0) {
    std::printf("dropped: %lld events lost to ring overflow — the summary "
                "below is a truncated view\n",
                static_cast<long long>(dropped));
  } else if (dropped == 0) {
    std::printf("dropped: 0 (rings did not overflow)\n");
  }
  std::printf("\n");
  std::printf("events by kind:\n");
  std::map<std::string, std::size_t> slices_by_kind;
  std::size_t total_slices = 0;
  for (const auto& [name, count] : by_kind) {
    if (name.find(" (slice)") != std::string::npos) {
      total_slices += count;
      continue;  // per-thread slices would flood the table; count them once
    }
    std::printf("  %-16s %zu\n", name.c_str(), count);
  }
  std::printf("  %-16s %zu\n\n", "dispatch slices", total_slices);

  // Per-lane occupancy + dispatch gaps.
  std::map<int, std::vector<const Event*>> lane_slices;
  for (const Event& ev : events) {
    if (ev.ph == 'X') lane_slices[ev.lane].push_back(&ev);
  }
  std::vector<Gap> gaps;
  std::printf("lanes:\n");
  for (auto& [lane, slices] : lane_slices) {
    std::sort(slices.begin(), slices.end(),
              [](const Event* a, const Event* b) { return a->ts_us < b->ts_us; });
    double busy = 0, prev_end = -1;
    for (const Event* s : slices) {
      busy += s->dur_us;
      if (prev_end >= 0 && s->ts_us > prev_end) {
        gaps.push_back({lane, prev_end, s->ts_us - prev_end});
      }
      prev_end = std::max(prev_end, s->ts_us + s->dur_us);
    }
    const auto it = lane_names.find(lane);
    std::printf("  %-12s %6zu slices, busy %10.1f us (%5.1f%%)\n",
                it != lane_names.end() ? it->second.c_str()
                                       : std::to_string(lane).c_str(),
                slices.size(), busy, t_end > 0 ? 100.0 * busy / t_end : 0.0);
  }

  // Dispatch-gap distribution: percentiles first (the shape), then the
  // tail (the culprits).
  std::sort(gaps.begin(), gaps.end(),
            [](const Gap& a, const Gap& b) { return a.len_us > b.len_us; });
  if (!gaps.empty()) {
    // gaps is sorted descending; index from the far end for percentiles.
    auto pct = [&](double q) {
      const auto idx = static_cast<std::size_t>(
          static_cast<double>(gaps.size() - 1) * (1.0 - q));
      return gaps[idx].len_us;
    };
    std::printf("\ndispatch gaps: %zu, p50 %.1f us, p99 %.1f us, "
                "p999 %.1f us, max %.1f us\n",
                gaps.size(), pct(0.50), pct(0.99), pct(0.999),
                gaps.front().len_us);
  }
  std::printf("\nlongest dispatch gaps:\n");
  for (std::size_t i = 0; i < std::min(top_n, gaps.size()); ++i) {
    std::printf("  lane %-3d at %12.1f us: %10.1f us idle\n", gaps[i].lane,
                gaps[i].start_us, gaps[i].len_us);
  }
  if (gaps.empty()) std::printf("  (none)\n");

  // Largest traced allocations.
  std::vector<const Event*> allocs;
  for (const Event& ev : events) {
    if (ev.ph == 'i' && ev.name == "alloc") allocs.push_back(&ev);
  }
  std::sort(allocs.begin(), allocs.end(),
            [](const Event* a, const Event* b) { return a->arg > b->arg; });
  std::printf("\nlargest allocations (>= event threshold):\n");
  for (std::size_t i = 0; i < std::min(top_n, allocs.size()); ++i) {
    std::printf("  %10lld bytes at %12.1f us (lane %d)\n",
                static_cast<long long>(allocs[i]->arg), allocs[i]->ts_us,
                allocs[i]->lane);
  }
  if (allocs.empty()) std::printf("  (none)\n");

  // Peaks from the counter tracks.
  std::int64_t peak_ready = 0, peak_live = 0, peak_heap = 0;
  double peak_ready_ts = 0, peak_live_ts = 0;
  for (const Event& ev : events) {
    if (ev.ph != 'C') continue;
    if (ev.ready > peak_ready) { peak_ready = ev.ready; peak_ready_ts = ev.ts_us; }
    if (ev.live > peak_live) { peak_live = ev.live; peak_live_ts = ev.ts_us; }
    if (ev.heap > peak_heap) peak_heap = ev.heap;
  }
  std::printf("\npeaks (sampled):\n");
  std::printf("  live threads %lld at %.1f us\n",
              static_cast<long long>(peak_live), peak_live_ts);
  std::printf("  ready queue  %lld at %.1f us\n",
              static_cast<long long>(peak_ready), peak_ready_ts);
  std::printf("  heap         %lld bytes\n", static_cast<long long>(peak_heap));
  return 0;
}

// -- serve-soak report (--serve) ----------------------------------------------

/// Splits the `"key": [{...}, {...}]` array embedded in `line` into its
/// top-level object substrings. serve_soak writes each pass on one line, so
/// the arrays never span lines.
std::vector<std::string> object_list(const std::string& line, const char* key) {
  std::vector<std::string> out;
  const std::string pat = std::string("\"") + key + "\": [";
  auto pos = line.find(pat);
  if (pos == std::string::npos) return out;
  pos += pat.size();
  int depth = 0;
  std::size_t start = 0;
  for (; pos < line.size(); ++pos) {
    const char c = line[pos];
    if (c == '{') {
      if (depth == 0) start = pos;
      ++depth;
    } else if (c == '}') {
      if (--depth == 0) out.push_back(line.substr(start, pos - start + 1));
    } else if (c == ']' && depth == 0) {
      break;
    }
  }
  return out;
}

int serve_summarize(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "dfth-trace: cannot open %s\n", path.c_str());
    return 1;
  }

  std::printf("serve soak: %s\n", path.c_str());
  int passes = 0;
  int status = 0;
  std::string line;
  while (std::getline(in, line)) {
    std::string tag;
    if (!string_value(line, "pass", &tag)) continue;
    ++passes;

    std::int64_t requests = 0, completed = 0, rejected = 0, expired = 0;
    std::int64_t retries = 0, rej_queue = 0, rej_shed = 0, rej_adm = 0;
    std::int64_t exp_queue = 0, exp_running = 0, transitions = 0;
    std::int64_t peak_inflight = 0, peak_depth = 0, peak_live = 0;
    std::int64_t baseline = 0, usable = 0, faults = 0;
    double rps = 0;
    int_value(line, "requests", &requests);
    int_value(line, "completed", &completed);
    int_value(line, "rejected", &rejected);
    int_value(line, "expired", &expired);
    int_value(line, "retries", &retries);
    int_value(line, "rejected_queue", &rej_queue);
    int_value(line, "rejected_shed", &rej_shed);
    int_value(line, "rejected_admission", &rej_adm);
    int_value(line, "expired_queue", &exp_queue);
    int_value(line, "expired_running", &exp_running);
    int_value(line, "tier_transitions", &transitions);
    int_value(line, "peak_inflight", &peak_inflight);
    int_value(line, "peak_depth", &peak_depth);
    int_value(line, "peak_live_bytes", &peak_live);
    int_value(line, "baseline_live_bytes", &baseline);
    int_value(line, "admission_usable", &usable);
    int_value(line, "faults_injected", &faults);
    num_value(line, "throughput_rps", &rps);

    std::printf("\npass %s: %lld requests -> %lld completed, %lld rejected, "
                "%lld expired  (%.1f rps, %lld client retries)\n",
                tag.c_str(), static_cast<long long>(requests),
                static_cast<long long>(completed),
                static_cast<long long>(rejected),
                static_cast<long long>(expired), rps,
                static_cast<long long>(retries));
    if (completed + rejected + expired != requests) {
      std::printf("  !! exactly-once violated: outcomes sum to %lld\n",
                  static_cast<long long>(completed + rejected + expired));
      status = 1;
    }
    std::printf("  server rejections: queue-full %lld, shed %lld, "
                "admission %lld (pre-retry counts)\n",
                static_cast<long long>(rej_queue),
                static_cast<long long>(rej_shed),
                static_cast<long long>(rej_adm));
    std::printf("  deadline expirations: in queue %lld, in flight %lld\n",
                static_cast<long long>(exp_queue),
                static_cast<long long>(exp_running));
    std::printf("  overload: %lld tier transitions, peak inflight %lld, "
                "peak queue depth %lld, faults injected %lld\n",
                static_cast<long long>(transitions),
                static_cast<long long>(peak_inflight),
                static_cast<long long>(peak_depth),
                static_cast<long long>(faults));
    const std::int64_t budget = baseline + usable;
    std::printf("  memory: peak tracked RSS %lld B vs admission budget %lld B "
                "(baseline %lld + usable %lld)%s\n",
                static_cast<long long>(peak_live),
                static_cast<long long>(budget),
                static_cast<long long>(baseline),
                static_cast<long long>(usable),
                peak_live > budget ? "  !! over budget" : "");
    if (peak_live > budget) status = 1;

    const auto endpoints = object_list(line, "endpoints");
    if (!endpoints.empty()) {
      std::printf("  endpoints:\n");
      std::printf("    %-10s %6s %7s %6s %6s %6s %7s %10s %10s %10s\n", "name",
                  "done", "q-full", "shed", "adm", "exp-q", "exp-run", "p50",
                  "p99", "p999");
      for (const std::string& ep : endpoints) {
        std::string name;
        std::int64_t done = 0, eq = 0, es = 0, ea = 0, xq = 0, xr = 0;
        std::int64_t p50 = 0, p99 = 0, p999 = 0;
        string_value(ep, "name", &name);
        int_value(ep, "completed", &done);
        int_value(ep, "rejected_queue", &eq);
        int_value(ep, "rejected_shed", &es);
        int_value(ep, "rejected_admission", &ea);
        int_value(ep, "expired_queue", &xq);
        int_value(ep, "expired_running", &xr);
        int_value(ep, "p50_ns", &p50);
        int_value(ep, "p99_ns", &p99);
        int_value(ep, "p999_ns", &p999);
        std::printf("    %-10s %6lld %7lld %6lld %6lld %6lld %7lld "
                    "%8.2fms %8.2fms %8.2fms\n",
                    name.c_str(), static_cast<long long>(done),
                    static_cast<long long>(eq), static_cast<long long>(es),
                    static_cast<long long>(ea), static_cast<long long>(xq),
                    static_cast<long long>(xr),
                    static_cast<double>(p50) / 1e6,
                    static_cast<double>(p99) / 1e6,
                    static_cast<double>(p999) / 1e6);
      }
    }

    const auto samples = object_list(line, "headroom");
    if (!samples.empty()) {
      std::int64_t min_headroom = -1;
      std::size_t by_tier[3] = {0, 0, 0};
      for (const std::string& s : samples) {
        std::int64_t h = 0, tier = 0;
        int_value(s, "headroom", &h);
        int_value(s, "tier", &tier);
        if (min_headroom < 0 || h < min_headroom) min_headroom = h;
        if (tier >= 0 && tier < 3) ++by_tier[tier];
      }
      const double n = static_cast<double>(samples.size());
      std::printf("  headroom: %zu samples, min %lld B; tier residency: "
                  "accept %.1f%%, shed-low %.1f%%, drain-only %.1f%%\n",
                  samples.size(), static_cast<long long>(min_headroom),
                  100.0 * static_cast<double>(by_tier[0]) / n,
                  100.0 * static_cast<double>(by_tier[1]) / n,
                  100.0 * static_cast<double>(by_tier[2]) / n);
    }
  }
  if (passes == 0) {
    std::fprintf(stderr, "dfth-trace: no serve passes found in %s\n",
                 path.c_str());
    return 1;
  }
  return status;
}

void usage() {
  std::fprintf(stderr,
               "usage: dfth-trace summary <trace.json> [--top N]\n"
               "       dfth-trace --serve <BENCH_serve_soak.json>\n"
               "  trace.json: output of a DFTH_TRACE run "
               "(obs::write_chrome_trace)\n"
               "  BENCH_serve_soak.json: output of bench/serve_soak\n");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 3 && std::strcmp(argv[1], "--serve") == 0) {
    return serve_summarize(argv[2]);
  }
  if (argc < 3 || std::strcmp(argv[1], "summary") != 0) {
    usage();
    return argc >= 2 && std::strcmp(argv[1], "--help") == 0 ? 0 : 2;
  }
  std::size_t top_n = 10;
  for (int i = 3; i < argc; ++i) {
    if (std::strcmp(argv[i], "--top") == 0 && i + 1 < argc) {
      top_n = static_cast<std::size_t>(std::atoll(argv[++i]));
    }
  }
  return summarize(argv[2], top_n);
}
