// dfth-trace: offline summaries of Chrome-trace JSON files written by
// obs/export.h (write_chrome_trace). The writer emits one event per line
// with a fixed key order, so this tool parses with plain string scanning —
// the toolchain has no JSON library, and none is needed.
//
//   dfth-trace summary trace.json [--top N]
//
// Reports events by kind, the ring-overflow drop count, per-lane occupancy,
// the dispatch-gap distribution (p50/p99/p999 plus the longest gaps — idle
// stretches between consecutive slices on a lane), the largest traced
// allocations, and the ready-queue / live-thread peaks from the counter
// tracks.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <string>
#include <vector>

namespace {

struct Event {
  std::string name;
  char ph = 0;
  int lane = -1;
  double ts_us = 0;
  double dur_us = 0;
  std::int64_t arg = 0;     // args.arg (instants)
  std::int64_t live = -1;   // args.live / args.ready / args.heap (counters)
  std::int64_t ready = -1;
  std::int64_t heap = -1;
};

/// Extracts the value after `"key": ` as a raw token (up to , } or end).
bool raw_value(const std::string& line, const char* key, std::string* out) {
  const std::string pat = std::string("\"") + key + "\": ";
  const auto pos = line.find(pat);
  if (pos == std::string::npos) return false;
  auto start = pos + pat.size();
  auto end = start;
  int depth = 0;
  while (end < line.size()) {
    const char c = line[end];
    if (c == '{') ++depth;
    if (depth == 0 && (c == ',' || c == '}')) break;
    if (c == '}') --depth;
    ++end;
  }
  *out = line.substr(start, end - start);
  return true;
}

bool string_value(const std::string& line, const char* key, std::string* out) {
  std::string raw;
  if (!raw_value(line, key, &raw)) return false;
  if (raw.size() < 2 || raw.front() != '"' || raw.back() != '"') return false;
  *out = raw.substr(1, raw.size() - 2);
  return true;
}

bool num_value(const std::string& line, const char* key, double* out) {
  std::string raw;
  if (!raw_value(line, key, &raw)) return false;
  *out = std::atof(raw.c_str());
  return true;
}

bool int_value(const std::string& line, const char* key, std::int64_t* out) {
  std::string raw;
  if (!raw_value(line, key, &raw)) return false;
  *out = std::atoll(raw.c_str());
  return true;
}

bool parse_event(const std::string& line, Event* ev) {
  std::string ph;
  if (!string_value(line, "ph", &ph) || ph.empty()) return false;
  ev->ph = ph[0];
  string_value(line, "name", &ev->name);
  double tid = -1;
  if (num_value(line, "tid", &tid)) ev->lane = static_cast<int>(tid);
  num_value(line, "ts", &ev->ts_us);
  num_value(line, "dur", &ev->dur_us);
  int_value(line, "arg", &ev->arg);
  int_value(line, "live", &ev->live);
  int_value(line, "ready", &ev->ready);
  int_value(line, "heap", &ev->heap);
  return true;
}

struct Gap {
  int lane;
  double start_us;
  double len_us;
};

int summarize(const std::string& path, std::size_t top_n) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "dfth-trace: cannot open %s\n", path.c_str());
    return 1;
  }

  std::vector<Event> events;
  std::map<int, std::string> lane_names;
  std::int64_t dropped = -1;
  std::string line;
  while (std::getline(in, line)) {
    Event ev;
    if (!parse_event(line, &ev)) continue;
    if (ev.ph == 'M') {
      if (ev.name == "dfth_dropped") {
        // Ring-overflow marker emitted by write_chrome_trace.
        int_value(line, "dropped", &dropped);
        continue;
      }
      // thread_name metadata: {"args": {"name": "worker 0"}} — the args
      // name is the *second* "name" key; take the last match.
      const auto pos = line.rfind("\"name\": \"");
      if (pos != std::string::npos) {
        const auto start = pos + std::strlen("\"name\": \"");
        const auto end = line.find('"', start);
        lane_names[ev.lane] = line.substr(start, end - start);
      }
      continue;
    }
    events.push_back(std::move(ev));
  }

  // Events by kind.
  std::map<std::string, std::size_t> by_kind;
  double t_end = 0;
  for (const Event& ev : events) {
    if (ev.ph == 'C') continue;
    ++by_kind[ev.name + (ev.ph == 'X' ? " (slice)" : "")];
    t_end = std::max(t_end, ev.ts_us + ev.dur_us);
  }

  std::printf("trace: %s\n", path.c_str());
  std::printf("span: %.1f us, %zu events\n", t_end, events.size());
  if (dropped > 0) {
    std::printf("dropped: %lld events lost to ring overflow — the summary "
                "below is a truncated view\n",
                static_cast<long long>(dropped));
  } else if (dropped == 0) {
    std::printf("dropped: 0 (rings did not overflow)\n");
  }
  std::printf("\n");
  std::printf("events by kind:\n");
  std::map<std::string, std::size_t> slices_by_kind;
  std::size_t total_slices = 0;
  for (const auto& [name, count] : by_kind) {
    if (name.find(" (slice)") != std::string::npos) {
      total_slices += count;
      continue;  // per-thread slices would flood the table; count them once
    }
    std::printf("  %-16s %zu\n", name.c_str(), count);
  }
  std::printf("  %-16s %zu\n\n", "dispatch slices", total_slices);

  // Per-lane occupancy + dispatch gaps.
  std::map<int, std::vector<const Event*>> lane_slices;
  for (const Event& ev : events) {
    if (ev.ph == 'X') lane_slices[ev.lane].push_back(&ev);
  }
  std::vector<Gap> gaps;
  std::printf("lanes:\n");
  for (auto& [lane, slices] : lane_slices) {
    std::sort(slices.begin(), slices.end(),
              [](const Event* a, const Event* b) { return a->ts_us < b->ts_us; });
    double busy = 0, prev_end = -1;
    for (const Event* s : slices) {
      busy += s->dur_us;
      if (prev_end >= 0 && s->ts_us > prev_end) {
        gaps.push_back({lane, prev_end, s->ts_us - prev_end});
      }
      prev_end = std::max(prev_end, s->ts_us + s->dur_us);
    }
    const auto it = lane_names.find(lane);
    std::printf("  %-12s %6zu slices, busy %10.1f us (%5.1f%%)\n",
                it != lane_names.end() ? it->second.c_str()
                                       : std::to_string(lane).c_str(),
                slices.size(), busy, t_end > 0 ? 100.0 * busy / t_end : 0.0);
  }

  // Dispatch-gap distribution: percentiles first (the shape), then the
  // tail (the culprits).
  std::sort(gaps.begin(), gaps.end(),
            [](const Gap& a, const Gap& b) { return a.len_us > b.len_us; });
  if (!gaps.empty()) {
    // gaps is sorted descending; index from the far end for percentiles.
    auto pct = [&](double q) {
      const auto idx = static_cast<std::size_t>(
          static_cast<double>(gaps.size() - 1) * (1.0 - q));
      return gaps[idx].len_us;
    };
    std::printf("\ndispatch gaps: %zu, p50 %.1f us, p99 %.1f us, "
                "p999 %.1f us, max %.1f us\n",
                gaps.size(), pct(0.50), pct(0.99), pct(0.999),
                gaps.front().len_us);
  }
  std::printf("\nlongest dispatch gaps:\n");
  for (std::size_t i = 0; i < std::min(top_n, gaps.size()); ++i) {
    std::printf("  lane %-3d at %12.1f us: %10.1f us idle\n", gaps[i].lane,
                gaps[i].start_us, gaps[i].len_us);
  }
  if (gaps.empty()) std::printf("  (none)\n");

  // Largest traced allocations.
  std::vector<const Event*> allocs;
  for (const Event& ev : events) {
    if (ev.ph == 'i' && ev.name == "alloc") allocs.push_back(&ev);
  }
  std::sort(allocs.begin(), allocs.end(),
            [](const Event* a, const Event* b) { return a->arg > b->arg; });
  std::printf("\nlargest allocations (>= event threshold):\n");
  for (std::size_t i = 0; i < std::min(top_n, allocs.size()); ++i) {
    std::printf("  %10lld bytes at %12.1f us (lane %d)\n",
                static_cast<long long>(allocs[i]->arg), allocs[i]->ts_us,
                allocs[i]->lane);
  }
  if (allocs.empty()) std::printf("  (none)\n");

  // Peaks from the counter tracks.
  std::int64_t peak_ready = 0, peak_live = 0, peak_heap = 0;
  double peak_ready_ts = 0, peak_live_ts = 0;
  for (const Event& ev : events) {
    if (ev.ph != 'C') continue;
    if (ev.ready > peak_ready) { peak_ready = ev.ready; peak_ready_ts = ev.ts_us; }
    if (ev.live > peak_live) { peak_live = ev.live; peak_live_ts = ev.ts_us; }
    if (ev.heap > peak_heap) peak_heap = ev.heap;
  }
  std::printf("\npeaks (sampled):\n");
  std::printf("  live threads %lld at %.1f us\n",
              static_cast<long long>(peak_live), peak_live_ts);
  std::printf("  ready queue  %lld at %.1f us\n",
              static_cast<long long>(peak_ready), peak_ready_ts);
  std::printf("  heap         %lld bytes\n", static_cast<long long>(peak_heap));
  return 0;
}

void usage() {
  std::fprintf(stderr,
               "usage: dfth-trace summary <trace.json> [--top N]\n"
               "  trace.json: output of a DFTH_TRACE run "
               "(obs::write_chrome_trace)\n");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3 || std::strcmp(argv[1], "summary") != 0) {
    usage();
    return argc >= 2 && std::strcmp(argv[1], "--help") == 0 ? 0 : 2;
  }
  std::size_t top_n = 10;
  for (int i = 3; i < argc; ++i) {
    if (std::strcmp(argv[i], "--top") == 0 && i + 1 < argc) {
      top_n = static_cast<std::size_t>(std::atoll(argv[++i]));
    }
  }
  return summarize(argv[2], top_n);
}
