#!/usr/bin/env python3
"""Static worst-case fiber-stack bounds for dfthreads spawn entry points.

The fiber runtime hands every thread a fixed-size stack (default 1 MiB,
``dfth::Attr::stack_size`` in src/runtime/api.h) with a guard page below
it. A fiber that outgrows its stack hits the guard page and dies; this
tool proves, before any run, that no spawn entry point can get there.

Inputs (a ``-DDFTH_STACK_USAGE=ON`` build tree):
  * per-function frame sizes from GCC ``-fstack-usage`` ``.su`` files
    (demangled names, used where they can be matched to symbols), with a
    fallback to prologue analysis of the disassembly (``sub $N,%rsp`` +
    pushed registers) which is name-exact and covers lambdas;
  * the direct call graph from ``objdump -d`` of the linked binaries.

Entry points are the spawned-lambda bodies: out-of-line ``operator()``
symbols for ``dfth::apps`` lambdas, plus the
``std::_Function_handler<..., <app lambda>>::_M_invoke`` wrappers that
carry the body when the compiler inlines the lambda into its
``std::function`` thunk (or whatever ``--entry-regex`` selects). For each entry the tool reports the
deepest static call chain. Recursion is detected as a strongly connected
component on the chain; the cycle is named, the bound is reported as
unbounded-without-assumption, and a documented ``--assume-depth``
recursion depth produces the bound that is checked against the limit.
Indirect calls (through std::function, virtual dispatch, fn pointers)
cannot be walked statically; they are counted per entry and reported so a
zero-frames-missing claim is never implied.

The check fails (exit 1) if any entry's bound exceeds
``--stack-size - --guard-margin``. ``--json`` writes STACK_BOUND.json
(drop it next to the BENCH_*.json files) with per-entry records:
static bound, pool stack size, and — when ``--stats`` points at a
write_stats_json() export from a DFTH_STACK_USAGE run — the observed
``stack_high_water`` for a static-vs-observed comparison.

A hermetic test mode (``--frames-file`` / ``--edges-file``) takes
synthetic inputs so tests/check can exercise the solver without a build
tree.
"""

import argparse
import json
import os
import re
import subprocess
import sys

DEFAULT_STACK_SIZE = 1 << 20   # dfth::Attr::stack_size default (api.h)
DEFAULT_GUARD_MARGIN = 64 << 10
DEFAULT_ASSUME_DEPTH = 64
# Frames between the carrier's fiber trampoline and the spawned lambda body
# (context_entry -> std::function::operator() -> _M_invoke) reached through
# one indirect call, so the walk cannot see them. Charged as a constant.
RUNTIME_PREFIX_BYTES = 4096

SYM_RE = re.compile(r"^[0-9a-f]+ <(?P<sym>[^>]+)>:$")
CALL_RE = re.compile(r"\bcall[ql]?\s+[0-9a-f]+ <(?P<target>[^>+]+)(?:\+0x[0-9a-f]+)?>")
INDIRECT_CALL_RE = re.compile(r"\bcall[ql]?\s+\*")
SUB_RSP_RE = re.compile(r"\bsub\s+\$0x(?P<imm>[0-9a-f]+),%rsp")
PUSH_RE = re.compile(r"\bpush\s+%r")


def demangle(symbols):
    """symbol -> demangled name via one c++filt invocation."""
    proc = subprocess.run(["c++filt"], input="\n".join(symbols),
                          capture_output=True, text=True, check=True)
    names = proc.stdout.splitlines()
    return dict(zip(symbols, names))


def su_key(name):
    """Normalize a .su function signature for symbol matching.

    GCC writes `int ns::helper(int)` (return type included, param names
    dropped); c++filt writes `ns::helper(int)`. Strip the return type:
    drop everything up to the last top-level space before the first '('.
    Then drop all remaining spaces so template spellings compare equal.
    """
    paren = name.find("(")
    if paren <= 0:
        return name.replace(" ", "")
    cut = name[:paren].rfind(" ")
    if cut >= 0:
        name = name[cut + 1:]
    return name.replace(" ", "")


def parse_su_dir(root):
    """frame-size map {normalized-signature: bytes} from every .su file."""
    frames = {}
    for dirpath, _dirnames, filenames in os.walk(root):
        for fname in filenames:
            if not fname.endswith(".su"):
                continue
            with open(os.path.join(dirpath, fname), encoding="utf-8",
                      errors="replace") as f:
                for line in f:
                    parts = line.rstrip("\n").split("\t")
                    if len(parts) < 2:
                        continue
                    # location = file:line:col:signature
                    loc = parts[0].split(":", 3)
                    if len(loc) < 4:
                        continue
                    try:
                        size = int(parts[1])
                    except ValueError:
                        continue
                    key = su_key(loc[3])
                    frames[key] = max(frames.get(key, 0), size)
    return frames


def parse_binary(path):
    """(frames, edges, indirect) from one binary's disassembly.

    frames: {symbol: prologue bytes} — `sub $N,%rsp` + 8 per pushed
    register + 8 for the return address.
    edges: {symbol: set(callee symbols)} (direct calls only).
    indirect: {symbol: count of `call *` sites}.
    """
    proc = subprocess.run(["objdump", "-d", "--no-show-raw-insn", path],
                          capture_output=True, text=True, check=True)
    frames, edges, indirect = {}, {}, {}
    cur = None
    sub_seen = pushes = 0
    for line in proc.stdout.splitlines():
        m = SYM_RE.match(line)
        if m:
            if cur is not None:
                frames[cur] = sub_seen + 8 * pushes + 8
            cur = m.group("sym")
            edges.setdefault(cur, set())
            indirect.setdefault(cur, 0)
            sub_seen = pushes = 0
            continue
        if cur is None:
            continue
        if PUSH_RE.search(line):
            pushes += 1
        m = SUB_RSP_RE.search(line)
        if m:
            # Keep the largest adjustment: shrink-wrapped paths may have
            # several, the bound wants the deepest.
            sub_seen = max(sub_seen, int(m.group("imm"), 16))
        m = CALL_RE.search(line)
        if m:
            edges[cur].add(m.group("target"))
        elif INDIRECT_CALL_RE.search(line):
            indirect[cur] += 1
    if cur is not None:
        frames[cur] = sub_seen + 8 * pushes + 8
    return frames, edges, indirect


def parse_frames_file(path):
    """Synthetic test input: `name bytes` per line."""
    frames = {}
    with open(path, encoding="utf-8") as f:
        for line in f:
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            name, size = line.rsplit(None, 1)
            frames[name] = int(size)
    return frames


def parse_edges_file(path):
    """Synthetic test input: `caller -> callee` per line."""
    edges = {}
    with open(path, encoding="utf-8") as f:
        for line in f:
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            caller, callee = (s.strip() for s in line.split("->"))
            edges.setdefault(caller, set()).add(callee)
    return edges


def bound_from(entry, frames, edges, assume_depth):
    """Worst-case stack bytes from `entry` down every direct call chain.

    Returns (bound, chain, cycles): `cycles` lists each distinct cycle hit
    during the walk (as a list of symbols); when non-empty the true bound
    is unbounded and `bound` assumes each cycle runs `assume_depth` deep.
    """
    cycles = []
    seen_cycles = set()
    best_chain = {}

    def walk(sym, on_path, path):
        if sym in on_path:
            start = path.index(sym)
            cycle = tuple(path[start:])
            if cycle not in seen_cycles:
                seen_cycles.add(cycle)
                cycles.append(list(cycle))
            # Charge the whole cycle assume_depth times (once is already on
            # the path, so assume_depth - 1 more).
            cycle_bytes = sum(frames.get(s, 0) for s in cycle)
            return cycle_bytes * max(assume_depth - 1, 0), [f"<cycle x{assume_depth}>"]
        frame = frames.get(sym, 0)
        best, chain = 0, []
        on_path.add(sym)
        path.append(sym)
        for callee in sorted(edges.get(sym, ())):
            sub, sub_chain = walk(callee, on_path, path)
            if sub > best:
                best, chain = sub, sub_chain
        on_path.discard(sym)
        path.pop()
        return frame + best, [sym] + chain

    total, chain = walk(entry, set(), [])
    return total, chain, cycles


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("binaries", nargs="*", help="linked binaries to analyze")
    ap.add_argument("--su-dir", help="build tree with -fstack-usage .su files")
    ap.add_argument("--frames-file", help="synthetic frame sizes (tests)")
    ap.add_argument("--edges-file", help="synthetic call edges (tests)")
    ap.add_argument("--entries", nargs="*", default=[],
                    help="explicit entry symbols (overrides --entry-regex)")
    ap.add_argument("--entry-regex",
                    default=(r"dfth::apps::.*\{lambda.*::operator\(\)"
                             r"|_Function_handler<.*dfth::apps::.*\{lambda"
                             r".*::_M_invoke"),
                    help="demangled-name pattern selecting spawn entry points")
    ap.add_argument("--stack-size", type=int, default=DEFAULT_STACK_SIZE)
    ap.add_argument("--guard-margin", type=int, default=DEFAULT_GUARD_MARGIN)
    ap.add_argument("--assume-depth", type=int, default=DEFAULT_ASSUME_DEPTH,
                    help="assumed recursion depth for cycles in the chain")
    ap.add_argument("--runtime-prefix", type=int, default=RUNTIME_PREFIX_BYTES,
                    help="constant charged for the trampoline/std::function "
                         "frames above each entry")
    ap.add_argument("--stats", help="write_stats_json() output for the "
                                    "observed stack_high_water comparison")
    ap.add_argument("--json", help="write STACK_BOUND.json here")
    ap.add_argument("-v", "--verbose", action="store_true")
    args = ap.parse_args()

    frames, edges, indirect, pretty = {}, {}, {}, {}
    if args.frames_file or args.edges_file:
        if not (args.frames_file and args.edges_file):
            ap.error("--frames-file and --edges-file go together")
        frames = parse_frames_file(args.frames_file)
        edges = parse_edges_file(args.edges_file)
        pretty = {s: s for s in frames}
    else:
        if not args.binaries:
            ap.error("no binaries given (and no --frames-file/--edges-file)")
        for path in args.binaries:
            f, e, i = parse_binary(path)
            # Same symbol linked into several binaries: keep the worst frame.
            for sym, size in f.items():
                frames[sym] = max(frames.get(sym, 0), size)
            for sym, callees in e.items():
                edges.setdefault(sym, set()).update(callees)
            for sym, count in i.items():
                indirect[sym] = max(indirect.get(sym, 0), count)
        pretty = demangle(sorted(frames))
        # Refine prologue-derived frames with .su ground truth where the
        # demangled name matches a .su signature.
        if args.su_dir:
            su = parse_su_dir(args.su_dir)
            matched = 0
            for sym, name in pretty.items():
                key = name.replace(" ", "")
                if key in su:
                    frames[sym] = max(frames[sym], su[key])
                    matched += 1
            if args.verbose:
                print(f"# .su refinement: {matched}/{len(frames)} symbols "
                      f"matched across {len(su)} .su records")

    if args.entries:
        entries = args.entries
    else:
        pattern = re.compile(args.entry_regex)
        entries = sorted(s for s, name in pretty.items() if pattern.search(name))
    if not entries:
        print("stack_bound: no spawn entry points matched", file=sys.stderr)
        return 2

    limit = args.stack_size - args.guard_margin
    observed = None
    if args.stats:
        with open(args.stats, encoding="utf-8") as f:
            data = json.load(f)
        observed = (data.get("stack_high_water")
                    or data.get("stats", {}).get("stack_high_water"))

    records, failed = [], 0
    for entry in entries:
        body, chain, cycles = bound_from(entry, frames, edges, args.assume_depth)
        bound = body + args.runtime_prefix
        # Indirect calls anywhere on the walked subgraph mean unseen frames.
        reachable = {entry}
        queue = [entry]
        while queue:
            for callee in edges.get(queue.pop(), ()):
                if callee not in reachable:
                    reachable.add(callee)
                    queue.append(callee)
        blind_calls = sum(indirect.get(s, 0) for s in reachable)
        ok = bound <= limit
        failed += 0 if ok else 1
        rec = {
            "entry": pretty.get(entry, entry),
            "symbol": entry,
            "static_bound_bytes": bound,
            "recursive": bool(cycles),
            "unbounded_without_assumption": bool(cycles),
            "assumed_recursion_depth": args.assume_depth if cycles else None,
            "cycles": [[pretty.get(s, s) for s in c] for c in cycles],
            "deepest_chain": [pretty.get(s, s) for s in chain],
            "indirect_call_sites": blind_calls,
            "stack_size_bytes": args.stack_size,
            "guard_margin_bytes": args.guard_margin,
            "fits": ok,
        }
        records.append(rec)
        status = "ok  " if ok else "FAIL"
        extra = ""
        if cycles:
            extra = (f" [recursive: {' -> '.join(pretty.get(s, s) for s in cycles[0])}"
                     f", assumed depth {args.assume_depth}]")
        print(f"{status} {pretty.get(entry, entry)}: {bound} bytes "
              f"(limit {limit}){extra}")
        if args.verbose:
            print("     chain: " + " -> ".join(rec["deepest_chain"]))
            if blind_calls:
                print(f"     note: {blind_calls} indirect call site(s) not walked")

    out = {
        "stack_size_bytes": args.stack_size,
        "guard_margin_bytes": args.guard_margin,
        "assume_depth": args.assume_depth,
        "runtime_prefix_bytes": args.runtime_prefix,
        "observed_stack_high_water": observed,
        "entries": records,
    }
    if args.json:
        with open(args.json, "w", encoding="utf-8") as f:
            json.dump(out, f, indent=2)
            f.write("\n")

    worst = max((r["static_bound_bytes"] for r in records), default=0)
    print(f"stack_bound: {len(records)} entry point(s), worst static bound "
          f"{worst} bytes, limit {limit} bytes"
          + (f", observed high water {observed} bytes" if observed else ""))
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
