#include "model.h"

#include <algorithm>
#include <cstddef>

namespace dfth_check {
namespace {

constexpr std::size_t kNone = static_cast<std::size_t>(-1);

bool is_punct(const Token& t, const char* s) {
  return t.kind == Tok::kPunct && t.text == s;
}
bool is_ident(const Token& t, const char* s) {
  return t.kind == Tok::kIdent && t.text == s;
}

const std::set<std::string>& control_keywords() {
  static const std::set<std::string> k = {"if", "for", "while", "switch",
                                          "catch", "return", "sizeof",
                                          "alignof", "decltype", "new"};
  return k;
}

const std::set<std::string>& scalar_type_names() {
  static const std::set<std::string> k = {
      "void",    "bool",     "char",      "short",    "int",      "long",
      "float",   "double",   "unsigned",  "signed",   "auto",     "size_t",
      "ssize_t", "ptrdiff_t", "int8_t",   "int16_t",  "int32_t",  "int64_t",
      "uint8_t", "uint16_t", "uint32_t",  "uint64_t", "uintptr_t", "intptr_t",
      "wchar_t", "char8_t",  "char16_t",  "char32_t"};
  return k;
}

/// Bracket matching over the whole token stream. match[i] = index of the
/// partner for (, ), [, ], {, }; kNone when unbalanced (we then treat the
/// token as plain punctuation).
std::vector<std::size_t> compute_matches(const std::vector<Token>& toks) {
  std::vector<std::size_t> match(toks.size(), kNone);
  std::vector<std::size_t> stack;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind != Tok::kPunct) continue;
    if (t.text == "(" || t.text == "[" || t.text == "{") {
      stack.push_back(i);
    } else if (t.text == ")" || t.text == "]" || t.text == "}") {
      const char open = t.text == ")" ? '(' : t.text == "]" ? '[' : '{';
      // Pop until the matching opener kind (recovers from unbalanced input).
      while (!stack.empty() && toks[stack.back()].text[0] != open) stack.pop_back();
      if (!stack.empty()) {
        match[stack.back()] = i;
        match[i] = stack.back();
        stack.pop_back();
      }
    }
  }
  return match;
}

struct BodyInfo {
  std::size_t open = kNone;   // '{'
  std::size_t close = kNone;  // '}'
  bool is_lambda = false;
  std::size_t capture_open = kNone;  // '[' of the lambda introducer
  std::size_t param_open = kNone;    // '(' of the parameter list (kNone if none)
  std::string name;                  // empty for lambdas
  int fn_index = -1;
};

/// Walks back from `pos` (exclusive) to the nearest statement boundary
/// (`;`, `{`, `}`) at the same nesting level, jumping over balanced () [] {}
/// regions. Returns the index of the first token *after* the boundary.
std::size_t span_start(const std::vector<Token>& toks,
                       const std::vector<std::size_t>& match, std::size_t pos) {
  std::size_t j = pos;
  while (j > 0) {
    const Token& t = toks[j - 1];
    if (t.kind == Tok::kPunct &&
        (t.text == ";" || t.text == "{" || t.text == "}")) {
      return j;
    }
    if (t.kind == Tok::kPunct &&
        (t.text == ")" || t.text == "]") && match[j - 1] != kNone) {
      j = match[j - 1];
      continue;
    }
    --j;
  }
  return 0;
}

bool is_trailing_specifier(const Token& t) {
  if (t.kind == Tok::kIdent) return true;  // const, noexcept, override, type names
  return t.kind == Tok::kPunct &&
         (t.text == "::" || t.text == "<" || t.text == ">" || t.text == "*" ||
          t.text == "&" || t.text == "&&");
}

/// Classifies the '{' at index b. Fills `out` (open/close/name/lambda bits)
/// and returns true when it opens a function or lambda body.
bool classify_function_brace(const std::vector<Token>& toks,
                             const std::vector<std::size_t>& match,
                             std::size_t b, BodyInfo& out) {
  const std::size_t start = span_start(toks, match, b);
  if (start >= b) return false;  // bare block
  // Namespace / type bodies are not function bodies.
  const Token& first = toks[start];
  if (is_ident(first, "namespace") || is_ident(first, "struct") ||
      is_ident(first, "class") || is_ident(first, "union") ||
      is_ident(first, "enum") || is_ident(first, "typedef") ||
      is_ident(first, "template")) {
    // `template <...> T fn(...) {` is still a function: look for a '(' whose
    // predecessor is an identifier after the template header. Keep it simple:
    // only namespace/struct/... *leading* the span makes it a non-function,
    // except when the span also ends in ')' + specifiers with a plain name —
    // rare in this codebase; treat template headers as type-ish (the tool
    // analyzes app/bench/example code, which defines no function templates
    // with bodies the checks need).
    return false;
  }

  // Walk back over trailing return type / cv / noexcept to the ')' (or find
  // a parameterless lambda's ']').
  std::size_t j = b;  // exclusive
  while (j > start && is_trailing_specifier(toks[j - 1])) --j;
  if (j > start && is_punct(toks[j - 1], "->")) {
    --j;
    while (j > start && is_trailing_specifier(toks[j - 1])) --j;
  }
  if (j > start && is_punct(toks[j - 1], "]") && match[j - 1] != kNone) {
    out.open = b;
    out.close = match[b];
    out.is_lambda = true;
    out.capture_open = match[j - 1];
    out.param_open = kNone;
    return true;
  }
  if (j == start || !is_punct(toks[j - 1], ")") || match[j - 1] == kNone) {
    return false;
  }
  const std::size_t paren_open = match[j - 1];
  if (paren_open == 0) return false;
  const Token& before = toks[paren_open - 1];
  if (is_punct(before, "]") && match[paren_open - 1] != kNone) {
    out.open = b;
    out.close = match[b];
    out.is_lambda = true;
    out.capture_open = match[paren_open - 1];
    out.param_open = paren_open;
    return true;
  }
  if (before.kind != Tok::kIdent) return false;
  if (control_keywords().count(before.text)) return false;
  // Constructor-initializer lists (`Foo(...) : a_(x), b_(y) {`) put the last
  // init item's `name(...)` right before the '{', so the walk above lands on
  // it instead of the parameter list. Loop back over `:`/`,`-separated init
  // items (paren or brace form) until the group whose name is *not* preceded
  // by an initializer separator — that is the real parameter list.
  std::size_t name_at = paren_open - 1;
  std::size_t params_at = paren_open;
  while (name_at > 0 &&
         (is_punct(toks[name_at - 1], ":") || is_punct(toks[name_at - 1], ","))) {
    std::size_t k = name_at - 1;  // the separator; previous group ends before it
    if (k == 0) return false;
    const Token& prev = toks[k - 1];
    if (!(is_punct(prev, ")") || is_punct(prev, "}")) || match[k - 1] == kNone) {
      return false;  // `case x:` or similar — not an init list
    }
    const std::size_t prev_open = match[k - 1];
    if (prev_open == 0 || toks[prev_open - 1].kind != Tok::kIdent ||
        control_keywords().count(toks[prev_open - 1].text)) {
      return false;
    }
    name_at = prev_open - 1;
    params_at = prev_open;
    if (toks[params_at].text != "(") {
      // Init items may be brace-form, but a parameter list never is; keep
      // walking only if a separator precedes this group too.
      if (name_at == 0 ||
          !(is_punct(toks[name_at - 1], ":") || is_punct(toks[name_at - 1], ","))) {
        return false;
      }
    }
  }
  if (toks[name_at].kind != Tok::kIdent ||
      control_keywords().count(toks[name_at].text)) {
    return false;
  }
  out.open = b;
  out.close = match[b];
  out.is_lambda = false;
  out.param_open = params_at;
  out.name = toks[name_at].text;
  return true;
}

/// Splits the token range (open, close) — exclusive of both brackets — into
/// top-level comma-separated argument ranges.
std::vector<std::pair<std::size_t, std::size_t>> split_args(
    const std::vector<Token>& toks, const std::vector<std::size_t>& match,
    std::size_t open, std::size_t close) {
  std::vector<std::pair<std::size_t, std::size_t>> args;
  std::size_t at = open + 1;
  if (at >= close) return args;
  std::size_t i = at;
  while (i < close) {
    const Token& t = toks[i];
    if (t.kind == Tok::kPunct && (t.text == "(" || t.text == "[" || t.text == "{") &&
        match[i] != kNone) {
      i = match[i] + 1;
      continue;
    }
    if (is_punct(t, ",")) {
      args.emplace_back(at, i);
      at = i + 1;
    }
    ++i;
  }
  args.emplace_back(at, close);
  return args;
}

void parse_captures(const std::vector<Token>& toks,
                    const std::vector<std::size_t>& match, std::size_t open,
                    Lambda& lam) {
  const std::size_t close = match[open];
  if (close == kNone) return;
  for (auto [a, b] : split_args(toks, match, open, close)) {
    if (a >= b) continue;
    if (is_punct(toks[a], "&") && b == a + 1) {
      lam.default_ref_capture = true;
    } else if (is_punct(toks[a], "=") && b == a + 1) {
      lam.default_value_capture = true;
    } else if (is_ident(toks[a], "this")) {
      lam.captures_this = true;
    } else if (is_punct(toks[a], "*") && a + 1 < b && is_ident(toks[a + 1], "this")) {
      // *this: a by-value copy of the object; not a stack escape.
    } else if (is_punct(toks[a], "&")) {
      if (a + 1 < b && toks[a + 1].kind == Tok::kIdent) {
        lam.ref_captures.insert(toks[a + 1].text);
      }
    } else if (toks[a].kind == Tok::kIdent) {
      lam.value_captures.insert(toks[a].text);
    }
  }
}

void parse_params(const std::vector<Token>& toks,
                  const std::vector<std::size_t>& match, std::size_t open,
                  Function& fn) {
  const std::size_t close = match[open];
  if (close == kNone || close == open + 1) return;
  for (auto [a, b] : split_args(toks, match, open, close)) {
    if (a >= b) continue;
    // Name = last identifier before a top-level '=' (default argument) or
    // the range end. `void` / unnamed params yield no usable name.
    std::size_t end = b;
    for (std::size_t i = a; i < b; ++i) {
      if (is_punct(toks[i], "=")) {
        end = i;
        break;
      }
      if (toks[i].kind == Tok::kPunct && (toks[i].text == "(" || toks[i].text == "[") &&
          match[i] != kNone && match[i] < b) {
        i = match[i];
      }
    }
    Param p;
    std::size_t name_at = kNone;
    for (std::size_t i = end; i > a; --i) {
      if (toks[i - 1].kind == Tok::kIdent) {
        name_at = i - 1;
        break;
      }
      if (is_punct(toks[i - 1], "]") && match[i - 1] != kNone) {
        i = match[i - 1] + 1;  // skip array extents: `double w[16]`
        continue;
      }
    }
    if (name_at == kNone) continue;
    p.name = toks[name_at].text;
    std::string last_type_ident;
    for (std::size_t i = a; i < name_at; ++i) {
      const Token& t = toks[i];
      if (!p.type_text.empty()) p.type_text += ' ';
      p.type_text += t.text;
      if (t.kind == Tok::kPunct && (t.text == "*" || t.text == "&" || t.text == "&&")) {
        p.pointer_like = true;
      }
      if (t.kind == Tok::kIdent && t.text != "const" && t.text != "volatile" &&
          t.text != "struct" && t.text != "typename") {
        last_type_ident = t.text;
      }
    }
    if (p.type_text.empty()) continue;  // e.g. `void` or parse noise
    // A by-value parameter of class type (View, ConstView, Job...) may carry
    // pointers into shared memory; scalars cannot.
    if (!p.pointer_like && !last_type_ident.empty() &&
        !scalar_type_names().count(last_type_ident)) {
      p.pointer_like = true;
    }
    fn.params.push_back(std::move(p));
  }
}

/// Walks back from `pos` (exclusive) over a postfix chain
/// (`base.member[expr]->field`), returning the index of the head identifier
/// and the normalized chain text ("base.member[].field"); kNone if the
/// preceding tokens do not form a chain.
std::size_t postfix_chain_head(const std::vector<Token>& toks,
                               const std::vector<std::size_t>& match,
                               std::size_t pos, std::string* text_out) {
  std::size_t j = pos;
  std::vector<std::string> parts;
  bool expect_name = true;  // chain must end (reading backwards: start) with a name
  while (j > 0) {
    const Token& t = toks[j - 1];
    if (expect_name) {
      if (is_punct(t, "]") && match[j - 1] != kNone) {
        parts.push_back("[]");
        j = match[j - 1];
        continue;
      }
      if (t.kind == Tok::kIdent) {
        parts.push_back(t.text);
        expect_name = false;
        --j;
        continue;
      }
      return kNone;
    }
    if (is_punct(t, ".") || is_punct(t, "->")) {
      parts.push_back(".");
      expect_name = true;
      --j;
      continue;
    }
    break;
  }
  if (expect_name) return kNone;
  if (text_out) {
    text_out->clear();
    for (auto it = parts.rbegin(); it != parts.rend(); ++it) {
      if (*it == ".") {
        *text_out += '.';
      } else if (*it == "[]") {
        *text_out += "[]";
      } else {
        *text_out += *it;
      }
    }
  }
  return j;  // index of head identifier
}

bool is_stmt_boundary(const Token& t) {
  return t.kind == Tok::kPunct &&
         (t.text == ";" || t.text == "{" || t.text == "}" || t.text == "(" ||
          t.text == ",");
}

}  // namespace

void Model::index() {
  by_name.clear();
  for (std::size_t i = 0; i < functions.size(); ++i) {
    if (!functions[i].name.empty()) {
      by_name[functions[i].name].push_back(static_cast<int>(i));
    }
  }
}

void build_model_from_tokens(SourceFile* file, Model& model) {
  const std::vector<Token>& toks = file->tokens;
  const std::vector<std::size_t> match = compute_matches(toks);

  // -- pass 1: find function and lambda bodies --------------------------------
  std::vector<BodyInfo> bodies;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (!is_punct(toks[i], "{") || match[i] == kNone) continue;
    BodyInfo info;
    if (classify_function_brace(toks, match, i, info)) bodies.push_back(info);
  }

  // Sort by open index (already in order) and compute enclosure with a stack.
  const int first_fn = static_cast<int>(model.functions.size());
  std::vector<int> parent(bodies.size(), -1);
  {
    std::vector<std::size_t> stack;  // indices into `bodies`
    for (std::size_t bi = 0; bi < bodies.size(); ++bi) {
      while (!stack.empty() && bodies[stack.back()].close < bodies[bi].open) {
        stack.pop_back();
      }
      parent[bi] = stack.empty() ? -1 : static_cast<int>(stack.back());
      stack.push_back(bi);
    }
  }

  // Create Function (and Lambda) entries.
  for (std::size_t bi = 0; bi < bodies.size(); ++bi) {
    BodyInfo& body = bodies[bi];
    Function fn;
    fn.file = file;
    const Token& open_tok = toks[body.open];
    fn.loc = {file, open_tok.line, open_tok.col};
    if (body.is_lambda) {
      fn.is_lambda_body = true;
      fn.qualified = "lambda@" + std::to_string(toks[body.capture_open].line);
    } else {
      fn.name = body.name;
      fn.qualified = body.name;
      const Token& name_tok = toks[body.param_open - 1];
      fn.loc = {file, name_tok.line, name_tok.col};
    }
    if (body.param_open != kNone) parse_params(toks, match, body.param_open, fn);
    body.fn_index = static_cast<int>(model.functions.size());
    model.functions.push_back(std::move(fn));

    if (body.is_lambda) {
      Lambda lam;
      lam.id = static_cast<int>(model.lambdas.size());
      lam.body_fn = body.fn_index;
      lam.loc = {file, toks[body.capture_open].line, toks[body.capture_open].col};
      parse_captures(toks, match, body.capture_open, lam);
      model.functions[body.fn_index].lambda_id = lam.id;
      model.lambdas.push_back(std::move(lam));
    }
  }
  // Parent links (enclosing_fn for lambdas; lambda lists on functions).
  for (std::size_t bi = 0; bi < bodies.size(); ++bi) {
    if (!bodies[bi].is_lambda) continue;
    const int lam_id = model.functions[bodies[bi].fn_index].lambda_id;
    int p = parent[bi];
    if (p >= 0) {
      model.lambdas[lam_id].enclosing_fn = bodies[p].fn_index;
      model.functions[bodies[p].fn_index].lambdas.push_back(lam_id);
      model.functions[bodies[bi].fn_index].qualified =
          (bodies[p].is_lambda ? model.functions[bodies[p].fn_index].qualified
                               : bodies[p].name) +
          "::" + model.functions[bodies[bi].fn_index].qualified;
    }
  }

  // Map from capture-open token -> lambda id, for spawn linking; and capture
  // open -> body close, for skipping whole lambda expressions in scans whose
  // facts must not absorb the lambda's innards (e.g. RHS derivation: in
  // `Thread t = spawn([buf] {...})` the capture belongs to the lambda, t
  // does not alias buf).
  std::map<std::size_t, int> lambda_at;
  std::map<std::size_t, std::size_t> lambda_end;
  for (std::size_t bi = 0; bi < bodies.size(); ++bi) {
    if (bodies[bi].is_lambda) {
      lambda_at[bodies[bi].capture_open] =
          model.functions[bodies[bi].fn_index].lambda_id;
      lambda_end[bodies[bi].capture_open] = bodies[bi].close;
    }
  }

  // child body lookup: body open index -> bodies index, sorted.
  std::vector<std::pair<std::size_t, std::size_t>> body_opens;
  for (std::size_t bi = 0; bi < bodies.size(); ++bi) {
    body_opens.emplace_back(bodies[bi].open, bi);
  }

  // -- pass 2: harvest facts per function body --------------------------------
  for (std::size_t bi = 0; bi < bodies.size(); ++bi) {
    const BodyInfo& body = bodies[bi];
    Function& fn = model.functions[body.fn_index];

    // Range-for aliases: `for (auto& t : threads)` makes join(t) a join on
    // `threads`.
    std::map<std::string, std::string> alias;

    auto resolve_alias = [&](std::string name) {
      for (int depth = 0; depth < 4; ++depth) {
        auto it = alias.find(name);
        if (it == alias.end()) break;
        name = it->second;
      }
      return name;
    };

    auto first_ident_in = [&](std::size_t a, std::size_t b) -> std::string {
      for (std::size_t i = a; i < b; ++i) {
        if (toks[i].kind == Tok::kIdent) return toks[i].text;
      }
      return {};
    };

    // Kernel-thread sync types (`std::mutex mu;`, `std::condition_variable`)
    // are recorded wherever they appear in the body, call position or not.
    static const std::set<std::string> kStdSyncTypes = {
        "mutex", "timed_mutex", "recursive_mutex", "recursive_timed_mutex",
        "shared_mutex", "shared_timed_mutex", "condition_variable",
        "condition_variable_any", "counting_semaphore", "binary_semaphore",
        "latch", "barrier"};
    for (std::size_t i = body.open + 1; i < body.close; ++i) {
      auto it = std::lower_bound(body_opens.begin(), body_opens.end(),
                                 std::make_pair(i, std::size_t{0}));
      if (it != body_opens.end() && it->first == i) {
        i = bodies[it->second].close;
        continue;
      }
      if (toks[i].kind == Tok::kIdent && kStdSyncTypes.count(toks[i].text) &&
          i >= 2 && is_punct(toks[i - 1], "::") && is_ident(toks[i - 2], "std")) {
        fn.std_sync_mentions.emplace_back(
            "std::" + toks[i].text, Location{file, toks[i].line, toks[i].col});
      }
    }

    for (std::size_t i = body.open + 1; i < body.close; ++i) {
      // Skip nested function/lambda bodies — their facts are their own.
      {
        auto it = std::lower_bound(
            body_opens.begin(), body_opens.end(), std::make_pair(i, std::size_t{0}));
        if (it != body_opens.end() && it->first == i) {
          i = bodies[it->second].close;
          continue;
        }
      }
      const Token& t = toks[i];

      // `return x;` / `return std::move(x);` — x escapes to the caller (a
      // spawn handle returned this way may be joined there).
      if (is_ident(t, "return") && i + 1 < body.close) {
        std::size_t a = i + 1;
        if (is_ident(toks[a], "std") && a + 3 < body.close &&
            is_punct(toks[a + 1], "::") && is_ident(toks[a + 2], "move") &&
            is_punct(toks[a + 3], "(")) {
          a += 4;
        }
        if (toks[a].kind == Tok::kIdent && a + 1 < body.close &&
            (is_punct(toks[a + 1], ";") || is_punct(toks[a + 1], ")"))) {
          fn.returned_bases.insert(resolve_alias(toks[a].text));
        }
      }

      // Range-for alias discovery.
      if (is_ident(t, "for") && i + 1 < toks.size() && is_punct(toks[i + 1], "(") &&
          match[i + 1] != kNone) {
        const std::size_t close = match[i + 1];
        for (std::size_t k = i + 2; k < close; ++k) {
          if (is_punct(toks[k], ":") && k > i + 2 && toks[k - 1].kind == Tok::kIdent) {
            const std::string var = toks[k - 1].text;
            const std::string container = first_ident_in(k + 1, close);
            if (!container.empty()) alias[var] = container;
            break;
          }
          if (is_punct(toks[k], ";")) break;  // classic for, not range-for
        }
        continue;
      }

      // Calls: identifier followed by '('.
      if (t.kind == Tok::kIdent && !control_keywords().count(t.text) &&
          i + 1 < toks.size() && is_punct(toks[i + 1], "(") && match[i + 1] != kNone) {
        CallSite cs;
        cs.callee = t.text;
        cs.loc = {file, t.line, t.col};
        cs.tok = i;
        // Qualifier chain `a::b::callee`.
        std::size_t q = i;
        while (q >= 2 && is_punct(toks[q - 1], "::") && toks[q - 2].kind == Tok::kIdent) {
          cs.qualifier = toks[q - 2].text +
                         (cs.qualifier.empty() ? "" : "::" + cs.qualifier);
          q -= 2;
        }
        // Method receiver `expr.callee(` / `expr->callee(`.
        if (q > 0 && (is_punct(toks[q - 1], ".") || is_punct(toks[q - 1], "->"))) {
          std::string recv;
          if (postfix_chain_head(toks, match, q - 1, &recv) != kNone) {
            cs.receiver = recv;
          }
        }
        const std::size_t paren = i + 1;
        const std::size_t paren_close = match[paren];
        const auto args = split_args(toks, match, paren, paren_close);
        // Argument identifiers, skipping nested lambda bodies: a spawned
        // lambda's body belongs to the lambda, not to the spawn call's
        // argument expression.
        for (std::size_t k = paren + 1; k < paren_close; ++k) {
          auto bit = std::lower_bound(body_opens.begin(), body_opens.end(),
                                      std::make_pair(k, std::size_t{0}));
          if (bit != body_opens.end() && bit->first == k) {
            k = bodies[bit->second].close;
            continue;
          }
          if (toks[k].kind == Tok::kIdent) cs.arg_idents.insert(toks[k].text);
        }

        // -- special call shapes -------------------------------------------
        const bool dfth_qualified = cs.qualifier.empty() || cs.qualifier == "dfth" ||
                                    cs.qualifier == "dfth::apps";
        if ((cs.callee == "spawn" && dfth_qualified && cs.receiver.empty()) ||
            cs.callee == "dfth_pthread_create" ||
            (cs.callee == "run" && dfth_qualified && cs.receiver.empty())) {
          SpawnSite sp;
          sp.enclosing_fn = body.fn_index;
          sp.loc = cs.loc;
          sp.is_run_body = (cs.callee == "run");
          // Link the first lambda starting at a top-level argument position.
          for (auto [a, b] : args) {
            if (a < b && is_punct(toks[a], "[")) {
              auto lit = lambda_at.find(a);
              if (lit != lambda_at.end()) {
                sp.lambda_id = lit->second;
                break;
              }
            }
          }
          if (cs.callee == "dfth_pthread_create") {
            if (!args.empty()) {
              std::size_t a = args[0].first;
              if (a < args[0].second && is_punct(toks[a], "&")) ++a;
              sp.handle_base = first_ident_in(a, args[0].second);
            }
            if (args.size() >= 3 && sp.lambda_id < 0) {
              sp.fn_arg = first_ident_in(args[2].first, args[2].second);
            }
            for (std::size_t ai = 3; ai < args.size(); ++ai) {
              auto [a, b] = args[ai];
              if (a < b && is_punct(toks[a], "&") && a + 1 < b &&
                  toks[a + 1].kind == Tok::kIdent) {
                sp.addr_of_args.push_back(toks[a + 1].text);
              }
            }
            sp.fate = HandleFate::kLocal;
          } else if (cs.callee == "spawn") {
            if (sp.lambda_id < 0 && !args.empty()) {
              sp.fn_arg = first_ident_in(args[0].first, args[0].second);
            }
            for (auto [a, b] : args) {
              if (a < b && is_punct(toks[a], "&") && a + 1 < b &&
                  toks[a + 1].kind == Tok::kIdent) {
                sp.addr_of_args.push_back(toks[a + 1].text);
              }
            }
            // Where does the handle go? Look before the callee chain.
            const std::size_t before = q;  // first token of qualified chain
            if (before > 0) {
              const Token& prev = toks[before - 1];
              if (is_punct(prev, "=")) {
                std::string lhs;
                const std::size_t head =
                    postfix_chain_head(toks, match, before - 1, &lhs);
                if (head != kNone) {
                  if (lhs.find('.') != std::string::npos) {
                    sp.fate = HandleFate::kEscaped;  // member store
                  } else {
                    sp.handle_base = toks[head].text;
                    sp.fate = HandleFate::kLocal;
                  }
                } else {
                  sp.fate = HandleFate::kEscaped;
                }
              } else if (is_ident(prev, "return")) {
                sp.fate = HandleFate::kEscaped;
              } else if (is_punct(prev, "(")) {
                // Argument of an outer call: push_back/emplace_back keep the
                // handle in the receiver container; anything else escapes.
                const std::size_t outer = before - 1;
                if (outer > 0 && toks[outer - 1].kind == Tok::kIdent) {
                  const std::string& outer_name = toks[outer - 1].text;
                  if (outer_name == "push_back" || outer_name == "emplace_back") {
                    std::string recv;
                    if (outer >= 2 &&
                        (is_punct(toks[outer - 2], ".") ||
                         is_punct(toks[outer - 2], "->")) &&
                        postfix_chain_head(toks, match, outer - 2, &recv) != kNone) {
                      sp.handle_base = recv;
                      sp.fate = HandleFate::kLocal;
                    } else {
                      sp.fate = HandleFate::kEscaped;
                    }
                  } else {
                    sp.fate = HandleFate::kEscaped;
                  }
                } else {
                  sp.fate = HandleFate::kEscaped;
                }
              } else if (is_punct(prev, ",")) {
                sp.fate = HandleFate::kEscaped;
              } else {
                sp.fate = HandleFate::kDiscarded;
              }
            }
          }
          model.spawns.push_back(std::move(sp));
        } else if (cs.callee == "join" || cs.callee == "dfth_pthread_join") {
          if (!args.empty()) {
            std::size_t a = args[0].first;
            if (a < args[0].second && is_punct(toks[a], "&")) ++a;
            const std::string base = first_ident_in(a, args[0].second);
            if (!base.empty()) fn.joined_bases.insert(resolve_alias(base));
          }
        } else if (cs.callee == "detach" || cs.callee == "dfth_pthread_detach") {
          if (!args.empty()) {
            const std::string base = first_ident_in(args[0].first, args[0].second);
            if (!base.empty()) fn.detached_bases.insert(resolve_alias(base));
          }
        } else if (cs.callee == "df_malloc" || cs.callee == "df_try_malloc") {
          if (!args.empty()) {
            AllocSite as;
            as.loc = cs.loc;
            for (std::size_t k = args[0].first; k < args[0].second; ++k) {
              as.size_expr.push_back(toks[k]);
            }
            fn.allocs.push_back(std::move(as));
          }
        } else if (cs.callee == "df_free") {
          if (!args.empty()) {
            const std::string base = first_ident_in(args[0].first, args[0].second);
            if (!base.empty()) fn.freed_locals.insert(resolve_alias(base));
          }
        } else if (cs.callee == "df_read" || cs.callee == "df_write") {
          Annotation an;
          an.is_write = (cs.callee == "df_write");
          an.loc = cs.loc;
          if (!args.empty()) {
            for (std::size_t k = args[0].first; k < args[0].second; ++k) {
              if (toks[k].kind == Tok::kIdent) an.arg_idents.insert(toks[k].text);
            }
          }
          fn.annotations.push_back(std::move(an));
        } else if (cs.callee == "dfth_pthread_mutex_lock" ||
                   cs.callee == "dfth_pthread_mutex_unlock" ||
                   cs.callee == "dfth_pthread_rwlock_wrlock" ||
                   cs.callee == "dfth_pthread_rwlock_rdlock" ||
                   cs.callee == "dfth_pthread_rwlock_unlock_rd" ||
                   cs.callee == "dfth_pthread_rwlock_unlock_wr") {
          if (!args.empty()) {
            std::size_t a = args[0].first;
            if (a < args[0].second && is_punct(toks[a], "&")) ++a;
            std::string id;
            // Normalize the whole argument as a chain when possible.
            std::size_t end = args[0].second;
            if (postfix_chain_head(toks, match, end, &id) == kNone || id.empty()) {
              id = first_ident_in(a, end);
            }
            if (!id.empty()) {
              const bool release = cs.callee.find("unlock") != std::string::npos;
              fn.lock_events.push_back(
                  {release ? LockEvent::kRelease : LockEvent::kAcquire, id, cs.loc});
            }
          }
        } else if (!cs.receiver.empty() &&
                   (cs.callee == "lock" || cs.callee == "wrlock" ||
                    cs.callee == "rdlock")) {
          fn.lock_events.push_back({LockEvent::kAcquire, cs.receiver, cs.loc});
        } else if (!cs.receiver.empty() &&
                   (cs.callee == "unlock" || cs.callee == "wrunlock" ||
                    cs.callee == "rdunlock")) {
          fn.lock_events.push_back({LockEvent::kRelease, cs.receiver, cs.loc});
        }
        fn.calls.push_back(std::move(cs));
        continue;
      }

      // Stores and initializations: assignment operators.
      if (t.kind == Tok::kPunct &&
          (t.text == "=" || t.text == "+=" || t.text == "-=" || t.text == "*=" ||
           t.text == "/=" || t.text == "%=" || t.text == "&=" || t.text == "|=" ||
           t.text == "^=" || t.text == "<<=" || t.text == ">>=")) {
        std::string chain;
        const std::size_t head = postfix_chain_head(toks, match, i, &chain);
        if (head == kNone) continue;
        const std::string base = toks[head].text;

        bool through_pointer = chain.find("[]") != std::string::npos ||
                               chain.find("->") != std::string::npos;
        // `*p = e` — deref store when the '*' is not part of a declarator.
        std::size_t decl_check = head;
        if (!through_pointer && head > 0 && is_punct(toks[head - 1], "*") &&
            chain.find('.') == std::string::npos) {
          if (head >= 2 && is_stmt_boundary(toks[head - 2])) {
            through_pointer = true;
          }
          decl_check = head - 1;
        }
        // Declaration with initializer? Covers `double* crow = ...` and array
        // declarations like `Thread kids[8] = {...}` — in both, the token
        // before the declared name is type-ish; a real store's base is
        // preceded by a statement boundary or operator instead.
        std::size_t decl_before = decl_check;
        if (chain.find("[]") != std::string::npos) decl_before = head;
        const bool is_decl =
            decl_before > 0 &&
            (toks[decl_before - 1].kind == Tok::kIdent ||
             is_punct(toks[decl_before - 1], "*") ||
             is_punct(toks[decl_before - 1], "&") ||
             is_punct(toks[decl_before - 1], ">")) &&
            chain.find('.') == std::string::npos && t.text == "=";

        // Record the initializer/assignment RHS for derivation tracking —
        // only for plain `x = ...` (re)bindings: a store *into* x[i] does not
        // make x an alias of the RHS.
        if (t.text == "=" && chain.find('.') == std::string::npos &&
            chain.find("[]") == std::string::npos) {
          std::set<std::string>& roots = fn.derived[base];
          std::size_t k = i + 1;
          while (k < body.close) {
            const Token& rt = toks[k];
            if (is_punct(rt, ";")) break;
            auto le = lambda_end.find(k);
            if (le != lambda_end.end()) {  // whole lambda expression
              k = le->second + 1;
              continue;
            }
            if (rt.kind == Tok::kIdent) {
              if (rt.text == "df_malloc" || rt.text == "df_try_malloc") {
                fn.malloc_locals.insert(base);
                fn.malloc_local_loc.emplace(base,
                                            Location{file, t.line, t.col});
              } else {
                roots.insert(rt.text);
              }
            }
            ++k;
          }
        }

        if (!is_decl) {
          fn.stores.push_back({base, through_pointer, {file, t.line, t.col}});
        }
        continue;
      }
    }
  }

  // Attribute `// dfth-space-alloc: <expr>` annotations to the innermost
  // enclosing function body: they declare allocations the token scan cannot
  // see (TrackedAllocator-backed containers, placement pools) and are charged
  // exactly like a df_malloc size argument by the space-bound analysis.
  for (const auto& [aline, expr] : file->space_allocs) {
    int best = -1;
    int best_span = 0;
    for (std::size_t bi = 0; bi < bodies.size(); ++bi) {
      const int lo = toks[bodies[bi].open].line;
      const int hi = toks[bodies[bi].close].line;
      if (aline < lo || aline > hi) continue;
      const int span = hi - lo;
      if (best < 0 || span < best_span) {
        best = static_cast<int>(bi);
        best_span = span;
      }
    }
    if (best < 0) continue;
    AllocSite as;
    as.from_annotation = true;
    as.loc = {file, aline, 1};
    const SourceFile lexed = lex_file("<dfth-space-alloc>", expr);
    as.size_expr = lexed.tokens;
    model.functions[bodies[static_cast<std::size_t>(best)].fn_index].allocs
        .push_back(std::move(as));
  }
  (void)first_fn;
}

}  // namespace dfth_check
