#include "lexer.h"

#include <cctype>

namespace dfth_check {
namespace {

bool ident_start(char c) { return std::isalpha(static_cast<unsigned char>(c)) || c == '_'; }
bool ident_char(char c) { return std::isalnum(static_cast<unsigned char>(c)) || c == '_'; }

// Multi-character punctuators, longest first so "<<=" wins over "<<".
const char* kPuncts[] = {
    "<<=", ">>=", "...", "->*", "::", "->", "<<", ">>", "<=", ">=", "==", "!=",
    "&&", "||", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "++", "--",
};

// Records `dfth-check-ignore(<check>)` / `dfth-check-ignore-file(<check>)`
// markers found in a comment. `line` is the line the comment starts on.
void scan_suppressions(const std::string& comment, int line, SourceFile& out) {
  static const std::string kMarker = "dfth-check-ignore";
  std::size_t at = 0;
  while ((at = comment.find(kMarker, at)) != std::string::npos) {
    std::size_t p = at + kMarker.size();
    const bool whole_file = comment.compare(p, 5, "-file") == 0;
    if (whole_file) p += 5;
    if (p >= comment.size() || comment[p] != '(') {
      at = p;
      continue;
    }
    const std::size_t close = comment.find(')', p);
    if (close == std::string::npos) break;
    std::string names = comment.substr(p + 1, close - p - 1);
    // Comma-separated list of check names (or "*").
    std::size_t start = 0;
    while (start <= names.size()) {
      std::size_t comma = names.find(',', start);
      if (comma == std::string::npos) comma = names.size();
      std::string name = names.substr(start, comma - start);
      while (!name.empty() && name.front() == ' ') name.erase(name.begin());
      while (!name.empty() && name.back() == ' ') name.pop_back();
      if (!name.empty()) {
        if (whole_file) {
          out.file_suppressions.insert(name);
        } else {
          out.line_suppressions[line].insert(name);
        }
      }
      start = comma + 1;
    }
    at = close;
  }
}

}  // namespace

bool SourceFile::suppressed(const std::string& check, int line) const {
  if (file_suppressions.count("*") || file_suppressions.count(check)) return true;
  // A marker suppresses its own line and the line below it, so it can ride
  // at the end of the flagged statement or on a comment line above it.
  for (int l : {line, line - 1}) {
    auto it = line_suppressions.find(l);
    if (it == line_suppressions.end()) continue;
    if (it->second.count("*") || it->second.count(check)) return true;
  }
  return false;
}

SourceFile lex_file(std::string path, const std::string& text) {
  SourceFile out;
  out.path = std::move(path);
  const std::size_t n = text.size();
  std::size_t i = 0;
  int line = 1, col = 1;

  auto advance = [&](std::size_t count) {
    for (std::size_t k = 0; k < count && i < n; ++k, ++i) {
      if (text[i] == '\n') {
        ++line;
        col = 1;
      } else {
        ++col;
      }
    }
  };

  bool at_line_start = true;  // only whitespace seen on this line so far
  while (i < n) {
    const char c = text[i];
    if (c == '\n' || std::isspace(static_cast<unsigned char>(c))) {
      if (c == '\n') at_line_start = true;
      advance(1);
      continue;
    }

    // Preprocessor directive: swallow to end of line, honoring backslash
    // continuations. (No macro expansion — the checks work on the code as
    // written, which is what the contract annotations live in.)
    if (c == '#' && at_line_start) {
      while (i < n) {
        if (text[i] == '\\' && i + 1 < n && text[i + 1] == '\n') {
          advance(2);
          continue;
        }
        if (text[i] == '\n') break;
        advance(1);
      }
      continue;
    }
    at_line_start = false;

    // Comments: consumed, scanned for suppression markers.
    if (c == '/' && i + 1 < n && text[i + 1] == '/') {
      const int start_line = line;
      std::size_t end = text.find('\n', i);
      if (end == std::string::npos) end = n;
      scan_suppressions(text.substr(i, end - i), start_line, out);
      advance(end - i);
      continue;
    }
    if (c == '/' && i + 1 < n && text[i + 1] == '*') {
      const int start_line = line;
      std::size_t end = text.find("*/", i + 2);
      if (end == std::string::npos) end = n; else end += 2;
      scan_suppressions(text.substr(i, end - i), start_line, out);
      advance(end - i);
      continue;
    }

    // Raw strings: R"delim( ... )delim".
    if (c == 'R' && i + 1 < n && text[i + 1] == '"') {
      std::size_t open = text.find('(', i + 2);
      if (open != std::string::npos && open - (i + 2) <= 16) {
        const std::string delim = text.substr(i + 2, open - (i + 2));
        const std::string closer = ")" + delim + "\"";
        std::size_t end = text.find(closer, open + 1);
        if (end == std::string::npos) end = n; else end += closer.size();
        out.tokens.push_back({Tok::kString, "\"\"", line, col});
        advance(end - i);
        continue;
      }
    }

    // String / char literals.
    if (c == '"' || c == '\'') {
      const char quote = c;
      const int tline = line, tcol = col;
      advance(1);
      while (i < n && text[i] != quote) {
        if (text[i] == '\\' && i + 1 < n) advance(2); else advance(1);
        if (i > 0 && text[i - 1] == '\n') break;  // unterminated; bail at EOL
      }
      if (i < n && text[i] == quote) advance(1);
      out.tokens.push_back({Tok::kString, std::string(1, quote), tline, tcol});
      continue;
    }

    if (ident_start(c)) {
      const int tline = line, tcol = col;
      std::size_t j = i;
      while (j < n && ident_char(text[j])) ++j;
      out.tokens.push_back({Tok::kIdent, text.substr(i, j - i), tline, tcol});
      advance(j - i);
      continue;
    }

    if (std::isdigit(static_cast<unsigned char>(c))) {
      const int tline = line, tcol = col;
      std::size_t j = i;
      // Loose pp-number: digits, letters, dots, and exponent signs.
      while (j < n && (ident_char(text[j]) || text[j] == '.' ||
                       ((text[j] == '+' || text[j] == '-') && j > i &&
                        (text[j - 1] == 'e' || text[j - 1] == 'E' ||
                         text[j - 1] == 'p' || text[j - 1] == 'P')))) {
        ++j;
      }
      out.tokens.push_back({Tok::kNumber, text.substr(i, j - i), tline, tcol});
      advance(j - i);
      continue;
    }

    // Punctuation: try the fused multi-char operators first.
    {
      const int tline = line, tcol = col;
      std::string matched(1, c);
      for (const char* p : kPuncts) {
        const std::size_t len = std::char_traits<char>::length(p);
        if (i + len <= n && text.compare(i, len, p) == 0) {
          matched.assign(p, len);
          break;
        }
      }
      out.tokens.push_back({Tok::kPunct, matched, tline, tcol});
      advance(matched.size());
    }
  }
  return out;
}

}  // namespace dfth_check
