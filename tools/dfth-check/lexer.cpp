#include "lexer.h"

#include <cctype>

namespace dfth_check {
namespace {

bool ident_start(char c) { return std::isalpha(static_cast<unsigned char>(c)) || c == '_'; }
bool ident_char(char c) { return std::isalnum(static_cast<unsigned char>(c)) || c == '_'; }

// Multi-character punctuators, longest first so "<<=" wins over "<<".
const char* kPuncts[] = {
    "<<=", ">>=", "...", "->*", "::", "->", "<<", ">>", "<=", ">=", "==", "!=",
    "&&", "||", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "++", "--",
};

// Records `dfth-space-alloc: <expr>` annotations found in a comment: a
// byte-size expression for an allocation the token scan cannot see.
void scan_space_allocs(const std::string& comment, int line, SourceFile& out) {
  static const std::string kMarker = "dfth-space-alloc:";
  const std::size_t at = comment.find(kMarker);
  if (at == std::string::npos) return;
  std::size_t p = at + kMarker.size();
  std::size_t end = comment.find('\n', p);
  if (end == std::string::npos) end = comment.size();
  std::string expr = comment.substr(p, end - p);
  // Trim whitespace and a trailing "*/".
  if (expr.size() >= 2 && expr.compare(expr.size() - 2, 2, "*/") == 0) {
    expr.resize(expr.size() - 2);
  }
  while (!expr.empty() && std::isspace(static_cast<unsigned char>(expr.front()))) {
    expr.erase(expr.begin());
  }
  while (!expr.empty() && std::isspace(static_cast<unsigned char>(expr.back()))) {
    expr.pop_back();
  }
  if (!expr.empty()) out.space_allocs[line] = expr;
}

// Records `dfth-check-ignore(<check>)` / `dfth-check-ignore-file(<check>)`
// markers found in a comment. `line` is the line the comment starts on.
void scan_suppressions(const std::string& comment, int line, SourceFile& out) {
  static const std::string kMarker = "dfth-check-ignore";
  std::size_t at = 0;
  while ((at = comment.find(kMarker, at)) != std::string::npos) {
    std::size_t p = at + kMarker.size();
    const bool whole_file = comment.compare(p, 5, "-file") == 0;
    if (whole_file) p += 5;
    if (p >= comment.size() || comment[p] != '(') {
      at = p;
      continue;
    }
    const std::size_t close = comment.find(')', p);
    if (close == std::string::npos) break;
    std::string names = comment.substr(p + 1, close - p - 1);
    // Comma-separated list of check names (or "*").
    std::size_t start = 0;
    while (start <= names.size()) {
      std::size_t comma = names.find(',', start);
      if (comma == std::string::npos) comma = names.size();
      std::string name = names.substr(start, comma - start);
      while (!name.empty() && name.front() == ' ') name.erase(name.begin());
      while (!name.empty() && name.back() == ' ') name.pop_back();
      if (!name.empty()) {
        if (whole_file) {
          out.file_suppressions.insert(name);
        } else {
          out.line_suppressions[line].insert(name);
        }
      }
      start = comma + 1;
    }
    at = close;
  }
}

}  // namespace

bool SourceFile::suppressed(const std::string& check, int line) const {
  if (file_suppressions.count("*") || file_suppressions.count(check)) return true;
  // Markers were re-anchored after lexing (see lex_file) so each entry sits
  // exactly on the one statement line it governs.
  auto it = line_suppressions.find(line);
  if (it == line_suppressions.end()) return false;
  return it->second.count("*") > 0 || it->second.count(check) > 0;
}

SourceFile lex_file(std::string path, const std::string& text) {
  SourceFile out;
  out.path = std::move(path);
  const std::size_t n = text.size();
  std::size_t i = 0;
  int line = 1, col = 1;

  auto advance = [&](std::size_t count) {
    for (std::size_t k = 0; k < count && i < n; ++k, ++i) {
      if (text[i] == '\n') {
        ++line;
        col = 1;
      } else {
        ++col;
      }
    }
  };

  bool at_line_start = true;  // only whitespace seen on this line so far
  while (i < n) {
    const char c = text[i];
    if (c == '\n' || std::isspace(static_cast<unsigned char>(c))) {
      if (c == '\n') at_line_start = true;
      advance(1);
      continue;
    }

    // Preprocessor directive: swallow to end of line, honoring backslash
    // continuations. (No macro expansion — the checks work on the code as
    // written, which is what the contract annotations live in.)
    if (c == '#' && at_line_start) {
      while (i < n) {
        if (text[i] == '\\' && i + 1 < n && text[i + 1] == '\n') {
          advance(2);
          continue;
        }
        if (text[i] == '\n') break;
        advance(1);
      }
      continue;
    }
    at_line_start = false;

    // Comments: consumed, scanned for suppression markers.
    if (c == '/' && i + 1 < n && text[i + 1] == '/') {
      const int start_line = line;
      std::size_t end = text.find('\n', i);
      if (end == std::string::npos) end = n;
      scan_suppressions(text.substr(i, end - i), start_line, out);
      scan_space_allocs(text.substr(i, end - i), start_line, out);
      advance(end - i);
      continue;
    }
    if (c == '/' && i + 1 < n && text[i + 1] == '*') {
      const int start_line = line;
      std::size_t end = text.find("*/", i + 2);
      if (end == std::string::npos) end = n; else end += 2;
      scan_suppressions(text.substr(i, end - i), start_line, out);
      scan_space_allocs(text.substr(i, end - i), start_line, out);
      advance(end - i);
      continue;
    }

    // Raw strings: R"delim( ... )delim", with any of the encoding prefixes
    // (u8R / uR / UR / LR). The content is dropped like a normal string so
    // code-shaped text inside cannot fake tokens.
    {
      std::size_t plen = 0;  // length up to and including the R
      if (c == 'R' && i + 1 < n && text[i + 1] == '"') {
        plen = 1;
      } else if ((c == 'u' || c == 'U' || c == 'L')) {
        if (c == 'u' && i + 3 < n && text[i + 1] == '8' && text[i + 2] == 'R' &&
            text[i + 3] == '"') {
          plen = 3;
        } else if (i + 2 < n && text[i + 1] == 'R' && text[i + 2] == '"') {
          plen = 2;
        }
      }
      if (plen != 0) {
        const std::size_t q = i + plen;  // the opening '"'
        std::size_t open = text.find('(', q + 1);
        if (open != std::string::npos && open - (q + 1) <= 16) {
          const std::string delim = text.substr(q + 1, open - (q + 1));
          const std::string closer = ")" + delim + "\"";
          std::size_t end = text.find(closer, open + 1);
          if (end == std::string::npos) end = n; else end += closer.size();
          out.tokens.push_back({Tok::kString, "\"\"", line, col});
          advance(end - i);
          continue;
        }
      }
    }

    // String / char literals.
    if (c == '"' || c == '\'') {
      const char quote = c;
      const int tline = line, tcol = col;
      advance(1);
      while (i < n && text[i] != quote) {
        if (text[i] == '\\' && i + 1 < n) advance(2); else advance(1);
        if (i > 0 && text[i - 1] == '\n') break;  // unterminated; bail at EOL
      }
      if (i < n && text[i] == quote) advance(1);
      out.tokens.push_back({Tok::kString, std::string(1, quote), tline, tcol});
      continue;
    }

    if (ident_start(c)) {
      const int tline = line, tcol = col;
      std::size_t j = i;
      while (j < n && ident_char(text[j])) ++j;
      out.tokens.push_back({Tok::kIdent, text.substr(i, j - i), tline, tcol});
      advance(j - i);
      continue;
    }

    if (std::isdigit(static_cast<unsigned char>(c))) {
      const int tline = line, tcol = col;
      std::size_t j = i;
      // Loose pp-number: digits, letters, dots, exponent signs, and digit
      // separators (1'000'000) — a ' inside a number is part of it when a
      // digit/letter follows, never the start of a char literal.
      while (j < n && (ident_char(text[j]) || text[j] == '.' ||
                       (text[j] == '\'' && j + 1 < n &&
                        std::isalnum(static_cast<unsigned char>(text[j + 1]))) ||
                       ((text[j] == '+' || text[j] == '-') && j > i &&
                        (text[j - 1] == 'e' || text[j - 1] == 'E' ||
                         text[j - 1] == 'p' || text[j - 1] == 'P')))) {
        ++j;
      }
      out.tokens.push_back({Tok::kNumber, text.substr(i, j - i), tline, tcol});
      advance(j - i);
      continue;
    }

    // Punctuation: try the fused multi-char operators first.
    {
      const int tline = line, tcol = col;
      std::string matched(1, c);
      for (const char* p : kPuncts) {
        const std::size_t len = std::char_traits<char>::length(p);
        if (i + len <= n && text.compare(i, len, p) == 0) {
          matched.assign(p, len);
          break;
        }
      }
      out.tokens.push_back({Tok::kPunct, matched, tline, tcol});
      advance(matched.size());
    }
  }

  // Re-anchor suppression markers to the single statement they govern: a
  // marker trailing code stays on its line; one on a comment-only line moves
  // to the next line that carries a token. This is what scopes an ignore to
  // the *next statement only* — it can never blanket the rest of the file.
  if (!out.line_suppressions.empty()) {
    std::set<int> token_lines;
    for (const Token& t : out.tokens) token_lines.insert(t.line);
    std::map<int, std::set<std::string>> anchored;
    for (auto& [mline, checks] : out.line_suppressions) {
      int target = mline;
      if (!token_lines.count(mline)) {
        auto next = token_lines.upper_bound(mline);
        if (next == token_lines.end()) continue;  // trailing comment: inert
        target = *next;
      }
      anchored[target].insert(checks.begin(), checks.end());
    }
    out.line_suppressions = std::move(anchored);
  }
  return out;
}

}  // namespace dfth_check
