// dfth-check — fiber-correctness static analyzer for the DFThreads app,
// compat, example, and bench layers.
//
// Usage:
//   dfth-check [options] <file-or-dir>...
//
// Options:
//   --check=<name>[,<name>...]   run only the named checks (see --list-checks)
//   --json=<file>                also write diagnostics as JSON (CI artifact)
//   --format=<text|sarif>        stdout rendering: human text (default) or a
//                                SARIF 2.1.0 document for code scanning
//   --lock-graph-json=<file>     dump the static lock-order edge set, for
//                                cross-checking against the dynamic
//                                analyze/lock_graph.h ordering
//   --shared-write-paths=<subs>  comma-separated path substrings where
//                                unannotated-shared-write fires
//                                (default: src/apps/,fixtures/)
//   --space-bound=<file>         run the AsyncDF space-bound analysis instead
//                                of the checks; write SPACE_BOUND.json here
//   --space-app=<name>:<root>[+<root>...][:<k=v>[,<k=v>...]]
//                                one app to certify (repeatable): its root
//                                functions and integer symbol bindings
//   --space-sizeof=<T=N>[,...]   sizeof bindings for app types
//   --space-procs=<p> --space-quota=<K> --space-c=<c>
//   --space-assume-depth=<d>     bound parameters (defaults: 8, 32768, 1, 8)
//   --dump-tokens                print the lexed token stream and exit
//                                (lexer unit-test hook)
//   --list-checks                print check names and exit
//   --frontend                   print the active frontend and exit
//
// Exit status: 0 clean, 1 diagnostics reported, 2 usage/IO error.
//
// Suppressions: `// dfth-check-ignore(<check>)` trailing the flagged
// statement or on a comment line directly above it (next-statement scope
// only); `// dfth-check-ignore-file(<check>)` anywhere in the file; `*`
// matches every check.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "checks.h"
#include "lexer.h"
#include "model.h"
#include "space_bound.h"
#include "spawn_graph.h"

#if DFTH_CHECK_HAVE_CLANG
#include "clang_frontend.h"
#endif

namespace {

namespace fs = std::filesystem;
using dfth_check::Diagnostic;

bool has_source_extension(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cpp" || ext == ".cc" || ext == ".cxx" || ext == ".h" ||
         ext == ".hpp";
}

std::vector<std::string> collect_files(const std::vector<std::string>& args) {
  std::vector<std::string> files;
  for (const std::string& a : args) {
    fs::path p(a);
    std::error_code ec;
    if (fs::is_directory(p, ec)) {
      for (auto it = fs::recursive_directory_iterator(p, ec);
           it != fs::recursive_directory_iterator(); ++it) {
        if (it->path().filename() == "build" || it->path().filename() == ".git") {
          it.disable_recursion_pending();
          continue;
        }
        if (it->is_regular_file(ec) && has_source_extension(it->path())) {
          files.push_back(it->path().string());
        }
      }
    } else {
      files.push_back(a);
    }
  }
  std::sort(files.begin(), files.end());
  return files;
}

std::vector<std::string> split_csv(const std::string& s) {
  std::vector<std::string> out;
  std::stringstream ss(s);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

std::string json_escape(const std::string& s) {
  std::string out;
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out += c;
    }
  }
  return out;
}

// SARIF 2.1.0 document for GitHub code scanning: one rule per check name,
// one result per diagnostic.
void print_sarif(const std::vector<Diagnostic>& diags) {
  std::printf("{\n");
  std::printf("  \"version\": \"2.1.0\",\n");
  std::printf(
      "  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n");
  std::printf("  \"runs\": [{\n");
  std::printf("    \"tool\": {\"driver\": {\"name\": \"dfth-check\",\n");
  std::printf("      \"informationUri\": \"DESIGN.md#9\",\n");
  std::printf("      \"rules\": [\n");
  const auto names = dfth_check::all_check_names();
  for (std::size_t i = 0; i < names.size(); ++i) {
    std::printf("        {\"id\": \"%s\"}%s\n", names[i].c_str(),
                i + 1 < names.size() ? "," : "");
  }
  std::printf("      ]}},\n");
  std::printf("    \"results\": [\n");
  for (std::size_t i = 0; i < diags.size(); ++i) {
    const Diagnostic& d = diags[i];
    std::printf("      {\"ruleId\": \"%s\", \"level\": \"warning\",\n",
                d.check.c_str());
    std::printf("       \"message\": {\"text\": \"%s\"},\n",
                json_escape(d.message).c_str());
    std::printf(
        "       \"locations\": [{\"physicalLocation\": "
        "{\"artifactLocation\": {\"uri\": \"%s\"}, "
        "\"region\": {\"startLine\": %d, \"startColumn\": %d}}}]}%s\n",
        json_escape(d.path).c_str(), d.line, d.col > 0 ? d.col : 1,
        i + 1 < diags.size() ? "," : "");
  }
  std::printf("    ]\n  }]\n}\n");
}

// Parses `<name>:<root>[+<root>...][:<k=v>[,<k=v>...]]`.
bool parse_space_app(const std::string& v, dfth_check::AppSpec& spec) {
  const std::size_t c1 = v.find(':');
  if (c1 == std::string::npos || c1 == 0) return false;
  spec.name = v.substr(0, c1);
  const std::size_t c2 = v.find(':', c1 + 1);
  const std::string roots =
      v.substr(c1 + 1, (c2 == std::string::npos ? v.size() : c2) - c1 - 1);
  if (roots.empty()) return false;
  std::stringstream rs(roots);
  std::string root;
  while (std::getline(rs, root, '+')) {
    if (!root.empty()) spec.roots.push_back(root);
  }
  if (spec.roots.empty()) return false;
  if (c2 != std::string::npos) {
    for (const std::string& kv : split_csv(v.substr(c2 + 1))) {
      const std::size_t eq = kv.find('=');
      if (eq == std::string::npos || eq == 0) return false;
      char* end = nullptr;
      const long long val = std::strtoll(kv.c_str() + eq + 1, &end, 0);
      if (end == nullptr || *end != '\0') return false;
      spec.params[kv.substr(0, eq)] = val;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> positional;
  dfth_check::CheckOptions opts;
  std::string json_path, lock_graph_path;
  std::string format = "text";
  bool dump_tokens = false;
  std::string space_bound_path;
  std::vector<dfth_check::AppSpec> space_apps;
  dfth_check::SpaceBoundOptions space_opts;
  space_opts.sizeofs = dfth_check::builtin_sizeofs();

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value_of = [&](const char* prefix) -> const char* {
      const std::size_t n = std::strlen(prefix);
      return arg.compare(0, n, prefix) == 0 ? arg.c_str() + n : nullptr;
    };
    if (arg == "--list-checks") {
      for (const auto& name : dfth_check::all_check_names()) {
        std::printf("%s\n", name.c_str());
      }
      return 0;
    }
    if (arg == "--frontend") {
#if DFTH_CHECK_HAVE_CLANG
      std::printf("clang-libtooling+builtin\n");
#else
      std::printf("builtin\n");
#endif
      return 0;
    }
    if (const char* v = value_of("--check=")) {
      for (const auto& name : split_csv(v)) opts.enabled.insert(name);
      continue;
    }
    if (const char* v = value_of("--json=")) {
      json_path = v;
      continue;
    }
    if (const char* v = value_of("--lock-graph-json=")) {
      lock_graph_path = v;
      continue;
    }
    if (const char* v = value_of("--shared-write-paths=")) {
      opts.shared_write_paths = split_csv(v);
      continue;
    }
    if (const char* v = value_of("--format=")) {
      format = v;
      if (format != "text" && format != "sarif") {
        std::fprintf(stderr, "dfth-check: unknown format '%s' (text|sarif)\n",
                     format.c_str());
        return 2;
      }
      continue;
    }
    if (arg == "--dump-tokens") {
      dump_tokens = true;
      continue;
    }
    if (const char* v = value_of("--space-bound=")) {
      space_bound_path = v;
      continue;
    }
    if (const char* v = value_of("--space-app=")) {
      dfth_check::AppSpec spec;
      if (!parse_space_app(v, spec)) {
        std::fprintf(stderr,
                     "dfth-check: bad --space-app '%s' (want "
                     "name:root[+root...][:k=v,...])\n",
                     v);
        return 2;
      }
      space_apps.push_back(std::move(spec));
      continue;
    }
    if (const char* v = value_of("--space-sizeof=")) {
      for (const std::string& kv : split_csv(v)) {
        const std::size_t eq = kv.find('=');
        char* end = nullptr;
        const long long val =
            eq == std::string::npos
                ? 0
                : std::strtoll(kv.c_str() + eq + 1, &end, 0);
        if (eq == std::string::npos || eq == 0 || end == nullptr ||
            *end != '\0' || val <= 0) {
          std::fprintf(stderr, "dfth-check: bad --space-sizeof '%s'\n",
                       kv.c_str());
          return 2;
        }
        space_opts.sizeofs[kv.substr(0, eq)] = val;
      }
      continue;
    }
    if (const char* v = value_of("--space-procs=")) {
      space_opts.procs = std::atoll(v);
      continue;
    }
    if (const char* v = value_of("--space-quota=")) {
      space_opts.quota_bytes = std::atoll(v);
      continue;
    }
    if (const char* v = value_of("--space-c=")) {
      space_opts.c = std::atoll(v);
      continue;
    }
    if (const char* v = value_of("--space-assume-depth=")) {
      space_opts.assume_depth = std::atoi(v);
      continue;
    }
    if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "dfth-check: unknown option '%s'\n", arg.c_str());
      return 2;
    }
    positional.push_back(arg);
  }
  if (positional.empty()) {
    std::fprintf(stderr, "usage: dfth-check [options] <file-or-dir>...\n");
    return 2;
  }

  // Validate --check names early so a typo cannot silently disable a check.
  if (!opts.enabled.empty()) {
    const auto known = dfth_check::all_check_names();
    for (const auto& name : opts.enabled) {
      if (std::find(known.begin(), known.end(), name) == known.end()) {
        std::fprintf(stderr, "dfth-check: unknown check '%s'\n", name.c_str());
        return 2;
      }
    }
  }

  const std::vector<std::string> files = collect_files(positional);
  if (files.empty()) {
    std::fprintf(stderr,
                 "dfth-check: no C++ sources found under the given paths — "
                 "nothing to analyze\n");
    return 2;
  }

  dfth_check::Model model;
  for (const std::string& path : files) {
    std::ifstream in(path, std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "dfth-check: cannot read '%s'\n", path.c_str());
      return 2;
    }
    std::ostringstream text;
    text << in.rdbuf();
    auto file = std::make_unique<dfth_check::SourceFile>(
        dfth_check::lex_file(path, text.str()));
    dfth_check::build_model_from_tokens(file.get(), model);
    model.files.push_back(std::move(file));
  }
  model.index();

  if (dump_tokens) {
    // Lexer unit-test hook: one line per token, `path:line:col kind text`.
    for (const auto& file : model.files) {
      for (const dfth_check::Token& t : file->tokens) {
        const char kind = t.kind == dfth_check::Tok::kIdent    ? 'I'
                          : t.kind == dfth_check::Tok::kNumber ? 'N'
                          : t.kind == dfth_check::Tok::kString ? 'S'
                                                               : 'P';
        std::printf("%s:%d:%d %c %s\n", file->path.c_str(), t.line, t.col,
                    kind, t.text.c_str());
      }
      for (const auto& [line, checks] : file->line_suppressions) {
        for (const auto& c : checks) {
          std::printf("%s:%d:0 G %s\n", file->path.c_str(), line, c.c_str());
        }
      }
    }
    return 0;
  }

#if DFTH_CHECK_HAVE_CLANG
  // When LLVM dev libraries were found at configure time, refine the token
  // model with AST-accurate facts (type-checked captures, resolved callees).
  dfth_check::refine_model_with_clang(model);
#endif

  // Space-bound mode: certify S1 + c*p*K*D per app over the spawn graph and
  // exit (the correctness checks run in their own invocation).
  if (!space_bound_path.empty()) {
    if (space_apps.empty()) {
      std::fprintf(stderr,
                   "dfth-check: --space-bound needs at least one --space-app\n");
      return 2;
    }
    const dfth_check::SpawnGraph graph = dfth_check::build_spawn_graph(model);
    std::vector<dfth_check::AppBound> bounds;
    for (const auto& spec : space_apps) {
      bounds.push_back(
          dfth_check::compute_space_bound(model, graph, spec, space_opts));
      const auto& b = bounds.back();
      std::printf(
          "%-10s S1=%lld bytes  D=%d  bound=%lld bytes  %s\n", b.app.c_str(),
          b.serial_space, b.depth, b.bound,
          b.certified ? "certified" : "UNCERTIFIED (symbolic terms remain)");
      for (const auto& sym : b.symbolic_terms) {
        std::printf("  symbolic: %s\n", sym.c_str());
      }
      for (const auto& cyc : b.recursion_cycles) {
        std::printf("  recursion (charged x%d): %s\n", space_opts.assume_depth,
                    cyc.c_str());
      }
    }
    if (!dfth_check::write_space_bound_json(space_bound_path, bounds,
                                            space_opts)) {
      std::fprintf(stderr, "dfth-check: cannot write '%s'\n",
                   space_bound_path.c_str());
      return 2;
    }
    return 0;
  }

  std::vector<dfth_check::LockEdge> lock_edges;
  if (!lock_graph_path.empty()) opts.lock_edges_out = &lock_edges;

  const std::vector<Diagnostic> diags = dfth_check::run_checks(model, opts);
  if (format == "sarif") {
    print_sarif(diags);
  } else {
    for (const Diagnostic& d : diags) {
      std::printf("%s:%d:%d: warning: %s [dfth-check:%s]\n", d.path.c_str(),
                  d.line, d.col, d.message.c_str(), d.check.c_str());
    }
    if (!diags.empty()) {
      std::printf("dfth-check: %zu finding(s)\n", diags.size());
    }
  }

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    out << "{\n  \"findings\": [\n";
    for (std::size_t i = 0; i < diags.size(); ++i) {
      const Diagnostic& d = diags[i];
      out << "    {\"check\": \"" << d.check << "\", \"file\": \""
          << json_escape(d.path) << "\", \"line\": " << d.line
          << ", \"col\": " << d.col << ", \"message\": \""
          << json_escape(d.message) << "\"}" << (i + 1 < diags.size() ? "," : "")
          << "\n";
    }
    out << "  ]\n}\n";
  }
  if (!lock_graph_path.empty()) {
    std::ofstream out(lock_graph_path);
    out << "{\n  \"edges\": [\n";
    for (std::size_t i = 0; i < lock_edges.size(); ++i) {
      const auto& e = lock_edges[i];
      out << "    {\"from\": \"" << json_escape(e.from) << "\", \"to\": \""
          << json_escape(e.to) << "\", \"file\": \"" << json_escape(e.path)
          << "\", \"line\": " << e.line << "}"
          << (i + 1 < lock_edges.size() ? "," : "") << "\n";
    }
    out << "  ]\n}\n";
  }
  return diags.empty() ? 0 : 1;
}
