// dfth-check — fiber-correctness static analyzer for the DFThreads app,
// compat, example, and bench layers.
//
// Usage:
//   dfth-check [options] <file-or-dir>...
//
// Options:
//   --check=<name>[,<name>...]   run only the named checks (see --list-checks)
//   --json=<file>                also write diagnostics as JSON (CI artifact)
//   --lock-graph-json=<file>     dump the static lock-order edge set, for
//                                cross-checking against the dynamic
//                                analyze/lock_graph.h ordering
//   --shared-write-paths=<subs>  comma-separated path substrings where
//                                unannotated-shared-write fires
//                                (default: src/apps/,fixtures/)
//   --list-checks                print check names and exit
//   --frontend                   print the active frontend and exit
//
// Exit status: 0 clean, 1 diagnostics reported, 2 usage/IO error.
//
// Suppressions: `// dfth-check-ignore(<check>)` on the flagged line or the
// line above; `// dfth-check-ignore-file(<check>)` anywhere in the file;
// `*` matches every check.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "checks.h"
#include "lexer.h"
#include "model.h"

#if DFTH_CHECK_HAVE_CLANG
#include "clang_frontend.h"
#endif

namespace {

namespace fs = std::filesystem;
using dfth_check::Diagnostic;

bool has_source_extension(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cpp" || ext == ".cc" || ext == ".cxx" || ext == ".h" ||
         ext == ".hpp";
}

std::vector<std::string> collect_files(const std::vector<std::string>& args) {
  std::vector<std::string> files;
  for (const std::string& a : args) {
    fs::path p(a);
    std::error_code ec;
    if (fs::is_directory(p, ec)) {
      for (auto it = fs::recursive_directory_iterator(p, ec);
           it != fs::recursive_directory_iterator(); ++it) {
        if (it->path().filename() == "build" || it->path().filename() == ".git") {
          it.disable_recursion_pending();
          continue;
        }
        if (it->is_regular_file(ec) && has_source_extension(it->path())) {
          files.push_back(it->path().string());
        }
      }
    } else {
      files.push_back(a);
    }
  }
  std::sort(files.begin(), files.end());
  return files;
}

std::vector<std::string> split_csv(const std::string& s) {
  std::vector<std::string> out;
  std::stringstream ss(s);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

std::string json_escape(const std::string& s) {
  std::string out;
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out += c;
    }
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> positional;
  dfth_check::CheckOptions opts;
  std::string json_path, lock_graph_path;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value_of = [&](const char* prefix) -> const char* {
      const std::size_t n = std::strlen(prefix);
      return arg.compare(0, n, prefix) == 0 ? arg.c_str() + n : nullptr;
    };
    if (arg == "--list-checks") {
      for (const auto& name : dfth_check::all_check_names()) {
        std::printf("%s\n", name.c_str());
      }
      return 0;
    }
    if (arg == "--frontend") {
#if DFTH_CHECK_HAVE_CLANG
      std::printf("clang-libtooling+builtin\n");
#else
      std::printf("builtin\n");
#endif
      return 0;
    }
    if (const char* v = value_of("--check=")) {
      for (const auto& name : split_csv(v)) opts.enabled.insert(name);
      continue;
    }
    if (const char* v = value_of("--json=")) {
      json_path = v;
      continue;
    }
    if (const char* v = value_of("--lock-graph-json=")) {
      lock_graph_path = v;
      continue;
    }
    if (const char* v = value_of("--shared-write-paths=")) {
      opts.shared_write_paths = split_csv(v);
      continue;
    }
    if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "dfth-check: unknown option '%s'\n", arg.c_str());
      return 2;
    }
    positional.push_back(arg);
  }
  if (positional.empty()) {
    std::fprintf(stderr, "usage: dfth-check [options] <file-or-dir>...\n");
    return 2;
  }

  // Validate --check names early so a typo cannot silently disable a check.
  if (!opts.enabled.empty()) {
    const auto known = dfth_check::all_check_names();
    for (const auto& name : opts.enabled) {
      if (std::find(known.begin(), known.end(), name) == known.end()) {
        std::fprintf(stderr, "dfth-check: unknown check '%s'\n", name.c_str());
        return 2;
      }
    }
  }

  dfth_check::Model model;
  for (const std::string& path : collect_files(positional)) {
    std::ifstream in(path, std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "dfth-check: cannot read '%s'\n", path.c_str());
      return 2;
    }
    std::ostringstream text;
    text << in.rdbuf();
    auto file = std::make_unique<dfth_check::SourceFile>(
        dfth_check::lex_file(path, text.str()));
    dfth_check::build_model_from_tokens(file.get(), model);
    model.files.push_back(std::move(file));
  }
  model.index();

#if DFTH_CHECK_HAVE_CLANG
  // When LLVM dev libraries were found at configure time, refine the token
  // model with AST-accurate facts (type-checked captures, resolved callees).
  dfth_check::refine_model_with_clang(model);
#endif

  std::vector<dfth_check::LockEdge> lock_edges;
  if (!lock_graph_path.empty()) opts.lock_edges_out = &lock_edges;

  const std::vector<Diagnostic> diags = dfth_check::run_checks(model, opts);
  for (const Diagnostic& d : diags) {
    std::printf("%s:%d:%d: warning: %s [dfth-check:%s]\n", d.path.c_str(),
                d.line, d.col, d.message.c_str(), d.check.c_str());
  }
  if (!diags.empty()) {
    std::printf("dfth-check: %zu finding(s)\n", diags.size());
  }

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    out << "{\n  \"findings\": [\n";
    for (std::size_t i = 0; i < diags.size(); ++i) {
      const Diagnostic& d = diags[i];
      out << "    {\"check\": \"" << d.check << "\", \"file\": \""
          << json_escape(d.path) << "\", \"line\": " << d.line
          << ", \"col\": " << d.col << ", \"message\": \""
          << json_escape(d.message) << "\"}" << (i + 1 < diags.size() ? "," : "")
          << "\n";
    }
    out << "  ]\n}\n";
  }
  if (!lock_graph_path.empty()) {
    std::ofstream out(lock_graph_path);
    out << "{\n  \"edges\": [\n";
    for (std::size_t i = 0; i < lock_edges.size(); ++i) {
      const auto& e = lock_edges[i];
      out << "    {\"from\": \"" << json_escape(e.from) << "\", \"to\": \""
          << json_escape(e.to) << "\", \"file\": \"" << json_escape(e.path)
          << "\", \"line\": " << e.line << "}"
          << (i + 1 < lock_edges.size() ? "," : "") << "\n";
    }
    out << "  ]\n}\n";
  }
  return diags.empty() ? 0 : 1;
}
