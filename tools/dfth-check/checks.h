// The fiber-correctness checks dfth-check runs over a Model.
//
// Check names (used in diagnostics, --check= filters, and
// `// dfth-check-ignore(<name>)` suppressions):
//
//   blocking-call-on-fiber   raw blocking libc/pthread/std primitives (and
//                            kernel-thread sync types) reachable from a
//                            df spawn/run entry point
//   unannotated-shared-write stores through shared memory inside fiber code
//                            with no covering df_read/df_write annotation
//   fiber-stack-escape       a spawned child holds references into a parent
//                            stack frame the parent may pop before join
//   lock-order               statically possible ABBA cycles in the nested
//                            lock-acquisition graph
//
// Spawn-graph checks (need the interprocedural graph in spawn_graph.h):
//
//   join-mismatch            a spawn whose handle is discarded or never
//                            joined in the spawning function — the spawn has
//                            no dominating join, so the DAG the space bound
//                            is argued over is not what the code builds
//   alloc-before-spawn       a df_malloc consumed by exactly one spawned
//                            child and nothing else — the premature-
//                            allocation pattern AsyncDF exists to delay;
//                            allocate inside the child instead
//   blocking-while-holding-lock  a blocking primitive reached (directly or
//                            transitively) while a dfth lock is held
#pragma once

#include <string>
#include <vector>

#include "model.h"

namespace dfth_check {

inline constexpr const char* kCheckBlockingCall = "blocking-call-on-fiber";
inline constexpr const char* kCheckSharedWrite = "unannotated-shared-write";
inline constexpr const char* kCheckStackEscape = "fiber-stack-escape";
inline constexpr const char* kCheckLockOrder = "lock-order";
inline constexpr const char* kCheckJoinMismatch = "join-mismatch";
inline constexpr const char* kCheckAllocBeforeSpawn = "alloc-before-spawn";
inline constexpr const char* kCheckBlockingLock = "blocking-while-holding-lock";

/// All check names, in reporting order.
std::vector<std::string> all_check_names();

struct Diagnostic {
  std::string check;
  std::string message;
  std::string path;
  int line = 0;
  int col = 0;
};

/// A statically derived lock-order edge (A held while acquiring B), exported
/// for cross-checking against the dynamic analyze/lock_graph.h ordering.
struct LockEdge {
  std::string from;
  std::string to;
  std::string path;
  int line = 0;
};

struct CheckOptions {
  /// Checks to run; empty = all.
  std::set<std::string> enabled;
  /// unannotated-shared-write only fires in files whose path contains one of
  /// these substrings (the annotation contract binds the paper's app layer;
  /// bench/example harness buffers are not race-detector tracked).
  std::vector<std::string> shared_write_paths = {"src/apps/", "fixtures/"};
  /// Collected static lock edges (for --lock-graph-json), filled by run.
  std::vector<LockEdge>* lock_edges_out = nullptr;
};

/// Runs the enabled checks; returns suppression-filtered diagnostics sorted
/// by (path, line, col, check).
std::vector<Diagnostic> run_checks(const Model& model, const CheckOptions& opts);

}  // namespace dfth_check
