// Static AsyncDF space-bound certification (the heap analogue of
// tools/stack_bound.py).
//
// The paper's theorem bounds a p-processor AsyncDF execution's memory by
// S1 + O(p * K * D): serial space plus one quota grant K per processor per
// depth level. This module computes, per app, over the interprocedural spawn
// graph (spawn_graph.h):
//
//   S1  an upper bound on the serial-execution footprint: the sum of every
//       df_malloc/df_try_malloc size (and `// dfth-space-alloc:` annotation)
//       reachable from the app's root functions over call and spawn edges.
//       Summing ignores frees, so S1 here is >= the true serial peak.
//   D   a bound on the spawn depth: the maximum number of spawn edges on any
//       root-to-leaf path, plus one for the root level.
//
// Recursion is charged an assumed depth, exactly like stack_bound.py charges
// recursive frames: a cycle's own bytes (and spawn edges) are multiplied by
// (assume_depth - 1) beyond the occurrence already on the walk path. The
// cycles charged this way are listed in the output so the assumption is
// auditable.
//
// Allocation sizes are constant-folded where possible; identifiers that
// survive folding (parameters, config fields) must be bound to values via
// AppSpec::params — unresolved symbols are reported in symbolic_terms and
// mark the app's bound uncertified rather than silently dropping bytes.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "model.h"
#include "spawn_graph.h"

namespace dfth_check {

struct SpaceBoundOptions {
  long long procs = 8;            ///< p
  long long quota_bytes = 32768;  ///< K (RuntimeOptions::mem_quota default)
  long long c = 1;                ///< constant in S1 + c*p*K*D
  int assume_depth = 8;           ///< charged depth for recursion cycles
  /// sizeof(type) bindings; seeded with the builtin scalar table, extended
  /// via --space-sizeof for app types (Complex, Cell, Instance, ...).
  std::map<std::string, long long> sizeofs;
};

/// One app to certify: root function names (the bench driver plus any setup
/// ctors not reachable from it) and integer bindings for the symbols its
/// size expressions mention.
struct AppSpec {
  std::string name;
  std::vector<std::string> roots;
  std::map<std::string, long long> params;
};

struct RootBound {
  std::string root;
  long long bytes = 0;
  int depth = 1;
  bool resolved = true;  ///< root name matched at least one function
};

struct AppBound {
  std::string app;
  long long serial_space = 0;  ///< S1: sum over roots
  int depth = 1;               ///< D: max over roots
  long long bound = 0;         ///< S1 + c*p*K*D
  bool certified = true;       ///< false when symbols were unresolved
  std::vector<RootBound> per_root;
  std::vector<std::string> symbolic_terms;    ///< "symbol (in function)"
  std::vector<std::string> recursion_cycles;  ///< charged at assume_depth
};

/// Default sizeof table for builtin scalar types.
std::map<std::string, long long> builtin_sizeofs();

AppBound compute_space_bound(const Model& model, const SpawnGraph& graph,
                             const AppSpec& spec,
                             const SpaceBoundOptions& opts);

/// Writes SPACE_BOUND.json: options block plus one entry per app.
bool write_space_bound_json(const std::string& path,
                            const std::vector<AppBound>& apps,
                            const SpaceBoundOptions& opts);

}  // namespace dfth_check
