#include "spawn_graph.h"

#include <algorithm>
#include <deque>

namespace dfth_check {
namespace {

const std::set<std::string>& non_ctor_idents() {
  // Tokens that precede a declaration-shaped call but never name a ctor body.
  static const std::set<std::string> k = {
      "if", "for", "while", "switch", "return", "sizeof", "new", "delete",
      "const", "static", "auto", "case", "goto", "do", "else"};
  return k;
}

}  // namespace

std::vector<int> resolve_callees(const Model& model, const CallSite& cs) {
  // Only unqualified or dfth-qualified calls resolve into the analyzed TUs;
  // std:: etc. stay external.
  if (!cs.qualifier.empty() && cs.qualifier != "dfth" &&
      cs.qualifier != "dfth::apps" && cs.qualifier != "apps") {
    return {};
  }
  auto it = model.by_name.find(cs.callee);
  if (it != model.by_name.end()) return it->second;
  // Declaration-shaped constructor invocation: `CellArena arena(n)` lexes as
  // a call to `arena`; when the preceding token names an analyzed function
  // (the ctor body, keyed by class name), link to it.
  if (cs.receiver.empty() && cs.loc.file != nullptr && cs.tok > 0 &&
      cs.tok < cs.loc.file->tokens.size()) {
    const Token& prev = cs.loc.file->tokens[cs.tok - 1];
    if (prev.kind == Tok::kIdent && !non_ctor_idents().count(prev.text)) {
      auto pit = model.by_name.find(prev.text);
      if (pit != model.by_name.end()) return pit->second;
    }
  }
  return {};
}

std::vector<int> spawn_entry_fns(const Model& model, const SpawnSite& sp) {
  std::vector<int> out;
  if (sp.lambda_id >= 0) {
    out.push_back(model.lambdas[sp.lambda_id].body_fn);
    return out;
  }
  if (!sp.fn_arg.empty()) {
    auto it = model.by_name.find(sp.fn_arg);
    if (it != model.by_name.end()) out = it->second;
  }
  return out;
}

SpawnGraph build_spawn_graph(const Model& model) {
  SpawnGraph g;
  const std::size_t nfn = model.functions.size();
  g.callees.resize(nfn);
  g.spawn_sites_of.resize(nfn);
  g.children_of_spawn.resize(model.spawns.size());

  for (std::size_t fi = 0; fi < nfn; ++fi) {
    std::set<int> seen;
    for (const CallSite& cs : model.functions[fi].calls) {
      for (int callee : resolve_callees(model, cs)) seen.insert(callee);
    }
    g.callees[fi].assign(seen.begin(), seen.end());
  }
  for (std::size_t si = 0; si < model.spawns.size(); ++si) {
    const SpawnSite& sp = model.spawns[si];
    if (sp.enclosing_fn >= 0) {
      g.spawn_sites_of[static_cast<std::size_t>(sp.enclosing_fn)].push_back(
          static_cast<int>(si));
    }
    g.children_of_spawn[si] = spawn_entry_fns(model, sp);
  }

  // Fiber reachability: BFS over call edges from every spawn/run entry.
  std::deque<int> queue;
  auto add = [&](int fn) {
    if (fn < 0 || g.fiber_reachable.count(fn)) return;
    g.fiber_reachable.insert(fn);
    queue.push_back(fn);
  };
  for (const auto& children : g.children_of_spawn) {
    for (int fn : children) add(fn);
  }
  while (!queue.empty()) {
    const int fi = queue.front();
    queue.pop_front();
    for (int callee : g.callees[static_cast<std::size_t>(fi)]) add(callee);
    for (int lam : model.functions[static_cast<std::size_t>(fi)].lambdas) {
      add(model.lambdas[lam].body_fn);
    }
  }
  return g;
}

bool lambda_uses_ident(const Model& model, int lambda_id,
                       const std::string& name) {
  if (lambda_id < 0) return false;
  const Lambda& lam = model.lambdas[lambda_id];
  if (lam.ref_captures.count(name) || lam.value_captures.count(name)) {
    return true;
  }
  if (!lam.default_ref_capture && !lam.default_value_capture) return false;
  if (lam.body_fn < 0) return false;
  const Function& body = model.functions[static_cast<std::size_t>(lam.body_fn)];
  for (const CallSite& cs : body.calls) {
    if (cs.callee == name || cs.receiver == name || cs.arg_idents.count(name)) {
      return true;
    }
  }
  for (const Store& st : body.stores) {
    if (st.base == name) return true;
  }
  for (const auto& [local, roots] : body.derived) {
    if (local == name || roots.count(name)) return true;
  }
  for (const Annotation& an : body.annotations) {
    if (an.arg_idents.count(name)) return true;
  }
  return false;
}

}  // namespace dfth_check
