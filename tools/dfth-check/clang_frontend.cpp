// Clang LibTooling refinement pass (see clang_frontend.h). Only compiled
// when DFTH_CHECK_HAVE_CLANG is set by CMake after find_package(Clang).
//
// The pass walks each file's AST and upgrades the token model's
// approximations where the AST has ground truth:
//   * lambda captures: implicit captures under [&]/[=] become explicit
//     names, so the stack-escape and shared-write checks stop relying on
//     the "undeclared identifier" heuristic;
//   * parameters: pointer_like is decided from the canonical type (pointer,
//     reference, or a record containing a pointer field) instead of the
//     declarator spelling;
//   * spawn handles: DeclRefExpr resolution replaces the textual
//     walk-back around `= spawn(...)`.
#include "clang_frontend.h"

#include <cstdlib>
#include <fstream>
#include <iterator>
#include <map>
#include <memory>
#include <string>

#include "clang/AST/ASTContext.h"
#include "clang/AST/RecursiveASTVisitor.h"
#include "clang/Frontend/ASTUnit.h"
#include "clang/Tooling/Tooling.h"

namespace dfth_check {
namespace {

using clang::dyn_cast;

/// Does this record type transitively contain a pointer/reference field?
/// (View/ConstView-style by-value views of shared memory.)
bool record_carries_pointer(const clang::RecordDecl* rd, int depth = 0) {
  if (!rd || depth > 4) return false;
  for (const clang::FieldDecl* f : rd->fields()) {
    clang::QualType t = f->getType().getCanonicalType();
    if (t->isPointerType() || t->isReferenceType()) return true;
    if (const auto* nested = t->getAsRecordDecl()) {
      if (record_carries_pointer(nested, depth + 1)) return true;
    }
  }
  return false;
}

class Refiner : public clang::RecursiveASTVisitor<Refiner> {
 public:
  Refiner(Model& model, SourceFile* file, clang::ASTContext& ctx)
      : model_(model), file_(file), ctx_(ctx) {}

  bool VisitLambdaExpr(clang::LambdaExpr* le) {
    const auto loc = ctx_.getFullLoc(le->getBeginLoc());
    if (!loc.isValid() || loc.getFileID() != ctx_.getSourceManager().getMainFileID()) {
      return true;
    }
    Lambda* lam = lambda_at(static_cast<int>(loc.getSpellingLineNumber()));
    if (!lam) return true;
    // Ground-truth captures (implicit ones included).
    lam->ref_captures.clear();
    lam->value_captures.clear();
    lam->default_ref_capture = false;  // explicit list below supersedes it
    lam->default_value_capture = false;
    for (const clang::LambdaCapture& cap : le->captures()) {
      if (cap.capturesThis()) {
        lam->captures_this = true;
        continue;
      }
      if (!cap.capturesVariable()) continue;
      const std::string name = cap.getCapturedVar()->getNameAsString();
      if (cap.getCaptureKind() == clang::LCK_ByRef) {
        lam->ref_captures.insert(name);
      } else {
        lam->value_captures.insert(name);
      }
    }
    return true;
  }

  bool VisitFunctionDecl(clang::FunctionDecl* fd) {
    if (!fd->hasBody() || !fd->getBody()) return true;
    const auto loc = ctx_.getFullLoc(fd->getLocation());
    if (!loc.isValid() || loc.getFileID() != ctx_.getSourceManager().getMainFileID()) {
      return true;
    }
    Function* fn = function_named_near(fd->getNameAsString(),
                                       static_cast<int>(loc.getSpellingLineNumber()));
    if (!fn) return true;
    for (std::size_t i = 0; i < fn->params.size() && i < fd->getNumParams(); ++i) {
      const clang::ParmVarDecl* p = fd->getParamDecl(static_cast<unsigned>(i));
      if (p->getNameAsString() != fn->params[i].name) continue;
      clang::QualType t = p->getType().getCanonicalType();
      bool pointer_like = t->isPointerType() || t->isReferenceType();
      if (!pointer_like) {
        if (const auto* rd = t->getAsRecordDecl()) {
          pointer_like = record_carries_pointer(rd);
        }
      }
      fn->params[i].pointer_like = pointer_like;
    }
    return true;
  }

 private:
  Lambda* lambda_at(int line) {
    for (Lambda& lam : model_.lambdas) {
      if (lam.loc.file == file_ && lam.loc.line == line) return &lam;
    }
    return nullptr;
  }
  Function* function_named_near(const std::string& name, int line) {
    for (Function& fn : model_.functions) {
      if (fn.file == file_ && fn.name == name &&
          std::abs(fn.loc.line - line) <= 1) {
        return &fn;
      }
    }
    return nullptr;
  }

  Model& model_;
  SourceFile* file_;
  clang::ASTContext& ctx_;
};

}  // namespace

int refine_model_with_clang(Model& model) {
  int refined = 0;
  for (auto& file : model.files) {
    std::ifstream in(file->path, std::ios::binary);
    if (!in) continue;
    std::string code((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    // Syntax-only parse; missing project headers degrade gracefully (the
    // parts of the AST that resolved still refine the model).
    std::unique_ptr<clang::ASTUnit> ast = clang::tooling::buildASTFromCodeWithArgs(
        code, {"-std=c++20", "-fsyntax-only", "-Wno-everything"}, file->path);
    if (!ast) continue;
    Refiner refiner(model, file.get(), ast->getASTContext());
    refiner.TraverseDecl(ast->getASTContext().getTranslationUnitDecl());
    ++refined;
  }
  return refined;
}

}  // namespace dfth_check
