// Frontend-neutral source model for dfth-check.
//
// Both frontends (the builtin token-structural one in model.cpp, and the
// Clang LibTooling refiner in clang_frontend.cpp when LLVM dev libraries are
// present) populate this model; the four checks in checks.h consume only it.
// The model captures exactly the facts the fiber contracts are written in:
//
//   * function definitions, their parameters, and the calls they make
//     (a name-keyed cross-TU call graph, qualified calls kept distinct),
//   * lambdas with their capture lists,
//   * spawn sites (dfth::spawn / dfth_pthread_create / dfth::run bodies),
//     the variable their handle lands in, and the joins/detaches on it,
//   * stores through pointer-shaped lvalues and the df_read/df_write
//     annotations that may cover them,
//   * lock acquire/release events (dfth_pthread_mutex_* and Mutex methods).
#pragma once

#include <cstddef>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "lexer.h"

namespace dfth_check {

struct Location {
  const SourceFile* file = nullptr;
  int line = 0;
  int col = 0;
};

struct Param {
  std::string type_text;  ///< declarator text before the name ("const double *")
  std::string name;
  bool pointer_like = false;  ///< T*, T&, or a by-value struct (may carry pointers)
};

struct CallSite {
  std::string callee;     ///< unqualified name ("sleep_for")
  std::string qualifier;  ///< "::"-joined qualifier chain ("std::this_thread")
  std::string receiver;   ///< postfix base for method calls ("mu", "cells[].mu")
  Location loc;
  std::size_t tok = 0;  ///< index of the callee token in its file's stream
  /// Identifiers mentioned anywhere in the argument list (for linking ctor
  /// invocations and spawn-graph argument flow).
  std::set<std::string> arg_idents;
};

/// A df_malloc/df_try_malloc call (or a `// dfth-space-alloc:` annotation for
/// allocations the token scan cannot see), with its size expression kept as
/// raw tokens so the space-bound evaluator can constant-fold or bind it.
struct AllocSite {
  std::vector<Token> size_expr;  ///< tokens of the size argument
  bool from_annotation = false;
  Location loc;
};

/// A store through an lvalue: `base[...] = e`, `*base = e`, `base->f = e`,
/// or plain `base = e`. `base` is the head identifier of the postfix chain.
struct Store {
  std::string base;
  bool through_pointer = false;  ///< subscript / deref / arrow (vs plain ident)
  Location loc;
};

/// df_read/df_write call with the identifiers its first argument mentions.
struct Annotation {
  bool is_write = false;
  std::set<std::string> arg_idents;
  Location loc;
};

/// Lock acquire/release event, in statement order within its function.
struct LockEvent {
  enum Kind { kAcquire, kRelease } kind = kAcquire;
  std::string lock_id;  ///< normalized lvalue text, e.g. "mu", "node.mu"
  Location loc;
};

struct Lambda {
  int id = -1;
  int enclosing_fn = -1;
  bool default_ref_capture = false;    // [&]
  bool default_value_capture = false;  // [=]
  bool captures_this = false;
  std::set<std::string> ref_captures;
  std::set<std::string> value_captures;
  int body_fn = -1;  ///< index into Model::functions of the synthesized body fn
  Location loc;
};

/// How a spawn's thread handle leaves the spawning function's hands.
enum class HandleFate {
  kLocal,      ///< stored in a local we can track joins on
  kDiscarded,  ///< result ignored — can never be joined
  kEscaped,    ///< returned / stored through a member or out-param
};

struct SpawnSite {
  int lambda_id = -1;           ///< spawned lambda, or -1
  std::string fn_arg;           ///< named function argument (pthread_create shape)
  std::string handle_base;      ///< variable (or container) holding the handle
  HandleFate fate = HandleFate::kLocal;
  bool is_run_body = false;     ///< dfth::run main_fn — a fiber entry, not joinable
  std::vector<std::string> addr_of_args;  ///< `&x` arguments passed along
  int enclosing_fn = -1;
  Location loc;
};

struct Function {
  std::string name;        ///< unqualified ("transform")
  std::string qualified;   ///< as written ("FftRec::transform"); lambdas get
                           ///< "<enclosing>::lambda@<line>"
  bool is_lambda_body = false;
  int lambda_id = -1;
  std::vector<Param> params;
  std::vector<CallSite> calls;
  std::vector<Store> stores;
  std::vector<Annotation> annotations;
  std::vector<LockEvent> lock_events;
  std::vector<int> lambdas;               ///< ids of lambdas defined inside
  /// `std::mutex`, `std::condition_variable`, ... mentioned in the body —
  /// kernel-thread sync types that must not appear in fiber-reachable code.
  std::vector<std::pair<std::string, Location>> std_sync_mentions;
  std::set<std::string> joined_bases;     ///< join(x)/dfth_pthread_join(x) targets
  std::set<std::string> detached_bases;   ///< detach(x) targets
  std::set<std::string> returned_bases;   ///< `return x;` — x escapes to caller
  /// local name -> shared roots it derives from (see checks.cpp); populated
  /// lazily by the shared-write check, declared here so frontends may seed it.
  std::map<std::string, std::set<std::string>> derived;
  /// locals initialized from df_malloc/df_try_malloc.
  std::set<std::string> malloc_locals;
  /// local -> location of its df_malloc binding (for alloc-before-spawn).
  std::map<std::string, Location> malloc_local_loc;
  /// df_malloc/df_try_malloc calls (and dfth-space-alloc annotations) in this
  /// body, with their size expressions (for the space-bound analysis).
  std::vector<AllocSite> allocs;
  /// local name -> df_free'd in this body (for alloc-before-spawn).
  std::set<std::string> freed_locals;
  Location loc;
  const SourceFile* file = nullptr;
};

struct Model {
  std::vector<std::unique_ptr<SourceFile>> files;
  std::vector<Function> functions;
  std::vector<Lambda> lambdas;
  std::vector<SpawnSite> spawns;

  /// name -> function indices (cross-TU, unqualified key).
  std::map<std::string, std::vector<int>> by_name;

  void index();  ///< (re)build by_name after functions change
};

/// Parses `file` (already lexed) into `model` with the builtin structural
/// frontend. Safe on arbitrary C++: unrecognized constructs degrade to plain
/// blocks, never abort.
void build_model_from_tokens(SourceFile* file, Model& model);

}  // namespace dfth_check
