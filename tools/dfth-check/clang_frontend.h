// Optional Clang LibTooling frontend for dfth-check.
//
// Compiled only when CMake discovers the LLVM/Clang development libraries
// (find_package(Clang CONFIG)); the build defines DFTH_CHECK_HAVE_CLANG=1
// and main.cpp calls refine_model_with_clang() after the builtin token
// frontend has populated the model. Refinement is additive and corrective:
// AST-accurate lambda captures (implicit captures under [&]/[=] are made
// explicit), type-checked parameter classification, and resolved member
// callees replace the token frontend's heuristic facts where the AST parsed
// cleanly; files the AST could not parse (missing headers in a bare
// invocation) keep their token-model facts, so the tool degrades instead of
// going blind.
#pragma once

#include "model.h"

namespace dfth_check {

/// Re-parses the model's files with Clang (using compile_commands.json when
/// present next to the sources, else a syntax-only fallback) and refines the
/// model in place. Returns the number of files successfully refined.
int refine_model_with_clang(Model& model);

}  // namespace dfth_check
