#include "space_bound.h"

#include <algorithm>
#include <cstring>
#include <fstream>
#include <optional>
#include <set>

namespace dfth_check {
namespace {

// -- size-expression evaluation -----------------------------------------------
//
// Constant folding over the raw token vector of a df_malloc argument. The
// grammar covers what size expressions are made of: integer literals (hex,
// digit separators, suffixes), sizeof(type), identifier chains (`n`, `cfg.
// chunk_workspace_bytes`, `rows_`), parentheses, casts, and + - * / % << >>.
// Anything unresolved becomes a named symbol, never a silent zero-and-pass.

struct Eval {
  long long value = 0;
  std::set<std::string> missing;
  bool ok() const { return missing.empty(); }
};

struct ExprParser {
  const std::vector<Token>& toks;
  const std::map<std::string, long long>& params;
  const std::map<std::string, long long>& sizeofs;
  std::size_t at = 0;

  bool done() const { return at >= toks.size(); }
  bool is_p(const char* s) const {
    return !done() && toks[at].kind == Tok::kPunct && toks[at].text == s;
  }
  bool is_i(const char* s) const {
    return !done() && toks[at].kind == Tok::kIdent && toks[at].text == s;
  }

  static std::optional<long long> parse_int(const std::string& raw) {
    std::string s;
    for (char c : raw) {
      if (c != '\'') s += c;  // digit separators
    }
    while (!s.empty() && std::strchr("uUlLzZ", s.back())) s.pop_back();
    if (s.empty()) return std::nullopt;
    if (s.find('.') != std::string::npos || s.find('e') != std::string::npos ||
        s.find('E') != std::string::npos) {
      if (s.rfind("0x", 0) != 0 && s.rfind("0X", 0) != 0) return std::nullopt;
    }
    try {
      std::size_t used = 0;
      const long long v = std::stoll(s, &used, 0);
      if (used != s.size()) return std::nullopt;
      return v;
    } catch (...) {
      return std::nullopt;
    }
  }

  Eval lookup_symbol(const std::string& chain) {
    auto it = params.find(chain);
    if (it != params.end()) return {it->second, {}};
    const std::size_t dot = chain.find_last_of(".:");
    if (dot != std::string::npos) {
      it = params.find(chain.substr(dot + 1));
      if (it != params.end()) return {it->second, {}};
    }
    Eval e;
    e.missing.insert(chain);
    return e;
  }

  Eval lookup_sizeof(const std::string& type_text, bool pointer) {
    if (pointer) return {8, {}};
    auto it = sizeofs.find(type_text);
    if (it != sizeofs.end()) return {it->second, {}};
    if (type_text.rfind("std::", 0) == 0) {
      it = sizeofs.find(type_text.substr(5));
      if (it != sizeofs.end()) return {it->second, {}};
    }
    const std::size_t sep = type_text.find_last_of(":. ");
    if (sep != std::string::npos) {
      it = sizeofs.find(type_text.substr(sep + 1));
      if (it != sizeofs.end()) return {it->second, {}};
    }
    Eval e;
    e.missing.insert("sizeof(" + type_text + ")");
    return e;
  }

  Eval primary() {
    if (done()) {
      Eval e;
      e.missing.insert("<empty>");
      return e;
    }
    const Token& t = toks[at];
    if (t.kind == Tok::kNumber) {
      ++at;
      if (auto v = parse_int(t.text)) return {*v, {}};
      Eval e;
      e.missing.insert(t.text);
      return e;
    }
    if (is_p("(")) {
      ++at;
      Eval e = expr();
      if (is_p(")")) ++at;
      return e;
    }
    if (is_i("sizeof")) {
      ++at;
      if (!is_p("(")) {
        Eval e;
        e.missing.insert("sizeof");
        return e;
      }
      ++at;
      std::string type_text;
      bool pointer = false;
      int depth = 1;
      while (!done() && depth > 0) {
        if (is_p("(")) ++depth;
        if (is_p(")")) {
          --depth;
          if (depth == 0) {
            ++at;
            break;
          }
        }
        const Token& tt = toks[at];
        if (tt.kind == Tok::kPunct && tt.text == "*") pointer = true;
        if (tt.kind == Tok::kIdent && !type_text.empty() &&
            type_text.back() != ':') {
          type_text += ' ';
        }
        if (!(tt.kind == Tok::kPunct && tt.text == "*")) type_text += tt.text;
        ++at;
      }
      return lookup_sizeof(type_text, pointer);
    }
    if (is_i("static_cast") || is_i("reinterpret_cast") || is_i("const_cast")) {
      ++at;
      if (is_p("<")) {
        int depth = 0;
        while (!done()) {
          if (is_p("<")) ++depth;
          if (is_p(">")) {
            --depth;
            if (depth == 0) {
              ++at;
              break;
            }
          }
          ++at;
        }
      }
      return primary();  // the parenthesized operand
    }
    if (t.kind == Tok::kIdent) {
      // Identifier chain: a.b, a->b, a::b — one bindable symbol.
      std::string chain = t.text;
      ++at;
      while (!done() && (is_p(".") || is_p("->") || is_p("::"))) {
        const std::string sep = toks[at].text == "::" ? "::" : ".";
        ++at;
        if (done() || toks[at].kind != Tok::kIdent) break;
        chain += sep + toks[at].text;
        ++at;
      }
      // A call like bodies.size() is not foldable; make the symbol explicit.
      if (is_p("(")) {
        int depth = 0;
        while (!done()) {
          if (is_p("(")) ++depth;
          if (is_p(")")) {
            --depth;
            if (depth == 0) {
              ++at;
              break;
            }
          }
          ++at;
        }
        chain += "()";
        Eval e = lookup_symbol(chain);
        return e;
      }
      return lookup_symbol(chain);
    }
    if (is_p("-") || is_p("+")) {
      const bool neg = t.text == "-";
      ++at;
      Eval e = primary();
      if (neg) e.value = -e.value;
      return e;
    }
    Eval e;
    e.missing.insert(t.text);
    ++at;
    return e;
  }

  static Eval combine(Eval a, const Eval& b, long long v) {
    a.value = v;
    a.missing.insert(b.missing.begin(), b.missing.end());
    return a;
  }

  Eval mult() {
    Eval lhs = primary();
    while (is_p("*") || is_p("/") || is_p("%")) {
      const std::string op = toks[at].text;
      ++at;
      const Eval rhs = primary();
      long long v = 0;
      if (op == "*") {
        v = lhs.value * rhs.value;
      } else if (rhs.value != 0) {
        v = op == "/" ? lhs.value / rhs.value : lhs.value % rhs.value;
      }
      lhs = combine(lhs, rhs, v);
    }
    return lhs;
  }

  Eval additive() {
    Eval lhs = mult();
    while (is_p("+") || is_p("-")) {
      const bool add = toks[at].text == "+";
      ++at;
      const Eval rhs = mult();
      lhs = combine(lhs, rhs, add ? lhs.value + rhs.value : lhs.value - rhs.value);
    }
    return lhs;
  }

  Eval expr() {
    Eval lhs = additive();
    while (is_p("<<") || is_p(">>")) {
      const bool left = toks[at].text == "<<";
      ++at;
      const Eval rhs = additive();
      long long v = 0;
      if (rhs.value >= 0 && rhs.value < 63) {
        v = left ? (lhs.value << rhs.value) : (lhs.value >> rhs.value);
      }
      lhs = combine(lhs, rhs, v);
    }
    return lhs;
  }
};

// -- the walk -----------------------------------------------------------------

struct Contribution {
  long long bytes = 0;
  int depth = 0;  ///< max spawn edges on any path below (inclusive of entry edge)
};

struct WalkCtx {
  const Model& model;
  const SpawnGraph& graph;
  const AppSpec& spec;
  const SpaceBoundOptions& opts;

  std::vector<std::optional<long long>> own_cache;
  std::vector<int> path_pos;  // fn -> index on path, or -1
  struct PathEntry {
    int fn;
    bool via_spawn;
  };
  std::vector<PathEntry> path;
  std::set<std::string>* symbolic;
  std::set<std::string>* cycles;
  long long visits = 0;

  long long own_bytes(int fi) {
    auto& slot = own_cache[static_cast<std::size_t>(fi)];
    if (slot) return *slot;
    const Function& fn = model.functions[static_cast<std::size_t>(fi)];
    long long total = 0;
    for (const AllocSite& as : fn.allocs) {
      ExprParser p{as.size_expr, spec.params, opts.sizeofs};
      const Eval e = p.expr();
      for (const auto& sym : e.missing) {
        symbolic->insert(sym + " (in " + fn.qualified + ")");
      }
      if (e.ok() && e.value > 0) total += e.value;
    }
    slot = total;
    return total;
  }
};

Contribution walk(WalkCtx& ctx, int fi, bool via_spawn) {
  if (++ctx.visits > 2000000) return {};  // runaway-graph guard
  const std::size_t f = static_cast<std::size_t>(fi);
  if (ctx.path_pos[f] >= 0) {
    // Recursion: charge the cycle's own bytes and spawn edges for the
    // (assume_depth - 1) unwindings beyond the occurrence already on the
    // path, exactly like stack_bound.py charges recursive frames.
    const int k = ctx.path_pos[f];
    long long cycle_bytes = 0;
    int cycle_spawns = via_spawn ? 1 : 0;
    std::string desc;
    for (std::size_t j = static_cast<std::size_t>(k); j < ctx.path.size(); ++j) {
      cycle_bytes += ctx.own_bytes(ctx.path[j].fn);
      if (j > static_cast<std::size_t>(k) && ctx.path[j].via_spawn) {
        ++cycle_spawns;
      }
      desc += ctx.model.functions[static_cast<std::size_t>(ctx.path[j].fn)]
                  .qualified +
              " -> ";
    }
    desc += ctx.model.functions[f].qualified;
    ctx.cycles->insert(desc);
    const long long extra = ctx.opts.assume_depth - 1;
    return {cycle_bytes * extra, static_cast<int>(cycle_spawns * extra)};
  }

  ctx.path_pos[f] = static_cast<int>(ctx.path.size());
  ctx.path.push_back({fi, via_spawn});

  Contribution out;
  out.bytes = ctx.own_bytes(fi);

  const Function& fn = ctx.model.functions[f];
  // Lambdas spawned from this function are reached via spawn edges below;
  // the rest run inline and count as plain callees.
  std::set<int> spawned_bodies;
  for (int si : ctx.graph.spawn_sites_of[f]) {
    for (int child : ctx.graph.children_of_spawn[static_cast<std::size_t>(si)]) {
      spawned_bodies.insert(child);
    }
  }
  for (int callee : ctx.graph.callees[f]) {
    const Contribution c = walk(ctx, callee, false);
    out.bytes += c.bytes;
    out.depth = std::max(out.depth, c.depth);
  }
  for (int lam : fn.lambdas) {
    const int body = ctx.model.lambdas[lam].body_fn;
    if (body >= 0 && !spawned_bodies.count(body)) {
      const Contribution c = walk(ctx, body, false);
      out.bytes += c.bytes;
      out.depth = std::max(out.depth, c.depth);
    }
  }
  for (int child : spawned_bodies) {
    const Contribution c = walk(ctx, child, true);
    out.bytes += c.bytes;
    out.depth = std::max(out.depth, 1 + c.depth);
  }

  ctx.path.pop_back();
  ctx.path_pos[f] = -1;
  return out;
}

std::string json_escape(const std::string& s) {
  std::string out;
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

}  // namespace

std::map<std::string, long long> builtin_sizeofs() {
  return {
      {"bool", 1},      {"char", 1},      {"int8_t", 1},   {"uint8_t", 1},
      {"char8_t", 1},   {"short", 2},     {"int16_t", 2},  {"uint16_t", 2},
      {"char16_t", 2},  {"int", 4},       {"unsigned", 4}, {"int32_t", 4},
      {"uint32_t", 4},  {"char32_t", 4},  {"float", 4},    {"wchar_t", 4},
      {"long", 8},      {"int64_t", 8},   {"uint64_t", 8}, {"double", 8},
      {"size_t", 8},    {"ssize_t", 8},   {"ptrdiff_t", 8}, {"intptr_t", 8},
      {"uintptr_t", 8}, {"long long", 8}, {"unsigned long", 8},
      {"unsigned long long", 8}, {"long double", 16},
  };
}

AppBound compute_space_bound(const Model& model, const SpawnGraph& graph,
                             const AppSpec& spec,
                             const SpaceBoundOptions& opts) {
  AppBound out;
  out.app = spec.name;

  std::set<std::string> symbolic;
  std::set<std::string> cycles;
  WalkCtx ctx{model,
              graph,
              spec,
              opts,
              std::vector<std::optional<long long>>(model.functions.size()),
              std::vector<int>(model.functions.size(), -1),
              {},
              &symbolic,
              &cycles,
              0};

  for (const std::string& root : spec.roots) {
    RootBound rb;
    rb.root = root;
    auto it = model.by_name.find(root);
    if (it == model.by_name.end()) {
      rb.resolved = false;
      out.certified = false;
      symbolic.insert("root '" + root + "' not found");
    } else {
      for (int fi : it->second) {
        const Contribution c = walk(ctx, fi, false);
        rb.bytes += c.bytes;
        rb.depth = std::max(rb.depth, 1 + c.depth);
      }
    }
    out.serial_space += rb.bytes;
    out.depth = std::max(out.depth, rb.depth);
    out.per_root.push_back(std::move(rb));
  }

  if (!symbolic.empty()) out.certified = false;
  out.symbolic_terms.assign(symbolic.begin(), symbolic.end());
  out.recursion_cycles.assign(cycles.begin(), cycles.end());
  out.bound =
      out.serial_space + opts.c * opts.procs * opts.quota_bytes * out.depth;
  return out;
}

bool write_space_bound_json(const std::string& path,
                            const std::vector<AppBound>& apps,
                            const SpaceBoundOptions& opts) {
  std::ofstream out(path);
  if (!out) return false;
  out << "{\n";
  out << "  \"model\": \"S1 + c*p*K*D (AsyncDF space bound)\",\n";
  out << "  \"params\": {\"procs\": " << opts.procs
      << ", \"quota_bytes\": " << opts.quota_bytes << ", \"c\": " << opts.c
      << ", \"assume_depth\": " << opts.assume_depth << "},\n";
  out << "  \"apps\": [\n";
  for (std::size_t i = 0; i < apps.size(); ++i) {
    const AppBound& a = apps[i];
    out << "    {\"app\": \"" << json_escape(a.app) << "\",\n";
    out << "     \"serial_space_bytes\": " << a.serial_space << ",\n";
    out << "     \"depth\": " << a.depth << ",\n";
    out << "     \"certified_bound_bytes\": " << a.bound << ",\n";
    out << "     \"certified\": " << (a.certified ? "true" : "false") << ",\n";
    out << "     \"per_root\": [";
    for (std::size_t r = 0; r < a.per_root.size(); ++r) {
      const RootBound& rb = a.per_root[r];
      out << (r ? ", " : "") << "{\"root\": \"" << json_escape(rb.root)
          << "\", \"bytes\": " << rb.bytes << ", \"depth\": " << rb.depth
          << ", \"resolved\": " << (rb.resolved ? "true" : "false") << "}";
    }
    out << "],\n";
    out << "     \"symbolic_terms\": [";
    for (std::size_t s = 0; s < a.symbolic_terms.size(); ++s) {
      out << (s ? ", " : "") << "\"" << json_escape(a.symbolic_terms[s]) << "\"";
    }
    out << "],\n";
    out << "     \"recursion_cycles\": [";
    for (std::size_t s = 0; s < a.recursion_cycles.size(); ++s) {
      out << (s ? ", " : "") << "\"" << json_escape(a.recursion_cycles[s])
          << "\"";
    }
    out << "]}" << (i + 1 < apps.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  return out.good();
}

}  // namespace dfth_check
