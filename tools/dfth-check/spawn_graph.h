// Interprocedural spawn graph for dfth-check.
//
// The per-function model (model.h) records calls and spawn sites; this module
// links them across translation units into the whole-program structure the
// space-bound analysis and the graph-powered checks consume:
//
//   * call edges      fn -> fn, resolved through the name-keyed cross-TU
//                     index (qualified std:: etc. calls stay external), plus
//                     constructor invocations (`CellArena arena(n)` links to
//                     the ctor body named `CellArena`);
//   * spawn edges     fn -> child entry fn, one per spawn site (the spawned
//                     lambda's body, or the named function argument in the
//                     pthread_create shape);
//   * fiber reachability  the set of functions reachable from any spawn/run
//                     entry point over call edges.
//
// Recursion is not resolved here — the graph keeps cycles as-is; consumers
// (space_bound.cpp) detect them during their walk and charge a documented
// assumed depth, exactly like tools/stack_bound.py does for stack frames.
#pragma once

#include <set>
#include <string>
#include <vector>

#include "model.h"

namespace dfth_check {

/// Callee function indices for one call site. Only unqualified or
/// dfth-qualified names resolve into the analyzed TUs; a declaration-shaped
/// call (`Type var(args)`) resolves to `Type`'s constructor body when one was
/// analyzed.
std::vector<int> resolve_callees(const Model& model, const CallSite& cs);

/// Entry functions a spawn site starts: the spawned lambda's body function,
/// or every function matching the named fn argument (pthread_create shape).
std::vector<int> spawn_entry_fns(const Model& model, const SpawnSite& sp);

struct SpawnGraph {
  /// fn index -> sorted, deduped callee fn indices (call edges).
  std::vector<std::vector<int>> callees;
  /// fn index -> indices into model.spawns whose enclosing_fn is this fn.
  std::vector<std::vector<int>> spawn_sites_of;
  /// spawn index -> child entry fn indices (spawn edges).
  std::vector<std::vector<int>> children_of_spawn;
  /// Functions reachable from any spawn/run entry over call edges.
  std::set<int> fiber_reachable;
};

SpawnGraph build_spawn_graph(const Model& model);

/// Does the lambda (by id) capture or use `name`? Checks the explicit capture
/// lists and, under a default capture, the body's harvested facts (calls,
/// stores, derivations, annotations).
bool lambda_uses_ident(const Model& model, int lambda_id,
                       const std::string& name);

}  // namespace dfth_check
