#include "checks.h"

#include <algorithm>
#include <deque>
#include <functional>
#include <map>
#include <tuple>

#include "spawn_graph.h"

namespace dfth_check {
namespace {

// -- blocking primitives ------------------------------------------------------

const std::set<std::string>& blocked_libc_calls() {
  static const std::set<std::string> k = {
      "sleep",        "usleep",       "nanosleep",   "clock_nanosleep",
      "sem_wait",     "sem_timedwait", "poll",       "ppoll",
      "select",       "pselect",      "epoll_wait",  "epoll_pwait",
      "accept",       "accept4",      "recv",        "recvfrom",
      "recvmsg",      "waitpid",      "wait3",       "wait4",
      "flock",        "fsync",        "fdatasync",   "system",
      "getchar",      "fgets",        "scanf",       "fscanf",
      "pause",        "sigwait",      "sigwaitinfo", "sigtimedwait",
      "connect"};
  return k;
}

const std::set<std::string>& blocked_pthread_calls() {
  static const std::set<std::string> k = {
      "pthread_mutex_lock",       "pthread_mutex_timedlock",
      "pthread_cond_wait",        "pthread_cond_timedwait",
      "pthread_join",             "pthread_barrier_wait",
      "pthread_rwlock_rdlock",    "pthread_rwlock_wrlock",
      "pthread_rwlock_timedrdlock", "pthread_rwlock_timedwrlock",
      "pthread_once"};
  return k;
}

bool is_this_thread_call(const CallSite& cs) {
  if (cs.qualifier != "this_thread" && cs.qualifier != "std::this_thread") {
    return false;
  }
  return cs.callee == "sleep_for" || cs.callee == "sleep_until" ||
         cs.callee == "yield";
}

bool in_compat_layer(const Function& fn) {
  return fn.file && fn.file->path.find("src/compat/") != std::string::npos;
}

// -- fiber reachability -------------------------------------------------------

/// Call-graph reachability from every spawn/run entry point. `parent_fn` and
/// `parent_call` reconstruct one call path per reached function for reports.
struct Reachability {
  std::set<int> reachable;
  std::map<int, int> parent_fn;                    // fn -> caller fn
  std::map<int, Location> entry_loc;               // root fn -> spawn site
};

std::vector<int> callees_of(const Model& model, const Function& fn,
                            const CallSite& cs) {
  (void)fn;
  return resolve_callees(model, cs);
}

Reachability fiber_reachability(const Model& model) {
  Reachability r;
  std::deque<int> queue;
  auto add_root = [&](int fn, const Location& loc) {
    if (fn < 0 || r.reachable.count(fn)) return;
    r.reachable.insert(fn);
    r.entry_loc[fn] = loc;
    queue.push_back(fn);
  };
  for (const SpawnSite& sp : model.spawns) {
    if (sp.lambda_id >= 0) {
      add_root(model.lambdas[sp.lambda_id].body_fn, sp.loc);
    }
    if (!sp.fn_arg.empty()) {
      auto it = model.by_name.find(sp.fn_arg);
      if (it != model.by_name.end()) {
        for (int fi : it->second) add_root(fi, sp.loc);
      }
    }
  }
  while (!queue.empty()) {
    const int fi = queue.front();
    queue.pop_front();
    const Function& fn = model.functions[fi];
    for (const CallSite& cs : fn.calls) {
      for (int callee : callees_of(model, fn, cs)) {
        if (r.reachable.count(callee)) continue;
        r.reachable.insert(callee);
        r.parent_fn[callee] = fi;
        queue.push_back(callee);
      }
    }
    // Lambdas defined inside a fiber-reachable function run on the fiber
    // unless they are themselves spawned (then they are roots already).
    for (int lam : fn.lambdas) {
      const int body = model.lambdas[lam].body_fn;
      if (!r.reachable.count(body)) {
        r.reachable.insert(body);
        r.parent_fn[body] = fi;
        queue.push_back(body);
      }
    }
  }
  return r;
}

std::string path_to_root(const Model& model, const Reachability& r, int fn) {
  std::string path;
  int at = fn;
  for (int hops = 0; hops < 8; ++hops) {
    auto it = r.parent_fn.find(at);
    if (it == r.parent_fn.end()) break;
    at = it->second;
    path = model.functions[at].qualified + (path.empty() ? "" : " -> ") + path;
  }
  return path;
}

void append(std::vector<Diagnostic>& out, const std::string& check,
            const Location& loc, std::string message) {
  if (!loc.file) return;
  if (loc.file->suppressed(check, loc.line)) return;
  out.push_back({check, std::move(message), loc.file->path, loc.line, loc.col});
}

// -- check 1: blocking-call-on-fiber ------------------------------------------

void check_blocking_calls(const Model& model, const Reachability& reach,
                          std::vector<Diagnostic>& out) {
  for (int fi : reach.reachable) {
    const Function& fn = model.functions[fi];
    if (in_compat_layer(fn)) continue;  // the shims are the allowlist
    const std::string via = path_to_root(model, reach, fi);
    const std::string suffix =
        via.empty() ? " in fiber entry '" + fn.qualified + "'"
                    : " reachable from a fiber entry via " + via;
    for (const CallSite& cs : fn.calls) {
      if (cs.callee.rfind("dfth_", 0) == 0 || cs.callee.rfind("df_", 0) == 0) {
        continue;
      }
      const bool plain = cs.qualifier.empty() && cs.receiver.empty();
      if (plain && blocked_libc_calls().count(cs.callee)) {
        append(out, kCheckBlockingCall, cs.loc,
               "blocking libc call '" + cs.callee + "' on a fiber" + suffix +
                   " — fibers must not block the carrier thread; use the "
                   "dfth runtime primitives");
      } else if (plain && blocked_pthread_calls().count(cs.callee)) {
        append(out, kCheckBlockingCall, cs.loc,
               "raw pthread primitive '" + cs.callee + "' on a fiber" + suffix +
                   " — use the compat/dfth_pthread.h shim (dfth_" + cs.callee +
                   ")");
      } else if (is_this_thread_call(cs)) {
        append(out, kCheckBlockingCall, cs.loc,
               "std::this_thread::" + cs.callee + " on a fiber" + suffix +
                   " — this parks/yields the kernel carrier thread, not the "
                   "fiber");
      }
    }
    for (const auto& [type_name, loc] : fn.std_sync_mentions) {
      append(out, kCheckBlockingCall, loc,
             type_name + " in fiber-reachable code" + suffix +
                 " — kernel-thread sync blocks the carrier and is invisible "
                 "to the scheduler; use the dfth equivalent");
    }
  }
}

// -- check 2: unannotated-shared-write ----------------------------------------

bool path_enabled(const Function& fn, const std::vector<std::string>& filters) {
  if (!fn.file) return false;
  for (const std::string& f : filters) {
    if (fn.file->path.find(f) != std::string::npos) return true;
  }
  return false;
}

void check_shared_writes(const Model& model, const Reachability& reach,
                         const CheckOptions& opts,
                         std::vector<Diagnostic>& out) {
  for (int fi : reach.reachable) {
    const Function& fn = model.functions[fi];
    if (!path_enabled(fn, opts.shared_write_paths)) continue;

    // Seed the shared set: pointer-shaped params, lambda captures, df_malloc
    // locals; close over the local derivation map.
    std::set<std::string> shared;
    std::set<std::string> ref_captured;
    for (const Param& p : fn.params) {
      if (p.pointer_like) shared.insert(p.name);
    }
    bool default_ref = false;
    if (fn.lambda_id >= 0) {
      const Lambda& lam = model.lambdas[fn.lambda_id];
      default_ref = lam.default_ref_capture;
      for (const auto& c : lam.ref_captures) {
        shared.insert(c);
        ref_captured.insert(c);
      }
      for (const auto& c : lam.value_captures) shared.insert(c);
    }
    for (const auto& l : fn.malloc_locals) shared.insert(l);
    for (bool changed = true; changed;) {
      changed = false;
      for (const auto& [local, roots] : fn.derived) {
        if (shared.count(local)) continue;
        for (const auto& root : roots) {
          if (shared.count(root)) {
            shared.insert(local);
            changed = true;
            break;
          }
        }
      }
    }

    // Root closure for annotation matching: a df_write(c.p + ...) covers a
    // store through crow when crow derives from c.
    auto roots_of = [&](const std::string& base) {
      std::set<std::string> roots = {base};
      std::deque<std::string> queue = {base};
      while (!queue.empty()) {
        const std::string b = queue.front();
        queue.pop_front();
        auto it = fn.derived.find(b);
        if (it == fn.derived.end()) continue;
        for (const auto& r : it->second) {
          if (!shared.count(r) || roots.count(r)) continue;
          roots.insert(r);
          queue.push_back(r);
        }
      }
      return roots;
    };

    const std::string via = path_to_root(model, reach, fi);
    for (const Store& st : fn.stores) {
      bool is_shared_store = false;
      if (st.through_pointer && shared.count(st.base)) {
        is_shared_store = true;
      } else if (!st.through_pointer &&
                 (ref_captured.count(st.base) ||
                  (default_ref && !fn.derived.count(st.base) &&
                   shared.count(st.base) == 0 && fn.lambda_id >= 0))) {
        // Plain `x = e` only races when x itself lives outside the fiber:
        // an explicit by-ref capture, or (under [&]) a name never declared
        // locally.
        is_shared_store = ref_captured.count(st.base) > 0 || default_ref;
      }
      if (!is_shared_store) continue;

      const std::set<std::string> roots = roots_of(st.base);
      bool covered = false;
      for (const Annotation& an : fn.annotations) {
        if (!an.is_write) continue;
        for (const auto& r : roots) {
          if (an.arg_idents.count(r)) {
            covered = true;
            break;
          }
        }
        if (covered) break;
      }
      if (covered) continue;
      append(out, kCheckSharedWrite, st.loc,
             "store through shared memory ('" + st.base +
                 "') in fiber code has no covering df_write annotation in '" +
                 fn.qualified + "'" +
                 (via.empty() ? "" : " (fiber entry via " + via + ")") +
                 " — the race detector cannot see this write");
    }
  }
}

// -- check 3: fiber-stack-escape ----------------------------------------------

void check_stack_escape(const Model& model, std::vector<Diagnostic>& out) {
  for (const SpawnSite& sp : model.spawns) {
    if (sp.is_run_body) continue;  // run() blocks until every thread exits
    std::set<std::string> refs(sp.addr_of_args.begin(), sp.addr_of_args.end());
    bool default_ref = false;
    if (sp.lambda_id >= 0) {
      const Lambda& lam = model.lambdas[sp.lambda_id];
      refs.insert(lam.ref_captures.begin(), lam.ref_captures.end());
      default_ref = lam.default_ref_capture;
    }
    if (refs.empty() && !default_ref) continue;  // by-value only: safe

    std::string what = default_ref ? "[&] default capture" : "";
    for (const auto& r : refs) {
      what += (what.empty() ? "" : ", ") + ("'" + r + "'");
    }

    const Function* encl =
        sp.enclosing_fn >= 0 ? &model.functions[sp.enclosing_fn] : nullptr;
    const bool joined = encl && !sp.handle_base.empty() &&
                        encl->joined_bases.count(sp.handle_base) > 0;
    const bool detached = encl && !sp.handle_base.empty() &&
                          encl->detached_bases.count(sp.handle_base) > 0;

    if (detached) {
      append(out, kCheckStackEscape, sp.loc,
             "detached thread captures the parent's stack frame by reference (" +
                 what + ") — the parent can return before the child runs");
      continue;
    }
    switch (sp.fate) {
      case HandleFate::kLocal:
        if (!joined) {
          append(out, kCheckStackEscape, sp.loc,
                 "spawned thread captures the parent's stack frame by "
                 "reference (" + what + ") but its handle '" + sp.handle_base +
                     "' is never joined in the spawning function — the frame "
                     "can be popped while the child still uses it");
        }
        break;
      case HandleFate::kDiscarded:
        append(out, kCheckStackEscape, sp.loc,
               "spawned thread captures the parent's stack frame by reference (" +
                   what + ") but its handle is discarded, so it can never be "
                   "joined before the frame is popped");
        break;
      case HandleFate::kEscaped:
        append(out, kCheckStackEscape, sp.loc,
               "spawned thread captures the parent's stack frame by reference (" +
                   what + ") and its handle escapes the spawning function — "
                   "no local join pins the frame");
        break;
    }
  }
}

// -- check 4: lock-order ------------------------------------------------------

struct OrderedEvent {
  enum Kind { kLock, kCall } kind;
  std::size_t index;  // into lock_events or calls
  int line, col;
};

void check_lock_order(const Model& model, const CheckOptions& opts,
                      std::vector<Diagnostic>& out) {
  const std::size_t nfn = model.functions.size();
  // Fixpoint: every lock a function may acquire, directly or via callees.
  std::vector<std::set<std::string>> locks_all(nfn);
  for (std::size_t fi = 0; fi < nfn; ++fi) {
    for (const LockEvent& ev : model.functions[fi].lock_events) {
      if (ev.kind == LockEvent::kAcquire) locks_all[fi].insert(ev.lock_id);
    }
  }
  for (bool changed = true; changed;) {
    changed = false;
    for (std::size_t fi = 0; fi < nfn; ++fi) {
      const Function& fn = model.functions[fi];
      for (const CallSite& cs : fn.calls) {
        for (int callee : callees_of(model, fn, cs)) {
          for (const auto& l : locks_all[static_cast<std::size_t>(callee)]) {
            if (locks_all[fi].insert(l).second) changed = true;
          }
        }
      }
    }
  }

  // Edge set: A held while acquiring B.
  struct EdgeInfo {
    Location loc;
  };
  std::map<std::pair<std::string, std::string>, EdgeInfo> edges;
  for (std::size_t fi = 0; fi < nfn; ++fi) {
    const Function& fn = model.functions[fi];
    if (fn.lock_events.empty() && fn.calls.empty()) continue;

    std::vector<OrderedEvent> seq;
    for (std::size_t k = 0; k < fn.lock_events.size(); ++k) {
      seq.push_back({OrderedEvent::kLock, k, fn.lock_events[k].loc.line,
                     fn.lock_events[k].loc.col});
    }
    for (std::size_t k = 0; k < fn.calls.size(); ++k) {
      seq.push_back({OrderedEvent::kCall, k, fn.calls[k].loc.line,
                     fn.calls[k].loc.col});
    }
    std::sort(seq.begin(), seq.end(), [](const OrderedEvent& a, const OrderedEvent& b) {
      return std::tie(a.line, a.col) < std::tie(b.line, b.col);
    });

    std::vector<std::string> held;
    for (const OrderedEvent& ev : seq) {
      if (ev.kind == OrderedEvent::kLock) {
        const LockEvent& le = fn.lock_events[ev.index];
        if (le.kind == LockEvent::kAcquire) {
          for (const auto& h : held) {
            if (h != le.lock_id) {
              edges.emplace(std::make_pair(h, le.lock_id), EdgeInfo{le.loc});
            }
          }
          held.push_back(le.lock_id);
        } else {
          for (auto it = held.rbegin(); it != held.rend(); ++it) {
            if (*it == le.lock_id) {
              held.erase(std::next(it).base());
              break;
            }
          }
        }
      } else {
        if (held.empty()) continue;
        const CallSite& cs = fn.calls[ev.index];
        for (int callee : callees_of(model, fn, cs)) {
          for (const auto& l : locks_all[static_cast<std::size_t>(callee)]) {
            for (const auto& h : held) {
              if (h != l) edges.emplace(std::make_pair(h, l), EdgeInfo{cs.loc});
            }
          }
        }
      }
    }
  }

  if (opts.lock_edges_out) {
    for (const auto& [key, info] : edges) {
      opts.lock_edges_out->push_back(
          {key.first, key.second, info.loc.file ? info.loc.file->path : "",
           info.loc.line});
    }
  }

  // Cycle reporting. ABBA pairs first (the common deadlock), then longer
  // cycles via DFS; each unordered pair/cycle reported once.
  std::set<std::pair<std::string, std::string>> reported;
  std::map<std::string, std::vector<std::string>> adj;
  for (const auto& [key, info] : edges) adj[key.first].push_back(key.second);
  for (const auto& [key, info] : edges) {
    const auto reverse = std::make_pair(key.second, key.first);
    if (!edges.count(reverse)) continue;
    const auto canon = key.first < key.second ? key : reverse;
    if (!reported.insert(canon).second) continue;
    const EdgeInfo& fwd = edges.at(canon);
    const EdgeInfo& rev = edges.at(std::make_pair(canon.second, canon.first));
    append(out, kCheckLockOrder, fwd.loc,
           "statically possible ABBA deadlock: '" + canon.first +
               "' is held while acquiring '" + canon.second + "' here, and '" +
               canon.second + "' is held while acquiring '" + canon.first +
               "' at " + (rev.loc.file ? rev.loc.file->path : "?") + ":" +
               std::to_string(rev.loc.line));
  }
  // Longer cycles: DFS with a path stack.
  std::set<std::string> done;
  for (const auto& [start, unused] : adj) {
    (void)unused;
    if (done.count(start)) continue;
    std::vector<std::string> stack;
    std::set<std::string> on_stack;
    std::function<void(const std::string&)> dfs = [&](const std::string& u) {
      if (done.count(u)) return;
      stack.push_back(u);
      on_stack.insert(u);
      for (const auto& v : adj[u]) {
        if (on_stack.count(v)) {
          // Found a cycle v -> ... -> u -> v; skip 2-cycles (reported above).
          auto it = std::find(stack.begin(), stack.end(), v);
          const std::size_t len = static_cast<std::size_t>(stack.end() - it);
          if (len >= 3) {
            std::string cycle;
            for (auto p = it; p != stack.end(); ++p) {
              cycle += (cycle.empty() ? "" : " -> ") + *p;
            }
            cycle += " -> " + v;
            const auto canon = std::make_pair("cycle:" + cycle, std::string());
            if (reported.insert(canon).second) {
              const EdgeInfo& info = edges.at(std::make_pair(stack.back(), v));
              append(out, kCheckLockOrder, info.loc,
                     "statically possible lock cycle: " + cycle);
            }
          }
          continue;
        }
        dfs(v);
      }
      on_stack.erase(u);
      stack.pop_back();
      done.insert(u);
    };
    dfs(start);
  }
}

// -- check 5: join-mismatch ---------------------------------------------------
//
// The AsyncDF space bound is argued over a spawn DAG in which every spawn has
// a dominating join; a handle that is discarded or never joined means the
// code builds a different DAG than the one the bound certifies. Unlike
// fiber-stack-escape this fires regardless of what the child captures.

void check_join_mismatch(const Model& model, const SpawnGraph& graph,
                         std::vector<Diagnostic>& out) {
  (void)graph;
  for (const SpawnSite& sp : model.spawns) {
    if (sp.is_run_body) continue;  // run() blocks until every thread exits
    const Function* encl =
        sp.enclosing_fn >= 0 ? &model.functions[sp.enclosing_fn] : nullptr;
    const std::string where =
        encl ? " in '" + encl->qualified + "'" : std::string();
    switch (sp.fate) {
      case HandleFate::kLocal: {
        const bool joined = encl && !sp.handle_base.empty() &&
                            encl->joined_bases.count(sp.handle_base) > 0;
        const bool detached = encl && !sp.handle_base.empty() &&
                              encl->detached_bases.count(sp.handle_base) > 0;
        const bool returned = encl && !sp.handle_base.empty() &&
                              encl->returned_bases.count(sp.handle_base) > 0;
        if (!joined && !detached && !returned) {
          append(out, kCheckJoinMismatch, sp.loc,
                 "spawn" + where + " has no dominating join: handle '" +
                     sp.handle_base +
                     "' is neither joined nor detached in the spawning "
                     "function — the spawn DAG the space bound is argued "
                     "over requires every spawn to be joined");
        }
        break;
      }
      case HandleFate::kDiscarded:
        append(out, kCheckJoinMismatch, sp.loc,
               "spawn" + where + " discards its handle, so it can never be "
               "joined — every spawn on the DAG needs a dominating join "
               "(use detach explicitly if fire-and-forget is intended)");
        break;
      case HandleFate::kEscaped:
        // The handle may be joined by whoever it escapes to; the local
        // analysis cannot prove a mismatch.
        break;
    }
  }
}

// -- check 6: alloc-before-spawn ----------------------------------------------
//
// The premature-allocation pattern AsyncDF exists to delay: a df_malloc whose
// only consumer is one spawned child inflates the parent's live footprint for
// the whole child lifetime. Allocating inside the child lets the scheduler
// charge it against the child's quota grant instead.

void check_alloc_before_spawn(const Model& model, const SpawnGraph& graph,
                              std::vector<Diagnostic>& out) {
  for (std::size_t fi = 0; fi < model.functions.size(); ++fi) {
    const Function& fn = model.functions[fi];
    if (fn.malloc_locals.empty()) continue;
    const auto& spawn_sites = graph.spawn_sites_of[fi];
    if (spawn_sites.empty()) continue;

    for (const std::string& m : fn.malloc_locals) {
      // Spawn consumers: lambdas capturing/using m, or &m passed through the
      // pthread_create argument slot.
      int consumers = 0;
      const SpawnSite* consumer = nullptr;
      for (int si : spawn_sites) {
        const SpawnSite& sp = model.spawns[static_cast<std::size_t>(si)];
        if (sp.is_run_body) continue;
        const bool uses =
            lambda_uses_ident(model, sp.lambda_id, m) ||
            std::find(sp.addr_of_args.begin(), sp.addr_of_args.end(), m) !=
                sp.addr_of_args.end();
        if (uses) {
          ++consumers;
          consumer = &sp;
        }
      }
      if (consumers != 1) continue;  // shared across children, or unused

      // Any use by the parent itself keeps the allocation where it is.
      bool parent_use = false;
      for (const CallSite& cs : fn.calls) {
        if (cs.callee == "spawn" || cs.callee == "run" ||
            cs.callee == "dfth_pthread_create" || cs.callee == "df_malloc" ||
            cs.callee == "df_try_malloc" || cs.callee == "df_free") {
          continue;
        }
        if (cs.arg_idents.count(m) || cs.receiver == m) {
          parent_use = true;
          break;
        }
      }
      if (!parent_use) {
        for (const Store& st : fn.stores) {
          if (st.base == m) {
            parent_use = true;
            break;
          }
        }
      }
      if (!parent_use) {
        for (const auto& [local, roots] : fn.derived) {
          if (local != m && roots.count(m)) {
            parent_use = true;
            break;
          }
        }
      }
      if (!parent_use) {
        for (const Annotation& an : fn.annotations) {
          if (an.arg_idents.count(m)) {
            parent_use = true;
            break;
          }
        }
      }
      if (parent_use) continue;

      auto lit = fn.malloc_local_loc.find(m);
      const Location loc =
          lit != fn.malloc_local_loc.end() ? lit->second : consumer->loc;
      append(out, kCheckAllocBeforeSpawn, loc,
             "allocation '" + m + "' in '" + fn.qualified +
                 "' is consumed only by the spawn at line " +
                 std::to_string(consumer->loc.line) +
                 " — allocating in the parent holds the memory for the "
                 "child's whole lifetime; allocate inside the spawned "
                 "thread so AsyncDF can delay it");
    }
  }
}

// -- check 7: blocking-while-holding-lock -------------------------------------
//
// Lock-graph × blocking-call join: a blocking primitive reached while a dfth
// lock is held serializes every fiber queued on that lock behind a kernel-
// level wait. may_block propagates transitively over the call graph.

void check_blocking_lock(const Model& model, const SpawnGraph& graph,
                         std::vector<Diagnostic>& out) {
  const std::size_t nfn = model.functions.size();

  auto direct_blocking = [&](const CallSite& cs) -> bool {
    if (cs.callee.rfind("dfth_", 0) == 0 || cs.callee.rfind("df_", 0) == 0) {
      return false;
    }
    const bool plain = cs.qualifier.empty() && cs.receiver.empty();
    return (plain && (blocked_libc_calls().count(cs.callee) ||
                      blocked_pthread_calls().count(cs.callee))) ||
           is_this_thread_call(cs);
  };

  // Fixpoint: may this function reach a blocking primitive? Compat shims are
  // the allowlist — they wrap waits in fiber-aware form.
  std::vector<char> may_block(nfn, 0);
  for (std::size_t fi = 0; fi < nfn; ++fi) {
    if (in_compat_layer(model.functions[fi])) continue;
    for (const CallSite& cs : model.functions[fi].calls) {
      if (direct_blocking(cs)) {
        may_block[fi] = 1;
        break;
      }
    }
  }
  for (bool changed = true; changed;) {
    changed = false;
    for (std::size_t fi = 0; fi < nfn; ++fi) {
      if (may_block[fi] || in_compat_layer(model.functions[fi])) continue;
      for (int callee : graph.callees[fi]) {
        if (may_block[static_cast<std::size_t>(callee)]) {
          may_block[fi] = 1;
          changed = true;
          break;
        }
      }
    }
  }

  for (std::size_t fi = 0; fi < nfn; ++fi) {
    const Function& fn = model.functions[fi];
    if (in_compat_layer(fn)) continue;
    if (fn.lock_events.empty()) continue;

    std::vector<OrderedEvent> seq;
    for (std::size_t k = 0; k < fn.lock_events.size(); ++k) {
      seq.push_back({OrderedEvent::kLock, k, fn.lock_events[k].loc.line,
                     fn.lock_events[k].loc.col});
    }
    for (std::size_t k = 0; k < fn.calls.size(); ++k) {
      seq.push_back({OrderedEvent::kCall, k, fn.calls[k].loc.line,
                     fn.calls[k].loc.col});
    }
    std::sort(seq.begin(), seq.end(),
              [](const OrderedEvent& a, const OrderedEvent& b) {
                return std::tie(a.line, a.col) < std::tie(b.line, b.col);
              });

    std::vector<std::string> held;
    for (const OrderedEvent& ev : seq) {
      if (ev.kind == OrderedEvent::kLock) {
        const LockEvent& le = fn.lock_events[ev.index];
        if (le.kind == LockEvent::kAcquire) {
          held.push_back(le.lock_id);
        } else {
          for (auto it = held.rbegin(); it != held.rend(); ++it) {
            if (*it == le.lock_id) {
              held.erase(std::next(it).base());
              break;
            }
          }
        }
        continue;
      }
      if (held.empty()) continue;
      const CallSite& cs = fn.calls[ev.index];
      if (direct_blocking(cs)) {
        append(out, kCheckBlockingLock, cs.loc,
               "blocking call '" + cs.callee + "' while holding lock '" +
                   held.back() + "' in '" + fn.qualified +
                   "' — every fiber queued on the lock now waits on a "
                   "kernel-level block");
        continue;
      }
      for (int callee : callees_of(model, fn, cs)) {
        if (may_block[static_cast<std::size_t>(callee)]) {
          append(out, kCheckBlockingLock, cs.loc,
                 "call '" + cs.callee + "' may block (via '" +
                     model.functions[callee].qualified +
                     "') while holding lock '" + held.back() + "' in '" +
                     fn.qualified + "'");
          break;
        }
      }
    }
  }
}

}  // namespace

std::vector<std::string> all_check_names() {
  return {kCheckBlockingCall, kCheckSharedWrite,      kCheckStackEscape,
          kCheckLockOrder,    kCheckJoinMismatch,     kCheckAllocBeforeSpawn,
          kCheckBlockingLock};
}

std::vector<Diagnostic> run_checks(const Model& model, const CheckOptions& opts) {
  auto enabled = [&](const char* name) {
    return opts.enabled.empty() || opts.enabled.count(name);
  };
  std::vector<Diagnostic> out;
  const Reachability reach = fiber_reachability(model);
  const SpawnGraph graph = build_spawn_graph(model);
  if (enabled(kCheckBlockingCall)) check_blocking_calls(model, reach, out);
  if (enabled(kCheckSharedWrite)) check_shared_writes(model, reach, opts, out);
  if (enabled(kCheckStackEscape)) check_stack_escape(model, out);
  if (enabled(kCheckLockOrder)) check_lock_order(model, opts, out);
  if (enabled(kCheckJoinMismatch)) check_join_mismatch(model, graph, out);
  if (enabled(kCheckAllocBeforeSpawn)) {
    check_alloc_before_spawn(model, graph, out);
  }
  if (enabled(kCheckBlockingLock)) check_blocking_lock(model, graph, out);
  std::sort(out.begin(), out.end(), [](const Diagnostic& a, const Diagnostic& b) {
    return std::tie(a.path, a.line, a.col, a.check) <
           std::tie(b.path, b.line, b.col, b.check);
  });
  return out;
}

}  // namespace dfth_check
