// Token stream + suppression scanning for dfth-check's builtin frontend.
//
// The builtin frontend is a structural C++ tokenizer, not a real parser: it
// produces the token stream model.h reconstructs functions, lambdas, calls
// and stores from. It deliberately has no preprocessor and no type system —
// the checks that need types (see checks.h) work from capture lists,
// parameter declarators and df_malloc derivations instead. When the Clang
// LibTooling frontend is available (DFTH_CHECK_HAVE_CLANG) it refines the
// same model with AST-accurate facts; the token model is the portable
// baseline that keeps the tool buildable with nothing but a C++ compiler.
#pragma once

#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace dfth_check {

enum class Tok {
  kIdent,    // identifiers and keywords
  kNumber,   // numeric literals
  kString,   // string and char literals (text dropped)
  kPunct,    // operators and punctuation, multi-char ops fused ("==", "->", "::")
};

struct Token {
  Tok kind;
  std::string text;
  int line = 0;
  int col = 0;
};

/// One loaded source file: its token stream plus the `dfth-check-ignore`
/// suppressions harvested from comments while lexing.
struct SourceFile {
  std::string path;
  std::vector<Token> tokens;

  /// line -> set of check names suppressed on that line. A
  /// `// dfth-check-ignore(<check>)` marker is scoped to the *next statement
  /// only*: trailing a statement it suppresses that statement's line; on a
  /// comment-only line it binds to the next line that carries code. It never
  /// bleeds past that one statement, so a misplaced marker cannot mask a
  /// later finding. `dfth-check-ignore(*)` suppresses every check.
  std::map<int, std::set<std::string>> line_suppressions;

  /// Checks suppressed for the whole file via `dfth-check-ignore-file(...)`.
  std::set<std::string> file_suppressions;

  /// line -> byte-size expression from a `// dfth-space-alloc: <expr>`
  /// annotation. Declares an allocation the token scan cannot see (e.g. a
  /// TrackedAllocator-backed container) for the space-bound analysis; the
  /// expression is charged to the enclosing function like a df_malloc arg.
  std::map<int, std::string> space_allocs;

  bool suppressed(const std::string& check, int line) const;
};

/// Lexes `text` (the contents of `path`). Comments and preprocessor
/// directives are consumed (not emitted as tokens); suppression markers are
/// recorded. Never fails: unrecognized bytes are skipped.
SourceFile lex_file(std::string path, const std::string& text);

}  // namespace dfth_check
