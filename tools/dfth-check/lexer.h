// Token stream + suppression scanning for dfth-check's builtin frontend.
//
// The builtin frontend is a structural C++ tokenizer, not a real parser: it
// produces the token stream model.h reconstructs functions, lambdas, calls
// and stores from. It deliberately has no preprocessor and no type system —
// the checks that need types (see checks.h) work from capture lists,
// parameter declarators and df_malloc derivations instead. When the Clang
// LibTooling frontend is available (DFTH_CHECK_HAVE_CLANG) it refines the
// same model with AST-accurate facts; the token model is the portable
// baseline that keeps the tool buildable with nothing but a C++ compiler.
#pragma once

#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace dfth_check {

enum class Tok {
  kIdent,    // identifiers and keywords
  kNumber,   // numeric literals
  kString,   // string and char literals (text dropped)
  kPunct,    // operators and punctuation, multi-char ops fused ("==", "->", "::")
};

struct Token {
  Tok kind;
  std::string text;
  int line = 0;
  int col = 0;
};

/// One loaded source file: its token stream plus the `dfth-check-ignore`
/// suppressions harvested from comments while lexing.
struct SourceFile {
  std::string path;
  std::vector<Token> tokens;

  /// line -> set of check names suppressed on that line. A comment
  /// `// dfth-check-ignore(<check>)` suppresses <check> on its own line and
  /// on the following line (so it can sit above the flagged statement);
  /// `dfth-check-ignore(*)` suppresses every check.
  std::map<int, std::set<std::string>> line_suppressions;

  /// Checks suppressed for the whole file via `dfth-check-ignore-file(...)`.
  std::set<std::string> file_suppressions;

  bool suppressed(const std::string& check, int line) const;
};

/// Lexes `text` (the contents of `path`). Comments and preprocessor
/// directives are consumed (not emitted as tokens); suppression markers are
/// recorded. Never fails: unrecognized bytes are skipped.
SourceFile lex_file(std::string path, const std::string& text);

}  // namespace dfth_check
