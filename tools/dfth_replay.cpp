// dfth-replay: inspect, diff and re-execute schedule logs (src/replay/).
//
//   dfth-replay inspect <log>        header + event-kind histogram
//   dfth-replay diff <a> <b>         first divergence between two logs
//   dfth-replay replay [--sim] [--full] <log>
//                                    re-run the recorded app pinned to the log
//
// `replay` resolves the app through the recorded tag: the soak and the
// property tests record tag = bench::app_slug(name), and this tool rebuilds
// the same input (bench/apps_runner.h) from the seed stored in the header.
// --sim forces the run onto the SimEngine — a cross-replay of a RealEngine
// log under virtual time. --full selects the paper-size inputs for logs
// recorded from a --full run (problem size is not part of the header).
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "apps_runner.h"
#include "replay/log.h"
#include "replay/signature.h"

namespace {

using namespace dfth;

int usage() {
  std::fprintf(stderr,
               "usage: dfth-replay inspect <log>\n"
               "       dfth-replay diff <a> <b>\n"
               "       dfth-replay replay [--sim] [--full] <log>\n");
  return 2;
}

const char* kind_name(std::uint16_t kind) {
  if (kind >= static_cast<std::uint16_t>(replay::EvKind::kCount)) return "?";
  return replay::to_string(static_cast<replay::EvKind>(kind));
}

bool load_or_complain(const std::string& path, replay::LoadedLog* log) {
  std::string error;
  if (!replay::load_log(path, log, &error)) {
    std::fprintf(stderr, "dfth-replay: %s\n", error.c_str());
    return false;
  }
  return true;
}

void print_actor(std::uint64_t actor) {
  if (actor == replay::kActorHost) {
    std::printf("host");
  } else if (actor == replay::kActorTimer) {
    std::printf("timer");
  } else if (actor & replay::kLaneActorBit) {
    std::printf("lane%" PRIu64, actor & ~replay::kLaneActorBit);
  } else {
    std::printf("tid%" PRIu64, actor);
  }
}

void print_record(const replay::Record& r) {
  std::printf("seq=%" PRIu64 " %s actor=", r.seq, kind_name(r.kind));
  print_actor(r.actor);
  std::printf(" a=%" PRIu64 " b=%" PRIu64 " (lane %u)", r.a, r.b, r.lane);
}

int cmd_inspect(const std::string& path, std::size_t ev_from,
                std::size_t ev_to) {
  replay::LoadedLog log;
  if (!load_or_complain(path, &log)) return 1;
  if (ev_from != ev_to) {
    // --events A B: dump the ordered decisions in [A, B) — the view to pull
    // up around the index a divergence/stall diagnostic names.
    for (std::size_t i = ev_from; i < ev_to && i < log.ordered.size(); ++i) {
      std::printf("[%zu] ", i);
      print_record(log.ordered[i]);
      std::printf("\n");
    }
    return 0;
  }
  const replay::LogHeader& h = log.header;
  std::printf("log:      %s\n", path.c_str());
  std::printf("tag:      %s\n", h.tag[0] ? h.tag : "(none)");
  std::printf("engine:   %s   sched=%u  nprocs=%u  cluster=%u  lanes=%u\n",
              h.engine == static_cast<std::uint32_t>(EngineKind::Real) ? "real"
                                                                       : "sim",
              h.sched, h.nprocs, h.cluster_size, h.lanes);
  std::printf("seed:     %" PRIu64 "  quota=%" PRIu64 "  stack=%" PRIu64 "\n",
              h.seed, h.mem_quota, h.default_stack_size);
  std::printf("events:   %" PRIu64 " (%zu ordered, %zu annotations)  %s\n",
              h.event_count, log.ordered.size(), log.annotations.size(),
              h.clean_end ? "clean end" : "PARTIAL (abort-time flush)");
  if (h.has_fault_plan) {
    std::printf("faults:   embedded plan, seed %" PRIu64 "\n", h.fault_seed);
    for (int i = 0; i < replay::kMaxFaultSitesWire; ++i) {
      const replay::SiteSpecWire& s = h.fault_sites[i];
      if (s.every_nth == 0 && s.probability == 0.0) continue;
      std::printf("          site %d: every_nth=%" PRIu64 " p=%.3f skip=%" PRIu64
                  " max=%" PRIu64 "\n",
                  i, s.every_nth, s.probability, s.skip_first, s.max_failures);
    }
  } else {
    std::printf("faults:   no embedded plan\n");
  }
  std::uint64_t counts[static_cast<int>(replay::EvKind::kCount)] = {};
  auto tally = [&counts](const std::vector<replay::Record>& v) {
    for (const replay::Record& r : v) {
      if (r.kind < static_cast<std::uint16_t>(replay::EvKind::kCount)) {
        ++counts[r.kind];
      }
    }
  };
  tally(log.ordered);
  tally(log.annotations);
  std::printf("-- event kinds --\n");
  for (int k = 0; k < static_cast<int>(replay::EvKind::kCount); ++k) {
    if (counts[k] == 0) continue;
    std::printf("  %-12s %10" PRIu64 "\n",
                kind_name(static_cast<std::uint16_t>(k)), counts[k]);
  }
  return 0;
}

int cmd_diff(const std::string& pa, const std::string& pb) {
  replay::LoadedLog a, b;
  if (!load_or_complain(pa, &a) || !load_or_complain(pb, &b)) return 1;
  int rc = 0;
  if (std::memcmp(&a.header.engine, &b.header.engine,
                  sizeof(std::uint32_t) * 4) != 0 ||
      a.header.seed != b.header.seed) {
    std::printf("headers differ (engine/sched/nprocs/cluster/seed)\n");
    rc = 1;
  }
  const std::size_t n = std::min(a.ordered.size(), b.ordered.size());
  for (std::size_t i = 0; i < n; ++i) {
    const replay::Record &ra = a.ordered[i], &rb = b.ordered[i];
    // seq values may differ (they interleave with annotations); the decision
    // stream itself — kind, actor, operands — is what must match.
    if (ra.kind != rb.kind || ra.actor != rb.actor || ra.a != rb.a ||
        ra.b != rb.b) {
      std::printf("ordered streams diverge at decision %zu:\n  %s: ", i,
                  pa.c_str());
      print_record(ra);
      std::printf("\n  %s: ", pb.c_str());
      print_record(rb);
      std::printf("\n");
      return 1;
    }
  }
  if (a.ordered.size() != b.ordered.size()) {
    std::printf("ordered streams agree for %zu decisions, then %s has %zu more\n",
                n, a.ordered.size() > b.ordered.size() ? pa.c_str() : pb.c_str(),
                a.ordered.size() > b.ordered.size()
                    ? a.ordered.size() - b.ordered.size()
                    : b.ordered.size() - a.ordered.size());
    return 1;
  }
  if (a.annotations.size() != b.annotations.size()) {
    std::printf("annotation (steal) counts differ: %zu vs %zu\n",
                a.annotations.size(), b.annotations.size());
    rc = 1;
  }
  if (rc == 0) {
    std::printf("identical: %zu ordered decisions, %zu annotations\n",
                a.ordered.size(), a.annotations.size());
  }
  return rc;
}

int cmd_replay(const std::string& path, bool force_sim, bool full) {
  replay::LoadedLog log;
  if (!load_or_complain(path, &log)) return 1;
  const replay::LogHeader& h = log.header;
  if (h.tag[0] == '\0') {
    std::fprintf(stderr,
                 "dfth-replay: log has no tag; cannot resolve which app to "
                 "re-run (record with RuntimeOptions::record_tag set)\n");
    return 1;
  }
  const EngineKind engine =
      force_sim ? EngineKind::Sim : static_cast<EngineKind>(h.engine);
  const bool cross = engine == EngineKind::Sim &&
                     h.engine == static_cast<std::uint32_t>(EngineKind::Real);

  // The header pins every option the replay-session open checks; the tweak
  // copies them over whatever defaults the app registry picked so a log
  // recorded outside the soak's exact configuration still replays.
  auto tweak = [&path, &h](RuntimeOptions& o) {
    o.replay_path = path;
    o.cluster_size = static_cast<int>(h.cluster_size);
    o.mem_quota = h.mem_quota;
    o.default_stack_size = h.default_stack_size;
    o.seed = h.seed;
  };
  auto apps = bench::make_apps(full, h.seed, engine, nullptr, tweak);
  for (bench::AppSpec& app : apps) {
    if (bench::app_slug(app.name) != h.tag && app.name != h.tag) continue;
    std::printf("replaying %s (%s, %s%s) from %s\n", app.name.c_str(),
                app.problem.c_str(), to_string(engine),
                cross ? " cross-replay" : "", path.c_str());
    std::fflush(stdout);
    const RunStats stats = app.fine(static_cast<SchedKind>(h.sched),
                                    static_cast<int>(h.nprocs), h.seed);
    std::printf("DFTH-SIG replay/%s %s\n", h.tag,
                replay::determinism_signature(stats).c_str());
    std::printf("replay completed\n");
    return 0;
  }
  std::fprintf(stderr,
               "dfth-replay: no app matches tag '%s' (known: ", h.tag);
  for (std::size_t i = 0; i < apps.size(); ++i) {
    std::fprintf(stderr, "%s%s", i ? ", " : "",
                 bench::app_slug(apps[i].name).c_str());
  }
  std::fprintf(stderr, ")\n");
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (!dfth::replay::kReplayEnabled) {
    std::fprintf(stderr,
                 "dfth-replay: built with -DDFTH_REPLAY=OFF; rebuild with "
                 "-DDFTH_REPLAY=ON to use schedule logs\n");
    return 1;
  }
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  if (cmd == "inspect" && argc == 3) return cmd_inspect(argv[2], 0, 0);
  if (cmd == "inspect" && argc == 6 &&
      std::string(argv[3]) == "--events") {
    return cmd_inspect(argv[2], std::strtoull(argv[4], nullptr, 10),
                       std::strtoull(argv[5], nullptr, 10));
  }
  if (cmd == "diff" && argc == 4) return cmd_diff(argv[2], argv[3]);
  if (cmd == "replay") {
    bool sim = false, full = false;
    std::string path;
    for (int i = 2; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg == "--sim") {
        sim = true;
      } else if (arg == "--full") {
        full = true;
      } else if (path.empty()) {
        path = arg;
      } else {
        return usage();
      }
    }
    if (path.empty()) return usage();
    return cmd_replay(path, sim, full);
  }
  return usage();
}
