// dfth-prof: offline views of the PROF_<app>.json files written by
// obs/export.h (write_profile_json). Like dfth-trace, it parses the
// writer's fixed line-oriented key order with plain string scanning — the
// toolchain has no JSON library, and none is needed.
//
//   dfth-prof report <PROF.json> [--top N]
//       Parallelism report: work, span, burdened span, overhead,
//       parallelism, the Brent what-if sweep (predicted T_p bounds vs
//       measured T_p), and the top-N critical-path spawn-site segments.
//
//   dfth-prof collapse <PROF.json>
//       Collapsed spawn-site stacks ("stack work_ns", one per line) on
//       stdout — pipe to a file and load in speedscope or feed to
//       flamegraph.pl. Work is keyed by the df_create/dfth::spawn call
//       chain that created each fiber, so the flame graph answers "which
//       spawn sites cost what".
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

namespace {

/// Extracts the value after `"key": ` as a raw token (up to , } or end).
bool raw_value(const std::string& line, const char* key, std::string* out) {
  const std::string pat = std::string("\"") + key + "\": ";
  const auto pos = line.find(pat);
  if (pos == std::string::npos) return false;
  auto start = pos + pat.size();
  auto end = start;
  int depth = 0;
  while (end < line.size()) {
    const char c = line[end];
    if (c == '{') ++depth;
    if (depth == 0 && (c == ',' || c == '}')) break;
    if (c == '}') --depth;
    ++end;
  }
  *out = line.substr(start, end - start);
  return true;
}

bool string_value(const std::string& line, const char* key, std::string* out) {
  std::string raw;
  if (!raw_value(line, key, &raw)) return false;
  if (raw.size() < 2 || raw.front() != '"' || raw.back() != '"') return false;
  *out = raw.substr(1, raw.size() - 2);
  return true;
}

bool num_value(const std::string& line, const char* key, double* out) {
  std::string raw;
  if (!raw_value(line, key, &raw)) return false;
  *out = std::atof(raw.c_str());
  return true;
}

bool u64_value(const std::string& line, const char* key, std::uint64_t* out) {
  std::string raw;
  if (!raw_value(line, key, &raw)) return false;
  *out = static_cast<std::uint64_t>(std::strtoull(raw.c_str(), nullptr, 10));
  return true;
}

struct SweepRow {
  int p = 0;
  double lo_us = 0, hi_us = 0, measured_us = -1;
};

struct StackRow {
  std::string stack;
  std::uint64_t ns = 0;
};

struct ProfFile {
  std::string label;
  bool enabled = false;
  std::uint64_t work_ns = 0, span_ns = 0, burdened_span_ns = 0;
  std::uint64_t overhead_ns = 0, fibers = 0;
  double parallelism = 0, elapsed_us = 0;
  int nprocs = 0;
  std::vector<SweepRow> sweep;
  std::vector<StackRow> crit;       ///< segments sum to span_ns
  std::vector<StackRow> collapsed;  ///< lines sum to work_ns
};

bool load(const std::string& path, ProfFile* pf) {
  std::ifstream in(path);
  if (!in) return false;
  std::string line;
  while (std::getline(in, line)) {
    if (line.rfind("\"label\": ", 0) == 0) {
      string_value(line, "label", &pf->label);
    } else if (line.rfind("\"profile\": ", 0) == 0) {
      std::string enabled;
      raw_value(line, "enabled", &enabled);
      pf->enabled = enabled == "true";
      u64_value(line, "work_ns", &pf->work_ns);
      u64_value(line, "span_ns", &pf->span_ns);
      u64_value(line, "burdened_span_ns", &pf->burdened_span_ns);
      u64_value(line, "overhead_ns", &pf->overhead_ns);
      u64_value(line, "fibers", &pf->fibers);
      num_value(line, "parallelism", &pf->parallelism);
    } else if (line.rfind("\"elapsed_us\": ", 0) == 0) {
      num_value(line, "elapsed_us", &pf->elapsed_us);
    } else if (line.rfind("\"nprocs\": ", 0) == 0) {
      double p = 0;
      num_value(line, "nprocs", &p);
      pf->nprocs = static_cast<int>(p);
    } else if (line.rfind("{\"p\": ", 0) == 0) {
      SweepRow r;
      double p = 0;
      num_value(line, "p", &p);
      r.p = static_cast<int>(p);
      num_value(line, "predicted_lo_us", &r.lo_us);
      num_value(line, "predicted_hi_us", &r.hi_us);
      num_value(line, "measured_us", &r.measured_us);
      pf->sweep.push_back(r);
    } else if (line.rfind("{\"stack\": ", 0) == 0) {
      StackRow r;
      string_value(line, "stack", &r.stack);
      // Collapsed lines carry "work_ns", critical-path segments "ns"; the
      // underscore keeps the two keys from matching each other's pattern.
      if (u64_value(line, "work_ns", &r.ns)) {
        pf->collapsed.push_back(std::move(r));
      } else if (u64_value(line, "ns", &r.ns)) {
        pf->crit.push_back(std::move(r));
      }
    }
  }
  return true;
}

int report(const ProfFile& pf, const std::string& path, std::size_t top_n) {
  std::printf("profile: %s (%s)\n", path.c_str(), pf.label.c_str());
  if (!pf.enabled) {
    std::printf("  (profiling was not enabled for this run — rebuild with "
                "-DDFTH_PROF=ON and install a Profiler)\n");
    return 0;
  }
  std::printf("  fibers        %12llu\n",
              static_cast<unsigned long long>(pf.fibers));
  std::printf("  work          %12.3f ms   (T1: one processor, no scheduler)\n",
              pf.work_ns / 1e6);
  std::printf("  span          %12.3f ms   (T_inf: critical path)\n",
              pf.span_ns / 1e6);
  std::printf("  burdened span %12.3f ms   (span + scheduling burden)\n",
              pf.burdened_span_ns / 1e6);
  std::printf("  overhead      %12.3f ms   (lane-side scheduler time)\n",
              pf.overhead_ns / 1e6);
  std::printf("  parallelism   %12.2f      (work / span)\n", pf.parallelism);

  if (!pf.sweep.empty()) {
    std::printf("\nwhat-if (Brent bounds from this profile):\n");
    std::printf("  %4s  %14s  %14s  %14s\n", "p", "predicted lo", "predicted hi",
                "measured");
    for (const SweepRow& r : pf.sweep) {
      std::printf("  %4d  %11.3f ms  %11.3f ms  ", r.p, r.lo_us / 1000.0,
                  r.hi_us / 1000.0);
      if (r.measured_us >= 0) {
        const char* verdict =
            r.measured_us >= r.lo_us - 1e-3 && r.measured_us <= r.hi_us + 1e-3
                ? ""
                : "  <- outside bounds";
        std::printf("%11.3f ms%s\n", r.measured_us / 1000.0, verdict);
      } else {
        std::printf("%14s\n", "-");
      }
    }
  }

  std::printf("\ncritical path by spawn site (segments sum to span):\n");
  std::size_t shown = 0;
  for (const StackRow& r : pf.crit) {
    if (shown++ >= top_n) break;
    const double share =
        pf.span_ns ? 100.0 * static_cast<double>(r.ns) / pf.span_ns : 0.0;
    std::printf("  %5.1f%%  %11.3f ms  %s\n", share, r.ns / 1e6,
                r.stack.c_str());
  }
  if (pf.crit.empty()) std::printf("  (none)\n");
  if (shown > top_n) {
    std::printf("  ... %zu more segments (--top N)\n", pf.crit.size() - top_n);
  }
  return 0;
}

int collapse(const ProfFile& pf) {
  for (const StackRow& r : pf.collapsed) {
    std::printf("%s %llu\n", r.stack.c_str(),
                static_cast<unsigned long long>(r.ns));
  }
  return 0;
}

void usage() {
  std::fprintf(stderr,
               "usage: dfth-prof report <PROF.json> [--top N]\n"
               "       dfth-prof collapse <PROF.json>\n"
               "  PROF.json: output of a DFTH_PROF run "
               "(obs::write_profile_json, e.g. bench/prof_apps)\n"
               "  collapse prints folded stacks for speedscope/flamegraph.pl\n");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) {
    usage();
    return argc >= 2 && std::strcmp(argv[1], "--help") == 0 ? 0 : 2;
  }
  const bool is_report = std::strcmp(argv[1], "report") == 0;
  const bool is_collapse = std::strcmp(argv[1], "collapse") == 0;
  if (!is_report && !is_collapse) {
    usage();
    return 2;
  }
  std::size_t top_n = 10;
  for (int i = 3; i < argc; ++i) {
    if (std::strcmp(argv[i], "--top") == 0 && i + 1 < argc) {
      top_n = static_cast<std::size_t>(std::atoll(argv[++i]));
    }
  }
  ProfFile pf;
  if (!load(argv[2], &pf)) {
    std::fprintf(stderr, "dfth-prof: cannot open %s\n", argv[2]);
    return 1;
  }
  return is_report ? report(pf, argv[2], top_n) : collapse(pf);
}
