// Happens-before race-detector tests: the FastTrack core driven directly
// (standalone instance, no engine), and the engine-level hooks compiled in
// under -DDFTH_RACE — including the schedule-insensitivity property the
// detector exists for: one deterministic run under each scheduler policy
// reports the *same* race set, because the analysis is over the fork/join
// DAG, not the schedule that happened to run.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "analyze/race_detector.h"
#include "apps/barnes/barnes.h"
#include "apps/dtree/dtree.h"
#include "apps/fft/fft.h"
#include "apps/fmm/fmm.h"
#include "apps/matmul/matmul.h"
#include "apps/spmv/spmv.h"
#include "apps/volrend/volrend.h"
#include "runtime/api.h"
#include "runtime/sync.h"
#include "threads/tcb.h"

namespace dfth {
namespace {

using analyze::RaceDetector;

// ---------- FastTrack core, driven directly (no engine, no flag) ----------

/// Harness: a main Tcb plus helpers to fork/join children through the
/// detector, mimicking what the engine hooks do.
class RaceDetectorUnit : public ::testing::Test {
 protected:
  RaceDetectorUnit() : main_(1) {
    det_.set_abort_on_race(false);
    det_.on_thread_start(&main_, nullptr);
  }

  Tcb* fork(Tcb* parent) {
    tcbs_.push_back(std::make_unique<Tcb>(next_id_++));
    Tcb* child = tcbs_.back().get();
    det_.on_thread_start(child, parent);
    return child;
  }

  RaceDetector det_;
  Tcb main_;
  std::uint64_t next_id_ = 2;
  std::vector<std::unique_ptr<Tcb>> tcbs_;
  double cell_ = 0;  // the memory under test
};

TEST_F(RaceDetectorUnit, ForkOrdersParentPrefixBeforeChild) {
  det_.on_write(&main_, &cell_, sizeof(cell_), "parent:init");
  Tcb* child = fork(&main_);
  det_.on_write(child, &cell_, sizeof(cell_), "child:write");
  EXPECT_EQ(det_.races_detected(), 0u);
}

TEST_F(RaceDetectorUnit, SiblingWritesRace) {
  Tcb* c1 = fork(&main_);
  Tcb* c2 = fork(&main_);
  det_.on_write(c1, &cell_, sizeof(cell_), "sib:one");
  det_.on_write(c2, &cell_, sizeof(cell_), "sib:two");
  ASSERT_EQ(det_.races_detected(), 1u);
  const analyze::RaceReport r = det_.reports()[0];
  EXPECT_EQ(r.prev.fiber, c1->id);
  EXPECT_EQ(r.cur.fiber, c2->id);
  EXPECT_STREQ(r.prev.site, "sib:one");
  EXPECT_STREQ(r.cur.site, "sib:two");
  EXPECT_TRUE(r.prev.is_write);
  EXPECT_TRUE(r.cur.is_write);
}

TEST_F(RaceDetectorUnit, ParentPostForkSegmentIsConcurrentWithChild) {
  Tcb* child = fork(&main_);
  det_.on_write(child, &cell_, sizeof(cell_), "child:write");
  // No join edge: the parent's post-fork write is unordered with the child's.
  det_.on_write(&main_, &cell_, sizeof(cell_), "parent:after-fork");
  EXPECT_EQ(det_.races_detected(), 1u);
}

TEST_F(RaceDetectorUnit, JoinOrdersChildBeforeParentContinuation) {
  Tcb* child = fork(&main_);
  det_.on_write(child, &cell_, sizeof(cell_), "child:write");
  det_.on_join(&main_, child);
  det_.on_write(&main_, &cell_, sizeof(cell_), "parent:after-join");
  EXPECT_EQ(det_.races_detected(), 0u);
}

TEST_F(RaceDetectorUnit, MutexReleaseAcquireOrdersCriticalSections) {
  Tcb* c1 = fork(&main_);
  Tcb* c2 = fork(&main_);
  int mutex = 0;  // any address works as the sync-object key
  det_.on_acquire(c1, &mutex);
  det_.on_write(c1, &cell_, sizeof(cell_), "cs:one");
  det_.on_release(c1, &mutex);
  det_.on_acquire(c2, &mutex);
  det_.on_write(c2, &cell_, sizeof(cell_), "cs:two");
  det_.on_release(c2, &mutex);
  EXPECT_EQ(det_.races_detected(), 0u);
}

TEST_F(RaceDetectorUnit, SemaphoreVThenPOrders) {
  Tcb* producer = fork(&main_);
  Tcb* consumer = fork(&main_);
  int sem = 0;
  det_.on_write(producer, &cell_, sizeof(cell_), "producer:fill");
  det_.on_release(producer, &sem);  // V
  det_.on_acquire(consumer, &sem);  // P
  det_.on_read(consumer, &cell_, sizeof(cell_), "consumer:drain");
  EXPECT_EQ(det_.races_detected(), 0u);
}

TEST_F(RaceDetectorUnit, ConcurrentReadsEscalateWithoutRacing) {
  det_.on_write(&main_, &cell_, sizeof(cell_), "parent:init");
  Tcb* r1 = fork(&main_);
  Tcb* r2 = fork(&main_);
  det_.on_read(r1, &cell_, sizeof(cell_), "reader:one");
  EXPECT_EQ(det_.read_escalations(), 0u);  // single reader: epoch fast path
  det_.on_read(r2, &cell_, sizeof(cell_), "reader:two");
  EXPECT_EQ(det_.races_detected(), 0u);    // reads never race with reads
  EXPECT_EQ(det_.read_escalations(), 1u);  // genuinely concurrent: escalated
  // A concurrent write must be checked against the *full* read vector, not
  // just the most recent reader.
  Tcb* w = fork(&main_);
  det_.on_write(w, &cell_, sizeof(cell_), "writer:late");
  EXPECT_EQ(det_.races_detected(), 1u);
}

TEST_F(RaceDetectorUnit, OrderedReadsStayOnEpochFastPath) {
  det_.on_write(&main_, &cell_, sizeof(cell_), "parent:init");
  det_.on_read(&main_, &cell_, sizeof(cell_), "parent:read");
  Tcb* child = fork(&main_);
  det_.on_read(child, &cell_, sizeof(cell_), "child:read");  // HB-after parent
  det_.on_join(&main_, child);
  det_.on_read(&main_, &cell_, sizeof(cell_), "parent:reread");
  EXPECT_EQ(det_.races_detected(), 0u);
  EXPECT_EQ(det_.read_escalations(), 0u);  // totally ordered: never escalates
}

TEST_F(RaceDetectorUnit, RwLockReadersConcurrentWritersOrdered) {
  int rw = 0;
  det_.on_wr_acquire(&main_, &rw);
  det_.on_write(&main_, &cell_, sizeof(cell_), "writer:init");
  det_.on_release(&main_, &rw);
  Tcb* r1 = fork(&main_);
  Tcb* r2 = fork(&main_);
  det_.on_rd_acquire(r1, &rw);
  det_.on_read(r1, &cell_, sizeof(cell_), "reader:one");
  det_.on_rd_release(r1, &rw);
  det_.on_rd_acquire(r2, &rw);
  det_.on_read(r2, &cell_, sizeof(cell_), "reader:two");
  det_.on_rd_release(r2, &rw);
  // The next writer orders after *all* read releases, not just the writer
  // chain — this is the rd_rel clock.
  Tcb* w = fork(&main_);
  det_.on_wr_acquire(w, &rw);
  det_.on_write(w, &cell_, sizeof(cell_), "writer:late");
  EXPECT_EQ(det_.races_detected(), 0u);
}

TEST_F(RaceDetectorUnit, RwLockReadDoesNotOrderReaderAgainstReader) {
  // Two read critical sections are concurrent: unprotected writes done
  // inside them still race. (Holding a read lock is not mutual exclusion.)
  int rw = 0;
  Tcb* r1 = fork(&main_);
  Tcb* r2 = fork(&main_);
  det_.on_rd_acquire(r1, &rw);
  det_.on_write(r1, &cell_, sizeof(cell_), "rd-cs:one");
  det_.on_rd_release(r1, &rw);
  det_.on_rd_acquire(r2, &rw);
  det_.on_write(r2, &cell_, sizeof(cell_), "rd-cs:two");
  det_.on_rd_release(r2, &rw);
  EXPECT_EQ(det_.races_detected(), 1u);
}

TEST_F(RaceDetectorUnit, BarrierGenerationIsAllToAll) {
  Tcb* t1 = fork(&main_);
  Tcb* t2 = fork(&main_);
  int barrier = 0;
  det_.on_write(t1, &cell_, sizeof(cell_), "phase0:t1");
  det_.on_barrier_arrive(t1, &barrier, 0, /*last=*/false);
  det_.on_barrier_arrive(t2, &barrier, 0, /*last=*/true);
  det_.on_barrier_leave(t2, &barrier, 0);
  det_.on_barrier_leave(t1, &barrier, 0);
  // After the generation, t2 sees t1's phase-0 write (and vice versa).
  det_.on_write(t2, &cell_, sizeof(cell_), "phase1:t2");
  EXPECT_EQ(det_.races_detected(), 0u);
}

TEST_F(RaceDetectorUnit, GranuleSpanningAccessChecksEveryGranule) {
  double wide[4] = {0, 0, 0, 0};
  Tcb* c1 = fork(&main_);
  Tcb* c2 = fork(&main_);
  det_.on_write(c1, &wide[3], sizeof(double), "sib:tail");
  // The sibling's span covers all four granules; the race is on the last.
  det_.on_write(c2, &wide[0], sizeof(wide), "sib:span");
  ASSERT_EQ(det_.races_detected(), 1u);
  EXPECT_STREQ(det_.reports()[0].prev.site, "sib:tail");
}

TEST_F(RaceDetectorUnit, DuplicateRacePairReportedOnce) {
  Tcb* c1 = fork(&main_);
  Tcb* c2 = fork(&main_);
  int tick = 0;  // sync object used only to advance c2's clock
  det_.on_write(c1, &cell_, sizeof(cell_), "dup:writer");
  det_.on_read(c2, &cell_, sizeof(cell_), "dup:reader");
  det_.on_release(c2, &tick);
  det_.on_read(c2, &cell_, sizeof(cell_), "dup:reader");
  EXPECT_EQ(det_.races_detected(), 1u);  // same (addr, sites, kinds) pair
}

TEST_F(RaceDetectorUnit, ClearResetsEverything) {
  Tcb* c1 = fork(&main_);
  Tcb* c2 = fork(&main_);
  det_.on_write(c1, &cell_, sizeof(cell_), "sib:one");
  det_.on_write(c2, &cell_, sizeof(cell_), "sib:two");
  ASSERT_EQ(det_.races_detected(), 1u);
  det_.clear();
  EXPECT_EQ(det_.races_detected(), 0u);
  EXPECT_EQ(det_.read_escalations(), 0u);
  // The same race must be re-detectable from scratch.
  det_.on_write(c1, &cell_, sizeof(cell_), "sib:one");
  det_.on_write(c2, &cell_, sizeof(cell_), "sib:two");
  EXPECT_EQ(det_.races_detected(), 1u);
}

// ---------- engine-level hooks (compiled in under DFTH_RACE) ----------

RuntimeOptions sim_opts(SchedKind sched) {
  RuntimeOptions o;
  o.engine = EngineKind::Sim;
  o.sched = sched;
  o.nprocs = 4;
  o.default_stack_size = 16 << 10;
  return o;
}

constexpr const char* kLeafSite[4] = {"leaf0", "leaf1", "leaf2", "leaf3"};

/// Index of the cell dedicated to leaf pair (lo, hi), lo < hi < 4.
int pair_cell(int lo, int hi) {
  static constexpr int offset[3] = {0, 3, 5};
  return offset[lo] + (hi - lo - 1);
}

/// Runs the known racy fork tree under `sched`: four sibling leaves, one
/// dedicated df_malloc'd cell per leaf pair, each leaf writing the three
/// cells of its pairs without any lock. Every cell gets exactly two
/// unordered writes, so the race set is exactly the six leaf pairs — on any
/// schedule. Returns the reported set normalized to unordered site pairs.
std::set<std::pair<std::string, std::string>> run_racy_tree(SchedKind sched) {
  RaceDetector& det = RaceDetector::instance();
  det.clear();
  det.set_abort_on_race(false);
  run(sim_opts(sched), [] {
    auto* cells = static_cast<double*>(df_malloc(6 * sizeof(double)));
    for (int i = 0; i < 6; ++i) cells[i] = 0.0;
    Thread kids[4];
    for (int i = 0; i < 4; ++i) {
      kids[i] = spawn([i, cells]() -> void* {
        for (int j = 0; j < 4; ++j) {
          if (j == i) continue;
          const int cell = pair_cell(std::min(i, j), std::max(i, j));
          df_write(&cells[cell], sizeof(double), kLeafSite[i]);
          cells[cell] += 1.0;
        }
        return nullptr;
      });
    }
    for (Thread& k : kids) join(k);
    df_free(cells);
  });
  std::set<std::pair<std::string, std::string>> pairs;
  for (const analyze::RaceReport& r : det.reports()) {
    std::string a = r.prev.site, b = r.cur.site;
    if (b < a) std::swap(a, b);
    pairs.emplace(a, b);
  }
  det.clear();
  det.set_abort_on_race(true);
  return pairs;
}

TEST(RaceDetectorEngine, RacyForkTreeReportsSameSetUnderEveryPolicy) {
  if (!analyze::race_enabled()) {
    GTEST_SKIP() << "race hooks need -DDFTH_RACE=ON";
  }
  std::set<std::pair<std::string, std::string>> expected;
  for (int i = 0; i < 4; ++i) {
    for (int j = i + 1; j < 4; ++j) expected.emplace(kLeafSite[i], kLeafSite[j]);
  }
  ASSERT_EQ(expected.size(), 6u);
  for (SchedKind sched : {SchedKind::Fifo, SchedKind::Lifo, SchedKind::AsyncDf,
                          SchedKind::WorkSteal}) {
    EXPECT_EQ(run_racy_tree(sched), expected)
        << "race set differs under scheduler " << to_string(sched);
  }
}

TEST(RaceDetectorEngine, MutexProtectedProgramCleanOnRealEngine) {
  if (!analyze::race_enabled()) {
    GTEST_SKIP() << "race hooks need -DDFTH_RACE=ON";
  }
  RaceDetector& det = RaceDetector::instance();
  det.clear();
  det.set_abort_on_race(false);
  RuntimeOptions o;
  o.engine = EngineKind::Real;
  o.nprocs = 4;
  run(o, [] {
    auto* cell = static_cast<double*>(df_malloc(sizeof(double)));
    *cell = 0.0;
    static Mutex m;
    std::vector<Thread> threads;
    for (int i = 0; i < 8; ++i) {
      threads.push_back(spawn([cell]() -> void* {
        m.lock();
        df_write(cell, sizeof(double), "counter:bump");
        *cell += 1.0;
        m.unlock();
        return nullptr;
      }));
    }
    for (Thread& t : threads) join(t);
    df_free(cell);
  });
  EXPECT_EQ(det.races_detected(), 0u);
  det.set_abort_on_race(true);
}

TEST(RaceDetectorEngine, SevenAppsSmallConfigsProduceZeroReports) {
  if (!analyze::race_enabled()) {
    GTEST_SKIP() << "race hooks need -DDFTH_RACE=ON";
  }
  RaceDetector& det = RaceDetector::instance();
  det.clear();
  det.set_abort_on_race(false);
  const RuntimeOptions o = sim_opts(SchedKind::AsyncDf);

  {  // matmul (the one app with leaf-kernel df_read/df_write annotations)
    apps::MatmulConfig cfg;
    cfg.n = 64;
    cfg.base = 16;
    std::vector<double> a(cfg.n * cfg.n), b(cfg.n * cfg.n), c(cfg.n * cfg.n);
    apps::matmul_fill(a.data(), cfg.n, 3);
    apps::matmul_fill(b.data(), cfg.n, 4);
    run(o, [&] { apps::matmul_threaded(a.data(), b.data(), c.data(), cfg); });
    EXPECT_EQ(det.races_detected(), 0u) << "matmul";
    run(o, [&] {
      apps::matmul_strassen_threaded(a.data(), b.data(), c.data(), cfg);
    });
    EXPECT_EQ(det.races_detected(), 0u) << "matmul-strassen";
  }
  {  // fft
    const std::size_t n = 1 << 10;
    std::vector<apps::Complex> in(n), out(n);
    apps::fft_fill(in.data(), n, 13);
    apps::FftPlan plan(n);
    run(o, [&] { plan.execute_threaded(in.data(), out.data(), 8); });
    EXPECT_EQ(det.races_detected(), 0u) << "fft";
  }
  {  // spmv
    apps::SpmvConfig cfg;
    cfg.rows = 2000;
    cfg.target_nnz = 10000;
    cfg.iterations = 2;
    cfg.threads_per_iter = 8;
    apps::CsrMatrix m(cfg.rows, cfg.rows);
    spmv_generate(m, cfg);
    std::vector<double> v(cfg.rows, 1.0), w(cfg.rows);
    run(o, [&] { spmv_fine(m, v.data(), w.data(), cfg); });
    EXPECT_EQ(det.races_detected(), 0u) << "spmv";
  }
  {  // dtree
    apps::DtreeConfig cfg;
    cfg.instances = 8000;
    cfg.serial_cutoff = 500;
    cfg.min_leaf = 32;
    const auto data = apps::dtree_generate(cfg);
    run(o, [&] { apps::dtree_build_threaded(data, cfg); });
    EXPECT_EQ(det.races_detected(), 0u) << "dtree";
  }
  {  // volrend
    apps::VolrendConfig cfg;
    cfg.volume_dim = 64;
    cfg.image_dim = 48;
    cfg.frames = 1;
    cfg.tiles_per_thread = 4;
    apps::Volume vol(cfg);
    run(o, [&] { apps::volrend_fine(vol, cfg); });
    EXPECT_EQ(det.races_detected(), 0u) << "volrend";
  }
  {  // barnes
    apps::BarnesConfig cfg;
    cfg.bodies = 1500;
    cfg.timesteps = 1;
    auto bodies = apps::barnes_generate(cfg);
    run(o, [&] { apps::barnes_fine(bodies, cfg); });
    EXPECT_EQ(det.races_detected(), 0u) << "barnes";
  }
  {  // fmm
    apps::FmmConfig cfg;
    cfg.particles = 1200;
    cfg.levels = 3;
    cfg.terms = 12;
    cfg.chunk = 9;
    auto particles = apps::fmm_generate(cfg);
    run(o, [&] { apps::fmm_threaded(particles, cfg); });
    EXPECT_EQ(det.races_detected(), 0u) << "fmm";
  }
  det.clear();
  det.set_abort_on_race(true);
}

void run_racy_pair_aborting() {
  RaceDetector::instance().clear();
  RaceDetector::instance().set_abort_on_race(true);
  run(sim_opts(SchedKind::AsyncDf), [] {
    auto* cell = static_cast<double*>(df_malloc(sizeof(double)));
    *cell = 0.0;
    Thread a = spawn([cell]() -> void* {
      df_write(cell, sizeof(double), "abort:one");
      *cell = 1.0;
      return nullptr;
    });
    Thread b = spawn([cell]() -> void* {
      df_write(cell, sizeof(double), "abort:two");
      *cell = 2.0;
      return nullptr;
    });
    join(a);
    join(b);
    df_free(cell);
  });
}

TEST(RaceDetectorDeathTest, RaceAbortsByDefault) {
  if (!analyze::race_enabled()) {
    GTEST_SKIP() << "race hooks need -DDFTH_RACE=ON";
  }
  ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
  EXPECT_DEATH(run_racy_pair_aborting(), "data race");
}

}  // namespace
}  // namespace dfth
