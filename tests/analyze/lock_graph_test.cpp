// Lockset deadlock-detector tests: the lock-order graph itself (no engine
// needed), the engine-level hooks in runtime/sync.cpp (DFTH_VALIDATE
// builds), and the always-on CondVar held-mutex assertion.
#include <gtest/gtest.h>

#include <vector>

#include "analyze/lock_graph.h"
#include "runtime/api.h"
#include "runtime/sync.h"
#include "threads/tcb.h"

namespace dfth {
namespace {

RuntimeOptions sim_opts() {
  RuntimeOptions o;
  o.engine = EngineKind::Sim;
  o.sched = SchedKind::AsyncDf;
  o.nprocs = 2;
  o.default_stack_size = 16 << 10;
  return o;
}

// ---------- LockGraph unit tests (standalone instance, no engine) ----------

TEST(LockGraph, ConsistentOrderIsClean) {
  analyze::LockGraph g;
  g.set_abort_on_cycle(false);
  Tcb t1(1), t2(2);
  int a = 0, b = 0;
  // Both threads take a before b: one order edge, no cycle.
  g.on_acquire(&t1, &a);
  g.on_acquire(&t1, &b);
  g.on_release(&t1, &b);
  g.on_release(&t1, &a);
  g.on_acquire(&t2, &a);
  g.on_acquire(&t2, &b);
  g.on_release(&t2, &b);
  g.on_release(&t2, &a);
  EXPECT_EQ(g.cycles_detected(), 0u);
  EXPECT_TRUE(t1.held_locks.empty());
  EXPECT_TRUE(t2.held_locks.empty());
}

TEST(LockGraph, AbbaInversionDetected) {
  analyze::LockGraph g;
  g.set_abort_on_cycle(false);
  Tcb t1(1), t2(2);
  int a = 0, b = 0;
  g.on_acquire(&t1, &a);
  g.on_acquire(&t1, &b);  // edge a -> b
  g.on_release(&t1, &b);
  g.on_release(&t1, &a);
  g.on_acquire(&t2, &b);
  g.on_acquire(&t2, &a);  // edge b -> a: closes the cycle
  EXPECT_EQ(g.cycles_detected(), 1u);
}

TEST(LockGraph, EdgesPersistAfterRelease) {
  // The whole point of the lockset algorithm: the inversion is reported even
  // though the two critical sections never overlapped in time.
  analyze::LockGraph g;
  g.set_abort_on_cycle(false);
  Tcb t(1);
  int a = 0, b = 0;
  g.on_acquire(&t, &a);
  g.on_acquire(&t, &b);
  g.on_release(&t, &b);
  g.on_release(&t, &a);
  // Same thread, later, opposite order — still a hazard if these sections
  // can ever run concurrently in other threads.
  g.on_acquire(&t, &b);
  g.on_acquire(&t, &a);
  EXPECT_EQ(g.cycles_detected(), 1u);
}

TEST(LockGraph, ThreeLockCycle) {
  analyze::LockGraph g;
  g.set_abort_on_cycle(false);
  Tcb t1(1), t2(2), t3(3);
  int a = 0, b = 0, c = 0;
  g.on_acquire(&t1, &a);
  g.on_acquire(&t1, &b);  // a -> b
  g.on_acquire(&t2, &b);
  g.on_acquire(&t2, &c);  // b -> c
  g.on_acquire(&t3, &c);
  g.on_acquire(&t3, &a);  // c -> a: cycle through three locks
  EXPECT_EQ(g.cycles_detected(), 1u);
}

TEST(LockGraph, AbbaViaRdlockDetected) {
  // Reader/writer ABBA: under the writer-preferring RwLock a held read lock
  // blocks the next writer, so opposite-order acquisition chains deadlock
  // even when one side is only a read acquisition.
  analyze::LockGraph g;
  g.set_abort_on_cycle(false);
  Tcb t1(1), t2(2);
  int rw = 0, m = 0;
  g.on_acquire_shared(&t1, &rw);
  g.on_acquire(&t1, &m);  // edge rw -> m
  g.on_release(&t1, &m);
  g.on_release(&t1, &rw);
  g.on_acquire(&t2, &m);
  g.on_acquire_shared(&t2, &rw);  // edge m -> rw: closes the cycle
  EXPECT_EQ(g.cycles_detected(), 1u);
}

TEST(LockGraph, SharedAcquireTracksHeldSet) {
  analyze::LockGraph g;
  g.set_abort_on_cycle(false);
  Tcb t(1);
  int rw = 0;
  g.on_acquire_shared(&t, &rw);
  EXPECT_EQ(t.held_locks.size(), 1u);
  g.on_release(&t, &rw);
  EXPECT_TRUE(t.held_locks.empty());
}

TEST(LockGraph, ClearResets) {
  analyze::LockGraph g;
  g.set_abort_on_cycle(false);
  Tcb t1(1), t2(2);
  int a = 0, b = 0;
  g.on_acquire(&t1, &a);
  g.on_acquire(&t1, &b);
  g.on_release(&t1, &b);
  g.on_release(&t1, &a);
  g.on_acquire(&t2, &b);
  g.on_acquire(&t2, &a);
  ASSERT_EQ(g.cycles_detected(), 1u);
  g.on_release(&t2, &a);
  g.on_release(&t2, &b);
  g.clear();
  EXPECT_EQ(g.cycles_detected(), 0u);
  // The same inversion must be re-detectable from scratch.
  g.on_acquire(&t1, &a);
  g.on_acquire(&t1, &b);
  g.on_release(&t1, &b);
  g.on_release(&t1, &a);
  g.on_acquire(&t2, &b);
  g.on_acquire(&t2, &a);
  EXPECT_EQ(g.cycles_detected(), 1u);
}

// ---------- engine-level hooks (compiled in under DFTH_VALIDATE) ----------

void run_abba_program() {
  run(sim_opts(), [] {
    static Mutex a, b;
    Thread first = spawn([]() -> void* {
      a.lock();
      b.lock();
      b.unlock();
      a.unlock();
      return nullptr;
    });
    join(first);
    Thread second = spawn([]() -> void* {
      b.lock();
      a.lock();
      a.unlock();
      b.unlock();
      return nullptr;
    });
    join(second);
  });
}

TEST(LockGraphEngine, AbbaThroughMutexHooksFires) {
  if (!analyze::validate_enabled()) {
    GTEST_SKIP() << "lockset hooks need -DDFTH_VALIDATE=ON";
  }
  analyze::LockGraph& g = analyze::LockGraph::instance();
  g.clear();
  g.set_abort_on_cycle(false);
  run_abba_program();
  EXPECT_GE(g.cycles_detected(), 1u);
  g.clear();
  g.set_abort_on_cycle(true);
}

TEST(LockGraphEngine, RwLockWriteModeParticipates) {
  if (!analyze::validate_enabled()) {
    GTEST_SKIP() << "lockset hooks need -DDFTH_VALIDATE=ON";
  }
  analyze::LockGraph& g = analyze::LockGraph::instance();
  g.clear();
  g.set_abort_on_cycle(false);
  run(sim_opts(), [] {
    static Mutex m;
    static RwLock rw;
    Thread first = spawn([]() -> void* {
      m.lock();
      rw.wrlock();
      rw.wrunlock();
      m.unlock();
      return nullptr;
    });
    join(first);
    Thread second = spawn([]() -> void* {
      rw.wrlock();
      m.lock();
      m.unlock();
      rw.wrunlock();
      return nullptr;
    });
    join(second);
  });
  // (m and rw have static storage so the captureless fiber lambdas above can
  // legally name them.)
  EXPECT_GE(g.cycles_detected(), 1u);
  g.clear();
  g.set_abort_on_cycle(true);
}

TEST(LockGraphEngine, RwLockReadModeParticipates) {
  if (!analyze::validate_enabled()) {
    GTEST_SKIP() << "lockset hooks need -DDFTH_VALIDATE=ON";
  }
  analyze::LockGraph& g = analyze::LockGraph::instance();
  g.clear();
  g.set_abort_on_cycle(false);
  run(sim_opts(), [] {
    static Mutex m;
    static RwLock rw;
    Thread first = spawn([]() -> void* {
      rw.rdlock();
      m.lock();
      m.unlock();
      rw.rdunlock();
      return nullptr;
    });
    join(first);
    Thread second = spawn([]() -> void* {
      m.lock();
      rw.rdlock();
      rw.rdunlock();
      m.unlock();
      return nullptr;
    });
    join(second);
  });
  EXPECT_GE(g.cycles_detected(), 1u);
  g.clear();
  g.set_abort_on_cycle(true);
}

TEST(LockGraphEngine, CleanProgramStaysClean) {
  if (!analyze::validate_enabled()) {
    GTEST_SKIP() << "lockset hooks need -DDFTH_VALIDATE=ON";
  }
  analyze::LockGraph& g = analyze::LockGraph::instance();
  g.clear();
  run(sim_opts(), [] {
    static Mutex a, b;
    static int counter = 0;
    std::vector<Thread> threads;
    for (int i = 0; i < 8; ++i) {
      threads.push_back(spawn([]() -> void* {
        a.lock();
        b.lock();
        ++counter;
        b.unlock();
        a.unlock();
        return nullptr;
      }));
    }
    for (Thread& t : threads) join(t);
  });
  EXPECT_EQ(g.cycles_detected(), 0u);
}

TEST(LockGraphDeathTest, AbbaAbortsByDefault) {
  if (!analyze::validate_enabled()) {
    GTEST_SKIP() << "lockset hooks need -DDFTH_VALIDATE=ON";
  }
  ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
  EXPECT_DEATH(run_abba_program(), "potential deadlock");
}

// ---------- always-on CondVar held-mutex assertion ----------

TEST(CondVarDeathTest, WaitWithoutHoldingMutexAborts) {
  ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
  EXPECT_DEATH(run(sim_opts(),
                   [] {
                     Mutex m;
                     CondVar cv;
                     cv.wait(m);  // caller never locked m
                   }),
               "does not hold the mutex");
}

}  // namespace
}  // namespace dfth
