// Scheduler-invariant auditor tests: the AuditedScheduler decorator driven
// directly at the Tcb level (clean runs stay silent, a deliberately broken
// scheduler is caught), plus whole-engine property runs under DFTH_VALIDATE
// where make_scheduler installs the decorator automatically.
#include <gtest/gtest.h>

#include <limits>
#include <memory>
#include <vector>

#include "analyze/auditor.h"
#include "analyze/lock_graph.h"
#include "core/asyncdf_sched.h"
#include "core/fifo_sched.h"
#include "runtime/api.h"
#include "util/rng.h"

namespace dfth {
namespace {

constexpr std::uint64_t kInf = std::numeric_limits<std::uint64_t>::max();

/// Tcb factory + the engine's calling contract, as in sched_policy_test.
struct Harness {
  std::vector<std::unique_ptr<Tcb>> tcbs;
  std::uint64_t next_id = 1;

  Tcb* make(int priority = 0) {
    tcbs.push_back(std::make_unique<Tcb>(next_id++));
    tcbs.back()->attr.priority = priority;
    return tcbs.back().get();
  }

  bool spawn(Scheduler& s, Tcb* parent, Tcb* child, int proc = 0) {
    child->parent = parent;
    const bool preempt = s.register_thread(parent, child);
    if (preempt) {
      if (parent) {
        parent->state.store(ThreadState::Ready, std::memory_order_relaxed);
        s.on_ready(parent, proc);
      }
      child->state.store(ThreadState::Running, std::memory_order_relaxed);
    } else {
      child->state.store(ThreadState::Ready, std::memory_order_relaxed);
      s.on_ready(child, proc);
    }
    return preempt;
  }

  Tcb* pick(Scheduler& s, int proc = 0, std::uint64_t now = kInf) {
    std::uint64_t earliest = kInf;
    Tcb* t = s.pick_next(proc, now, &earliest);
    if (t) t->state.store(ThreadState::Running, std::memory_order_relaxed);
    return t;
  }

  void exit_thread(Scheduler& s, Tcb* t) {
    t->state.store(ThreadState::Done, std::memory_order_relaxed);
    s.unregister_thread(t);
  }
};

// ---------- decorator unit tests (independent of DFTH_VALIDATE) ----------

TEST(InvariantAuditor, CleanAsyncDfRunIsSilent) {
  analyze::AuditedScheduler s(std::make_unique<AsyncDfScheduler>());
  s.auditor().set_abort_on_violation(false);
  Harness h;
  Tcb* root = h.make();
  EXPECT_TRUE(h.spawn(s, nullptr, root));  // root runs
  Tcb* a = h.make();
  Tcb* b = h.make();
  EXPECT_TRUE(h.spawn(s, root, a));  // root preempted (Ready), a runs
  EXPECT_TRUE(h.spawn(s, a, b));     // a preempted (Ready), b runs
  h.exit_thread(s, b);
  // Serial order was b, a, root; the remaining ready set drains left to
  // right.
  EXPECT_EQ(h.pick(s), a);
  h.exit_thread(s, a);
  EXPECT_EQ(h.pick(s), root);
  h.exit_thread(s, root);
  EXPECT_EQ(h.pick(s), nullptr);
  EXPECT_EQ(s.auditor().violations(), 0u);
  EXPECT_GT(s.auditor().steps(), 0u);
}

TEST(InvariantAuditor, ForwardsSchedulerSurface) {
  analyze::AuditedScheduler s(std::make_unique<AsyncDfScheduler>());
  EXPECT_EQ(s.kind(), SchedKind::AsyncDf);
  EXPECT_TRUE(s.needs_quota());
  EXPECT_EQ(s.lock_domain(3), 0);
  EXPECT_NE(s.underlying(), &s);  // unwraps to the real policy
  EXPECT_NE(dynamic_cast<AsyncDfScheduler*>(s.underlying()), nullptr);
}

TEST(InvariantAuditor, DoubleRegistrationCaught) {
  // A FIFO inner keeps the duplicate registration from corrupting AsyncDF's
  // order list before the auditor can object.
  analyze::AuditedScheduler s(std::make_unique<FifoScheduler>());
  s.auditor().set_abort_on_violation(false);
  Harness h;
  Tcb* root = h.make();
  h.spawn(s, nullptr, root);
  ASSERT_EQ(s.auditor().violations(), 0u);
  s.register_thread(nullptr, root);  // engine bug: registered twice
  EXPECT_GE(s.auditor().violations(), 1u);
}

TEST(InvariantAuditor, OnReadyForNonReadyThreadCaught) {
  analyze::AuditedScheduler s(std::make_unique<AsyncDfScheduler>());
  s.auditor().set_abort_on_violation(false);
  Harness h;
  Tcb* root = h.make();
  h.spawn(s, nullptr, root);
  // Engine bug: announcing readiness while the thread is still Running.
  s.on_ready(root, 0);
  EXPECT_GE(s.auditor().violations(), 1u);
}

// A scheduler with a deliberately wrong dispatch rule: it returns the
// *rightmost* ready thread, violating the paper's leftmost-dispatch
// invariant. The auditor must flag every such pick.
class RightmostAsyncDf : public AsyncDfScheduler {
 public:
  Tcb* pick_next(int proc, std::uint64_t now, std::uint64_t* earliest) override {
    Tcb* leftmost = AsyncDfScheduler::pick_next(proc, now, earliest);
    if (!leftmost) return nullptr;
    const OrderList& list = order_list(leftmost->attr.priority);
    Tcb* last_eligible = leftmost;
    for (const OrderNode* node = list.front();
         node != nullptr && node != list.end_sentinel(); node = node->next) {
      auto* t = static_cast<Tcb*>(node->owner);
      if (t->state.load(std::memory_order_relaxed) != ThreadState::Ready &&
          t != leftmost) {
        continue;
      }
      if (t->ready_at_ns <= now) last_eligible = t;
    }
    return last_eligible;
  }
};

TEST(InvariantAuditor, NonLeftmostPickCaught) {
  analyze::AuditedScheduler s(std::make_unique<RightmostAsyncDf>());
  s.auditor().set_abort_on_violation(false);
  Harness h;
  Tcb* root = h.make();
  root->state.store(ThreadState::Running, std::memory_order_relaxed);
  h.spawn(s, nullptr, root);
  Tcb* child = h.make();
  h.spawn(s, root, child);  // serial order: child, root — both now Ready
  child->state.store(ThreadState::Ready, std::memory_order_relaxed);
  s.on_ready(child, 0);
  ASSERT_EQ(s.auditor().violations(), 0u);
  // The broken policy returns root (rightmost); the auditor must object.
  EXPECT_EQ(h.pick(s), root);
  EXPECT_GE(s.auditor().violations(), 1u);
}

TEST(InvariantAuditor, QuotaOverrunCaught) {
  analyze::AuditedScheduler s(std::make_unique<AsyncDfScheduler>());
  s.auditor().set_abort_on_violation(false);
  Harness h;
  Tcb* root = h.make();
  root->state.store(ThreadState::Running, std::memory_order_relaxed);
  h.spawn(s, nullptr, root);
  const std::size_t quota = 4096;
  // Within quota: silent.
  s.auditor().on_alloc(root, 1000, quota);
  s.auditor().on_alloc(root, 3000, quota);
  EXPECT_EQ(s.auditor().violations(), 0u);
  // 4000 bytes allocated, next small alloc is still legal (quota not yet
  // exceeded before it)...
  s.auditor().on_alloc(root, 1000, quota);
  EXPECT_EQ(s.auditor().violations(), 0u);
  // ...but now 5000 > K are on the books: an engine that fails to preempt
  // before the next allocation is caught.
  s.auditor().on_alloc(root, 8, quota);
  EXPECT_GE(s.auditor().violations(), 1u);
}

TEST(InvariantAuditor, OversizedAllocNeedsDummyCredit) {
  analyze::AuditedScheduler s(std::make_unique<AsyncDfScheduler>());
  s.auditor().set_abort_on_violation(false);
  Harness h;
  Tcb* root = h.make();
  h.spawn(s, nullptr, root);
  const std::size_t quota = 4096;
  // m > K with no dummy threads forked first: violation.
  s.auditor().on_alloc(root, 3 * quota, quota);
  EXPECT_EQ(s.auditor().violations(), 1u);
  // The engine quota-preempts root after the oversized allocation and later
  // re-dispatches it, which grants a fresh quota.
  root->state.store(ThreadState::Ready, std::memory_order_relaxed);
  s.on_ready(root, 0);
  ASSERT_EQ(h.pick(s), root);
  // Fork the δ = 3 dummies (binary tree: each registration credits root).
  Tcb* d1 = h.make();
  d1->is_dummy = true;
  h.spawn(s, root, d1);
  Tcb* d2 = h.make();
  d2->is_dummy = true;
  h.spawn(s, d1, d2);  // nested dummy still credits the non-dummy ancestor
  Tcb* d3 = h.make();
  d3->is_dummy = true;
  h.spawn(s, d1, d3);
  s.auditor().on_alloc(root, 3 * quota, quota);
  EXPECT_EQ(s.auditor().violations(), 1u);  // no new violation
}

// ---------- whole-engine property runs (DFTH_VALIDATE builds) ----------

RuntimeOptions sim_opts(SchedKind sched, int nprocs, std::size_t quota) {
  RuntimeOptions o;
  o.engine = EngineKind::Sim;
  o.sched = sched;
  o.nprocs = nprocs;
  o.default_stack_size = 8 << 10;
  o.mem_quota = quota;
  return o;
}

/// Adversarial fork tree: skewed fan-out, allocations straddling the quota
/// (forcing dummy-thread trees), blocking joins at every level.
struct AdversarialProgram {
  std::uint64_t seed;
  int max_depth;
  std::size_t quota;

  long long run_node(Rng rng, int depth) const {
    long long sum = static_cast<long long>(rng.next_below(100));
    annotate_work(20 + rng.next_below(200));
    void* held = nullptr;
    if (rng.next_bool(0.7)) {
      // Half the draws exceed the quota, exercising the δ dummy-thread path.
      held = df_malloc(quota / 2 + rng.next_below(quota * 3));
    }
    if (depth < max_depth) {
      const int kids = 1 + static_cast<int>(rng.next_below(4));
      std::vector<Thread> threads;
      for (int k = 0; k < kids; ++k) {
        Rng child_rng = rng.fork_stream(static_cast<std::uint64_t>(k) + 1);
        threads.push_back(spawn([this, child_rng, depth]() -> void* {
          run_node(child_rng, depth + 1);
          return nullptr;
        }));
      }
      for (Thread& t : threads) join(t);
    }
    df_free(held);
    return sum;
  }

  void operator()() const { run_node(Rng(seed), 0); }
};

class AuditedEngineTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AuditedEngineTest, AsyncDfSimRunSatisfiesAllInvariants) {
  if (!analyze::validate_enabled()) {
    GTEST_SKIP() << "auditor is installed by make_scheduler only under "
                    "-DDFTH_VALIDATE=ON";
  }
  const std::size_t quota = 8 << 10;
  AdversarialProgram prog{GetParam(), 5, quota};
  std::uint64_t steps = 0;
  // Violations abort the process by default, so completing the run at all
  // certifies every audited step; steps proves the auditor was live.
  run(sim_opts(SchedKind::AsyncDf, 4, quota), [&] {
    prog();
    analyze::InvariantAuditor* aud = analyze::active_auditor();
    ASSERT_NE(aud, nullptr);
    EXPECT_EQ(aud->violations(), 0u);
    steps = aud->steps();
  });
  EXPECT_GT(steps, 0u);
}

TEST_P(AuditedEngineTest, OtherPoliciesPassTheGenericChecks) {
  if (!analyze::validate_enabled()) {
    GTEST_SKIP() << "auditor is installed by make_scheduler only under "
                    "-DDFTH_VALIDATE=ON";
  }
  const std::size_t quota = 8 << 10;
  AdversarialProgram prog{GetParam(), 4, quota};
  for (SchedKind sched : {SchedKind::Fifo, SchedKind::Lifo, SchedKind::WorkSteal}) {
    run(sim_opts(sched, 4, quota), [&] {
      prog();
      analyze::InvariantAuditor* aud = analyze::active_auditor();
      ASSERT_NE(aud, nullptr);
      EXPECT_EQ(aud->violations(), 0u) << to_string(sched);
    });
  }
}

TEST_P(AuditedEngineTest, RealEngineRunSatisfiesAllInvariants) {
  if (!analyze::validate_enabled()) {
    GTEST_SKIP() << "auditor is installed by make_scheduler only under "
                    "-DDFTH_VALIDATE=ON";
  }
  const std::size_t quota = 8 << 10;
  AdversarialProgram prog{GetParam(), 4, quota};
  RuntimeOptions o;
  o.engine = EngineKind::Real;
  o.sched = SchedKind::AsyncDf;
  o.nprocs = 4;
  o.mem_quota = quota;
  std::uint64_t steps = 0;
  run(o, [&] {
    prog();
    analyze::InvariantAuditor* aud = analyze::active_auditor();
    ASSERT_NE(aud, nullptr);
    steps = aud->steps();
  });
  EXPECT_GT(steps, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, AuditedEngineTest, ::testing::Values(7, 19, 42));

}  // namespace
}  // namespace dfth
