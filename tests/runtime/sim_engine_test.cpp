// Simulation-engine semantics: determinism, causality, the paper's Figure 1
// active-thread counts, Brent's bound, quota preemption and dummy-thread
// insertion, and the AsyncDF space bound on synthetic programs.
#include "runtime/sim_engine.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "runtime/api.h"
#include "runtime/sync.h"

namespace dfth {
namespace {

RuntimeOptions sim_opts(SchedKind sched, int nprocs) {
  RuntimeOptions o;
  o.engine = EngineKind::Sim;
  o.sched = sched;
  o.nprocs = nprocs;
  o.default_stack_size = 8 << 10;
  return o;
}

// The computation of the paper's Figure 1: a depth-3 binary fork/join tree
// (7 threads total), each node doing a bit of work.
void figure1_tree(int depth) {
  annotate_work(50);
  if (depth <= 1) return;
  auto left = spawn([depth]() -> void* {
    figure1_tree(depth - 1);
    return nullptr;
  });
  auto right = spawn([depth]() -> void* {
    figure1_tree(depth - 1);
    return nullptr;
  });
  join(left);
  join(right);
  annotate_work(50);
}

// "A serial execution of the graph in Figure 1 using a FIFO queue would
// result in all 7 threads being simultaneously active, while a LIFO stack
// would result in at most 3 active threads."
TEST(SimFigure1, FifoKeepsAllSevenThreadsActive) {
  RunStats stats = run(sim_opts(SchedKind::Fifo, 1), [] { figure1_tree(3); });
  // Our root is the main thread, so "7 threads" == main + 6 descendants.
  EXPECT_EQ(stats.threads_created, 7u);
  EXPECT_EQ(stats.max_live_threads, 7);
}

TEST(SimFigure1, LifoKeepsAtMostDepthPlusSiblings) {
  RunStats stats = run(sim_opts(SchedKind::Lifo, 1), [] { figure1_tree(3); });
  EXPECT_EQ(stats.threads_created, 7u);
  // LIFO serial execution: parent forks both children before diving into the
  // most recent one — at most one extra sibling per level stays live.
  EXPECT_LE(stats.max_live_threads, 5);
  EXPECT_LT(stats.max_live_threads, 7);
}

TEST(SimFigure1, AsyncDfKeepsOnlyDepth) {
  RunStats stats = run(sim_opts(SchedKind::AsyncDf, 1), [] { figure1_tree(3); });
  // Depth-first with child-preemption: live = the fork chain = d = 3.
  EXPECT_EQ(stats.max_live_threads, 3);
}

TEST(SimEngine, DeterministicAcrossRuns) {
  auto once = [] {
    return run(sim_opts(SchedKind::AsyncDf, 8), [] {
      std::vector<Thread> threads;
      for (int i = 0; i < 50; ++i) {
        threads.push_back(spawn([i]() -> void* {
          annotate_work(static_cast<std::uint64_t>(100 + 37 * i));
          void* p = df_malloc(1024 * static_cast<std::size_t>(i + 1));
          annotate_work(200);
          df_free(p);
          return nullptr;
        }));
      }
      for (auto& t : threads) join(t);
    });
  };
  const RunStats a = once();
  const RunStats b = once();
  EXPECT_DOUBLE_EQ(a.elapsed_us, b.elapsed_us);
  EXPECT_EQ(a.max_live_threads, b.max_live_threads);
  EXPECT_EQ(a.dispatches, b.dispatches);
  EXPECT_EQ(a.heap_peak, b.heap_peak);
  EXPECT_DOUBLE_EQ(a.breakdown.idle_us, b.breakdown.idle_us);
}

TEST(SimEngine, WorkStealingDeterministicWithSeed) {
  auto once = [](std::uint64_t seed) {
    RuntimeOptions o = sim_opts(SchedKind::WorkSteal, 8);
    o.seed = seed;
    return run(o, [] { figure1_tree(6); });
  };
  const RunStats a = once(7);
  const RunStats b = once(7);
  EXPECT_DOUBLE_EQ(a.elapsed_us, b.elapsed_us);
  EXPECT_EQ(a.steals, b.steals);
}

// Brent's bound for greedy schedulers: T1/p <= Tp and Tp <= T1/p + T_inf
// (with our per-op overheads added). We verify the weaker sanity forms:
// speedup never exceeds p, and more processors never slow the run by more
// than the scheduling-overhead epsilon.
class BrentTest : public ::testing::TestWithParam<SchedKind> {};

TEST_P(BrentTest, SpeedupBoundedByP) {
  auto work = [] {
    // Irregular tree: left-heavy work with varying grain.
    struct Rec {
      static void go(int depth, std::uint64_t grain) {
        annotate_work(grain);
        if (depth == 0) return;
        auto left = spawn([depth, grain]() -> void* {
          go(depth - 1, grain * 2);
          return nullptr;
        });
        go(depth - 1, grain);
        join(left);
      }
    };
    Rec::go(7, 400);
  };
  const double t1 = run(sim_opts(GetParam(), 1), work).elapsed_us;
  double prev = t1;
  for (int p : {2, 4, 8, 16}) {
    const double tp = run(sim_opts(GetParam(), p), work).elapsed_us;
    EXPECT_GE(tp * p, t1 * 0.999) << "superlinear speedup at p=" << p;
    // Not grossly slower than fewer processors (allow overhead slack).
    EXPECT_LE(tp, prev * 1.25) << "added processors slowed the run, p=" << p;
    prev = tp;
  }
}

INSTANTIATE_TEST_SUITE_P(AllScheds, BrentTest,
                         ::testing::Values(SchedKind::Fifo, SchedKind::Lifo,
                                           SchedKind::AsyncDf, SchedKind::WorkSteal),
                         [](const ::testing::TestParamInfo<SchedKind>& info) {
                           return std::string(to_string(info.param));
                         });

TEST(SimEngine, QuotaExhaustionPreempts) {
  RuntimeOptions o = sim_opts(SchedKind::AsyncDf, 1);
  o.mem_quota = 4 << 10;
  RunStats stats = run(o, [] {
    // 16 allocations of 1 KB each: the 4 KB quota forces repeated preemption.
    for (int i = 0; i < 16; ++i) {
      void* p = df_malloc(1 << 10);
      df_free(p);
    }
  });
  EXPECT_GE(stats.quota_preemptions, 3u);
}

TEST(SimEngine, LargeAllocationForksDummyThreads) {
  RuntimeOptions o = sim_opts(SchedKind::AsyncDf, 2);
  o.mem_quota = 8 << 10;
  RunStats stats = run(o, [] {
    void* p = df_malloc(64 << 10);  // m = 8K: delta = ceil(64K/8K) = 8 dummies
    df_free(p);
  });
  EXPECT_EQ(stats.dummy_threads, 8u);
}

TEST(SimEngine, NoDummiesUnderFifo) {
  RuntimeOptions o = sim_opts(SchedKind::Fifo, 2);
  o.mem_quota = 8 << 10;
  RunStats stats = run(o, [] {
    void* p = df_malloc(64 << 10);
    df_free(p);
  });
  EXPECT_EQ(stats.dummy_threads, 0u);
  EXPECT_EQ(stats.quota_preemptions, 0u);
}

// AsyncDF space bound: live threads <= serial depth + O(p) on a fork chain.
TEST(SimEngine, AsyncDfLiveThreadsScaleWithDepthNotBreadth) {
  auto tree = [] { figure1_tree(8); };  // 2^8-1 = 255 threads, depth 8
  const RunStats s1 = run(sim_opts(SchedKind::AsyncDf, 1), tree);
  EXPECT_LE(s1.max_live_threads, 8 + 2);
  const RunStats s8 = run(sim_opts(SchedKind::AsyncDf, 8), tree);
  // With p processors the bound gains an O(p * D) term; generous constant.
  EXPECT_LE(s8.max_live_threads, 8 + 8 * 8);
  // FIFO for contrast explodes to the full breadth.
  const RunStats f1 = run(sim_opts(SchedKind::Fifo, 1), tree);
  EXPECT_GE(f1.max_live_threads, 200);
}

TEST(SimEngine, BreakdownSumsToProcessorTime) {
  RunStats stats = run(sim_opts(SchedKind::AsyncDf, 4), [] { figure1_tree(5); });
  const double total = stats.breakdown.total_us();
  EXPECT_NEAR(total, 4 * stats.elapsed_us, 4 * stats.elapsed_us * 1e-6 + 0.01);
}

TEST(SimEngine, ElapsedGrowsWithAnnotatedWork) {
  auto timed = [](std::uint64_t ops) {
    return run(sim_opts(SchedKind::AsyncDf, 1), [ops] { annotate_work(ops); })
        .elapsed_us;
  };
  const double small = timed(1000);
  const double large = timed(101000);
  // 100k extra ops at 100 ops/us = +1000 us.
  EXPECT_NEAR(large - small, 1000.0, 1.0);
}

TEST(SimEngine, PressureSlowsWorkWhenHeapLarge) {
  auto timed = [](std::size_t alloc_bytes) {
    return run(sim_opts(SchedKind::Fifo, 1),
               [alloc_bytes] {
                 void* p = df_malloc(alloc_bytes);
                 annotate_work(1'000'000);
                 df_free(p);
               })
        .elapsed_us;
  };
  const double small_heap = timed(1 << 10);
  const double big_heap = timed(200 << 20);
  EXPECT_GT(big_heap, small_heap * 1.5);
}

TEST(SimEngine, PrioritiesGovernDispatchOrder) {
  // FIFO scheduler (which never preempts on spawn), one processor: main
  // enqueues a batch of mixed-priority threads, then blocks. The dispatcher
  // must drain strictly by priority level, FIFO within a level — the
  // POSIX-style discipline the paper's policy is designed to coexist with.
  std::vector<int> order;
  RuntimeOptions o = sim_opts(SchedKind::Fifo, 1);
  run(o, [&] {
    std::vector<Thread> threads;
    int tag = 0;
    for (int prio : {1, 5, 3, 7, 5, 1, 7}) {
      Attr attr;
      attr.priority = prio;
      const int id = tag++;
      threads.push_back(spawn(
          [&order, prio, id]() -> void* {
            order.push_back(prio * 100 + id);
            return nullptr;
          },
          attr));
    }
    for (auto& t : threads) join(t);
  });
  // Expected: both 7s (spawn order 3 then 6), both 5s (1 then 4), the 3,
  // then both 1s (0 then 5).
  const std::vector<int> expect = {703, 706, 501, 504, 302, 100, 105};
  EXPECT_EQ(order, expect);
}

TEST(SimEngine, MutexHandoffIsFifoAcrossPriorities) {
  // Mutex wakeups are FIFO handoffs (fairness), deliberately independent of
  // scheduler priority — document that with a test.
  std::vector<int> order;
  RuntimeOptions o = sim_opts(SchedKind::AsyncDf, 1);
  run(o, [&] {
    Mutex mu;
    mu.lock();
    std::vector<Thread> threads;
    for (int prio : {1, 7, 3}) {
      Attr attr;
      attr.priority = prio;
      threads.push_back(spawn(
          [&order, &mu, prio]() -> void* {
            LockGuard lock(mu);
            order.push_back(prio);
            return nullptr;
          },
          attr));
    }
    mu.unlock();
    for (auto& t : threads) join(t);
  });
  EXPECT_EQ(order, (std::vector<int>{1, 7, 3}));  // arrival order, not priority
}

TEST(SimEngineDeath, DeadlockIsReported) {
  ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
  EXPECT_DEATH(
      {
        run(sim_opts(SchedKind::AsyncDf, 2), [] {
          Mutex mu;
          mu.lock();
          mu.lock();  // self-deadlock is caught as "recursive"; use two threads
        });
      },
      "");
}

TEST(SimEngineDeath, CrossThreadDeadlockIsReported) {
  ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
  EXPECT_DEATH(
      {
        run(sim_opts(SchedKind::Fifo, 2), [] {
          Mutex a, b;
          Semaphore both_locked(0);
          auto t = spawn([&]() -> void* {
            b.lock();
            both_locked.release();
            a.lock();  // waits forever
            return nullptr;
          });
          a.lock();
          both_locked.acquire();
          b.lock();  // classic AB-BA deadlock
          join(t);
        });
      },
      "[Dd]eadlock|DEADLOCK");
}

}  // namespace
}  // namespace dfth
