// End-to-end smoke tests: the API surface on both engines and all four
// schedulers, with small fork trees.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>

#include "runtime/api.h"
#include "runtime/sync.h"

namespace dfth {
namespace {

struct Config {
  EngineKind engine;
  SchedKind sched;
};

class SmokeTest : public ::testing::TestWithParam<Config> {
 protected:
  RuntimeOptions opts() const {
    RuntimeOptions o;
    o.engine = GetParam().engine;
    o.sched = GetParam().sched;
    o.nprocs = 4;
    o.default_stack_size = 8 << 10;
    return o;
  }
};

std::string config_name(const ::testing::TestParamInfo<Config>& info) {
  return std::string(to_string(info.param.engine)) + "_" +
         to_string(info.param.sched);
}

TEST_P(SmokeTest, SpawnJoinReturnsResult) {
  RunStats stats = run(opts(), [] {
    auto t = spawn([]() -> void* { return reinterpret_cast<void*>(0x42); });
    EXPECT_EQ(join(t), reinterpret_cast<void*>(0x42));
  });
  EXPECT_EQ(stats.threads_created, 2u);
}

TEST_P(SmokeTest, ParallelSumOfForkTree) {
  // Recursive fork tree computing sum 1..n; exercises nested spawn/join.
  std::atomic<std::int64_t> result{0};
  run(opts(), [&] {
    struct Summer {
      static std::int64_t sum(std::int64_t lo, std::int64_t hi) {
        if (hi - lo < 8) {
          std::int64_t s = 0;
          for (std::int64_t i = lo; i < hi; ++i) s += i;
          annotate_work(static_cast<std::uint64_t>(hi - lo));
          return s;
        }
        const std::int64_t mid = lo + (hi - lo) / 2;
        auto left = spawn([lo, mid]() -> void* {
          return reinterpret_cast<void*>(sum(lo, mid));
        });
        const std::int64_t right = sum(mid, hi);
        const auto leftv = reinterpret_cast<std::int64_t>(join(left));
        return leftv + right;
      }
    };
    result = Summer::sum(1, 1001);
  });
  EXPECT_EQ(result.load(), 500500);
}

TEST_P(SmokeTest, ManyThreads) {
  std::atomic<int> count{0};
  RunStats stats = run(opts(), [&] {
    std::vector<Thread> threads;
    threads.reserve(500);
    for (int i = 0; i < 500; ++i) {
      threads.push_back(spawn([&count]() -> void* {
        count.fetch_add(1, std::memory_order_relaxed);
        annotate_work(100);
        return nullptr;
      }));
    }
    for (auto& t : threads) join(t);
  });
  EXPECT_EQ(count.load(), 500);
  EXPECT_EQ(stats.threads_created, 501u);
  EXPECT_GE(stats.max_live_threads, 1);
}

TEST_P(SmokeTest, DetachedThreadsComplete) {
  std::atomic<int> count{0};
  run(opts(), [&] {
    for (int i = 0; i < 32; ++i) {
      Attr attr;
      attr.detached = true;
      spawn(
          [&count]() -> void* {
            count.fetch_add(1, std::memory_order_relaxed);
            return nullptr;
          },
          attr);
    }
    // run() only returns when every thread, detached included, has exited.
  });
  EXPECT_EQ(count.load(), 32);
}

TEST_P(SmokeTest, DfMallocTracksAndFrees) {
  RunStats stats = run(opts(), [] {
    void* p = df_malloc(1 << 20);
    ASSERT_NE(p, nullptr);
    df_free(p);
  });
  EXPECT_GE(stats.heap_peak, 1 << 20);
}

TEST_P(SmokeTest, YieldIsHarmless) {
  run(opts(), [] {
    auto t = spawn([]() -> void* {
      for (int i = 0; i < 10; ++i) yield();
      return nullptr;
    });
    for (int i = 0; i < 10; ++i) yield();
    join(t);
  });
}

INSTANTIATE_TEST_SUITE_P(
    AllEnginesAllSchedulers, SmokeTest,
    ::testing::Values(Config{EngineKind::Sim, SchedKind::Fifo},
                      Config{EngineKind::Sim, SchedKind::Lifo},
                      Config{EngineKind::Sim, SchedKind::AsyncDf},
                      Config{EngineKind::Sim, SchedKind::WorkSteal},
                      Config{EngineKind::Sim, SchedKind::ClusteredAdf},
                      Config{EngineKind::Sim, SchedKind::DfDeques},
                      Config{EngineKind::Real, SchedKind::Fifo},
                      Config{EngineKind::Real, SchedKind::Lifo},
                      Config{EngineKind::Real, SchedKind::AsyncDf},
                      Config{EngineKind::Real, SchedKind::WorkSteal},
                      Config{EngineKind::Real, SchedKind::ClusteredAdf},
                      Config{EngineKind::Real, SchedKind::DfDeques}),
    config_name);

}  // namespace
}  // namespace dfth
