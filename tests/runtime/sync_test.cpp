// Synchronization primitives under both engines, including real-engine
// stress with oversubscribed workers.
#include "runtime/sync.h"

#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "runtime/api.h"

namespace dfth {
namespace {

class SyncTest : public ::testing::TestWithParam<EngineKind> {
 protected:
  RuntimeOptions opts(SchedKind sched = SchedKind::AsyncDf, int nprocs = 4) const {
    RuntimeOptions o;
    o.engine = GetParam();
    o.sched = sched;
    o.nprocs = nprocs;
    o.default_stack_size = 8 << 10;
    return o;
  }
};

std::string engine_name(const ::testing::TestParamInfo<EngineKind>& info) {
  return to_string(info.param);
}

TEST_P(SyncTest, MutexProtectsCounter) {
  long long counter = 0;
  run(opts(), [&] {
    Mutex mu;
    std::vector<Thread> threads;
    for (int i = 0; i < 64; ++i) {
      threads.push_back(spawn([&]() -> void* {
        for (int j = 0; j < 100; ++j) {
          LockGuard lock(mu);
          ++counter;  // unsynchronized increment would race on RealEngine
        }
        return nullptr;
      }));
    }
    for (auto& t : threads) join(t);
  });
  EXPECT_EQ(counter, 64 * 100);
}

TEST_P(SyncTest, MutexTryLock) {
  run(opts(), [] {
    Mutex mu;
    EXPECT_TRUE(mu.try_lock());
    auto t = spawn([&mu]() -> void* {
      return reinterpret_cast<void*>(static_cast<intptr_t>(mu.try_lock()));
    });
    EXPECT_EQ(join(t), reinterpret_cast<void*>(0));  // held by main
    mu.unlock();
    EXPECT_TRUE(mu.try_lock());
    mu.unlock();
  });
}

TEST_P(SyncTest, CondVarProducerConsumer) {
  long long consumed_sum = 0;
  run(opts(), [&] {
    Mutex mu;
    CondVar nonempty, nonfull;
    std::vector<int> queue;
    constexpr std::size_t kCap = 4;
    constexpr int kItems = 500;
    bool done = false;

    auto consumer = spawn([&]() -> void* {
      long long sum = 0;
      while (true) {
        mu.lock();
        nonempty.wait_until(mu, [&] { return !queue.empty() || done; });
        if (queue.empty() && done) {
          mu.unlock();
          break;
        }
        sum += queue.back();
        queue.pop_back();
        nonfull.signal();
        mu.unlock();
      }
      consumed_sum = sum;
      return nullptr;
    });

    for (int i = 1; i <= kItems; ++i) {
      mu.lock();
      nonfull.wait_until(mu, [&] { return queue.size() < kCap; });
      queue.push_back(i);
      nonempty.signal();
      mu.unlock();
    }
    mu.lock();
    done = true;
    nonempty.broadcast();
    mu.unlock();
    join(consumer);
  });
  EXPECT_EQ(consumed_sum, 500LL * 501 / 2);
}

TEST_P(SyncTest, SemaphorePairSync) {
  // The Figure 3 "semaphore synchronization" pattern: two threads ping-pong.
  int turns = 0;
  run(opts(), [&] {
    Semaphore ping(0), pong(0);
    auto t = spawn([&]() -> void* {
      for (int i = 0; i < 50; ++i) {
        ping.acquire();
        ++turns;
        pong.release();
      }
      return nullptr;
    });
    for (int i = 0; i < 50; ++i) {
      ping.release();
      pong.acquire();
    }
    join(t);
  });
  EXPECT_EQ(turns, 50);
}

TEST_P(SyncTest, SemaphoreAsResourcePool) {
  std::atomic<int> in_section{0};
  std::atomic<int> max_seen{0};
  run(opts(SchedKind::AsyncDf, 8), [&] {
    Semaphore slots(3);
    std::vector<Thread> threads;
    for (int i = 0; i < 40; ++i) {
      threads.push_back(spawn([&]() -> void* {
        slots.acquire();
        const int now = in_section.fetch_add(1) + 1;
        int prev = max_seen.load();
        while (prev < now && !max_seen.compare_exchange_weak(prev, now)) {
        }
        yield();
        in_section.fetch_sub(1);
        slots.release();
        return nullptr;
      }));
    }
    for (auto& t : threads) join(t);
  });
  EXPECT_LE(max_seen.load(), 3);
  EXPECT_GE(max_seen.load(), 1);
}

TEST_P(SyncTest, BarrierPhases) {
  constexpr int kThreads = 8, kPhases = 10;
  std::vector<int> phase_of(kThreads, 0);
  bool ok = true;
  run(opts(SchedKind::Fifo, 4), [&] {
    Barrier barrier(kThreads);
    Mutex check_mu;
    std::vector<Thread> threads;
    for (int id = 0; id < kThreads; ++id) {
      threads.push_back(spawn([&, id]() -> void* {
        for (int ph = 0; ph < kPhases; ++ph) {
          phase_of[id] = ph;
          barrier.arrive_and_wait();
          {
            // After the barrier, no thread may still be in an earlier phase.
            // (Scoped: blocking on the next barrier while holding the check
            // mutex would deadlock every other thread.)
            LockGuard lock(check_mu);
            for (int other = 0; other < kThreads; ++other) {
              if (phase_of[other] < ph) ok = false;
            }
          }
          barrier.arrive_and_wait();
        }
        return nullptr;
      }));
    }
    for (auto& t : threads) join(t);
  });
  EXPECT_TRUE(ok);
}

TEST_P(SyncTest, BarrierGenerationIsSafeToPollConcurrently) {
  // Regression: generation() used to be a plain load of a counter the last
  // arrival increments under the barrier's guard — a data race whenever an
  // observer polls it from another kernel thread (RealEngine). It is now an
  // acquire load of an atomic; this test keeps a poller racing against
  // arrivals on both engines.
  constexpr std::uint64_t kGenerations = 25;
  std::uint64_t observed = 0;
  run(opts(), [&] {
    Barrier barrier(2);
    Thread a = spawn([&]() -> void* {
      for (std::uint64_t i = 0; i < kGenerations; ++i) barrier.arrive_and_wait();
      return nullptr;
    });
    Thread b = spawn([&]() -> void* {
      for (std::uint64_t i = 0; i < kGenerations; ++i) barrier.arrive_and_wait();
      return nullptr;
    });
    while (barrier.generation() < kGenerations) yield();
    observed = barrier.generation();
    join(a);
    join(b);
  });
  EXPECT_EQ(observed, kGenerations);
}

TEST_P(SyncTest, OnceRunsExactlyOnce) {
  std::atomic<int> calls{0};
  run(opts(), [&] {
    Once once;
    std::vector<Thread> threads;
    for (int i = 0; i < 32; ++i) {
      threads.push_back(spawn([&]() -> void* {
        once.call([&] { calls.fetch_add(1); });
        return nullptr;
      }));
    }
    for (auto& t : threads) join(t);
    EXPECT_TRUE(once.done());
  });
  EXPECT_EQ(calls.load(), 1);
}

TEST_P(SyncTest, TlsPerThreadValues) {
  bool ok = true;
  run(opts(), [&] {
    const std::uint32_t key = tls_create_key();
    std::vector<Thread> threads;
    Mutex mu;
    for (int i = 0; i < 16; ++i) {
      threads.push_back(spawn([&, i]() -> void* {
        tls_set(key, reinterpret_cast<void*>(static_cast<intptr_t>(i + 1)));
        yield();
        const auto got = reinterpret_cast<intptr_t>(tls_get(key));
        if (got != i + 1) {
          LockGuard lock(mu);
          ok = false;
        }
        return nullptr;
      }));
    }
    for (auto& t : threads) join(t);
  });
  EXPECT_TRUE(ok);
}

TEST_P(SyncTest, MutexWithAsyncDfKeepsPlaceholders) {
  // Blocking locks compose with the space-efficient scheduler: the paper's
  // distinguishing feature vs Cilk-style systems. A fork tree where every
  // leaf takes a shared lock.
  long long counter = 0;
  RunStats stats = run(opts(SchedKind::AsyncDf, 8), [&] {
    Mutex mu;
    struct Rec {
      static void go(Mutex& mu, long long& counter, int depth) {
        if (depth == 0) {
          LockGuard lock(mu);
          ++counter;
          return;
        }
        auto left = spawn([&mu, &counter, depth]() -> void* {
          go(mu, counter, depth - 1);
          return nullptr;
        });
        auto right = spawn([&mu, &counter, depth]() -> void* {
          go(mu, counter, depth - 1);
          return nullptr;
        });
        join(left);
        join(right);
      }
    };
    Rec::go(mu, counter, 6);
  });
  EXPECT_EQ(counter, 64);
  EXPECT_EQ(stats.threads_created, 1u + 2u + 4u + 8u + 16u + 32u + 64u);
}

// ---------- timed waits (pthread_mutex_timedlock / pthread_cond_timedwait
// equivalents; timeouts ride the engines' claim-token protocol) ----------

constexpr std::uint64_t kShortNs = 2'000'000;     // 2 ms
constexpr std::uint64_t kGenerousNs = 20'000'000'000ull;  // 20 s: never expires

TEST_P(SyncTest, TryLockForUncontendedAcquiresImmediately) {
  run(opts(), [] {
    Mutex mu;
    EXPECT_TRUE(mu.try_lock_for(kShortNs));
    EXPECT_TRUE(mu.held());
    mu.unlock();
  });
}

TEST_P(SyncTest, TryLockForTimesOutWhileHeld) {
  bool got = true;
  std::uint64_t timeouts = 0;
  const RunStats stats = run(opts(), [&] {
    Mutex mu;
    mu.lock();
    auto t = spawn([&]() -> void* {
      // Held by main for the whole run: only the deadline can end this wait.
      got = mu.try_lock_for(kShortNs);
      return nullptr;
    });
    join(t);
    mu.unlock();
  });
  timeouts = stats.sync_timeouts;
  EXPECT_FALSE(got);
  EXPECT_EQ(timeouts, 1u);
  if (GetParam() == EngineKind::Sim) {
    // Virtual time must have advanced past the deadline — the idle horizon
    // includes sleeper deadlines, so the clock jumps there instead of
    // spinning.
    EXPECT_GE(stats.elapsed_us * 1000.0, static_cast<double>(kShortNs));
  }
}

TEST_P(SyncTest, TryLockForAcquiresWhenReleasedBeforeDeadline) {
  bool got = false;
  run(opts(), [&] {
    Mutex mu;
    Semaphore waiting(0);
    mu.lock();
    auto t = spawn([&]() -> void* {
      waiting.release();
      got = mu.try_lock_for(kGenerousNs);  // handoff, not timeout
      if (got) mu.unlock();
      return nullptr;
    });
    waiting.acquire();
    yield();  // give the waiter a chance to actually block
    mu.unlock();
    join(t);
  });
  EXPECT_TRUE(got);
}

TEST_P(SyncTest, TimedWaitTimesOutAndReacquiresTheMutex) {
  bool signaled = true;
  const RunStats stats = run(opts(), [&] {
    Mutex mu;
    CondVar cv;
    mu.lock();
    signaled = cv.timed_wait(mu, kShortNs);  // nobody will ever signal
    // pthread_cond_timedwait semantics: the mutex is held again even after a
    // timeout — proven by being able to hand it to another thread.
    auto t = spawn([&]() -> void* {
      return reinterpret_cast<void*>(static_cast<intptr_t>(mu.try_lock()));
    });
    EXPECT_EQ(join(t), reinterpret_cast<void*>(0));
    mu.unlock();
  });
  EXPECT_FALSE(signaled);
  EXPECT_EQ(stats.sync_timeouts, 1u);
}

TEST_P(SyncTest, TimedWaitReturnsTrueWhenSignaledBeforeDeadline) {
  bool signaled = false;
  int generation = 0;
  run(opts(), [&] {
    Mutex mu;
    CondVar cv;
    auto t = spawn([&]() -> void* {
      LockGuard lock(mu);
      while (generation == 0) {
        if (!cv.timed_wait(mu, kGenerousNs)) return nullptr;
      }
      signaled = true;
      return nullptr;
    });
    for (int i = 0; i < 100; ++i) yield();
    {
      LockGuard lock(mu);
      generation = 1;
      cv.signal();
    }
    join(t);
  });
  EXPECT_TRUE(signaled);
}

TEST_P(SyncTest, SemaphoreTryAcquireForTimesOutThenSucceeds) {
  bool starved = true, fed = false;
  const RunStats stats = run(opts(), [&] {
    Semaphore sem(0);
    starved = sem.try_acquire_for(kShortNs);  // no units: must expire
    sem.release();
    fed = sem.try_acquire_for(kGenerousNs);   // a unit is ready: no wait
  });
  EXPECT_FALSE(starved);
  EXPECT_TRUE(fed);
  EXPECT_EQ(stats.sync_timeouts, 1u);
}

TEST_P(SyncTest, ManyCompetingTimedLocksNeverLoseTheMutex) {
  // Stress the claim-token protocol: waiters time out while the owner keeps
  // locking and unlocking. Whatever the interleaving, every acquisition is
  // exclusive and every call ends in exactly one of {acquired, timed out}.
  long long counter = 0;
  run(opts(SchedKind::AsyncDf, 8), [&] {
    Mutex mu;
    std::vector<Thread> threads;
    for (int i = 0; i < 24; ++i) {
      threads.push_back(spawn([&]() -> void* {
        for (int j = 0; j < 20; ++j) {
          if (mu.try_lock_for(kShortNs / 4)) {
            ++counter;
            yield();
            mu.unlock();
          } else {
            yield();
          }
        }
        return nullptr;
      }));
    }
    for (auto& t : threads) join(t);
  });
  EXPECT_GT(counter, 0);
  EXPECT_LE(counter, 24 * 20);
}

INSTANTIATE_TEST_SUITE_P(BothEngines, SyncTest,
                         ::testing::Values(EngineKind::Sim, EngineKind::Real),
                         engine_name);

}  // namespace
}  // namespace dfth
