// RwLock semantics on both engines: shared readers, exclusive writers,
// writer preference, and stress.
#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "runtime/api.h"
#include "runtime/sync.h"

namespace dfth {
namespace {

class RwLockTest : public ::testing::TestWithParam<EngineKind> {
 protected:
  RuntimeOptions opts(int nprocs = 4,
                      SchedKind sched = SchedKind::AsyncDf) const {
    RuntimeOptions o;
    o.engine = GetParam();
    o.sched = sched;
    o.nprocs = nprocs;
    o.default_stack_size = 8 << 10;
    return o;
  }
};

TEST_P(RwLockTest, ReadersShareWritersExclude) {
  std::atomic<int> concurrent_readers{0};
  std::atomic<int> max_readers{0};
  std::atomic<bool> writer_alone_ok{true};
  long long value = 0;

  // FIFO here on purpose: a yielding thread goes to the queue tail, so
  // reader sections interleave observably (AsyncDF's depth-first order
  // would legitimately resume the yielder immediately).
  run(opts(8, SchedKind::Fifo), [&] {
    RwLock lock;
    std::vector<Thread> threads;
    for (int i = 0; i < 24; ++i) {
      const bool is_writer = (i % 4 == 0);
      threads.push_back(spawn([&, is_writer]() -> void* {
        for (int round = 0; round < 20; ++round) {
          if (is_writer) {
            RwLock::WriteGuard guard(lock);
            if (concurrent_readers.load() != 0) writer_alone_ok = false;
            ++value;  // would race without exclusivity
            yield();
            ++value;
          } else {
            RwLock::ReadGuard guard(lock);
            const int now = concurrent_readers.fetch_add(1) + 1;
            int prev = max_readers.load();
            while (prev < now && !max_readers.compare_exchange_weak(prev, now)) {
            }
            yield();
            concurrent_readers.fetch_sub(1);
          }
        }
        return nullptr;
      }));
    }
    for (auto& t : threads) join(t);
  });

  EXPECT_TRUE(writer_alone_ok.load());
  EXPECT_EQ(value, 2LL * 6 * 20);  // 6 writers x 20 rounds x 2 increments
  EXPECT_GE(max_readers.load(), 2) << "readers never actually overlapped";
}

TEST_P(RwLockTest, TryVariantsReflectState) {
  run(opts(1), [] {
    RwLock lock;
    EXPECT_TRUE(lock.try_rdlock());
    EXPECT_TRUE(lock.try_rdlock());   // readers share
    EXPECT_FALSE(lock.try_wrlock());  // blocked by readers
    lock.rdunlock();
    lock.rdunlock();
    EXPECT_TRUE(lock.try_wrlock());
    EXPECT_FALSE(lock.try_rdlock());  // blocked by writer
    EXPECT_FALSE(lock.try_wrlock());
    lock.wrunlock();
  });
}

TEST_P(RwLockTest, WriterPreferenceBlocksNewReaders) {
  // Reader holds the lock; a writer queues; a second reader that arrives
  // later must wait behind the writer (no writer starvation).
  std::vector<int> order;
  run(opts(2), [&] {
    RwLock lock;
    Semaphore reader_in(0);
    lock.rdlock();

    auto writer = spawn([&]() -> void* {
      reader_in.release();  // writer is about to block on wrlock
      lock.wrlock();
      order.push_back(1);  // writer first
      lock.wrunlock();
      return nullptr;
    });
    reader_in.acquire();
    for (int i = 0; i < 20; ++i) yield();  // let the writer reach wrlock

    auto late_reader = spawn([&]() -> void* {
      lock.rdlock();
      order.push_back(2);  // reader after the writer
      lock.rdunlock();
      return nullptr;
    });
    for (int i = 0; i < 20; ++i) yield();
    lock.rdunlock();  // release the initial read hold

    join(writer);
    join(late_reader);
  });
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], 1);
  EXPECT_EQ(order[1], 2);
}

TEST_P(RwLockTest, StressCountsStayConsistent) {
  long long shared_value = 0;
  std::atomic<long long> read_sum{0};
  run(opts(8), [&] {
    RwLock lock;
    std::vector<Thread> threads;
    for (int i = 0; i < 32; ++i) {
      threads.push_back(spawn([&, i]() -> void* {
        for (int round = 0; round < 50; ++round) {
          if ((i + round) % 5 == 0) {
            RwLock::WriteGuard guard(lock);
            ++shared_value;
          } else {
            RwLock::ReadGuard guard(lock);
            read_sum.fetch_add(shared_value, std::memory_order_relaxed);
          }
        }
        return nullptr;
      }));
    }
    for (auto& t : threads) join(t);
  });
  EXPECT_EQ(shared_value, 32LL * 50 / 5);
  EXPECT_GE(read_sum.load(), 0);
}

INSTANTIATE_TEST_SUITE_P(BothEngines, RwLockTest,
                         ::testing::Values(EngineKind::Sim, EngineKind::Real),
                         [](const ::testing::TestParamInfo<EngineKind>& info) {
                           return std::string(to_string(info.param));
                         });

}  // namespace
}  // namespace dfth
