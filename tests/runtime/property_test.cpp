// Property tests over randomized programs: the paper's structural claims
// checked against generated fork/join/allocation DAGs rather than the
// hand-written benchmarks.
//
//  * AsyncDF space: live threads stay near the serial depth, and heap stays
//    within S1 + c·p·K·D for generated allocating programs.
//  * FIFO live threads dominate AsyncDF's on every generated program.
//  * All schedulers compute identical results (schedule-invariance).
//  * Simulated time is deterministic and Brent-consistent.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <vector>

#include "graph/analysis.h"
#include "runtime/api.h"
#include "util/rng.h"

namespace dfth {
namespace {

RuntimeOptions sim_opts(SchedKind sched, int nprocs, std::size_t quota = 32 << 10) {
  RuntimeOptions o;
  o.engine = EngineKind::Sim;
  o.sched = sched;
  o.nprocs = nprocs;
  o.default_stack_size = 8 << 10;
  o.mem_quota = quota;
  return o;
}

/// A random fork/join/alloc program: a tree whose shape, work, and
/// allocation sizes are drawn deterministically from `seed`. Returns a
/// checksum so schedule-invariance is observable.
struct RandomProgram {
  std::uint64_t seed;
  int max_depth;

  long long run_node(Rng rng, int depth) const {
    long long sum = static_cast<long long>(rng.next_below(1000));
    annotate_work(50 + rng.next_below(400));

    // Allocation held across the children (the pattern the space bound is
    // about).
    void* held = nullptr;
    if (rng.next_bool(0.6)) {
      held = df_malloc(512 + rng.next_below(48 << 10));
    }

    if (depth < max_depth) {
      const int kids = 1 + static_cast<int>(rng.next_below(3));
      std::vector<Thread> threads;
      std::vector<long long> results(static_cast<std::size_t>(kids), 0);
      for (int k = 0; k < kids; ++k) {
        Rng child_rng = rng.fork_stream(static_cast<std::uint64_t>(k) + 1);
        auto* slot = &results[static_cast<std::size_t>(k)];
        threads.push_back(spawn([this, child_rng, depth, slot]() -> void* {
          *slot = run_node(child_rng, depth + 1);
          return nullptr;
        }));
      }
      // Interleave a bit of post-fork work (parent continuation).
      annotate_work(100);
      for (auto& t : threads) join(t);
      for (long long r : results) sum += r;
    } else {
      annotate_work(200 + rng.next_below(800));
    }
    df_free(held);
    return sum;
  }

  long long operator()() const { return run_node(Rng(seed), 0); }
};

class RandomProgramTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomProgramTest, AllSchedulersComputeTheSameResult) {
  RandomProgram prog{GetParam(), 6};
  long long reference = 0;
  bool first = true;
  for (SchedKind sched : {SchedKind::Fifo, SchedKind::Lifo, SchedKind::AsyncDf,
                          SchedKind::WorkSteal, SchedKind::ClusteredAdf,
                          SchedKind::DfDeques}) {
    long long result = 0;
    run(sim_opts(sched, 4), [&] { result = prog(); });
    if (first) {
      reference = result;
      first = false;
    } else {
      EXPECT_EQ(result, reference) << to_string(sched);
    }
  }
}

TEST_P(RandomProgramTest, AsyncDfLiveThreadsNearSerialDepth) {
  RandomProgram prog{GetParam(), 6};
  // Ground truth from the recorded computation graph.
  Recorder rec;
  RuntimeOptions o = sim_opts(SchedKind::AsyncDf, 1);
  o.recorder = &rec;
  const RunStats serial = run(o, [&] { prog(); });
  const GraphSummary g = analyze(rec.take());

  // p = 1: live threads bounded by the serial fork depth plus a small
  // constant (dummy-thread trees for >K allocations add up to ~log(delta)).
  EXPECT_LE(serial.max_live_threads,
            static_cast<std::int64_t>(g.serial_live_depth) + 8)
      << "depth " << g.serial_live_depth;

  // p = 8: the bound gains an O(p) factor on the depth term.
  const RunStats par = run(sim_opts(SchedKind::AsyncDf, 8), [&] { prog(); });
  EXPECT_LE(par.max_live_threads,
            static_cast<std::int64_t>(8 * (g.serial_live_depth + 8)));

  // FIFO, for contrast, holds essentially every thread at once on the same
  // program (total threads ~ segment count's thread census).
  const RunStats fifo = run(sim_opts(SchedKind::Fifo, 1), [&] { prog(); });
  EXPECT_GE(fifo.max_live_threads, par.max_live_threads);
  EXPECT_GE(fifo.max_live_threads,
            static_cast<std::int64_t>(g.thread_count) / 2);
}

TEST_P(RandomProgramTest, AsyncDfHeapWithinS1PlusPkd) {
  RandomProgram prog{GetParam(), 6};
  const std::size_t quota = 16 << 10;
  // S1: serial depth-first execution's heap peak.
  RunStats serial = run(sim_opts(SchedKind::AsyncDf, 1, quota), [&] { prog(); });
  const auto s1 = serial.heap_peak;

  Recorder rec;
  RuntimeOptions o = sim_opts(SchedKind::AsyncDf, 1, quota);
  o.recorder = &rec;
  run(o, [&] { prog(); });
  const GraphSummary g = analyze(rec.take());

  for (int p : {2, 4, 8}) {
    const RunStats stats = run(sim_opts(SchedKind::AsyncDf, p, quota), [&] { prog(); });
    // S1 + c * p * K * D with c = 2 and D = span segment count (an upper
    // proxy for the depth of the premature subcomputation frontier).
    const auto bound =
        s1 + static_cast<std::int64_t>(2ull * static_cast<std::uint64_t>(p) *
                                       quota * g.span_segments);
    EXPECT_LE(stats.heap_peak, bound) << "p=" << p << " S1=" << s1;
    // And the useful direction: far below FIFO on the same p.
    const RunStats fifo = run(sim_opts(SchedKind::Fifo, p, quota), [&] { prog(); });
    EXPECT_LE(stats.heap_peak, fifo.heap_peak * 110 / 100) << "p=" << p;
  }
}

TEST_P(RandomProgramTest, SimulationIsDeterministic) {
  RandomProgram prog{GetParam(), 5};
  RunStats a = run(sim_opts(SchedKind::ClusteredAdf, 6), [&] { prog(); });
  RunStats b = run(sim_opts(SchedKind::ClusteredAdf, 6), [&] { prog(); });
  EXPECT_DOUBLE_EQ(a.elapsed_us, b.elapsed_us);
  EXPECT_EQ(a.heap_peak, b.heap_peak);
  EXPECT_EQ(a.max_live_threads, b.max_live_threads);
  EXPECT_EQ(a.dispatches, b.dispatches);
}

TEST_P(RandomProgramTest, MoreProcessorsNeverMuchSlower) {
  RandomProgram prog{GetParam(), 6};
  double prev = run(sim_opts(SchedKind::AsyncDf, 1), [&] { prog(); }).elapsed_us;
  for (int p : {2, 4, 8}) {
    const double now = run(sim_opts(SchedKind::AsyncDf, p), [&] { prog(); }).elapsed_us;
    EXPECT_LE(now, prev * 1.3) << "p=" << p;
    prev = now;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomProgramTest,
                         ::testing::Values(11, 22, 33, 44, 55, 66, 77, 88));

}  // namespace
}  // namespace dfth
