// Real-engine specifics: bound threads, fiber migration across workers,
// oversubscription stress, and wall-clock sanity.
#include "runtime/real_engine.h"

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>
#include <vector>

#include "runtime/api.h"
#include "runtime/sync.h"

namespace dfth {
namespace {

RuntimeOptions real_opts(SchedKind sched = SchedKind::AsyncDf, int nprocs = 4) {
  RuntimeOptions o;
  o.engine = EngineKind::Real;
  o.sched = sched;
  o.nprocs = nprocs;
  o.default_stack_size = 8 << 10;
  return o;
}

TEST(RealEngine, BoundThreadRunsOnDedicatedKernelThread) {
  std::thread::id main_tid = std::this_thread::get_id();
  std::thread::id bound_tid;
  run(real_opts(SchedKind::AsyncDf, 1), [&] {
    Attr attr;
    attr.bound = true;
    auto t = spawn(
        [&bound_tid]() -> void* {
          bound_tid = std::this_thread::get_id();
          return reinterpret_cast<void*>(0x77);
        },
        attr);
    EXPECT_EQ(join(t), reinterpret_cast<void*>(0x77));
  });
  EXPECT_NE(bound_tid, std::thread::id{});
  EXPECT_NE(bound_tid, main_tid);
}

TEST(RealEngine, BoundAndUnboundInterleave) {
  std::atomic<int> count{0};
  run(real_opts(), [&] {
    std::vector<Thread> threads;
    for (int i = 0; i < 20; ++i) {
      Attr attr;
      attr.bound = (i % 3 == 0);
      threads.push_back(spawn(
          [&count]() -> void* {
            count.fetch_add(1);
            return nullptr;
          },
          attr));
    }
    for (auto& t : threads) join(t);
  });
  EXPECT_EQ(count.load(), 20);
}

TEST(RealEngine, BoundThreadCanUseMutex) {
  long long counter = 0;
  run(real_opts(), [&] {
    Mutex mu;
    std::vector<Thread> threads;
    for (int i = 0; i < 8; ++i) {
      Attr attr;
      attr.bound = (i % 2 == 0);
      threads.push_back(spawn(
          [&]() -> void* {
            for (int j = 0; j < 200; ++j) {
              LockGuard lock(mu);
              ++counter;
            }
            return nullptr;
          },
          attr));
    }
    for (auto& t : threads) join(t);
  });
  EXPECT_EQ(counter, 8 * 200);
}

TEST(RealEngine, FibersMigrateBetweenWorkers) {
  // A fiber that blocks and resumes repeatedly has a fair chance of being
  // picked up by different workers; verify it keeps working correctly and
  // (usually) observes more than one kernel thread id.
  std::set<std::thread::id> seen;
  Mutex seen_mu;
  run(real_opts(SchedKind::Fifo, 4), [&] {
    Semaphore ping(0), pong(0);
    auto t = spawn([&]() -> void* {
      for (int i = 0; i < 200; ++i) {
        ping.acquire();
        {
          LockGuard lock(seen_mu);
          seen.insert(std::this_thread::get_id());
        }
        pong.release();
      }
      return nullptr;
    });
    for (int i = 0; i < 200; ++i) {
      ping.release();
      pong.acquire();
    }
    join(t);
  });
  EXPECT_GE(seen.size(), 1u);
}

TEST(RealEngine, StressManyFibersManyWorkers) {
  std::atomic<long long> sum{0};
  RunStats stats = run(real_opts(SchedKind::WorkSteal, 8), [&] {
    std::vector<Thread> threads;
    for (int i = 0; i < 1000; ++i) {
      threads.push_back(spawn([&sum, i]() -> void* {
        sum.fetch_add(i, std::memory_order_relaxed);
        if (i % 7 == 0) yield();
        return nullptr;
      }));
    }
    for (auto& t : threads) join(t);
  });
  EXPECT_EQ(sum.load(), 999LL * 1000 / 2);
  EXPECT_EQ(stats.threads_created, 1001u);
}

TEST(RealEngine, NestedForkJoinTreeParallel) {
  // Fibonacci via naive fork/join — heavy spawn/join churn across workers.
  struct Fib {
    static long long go(int n) {
      if (n < 2) return n;
      auto t = spawn([n]() -> void* {
        return reinterpret_cast<void*>(go(n - 1));
      });
      const long long b = go(n - 2);
      return reinterpret_cast<intptr_t>(join(t)) + b;
    }
  };
  long long result = 0;
  run(real_opts(SchedKind::AsyncDf, 4), [&] { result = Fib::go(16); });
  EXPECT_EQ(result, 987);
}

TEST(RealEngine, WallClockElapsedIsPositive) {
  RunStats stats = run(real_opts(), [] {
    volatile double x = 1.0;
    for (int i = 0; i < 100000; ++i) x = x * 1.0000001;
  });
  EXPECT_GT(stats.elapsed_us, 0.0);
  EXPECT_EQ(stats.engine, EngineKind::Real);
}

TEST(RealEngine, StackReuseAcrossThreadGenerations) {
  RunStats stats = run(real_opts(SchedKind::AsyncDf, 2), [] {
    // Sequential generations: later threads must reuse earlier stacks.
    for (int gen = 0; gen < 10; ++gen) {
      std::vector<Thread> threads;
      for (int i = 0; i < 10; ++i) {
        threads.push_back(spawn([]() -> void* { return nullptr; }));
      }
      for (auto& t : threads) join(t);
    }
  });
  EXPECT_GT(stats.stacks_reused, 0u);
  EXPECT_LT(stats.stacks_fresh, 101u);
}

TEST(RealEngine, QuotaPreemptionUnderAsyncDf) {
  RuntimeOptions o = real_opts(SchedKind::AsyncDf, 2);
  o.mem_quota = 4 << 10;
  RunStats stats = run(o, [] {
    for (int i = 0; i < 32; ++i) {
      void* p = df_malloc(2 << 10);
      df_free(p);
    }
  });
  EXPECT_GE(stats.quota_preemptions, 8u);
}

}  // namespace
}  // namespace dfth
