#include "space/stack_pool.h"

#include <gtest/gtest.h>

#include <csetjmp>
#include <csignal>
#include <cstdint>
#include <cstring>

#include "resil/faults.h"

namespace dfth {
namespace {

TEST(StackPool, AcquireGivesWritableRegion) {
  auto& pool = StackPool::instance();
  Stack s = pool.acquire(32 << 10);
  ASSERT_TRUE(s);
  EXPECT_GE(s.size, 32u << 10);
  // Entire usable region is writable.
  std::memset(s.base, 0x5A, s.size);
  pool.release(s);
}

TEST(StackPool, ReusesSameSizeClass) {
  auto& pool = StackPool::instance();
  pool.begin_epoch();
  Stack a = pool.acquire(64 << 10);
  void* base = a.base;
  pool.release(a);
  Stack b = pool.acquire(64 << 10);
  EXPECT_EQ(b.base, base);
  EXPECT_FALSE(b.fresh);
  EXPECT_EQ(pool.reuse_count(), 1u);
  pool.release(b);
}

TEST(StackPool, DifferentSizesDoNotMix) {
  auto& pool = StackPool::instance();
  pool.trim();
  Stack a = pool.acquire(16 << 10);
  pool.release(a);
  Stack b = pool.acquire(32 << 10);
  EXPECT_TRUE(b.fresh);
  pool.release(b);
  pool.trim();
}

TEST(StackPool, LivePeakAccounting) {
  auto& pool = StackPool::instance();
  pool.trim();
  pool.begin_epoch();
  const auto base_live = pool.live_bytes();
  Stack a = pool.acquire(16 << 10);
  Stack b = pool.acquire(16 << 10);
  EXPECT_EQ(pool.live_bytes(), base_live + 2 * (16 << 10));
  pool.release(a);
  EXPECT_EQ(pool.live_bytes(), base_live + (16 << 10));
  EXPECT_GE(pool.peak_bytes(), base_live + 2 * (16 << 10));
  pool.release(b);
}

TEST(StackPool, SizeRoundsToPages) {
  auto& pool = StackPool::instance();
  Stack s = pool.acquire(1);  // sub-page request
  EXPECT_GE(s.size, 4096u);
  EXPECT_EQ(s.size % 4096, 0u);
  pool.release(s);
}

TEST(StackPool, TopIsOnePastTheUsableRegion) {
  // Regression: top() used to mix the guard page into its arithmetic and
  // point below the true stack top, silently wasting usable bytes and (for
  // downward-growing fibers) seeding the context one page short. It is
  // defined as exactly base + size.
  auto& pool = StackPool::instance();
  Stack s = pool.acquire(16 << 10);
  ASSERT_TRUE(s);
  EXPECT_EQ(s.top(), static_cast<char*>(s.base) + s.size);
  // The highest usable bytes really are usable: a fiber's first frame lands
  // right below top().
  auto* word = reinterpret_cast<std::uint64_t*>(static_cast<char*>(s.top()) - 8);
  *word = 0xfeedfacecafebeefull;
  EXPECT_EQ(*word, 0xfeedfacecafebeefull);
  pool.release(s);
}

TEST(StackPool, HeapFallbackWhenMappingIsFailed) {
  if (!resil::kFaultsEnabled) {
    GTEST_SKIP() << "build has no fault hooks (-DDFTH_FAULTS=OFF)";
  }
  auto& pool = StackPool::instance();
  pool.trim();  // empty the cache so acquire must reach the mmap site
  resil::FaultPlan plan;
  plan.site(resil::FaultSite::kStackMmap).probability = 1.0;
  resil::FaultInjector::instance().arm(plan);
  Stack s = pool.acquire(20 << 10);
  resil::FaultInjector::instance().disarm();
  // Every mapping attempt "failed", so the pool degraded to a guard-less
  // heap-backed stack — still fully usable.
  ASSERT_TRUE(s);
  EXPECT_TRUE(s.heap);
  EXPECT_GE(s.size, 20u << 10);
  std::memset(s.base, 0x5A, s.size);
  EXPECT_EQ(s.top(), static_cast<char*>(s.base) + s.size);
  pool.release(s);  // freed immediately, not cached
  Stack again = pool.acquire(20 << 10);
  EXPECT_FALSE(again.heap);  // injector disarmed: mmap works again
  EXPECT_TRUE(again.fresh);  // and the heap stack was not in the cache
  pool.release(again);
  pool.trim();
}

TEST(StackPoolDeathTest, GuardPageCatchesOverflow) {
  ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
  EXPECT_DEATH(
      {
        auto& pool = StackPool::instance();
        Stack s = pool.acquire(8 << 10);
        // Write below the usable region — into the PROT_NONE guard page.
        static_cast<char*>(s.base)[-1] = 1;
      },
      "");
}

}  // namespace
}  // namespace dfth
