#include "space/tracked_heap.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <thread>
#include <vector>

#include "analyze/san_fibers.h"
#include "runtime/api.h"

namespace dfth {
namespace {

TEST(TrackedHeap, LiveAndPeakAccounting) {
  auto& heap = TrackedHeap::instance();
  heap.begin_epoch();
  const auto base_live = heap.live_bytes();

  void* a = heap.allocate(1000);
  EXPECT_EQ(heap.live_bytes(), base_live + 1000);
  void* b = heap.allocate(2000);
  EXPECT_EQ(heap.live_bytes(), base_live + 3000);
  EXPECT_GE(heap.peak_bytes(), base_live + 3000);

  heap.deallocate(a);
  EXPECT_EQ(heap.live_bytes(), base_live + 2000);
  // Peak does not fall.
  EXPECT_GE(heap.peak_bytes(), base_live + 3000);
  heap.deallocate(b);
  EXPECT_EQ(heap.live_bytes(), base_live);
}

TEST(TrackedHeap, AllocatedSizeRecorded) {
  auto& heap = TrackedHeap::instance();
  void* p = heap.allocate(12345);
  EXPECT_EQ(TrackedHeap::allocated_size(p), 12345u);
  heap.deallocate(p);
}

TEST(TrackedHeap, FreshBytesOnlyAbovePeak) {
  auto& heap = TrackedHeap::instance();
  heap.begin_epoch();
  std::int64_t fresh = 0;
  void* a = heap.allocate_ex(5000, &fresh);
  EXPECT_EQ(fresh, 5000);
  heap.deallocate(a);
  // Second allocation of the same size fits under the existing peak.
  void* b = heap.allocate_ex(5000, &fresh);
  EXPECT_EQ(fresh, 0);
  // Larger allocation is fresh only for the excess.
  void* c = heap.allocate_ex(3000, &fresh);
  EXPECT_EQ(fresh, 3000);
  heap.deallocate(b);
  heap.deallocate(c);
}

TEST(TrackedHeap, EpochResetsPeakToLive) {
  auto& heap = TrackedHeap::instance();
  void* a = heap.allocate(4096);
  heap.begin_epoch();
  EXPECT_EQ(heap.peak_bytes(), heap.live_bytes());
  heap.deallocate(a);
}

TEST(TrackedHeap, WriteDoesNotCorruptHeader) {
  auto& heap = TrackedHeap::instance();
  void* p = heap.allocate(64);
  std::memset(p, 0xAB, 64);
  EXPECT_EQ(TrackedHeap::allocated_size(p), 64u);
  heap.deallocate(p);
}

TEST(TrackedHeap, NullFreeIsNoop) { TrackedHeap::instance().deallocate(nullptr); }

TEST(TrackedHeap, ForeignPointerFreeAborts) {
  int x = 0;
  EXPECT_DEATH(TrackedHeap::instance().deallocate(&x), "df_free");
}

TEST(TrackedHeap, ConcurrentAccountingIsExact) {
  auto& heap = TrackedHeap::instance();
  heap.begin_epoch();
  const auto base_live = heap.live_bytes();
  constexpr int kThreads = 8, kIters = 2000;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&heap] {
      for (int i = 0; i < kIters; ++i) {
        void* p = heap.allocate(128);
        heap.deallocate(p);
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(heap.live_bytes(), base_live);
}

// ---------- exhaustion is an error return, not an abort ----------

TEST(TrackedHeap, SizeOverflowReturnsNullWithNoSideEffects) {
  // sizeof(Header) + bytes would wrap: the old code handed the wrapped size
  // to malloc (undefined nonsense); allocate_ex now refuses effect-free so
  // the engines' OOM-preempt recovery can retry or surface kNoMem.
  auto& heap = TrackedHeap::instance();
  const auto live = heap.live_bytes();
  const auto allocs = heap.alloc_count();
  std::int64_t fresh = 123;
  void* p = heap.allocate_ex(SIZE_MAX - 4, &fresh);
  EXPECT_EQ(p, nullptr);
  EXPECT_EQ(fresh, 0);
  EXPECT_EQ(heap.live_bytes(), live);
  EXPECT_EQ(heap.alloc_count(), allocs);
}

#if !defined(DFTH_ASAN_ENABLED) && !defined(DFTH_TSAN_ENABLED)
TEST(TrackedHeap, BackingMallocFailureReturnsNullWithNoSideEffects) {
  // A genuinely impossible (but non-overflowing) request: malloc itself
  // returns nullptr. Sanitizer builds skip this — their allocators abort on
  // huge requests instead of returning null.
  auto& heap = TrackedHeap::instance();
  const auto live = heap.live_bytes();
  std::int64_t fresh = 123;
  void* p = heap.allocate_ex(std::size_t{1} << 62, &fresh);
  EXPECT_EQ(p, nullptr);
  EXPECT_EQ(fresh, 0);
  EXPECT_EQ(heap.live_bytes(), live);
}
#endif

TEST(TrackedHeap, DfTryMallocOutsideRunReportsOk) {
  // Usable outside run(): plain tracked allocation with an explicit status.
  DfStatus status = DfStatus::kNoMem;
  void* p = df_try_malloc(64, &status);
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(status, DfStatus::kOk);
  std::memset(p, 0xCD, 64);
  df_free(p);
}

// ---------- race-detector shadow cells ----------

TEST(ShadowTable, ClearRangeDropsExactlyTheCoveredGranules) {
  ShadowTable st;
  {
    std::lock_guard<std::mutex> g(st.mu());
    st.cell(10);
    st.cell(11);
    st.cell(12);
  }
  EXPECT_EQ(st.cell_count(), 3u);
  // [granule 10, granule 11] inclusive: 16 bytes starting at granule 10.
  st.clear_range(reinterpret_cast<void*>(10 * kShadowGranuleBytes),
                 2 * kShadowGranuleBytes);
  EXPECT_EQ(st.cell_count(), 1u);
  st.clear_all();
  EXPECT_EQ(st.cell_count(), 0u);
}

TEST(ShadowTable, ClearRangeOnEmptyTableIsANoOp) {
  ShadowTable st;
  st.clear_range(reinterpret_cast<void*>(64), 1024);  // lock-free early out
  EXPECT_EQ(st.cell_count(), 0u);
}

TEST(TrackedHeap, DeallocateRetiresTheBlocksShadowCells) {
  auto& heap = TrackedHeap::instance();
  heap.shadow().clear_all();
  void* p = heap.allocate(64);
  const auto granule = reinterpret_cast<std::uintptr_t>(p) / kShadowGranuleBytes;
  {
    std::lock_guard<std::mutex> g(heap.shadow().mu());
    heap.shadow().cell(granule);
    heap.shadow().cell(granule + 7);  // last granule of the 64-byte block
  }
  EXPECT_EQ(heap.shadow().cell_count(), 2u);
  // Freeing must drop the whole block's shadow: the allocator may hand this
  // range to an unrelated thread, and a stale cell would pair the new
  // lifetime's first access against the dead one's last.
  heap.deallocate(p);
  EXPECT_EQ(heap.shadow().cell_count(), 0u);
}

}  // namespace
}  // namespace dfth
