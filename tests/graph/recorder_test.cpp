// Computation-graph recording + work/span analysis.
#include <gtest/gtest.h>

#include "graph/analysis.h"
#include "graph/recorder.h"
#include "runtime/api.h"

namespace dfth {
namespace {

RuntimeOptions rec_opts(Recorder* rec, int nprocs = 2) {
  RuntimeOptions o;
  o.engine = EngineKind::Sim;
  o.sched = SchedKind::AsyncDf;
  o.nprocs = nprocs;
  o.recorder = rec;
  return o;
}

TEST(Recorder, SingleThreadSingleSegment) {
  Recorder rec;
  detail::set_recorder(&rec);
  rec.on_thread_start(1, 0);
  rec.on_work(1, 500);
  rec.on_work(1, 250);
  detail::set_recorder(nullptr);
  Graph g = rec.take();
  ASSERT_EQ(g.segments.size(), 1u);
  EXPECT_EQ(g.segments[0].ops, 750u);
  EXPECT_TRUE(g.edges.empty());
}

TEST(Recorder, ForkSplitsParentSegment) {
  Recorder rec;
  rec.on_thread_start(1, 0);
  rec.on_work(1, 100);
  rec.on_thread_start(2, 1);  // thread 1 forks thread 2
  rec.on_work(1, 10);
  rec.on_work(2, 200);
  rec.on_join(2, 1);
  rec.on_work(1, 30);
  Graph g = rec.take();
  // Segments: t1-a (100), t1-b (10), t2 (200), t1-c (30).
  ASSERT_EQ(g.segments.size(), 4u);
  GraphSummary s = analyze(g);
  EXPECT_EQ(s.total_ops, 340u);
  EXPECT_EQ(s.thread_count, 2u);
  // Critical path: t1-a -> t2 -> t1-c = 100+200+30.
  EXPECT_EQ(s.span_ops, 330u);
  EXPECT_EQ(s.serial_live_depth, 2u);
}

TEST(Recorder, EndToEndThroughRuntime) {
  Recorder rec;
  run(rec_opts(&rec), [] {
    annotate_work(100);
    auto a = spawn([]() -> void* {
      annotate_work(400);
      return nullptr;
    });
    auto b = spawn([]() -> void* {
      annotate_work(300);
      return nullptr;
    });
    join(a);
    join(b);
    annotate_work(50);
  });
  Graph g = rec.take();
  const GraphSummary summary = analyze(g);
  EXPECT_EQ(summary.total_ops, 850u);
  EXPECT_EQ(summary.thread_count, 3u);
  // Span: 100 -> max(400, 300) -> 50.
  EXPECT_EQ(summary.span_ops, 550u);
  EXPECT_NEAR(summary.avg_parallelism, 850.0 / 550.0, 1e-9);
}

TEST(Recorder, AllocationAccounting) {
  Recorder rec;
  rec.on_thread_start(1, 0);
  rec.on_alloc(1, 4096);
  rec.on_alloc(1, -1024);
  Graph g = rec.take();
  ASSERT_EQ(g.segments.size(), 1u);
  EXPECT_EQ(g.segments[0].alloc_bytes, 3072);
}

TEST(Recorder, DeepForkChainDepth) {
  Recorder rec;
  rec.on_thread_start(1, 0);
  for (std::uint64_t t = 2; t <= 6; ++t) rec.on_thread_start(t, t - 1);
  Graph g = rec.take();
  GraphSummary s = analyze(g);
  EXPECT_EQ(s.serial_live_depth, 6u);
}

TEST(Analysis, DotOutputContainsAllSegments) {
  Recorder rec;
  rec.on_thread_start(1, 0);
  rec.on_thread_start(2, 1);
  rec.on_join(2, 1);
  Graph g = rec.take();
  const std::string dot = to_dot(g);
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("dashed"), std::string::npos);  // the join edge
  for (std::size_t i = 0; i < g.segments.size(); ++i) {
    EXPECT_NE(dot.find("s" + std::to_string(i)), std::string::npos);
  }
}

TEST(Analysis, EmptyGraph) {
  Graph g;
  GraphSummary s = analyze(g);
  EXPECT_EQ(s.total_ops, 0u);
  EXPECT_EQ(s.segment_count, 0u);
}

}  // namespace
}  // namespace dfth
