// Exporter tests: the Chrome trace is well-formed line-oriented JSON with
// one metadata lane per worker, the CSV carries the sampled curves, the
// stats blob embeds every Breakdown category plus histogram percentiles,
// exports stay well-formed when the rings overflowed (and say how much was
// dropped), and the profiler report round-trips through write_profile_json.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "obs/export.h"
#include "obs/trace.h"
#include "runtime/api.h"

namespace dfth {
namespace {

void fork_tree(int depth) {
  annotate_work(20);
  if (depth <= 1) return;
  auto left = spawn([depth]() -> void* {
    fork_tree(depth - 1);
    return nullptr;
  });
  join(left);
}

struct TracedRun {
  obs::Tracer tracer;
  RunStats stats;

  TracedRun() {
    RuntimeOptions o;
    o.engine = EngineKind::Sim;
    o.sched = SchedKind::AsyncDf;
    o.nprocs = 2;
    o.default_stack_size = 8 << 10;
    o.tracer = &tracer;
    stats = run(o, [] { fork_tree(6); });
  }
};

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

std::size_t count_lines_with(const std::string& text, const std::string& pat) {
  std::size_t n = 0;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (line.find(pat) != std::string::npos) ++n;
  }
  return n;
}

class ExportTest : public ::testing::Test {
 protected:
  std::string path(const char* suffix) {
    return ::testing::TempDir() + "dfth_export_" + suffix;
  }
};

TEST_F(ExportTest, BreakdownJsonListsEveryCategory) {
  Breakdown bd;
  bd.work_us = 1;
  bd.idle_us = 2;
  const std::string json = obs::to_json(bd);
  for (int c = 0; c < Breakdown::kNumCategories; ++c) {
    const std::string key =
        std::string("\"") + Breakdown::category_name(c) + "_us\"";
    EXPECT_NE(json.find(key), std::string::npos) << key;
  }
  EXPECT_NE(json.find("\"total_us\""), std::string::npos);
}

TEST_F(ExportTest, RunStatsJsonCarriesTheHeadlineFields) {
  TracedRun r;
  const std::string json = obs::to_json(r.stats);
  EXPECT_NE(json.find("\"engine\""), std::string::npos);
  EXPECT_NE(json.find("\"scheduler\""), std::string::npos);
  EXPECT_NE(json.find("\"heap_peak\""), std::string::npos);
  EXPECT_NE(json.find("\"max_live_threads\""), std::string::npos);
  EXPECT_NE(json.find("\"breakdown\""), std::string::npos);
}

TEST_F(ExportTest, ChromeTraceHasOneLanePerWorkerAndBalancedJson) {
  if (!obs::kTraceEnabled) GTEST_SKIP() << "built with DFTH_TRACE=OFF";
  TracedRun r;
  const std::string file = path("trace.json");
  ASSERT_TRUE(obs::write_chrome_trace(r.tracer, r.stats, file));
  const std::string text = slurp(file);
  std::remove(file.c_str());

  EXPECT_NE(text.find("\"traceEvents\""), std::string::npos);
  // One thread_name metadata record per lane.
  EXPECT_EQ(count_lines_with(text, "thread_name"),
            static_cast<std::size_t>(r.tracer.lanes()));
  EXPECT_GT(count_lines_with(text, "\"ph\": \"X\""), 0u);  // dispatch slices
  EXPECT_GT(count_lines_with(text, "\"ph\": \"C\""), 0u);  // counter tracks

  // Structurally balanced: Perfetto's parser needs matching brackets.
  long depth = 0;
  for (char c : text) {
    if (c == '{' || c == '[') ++depth;
    if (c == '}' || c == ']') --depth;
    ASSERT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
}

TEST_F(ExportTest, TimeseriesCsvHasHeaderAndOneRowPerSample) {
  if (!obs::kTraceEnabled) GTEST_SKIP() << "built with DFTH_TRACE=OFF";
  TracedRun r;
  const std::string file = path("series.csv");
  ASSERT_TRUE(obs::write_timeseries_csv(r.tracer, file));
  const std::string text = slurp(file);
  std::remove(file.c_str());

  EXPECT_EQ(text.rfind("ts_us,live_threads,heap_bytes,stack_bytes,ready", 0), 0u);
  EXPECT_EQ(count_lines_with(text, ","),
            r.tracer.samples().size() + 1);  // header + rows
}

TEST_F(ExportTest, StatsJsonEmbedsCountersAndWorksWithoutTracer) {
  TracedRun r;
  const std::string with_tracer = path("stats1.json");
  const std::string without = path("stats2.json");
  ASSERT_TRUE(obs::write_stats_json(r.stats, &r.tracer, with_tracer));
  ASSERT_TRUE(obs::write_stats_json(r.stats, nullptr, without));
  const std::string full = slurp(with_tracer);
  const std::string bare = slurp(without);
  std::remove(with_tracer.c_str());
  std::remove(without.c_str());

  EXPECT_NE(full.find("\"counters\""), std::string::npos);
  EXPECT_NE(full.find("\"trace\""), std::string::npos);
  EXPECT_NE(full.find("\"histograms\""), std::string::npos);
  EXPECT_NE(full.find("\"p99_ns\""), std::string::npos);
  EXPECT_NE(bare.find("\"stats\""), std::string::npos);
  EXPECT_EQ(bare.find("\"trace\""), std::string::npos);
}

TEST_F(ExportTest, RunStatsJsonEmbedsProfileSection) {
  TracedRun r;
  const std::string json = obs::to_json(r.stats);
  EXPECT_NE(json.find("\"profile\""), std::string::npos);
  EXPECT_NE(json.find("\"work_ns\""), std::string::npos);
  EXPECT_NE(json.find("\"span_ns\""), std::string::npos);
  EXPECT_NE(json.find("\"parallelism\""), std::string::npos);
}

// -- ring overflow: exports stay well-formed and admit the loss ------------

struct OverflowRun {
  obs::Tracer tracer;
  RunStats stats;

  OverflowRun() : tracer(small_rings()) {
    RuntimeOptions o;
    o.engine = EngineKind::Sim;
    o.sched = SchedKind::AsyncDf;
    o.nprocs = 2;
    o.default_stack_size = 8 << 10;
    o.tracer = &tracer;
    stats = run(o, [] { fork_tree(48); });
  }

  static obs::TraceConfig small_rings() {
    obs::TraceConfig cfg;
    cfg.ring_capacity = 16;  // a depth-48 chain overflows this immediately
    return cfg;
  }
};

TEST_F(ExportTest, OverflowedChromeTraceStaysBalancedAndReportsDrops) {
  if (!obs::kTraceEnabled) GTEST_SKIP() << "built with DFTH_TRACE=OFF";
  OverflowRun r;
  ASSERT_GT(r.tracer.dropped(), 0u);

  const std::string file = path("overflow_trace.json");
  ASSERT_TRUE(obs::write_chrome_trace(r.tracer, r.stats, file));
  const std::string text = slurp(file);
  std::remove(file.c_str());

  // The drop marker names the exact loss, so the file is never mistaken
  // for a complete trace.
  const std::string marker = "\"dropped\": " + std::to_string(r.tracer.dropped());
  EXPECT_NE(text.find("dfth_dropped"), std::string::npos);
  EXPECT_NE(text.find(marker), std::string::npos);

  // Truncated input, still well-formed output.
  long depth = 0;
  for (char c : text) {
    if (c == '{' || c == '[') ++depth;
    if (c == '}' || c == ']') --depth;
    ASSERT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
}

TEST_F(ExportTest, OverflowedCsvAndStatsJsonStayWellFormed) {
  if (!obs::kTraceEnabled) GTEST_SKIP() << "built with DFTH_TRACE=OFF";
  OverflowRun r;
  ASSERT_GT(r.tracer.dropped(), 0u);

  const std::string csv = path("overflow.csv");
  ASSERT_TRUE(obs::write_timeseries_csv(r.tracer, csv));
  const std::string csv_text = slurp(csv);
  std::remove(csv.c_str());
  EXPECT_EQ(csv_text.rfind("ts_us,", 0), 0u);
  EXPECT_EQ(count_lines_with(csv_text, ","), r.tracer.samples().size() + 1);

  const std::string json = path("overflow_stats.json");
  ASSERT_TRUE(obs::write_stats_json(r.stats, &r.tracer, json));
  const std::string json_text = slurp(json);
  std::remove(json.c_str());
  const std::string marker =
      "\"dropped\": " + std::to_string(r.tracer.dropped());
  EXPECT_NE(json_text.find(marker), std::string::npos);
  long depth = 0;
  for (char c : json_text) {
    if (c == '{' || c == '[') ++depth;
    if (c == '}' || c == ']') --depth;
    ASSERT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
}

// -- profiler report ---------------------------------------------------------

TEST_F(ExportTest, ProfileJsonCarriesSweepAndAttribution) {
  if (!obs::kProfEnabled) GTEST_SKIP() << "built with DFTH_PROF=OFF";
  obs::Profiler prof;
  RuntimeOptions o;
  o.engine = EngineKind::Sim;
  o.sched = SchedKind::AsyncDf;
  o.nprocs = 2;
  o.default_stack_size = 8 << 10;
  o.profiler = &prof;
  const RunStats stats = run(o, [] { fork_tree(6); });

  std::vector<obs::ProfSweepRow> sweep;
  for (int p : {1, 2, 4}) {
    obs::ProfSweepRow row;
    row.p = p;
    row.predicted_lo_us = stats.profile.predict_lo_ns(p) / 1000.0;
    row.predicted_hi_us = stats.profile.predict_hi_ns(p) / 1000.0;
    if (p == o.nprocs) row.measured_us = stats.elapsed_us;
    sweep.push_back(row);
  }

  const std::string file = path("profile.json");
  ASSERT_TRUE(obs::write_profile_json("fork_tree", stats, &prof, sweep, file));
  const std::string text = slurp(file);
  std::remove(file.c_str());

  EXPECT_NE(text.find("\"label\": \"fork_tree\""), std::string::npos);
  EXPECT_NE(text.find("\"sweep\""), std::string::npos);
  EXPECT_EQ(count_lines_with(text, "{\"p\": "), sweep.size());
  EXPECT_NE(text.find("\"critical_path\""), std::string::npos);
  EXPECT_NE(text.find("\"collapsed\""), std::string::npos);
  EXPECT_GT(count_lines_with(text, "{\"stack\": "), 0u);
  long depth = 0;
  for (char c : text) {
    if (c == '{' || c == '[') ++depth;
    if (c == '}' || c == ']') --depth;
    ASSERT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
}

}  // namespace
}  // namespace dfth
