// Exporter tests: the Chrome trace is well-formed line-oriented JSON with
// one metadata lane per worker, the CSV carries the sampled curves, and the
// stats blob embeds every Breakdown category.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "obs/export.h"
#include "obs/trace.h"
#include "runtime/api.h"

namespace dfth {
namespace {

void fork_tree(int depth) {
  annotate_work(20);
  if (depth <= 1) return;
  auto left = spawn([depth]() -> void* {
    fork_tree(depth - 1);
    return nullptr;
  });
  join(left);
}

struct TracedRun {
  obs::Tracer tracer;
  RunStats stats;

  TracedRun() {
    RuntimeOptions o;
    o.engine = EngineKind::Sim;
    o.sched = SchedKind::AsyncDf;
    o.nprocs = 2;
    o.default_stack_size = 8 << 10;
    o.tracer = &tracer;
    stats = run(o, [] { fork_tree(6); });
  }
};

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

std::size_t count_lines_with(const std::string& text, const std::string& pat) {
  std::size_t n = 0;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (line.find(pat) != std::string::npos) ++n;
  }
  return n;
}

class ExportTest : public ::testing::Test {
 protected:
  std::string path(const char* suffix) {
    return ::testing::TempDir() + "dfth_export_" + suffix;
  }
};

TEST_F(ExportTest, BreakdownJsonListsEveryCategory) {
  Breakdown bd;
  bd.work_us = 1;
  bd.idle_us = 2;
  const std::string json = obs::to_json(bd);
  for (int c = 0; c < Breakdown::kNumCategories; ++c) {
    const std::string key =
        std::string("\"") + Breakdown::category_name(c) + "_us\"";
    EXPECT_NE(json.find(key), std::string::npos) << key;
  }
  EXPECT_NE(json.find("\"total_us\""), std::string::npos);
}

TEST_F(ExportTest, RunStatsJsonCarriesTheHeadlineFields) {
  TracedRun r;
  const std::string json = obs::to_json(r.stats);
  EXPECT_NE(json.find("\"engine\""), std::string::npos);
  EXPECT_NE(json.find("\"scheduler\""), std::string::npos);
  EXPECT_NE(json.find("\"heap_peak\""), std::string::npos);
  EXPECT_NE(json.find("\"max_live_threads\""), std::string::npos);
  EXPECT_NE(json.find("\"breakdown\""), std::string::npos);
}

TEST_F(ExportTest, ChromeTraceHasOneLanePerWorkerAndBalancedJson) {
  if (!obs::kTraceEnabled) GTEST_SKIP() << "built with DFTH_TRACE=OFF";
  TracedRun r;
  const std::string file = path("trace.json");
  ASSERT_TRUE(obs::write_chrome_trace(r.tracer, r.stats, file));
  const std::string text = slurp(file);
  std::remove(file.c_str());

  EXPECT_NE(text.find("\"traceEvents\""), std::string::npos);
  // One thread_name metadata record per lane.
  EXPECT_EQ(count_lines_with(text, "thread_name"),
            static_cast<std::size_t>(r.tracer.lanes()));
  EXPECT_GT(count_lines_with(text, "\"ph\": \"X\""), 0u);  // dispatch slices
  EXPECT_GT(count_lines_with(text, "\"ph\": \"C\""), 0u);  // counter tracks

  // Structurally balanced: Perfetto's parser needs matching brackets.
  long depth = 0;
  for (char c : text) {
    if (c == '{' || c == '[') ++depth;
    if (c == '}' || c == ']') --depth;
    ASSERT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
}

TEST_F(ExportTest, TimeseriesCsvHasHeaderAndOneRowPerSample) {
  if (!obs::kTraceEnabled) GTEST_SKIP() << "built with DFTH_TRACE=OFF";
  TracedRun r;
  const std::string file = path("series.csv");
  ASSERT_TRUE(obs::write_timeseries_csv(r.tracer, file));
  const std::string text = slurp(file);
  std::remove(file.c_str());

  EXPECT_EQ(text.rfind("ts_us,live_threads,heap_bytes,stack_bytes,ready", 0), 0u);
  EXPECT_EQ(count_lines_with(text, ","),
            r.tracer.samples().size() + 1);  // header + rows
}

TEST_F(ExportTest, StatsJsonEmbedsCountersAndWorksWithoutTracer) {
  TracedRun r;
  const std::string with_tracer = path("stats1.json");
  const std::string without = path("stats2.json");
  ASSERT_TRUE(obs::write_stats_json(r.stats, &r.tracer, with_tracer));
  ASSERT_TRUE(obs::write_stats_json(r.stats, nullptr, without));
  const std::string full = slurp(with_tracer);
  const std::string bare = slurp(without);
  std::remove(with_tracer.c_str());
  std::remove(without.c_str());

  EXPECT_NE(full.find("\"counters\""), std::string::npos);
  EXPECT_NE(full.find("\"trace\""), std::string::npos);
  EXPECT_NE(bare.find("\"stats\""), std::string::npos);
  EXPECT_EQ(bare.find("\"trace\""), std::string::npos);
}

}  // namespace
}  // namespace dfth
