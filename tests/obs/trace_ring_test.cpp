// TraceRing and Tracer mechanics: fixed capacity with counted (never
// silent) overflow, concurrent-writer safety, merge ordering, and the
// counter auto-bump contract.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "obs/trace.h"

namespace dfth::obs {
namespace {

TraceEvent ev(std::uint64_t ts, std::uint64_t tid) {
  TraceEvent e;
  e.ts_ns = ts;
  e.tid = tid;
  e.arg = tid;  // marker: arg must always equal tid (torn-write detector)
  e.kind = EvKind::Fork;
  return e;
}

TEST(TraceRingTest, KeepsEarliestAndCountsOverflowDrops) {
  TraceRing ring(8);
  for (std::uint64_t i = 0; i < 20; ++i) ring.push(ev(i, i));

  EXPECT_EQ(ring.capacity(), 8u);
  EXPECT_EQ(ring.size(), 8u);
  EXPECT_EQ(ring.dropped(), 12u);

  // Keep-earliest: the first 8 events survive, in write order.
  const std::vector<TraceEvent> events = ring.drain();
  ASSERT_EQ(events.size(), 8u);
  for (std::uint64_t i = 0; i < 8; ++i) {
    EXPECT_EQ(events[i].ts_ns, i);
    EXPECT_EQ(events[i].tid, i);
  }
}

TEST(TraceRingTest, NothingLostUnderConcurrentWriters) {
  constexpr int kWriters = 4;
  constexpr std::uint64_t kPerWriter = 5000;
  TraceRing ring(1 << 12);  // smaller than total pushes: forces overflow

  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&ring, w] {
      for (std::uint64_t i = 0; i < kPerWriter; ++i) {
        const std::uint64_t tag =
            (static_cast<std::uint64_t>(w) << 32) | i;
        ring.push(ev(i, tag));
      }
    });
  }
  for (auto& t : writers) t.join();

  // Every push is either stored or counted as dropped — none vanish.
  EXPECT_EQ(ring.size() + ring.dropped(), kWriters * kPerWriter);
  EXPECT_EQ(ring.size(), ring.capacity());

  // Keep-earliest makes each slot single-writer: no torn events.
  for (const TraceEvent& e : ring.drain()) {
    EXPECT_EQ(e.arg, e.tid);
    EXPECT_EQ(e.ts_ns, e.tid & 0xffffffffu);
  }
}

TEST(TracerTest, MergedIsSortedByTimestampAcrossLanes) {
  Tracer tr;
  tr.begin_run(3, [] { return std::uint64_t{0}; });
  // Interleave out-of-order timestamps across lanes.
  tr.emit_at(0, EvKind::Fork, 30, 1, 0);
  tr.emit_at(1, EvKind::Fork, 10, 2, 0);
  tr.emit_at(2, EvKind::Fork, 20, 3, 0);
  tr.emit_at(0, EvKind::Fork, 40, 4, 0);
  tr.end_run();

  const std::vector<TraceEvent> merged = tr.merged();
  ASSERT_EQ(merged.size(), 4u);
  for (std::size_t i = 1; i < merged.size(); ++i) {
    EXPECT_LE(merged[i - 1].ts_ns, merged[i].ts_ns);
  }
}

TEST(TracerTest, EmitBumpsTheKindMappedCounter) {
  Tracer tr;
  tr.begin_run(1, [] { return std::uint64_t{0}; });
  tr.emit(0, EvKind::Fork, 1, 2);
  tr.emit(0, EvKind::Dispatch, 1, 0);
  tr.emit(0, EvKind::Dispatch, 1, 1);
  // Steals are counted at the source (scheduler), not by emit — an emitted
  // Steal event must NOT double-bump the counter.
  tr.emit(0, EvKind::Steal, 1, 0);
  tr.end_run();

  EXPECT_EQ(tr.counter(Counter::Forks), 1u);
  EXPECT_EQ(tr.counter(Counter::Dispatches), 2u);
  EXPECT_EQ(tr.counter(Counter::Steals), 0u);
  EXPECT_EQ(tr.event_count(), 4u);
}

TEST(TracerTest, LaneOutOfRangeIsClampedNotDropped) {
  Tracer tr;
  tr.begin_run(2, [] { return std::uint64_t{0}; });
  tr.emit_at(-1, EvKind::Fork, 1, 1, 0);
  tr.emit_at(99, EvKind::Fork, 2, 2, 0);
  tr.end_run();
  EXPECT_EQ(tr.lane_events(0).size(), 1u);
  EXPECT_EQ(tr.lane_events(1).size(), 1u);
  EXPECT_EQ(tr.dropped(), 0u);
}

#if !DFTH_TRACE
// With tracing compiled out, the hook macros must expand to literally
// ((void)0) — no tracer symbol, no argument evaluation, zero cost.
#define DFTH_STR2(x) #x
#define DFTH_STR(x) DFTH_STR2(x)
static_assert(sizeof(DFTH_STR(DFTH_TRACE_EMIT(0, x, y, z))) == sizeof("((void)0)"),
              "DFTH_TRACE_EMIT must compile away");
static_assert(sizeof(DFTH_STR(DFTH_COUNT(x))) == sizeof("((void)0)"),
              "DFTH_COUNT must compile away");
static_assert(sizeof(DFTH_STR(DFTH_TRACE_ALLOC_EVENT(0, x, y, z))) ==
                  sizeof("((void)0)"),
              "DFTH_TRACE_ALLOC_EVENT must compile away");
static_assert(sizeof(DFTH_STR(DFTH_HIST(x, y))) == sizeof("((void)0)"),
              "DFTH_HIST must compile away");
static_assert(sizeof(DFTH_STR(DFTH_HIST_WAIT(x, y, z))) == sizeof("((void)0)"),
              "DFTH_HIST_WAIT must compile away");
#endif

}  // namespace
}  // namespace dfth::obs
