// Work/span profiler tests against analytically known DAGs, the exact
// SimEngine busy invariant (work + overhead == p * elapsed - idle), the
// Brent prediction bracket on a real app, and the exactness guarantees of
// the attribution outputs (critical-path segments sum to the span,
// collapsed stacks sum to the work).
#include "obs/profile.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <numeric>
#include <vector>

#include "apps/matmul/matmul.h"
#include "runtime/api.h"

namespace dfth {
namespace {

RuntimeOptions prof_opts(obs::Profiler* prof, int nprocs,
                         EngineKind engine = EngineKind::Sim,
                         SchedKind sched = SchedKind::AsyncDf) {
  RuntimeOptions o;
  o.engine = engine;
  o.sched = sched;
  o.nprocs = nprocs;
  o.default_stack_size = engine == EngineKind::Sim ? (8 << 10) : (64 << 10);
  o.profiler = prof;
  return o;
}

/// A chain: each node does `ops` work units (100 ops = 1 us of model
/// time), then spawns and immediately joins the next — the DAG is one
/// dependency chain, so parallelism is 1.
void serial_chain(int depth, std::uint64_t ops) {
  annotate_work(ops);
  if (depth <= 1) return;
  join(spawn([depth, ops]() -> void* {
    serial_chain(depth - 1, ops);
    return nullptr;
  }));
}

/// A balanced binary fork tree of 2^depth - 1 nodes, `ops` work units each:
/// work is (2^depth - 1) * w, span is depth * w, parallelism ~ n / log2(n).
void fork_tree(int depth, std::uint64_t ops) {
  annotate_work(ops);
  if (depth <= 1) return;
  auto left = spawn([depth, ops]() -> void* {
    fork_tree(depth - 1, ops);
    return nullptr;
  });
  auto right = spawn([depth, ops]() -> void* {
    fork_tree(depth - 1, ops);
    return nullptr;
  });
  join(left);
  join(right);
}

TEST(ProfileTest, SingleFiberWorkEqualsSpan) {
  if (!obs::kProfEnabled) GTEST_SKIP() << "built with DFTH_PROF=OFF";
  obs::Profiler prof;
  run(prof_opts(&prof, 1), [] { annotate_work(500); });
  const ProfileStats& p = prof.stats();
  EXPECT_TRUE(p.enabled);
  // One fiber means one chain: every charge is on the critical path.
  EXPECT_EQ(p.work_ns, p.span_ns);
  EXPECT_GT(p.span_ns, 0u);
  EXPECT_GE(p.burdened_span_ns, p.span_ns);
  EXPECT_EQ(p.fibers, 1u);
}

TEST(ProfileTest, SerialChainParallelismIsOne) {
  if (!obs::kProfEnabled) GTEST_SKIP() << "built with DFTH_PROF=OFF";
  obs::Profiler prof;
  run(prof_opts(&prof, 4), [] { serial_chain(64, 100000); });
  const ProfileStats& p = prof.stats();
  EXPECT_EQ(p.fibers, 64u);
  EXPECT_GE(p.work_ns, p.span_ns);
  // The DAG is a single dependency chain. The only off-span work is the
  // joiners' post-join bookkeeping (a few us per link, concurrent with the
  // child under AsyncDf's dive) — a sliver of the 1ms node bodies.
  EXPECT_NEAR(p.parallelism(), 1.0, 0.05);
}

TEST(ProfileTest, ForkTreeParallelismMatchesAnalytic) {
  if (!obs::kProfEnabled) GTEST_SKIP() << "built with DFTH_PROF=OFF";
  constexpr int kDepth = 7;
  obs::Profiler prof;
  run(prof_opts(&prof, 4), [] { fork_tree(kDepth, 30000); });
  const ProfileStats& p = prof.stats();
  EXPECT_EQ(p.fibers, (1u << kDepth) - 1);
  // n/log2(n) for the balanced tree: (2^d - 1) * w work, d * w span. The
  // 15% slack absorbs the fork/join charges around each 300us body.
  const double analytic =
      static_cast<double>((1 << kDepth) - 1) / static_cast<double>(kDepth);
  EXPECT_NEAR(p.parallelism(), analytic, 0.15 * analytic);
}

TEST(ProfileTest, SimBusyInvariantIsExact) {
  if (!obs::kProfEnabled) GTEST_SKIP() << "built with DFTH_PROF=OFF";
  for (int nprocs : {1, 4}) {
    obs::Profiler prof;
    const RunStats stats =
        run(prof_opts(&prof, nprocs), [] { fork_tree(6, 100); });
    const ProfileStats& p = prof.stats();
    // Every non-idle lane nanosecond is either a fiber charge (work) or a
    // lane-side scheduler span (overhead): p * elapsed == busy + idle.
    const double busy_us =
        static_cast<double>(p.work_ns + p.overhead_ns) / 1000.0;
    const double lane_us = nprocs * stats.elapsed_us - stats.breakdown.idle_us;
    // Tolerance covers only the ns -> us double rounding in the breakdown.
    EXPECT_NEAR(busy_us, lane_us, 1.0 + 1e-6 * lane_us) << "p=" << nprocs;
  }
}

TEST(ProfileTest, MatmulMeasuredFallsBetweenPredictions) {
  if (!obs::kProfEnabled) GTEST_SKIP() << "built with DFTH_PROF=OFF";
  apps::MatmulConfig cfg;
  cfg.n = 128;
  cfg.base = 32;
  std::vector<double> a(cfg.n * cfg.n), b(cfg.n * cfg.n), c(cfg.n * cfg.n);
  apps::matmul_fill(a.data(), cfg.n, 1);
  apps::matmul_fill(b.data(), cfg.n, 2);
  for (int p : {1, 4, 8}) {
    obs::Profiler prof;
    const RunStats stats = run(prof_opts(&prof, p), [&] {
      apps::matmul_threaded(a.data(), b.data(), c.data(), cfg);
    });
    const ProfileStats& ps = prof.stats();
    const double measured_ns = stats.elapsed_us * 1000.0;
    // The greedy lower bound and the burdened Brent upper bound bracket
    // what the simulator actually measured.
    EXPECT_LE(ps.predict_lo_ns(p), measured_ns * (1 + 1e-9)) << "p=" << p;
    EXPECT_GE(ps.predict_hi_ns(p), measured_ns * (1 - 1e-9)) << "p=" << p;
  }
}

TEST(ProfileTest, CriticalPathSegmentsSumToSpanExactly) {
  if (!obs::kProfEnabled) GTEST_SKIP() << "built with DFTH_PROF=OFF";
  obs::Profiler prof;
  run(prof_opts(&prof, 4), [] { fork_tree(6, 150); });
  const std::vector<obs::CritSegment> crit = prof.critical_path();
  ASSERT_FALSE(crit.empty());
  std::uint64_t sum = 0;
  for (const obs::CritSegment& seg : crit) {
    EXPECT_FALSE(seg.stack.empty());
    sum += seg.ns;
  }
  EXPECT_EQ(sum, prof.stats().span_ns);
}

TEST(ProfileTest, CollapsedStacksSumToWorkExactly) {
  if (!obs::kProfEnabled) GTEST_SKIP() << "built with DFTH_PROF=OFF";
  obs::Profiler prof;
  run(prof_opts(&prof, 4), [] { fork_tree(6, 150); });
  const std::vector<obs::CollapsedLine> lines = prof.collapsed();
  ASSERT_FALSE(lines.empty());
  std::uint64_t sum = 0;
  for (const obs::CollapsedLine& line : lines) {
    EXPECT_FALSE(line.stack.empty());
    // Folded format: semicolon-joined frames, rooted at "main".
    EXPECT_EQ(line.stack.rfind("main", 0), 0u) << line.stack;
    sum += line.work_ns;
  }
  EXPECT_EQ(sum, prof.stats().work_ns);
}

TEST(ProfileTest, ProfilerDoesNotChangeSimResults) {
  auto stats_for = [](obs::Profiler* prof) {
    return run(prof_opts(prof, 4), [] { fork_tree(6, 100); });
  };
  obs::Profiler prof;
  const RunStats profiled = stats_for(&prof);
  const RunStats plain = stats_for(nullptr);
  // Profiling is observation only: virtual time and aggregates match.
  EXPECT_EQ(profiled.elapsed_us, plain.elapsed_us);
  EXPECT_EQ(profiled.threads_created, plain.threads_created);
  EXPECT_EQ(profiled.dispatches, plain.dispatches);
  EXPECT_EQ(profiled.heap_peak, plain.heap_peak);
}

TEST(ProfileTest, ProfilerIsReusableAcrossRuns) {
  if (!obs::kProfEnabled) GTEST_SKIP() << "built with DFTH_PROF=OFF";
  obs::Profiler prof;
  run(prof_opts(&prof, 2), [] { fork_tree(5, 100); });
  const std::uint64_t first_work = prof.stats().work_ns;
  run(prof_opts(&prof, 2), [] { fork_tree(5, 100); });
  // begin_run clears the previous session instead of accumulating into it.
  EXPECT_EQ(prof.stats().work_ns, first_work);
}

TEST(ProfileTest, RealEngineProfileIsPlausible) {
  if (!obs::kProfEnabled) GTEST_SKIP() << "built with DFTH_PROF=OFF";
  obs::Profiler prof;
  const RunStats stats = run(prof_opts(&prof, 2, EngineKind::Real),
                             [] { fork_tree(6, 0); });
  const ProfileStats& p = prof.stats();
  EXPECT_TRUE(p.enabled);
  EXPECT_EQ(p.fibers, stats.threads_created);
  // Steady-clock charges across kernel threads: no exact identities, but
  // the ordering invariants must still hold.
  EXPECT_GT(p.span_ns, 0u);
  EXPECT_GE(p.work_ns, p.span_ns);
  EXPECT_GE(p.burdened_span_ns, p.span_ns);
}

TEST(ProfileTest, StatsMergedIntoRunStats) {
  if (!obs::kProfEnabled) GTEST_SKIP() << "built with DFTH_PROF=OFF";
  obs::Profiler prof;
  const RunStats stats = run(prof_opts(&prof, 2), [] { fork_tree(4, 100); });
  EXPECT_TRUE(stats.profile.enabled);
  EXPECT_EQ(stats.profile.work_ns, prof.stats().work_ns);
  EXPECT_EQ(stats.profile.span_ns, prof.stats().span_ns);
  // Without a profiler the embedded struct stays disabled and zeroed.
  const RunStats bare = run(prof_opts(nullptr, 2), [] { fork_tree(4, 100); });
  EXPECT_FALSE(bare.profile.enabled);
  EXPECT_EQ(bare.profile.work_ns, 0u);
}

#if !DFTH_PROF
// With profiling compiled out, the hook macros must expand to literally
// ((void)0) — no profiler symbol, no argument evaluation, zero cost.
#define DFTH_PROF_STR2(x) #x
#define DFTH_PROF_STR(x) DFTH_PROF_STR2(x)
static_assert(sizeof(DFTH_PROF_STR(DFTH_PROF_THREAD_START(a, b, c, d, e))) ==
                  sizeof("((void)0)"),
              "DFTH_PROF_THREAD_START must compile away");
static_assert(sizeof(DFTH_PROF_STR(DFTH_PROF_WORK(a, b))) ==
                  sizeof("((void)0)"),
              "DFTH_PROF_WORK must compile away");
static_assert(sizeof(DFTH_PROF_STR(DFTH_PROF_OVERHEAD(a, b))) ==
                  sizeof("((void)0)"),
              "DFTH_PROF_OVERHEAD must compile away");
static_assert(sizeof(DFTH_PROF_STR(DFTH_PROF_DISPATCH(a, b, c))) ==
                  sizeof("((void)0)"),
              "DFTH_PROF_DISPATCH must compile away");
static_assert(sizeof(DFTH_PROF_STR(DFTH_PROF_FORK_COST(a, b))) ==
                  sizeof("((void)0)"),
              "DFTH_PROF_FORK_COST must compile away");
static_assert(sizeof(DFTH_PROF_STR(DFTH_PROF_JOIN(a, b, c))) ==
                  sizeof("((void)0)"),
              "DFTH_PROF_JOIN must compile away");
static_assert(sizeof(DFTH_PROF_STR(DFTH_PROF_WAKE(a, b, c))) ==
                  sizeof("((void)0)"),
              "DFTH_PROF_WAKE must compile away");
static_assert(sizeof(DFTH_PROF_STR(DFTH_PROF_STEAL(a, b))) ==
                  sizeof("((void)0)"),
              "DFTH_PROF_STEAL must compile away");
static_assert(sizeof(DFTH_PROF_STR(DFTH_PROF_EXIT(a, b))) ==
                  sizeof("((void)0)"),
              "DFTH_PROF_EXIT must compile away");
#endif

}  // namespace
}  // namespace dfth
