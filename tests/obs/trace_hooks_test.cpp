// Engine-integration tests for the tracing hooks: a traced SimEngine run
// records the events and samples the figures need, a traced RealEngine run
// keeps per-lane timestamps monotone, and composing a tracer with a run
// changes none of the results.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>

#include "obs/trace.h"
#include "runtime/api.h"

namespace dfth {
namespace {

void fork_tree(int depth) {
  annotate_work(20);
  if (depth <= 1) return;
  auto left = spawn([depth]() -> void* {
    fork_tree(depth - 1);
    return nullptr;
  });
  auto right = spawn([depth]() -> void* {
    fork_tree(depth - 1);
    return nullptr;
  });
  join(left);
  join(right);
}

RuntimeOptions base_opts(EngineKind engine, SchedKind sched) {
  RuntimeOptions o;
  o.engine = engine;
  o.sched = sched;
  o.nprocs = 4;
  o.default_stack_size = engine == EngineKind::Sim ? (8 << 10) : (64 << 10);
  return o;
}

TEST(TraceHooksTest, SimRunRecordsEventsAndSamples) {
  if (!obs::kTraceEnabled) GTEST_SKIP() << "built with DFTH_TRACE=OFF";
  obs::Tracer tracer;
  RuntimeOptions o = base_opts(EngineKind::Sim, SchedKind::AsyncDf);
  o.tracer = &tracer;
  const RunStats stats = run(o, [] { fork_tree(6); });

  EXPECT_EQ(tracer.lanes(), o.nprocs);
  EXPECT_GT(tracer.event_count(), 0u);

  // Every spawn is a Fork event; the root thread is created without one.
  EXPECT_EQ(tracer.counter(obs::Counter::Forks) +
                tracer.counter(obs::Counter::DummySpawns),
            stats.threads_created - 1);
  EXPECT_EQ(tracer.counter(obs::Counter::Dispatches), stats.dispatches);
  EXPECT_EQ(tracer.counter(obs::Counter::Exits), stats.threads_created);

  // The time series brackets the run and tops out at the recorded peak.
  ASSERT_FALSE(tracer.samples().empty());
  std::int64_t peak_live = 0, peak_ready = 0;
  std::uint64_t prev_ts = 0;
  for (const obs::Sample& s : tracer.samples()) {
    EXPECT_GE(s.ts_ns, prev_ts);
    prev_ts = s.ts_ns;
    peak_live = std::max(peak_live, s.live_threads);
    peak_ready = std::max(peak_ready, s.ready);
  }
  EXPECT_GT(peak_live, 0);
  EXPECT_LE(peak_live, stats.max_live_threads);
  EXPECT_GT(peak_ready, 0);
}

TEST(TraceHooksTest, SimTraceShowsFifoLivePeakAboveAsyncDf) {
  if (!obs::kTraceEnabled) GTEST_SKIP() << "built with DFTH_TRACE=OFF";
  auto peak_live = [](SchedKind sched) {
    obs::Tracer tracer;
    RuntimeOptions o = base_opts(EngineKind::Sim, sched);
    o.nprocs = 1;
    o.tracer = &tracer;
    run(o, [] { fork_tree(9); });
    std::int64_t peak = 0;
    for (const obs::Sample& s : tracer.samples()) {
      peak = std::max(peak, s.live_threads);
    }
    return peak;
  };
  // The Figure 1 shape: FIFO keeps the whole frontier live, depth-first
  // order keeps roughly one root-to-leaf path.
  EXPECT_GT(peak_live(SchedKind::Fifo), 4 * peak_live(SchedKind::AsyncDf));
}

TEST(TraceHooksTest, SimDispatchTimestampsMonotonePerLane) {
  if (!obs::kTraceEnabled) GTEST_SKIP() << "built with DFTH_TRACE=OFF";
  obs::Tracer tracer;
  RuntimeOptions o = base_opts(EngineKind::Sim, SchedKind::WorkSteal);
  o.tracer = &tracer;
  run(o, [] { fork_tree(7); });
  for (int lane = 0; lane < tracer.lanes(); ++lane) {
    std::uint64_t prev = 0;
    for (const obs::TraceEvent& e : tracer.lane_events(lane)) {
      EXPECT_GE(e.ts_ns, prev) << "lane " << lane;
      prev = e.ts_ns;
    }
  }
}

TEST(TraceHooksTest, RealRunTracesWithMonotoneWorkerLanes) {
  if (!obs::kTraceEnabled) GTEST_SKIP() << "built with DFTH_TRACE=OFF";
  obs::Tracer tracer;
  RuntimeOptions o = base_opts(EngineKind::Real, SchedKind::AsyncDf);
  o.tracer = &tracer;
  const RunStats stats = run(o, [] { fork_tree(6); });

  // nprocs worker lanes plus the shared external lane.
  EXPECT_EQ(tracer.lanes(), o.nprocs + 1);
  EXPECT_GT(tracer.event_count(), 0u);
  EXPECT_EQ(tracer.counter(obs::Counter::Forks), stats.threads_created - 1);

  // Worker lanes are single-writer: steady-clock timestamps are monotone.
  for (int lane = 0; lane < o.nprocs; ++lane) {
    std::uint64_t prev = 0;
    for (const obs::TraceEvent& e : tracer.lane_events(lane)) {
      EXPECT_GE(e.ts_ns, prev) << "lane " << lane;
      prev = e.ts_ns;
    }
  }
}

TEST(TraceHooksTest, TracerDoesNotChangeSimResults) {
  auto stats_for = [](obs::Tracer* tracer) {
    RuntimeOptions o = base_opts(EngineKind::Sim, SchedKind::AsyncDf);
    o.tracer = tracer;
    return run(o, [] { fork_tree(6); });
  };
  obs::Tracer tracer;
  const RunStats traced = stats_for(&tracer);
  const RunStats plain = stats_for(nullptr);
  // Tracing is observation only: virtual time and all aggregates match.
  EXPECT_EQ(traced.elapsed_us, plain.elapsed_us);
  EXPECT_EQ(traced.threads_created, plain.threads_created);
  EXPECT_EQ(traced.max_live_threads, plain.max_live_threads);
  EXPECT_EQ(traced.heap_peak, plain.heap_peak);
  EXPECT_EQ(traced.dispatches, plain.dispatches);
}

TEST(TraceHooksTest, TracerIsReusableAcrossRuns) {
  if (!obs::kTraceEnabled) GTEST_SKIP() << "built with DFTH_TRACE=OFF";
  obs::Tracer tracer;
  RuntimeOptions o = base_opts(EngineKind::Sim, SchedKind::AsyncDf);
  o.tracer = &tracer;
  run(o, [] { fork_tree(5); });
  const std::size_t first = tracer.event_count();
  run(o, [] { fork_tree(5); });
  // begin_run clears the previous session instead of appending to it.
  EXPECT_EQ(tracer.event_count(), first);
}

}  // namespace
}  // namespace dfth
