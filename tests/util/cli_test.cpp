#include "util/cli.h"

#include <gtest/gtest.h>

#include <vector>

namespace dfth {
namespace {

// argv builder (non-const char* as main() receives).
struct Argv {
  explicit Argv(std::vector<std::string> args) : storage(std::move(args)) {
    ptrs.push_back(prog);
    for (auto& s : storage) ptrs.push_back(s.data());
  }
  int argc() const { return static_cast<int>(ptrs.size()); }
  char** argv() { return ptrs.data(); }

  char prog[5] = "test";
  std::vector<std::string> storage;
  std::vector<char*> ptrs;
};

TEST(Cli, DefaultsWhenUnset) {
  Cli cli("t", "test");
  auto* n = cli.int_opt("n", 42, "");
  auto* f = cli.flag("fast", false, "");
  Argv a({});
  EXPECT_TRUE(cli.parse(a.argc(), a.argv()));
  EXPECT_EQ(*n, 42);
  EXPECT_FALSE(*f);
}

TEST(Cli, ParsesSeparateAndEqualsForms) {
  Cli cli("t", "test");
  auto* n = cli.int_opt("n", 0, "");
  auto* r = cli.double_opt("rate", 0.0, "");
  auto* s = cli.str_opt("name", "", "");
  Argv a({"--n", "7", "--rate=2.5", "--name=matmul"});
  EXPECT_TRUE(cli.parse(a.argc(), a.argv()));
  EXPECT_EQ(*n, 7);
  EXPECT_DOUBLE_EQ(*r, 2.5);
  EXPECT_EQ(*s, "matmul");
}

TEST(Cli, BareBooleanFlag) {
  Cli cli("t", "test");
  auto* f = cli.flag("full", false, "");
  Argv a({"--full"});
  EXPECT_TRUE(cli.parse(a.argc(), a.argv()));
  EXPECT_TRUE(*f);
}

TEST(Cli, BooleanExplicitValue) {
  Cli cli("t", "test");
  auto* f = cli.flag("full", true, "");
  Argv a({"--full=false"});
  EXPECT_TRUE(cli.parse(a.argc(), a.argv()));
  EXPECT_FALSE(*f);
}

TEST(Cli, HelpReturnsFalse) {
  Cli cli("t", "test");
  Argv a({"--help"});
  EXPECT_FALSE(cli.parse(a.argc(), a.argv()));
}

TEST(Cli, UnknownFlagDies) {
  Cli cli("t", "test");
  Argv a({"--bogus", "1"});
  EXPECT_EXIT(cli.parse(a.argc(), a.argv()), ::testing::ExitedWithCode(2), "unknown");
}

TEST(Cli, BadIntegerDies) {
  Cli cli("t", "test");
  cli.int_opt("n", 0, "");
  Argv a({"--n", "abc"});
  EXPECT_EXIT(cli.parse(a.argc(), a.argv()), ::testing::ExitedWithCode(2), "bad integer");
}

TEST(Cli, NegativeAndHexIntegers) {
  Cli cli("t", "test");
  auto* n = cli.int_opt("n", 0, "");
  auto* k = cli.int_opt("k", 0, "");
  Argv a({"--n", "-12", "--k", "0x40"});
  EXPECT_TRUE(cli.parse(a.argc(), a.argv()));
  EXPECT_EQ(*n, -12);
  EXPECT_EQ(*k, 64);
}

}  // namespace
}  // namespace dfth
