#include "util/table.h"

#include <gtest/gtest.h>

#include <cstdio>

namespace dfth {
namespace {

TEST(Table, AlignsColumns) {
  Table t({"name", "value"});
  t.add_row({"x", "1"});
  t.add_row({"longer-name", "23456"});
  const std::string s = t.to_string();
  // Both data lines end at an aligned "value" column.
  EXPECT_NE(s.find("name"), std::string::npos);
  EXPECT_NE(s.find("longer-name"), std::string::npos);
  EXPECT_NE(s.find("-----"), std::string::npos);
}

TEST(Table, FormatHelpers) {
  EXPECT_EQ(Table::fmt(3.14159, 2), "3.14");
  EXPECT_EQ(Table::fmt_int(-7), "-7");
  EXPECT_EQ(Table::fmt_bytes(512), "512 B");
  EXPECT_EQ(Table::fmt_bytes(2048), "2.0 KB");
  EXPECT_EQ(Table::fmt_bytes(3 << 20), "3.0 MB");
  EXPECT_EQ(Table::fmt_bytes(5LL << 30), "5.00 GB");
}

TEST(Table, CsvRoundTrip) {
  Table t({"a", "b"});
  t.add_row({"1", "2"});
  t.add_row({"3", "4"});
  const std::string path = ::testing::TempDir() + "/dfth_table_test.csv";
  ASSERT_TRUE(t.write_csv(path));
  std::FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  char buf[256];
  ASSERT_NE(std::fgets(buf, sizeof buf, f), nullptr);
  EXPECT_STREQ(buf, "a,b\n");
  ASSERT_NE(std::fgets(buf, sizeof buf, f), nullptr);
  EXPECT_STREQ(buf, "1,2\n");
  std::fclose(f);
  std::remove(path.c_str());
}

TEST(Table, RowWidthMismatchAborts) {
  Table t({"a", "b"});
  EXPECT_DEATH(t.add_row({"only-one"}), "row width");
}

}  // namespace
}  // namespace dfth
