#include "util/rng.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

namespace dfth {
namespace {

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(123), b(123);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, ReseedRestartsSequence) {
  Rng rng(7);
  const auto first = rng.next_u64();
  rng.next_u64();
  rng.reseed(7);
  EXPECT_EQ(rng.next_u64(), first);
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next_u64() == b.next_u64());
  EXPECT_LT(same, 2);
}

TEST(Rng, NextBelowRespectsBound) {
  Rng rng(99);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(rng.next_below(17), 17u);
}

TEST(Rng, NextBelowCoversRange) {
  Rng rng(5);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.next_below(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, NextRangeInclusive) {
  Rng rng(11);
  bool lo_hit = false, hi_hit = false;
  for (int i = 0; i < 5000; ++i) {
    const auto v = rng.next_range(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    lo_hit |= (v == -3);
    hi_hit |= (v == 3);
  }
  EXPECT_TRUE(lo_hit);
  EXPECT_TRUE(hi_hit);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(42);
  double sum = 0;
  for (int i = 0; i < 20000; ++i) {
    const double v = rng.next_double();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 20000.0, 0.5, 0.02);
}

TEST(Rng, GaussianMoments) {
  Rng rng(43);
  double sum = 0, sq = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.next_gaussian();
    sum += v;
    sq += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(Rng, ForkStreamIndependent) {
  Rng base(7);
  Rng s0 = base.fork_stream(0);
  Rng s1 = base.fork_stream(1);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (s0.next_u64() == s1.next_u64());
  EXPECT_LT(same, 2);
  // Deterministic: re-forking yields the same stream.
  Rng s0b = base.fork_stream(0);
  Rng s0c = base.fork_stream(0);
  for (int i = 0; i < 64; ++i) EXPECT_EQ(s0b.next_u64(), s0c.next_u64());
}

}  // namespace
}  // namespace dfth
