#include "util/stats.h"

#include <gtest/gtest.h>

namespace dfth {
namespace {

TEST(RunningStat, BasicMoments) {
  RunningStat s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_NEAR(s.stddev(), 2.138, 1e-3);  // sample stddev
}

TEST(RunningStat, EmptyIsZero) {
  RunningStat s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.stddev(), 0.0);
}

TEST(RunningStat, MergeMatchesCombined) {
  RunningStat a, b, all;
  for (int i = 0; i < 100; ++i) {
    const double v = i * 0.37 - 5.0;
    (i % 2 ? a : b).add(v);
    all.add(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(Histogram, BucketsAndOverflow) {
  Histogram h(0.0, 10.0, 10);
  for (int i = 0; i < 10; ++i) h.add(i + 0.5);
  h.add(-1.0);
  h.add(42.0);
  EXPECT_EQ(h.total(), 12u);
  for (std::size_t i = 0; i < 10; ++i) EXPECT_EQ(h.bucket(i), 1u);
}

TEST(Histogram, PercentileMonotone) {
  Histogram h(0.0, 100.0, 100);
  for (int i = 0; i < 1000; ++i) h.add(static_cast<double>(i % 100));
  EXPECT_LE(h.percentile(10), h.percentile(50));
  EXPECT_LE(h.percentile(50), h.percentile(90));
  EXPECT_NEAR(h.percentile(50), 50.0, 2.0);
}

TEST(HighWater, TracksPeak) {
  HighWater hw;
  hw.add(100);
  hw.add(-40);
  hw.add(30);
  EXPECT_EQ(hw.current(), 90);
  EXPECT_EQ(hw.peak(), 100);
  hw.add(50);
  EXPECT_EQ(hw.peak(), 140);
  hw.reset();
  EXPECT_EQ(hw.current(), 0);
  EXPECT_EQ(hw.peak(), 0);
}

}  // namespace
}  // namespace dfth
