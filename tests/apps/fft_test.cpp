// FFT correctness: against the naive DFT, inverse round trips, Parseval,
// and scheduler/thread-count insensitivity of the result.
#include "apps/fft/fft.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "runtime/api.h"

namespace dfth {
namespace {

using apps::Complex;
using apps::FftPlan;

class FftSizeTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FftSizeTest, SerialMatchesNaiveDft) {
  const std::size_t n = GetParam();
  std::vector<Complex> in(n), out(n), oracle(n);
  apps::fft_fill(in.data(), n, n);
  FftPlan plan(n);
  plan.execute_serial(in.data(), out.data());
  apps::naive_dft(in.data(), oracle.data(), n);
  EXPECT_LT(apps::fft_max_abs_diff(out.data(), oracle.data(), n),
            1e-9 * static_cast<double>(n));
}

INSTANTIATE_TEST_SUITE_P(PowersOfTwo, FftSizeTest,
                         ::testing::Values(1, 2, 4, 8, 16, 64, 256, 1024));

TEST(Fft, InverseRoundTrip) {
  const std::size_t n = 4096;
  std::vector<Complex> in(n), freq(n), back(n);
  apps::fft_fill(in.data(), n, 5);
  FftPlan fwd(n), inv(n, /*inverse=*/true);
  fwd.execute_serial(in.data(), freq.data());
  inv.execute_serial(freq.data(), back.data());
  for (auto& v : back) v /= static_cast<double>(n);
  EXPECT_LT(apps::fft_max_abs_diff(in.data(), back.data(), n), 1e-10);
}

TEST(Fft, Parseval) {
  const std::size_t n = 1 << 14;
  std::vector<Complex> in(n), out(n);
  apps::fft_fill(in.data(), n, 9);
  FftPlan plan(n);
  plan.execute_serial(in.data(), out.data());
  double time_energy = 0, freq_energy = 0;
  for (std::size_t i = 0; i < n; ++i) {
    time_energy += std::norm(in[i]);
    freq_energy += std::norm(out[i]);
  }
  EXPECT_NEAR(freq_energy / static_cast<double>(n), time_energy,
              1e-8 * time_energy);
}

struct FftThreadParam {
  SchedKind sched;
  int nthreads;
};

class FftThreadedTest : public ::testing::TestWithParam<FftThreadParam> {};

TEST_P(FftThreadedTest, ThreadedMatchesSerial) {
  const std::size_t n = 1 << 12;
  std::vector<Complex> in(n), serial(n), parallel(n);
  apps::fft_fill(in.data(), n, 11);
  FftPlan plan(n);
  plan.execute_serial(in.data(), serial.data());

  RuntimeOptions o;
  o.engine = EngineKind::Sim;
  o.sched = GetParam().sched;
  o.nprocs = 4;
  o.default_stack_size = 8 << 10;
  RunStats stats = run(o, [&] {
    plan.execute_threaded(in.data(), parallel.data(), GetParam().nthreads);
  });
  EXPECT_LT(apps::fft_max_abs_diff(serial.data(), parallel.data(), n), 1e-12);
  // FFTW's model: nthreads - 1 forks (plus the main thread).
  EXPECT_EQ(stats.threads_created,
            static_cast<std::uint64_t>(GetParam().nthreads));
}

INSTANTIATE_TEST_SUITE_P(
    SchedsAndCounts, FftThreadedTest,
    ::testing::Values(FftThreadParam{SchedKind::Fifo, 4},
                      FftThreadParam{SchedKind::AsyncDf, 4},
                      FftThreadParam{SchedKind::AsyncDf, 256},
                      FftThreadParam{SchedKind::Fifo, 256},
                      FftThreadParam{SchedKind::WorkSteal, 16},
                      FftThreadParam{SchedKind::Lifo, 7}),
    [](const ::testing::TestParamInfo<FftThreadParam>& info) {
      return std::string(to_string(info.param.sched)) + "_" +
             std::to_string(info.param.nthreads);
    });

TEST(Fft, ThreadedOnRealEngine) {
  const std::size_t n = 1 << 12;
  std::vector<Complex> in(n), serial(n), parallel(n);
  apps::fft_fill(in.data(), n, 13);
  FftPlan plan(n);
  plan.execute_serial(in.data(), serial.data());
  RuntimeOptions o;
  o.engine = EngineKind::Real;
  o.nprocs = 4;
  run(o, [&] { plan.execute_threaded(in.data(), parallel.data(), 32); });
  EXPECT_LT(apps::fft_max_abs_diff(serial.data(), parallel.data(), n), 1e-12);
}

TEST(Fft, TotalOpsFormula) {
  EXPECT_EQ(apps::fft_total_ops(8), 5u * 8 * 3);
  EXPECT_EQ(apps::fft_total_ops(1 << 20), 5ull * (1 << 20) * 20);
}

}  // namespace
}  // namespace dfth
