// Barnes-Hut: Plummer generator, tree forces vs direct summation, and the
// three versions (serial / costzones-coarse / fine) agreeing.
#include "apps/barnes/barnes.h"

#include <gtest/gtest.h>

#include <cmath>

#include "runtime/api.h"

namespace dfth {
namespace {

using apps::BarnesConfig;
using apps::Body;

BarnesConfig small_config() {
  BarnesConfig cfg;
  cfg.bodies = 1500;
  cfg.timesteps = 1;
  return cfg;
}

TEST(BarnesGenerate, PlummerProperties) {
  BarnesConfig cfg = small_config();
  cfg.bodies = 20000;
  const auto bodies = apps::barnes_generate(cfg);
  ASSERT_EQ(bodies.size(), cfg.bodies);
  double total_mass = 0;
  double com[3] = {0, 0, 0};
  std::size_t inside_unit = 0;
  for (const auto& b : bodies) {
    total_mass += b.mass;
    for (int d = 0; d < 3; ++d) com[d] += b.mass * b.pos[d];
    const double r2 =
        b.pos[0] * b.pos[0] + b.pos[1] * b.pos[1] + b.pos[2] * b.pos[2];
    inside_unit += (r2 < 1.0);
  }
  EXPECT_NEAR(total_mass, 1.0, 1e-9);
  for (double c : com) EXPECT_NEAR(c, 0.0, 0.05);
  // Plummer: ~35% of the mass lies within the scale radius (r < 1).
  const double frac =
      static_cast<double>(inside_unit) / static_cast<double>(cfg.bodies);
  EXPECT_GT(frac, 0.25);
  EXPECT_LT(frac, 0.45);
}

TEST(BarnesGenerate, Deterministic) {
  BarnesConfig cfg = small_config();
  const auto a = apps::barnes_generate(cfg);
  const auto b = apps::barnes_generate(cfg);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].pos[0], b[i].pos[0]);
    EXPECT_EQ(a[i].vel[2], b[i].vel[2]);
  }
}

TEST(BarnesSerial, TreeForcesApproximateDirect) {
  BarnesConfig cfg = small_config();
  cfg.theta = 0.5;
  auto bodies = apps::barnes_generate(cfg);
  auto reference = bodies;
  apps::barnes_direct_forces(reference, cfg);

  // One force evaluation: run 1 step with dt=0 so positions stay put.
  BarnesConfig frozen = cfg;
  frozen.dt = 0.0;
  const auto result = apps::barnes_serial(bodies, frozen);
  const double err = apps::barnes_max_rel_acc_error(result.bodies, reference);
  EXPECT_LT(err, 0.05);  // theta=0.5 multipole acceptance
  EXPECT_GT(result.interactions, bodies.size());  // nontrivial traversal
  // Fewer interactions than direct N^2 even at this small N...
  EXPECT_LT(result.interactions, bodies.size() * bodies.size());
  // ...and the growth is subquadratic (doubling N must much less than
  // quadruple the interactions — the O(N log N) tree at work).
  BarnesConfig big = frozen;
  big.bodies = 2 * cfg.bodies;
  auto big_bodies = apps::barnes_generate(big);
  const auto big_result = apps::barnes_serial(big_bodies, big);
  EXPECT_LT(static_cast<double>(big_result.interactions),
            3.6 * static_cast<double>(result.interactions));
}

struct BarnesParam {
  EngineKind engine;
  SchedKind sched;
};

class BarnesParallelTest : public ::testing::TestWithParam<BarnesParam> {};

TEST_P(BarnesParallelTest, FineMatchesSerial) {
  BarnesConfig cfg = small_config();
  auto bodies = apps::barnes_generate(cfg);
  const auto serial = apps::barnes_serial(bodies, cfg);

  RuntimeOptions o;
  o.engine = GetParam().engine;
  o.sched = GetParam().sched;
  o.nprocs = 4;
  o.default_stack_size = 8 << 10;
  apps::BarnesResult fine;
  run(o, [&] { fine = apps::barnes_fine(bodies, cfg); });
  ASSERT_EQ(fine.bodies.size(), serial.bodies.size());
  // Same tree => same interaction multiset; leaf summation order may differ,
  // so positions agree to fp-accumulation tolerance.
  EXPECT_EQ(fine.interactions, serial.interactions);
  double worst = 0;
  for (std::size_t i = 0; i < fine.bodies.size(); ++i) {
    for (int d = 0; d < 3; ++d) {
      worst = std::max(worst,
                       std::fabs(fine.bodies[i].pos[d] - serial.bodies[i].pos[d]));
    }
  }
  EXPECT_LT(worst, 1e-9);
}

TEST_P(BarnesParallelTest, CoarseMatchesSerial) {
  BarnesConfig cfg = small_config();
  auto bodies = apps::barnes_generate(cfg);
  const auto serial = apps::barnes_serial(bodies, cfg);

  RuntimeOptions o;
  o.engine = GetParam().engine;
  o.sched = GetParam().sched;
  o.nprocs = 4;
  o.default_stack_size = 8 << 10;
  apps::BarnesResult coarse;
  run(o, [&] { coarse = apps::barnes_coarse(bodies, cfg, 4); });
  EXPECT_EQ(coarse.interactions, serial.interactions);
  double worst = 0;
  for (std::size_t i = 0; i < coarse.bodies.size(); ++i) {
    for (int d = 0; d < 3; ++d) {
      worst = std::max(
          worst, std::fabs(coarse.bodies[i].pos[d] - serial.bodies[i].pos[d]));
    }
  }
  EXPECT_LT(worst, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    EnginesSchedulers, BarnesParallelTest,
    ::testing::Values(BarnesParam{EngineKind::Sim, SchedKind::AsyncDf},
                      BarnesParam{EngineKind::Sim, SchedKind::Fifo},
                      BarnesParam{EngineKind::Real, SchedKind::AsyncDf},
                      BarnesParam{EngineKind::Real, SchedKind::WorkSteal}),
    [](const ::testing::TestParamInfo<BarnesParam>& info) {
      return std::string(to_string(info.param.engine)) + "_" +
             to_string(info.param.sched);
    });

TEST(Barnes, EnergyRoughlyConservedOverSteps) {
  BarnesConfig cfg = small_config();
  cfg.bodies = 800;
  cfg.timesteps = 5;
  auto bodies = apps::barnes_generate(cfg);
  const double e0 = apps::barnes_total_energy(bodies, cfg.eps);
  const auto result = apps::barnes_serial(bodies, cfg);
  const double e1 = apps::barnes_total_energy(result.bodies, cfg.eps);
  // Leapfrog + tree approximation: small drift expected, blowup is a bug.
  EXPECT_LT(std::fabs(e1 - e0), 0.15 * std::fabs(e0) + 0.02);
}

}  // namespace
}  // namespace dfth
