// FMM: expansion accuracy against direct summation (convergence in the term
// count) and serial/threaded equivalence.
#include "apps/fmm/fmm.h"

#include <gtest/gtest.h>

#include "runtime/api.h"

namespace dfth {
namespace {

using apps::FmmConfig;

FmmConfig small_config() {
  FmmConfig cfg;
  cfg.particles = 1200;
  cfg.levels = 3;
  cfg.terms = 12;
  cfg.chunk = 9;
  return cfg;
}

TEST(FmmGenerate, UniformAndDeterministic) {
  FmmConfig cfg = small_config();
  const auto a = apps::fmm_generate(cfg);
  const auto b = apps::fmm_generate(cfg);
  ASSERT_EQ(a.size(), cfg.particles);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].x, b[i].x);
    EXPECT_EQ(a[i].charge, b[i].charge);
    EXPECT_GE(a[i].x, 0.0);
    EXPECT_LT(a[i].x, 1.0);
  }
}

TEST(FmmSerial, MatchesDirectSummation) {
  FmmConfig cfg = small_config();
  auto particles = apps::fmm_generate(cfg);
  auto reference = particles;
  apps::fmm_direct(reference);
  apps::fmm_serial(particles, cfg);
  EXPECT_LT(apps::fmm_max_rel_error(particles, reference), 2e-4);
}

TEST(FmmSerial, ErrorShrinksWithTerms) {
  FmmConfig cfg = small_config();
  auto reference = apps::fmm_generate(cfg);
  apps::fmm_direct(reference);

  double prev_err = 1e9;
  for (int terms : {2, 6, 14}) {
    FmmConfig c = cfg;
    c.terms = terms;
    auto particles = apps::fmm_generate(cfg);
    apps::fmm_serial(particles, c);
    const double err = apps::fmm_max_rel_error(particles, reference);
    EXPECT_LT(err, prev_err) << "terms=" << terms;
    prev_err = err;
  }
  EXPECT_LT(prev_err, 1e-4);
}

TEST(FmmSerial, PaperParametersReasonableAccuracy) {
  // The paper's settings: 5 terms. 2-D well-separatedness gives ~2^-p.
  FmmConfig cfg = small_config();
  cfg.terms = 5;
  auto particles = apps::fmm_generate(cfg);
  auto reference = particles;
  apps::fmm_direct(reference);
  apps::fmm_serial(particles, cfg);
  EXPECT_LT(apps::fmm_max_rel_error(particles, reference), 0.05);
}

struct FmmParam {
  EngineKind engine;
  SchedKind sched;
};

class FmmParallelTest : public ::testing::TestWithParam<FmmParam> {};

TEST_P(FmmParallelTest, ThreadedMatchesSerial) {
  FmmConfig cfg = small_config();
  auto serial_particles = apps::fmm_generate(cfg);
  apps::fmm_serial(serial_particles, cfg);

  auto threaded_particles = apps::fmm_generate(cfg);
  RuntimeOptions o;
  o.engine = GetParam().engine;
  o.sched = GetParam().sched;
  o.nprocs = 4;
  o.default_stack_size = 8 << 10;
  RunStats stats = run(o, [&] { apps::fmm_threaded(threaded_particles, cfg); });
  // Expansion sums may associate differently across chunked threads; the
  // values must agree to accumulation tolerance.
  double worst = 0;
  for (std::size_t i = 0; i < serial_particles.size(); ++i) {
    worst = std::max(worst, std::abs(serial_particles[i].potential -
                                     threaded_particles[i].potential));
  }
  EXPECT_LT(worst, 1e-9);
  EXPECT_GT(stats.threads_created, 50u);  // every phase forked threads
}

INSTANTIATE_TEST_SUITE_P(
    EnginesSchedulers, FmmParallelTest,
    ::testing::Values(FmmParam{EngineKind::Sim, SchedKind::AsyncDf},
                      FmmParam{EngineKind::Sim, SchedKind::Fifo},
                      FmmParam{EngineKind::Sim, SchedKind::WorkSteal},
                      FmmParam{EngineKind::Real, SchedKind::AsyncDf}),
    [](const ::testing::TestParamInfo<FmmParam>& info) {
      return std::string(to_string(info.param.engine)) + "_" +
             to_string(info.param.sched);
    });

TEST(Fmm, Phase3AllocatesDynamically) {
  // The chunked M2L phase must produce dynamic allocation traffic (the
  // behavior Figure 9a measures): compare allocation counts.
  FmmConfig cfg = small_config();
  cfg.terms = 5;
  cfg.levels = 4;  // side 8: interaction lists reach the full 27 entries
  cfg.chunk = 4;   // force many chunks
  auto particles = apps::fmm_generate(cfg);
  RuntimeOptions o;
  o.engine = EngineKind::Sim;
  o.sched = SchedKind::AsyncDf;
  o.nprocs = 4;
  o.mem_quota = 1 << 20;  // avoid dummies clouding the thread count
  RunStats stats = run(o, [&] { apps::fmm_threaded(particles, cfg); });
  EXPECT_GT(stats.threads_created, 200u);
}

}  // namespace
}  // namespace dfth
