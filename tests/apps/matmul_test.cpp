// Matmul correctness across engines/schedulers and its paper-specific
// scheduling behavior (thread counts, memory shape).
#include "apps/matmul/matmul.h"

#include <gtest/gtest.h>

#include <vector>

#include "runtime/api.h"

namespace dfth {
namespace {

using apps::MatmulConfig;

// Naive O(n^3) oracle, independent of the blocked kernels.
void naive_matmul(const double* a, const double* b, double* c, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      double sum = 0;
      for (std::size_t k = 0; k < n; ++k) sum += a[i * n + k] * b[k * n + j];
      c[i * n + j] = sum;
    }
  }
}

TEST(Matmul, SerialMatchesNaive) {
  MatmulConfig cfg;
  cfg.n = 64;
  cfg.base = 16;
  std::vector<double> a(cfg.n * cfg.n), b(cfg.n * cfg.n), c(cfg.n * cfg.n),
      oracle(cfg.n * cfg.n);
  apps::matmul_fill(a.data(), cfg.n, 1);
  apps::matmul_fill(b.data(), cfg.n, 2);
  apps::matmul_serial(a.data(), b.data(), c.data(), cfg);
  naive_matmul(a.data(), b.data(), oracle.data(), cfg.n);
  EXPECT_LT(apps::matmul_max_abs_diff(c.data(), oracle.data(), cfg.n), 1e-10);
}

struct MatmulParam {
  EngineKind engine;
  SchedKind sched;
};

class MatmulParallelTest : public ::testing::TestWithParam<MatmulParam> {};

TEST_P(MatmulParallelTest, MatchesSerial) {
  MatmulConfig cfg;
  cfg.n = 128;
  cfg.base = 32;
  std::vector<double> a(cfg.n * cfg.n), b(cfg.n * cfg.n), c(cfg.n * cfg.n),
      ref(cfg.n * cfg.n);
  apps::matmul_fill(a.data(), cfg.n, 3);
  apps::matmul_fill(b.data(), cfg.n, 4);
  apps::matmul_serial(a.data(), b.data(), ref.data(), cfg);

  RuntimeOptions o;
  o.engine = GetParam().engine;
  o.sched = GetParam().sched;
  o.nprocs = 4;
  o.default_stack_size = 8 << 10;
  run(o, [&] { apps::matmul_threaded(a.data(), b.data(), c.data(), cfg); });
  EXPECT_LT(apps::matmul_max_abs_diff(c.data(), ref.data(), cfg.n), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    EnginesSchedulers, MatmulParallelTest,
    ::testing::Values(MatmulParam{EngineKind::Sim, SchedKind::Fifo},
                      MatmulParam{EngineKind::Sim, SchedKind::Lifo},
                      MatmulParam{EngineKind::Sim, SchedKind::AsyncDf},
                      MatmulParam{EngineKind::Sim, SchedKind::WorkSteal},
                      MatmulParam{EngineKind::Real, SchedKind::Fifo},
                      MatmulParam{EngineKind::Real, SchedKind::AsyncDf}),
    [](const ::testing::TestParamInfo<MatmulParam>& info) {
      return std::string(to_string(info.param.engine)) + "_" +
             to_string(info.param.sched);
    });

TEST(Matmul, ConfigValidation) {
  EXPECT_TRUE(apps::matmul_config_valid({512, 64}));
  EXPECT_FALSE(apps::matmul_config_valid({500, 64}));   // not power of two
  EXPECT_FALSE(apps::matmul_config_valid({64, 128}));   // base > n
  EXPECT_FALSE(apps::matmul_config_valid({256, 48}));   // base not pow2
}

TEST(Matmul, BaseEqualsNDegeneratesToSerialKernel) {
  MatmulConfig cfg;
  cfg.n = 32;
  cfg.base = 32;
  std::vector<double> a(cfg.n * cfg.n), b(cfg.n * cfg.n), c(cfg.n * cfg.n),
      oracle(cfg.n * cfg.n);
  apps::matmul_fill(a.data(), cfg.n, 5);
  apps::matmul_fill(b.data(), cfg.n, 6);
  RuntimeOptions o;
  o.engine = EngineKind::Sim;
  o.nprocs = 2;
  RunStats stats = run(o, [&] {
    apps::matmul_threaded(a.data(), b.data(), c.data(), cfg);
  });
  naive_matmul(a.data(), b.data(), oracle.data(), cfg.n);
  EXPECT_LT(apps::matmul_max_abs_diff(c.data(), oracle.data(), cfg.n), 1e-10);
  EXPECT_EQ(stats.threads_created, 1u);  // no forks at all
}

TEST(Matmul, FifoLiveThreadsMatchPaperBreadthFirstStory) {
  // n=256, base=64: 1 + 8 internal + 64 leaves = 73 multiply threads; FIFO
  // keeps essentially all of them live at once, AsyncDF only the fork chain.
  MatmulConfig cfg;
  cfg.n = 256;
  cfg.base = 64;
  std::vector<double> a(cfg.n * cfg.n), b(cfg.n * cfg.n), c(cfg.n * cfg.n);
  apps::matmul_fill(a.data(), cfg.n, 7);
  apps::matmul_fill(b.data(), cfg.n, 8);

  auto run_with = [&](SchedKind sched) {
    RuntimeOptions o;
    o.engine = EngineKind::Sim;
    o.sched = sched;
    o.nprocs = 1;
    o.default_stack_size = 8 << 10;
    return run(o, [&] { apps::matmul_threaded(a.data(), b.data(), c.data(), cfg); });
  };
  const RunStats fifo = run_with(SchedKind::Fifo);
  const RunStats adf = run_with(SchedKind::AsyncDf);
  EXPECT_GE(fifo.max_live_threads, 60);
  EXPECT_LE(adf.max_live_threads, 10);
  // Same flops, so same annotated work; FIFO must not be faster.
  EXPECT_GE(fifo.elapsed_us, adf.elapsed_us * 0.95);
  // The depth-first order also needs far less heap.
  EXPECT_LT(adf.heap_peak, fifo.heap_peak);
}

struct StrassenParam {
  EngineKind engine;
  SchedKind sched;
};

class StrassenTest : public ::testing::TestWithParam<StrassenParam> {};

TEST_P(StrassenTest, MatchesClassicalMultiply) {
  MatmulConfig cfg;
  cfg.n = 128;
  cfg.base = 32;
  std::vector<double> a(cfg.n * cfg.n), b(cfg.n * cfg.n), c(cfg.n * cfg.n),
      ref(cfg.n * cfg.n);
  apps::matmul_fill(a.data(), cfg.n, 21);
  apps::matmul_fill(b.data(), cfg.n, 22);
  apps::matmul_serial(a.data(), b.data(), ref.data(), cfg);
  RuntimeOptions o;
  o.engine = GetParam().engine;
  o.sched = GetParam().sched;
  o.nprocs = 4;
  o.default_stack_size = 8 << 10;
  run(o, [&] {
    apps::matmul_strassen_threaded(a.data(), b.data(), c.data(), cfg);
  });
  // Strassen reassociates sums; tolerance reflects its weaker stability.
  EXPECT_LT(apps::matmul_max_abs_diff(c.data(), ref.data(), cfg.n), 1e-8);
}

INSTANTIATE_TEST_SUITE_P(
    EnginesSchedulers, StrassenTest,
    ::testing::Values(StrassenParam{EngineKind::Sim, SchedKind::AsyncDf},
                      StrassenParam{EngineKind::Sim, SchedKind::Fifo},
                      StrassenParam{EngineKind::Sim, SchedKind::DfDeques},
                      StrassenParam{EngineKind::Real, SchedKind::AsyncDf}),
    [](const ::testing::TestParamInfo<StrassenParam>& info) {
      return std::string(to_string(info.param.engine)) + "_" +
             to_string(info.param.sched);
    });

TEST(Strassen, DoesAsymptoticallyLessAnnotatedWork) {
  // 7 recursive products instead of 8: total annotated ops must be clearly
  // below the classical version's at equal size.
  MatmulConfig cfg;
  cfg.n = 256;
  cfg.base = 32;
  std::vector<double> a(cfg.n * cfg.n), b(cfg.n * cfg.n), c(cfg.n * cfg.n);
  apps::matmul_fill(a.data(), cfg.n, 23);
  apps::matmul_fill(b.data(), cfg.n, 24);
  RuntimeOptions o;
  o.engine = EngineKind::Sim;
  o.sched = SchedKind::AsyncDf;
  o.nprocs = 1;
  const double classical =
      run(o, [&] { apps::matmul_threaded(a.data(), b.data(), c.data(), cfg); })
          .elapsed_us;
  const double strassen =
      run(o, [&] {
        apps::matmul_strassen_threaded(a.data(), b.data(), c.data(), cfg);
      }).elapsed_us;
  EXPECT_LT(strassen, classical * 0.92);  // (7/8)^3 ≈ 0.67 on the multiplies
}

TEST(Strassen, SpaceEfficientSchedulerTamesTheTemporaries) {
  // Deep enough that breadth-first holds several levels of M-buffers at
  // once while depth-first holds roughly one root-to-leaf path of them.
  MatmulConfig cfg;
  cfg.n = 512;
  cfg.base = 32;
  std::vector<double> a(cfg.n * cfg.n), b(cfg.n * cfg.n), c(cfg.n * cfg.n);
  apps::matmul_fill(a.data(), cfg.n, 25);
  apps::matmul_fill(b.data(), cfg.n, 26);
  auto one = [&](SchedKind sched) {
    RuntimeOptions o;
    o.engine = EngineKind::Sim;
    o.sched = sched;
    o.nprocs = 4;
    o.default_stack_size = 8 << 10;
    return run(o, [&] {
      apps::matmul_strassen_threaded(a.data(), b.data(), c.data(), cfg);
    });
  };
  const RunStats fifo = one(SchedKind::Fifo);
  const RunStats adf = one(SchedKind::AsyncDf);
  EXPECT_LT(adf.heap_peak, fifo.heap_peak / 2);
  EXPECT_LT(adf.max_live_threads, fifo.max_live_threads / 2);
}

TEST(Matmul, TotalOpsFormulaMatchesAnnotations) {
  MatmulConfig cfg;
  cfg.n = 128;
  cfg.base = 32;
  std::vector<double> a(cfg.n * cfg.n), b(cfg.n * cfg.n), c(cfg.n * cfg.n);
  apps::matmul_fill(a.data(), cfg.n, 9);
  apps::matmul_fill(b.data(), cfg.n, 10);
  // Use the recorder to sum annotated ops and compare to the formula.
  Recorder rec;
  RuntimeOptions o;
  o.engine = EngineKind::Sim;
  o.sched = SchedKind::Lifo;
  o.nprocs = 1;
  o.recorder = &rec;
  run(o, [&] { apps::matmul_threaded(a.data(), b.data(), c.data(), cfg); });
  Graph g = rec.take();
  std::uint64_t total = 0;
  for (const auto& seg : g.segments) total += seg.ops;
  EXPECT_EQ(total, apps::matmul_total_ops(cfg));
}

}  // namespace
}  // namespace dfth
