// Decision-tree builder: generator, serial build sanity, and the threaded
// build producing the identical tree.
#include "apps/dtree/dtree.h"

#include <gtest/gtest.h>

#include "runtime/api.h"

namespace dfth {
namespace {

using apps::DtreeConfig;
using apps::Instance;

DtreeConfig small_config() {
  DtreeConfig cfg;
  cfg.instances = 8000;
  cfg.serial_cutoff = 500;
  cfg.min_leaf = 32;
  return cfg;
}

TEST(DtreeGenerate, ShapeAndDeterminism) {
  DtreeConfig cfg = small_config();
  const auto a = apps::dtree_generate(cfg);
  const auto b = apps::dtree_generate(cfg);
  ASSERT_EQ(a.size(), cfg.instances);
  std::size_t positives = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    for (int k = 0; k < apps::kDtreeAttrs; ++k) {
      EXPECT_EQ(a[i].attr[k], b[i].attr[k]);
    }
    EXPECT_EQ(a[i].label, b[i].label);
    positives += a[i].label;
  }
  // Balanced-ish classes.
  EXPECT_GT(positives, cfg.instances / 3);
  EXPECT_LT(positives, cfg.instances * 2 / 3);
}

TEST(DtreeSerial, LearnsBetterThanChance) {
  DtreeConfig cfg = small_config();
  const auto data = apps::dtree_generate(cfg);
  const auto tree = apps::dtree_build_serial(data, cfg);
  ASSERT_NE(tree, nullptr);
  const double acc = apps::dtree_accuracy(*tree, data);
  // Gaussian clusters with 8% label noise: a real tree should fit well
  // above the 50% base rate.
  EXPECT_GT(acc, 0.75);
  const auto shape = apps::dtree_shape(*tree);
  EXPECT_GT(shape.nodes, 10u);  // a nontrivial, multi-split tree
  EXPECT_EQ(shape.nodes, 2 * shape.leaves - 1);  // proper binary tree
}

TEST(DtreeSerial, RespectsMinLeafAndDepth) {
  DtreeConfig cfg = small_config();
  cfg.max_depth = 4;
  const auto data = apps::dtree_generate(cfg);
  const auto tree = apps::dtree_build_serial(data, cfg);
  const auto shape = apps::dtree_shape(*tree);
  EXPECT_LE(shape.depth, 5);  // depth counts nodes, max_depth counts splits
}

struct DtreeParam {
  EngineKind engine;
  SchedKind sched;
};

class DtreeParallelTest : public ::testing::TestWithParam<DtreeParam> {};

TEST_P(DtreeParallelTest, ThreadedBuildsIdenticalTree) {
  DtreeConfig cfg = small_config();
  const auto data = apps::dtree_generate(cfg);
  const auto serial_tree = apps::dtree_build_serial(data, cfg);

  RuntimeOptions o;
  o.engine = GetParam().engine;
  o.sched = GetParam().sched;
  o.nprocs = 4;
  o.default_stack_size = 8 << 10;
  std::unique_ptr<apps::DtreeNode> threaded_tree;
  RunStats stats = run(o, [&] {
    threaded_tree = apps::dtree_build_threaded(data, cfg);
  });
  ASSERT_NE(threaded_tree, nullptr);
  EXPECT_TRUE(apps::dtree_equal(*serial_tree, *threaded_tree));
  EXPECT_GT(stats.threads_created, 10u);  // actually went parallel
}

INSTANTIATE_TEST_SUITE_P(
    EnginesSchedulers, DtreeParallelTest,
    ::testing::Values(DtreeParam{EngineKind::Sim, SchedKind::Fifo},
                      DtreeParam{EngineKind::Sim, SchedKind::AsyncDf},
                      DtreeParam{EngineKind::Sim, SchedKind::WorkSteal},
                      DtreeParam{EngineKind::Real, SchedKind::AsyncDf}),
    [](const ::testing::TestParamInfo<DtreeParam>& info) {
      return std::string(to_string(info.param.engine)) + "_" +
             to_string(info.param.sched);
    });

TEST(Dtree, ClassifyFollowsSplits) {
  // Hand-built stump: attr0 <= 0 -> class 0, else class 1.
  apps::DtreeNode root;
  root.leaf = false;
  root.attr = 0;
  root.threshold = 0.0f;
  root.left = std::make_unique<apps::DtreeNode>();
  root.left->majority = 0;
  root.right = std::make_unique<apps::DtreeNode>();
  root.right->majority = 1;
  Instance lo{{-1, 0, 0, 0}, 0}, hi{{1, 0, 0, 0}, 1};
  EXPECT_EQ(apps::dtree_classify(root, lo), 0);
  EXPECT_EQ(apps::dtree_classify(root, hi), 1);
}

TEST(Dtree, PureDataYieldsSingleLeaf) {
  DtreeConfig cfg = small_config();
  auto data = apps::dtree_generate(cfg);
  for (auto& inst : data) inst.label = 1;
  const auto tree = apps::dtree_build_serial(data, cfg);
  EXPECT_TRUE(tree->leaf);
  EXPECT_EQ(tree->majority, 1);
}

}  // namespace
}  // namespace dfth
