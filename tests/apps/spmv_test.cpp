// Sparse matrix-vector product: generator properties and coarse/fine
// equivalence with the serial product.
#include "apps/spmv/spmv.h"

#include <gtest/gtest.h>

#include <vector>

#include "runtime/api.h"
#include "util/rng.h"

namespace dfth {
namespace {

using apps::CsrMatrix;
using apps::SpmvConfig;

SpmvConfig small_config() {
  SpmvConfig cfg;
  cfg.rows = 2000;
  cfg.target_nnz = 10000;
  cfg.iterations = 3;
  cfg.threads_per_iter = 16;
  return cfg;
}

TEST(SpmvGenerate, MatchesTargets) {
  SpmvConfig cfg;  // paper-size defaults
  CsrMatrix m(cfg.rows, cfg.rows);
  spmv_generate(m, cfg);
  EXPECT_EQ(m.rows(), 30169u);
  // Dedup makes nnz slightly below target; within 15%.
  EXPECT_GT(m.nnz(), cfg.target_nnz * 85 / 100);
  EXPECT_LE(m.nnz(), cfg.target_nnz * 115 / 100);
  // CSR structure is well formed: sorted, in-bounds columns.
  for (std::size_t i = 0; i < m.rows(); ++i) {
    EXPECT_LE(m.row_ptr()[i], m.row_ptr()[i + 1]);
    for (std::uint32_t k = m.row_ptr()[i]; k < m.row_ptr()[i + 1]; ++k) {
      EXPECT_LT(m.col_idx()[k], m.cols());
      if (k > m.row_ptr()[i]) EXPECT_LT(m.col_idx()[k - 1], m.col_idx()[k]);
    }
  }
}

TEST(SpmvGenerate, RowLengthsAreSkewed) {
  SpmvConfig cfg = small_config();
  CsrMatrix m(cfg.rows, cfg.rows);
  spmv_generate(m, cfg);
  // The refined middle region must be denser than the edges: compare mean
  // row length of the middle decile vs the first decile.
  auto mean_len = [&](std::size_t lo, std::size_t hi) {
    return static_cast<double>(m.row_ptr()[hi] - m.row_ptr()[lo]) /
           static_cast<double>(hi - lo);
  };
  const std::size_t decile = cfg.rows / 10;
  EXPECT_GT(mean_len(cfg.rows / 2 - decile / 2, cfg.rows / 2 + decile / 2),
            2.0 * mean_len(0, decile));
}

TEST(SpmvGenerate, Deterministic) {
  SpmvConfig cfg = small_config();
  CsrMatrix a(cfg.rows, cfg.rows), b(cfg.rows, cfg.rows);
  spmv_generate(a, cfg);
  spmv_generate(b, cfg);
  ASSERT_EQ(a.nnz(), b.nnz());
  for (std::size_t k = 0; k < a.nnz(); ++k) {
    EXPECT_EQ(a.col_idx()[k], b.col_idx()[k]);
    EXPECT_EQ(a.values()[k], b.values()[k]);
  }
}

class SpmvParallelTest : public ::testing::TestWithParam<EngineKind> {};

TEST_P(SpmvParallelTest, FineMatchesSerial) {
  SpmvConfig cfg = small_config();
  CsrMatrix m(cfg.rows, cfg.rows);
  spmv_generate(m, cfg);
  std::vector<double> v(cfg.rows), w_serial(cfg.rows), w_fine(cfg.rows);
  Rng rng(3);
  for (auto& x : v) x = rng.next_double(-1, 1);
  spmv_serial(m, v.data(), w_serial.data());

  RuntimeOptions o;
  o.engine = GetParam();
  o.sched = SchedKind::AsyncDf;
  o.nprocs = 4;
  o.default_stack_size = 8 << 10;
  run(o, [&] { spmv_fine(m, v.data(), w_fine.data(), cfg); });
  EXPECT_LT(apps::spmv_max_abs_diff(w_serial.data(), w_fine.data(), cfg.rows), 1e-12);
}

TEST_P(SpmvParallelTest, CoarseMatchesSerial) {
  SpmvConfig cfg = small_config();
  CsrMatrix m(cfg.rows, cfg.rows);
  spmv_generate(m, cfg);
  std::vector<double> v(cfg.rows), w_serial(cfg.rows), w_coarse(cfg.rows);
  Rng rng(4);
  for (auto& x : v) x = rng.next_double(-1, 1);
  spmv_serial(m, v.data(), w_serial.data());

  RuntimeOptions o;
  o.engine = GetParam();
  o.sched = SchedKind::Fifo;  // coarse code must work on the stock scheduler
  o.nprocs = 4;
  o.default_stack_size = 8 << 10;
  run(o, [&] { spmv_coarse(m, v.data(), w_coarse.data(), cfg, 4); });
  EXPECT_LT(apps::spmv_max_abs_diff(w_serial.data(), w_coarse.data(), cfg.rows),
            1e-12);
}

INSTANTIATE_TEST_SUITE_P(BothEngines, SpmvParallelTest,
                         ::testing::Values(EngineKind::Sim, EngineKind::Real),
                         [](const ::testing::TestParamInfo<EngineKind>& info) {
                           return std::string(to_string(info.param));
                         });

TEST(Spmv, FineThreadCountMatchesConfig) {
  SpmvConfig cfg = small_config();
  cfg.iterations = 2;
  cfg.threads_per_iter = 32;
  CsrMatrix m(cfg.rows, cfg.rows);
  spmv_generate(m, cfg);
  std::vector<double> v(cfg.rows, 1.0), w(cfg.rows);
  RuntimeOptions o;
  o.engine = EngineKind::Sim;
  o.nprocs = 4;
  RunStats stats = run(o, [&] { spmv_fine(m, v.data(), w.data(), cfg); });
  // main + 32 per iteration * 2 iterations.
  EXPECT_EQ(stats.threads_created, 1u + 32u * 2u);
}

}  // namespace
}  // namespace dfth
