// Volume renderer: procedural volume/octree properties and pixel-exact
// equivalence of serial, coarse and fine renders across granularities.
#include "apps/volrend/volrend.h"

#include <gtest/gtest.h>

#include "runtime/api.h"

namespace dfth {
namespace {

using apps::Volume;
using apps::VolrendConfig;

VolrendConfig small_config() {
  VolrendConfig cfg;
  cfg.volume_dim = 64;
  cfg.image_dim = 48;
  cfg.frames = 1;
  cfg.tiles_per_thread = 4;
  return cfg;
}

TEST(Volume, ProceduralHeadHasStructure) {
  VolrendConfig cfg = small_config();
  Volume vol(cfg);
  // Center should be inside the head (brain density), corner empty.
  const std::size_t c = cfg.volume_dim / 2;
  EXPECT_GT(vol.at(c, c, c), 50);
  EXPECT_EQ(vol.at(1, 1, 1), 0);
  // Skull shell denser than brain: probe along the x axis.
  std::uint8_t peak = 0;
  for (std::size_t x = c; x < cfg.volume_dim; ++x) {
    peak = std::max(peak, vol.at(x, c, c));
  }
  EXPECT_GT(peak, 180);
}

TEST(Volume, OctreeBrickEmptinessConsistent) {
  VolrendConfig cfg = small_config();
  Volume vol(cfg);
  // A corner brick is empty; the center brick is not.
  EXPECT_TRUE(vol.brick_empty(1, 1, 1));
  const double c = static_cast<double>(cfg.volume_dim) / 2;
  EXPECT_FALSE(vol.brick_empty(c, c, c));
}

TEST(Volume, TrilinearSampleInterpolates) {
  VolrendConfig cfg = small_config();
  Volume vol(cfg);
  const std::size_t c = cfg.volume_dim / 2;
  const double exact = vol.at(c, c, c);
  const double sampled = vol.sample(static_cast<double>(c), static_cast<double>(c),
                                    static_cast<double>(c));
  EXPECT_DOUBLE_EQ(sampled, exact);
  // Midpoint between two voxels lies between their values.
  const double left = vol.at(c, c, c);
  const double right = vol.at(c + 1, c, c);
  const double mid = vol.sample(c + 0.5, c, c);
  EXPECT_GE(mid, std::min(left, right) - 1e-9);
  EXPECT_LE(mid, std::max(left, right) + 1e-9);
}

TEST(Volrend, SerialImageNonTrivial) {
  VolrendConfig cfg = small_config();
  Volume vol(cfg);
  const auto img = apps::volrend_serial(vol, cfg);
  ASSERT_EQ(img.size(), cfg.image_dim * cfg.image_dim);
  std::size_t lit = 0;
  for (auto px : img) lit += (px > 0);
  // The head silhouette covers part of the image but not all of it.
  EXPECT_GT(lit, img.size() / 10);
  EXPECT_LT(lit, img.size());
}

class VolrendGranularityTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(VolrendGranularityTest, FineMatchesSerialAtEveryGranularity) {
  VolrendConfig cfg = small_config();
  cfg.tiles_per_thread = GetParam();
  Volume vol(cfg);
  const auto serial_img = apps::volrend_serial(vol, cfg);
  RuntimeOptions o;
  o.engine = EngineKind::Sim;
  o.sched = SchedKind::AsyncDf;
  o.nprocs = 4;
  o.default_stack_size = 8 << 10;
  apps::Image fine_img, tree_img;
  run(o, [&] { fine_img = apps::volrend_fine(vol, cfg); });
  EXPECT_TRUE(apps::volrend_images_equal(serial_img, fine_img));
  // The tree-spawned variant renders the identical image too.
  run(o, [&] { tree_img = apps::volrend_fine_tree(vol, cfg); });
  EXPECT_TRUE(apps::volrend_images_equal(serial_img, tree_img));
}

INSTANTIATE_TEST_SUITE_P(Granularities, VolrendGranularityTest,
                         ::testing::Values(1, 4, 16, 60, 1000));

TEST(Volrend, CoarseMatchesSerialBothEngines) {
  VolrendConfig cfg = small_config();
  Volume vol(cfg);
  const auto serial_img = apps::volrend_serial(vol, cfg);
  for (EngineKind engine : {EngineKind::Sim, EngineKind::Real}) {
    RuntimeOptions o;
    o.engine = engine;
    o.sched = SchedKind::Fifo;
    o.nprocs = 4;
    o.default_stack_size = 8 << 10;
    apps::Image img;
    run(o, [&] { img = apps::volrend_coarse(vol, cfg, 4); });
    EXPECT_TRUE(apps::volrend_images_equal(serial_img, img))
        << "engine " << to_string(engine);
  }
}

TEST(Volrend, ThreadCountTracksGranularity) {
  VolrendConfig cfg = small_config();
  cfg.tiles_per_thread = 4;
  Volume vol(cfg);
  const std::size_t tiles = apps::volrend_tile_count(cfg);
  RuntimeOptions o;
  o.engine = EngineKind::Sim;
  o.nprocs = 2;
  RunStats stats = run(o, [&] { (void)apps::volrend_fine(vol, cfg); });
  EXPECT_EQ(stats.threads_created, 1 + (tiles + 3) / 4);
}

TEST(Volrend, LocalityCacheSeesTouches) {
  VolrendConfig cfg = small_config();
  Volume vol(cfg);
  RuntimeOptions o;
  o.engine = EngineKind::Sim;
  o.nprocs = 2;
  RunStats stats = run(o, [&] { (void)apps::volrend_fine(vol, cfg); });
  EXPECT_GT(stats.cache_hits + stats.cache_misses, 100u);
  // Rays through nearby pixels share bricks: hits must dominate.
  EXPECT_GT(stats.cache_hits, stats.cache_misses);
}

TEST(Volrend, MultipleFramesChangeViewpoint) {
  VolrendConfig cfg = small_config();
  Volume vol(cfg);
  VolrendConfig one = cfg, two = cfg;
  two.frames = 2;
  const auto img1 = apps::volrend_serial(vol, one);
  const auto img2 = apps::volrend_serial(vol, two);
  EXPECT_FALSE(apps::volrend_images_equal(img1, img2));  // rotated view
}

}  // namespace
}  // namespace dfth
