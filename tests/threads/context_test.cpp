// Context-switch correctness: round trips, argument passing, FP state, and
// many interleaved fibers.
#include "threads/context.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "space/stack_pool.h"

namespace dfth {
namespace {

struct PingPong {
  Context main_ctx;
  Context fiber_ctx;
  std::vector<int> trace;
};

void pingpong_entry(void* arg) {
  auto* pp = static_cast<PingPong*>(arg);
  pp->trace.push_back(1);
  context_switch(&pp->fiber_ctx, &pp->main_ctx);
  pp->trace.push_back(3);
  context_switch(&pp->fiber_ctx, &pp->main_ctx);
  // Unreachable: the test never resumes after the second switch-out.
  abort();
}

TEST(Context, PingPongPreservesControlFlow) {
  auto& pool = StackPool::instance();
  Stack stack = pool.acquire(64 << 10);
  PingPong pp;
  context_make(&pp.fiber_ctx, stack.base, stack.top(), &pingpong_entry, &pp);

  pp.trace.push_back(0);
  context_switch(&pp.main_ctx, &pp.fiber_ctx);
  pp.trace.push_back(2);
  context_switch(&pp.main_ctx, &pp.fiber_ctx);
  pp.trace.push_back(4);

  EXPECT_EQ(pp.trace, (std::vector<int>{0, 1, 2, 3, 4}));
  context_destroy(&pp.fiber_ctx);
  context_destroy(&pp.main_ctx);
  pool.release(stack);
}

struct Accum {
  Context main_ctx;
  Context ctx;
  Stack stack;
  std::uint64_t value = 0;
  std::uint64_t rounds = 0;
};

void accum_entry(void* arg) {
  auto* a = static_cast<Accum*>(arg);
  // Keep state in locals across switches: exercises callee-saved registers
  // and the private stack.
  std::uint64_t local = a->value;
  double fp = static_cast<double>(a->value) * 0.5;
  for (;;) {
    local += 1;
    fp += 0.25;
    a->value = local + static_cast<std::uint64_t>(fp * 4.0);
    context_switch(&a->ctx, &a->main_ctx);
  }
}

TEST(Context, ManyFibersKeepIndependentState) {
  auto& pool = StackPool::instance();
  constexpr int kFibers = 64;
  std::vector<Accum> fibers(kFibers);
  for (int i = 0; i < kFibers; ++i) {
    fibers[i].stack = pool.acquire(32 << 10);
    fibers[i].value = static_cast<std::uint64_t>(i) * 1000;
    context_make(&fibers[i].ctx, fibers[i].stack.base, fibers[i].stack.top(),
                 &accum_entry, &fibers[i]);
  }
  // Interleave rounds across all fibers.
  for (int round = 0; round < 10; ++round) {
    for (int i = 0; i < kFibers; ++i) {
      context_switch(&fibers[i].main_ctx, &fibers[i].ctx);
    }
  }
  for (int i = 0; i < kFibers; ++i) {
    // value evolves deterministically from the seed; all fibers distinct.
    const std::uint64_t seed = static_cast<std::uint64_t>(i) * 1000;
    std::uint64_t local = seed;
    double fp = static_cast<double>(seed) * 0.5;
    std::uint64_t expect = 0;
    for (int round = 0; round < 10; ++round) {
      local += 1;
      fp += 0.25;
      expect = local + static_cast<std::uint64_t>(fp * 4.0);
    }
    EXPECT_EQ(fibers[i].value, expect) << "fiber " << i;
    context_destroy(&fibers[i].ctx);
    context_destroy(&fibers[i].main_ctx);
    pool.release(fibers[i].stack);
  }
}

struct DeepFrame {
  Context main_ctx;
  Context ctx;
  std::uint64_t checksum = 0;
};

void deep_entry(void* arg) {
  auto* d = static_cast<DeepFrame*>(arg);
  // Use a sizable stack frame to verify the usable region really backs it.
  volatile std::uint8_t frame[16 << 10];
  for (std::size_t i = 0; i < sizeof frame; i += 64) frame[i] = static_cast<std::uint8_t>(i);
  std::uint64_t sum = 0;
  for (std::size_t i = 0; i < sizeof frame; i += 64) sum += frame[i];
  d->checksum = sum;
  context_switch(&d->ctx, &d->main_ctx);
  abort();
}

TEST(Context, LargeFrameOnFiberStack) {
  auto& pool = StackPool::instance();
  Stack stack = pool.acquire(64 << 10);
  DeepFrame d;
  context_make(&d.ctx, stack.base, stack.top(), &deep_entry, &d);
  context_switch(&d.main_ctx, &d.ctx);
  EXPECT_NE(d.checksum, 0u);
  context_destroy(&d.ctx);
  context_destroy(&d.main_ctx);
  pool.release(stack);
}

}  // namespace
}  // namespace dfth
