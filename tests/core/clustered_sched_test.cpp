// Clustered AsyncDF (§6 future work): per-cluster ordering, migration only
// when a cluster runs dry, and end-to-end behavior through the simulator.
#include "core/clustered_sched.h"

#include <gtest/gtest.h>

#include <limits>
#include <memory>
#include <vector>

#include "runtime/api.h"

namespace dfth {
namespace {

constexpr std::uint64_t kInf = std::numeric_limits<std::uint64_t>::max();

struct Harness {
  std::vector<std::unique_ptr<Tcb>> tcbs;
  std::uint64_t next_id = 1;

  Tcb* make() {
    tcbs.push_back(std::make_unique<Tcb>(next_id++));
    return tcbs.back().get();
  }

  bool spawn(Scheduler& s, Tcb* parent, Tcb* child, int proc = 0) {
    const bool preempt = s.register_thread(parent, child);
    if (preempt) {
      if (parent) {
        parent->state.store(ThreadState::Ready, std::memory_order_relaxed);
        s.on_ready(parent, proc);
      }
      child->state.store(ThreadState::Running, std::memory_order_relaxed);
    } else {
      child->state.store(ThreadState::Ready, std::memory_order_relaxed);
      s.on_ready(child, proc);
    }
    return preempt;
  }

  Tcb* pick(Scheduler& s, int proc) {
    std::uint64_t earliest = kInf;
    Tcb* t = s.pick_next(proc, kInf, &earliest);
    if (t) t->state.store(ThreadState::Running, std::memory_order_relaxed);
    return t;
  }
};

TEST(ClusteredAdf, LockDomainsFollowClusters) {
  ClusteredAdfScheduler s(8, 4);
  EXPECT_EQ(s.domains(), 2);
  EXPECT_EQ(s.lock_domain(0), 0);
  EXPECT_EQ(s.lock_domain(3), 0);
  EXPECT_EQ(s.lock_domain(4), 1);
  EXPECT_EQ(s.lock_domain(7), 1);
}

TEST(ClusteredAdf, PreemptsParentLikeAsyncDf) {
  ClusteredAdfScheduler s(8, 4);
  Harness h;
  Tcb* root = h.make();
  EXPECT_TRUE(h.spawn(s, nullptr, root));
  Tcb* child = h.make();
  EXPECT_TRUE(h.spawn(s, root, child));
  EXPECT_EQ(child->state.load(), ThreadState::Running);
  EXPECT_EQ(root->state.load(), ThreadState::Ready);
  // Both live in cluster 0; cluster 1 is empty.
  EXPECT_EQ(s.live_count(0), 2u);
  EXPECT_EQ(s.live_count(1), 0u);
}

TEST(ClusteredAdf, ChildInheritsParentCluster) {
  ClusteredAdfScheduler s(8, 4);
  Harness h;
  Tcb* root = h.make();
  h.spawn(s, nullptr, root);
  // Migrate root to cluster 1 by dispatching from proc 4 while cluster 1 is
  // dry (root is the only ready thread anywhere).
  root->state.store(ThreadState::Ready, std::memory_order_relaxed);
  s.on_ready(root, 0);
  EXPECT_EQ(h.pick(s, /*proc=*/5), root);
  EXPECT_EQ(s.migrations(), 1u);
  EXPECT_EQ(root->home_proc, 1);
  // Its next child joins cluster 1, not 0.
  Tcb* child = h.make();
  h.spawn(s, root, child, /*proc=*/5);
  EXPECT_EQ(child->home_proc, 1);
  EXPECT_EQ(s.live_count(1), 2u);
}

TEST(ClusteredAdf, NoMigrationWhenHomeClusterHasWork) {
  ClusteredAdfScheduler s(8, 4);
  Harness h;
  Tcb* a = h.make();
  h.spawn(s, nullptr, a);
  a->state.store(ThreadState::Ready, std::memory_order_relaxed);
  s.on_ready(a, 0);
  EXPECT_EQ(h.pick(s, /*proc=*/1), a);  // same cluster: no migration
  EXPECT_EQ(s.migrations(), 0u);
}

TEST(ClusteredAdf, LeftmostReadyWithinCluster) {
  ClusteredAdfScheduler s(4, 4);
  Harness h;
  Tcb* root = h.make();
  h.spawn(s, nullptr, root);
  Tcb* c1 = h.make();
  h.spawn(s, root, c1);
  Tcb* c2 = h.make();
  h.spawn(s, c1, c2);  // order: c2 < c1 < root
  c2->state.store(ThreadState::Ready, std::memory_order_relaxed);
  s.on_ready(c2, 0);
  EXPECT_EQ(h.pick(s, 0), c2);
  EXPECT_EQ(h.pick(s, 0), c1);
  EXPECT_EQ(h.pick(s, 0), root);
}

TEST(ClusteredAdf, EndToEndForkTreeThroughSim) {
  // A fork tree across 16 simulated processors in 4 clusters; correctness
  // plus the space discipline (live threads near the fork depth, far below
  // the breadth).
  RuntimeOptions o;
  o.engine = EngineKind::Sim;
  o.sched = SchedKind::ClusteredAdf;
  o.nprocs = 16;
  o.cluster_size = 4;
  o.default_stack_size = 8 << 10;
  long long sum = 0;
  RunStats stats = run(o, [&] {
    struct Rec {
      static long long go(int depth) {
        annotate_work(300);
        if (depth == 0) return 1;
        auto left = spawn([depth]() -> void* {
          return reinterpret_cast<void*>(go(depth - 1));
        });
        const long long right = go(depth - 1);
        return reinterpret_cast<long long>(join(left)) + right;
      }
    };
    sum = Rec::go(10);
  });
  EXPECT_EQ(sum, 1 << 10);
  EXPECT_EQ(stats.threads_created, 1u << 10);
  EXPECT_LT(stats.max_live_threads, 200);  // ≪ 1024 breadth
}

TEST(ClusteredAdf, QuotaAndDummiesStillApply) {
  RuntimeOptions o;
  o.engine = EngineKind::Sim;
  o.sched = SchedKind::ClusteredAdf;
  o.nprocs = 8;
  o.cluster_size = 4;
  o.mem_quota = 8 << 10;
  RunStats stats = run(o, [] {
    void* p = df_malloc(64 << 10);
    df_free(p);
  });
  EXPECT_EQ(stats.dummy_threads, 8u);  // ceil(64K / 8K)
}

TEST(ClusteredAdf, RealEngineSmoke) {
  RuntimeOptions o;
  o.engine = EngineKind::Real;
  o.sched = SchedKind::ClusteredAdf;
  o.nprocs = 4;
  o.cluster_size = 2;
  o.default_stack_size = 8 << 10;
  std::atomic<int> count{0};
  run(o, [&] {
    std::vector<Thread> threads;
    for (int i = 0; i < 100; ++i) {
      threads.push_back(spawn([&count]() -> void* {
        count.fetch_add(1);
        return nullptr;
      }));
    }
    for (auto& t : threads) join(t);
  });
  EXPECT_EQ(count.load(), 100);
}

}  // namespace
}  // namespace dfth
