// Order-maintenance list: correctness against a reference std::vector under
// random operation streams, plus the adversarial insertion patterns the
// AsyncDF scheduler produces (repeated insert-before at one position).
#include "core/order_list.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <deque>
#include <memory>
#include <vector>

#include "util/rng.h"

namespace dfth {
namespace {

TEST(OrderList, EmptyBasics) {
  OrderList list;
  EXPECT_TRUE(list.empty());
  EXPECT_EQ(list.size(), 0u);
  EXPECT_EQ(list.front(), nullptr);
  EXPECT_EQ(list.back(), nullptr);
  EXPECT_TRUE(list.check_invariants());
}

TEST(OrderList, PushFrontBackOrdering) {
  OrderList list;
  OrderNode a, b, c;
  list.push_back(&a);
  list.push_back(&b);
  list.push_front(&c);
  EXPECT_EQ(list.front(), &c);
  EXPECT_EQ(list.back(), &b);
  EXPECT_TRUE(list.before(&c, &a));
  EXPECT_TRUE(list.before(&a, &b));
  EXPECT_FALSE(list.before(&b, &a));
  EXPECT_TRUE(list.check_invariants());
}

TEST(OrderList, InsertBeforeAfter) {
  OrderList list;
  OrderNode a, b, mid;
  list.push_back(&a);
  list.push_back(&b);
  list.insert_after(&a, &mid);
  EXPECT_TRUE(list.before(&a, &mid));
  EXPECT_TRUE(list.before(&mid, &b));
  list.erase(&mid);
  OrderNode mid2;
  list.insert_before(&b, &mid2);
  EXPECT_TRUE(list.before(&a, &mid2));
  EXPECT_TRUE(list.before(&mid2, &b));
  EXPECT_TRUE(list.check_invariants());
}

TEST(OrderList, EraseUnlinksNode) {
  OrderList list;
  OrderNode a, b;
  list.push_back(&a);
  list.push_back(&b);
  list.erase(&a);
  EXPECT_FALSE(a.linked());
  EXPECT_EQ(list.size(), 1u);
  EXPECT_EQ(list.front(), &b);
  // Node is reusable after erase.
  list.push_back(&a);
  EXPECT_TRUE(list.before(&b, &a));
}

// The AsyncDF adversary: every fork inserts immediately before the same
// parent node, exhausting the tag gap at one spot and forcing relabels.
TEST(OrderList, RepeatedInsertBeforeSamePosition) {
  OrderList list;
  OrderNode parent;
  list.push_back(&parent);
  constexpr int kChildren = 5000;
  std::vector<std::unique_ptr<OrderNode>> kids;
  kids.reserve(kChildren);
  const OrderNode* prev = nullptr;
  for (int i = 0; i < kChildren; ++i) {
    kids.push_back(std::make_unique<OrderNode>());
    list.insert_before(&parent, kids.back().get());
    if (prev) EXPECT_TRUE(list.before(prev, kids.back().get()));
    prev = kids.back().get();
  }
  ASSERT_TRUE(list.check_invariants());
  // Every child precedes the parent; children are in insertion order.
  for (const auto& kid : kids) EXPECT_TRUE(list.before(kid.get(), &parent));
  EXPECT_GT(list.relabel_count(), 0u) << "adversary should trigger relabeling";
}

TEST(OrderList, RepeatedInsertAfterHead) {
  OrderList list;
  OrderNode anchor;
  list.push_back(&anchor);
  std::vector<std::unique_ptr<OrderNode>> nodes;
  for (int i = 0; i < 5000; ++i) {
    nodes.push_back(std::make_unique<OrderNode>());
    list.insert_after(&anchor, nodes.back().get());
  }
  ASSERT_TRUE(list.check_invariants());
  // insert_after reverses: later inserts come earlier.
  for (std::size_t i = 1; i < nodes.size(); ++i) {
    EXPECT_TRUE(list.before(nodes[i].get(), nodes[i - 1].get()));
  }
}

class OrderListRandomTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(OrderListRandomTest, MatchesReferenceSequence) {
  Rng rng(GetParam());
  OrderList list;
  std::vector<OrderNode*> reference;  // mirror of the list, in order
  std::vector<std::unique_ptr<OrderNode>> owned;

  for (int step = 0; step < 4000; ++step) {
    const auto action = rng.next_below(reference.empty() ? 2 : 5);
    switch (action) {
      case 0: {  // push_back
        owned.push_back(std::make_unique<OrderNode>());
        list.push_back(owned.back().get());
        reference.push_back(owned.back().get());
        break;
      }
      case 1: {  // push_front
        owned.push_back(std::make_unique<OrderNode>());
        list.push_front(owned.back().get());
        reference.insert(reference.begin(), owned.back().get());
        break;
      }
      case 2: {  // insert_before random node
        const auto i = rng.next_below(reference.size());
        owned.push_back(std::make_unique<OrderNode>());
        list.insert_before(reference[i], owned.back().get());
        reference.insert(reference.begin() + static_cast<std::ptrdiff_t>(i),
                         owned.back().get());
        break;
      }
      case 3: {  // insert_after random node
        const auto i = rng.next_below(reference.size());
        owned.push_back(std::make_unique<OrderNode>());
        list.insert_after(reference[i], owned.back().get());
        reference.insert(reference.begin() + static_cast<std::ptrdiff_t>(i) + 1,
                         owned.back().get());
        break;
      }
      case 4: {  // erase random node
        const auto i = rng.next_below(reference.size());
        list.erase(reference[i]);
        reference.erase(reference.begin() + static_cast<std::ptrdiff_t>(i));
        break;
      }
    }
  }

  ASSERT_TRUE(list.check_invariants());
  ASSERT_EQ(list.size(), reference.size());
  // Walk the list and compare against the reference order.
  std::size_t idx = 0;
  for (OrderNode* n = list.front(); n && n != list.end_sentinel(); n = n->next) {
    ASSERT_LT(idx, reference.size());
    EXPECT_EQ(n, reference[idx]) << "position " << idx;
    ++idx;
  }
  EXPECT_EQ(idx, reference.size());
  // before() agrees with positions for random pairs.
  for (int q = 0; q < 200 && reference.size() >= 2; ++q) {
    const auto i = rng.next_below(reference.size());
    const auto j = rng.next_below(reference.size());
    if (i == j) continue;
    EXPECT_EQ(list.before(reference[i], reference[j]), i < j);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, OrderListRandomTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55, 89));

}  // namespace
}  // namespace dfth
