// Scheduler policy unit tests at the Tcb level, emulating the engine's
// calling contract (register -> on_ready -> pick_next -> ...).
#include <gtest/gtest.h>

#include <limits>
#include <memory>
#include <vector>

#include "core/asyncdf_sched.h"
#include "core/fifo_sched.h"
#include "core/lifo_sched.h"
#include "core/scheduler.h"
#include "core/worksteal_sched.h"

namespace dfth {
namespace {

constexpr std::uint64_t kInf = std::numeric_limits<std::uint64_t>::max();

struct Harness {
  std::vector<std::unique_ptr<Tcb>> tcbs;
  std::uint64_t next_id = 1;

  Tcb* make(int priority = 0) {
    tcbs.push_back(std::make_unique<Tcb>(next_id++));
    tcbs.back()->attr.priority = priority;
    return tcbs.back().get();
  }

  /// Emulates the engine's spawn protocol; returns true if the child
  /// preempted the parent.
  bool spawn(Scheduler& s, Tcb* parent, Tcb* child, int proc = 0) {
    const bool preempt = s.register_thread(parent, child);
    if (preempt) {
      if (parent) {
        parent->state.store(ThreadState::Ready, std::memory_order_relaxed);
        s.on_ready(parent, proc);
      }
      child->state.store(ThreadState::Running, std::memory_order_relaxed);
    } else {
      child->state.store(ThreadState::Ready, std::memory_order_relaxed);
      s.on_ready(child, proc);
    }
    return preempt;
  }

  Tcb* pick(Scheduler& s, int proc = 0, std::uint64_t now = kInf) {
    std::uint64_t earliest = kInf;
    Tcb* t = s.pick_next(proc, now, &earliest);
    if (t) t->state.store(ThreadState::Running, std::memory_order_relaxed);
    return t;
  }
};

// ---------- FIFO ----------

TEST(FifoScheduler, BreadthFirstOrder) {
  FifoScheduler s;
  Harness h;
  Tcb* root = h.make();
  EXPECT_FALSE(h.spawn(s, nullptr, root));  // FIFO never preempts
  Tcb* a = h.make();
  Tcb* b = h.make();
  EXPECT_FALSE(h.spawn(s, root, a));
  EXPECT_FALSE(h.spawn(s, root, b));
  // Dispatch order is arrival order: root, a, b.
  EXPECT_EQ(h.pick(s), root);
  EXPECT_EQ(h.pick(s), a);
  EXPECT_EQ(h.pick(s), b);
  EXPECT_EQ(h.pick(s), nullptr);
}

TEST(FifoScheduler, VirtualTimeEligibility) {
  FifoScheduler s;
  Harness h;
  Tcb* a = h.make();
  Tcb* b = h.make();
  a->ready_at_ns = 100;
  b->ready_at_ns = 50;
  a->state.store(ThreadState::Ready, std::memory_order_relaxed);
  b->state.store(ThreadState::Ready, std::memory_order_relaxed);
  s.on_ready(a, 0);
  s.on_ready(b, 0);
  std::uint64_t earliest = kInf;
  // At t=10 nothing eligible; earliest is the front-most minimum (50).
  EXPECT_EQ(s.pick_next(0, 10, &earliest), nullptr);
  EXPECT_EQ(earliest, 50u);
  // At t=60, only b (despite a being ahead in the queue).
  EXPECT_EQ(s.pick_next(0, 60, &earliest), b);
  EXPECT_EQ(s.pick_next(0, 60, &earliest), nullptr);
  EXPECT_EQ(s.pick_next(0, 100, &earliest), a);
}

TEST(FifoScheduler, PriorityLevelsStrict) {
  FifoScheduler s;
  Harness h;
  Tcb* lo = h.make(0);
  Tcb* hi = h.make(3);
  h.spawn(s, nullptr, lo);
  h.spawn(s, nullptr, hi);
  EXPECT_EQ(h.pick(s), hi);
  EXPECT_EQ(h.pick(s), lo);
}

// ---------- LIFO ----------

TEST(LifoScheduler, DepthFirstOrder) {
  LifoScheduler s;
  Harness h;
  Tcb* root = h.make();
  h.spawn(s, nullptr, root);
  Tcb* a = h.make();
  Tcb* b = h.make();
  h.spawn(s, root, a);
  h.spawn(s, root, b);
  // Stack order: most recently pushed first.
  EXPECT_EQ(h.pick(s), b);
  EXPECT_EQ(h.pick(s), a);
  EXPECT_EQ(h.pick(s), root);
}

TEST(LifoScheduler, PriorityBeatsRecency) {
  LifoScheduler s;
  Harness h;
  Tcb* hi = h.make(5);
  Tcb* lo = h.make(1);
  h.spawn(s, nullptr, hi);
  h.spawn(s, nullptr, lo);  // lo pushed last but lower priority
  EXPECT_EQ(h.pick(s), hi);
  EXPECT_EQ(h.pick(s), lo);
}

// ---------- AsyncDF ----------

TEST(AsyncDfScheduler, PreemptsParentAndRunsChild) {
  AsyncDfScheduler s;
  Harness h;
  Tcb* root = h.make();
  EXPECT_TRUE(h.spawn(s, nullptr, root));  // root starts running
  Tcb* child = h.make();
  EXPECT_TRUE(h.spawn(s, root, child));  // "parent is preempted immediately"
  EXPECT_EQ(child->state.load(), ThreadState::Running);
  EXPECT_EQ(root->state.load(), ThreadState::Ready);
}

TEST(AsyncDfScheduler, ChildPlacedImmediatelyLeftOfParent) {
  AsyncDfScheduler s;
  Harness h;
  Tcb* root = h.make();
  h.spawn(s, nullptr, root);
  Tcb* c1 = h.make();
  h.spawn(s, root, c1);
  Tcb* c2 = h.make();
  h.spawn(s, c1, c2);  // c1 forks c2: order must be c2 < c1 < root
  EXPECT_TRUE(s.serial_before(c2, c1));
  EXPECT_TRUE(s.serial_before(c1, root));
  // Sibling fork: root (running again) forks c3 -> c2 < c1? order c1<c3? No:
  // c3 goes immediately left of root, i.e., after c1: c2 < c1 < c3 < root.
  Tcb* c3 = h.make();
  h.spawn(s, root, c3);
  EXPECT_TRUE(s.serial_before(c1, c3));
  EXPECT_TRUE(s.serial_before(c3, root));
}

TEST(AsyncDfScheduler, DispatchesLeftmostReady) {
  AsyncDfScheduler s;
  Harness h;
  Tcb* root = h.make();
  h.spawn(s, nullptr, root);
  Tcb* c1 = h.make();
  h.spawn(s, root, c1);  // c1 running, root ready
  Tcb* c2 = h.make();
  h.spawn(s, c1, c2);  // c2 running, c1 ready; order c2 < c1 < root
  // Make everything ready, then pick: leftmost first.
  c2->state.store(ThreadState::Ready, std::memory_order_relaxed);
  s.on_ready(c2, 0);
  EXPECT_EQ(h.pick(s), c2);
  EXPECT_EQ(h.pick(s), c1);
  EXPECT_EQ(h.pick(s), root);
  EXPECT_EQ(h.pick(s), nullptr);
}

TEST(AsyncDfScheduler, PlaceholderSurvivesBlockAndPreemption) {
  AsyncDfScheduler s;
  Harness h;
  Tcb* root = h.make();
  h.spawn(s, nullptr, root);
  Tcb* c1 = h.make();
  h.spawn(s, root, c1);
  // c1 blocks (e.g. on a mutex): it keeps its entry, is just not Ready.
  c1->state.store(ThreadState::Blocked, std::memory_order_relaxed);
  EXPECT_EQ(h.pick(s), root);  // root is the only ready thread
  // c1 wakes: re-enters at its placeholder — still left of root.
  c1->state.store(ThreadState::Ready, std::memory_order_relaxed);
  s.on_ready(c1, 0);
  root->state.store(ThreadState::Ready, std::memory_order_relaxed);
  s.on_ready(root, 0);
  EXPECT_EQ(h.pick(s), c1);
  EXPECT_TRUE(s.serial_before(c1, root));
}

TEST(AsyncDfScheduler, ExitRemovesPlaceholder) {
  AsyncDfScheduler s;
  Harness h;
  Tcb* root = h.make();
  h.spawn(s, nullptr, root);
  Tcb* c1 = h.make();
  h.spawn(s, root, c1);
  EXPECT_EQ(s.live_count(0), 2u);
  c1->state.store(ThreadState::Done, std::memory_order_relaxed);
  s.unregister_thread(c1);
  EXPECT_EQ(s.live_count(0), 1u);
  EXPECT_FALSE(c1->order.linked());
}

TEST(AsyncDfScheduler, NeedsQuota) {
  AsyncDfScheduler s;
  EXPECT_TRUE(s.needs_quota());
  FifoScheduler f;
  EXPECT_FALSE(f.needs_quota());
}

TEST(AsyncDfScheduler, LowerPriorityChildDoesNotPreempt) {
  AsyncDfScheduler s;
  Harness h;
  Tcb* root = h.make(4);
  h.spawn(s, nullptr, root);
  Tcb* low = h.make(1);
  EXPECT_FALSE(h.spawn(s, root, low));
  EXPECT_EQ(low->state.load(), ThreadState::Ready);
}

TEST(AsyncDfScheduler, HigherPriorityPickedFirst) {
  AsyncDfScheduler s;
  Harness h;
  Tcb* root = h.make(4);
  h.spawn(s, nullptr, root);
  Tcb* low = h.make(1);
  h.spawn(s, root, low);
  root->state.store(ThreadState::Ready, std::memory_order_relaxed);
  s.on_ready(root, 0);
  EXPECT_EQ(h.pick(s), root);  // priority 4 before priority 1
  EXPECT_EQ(h.pick(s), low);
}

// ---------- Work stealing ----------

TEST(WorkStealScheduler, OwnerPopsMostRecent) {
  WorkStealScheduler s(2, /*seed=*/1);
  Harness h;
  Tcb* a = h.make();
  Tcb* b = h.make();
  a->state.store(ThreadState::Ready, std::memory_order_relaxed);
  b->state.store(ThreadState::Ready, std::memory_order_relaxed);
  s.on_ready(a, 0);
  s.on_ready(b, 0);
  EXPECT_EQ(h.pick(s, 0), b);  // own deque: LIFO end
  EXPECT_EQ(h.pick(s, 0), a);
}

TEST(WorkStealScheduler, ThiefStealsOldest) {
  WorkStealScheduler s(2, /*seed=*/1);
  Harness h;
  Tcb* a = h.make();
  Tcb* b = h.make();
  a->state.store(ThreadState::Ready, std::memory_order_relaxed);
  b->state.store(ThreadState::Ready, std::memory_order_relaxed);
  s.on_ready(a, 0);
  s.on_ready(b, 0);
  // Processor 1 owns an empty deque: it steals the *bottom* (oldest) of 0's.
  EXPECT_EQ(h.pick(s, 1), a);
  EXPECT_EQ(s.steal_count(), 1u);
  EXPECT_EQ(h.pick(s, 0), b);
}

TEST(WorkStealScheduler, SpawnPreemptsParent) {
  WorkStealScheduler s(2, /*seed=*/1);
  Harness h;
  Tcb* root = h.make();
  EXPECT_TRUE(h.spawn(s, nullptr, root));
  Tcb* child = h.make();
  EXPECT_TRUE(h.spawn(s, root, child));  // work-first
  EXPECT_EQ(child->state.load(), ThreadState::Running);
  // Parent continuation sits in the deque.
  EXPECT_EQ(h.pick(s, 0), root);
}

// ---------- factory & names ----------

TEST(SchedulerFactory, MakesEveryKind) {
  for (auto kind : {SchedKind::Fifo, SchedKind::Lifo, SchedKind::AsyncDf,
                    SchedKind::WorkSteal}) {
    auto s = make_scheduler(kind, 4, 7);
    ASSERT_NE(s, nullptr);
    EXPECT_EQ(s->kind(), kind);
    EXPECT_EQ(sched_kind_from_string(to_string(s->kind())), kind);
  }
}

}  // namespace
}  // namespace dfth
