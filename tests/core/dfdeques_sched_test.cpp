// DfDeques (§5.3 "current work"): ordered deques, LIFO owner path,
// leftmost-bottom stealing with deque repositioning, and the locality
// property on a tree-spawned workload.
#include "core/dfdeques_sched.h"

#include <gtest/gtest.h>

#include <limits>
#include <memory>
#include <vector>

#include "apps/volrend/volrend.h"
#include "runtime/api.h"

namespace dfth {
namespace {

constexpr std::uint64_t kInf = std::numeric_limits<std::uint64_t>::max();

struct Harness {
  std::vector<std::unique_ptr<Tcb>> tcbs;
  std::uint64_t next_id = 1;

  Tcb* make() {
    tcbs.push_back(std::make_unique<Tcb>(next_id++));
    return tcbs.back().get();
  }

  void ready(Scheduler& s, Tcb* t, int proc) {
    t->state.store(ThreadState::Ready, std::memory_order_relaxed);
    s.on_ready(t, proc);
  }

  Tcb* pick(Scheduler& s, int proc) {
    std::uint64_t earliest = kInf;
    Tcb* t = s.pick_next(proc, kInf, &earliest);
    if (t) t->state.store(ThreadState::Running, std::memory_order_relaxed);
    return t;
  }
};

TEST(DfDeques, OwnerWorksLifo) {
  DfDequesScheduler s(2);
  Harness h;
  Tcb* a = h.make();
  Tcb* b = h.make();
  h.ready(s, a, 0);
  h.ready(s, b, 0);
  EXPECT_EQ(h.pick(s, 0), b);  // newest first on the owner's end
  EXPECT_EQ(h.pick(s, 0), a);
  EXPECT_EQ(h.pick(s, 0), nullptr);
}

TEST(DfDeques, ThiefTakesOldestFromLeftmostDeque) {
  DfDequesScheduler s(3);
  Harness h;
  Tcb* a = h.make();
  Tcb* b = h.make();
  h.ready(s, a, 0);
  h.ready(s, b, 0);
  // Proc 2's deque is empty: it must steal the BOTTOM (a) of deque 0.
  EXPECT_EQ(h.pick(s, 2), a);
  EXPECT_EQ(s.steal_count(), 1u);
  EXPECT_EQ(a->home_proc, 2);  // migrated
  // Thief's deque moved right of the victim's: 0 < 2 (< 1 untouched-ish).
  EXPECT_TRUE(s.deque_before(0, 2));
  // Owner still has its newest thread.
  EXPECT_EQ(h.pick(s, 0), b);
}

TEST(DfDeques, SpawnPreemptsParentAndKeepsQuota) {
  DfDequesScheduler s(2);
  Harness h;
  Tcb* parent = h.make();
  Tcb* child = h.make();
  EXPECT_TRUE(s.register_thread(parent, child));  // work-first
  EXPECT_TRUE(s.needs_quota());
}

TEST(DfDeques, StolenSubtreeStaysLocal) {
  // Tree-spawned volrend at the finest granularity: the locality-aware
  // scheduler must keep the cache hit rate high where plain AsyncDF loses
  // it (§5.3's claim), while producing the identical image.
  apps::VolrendConfig cfg;
  cfg.volume_dim = 64;
  cfg.image_dim = 64;
  cfg.tiles_per_thread = 1;
  apps::Volume vol(cfg);
  const auto serial_img = apps::volrend_serial(vol, cfg);

  auto one = [&](SchedKind sched) {
    RuntimeOptions o;
    o.engine = EngineKind::Sim;
    o.sched = sched;
    o.nprocs = 8;
    o.default_stack_size = 8 << 10;
    apps::Image img;
    RunStats stats = run(o, [&] { img = apps::volrend_fine_tree(vol, cfg); });
    EXPECT_TRUE(apps::volrend_images_equal(img, serial_img)) << to_string(sched);
    return stats;
  };
  const RunStats adf = one(SchedKind::AsyncDf);
  const RunStats dfd = one(SchedKind::DfDeques);
  const auto rate = [](const RunStats& s) {
    return static_cast<double>(s.cache_hits) /
           static_cast<double>(s.cache_hits + s.cache_misses + 1);
  };
  EXPECT_GT(rate(dfd), rate(adf));
  EXPECT_LE(dfd.elapsed_us, adf.elapsed_us);
}

TEST(DfDeques, FlatForkTreeCompletesOnBothEngines) {
  for (EngineKind engine : {EngineKind::Sim, EngineKind::Real}) {
    RuntimeOptions o;
    o.engine = engine;
    o.sched = SchedKind::DfDeques;
    o.nprocs = 4;
    o.default_stack_size = 8 << 10;
    long long sum = 0;
    run(o, [&] {
      struct Rec {
        static long long go(int depth) {
          annotate_work(100);
          if (depth == 0) return 1;
          auto left = spawn([depth]() -> void* {
            return reinterpret_cast<void*>(go(depth - 1));
          });
          const long long right = go(depth - 1);
          return reinterpret_cast<long long>(join(left)) + right;
        }
      };
      sum = Rec::go(9);
    });
    EXPECT_EQ(sum, 512) << to_string(engine);
  }
}

TEST(DfDeques, SpaceStaysBoundedOnMatmulPattern) {
  // Allocating fork tree: DfDeques' ordered stealing should keep live
  // threads and heap near AsyncDF's, far below FIFO's.
  auto tree = [](int depth, auto&& self) -> void {
    annotate_work(500);
    if (depth == 0) return;
    void* buf = df_malloc(16 << 10);
    auto left = spawn([depth, &self]() -> void* {
      self(depth - 1, self);
      return nullptr;
    });
    self(depth - 1, self);
    join(left);
    df_free(buf);
  };
  auto one = [&](SchedKind sched) {
    RuntimeOptions o;
    o.engine = EngineKind::Sim;
    o.sched = sched;
    o.nprocs = 8;
    o.default_stack_size = 8 << 10;
    return run(o, [&] { tree(10, tree); });
  };
  const RunStats dfd = one(SchedKind::DfDeques);
  const RunStats fifo = one(SchedKind::Fifo);
  EXPECT_LT(dfd.max_live_threads, fifo.max_live_threads / 3);
  EXPECT_LT(dfd.heap_peak, fifo.heap_peak);
}

}  // namespace
}  // namespace dfth
