// Behavior tests for deterministic record/replay (src/replay/): the seven
// paper apps record on the RealEngine at p=4 and replay to identical
// schedule-dependent RunStats (and identical race-report sets when the
// build carries -DDFTH_RACE); corrupt or mismatched logs are rejected with
// a diagnostic before any engine state exists; a RealEngine log
// cross-replays to completion on the SimEngine.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "analyze/race_detector.h"
#include "apps_runner.h"
#include "replay/log.h"
#include "replay/signature.h"
#include "runtime/api.h"

namespace dfth {
namespace {

std::string temp_path(const std::string& name) {
  return testing::TempDir() + "dfth_replay_test_" + name + ".dfthlog";
}

// A small irregular spawn tree with joins — enough concurrency on four
// workers to exercise dispatch, steal-free requeue and join ordering, and
// quick enough for the corruption death tests that re-run it.
void* tree(int depth) {
  if (depth == 0) return nullptr;
  Thread a = spawn([depth]() -> void* { return tree(depth - 1); });
  Thread b = spawn([depth]() -> void* { return tree(depth - 1); });
  join(a);
  join(b);
  return nullptr;
}

RuntimeOptions real_opts() {
  RuntimeOptions o;
  o.engine = EngineKind::Real;
  o.sched = SchedKind::AsyncDf;
  o.nprocs = 4;
  o.default_stack_size = 64 << 10;
  return o;
}

RunStats run_tree(RuntimeOptions o) {
  return run(o, [] { tree(6); });
}

#if DFTH_RACE
// Order-insensitive fingerprint of the accumulated race reports: the site
// labels and fiber ids, sorted. Identical schedules must produce identical
// report sets.
std::vector<std::string> race_fingerprint() {
  std::vector<std::string> out;
  for (const analyze::RaceReport& r : analyze::RaceDetector::instance().reports()) {
    std::string s;
    s += r.prev.site ? r.prev.site : "?";
    s += r.prev.is_write ? "w" : "r";
    s += std::to_string(r.prev.fiber);
    s += "|";
    s += r.cur.site ? r.cur.site : "?";
    s += r.cur.is_write ? "w" : "r";
    s += std::to_string(r.cur.fiber);
    out.push_back(std::move(s));
  }
  std::sort(out.begin(), out.end());
  return out;
}
#endif

TEST(ReplayDeterminism, SevenAppsRealEngine) {
  if (!replay::kReplayEnabled) GTEST_SKIP() << "built with -DDFTH_REPLAY=OFF";
  constexpr std::uint64_t kSeed = 0x5eed;
  constexpr int kProcs = 4;

  std::string rr_path;
  std::string rr_tag;
  // The tag lets `dfth-replay replay` re-drive a log this test leaves behind
  // after an abort-on-divergence — the failure artifact is self-describing.
  auto record_tweak = [&rr_path, &rr_tag](RuntimeOptions& o) {
    o.record_path = rr_path;
    o.record_tag = rr_tag;
  };
  auto replay_tweak = [&rr_path](RuntimeOptions& o) { o.replay_path = rr_path; };
  auto recorded = bench::make_apps(/*full=*/false, kSeed, EngineKind::Real,
                                   nullptr, record_tweak);
  auto replayed = bench::make_apps(/*full=*/false, kSeed, EngineKind::Real,
                                   nullptr, replay_tweak);
  ASSERT_EQ(recorded.size(), 7u);

  for (std::size_t i = 0; i < recorded.size(); ++i) {
    rr_tag = bench::app_slug(recorded[i].name);
    rr_path = temp_path(rr_tag);
#if DFTH_RACE
    analyze::RaceDetector::instance().clear();
#endif
    const RunStats rec = recorded[i].fine(SchedKind::AsyncDf, kProcs, kSeed);
#if DFTH_RACE
    const std::vector<std::string> rec_races = race_fingerprint();
    analyze::RaceDetector::instance().clear();
#endif
    const RunStats rep = replayed[i].fine(SchedKind::AsyncDf, kProcs, kSeed);
    EXPECT_EQ(replay::determinism_signature(rec),
              replay::determinism_signature(rep))
        << recorded[i].name << ": replay diverged from its own recording";
#if DFTH_RACE
    EXPECT_EQ(rec_races, race_fingerprint())
        << recorded[i].name << ": race-report sets differ across replay";
#endif
    std::remove(rr_path.c_str());
  }
}

TEST(ReplayDeterminism, SpawnTreeStatsAndLogStable) {
  if (!replay::kReplayEnabled) GTEST_SKIP() << "built with -DDFTH_REPLAY=OFF";
  const std::string path = temp_path("tree");
  RuntimeOptions o = real_opts();
  o.record_path = path;
  o.record_tag = "tree";
  const RunStats rec = run_tree(o);

  replay::LoadedLog log;
  std::string error;
  ASSERT_TRUE(replay::load_log(path, &log, &error)) << error;
  EXPECT_EQ(log.header.clean_end, 1u);
  EXPECT_STREQ(log.header.tag, "tree");
  EXPECT_GT(log.ordered.size(), rec.threads_created)
      << "every spawn implies at least its registration event";

  RuntimeOptions r = real_opts();
  r.replay_path = path;
  const RunStats rep = run_tree(r);
  EXPECT_EQ(replay::determinism_signature(rec),
            replay::determinism_signature(rep));
  std::remove(path.c_str());
}

TEST(ReplayDeterminism, CrossReplayOnSimCompletes) {
  if (!replay::kReplayEnabled) GTEST_SKIP() << "built with -DDFTH_REPLAY=OFF";
  const std::string path = temp_path("cross");
  RuntimeOptions o = real_opts();
  o.record_path = path;
  const RunStats rec = run_tree(o);

  // Same log, SimEngine: the cross-replayer maps the recorded dispatch
  // order onto virtual time. Stats are re-derived under the cost model, but
  // the shape of the computation is pinned.
  RuntimeOptions s = real_opts();
  s.engine = EngineKind::Sim;
  s.replay_path = path;
  const RunStats rep = run_tree(s);
  EXPECT_EQ(rep.threads_created, rec.threads_created);
  std::remove(path.c_str());
}

using ReplayDeathTest = ::testing::Test;

TEST(ReplayDeathTest, CorruptLogRejected) {
  if (!replay::kReplayEnabled) GTEST_SKIP() << "built with -DDFTH_REPLAY=OFF";
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  const std::string path = temp_path("corrupt");
  RuntimeOptions o = real_opts();
  o.record_path = path;
  run_tree(o);

  // Flip one payload byte: load_log must fail the checksum and run() must
  // refuse to start, with the diagnostic naming the file.
  {
    std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
    f.seekp(-1, std::ios::end);
    char c;
    f.seekg(-1, std::ios::end);
    f.get(c);
    f.seekp(-1, std::ios::end);
    f.put(static_cast<char>(c ^ 0x5a));
  }
  RuntimeOptions r = real_opts();
  r.replay_path = path;
  EXPECT_DEATH(run_tree(r), "checksum mismatch");
  std::remove(path.c_str());
}

TEST(ReplayDeathTest, TruncatedLogRejected) {
  if (!replay::kReplayEnabled) GTEST_SKIP() << "built with -DDFTH_REPLAY=OFF";
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  const std::string path = temp_path("trunc");
  RuntimeOptions o = real_opts();
  o.record_path = path;
  run_tree(o);
  {
    std::ifstream in(path, std::ios::binary);
    std::string bytes((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    in.close();
    bytes.resize(bytes.size() / 2);
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  RuntimeOptions r = real_opts();
  r.replay_path = path;
  EXPECT_DEATH(run_tree(r), "truncated|promised");
  std::remove(path.c_str());
}

TEST(ReplayDeathTest, MismatchedOptionsRejected) {
  if (!replay::kReplayEnabled) GTEST_SKIP() << "built with -DDFTH_REPLAY=OFF";
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  const std::string path = temp_path("mismatch");
  RuntimeOptions o = real_opts();
  o.record_path = path;
  run_tree(o);

  RuntimeOptions r = real_opts();
  r.nprocs = 2;  // the log says 4
  r.replay_path = path;
  EXPECT_DEATH(run_tree(r), "does not match");
  std::remove(path.c_str());
}

TEST(ReplayOptions, RecordAndReplayMutuallyExclusive) {
  if (!replay::kReplayEnabled) GTEST_SKIP() << "built with -DDFTH_REPLAY=OFF";
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  RuntimeOptions o = real_opts();
  o.record_path = temp_path("both");
  o.replay_path = temp_path("both");
  EXPECT_DEATH(run_tree(o), "mutually exclusive");
}

}  // namespace
}  // namespace dfth
