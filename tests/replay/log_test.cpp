// Format-level tests for the schedule log (src/replay/log.h): save/load
// roundtrip and the promise that every malformation is a diagnosed error,
// never UB. These run in both replay build flavors — the reader/writer
// compiles unconditionally; only the engine hooks are #if-gated.
#include "replay/log.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "replay/hooks.h"

namespace dfth::replay {
namespace {

// The hook macros must be statement-safe no-ops whenever there is no active
// session — including the -DDFTH_REPLAY=OFF build, where they expand to
// ((void)0) (mirroring the obs/trace.h discipline).
TEST(ReplayHooks, NoOpWithoutSession) {
  DFTH_REPLAY_BIND_LANE(0);
  DFTH_REPLAY_GATE(kActorHost);
  DFTH_REPLAY_GATE_SELF();
  DFTH_REPLAY_COMMIT(::dfth::replay::EvKind::Dispatch, kActorHost, 1, 0);
  DFTH_REPLAY_SYNC_GATE();
  DFTH_REPLAY_FAULT_GATE();
  DFTH_REPLAY_STEAL(0, 1, 2);
  if (true) DFTH_REPLAY_GATE_SELF();  // must parse as a single statement
  SUCCEED();
}

std::string temp_log_path(const char* name) {
  return testing::TempDir() + "dfth_log_test_" + name + ".dfthlog";
}

LogHeader make_header() {
  LogHeader h{};
  h.engine = 1;
  h.sched = 2;
  h.nprocs = 4;
  h.cluster_size = 4;
  h.seed = 0x5eed;
  h.mem_quota = 1 << 20;
  h.default_stack_size = 8 << 10;
  h.clean_end = 1;
  std::snprintf(h.tag, sizeof(h.tag), "log-test");
  return h;
}

Record rec(std::uint64_t seq, EvKind kind, std::uint64_t actor,
           std::uint64_t a = 0, std::uint64_t b = 0,
           std::uint16_t flags = 0) {
  Record r;
  r.seq = seq;
  r.kind = static_cast<std::uint16_t>(kind);
  r.actor = actor;
  r.a = a;
  r.b = b;
  r.flags = flags;
  return r;
}

// Two lanes with interleaved seq values plus one annotation: the loader
// must merge the ordered records by seq and split annotations out.
std::vector<std::vector<Record>> make_lanes() {
  std::vector<std::vector<Record>> lanes(2);
  lanes[0] = {rec(0, EvKind::TidAlloc, kActorHost, 1),
              rec(2, EvKind::Dispatch, lane_actor(0), 1),
              rec(5, EvKind::Steal, lane_actor(0), 3, 1, kFlagAnnotation)};
  lanes[1] = {rec(1, EvKind::SpawnReg, kActorHost, 1),
              rec(3, EvKind::Sync, 1, 7, 1),
              rec(4, EvKind::ExitSched, 1, 1)};
  return lanes;
}

TEST(ReplayLog, RoundTrip) {
  const std::string path = temp_log_path("roundtrip");
  std::string error;
  ASSERT_TRUE(save_log(path, make_header(), make_lanes(), &error)) << error;

  LoadedLog log;
  ASSERT_TRUE(load_log(path, &log, &error)) << error;
  EXPECT_STREQ(log.header.tag, "log-test");
  EXPECT_EQ(log.header.nprocs, 4u);
  EXPECT_EQ(log.header.seed, 0x5eedu);
  EXPECT_EQ(log.header.event_count, 6u);
  ASSERT_EQ(log.ordered.size(), 5u);
  ASSERT_EQ(log.annotations.size(), 1u);
  for (std::size_t i = 0; i < log.ordered.size(); ++i) {
    EXPECT_EQ(log.ordered[i].seq, i) << "merge by seq";
  }
  EXPECT_EQ(log.ordered[3].kind, static_cast<std::uint16_t>(EvKind::Sync));
  EXPECT_EQ(log.annotations[0].a, 3u);
  std::remove(path.c_str());
}

// Writes `path` as a copy of a valid log with `mutate` applied to the bytes.
void write_mutated(const std::string& path,
                   const std::function<void(std::string*)>& mutate) {
  const std::string good = temp_log_path("good");
  std::string error;
  ASSERT_TRUE(save_log(good, make_header(), make_lanes(), &error)) << error;
  std::ifstream in(good, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  in.close();
  std::remove(good.c_str());
  mutate(&bytes);
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

TEST(ReplayLog, RejectsShortFile) {
  const std::string path = temp_log_path("short");
  write_mutated(path, [](std::string* b) { b->resize(16); });
  LoadedLog log;
  std::string error;
  EXPECT_FALSE(load_log(path, &log, &error));
  EXPECT_NE(error.find("shorter than a log header"), std::string::npos) << error;
  std::remove(path.c_str());
}

TEST(ReplayLog, RejectsBadMagic) {
  const std::string path = temp_log_path("magic");
  write_mutated(path, [](std::string* b) { (*b)[0] = 'X'; });
  LoadedLog log;
  std::string error;
  EXPECT_FALSE(load_log(path, &log, &error));
  EXPECT_NE(error.find("no DFTHLOG1 magic"), std::string::npos) << error;
  std::remove(path.c_str());
}

TEST(ReplayLog, RejectsUnknownVersion) {
  const std::string path = temp_log_path("version");
  write_mutated(path, [](std::string* b) { (*b)[8] = 99; });
  LoadedLog log;
  std::string error;
  EXPECT_FALSE(load_log(path, &log, &error));
  EXPECT_NE(error.find("format version"), std::string::npos) << error;
  std::remove(path.c_str());
}

TEST(ReplayLog, RejectsTruncatedLaneBlock) {
  const std::string path = temp_log_path("truncated");
  write_mutated(path, [](std::string* b) { b->resize(b->size() - 24); });
  LoadedLog log;
  std::string error;
  EXPECT_FALSE(load_log(path, &log, &error));
  EXPECT_NE(error.find("truncated"), std::string::npos) << error;
  std::remove(path.c_str());
}

TEST(ReplayLog, RejectsCorruptedRecordBytes) {
  const std::string path = temp_log_path("checksum");
  // Flip payload bytes in the last record, past every header field the
  // structural checks read — only the checksum can catch this.
  write_mutated(path, [](std::string* b) { (*b)[b->size() - 1] ^= 0x5a; });
  LoadedLog log;
  std::string error;
  EXPECT_FALSE(load_log(path, &log, &error));
  EXPECT_NE(error.find("checksum mismatch"), std::string::npos) << error;
  std::remove(path.c_str());
}

TEST(ReplayLog, RejectsMissingFile) {
  LoadedLog log;
  std::string error;
  EXPECT_FALSE(load_log(temp_log_path("nonexistent"), &log, &error));
  EXPECT_NE(error.find("cannot open"), std::string::npos) << error;
}

}  // namespace
}  // namespace dfth::replay
