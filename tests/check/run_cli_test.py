#!/usr/bin/env python3
"""CLI error-path tests for dfth-check.

Each misuse must exit non-zero with a one-line diagnostic on stderr —
never a crash, never silence, never a zero exit that CI would read as a
clean analysis.

Exit codes: 0 pass, 1 mismatch, 77 skip (tool not built).
"""

import argparse
import os
import subprocess
import sys
import tempfile

SKIP = 77


def run(tool, argv):
    return subprocess.run([tool] + argv, capture_output=True, text=True)


def expect_error(name, proc, failures):
    ok = True
    if proc.returncode == 0:
        print(f"FAIL {name}: exited 0, want non-zero")
        ok = False
    err = proc.stderr.strip()
    if not err:
        print(f"FAIL {name}: no diagnostic on stderr")
        ok = False
    elif len(err.splitlines()) != 1:
        print(f"FAIL {name}: want a one-line diagnostic, got:\n{err}")
        ok = False
    if ok:
        print(f"ok   {name}: exit {proc.returncode}, \"{err}\"")
        return failures
    return failures + 1


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("--tool", required=True)
    args = ap.parse_args()

    if not os.path.isfile(args.tool) or not os.access(args.tool, os.X_OK):
        print(f"SKIP: dfth-check binary not found at {args.tool}")
        return SKIP

    failures = 0

    failures = expect_error(
        "missing file", run(args.tool, ["/nonexistent/nowhere.cpp"]), failures)

    with tempfile.TemporaryDirectory() as empty:
        failures = expect_error(
            "empty TU set", run(args.tool, [empty]), failures)

    with tempfile.TemporaryDirectory() as d:
        src = os.path.join(d, "x.cpp")
        with open(src, "w", encoding="utf-8") as f:
            f.write("int x = 0;\n")
        failures = expect_error(
            "unknown --check", run(args.tool, ["--check=no-such-check", src]),
            failures)
        failures = expect_error(
            "unknown --format", run(args.tool, ["--format=yaml", src]),
            failures)
        failures = expect_error(
            "space mode without apps",
            run(args.tool, ["--space-bound=" + os.path.join(d, "sb.json"), src]),
            failures)
        failures = expect_error(
            "malformed --space-app",
            run(args.tool, ["--space-app=justaname", src]), failures)

        # Sanity inversion: a well-formed invocation on the same TU is clean.
        proc = run(args.tool, [src])
        if proc.returncode != 0:
            print(f"FAIL clean invocation: exited {proc.returncode}:\n"
                  f"{proc.stdout}{proc.stderr}")
            failures += 1
        else:
            print("ok   clean invocation: exit 0")

    if failures:
        print(f"{failures} CLI assertion(s) failed")
        return 1
    print("cli: all assertions passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
