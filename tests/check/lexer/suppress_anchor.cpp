// Lexer fixture: suppression marker anchoring (`G` lines in --dump-tokens).
// A trailing marker anchors to its own line; a comment-only marker anchors
// to the next token line, hopping blank and comment lines.
int a = 1;  // dfth-check-ignore(blocking-while-holding-lock)

// dfth-check-ignore(lock-order)

// an unrelated comment between marker and statement
int b = 2;
