// Lexer fixture: raw string literals (all prefixes) and digit separators.
// Consumed by run_lexer_test.py via `dfth-check --dump-tokens`; never
// compiled. The sentinel identifiers prove the lexer resumed in the right
// place: if a raw string's delimiter handling slipped, the `//` inside it
// would eat the rest of the line and a sentinel would vanish.
const char* plain = R"(has "quotes" and // not_a_comment)";
int after_plain = 0;
const char* delim = R"xy(paren )" inside)xy";
int after_delim = 0;
const char* u8p = u8R"(u8 // raw)";
const char* u16 = uR"(u16 raw)";
const char* u32 = UR"(u32 raw)";
const wchar_t* wide = LR"(wide // raw)";
int after_prefixed = 0;

int plain_sep = 1'000'000;
int hex_sep = 0xFF'FF;
double float_sep = 1'000.000'1;
unsigned long long suffixed = 1'000ull;
int after_numbers = 0;
