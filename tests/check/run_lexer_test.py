#!/usr/bin/env python3
"""Lexer unit tests for dfth-check, driven through `--dump-tokens`.

The dump prints one `path:line:col KIND text` line per token (KIND in
I/N/S/P) plus one `path:line:0 G check` line per anchored suppression
marker. The assertions below pin the behaviors the satellites added: raw
strings with every encoding prefix (a `//` inside one must not eat the
line), digit separators lexed as one number token, and suppression markers
anchored to exactly the statement they govern.

Exit codes: 0 pass, 1 mismatch, 77 skip (tool not built).
"""

import argparse
import os
import subprocess
import sys

SKIP = 77


def dump(tool, path):
    proc = subprocess.run([tool, "--dump-tokens", path],
                          capture_output=True, text=True)
    if proc.returncode != 0:
        print(f"FAIL: --dump-tokens exited {proc.returncode}:\n"
              f"{proc.stdout}{proc.stderr}")
        return None
    rows = []
    for line in proc.stdout.splitlines():
        head, _, text = line.partition(" ")
        kind, _, tok = text.partition(" ")
        parts = head.rsplit(":", 2)
        if len(parts) != 3 or kind not in ("I", "N", "S", "P", "G"):
            print(f"FAIL: unparseable dump line: {line!r}")
            return None
        rows.append((int(parts[1]), kind, tok))
    return rows


def check(cond, what, failures):
    if cond:
        print(f"ok   {what}")
        return failures
    print(f"FAIL {what}")
    return failures + 1


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("--tool", required=True)
    ap.add_argument("--lexer-dir", required=True,
                    help="directory holding the lexer fixtures")
    args = ap.parse_args()

    if not os.path.isfile(args.tool) or not os.access(args.tool, os.X_OK):
        print(f"SKIP: dfth-check binary not found at {args.tool}")
        return SKIP

    failures = 0

    rows = dump(args.tool, os.path.join(args.lexer_dir, "raw_strings.cpp"))
    if rows is None:
        return 1
    idents = [tok for _, kind, tok in rows if kind == "I"]
    numbers = [tok for _, kind, tok in rows if kind == "N"]
    strings = [tok for _, kind, tok in rows if kind == "S"]

    # One string token per literal; the `// not_a_comment` inside the raw
    # strings must not have commented out the rest of any line.
    failures = check(len(strings) == 6,
                     f"raw_strings: 6 string tokens (got {len(strings)})",
                     failures)
    for sentinel in ("after_plain", "after_delim", "after_prefixed",
                     "after_numbers"):
        failures = check(sentinel in idents,
                         f"raw_strings: sentinel '{sentinel}' survives",
                         failures)
    failures = check("not_a_comment" not in idents,
                     "raw_strings: raw-string content is not tokenized",
                     failures)

    # Digit separators: each literal is ONE number token, separator intact.
    for want in ("1'000'000", "0xFF'FF", "1'000.000'1", "1'000ull"):
        failures = check(want in numbers,
                         f"raw_strings: number token {want!r}", failures)
    failures = check("000" not in numbers and "FF" not in numbers,
                     "raw_strings: no separator-split number fragments",
                     failures)

    rows = dump(args.tool, os.path.join(args.lexer_dir, "suppress_anchor.cpp"))
    if rows is None:
        return 1
    anchors = {(line, tok) for line, kind, tok in rows if kind == "G"}
    failures = check((4, "blocking-while-holding-lock") in anchors,
                     "suppress_anchor: trailing marker stays on its line",
                     failures)
    failures = check((9, "lock-order") in anchors,
                     "suppress_anchor: comment-only marker anchors to the "
                     "next statement", failures)
    failures = check(len(anchors) == 2,
                     f"suppress_anchor: exactly 2 anchors (got {len(anchors)})",
                     failures)

    if failures:
        print(f"{failures} lexer assertion(s) failed")
        return 1
    print("lexer: all assertions passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
