#!/usr/bin/env python3
"""Expected-diagnostic harness for the dfth-check fixtures.

Each fixture line may carry an `// expect: <check-name>` marker; the tool
must report exactly that check on exactly that line, and nothing else in
the file. A fixture with no markers (clean.cpp) must produce zero
diagnostics.

Exit codes: 0 pass, 1 mismatch, 77 skip (tool not built — ctest maps this
to SKIP via SKIP_RETURN_CODE).
"""

import argparse
import os
import re
import subprocess
import sys

DIAG_RE = re.compile(r"^(?P<path>[^:]+):(?P<line>\d+):\d+: warning: .*"
                     r"\[dfth-check:(?P<check>[a-z-]+)\]$")
EXPECT_RE = re.compile(r"//\s*expect:\s*(?P<check>[a-z-]+)")

SKIP = 77


def expectations(path):
    """(line, check) pairs from `// expect:` markers in a fixture."""
    want = set()
    with open(path, encoding="utf-8") as f:
        for lineno, text in enumerate(f, start=1):
            for m in EXPECT_RE.finditer(text):
                want.add((lineno, m.group("check")))
    return want


def diagnostics(tool, path):
    """(line, check) pairs the tool reports for one fixture."""
    proc = subprocess.run([tool, path], capture_output=True, text=True)
    if proc.returncode not in (0, 1):
        print(f"FAIL {path}: dfth-check exited {proc.returncode}:\n"
              f"{proc.stdout}{proc.stderr}")
        return None
    got = set()
    for line in proc.stdout.splitlines():
        m = DIAG_RE.match(line.strip())
        if m:
            got.add((int(m.group("line")), m.group("check")))
    return got


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("--tool", required=True, help="path to the dfth-check binary")
    ap.add_argument("--fixtures", required=True, help="fixture directory")
    ap.add_argument("--clean-dirs", nargs="*", default=[],
                    help="extra directories that must produce zero findings "
                         "(e.g. src/apps src/compat)")
    args = ap.parse_args()

    if not os.path.isfile(args.tool) or not os.access(args.tool, os.X_OK):
        print(f"SKIP: dfth-check binary not found at {args.tool}")
        return SKIP

    failures = 0
    fixtures = sorted(
        f for f in os.listdir(args.fixtures) if f.endswith(".cpp"))
    if not fixtures:
        print(f"FAIL: no fixtures in {args.fixtures}")
        return 1
    for name in fixtures:
        path = os.path.join(args.fixtures, name)
        want = expectations(path)
        got = diagnostics(args.tool, path)
        if got is None:
            failures += 1
            continue
        missing = want - got
        surprise = got - want
        if missing or surprise:
            failures += 1
            for line, check in sorted(missing):
                print(f"FAIL {name}:{line}: expected [{check}] but the tool "
                      f"was silent")
            for line, check in sorted(surprise):
                print(f"FAIL {name}:{line}: unexpected [{check}] diagnostic")
        else:
            print(f"ok   {name}: {len(want)} expected diagnostic(s) matched")

    if args.clean_dirs:
        # One combined invocation: fiber reachability crosses TU boundaries
        # (bench lambdas call into src/apps), so the dirs analyze together.
        proc = subprocess.run([args.tool] + args.clean_dirs,
                              capture_output=True, text=True)
        if proc.returncode != 0:
            failures += 1
            print(f"FAIL {' '.join(args.clean_dirs)}: expected a clean run, "
                  f"got:\n{proc.stdout}")
        else:
            print(f"ok   {' '.join(args.clean_dirs)}: clean")

    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
