#!/usr/bin/env python3
"""Space-bound certification test: static bound >= observed heap peak.

Pipeline (DESIGN.md §9):
  1. run bench/space_bound_apps — the seven paper apps at quickstart
     configurations on the simulator (AsyncDF, p=8, K=32 KB); it emits
     SPACE_OBSERVED.json with each app's heap_peak plus the analysis root,
     parameter bindings and sizeof bindings for the static side;
  2. run dfth-check --space-bound with exactly those bindings over src/apps
     and bench, producing the certified S1 + c*p*K*D bound per app;
  3. assert, per app: the walk resolved (certified), and bound >= heap_peak;
  4. merge observed numbers into the bound JSON (the SPACE_BOUND.json CI
     artifact carries both sides);
  5. regression gate: fail if any app's bound grew more than 10% over the
     committed baseline (tests/check/space_bound_baseline.json); run with
     --update-baseline after an intentional change.

Exit codes: 0 pass, 1 violation/regression, 77 skip (tool or bench binary
not built — ctest maps this to SKIP).
"""

import argparse
import json
import os
import subprocess
import sys
import tempfile

SKIP = 77
GROWTH_LIMIT = 1.10


def run_observed(bench, workdir):
    path = os.path.join(workdir, "SPACE_OBSERVED.json")
    proc = subprocess.run([bench, "--observed", path, "--json", ""],
                          capture_output=True, text=True, cwd=workdir)
    if proc.returncode != 0:
        print(f"FAIL: {os.path.basename(bench)} exited {proc.returncode}:\n"
              f"{proc.stdout}{proc.stderr}")
        return None
    with open(path, encoding="utf-8") as f:
        return json.load(f)


def run_static(tool, observed, sources, workdir):
    out = os.path.join(workdir, "SPACE_BOUND.json")
    argv = [tool, f"--space-bound={out}",
            f"--space-procs={observed['procs']}",
            f"--space-quota={observed['quota_bytes']}"]
    sizeofs = []
    for app in observed["apps"]:
        spec = f"{app['app']}:{app['root']}"
        if app["params"]:
            spec += f":{app['params']}"
        argv.append(f"--space-app={spec}")
        if app["sizeofs"]:
            sizeofs.append(app["sizeofs"])
    if sizeofs:
        argv.append("--space-sizeof=" + ",".join(sizeofs))
    argv += sources
    proc = subprocess.run(argv, capture_output=True, text=True)
    if proc.returncode != 0:
        print(f"FAIL: dfth-check --space-bound exited {proc.returncode}:\n"
              f"{proc.stdout}{proc.stderr}")
        return None
    print(proc.stdout, end="")
    with open(out, encoding="utf-8") as f:
        return json.load(f)


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("--tool", required=True, help="dfth-check binary")
    ap.add_argument("--bench", required=True, help="space_bound_apps binary")
    ap.add_argument("--sources", nargs="+", required=True,
                    help="directories the static side analyzes")
    ap.add_argument("--baseline", default=os.path.join(
        os.path.dirname(os.path.abspath(__file__)),
        "space_bound_baseline.json"))
    ap.add_argument("--update-baseline", action="store_true")
    ap.add_argument("--output", default="",
                    help="write the merged SPACE_BOUND.json here (CI artifact)")
    args = ap.parse_args()
    # The bench binary runs with cwd inside a tempdir: absolutize everything.
    args.tool = os.path.abspath(args.tool)
    args.bench = os.path.abspath(args.bench)
    args.sources = [os.path.abspath(s) for s in args.sources]

    for binary, what in ((args.tool, "dfth-check"), (args.bench,
                                                     "space_bound_apps")):
        if not os.path.isfile(binary) or not os.access(binary, os.X_OK):
            print(f"SKIP: {what} binary not found at {binary}")
            return SKIP

    failures = 0
    with tempfile.TemporaryDirectory() as workdir:
        observed = run_observed(args.bench, workdir)
        if observed is None:
            return 1
        bounds = run_static(args.tool, observed, args.sources, workdir)
        if bounds is None:
            return 1

    by_app = {a["app"]: a for a in bounds["apps"]}
    heap = {a["app"]: a for a in observed["apps"]}
    if set(by_app) != set(heap):
        print(f"FAIL: app sets differ: static={sorted(by_app)} "
              f"observed={sorted(heap)}")
        return 1

    # 3. certification: every app resolved, and the static bound dominates
    # the observed heap peak.
    for name in sorted(by_app):
        b = by_app[name]
        peak = heap[name]["heap_peak"]
        bound = b["certified_bound_bytes"]
        if not b["certified"]:
            print(f"FAIL {name}: bound not certified (unresolved symbols: "
                  f"{b.get('symbolic_terms', [])})")
            failures += 1
        elif bound < peak:
            print(f"FAIL {name}: static bound {bound} < observed heap_peak "
                  f"{peak}")
            failures += 1
        else:
            print(f"ok   {name}: bound {bound} >= observed {peak} "
                  f"(S1={b['serial_space_bytes']}, D={b['depth']})")
        b["observed_heap_peak"] = peak
        b["observed_max_live_threads"] = heap[name]["max_live_threads"]

    # 5. regression gate against the committed baseline.
    if args.update_baseline:
        with open(args.baseline, "w", encoding="utf-8") as f:
            json.dump({n: by_app[n]["certified_bound_bytes"]
                       for n in sorted(by_app)}, f, indent=2, sort_keys=True)
            f.write("\n")
        print(f"(baseline updated: {args.baseline})")
    elif os.path.isfile(args.baseline):
        with open(args.baseline, encoding="utf-8") as f:
            base = json.load(f)
        for name in sorted(by_app):
            bound = by_app[name]["certified_bound_bytes"]
            if name not in base:
                print(f"ok   {name}: new app, no baseline")
                continue
            limit = int(base[name] * GROWTH_LIMIT)
            if bound > limit:
                print(f"FAIL {name}: bound {bound} grew >10% over baseline "
                      f"{base[name]} (limit {limit}) — if intentional, rerun "
                      f"with --update-baseline and commit the result")
                failures += 1
            else:
                print(f"ok   {name}: bound {bound} within 110% of baseline "
                      f"{base[name]}")
    else:
        print(f"warning: no baseline at {args.baseline}; regression gate "
              f"skipped (run with --update-baseline to create it)")

    if args.output:
        with open(args.output, "w", encoding="utf-8") as f:
            json.dump(bounds, f, indent=2)
            f.write("\n")
        print(f"(merged SPACE_BOUND.json written to {args.output})")

    if failures:
        print(f"{failures} space-bound assertion(s) failed")
        return 1
    print("space-bound: all apps certified, bound >= observed, "
          "no regressions")
    return 0


if __name__ == "__main__":
    sys.exit(main())
