// dfth-check fixture: unannotated-shared-write.
//
// Markers as in blocking_call.cpp: `// expect: <check>` lines must be
// diagnosed, everything else must stay clean.
#include <cstddef>

#include "dfth_stub.h"

using namespace dfth;

namespace fixture {

// Annotated: the df_write covers every store through `out` — clean.
void scale_annotated(double* out, std::size_t n, double k) {
  df_write(out, n * sizeof(double), "fixture/scale_annotated:out");
  for (std::size_t i = 0; i < n; ++i) out[i] *= k;
}

// Same shape with the annotation missing.
void scale_raw(double* out, std::size_t n, double k) {
  for (std::size_t i = 0; i < n; ++i) out[i] *= k;  // expect: unannotated-shared-write
}

void run_all(double* data, std::size_t n) {
  Thread a = spawn([data, n]() -> void* {
    scale_annotated(data, n, 2.0);
    scale_raw(data, n, 0.5);
    return nullptr;
  });

  // A by-ref captured accumulator written in the lambda body itself.
  double sum = 0.0;
  Thread b = spawn([&sum, data, n]() -> void* {
    for (std::size_t i = 0; i < n; ++i) sum += data[i];  // expect: unannotated-shared-write
    return nullptr;
  });

  // df_malloc-backed scratch: shows in the space accounting, so the race
  // detector tracks it — writes need annotations too.
  Thread c = spawn([n]() -> void* {
    auto* scratch = static_cast<double*>(df_malloc(n * sizeof(double)));
    scratch[0] = 1.0;  // expect: unannotated-shared-write
    df_free(scratch);
    return nullptr;
  });

  join(a);
  join(b);
  join(c);
  df_read(&sum, sizeof(sum), "fixture/run_all:sum");
}

}  // namespace fixture
