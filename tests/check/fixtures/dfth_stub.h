// Self-contained mini-API for the dfth-check fixtures. The analyzer is
// token-based and never compiles these files, so the declarations only need
// to make the fixtures read like real dfthreads code. Names mirror
// src/runtime/api.h and src/compat/dfth_pthread.h exactly — the checks key
// on them.
#pragma once

#include <cstddef>

namespace dfth {

struct Thread {
  unsigned long id = 0;
};
struct Attr {};
struct RunOptions {};
struct RunResult {};

struct Mutex {
  void lock();
  void unlock();
};

template <typename F>
Thread spawn(F&& fn, Attr attr = {});
void* join(Thread t);
void detach(Thread t);
template <typename F>
RunResult run(const RunOptions& opts, F&& main_fn);

void* df_malloc(std::size_t bytes);
void df_free(void* p);
void df_read(const void* p, std::size_t bytes, const char* site);
void df_write(const void* p, std::size_t bytes, const char* site);

}  // namespace dfth

// Fiber-safe shims (mirror src/compat/dfth_pthread.h).
struct dfth_pthread_mutex_t {
  int state = 0;
};
int dfth_pthread_mutex_lock(dfth_pthread_mutex_t* m);
int dfth_pthread_mutex_unlock(dfth_pthread_mutex_t* m);
