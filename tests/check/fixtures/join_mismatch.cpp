// dfth-check fixture: join-mismatch.
//
// The space bound is argued over a fully joined spawn DAG, so every spawn
// whose handle stays local must be joined or explicitly detached in the
// spawning function. Escaping handles are out of local-analysis reach and
// stay silent.
#include "dfth_stub.h"

using namespace dfth;

namespace fixture {

void never_joined() {
  Thread t = spawn([]() -> void* { return nullptr; });  // expect: join-mismatch
  (void)t;
}

void discarded() {
  spawn([]() -> void* { return nullptr; });  // expect: join-mismatch
}

void joined_ok() {
  Thread t = spawn([]() -> void* { return nullptr; });
  join(t);
}

void detached_ok() {
  Thread t = spawn([]() -> void* { return nullptr; });
  detach(t);
}

// The caller may join the returned handle: no local proof of a mismatch.
Thread escaped_ok() {
  Thread t = spawn([]() -> void* { return nullptr; });
  return t;
}

}  // namespace fixture
