// dfth-check fixture: lock-order.
//
// Markers as in blocking_call.cpp. The ABBA diagnostic anchors on the
// acquire site of the alphabetically-first edge ('mu_a held while
// acquiring mu_b'), i.e. the mu_b.lock() inside forward().
#include "dfth_stub.h"

using namespace dfth;

namespace fixture {

Mutex mu_a;
Mutex mu_b;
Mutex mu_c;

void forward() {
  mu_a.lock();
  mu_b.lock();  // expect: lock-order
  mu_b.unlock();
  mu_a.unlock();
}

void backward() {
  mu_b.lock();
  mu_a.lock();
  mu_a.unlock();
  mu_b.unlock();
}

// Consistent with forward(): a -> c never reverses, so no report.
void also_forward() {
  mu_a.lock();
  mu_c.lock();
  mu_c.unlock();
  mu_a.unlock();
}

void run_all() {
  Thread a = spawn([]() -> void* {
    forward();
    return nullptr;
  });
  Thread b = spawn([]() -> void* {
    backward();
    also_forward();
    return nullptr;
  });
  join(a);
  join(b);
}

}  // namespace fixture
