// dfth-check fixture: alloc-before-spawn.
//
// A df_malloc consumed by exactly one spawned child inflates the parent's
// live footprint for the child's whole lifetime — AsyncDF could delay it if
// the child allocated for itself. Any parent use, or sharing across several
// children, keeps the allocation where it is.
#include "dfth_stub.h"

using namespace dfth;

namespace fixture {

void consume(void* buf);

void premature() {
  void* buf = df_malloc(1024);  // expect: alloc-before-spawn
  Thread t = spawn([buf]() -> void* {
    df_write(buf, 1024, "fixture/premature:buf");
    return nullptr;
  });
  join(t);
  df_free(buf);
}

// The parent reads the child's result after the join: the allocation has to
// outlive the child anyway.
void parent_also_uses() {
  void* buf = df_malloc(1024);
  Thread t = spawn([buf]() -> void* {
    df_write(buf, 512, "fixture/parent_also_uses:buf");
    return nullptr;
  });
  join(t);
  consume(buf);
  df_free(buf);
}

// Two children share the buffer: it cannot move into either one.
void shared_across_children() {
  void* buf = df_malloc(2048);
  Thread a = spawn([buf]() -> void* {
    df_write(buf, 1024, "fixture/shared:lo");
    return nullptr;
  });
  Thread b = spawn([buf]() -> void* {
    df_write(buf, 1024, "fixture/shared:hi");
    return nullptr;
  });
  join(a);
  join(b);
  df_free(buf);
}

}  // namespace fixture
