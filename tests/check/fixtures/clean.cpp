// dfth-check fixture: a well-behaved translation unit. Every check runs
// over this file and none may report anything — including the suppressed
// violation at the bottom, which regression-tests the
// `// dfth-check-ignore(<check>)` comment.
#include <cstddef>
#include <unistd.h>

#include "dfth_stub.h"

using namespace dfth;

namespace fixture {

dfth_pthread_mutex_t g_mu;
Mutex order_a;
Mutex order_b;

// Annotated writes through a pointer param.
void fill(double* out, std::size_t n) {
  df_write(out, n * sizeof(double), "fixture/fill:out");
  for (std::size_t i = 0; i < n; ++i) out[i] = static_cast<double>(i);
}

// Locks always nest a-then-b.
void locked_sum(double* out, std::size_t n) {
  order_a.lock();
  order_b.lock();
  fill(out, n);
  order_b.unlock();
  order_a.unlock();
}

void run_all(double* data, std::size_t n) {
  Thread a = spawn([data, n]() -> void* {
    dfth_pthread_mutex_lock(&g_mu);
    fill(data, n);
    dfth_pthread_mutex_unlock(&g_mu);
    return nullptr;
  });
  Thread b = spawn([data, n]() -> void* {
    locked_sum(data, n);
    return nullptr;
  });
  join(a);
  join(b);

  Thread c = spawn([]() -> void* {
    // dfth-check-ignore(blocking-call-on-fiber): fixture suppression test
    sleep(1);
    return nullptr;
  });
  join(c);
}

}  // namespace fixture
