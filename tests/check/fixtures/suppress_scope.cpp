// dfth-check fixture: suppression scoping.
//
// `// dfth-check-ignore(<check>)` governs exactly one statement: its own
// line when trailing code, the next statement line when on a comment-only
// line. In both functions the first sleep is deliberately suppressed and
// the second must still be reported — a misplaced ignore no longer masks
// everything after it.
#include <unistd.h>

#include "dfth_stub.h"

using namespace dfth;

namespace fixture {

Mutex mu;

void trailing_marker() {
  mu.lock();
  sleep(1);  // dfth-check-ignore(blocking-while-holding-lock)
  sleep(2);  // expect: blocking-while-holding-lock
  mu.unlock();
}

void comment_line_marker() {
  mu.lock();
  // dfth-check-ignore(blocking-while-holding-lock)
  sleep(1);
  sleep(2);  // expect: blocking-while-holding-lock
  mu.unlock();
}

}  // namespace fixture
