// dfth-check fixture: blocking-while-holding-lock.
//
// A kernel-level wait reached while a dfth::Mutex is held serializes every
// fiber queued on that lock behind the block. Direct calls and calls that
// may block transitively are both reported; the fiber-aware compat shims
// are the sanctioned path and stay silent.
#include <unistd.h>

#include "dfth_stub.h"

using namespace dfth;

namespace fixture {

Mutex mu;
dfth_pthread_mutex_t g_shim;

void direct_block() {
  mu.lock();
  sleep(1);  // expect: blocking-while-holding-lock
  mu.unlock();
}

void helper() { usleep(100); }

void transitive_block() {
  mu.lock();
  helper();  // expect: blocking-while-holding-lock
  mu.unlock();
}

// Lock released before the wait: nothing serializes behind it.
void released_first() {
  mu.lock();
  mu.unlock();
  sleep(1);
}

// The compat shim parks the fiber instead of the kernel thread.
void fiber_shim_ok() {
  mu.lock();
  dfth_pthread_mutex_lock(&g_shim);
  dfth_pthread_mutex_unlock(&g_shim);
  mu.unlock();
}

}  // namespace fixture
