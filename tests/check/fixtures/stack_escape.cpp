// dfth-check fixture: fiber-stack-escape.
//
// Markers as in blocking_call.cpp. The diagnostic anchors on the spawn
// site, so markers sit on the `spawn(` line.
#include "dfth_stub.h"

using namespace dfth;

namespace fixture {

void consume(const int* p);

// Joined before return: the parent frame outlives the child — clean.
int joined_parent(int n) {
  int local = n;
  Thread t = spawn([&local]() -> void* {
    consume(&local);
    return nullptr;
  });
  join(t);
  return local;
}

// By-value capture: the child owns a copy, the frame may die — clean.
void by_value(int n) {
  Thread t = spawn([n]() -> void* {
    consume(&n);
    return nullptr;
  });
  join(t);
}

// Handle discarded: nothing can ever join this child.
void discarded(int n) {
  int local = n;
  spawn([&local]() -> void* {  // expect: fiber-stack-escape // expect: join-mismatch
    consume(&local);
    return nullptr;
  });
}

// Detached: the parent is free to return while the child still runs.
void detached(int n) {
  int local = n;
  Thread t = spawn([&local]() -> void* {  // expect: fiber-stack-escape
    consume(&local);
    return nullptr;
  });
  detach(t);
}

// Handle escapes: the caller might join it (so join-mismatch stays silent),
// but no local join pins the frame that `local` lives in.
Thread escaping(int n) {
  int local = n;
  Thread t = spawn([&local]() -> void* {  // expect: fiber-stack-escape
    consume(&local);
    return nullptr;
  });
  return t;
}

// Handle kept local but never joined in the spawning function.
void never_joined(int n) {
  int local = n;
  Thread t = spawn([&local]() -> void* {  // expect: fiber-stack-escape // expect: join-mismatch
    consume(&local);
    return nullptr;
  });
}

}  // namespace fixture
