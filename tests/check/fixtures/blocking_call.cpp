// dfth-check fixture: blocking-call-on-fiber.
//
// Every `// expect: <check>` marker names a diagnostic the analyzer must
// report on that exact line; all unmarked lines must stay clean. The
// fixture runner (tests/check/run_fixture_tests.py) compares markers
// against the tool's output.
#include <pthread.h>
#include <unistd.h>

#include <chrono>
#include <mutex>
#include <thread>

#include "dfth_stub.h"

using namespace dfth;

namespace fixture {

pthread_mutex_t g_raw = PTHREAD_MUTEX_INITIALIZER;
dfth_pthread_mutex_t g_shim;

// Reached from a spawned lambda through one call hop: still fiber code.
void helper_blocks() {
  pthread_mutex_lock(&g_raw);  // expect: blocking-call-on-fiber
  pthread_mutex_unlock(&g_raw);
}

// The compat shims are the sanctioned fiber-safe path: never flagged.
void helper_shimmed() {
  dfth_pthread_mutex_lock(&g_shim);
  dfth_pthread_mutex_unlock(&g_shim);
}

void spawn_all() {
  Thread a = spawn([]() -> void* {
    sleep(1);  // expect: blocking-call-on-fiber
    helper_blocks();
    helper_shimmed();
    return nullptr;
  });
  Thread b = spawn([]() -> void* {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));  // expect: blocking-call-on-fiber
    return nullptr;
  });
  Thread c = spawn([]() -> void* {
    std::mutex local_mu;  // expect: blocking-call-on-fiber
    local_mu.lock();
    local_mu.unlock();
    return nullptr;
  });
  join(a);
  join(b);
  join(c);
}

// Never reached from fiber code: blocking here is the host's business.
void host_only_setup() {
  sleep(1);
  pthread_mutex_lock(&g_raw);
  pthread_mutex_unlock(&g_raw);
}

}  // namespace fixture
