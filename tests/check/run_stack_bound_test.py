#!/usr/bin/env python3
"""Hermetic solver test for tools/stack_bound.py.

Feeds the synthetic frames/edges fixture through the script and asserts
the computed bounds, the recursion (cycle) report, the pass/fail exit
codes, and the STACK_BOUND.json structure. Needs no build tree, so it
never skips.
"""

import json
import os
import subprocess
import sys
import tempfile

HERE = os.path.dirname(os.path.abspath(__file__))
TOOL = os.path.join(HERE, os.pardir, os.pardir, "tools", "stack_bound.py")
FIXTURE = os.path.join(HERE, "stack_bound")

# frames.txt/edges.txt geometry (runtime prefix disabled below):
#   entry_linear -> a -> b          : 1000 + 5000 + 3000       = 9000
#   entry_rec -> (rec_a <-> rec_b)  : 200 + 4 * (400 + 600)    = 4200 at depth 4
#   entry_fat                       : 900000
EXPECT = {"entry_linear": 9000, "entry_rec": 4200, "entry_fat": 900000}


def run(stack_size, json_path=None):
    cmd = [sys.executable, TOOL,
           "--frames-file", os.path.join(FIXTURE, "frames.txt"),
           "--edges-file", os.path.join(FIXTURE, "edges.txt"),
           "--entries", "entry_linear", "entry_rec", "entry_fat",
           "--assume-depth", "4", "--runtime-prefix", "0",
           "--stack-size", str(stack_size), "--guard-margin", "0"]
    if json_path:
        cmd += ["--json", json_path]
    return subprocess.run(cmd, capture_output=True, text=True)


def main():
    failures = []

    with tempfile.TemporaryDirectory() as tmp:
        json_path = os.path.join(tmp, "STACK_BOUND.json")
        proc = run(stack_size=1_000_000, json_path=json_path)
        if proc.returncode != 0:
            failures.append(f"all-fit run exited {proc.returncode}:\n{proc.stdout}")
        with open(json_path, encoding="utf-8") as f:
            report = json.load(f)
        by_entry = {r["entry"]: r for r in report["entries"]}
        for entry, bound in EXPECT.items():
            got = by_entry.get(entry, {}).get("static_bound_bytes")
            if got != bound:
                failures.append(f"{entry}: bound {got}, expected {bound}")
        rec = by_entry.get("entry_rec", {})
        if not rec.get("recursive") or not rec.get("unbounded_without_assumption"):
            failures.append("entry_rec: recursion not reported")
        cycles = rec.get("cycles") or []
        if not any(sorted(c) == ["rec_a", "rec_b"] for c in cycles):
            failures.append(f"entry_rec: cycle not named correctly: {cycles}")
        if by_entry.get("entry_linear", {}).get("recursive"):
            failures.append("entry_linear: falsely reported recursive")
        chain = by_entry.get("entry_linear", {}).get("deepest_chain")
        if chain != ["entry_linear", "a", "b"]:
            failures.append(f"entry_linear: wrong deepest chain {chain}")

    # entry_fat (900000) must fail a 10000-byte limit; the others fit.
    proc = run(stack_size=10_000)
    if proc.returncode != 1:
        failures.append(f"over-limit run exited {proc.returncode}, expected 1:\n"
                        f"{proc.stdout}")
    if "FAIL entry_fat" not in proc.stdout:
        failures.append(f"over-limit run did not name entry_fat:\n{proc.stdout}")

    for f in failures:
        print("FAIL:", f)
    if not failures:
        print("ok   stack_bound solver: bounds, recursion report, exit codes")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
