// The Pthreads source-compatibility layer: a classic pthread-style program
// (C call shapes, function pointers, void* arguments) running unchanged on
// the DFThreads runtime — the paper's "any existing Pthreads program can be
// executed using our space-efficient scheduler".
#include "compat/dfth_pthread.h"

#include <gtest/gtest.h>

#include "runtime/api.h"

namespace {

// --------- a pthread-style worker crew, written as C would write it ---------

struct CrewShared {
  dfth_pthread_mutex_t mu;
  dfth_pthread_cond_t work_ready;
  dfth_pthread_barrier_t barrier;
  int next_item = 0;
  int items = 0;
  long long sum = 0;
  bool go = false;
};

struct CrewArg {
  CrewShared* shared;
  int id;
  long long local_sum = 0;
};

void* crew_worker(void* argp) {
  auto* arg = static_cast<CrewArg*>(argp);
  CrewShared* s = arg->shared;

  dfth_pthread_mutex_lock(&s->mu);
  while (!s->go) dfth_pthread_cond_wait(&s->work_ready, &s->mu);
  dfth_pthread_mutex_unlock(&s->mu);

  while (true) {
    dfth_pthread_mutex_lock(&s->mu);
    const int item = s->next_item < s->items ? s->next_item++ : -1;
    dfth_pthread_mutex_unlock(&s->mu);
    if (item < 0) break;
    arg->local_sum += item;
  }

  dfth_pthread_barrier_wait(&s->barrier);

  dfth_pthread_mutex_lock(&s->mu);
  s->sum += arg->local_sum;
  dfth_pthread_mutex_unlock(&s->mu);
  return arg;
}

TEST(PthreadCompat, WorkerCrewProgramRunsUnchanged) {
  for (dfth::EngineKind engine : {dfth::EngineKind::Sim, dfth::EngineKind::Real}) {
    dfth::RuntimeOptions o;
    o.engine = engine;
    o.sched = dfth::SchedKind::AsyncDf;
    o.nprocs = 4;
    o.default_stack_size = 8 << 10;
    long long result = 0;
    dfth::run(o, [&] {
      constexpr int kWorkers = 6;
      CrewShared shared;
      shared.items = 1000;
      dfth_pthread_mutex_init(&shared.mu);
      dfth_pthread_cond_init(&shared.work_ready);
      dfth_pthread_barrier_init(&shared.barrier, nullptr, kWorkers);

      CrewArg args[kWorkers];
      dfth_pthread_t workers[kWorkers];
      dfth_pthread_attr_t attr;
      dfth_pthread_attr_init(&attr);
      dfth_pthread_attr_setstacksize(&attr, 8 << 10);
      for (int i = 0; i < kWorkers; ++i) {
        args[i] = CrewArg{&shared, i};
        ASSERT_EQ(dfth_pthread_create(&workers[i], &attr, crew_worker, &args[i]), 0);
      }

      dfth_pthread_mutex_lock(&shared.mu);
      shared.go = true;
      dfth_pthread_cond_broadcast(&shared.work_ready);
      dfth_pthread_mutex_unlock(&shared.mu);

      for (auto& w : workers) {
        void* ret = nullptr;
        ASSERT_EQ(dfth_pthread_join(w, &ret), 0);
        ASSERT_NE(ret, nullptr);
      }
      result = shared.sum;
      dfth_pthread_barrier_destroy(&shared.barrier);
    });
    EXPECT_EQ(result, 999LL * 1000 / 2) << to_string(engine);
  }
}

// --------- attributes, scope, detach, TLS, once ---------

std::atomic<int> g_once_calls{0};
void once_fn() { g_once_calls.fetch_add(1); }

void* tls_worker(void* keyp) {
  const auto key = *static_cast<dfth_pthread_key_t*>(keyp);
  dfth_pthread_setspecific(key, reinterpret_cast<void*>(dfth_pthread_self()));
  dfth_sched_yield();
  const auto back = reinterpret_cast<std::uint64_t>(dfth_pthread_getspecific(key));
  return reinterpret_cast<void*>(static_cast<intptr_t>(back == dfth_pthread_self()));
}

TEST(PthreadCompat, OnceTlsScopeDetach) {
  dfth::RuntimeOptions o;
  o.engine = dfth::EngineKind::Real;
  o.nprocs = 2;
  o.default_stack_size = 8 << 10;
  g_once_calls = 0;
  dfth::run(o, [&] {
    static dfth_pthread_once_t once;
    dfth_pthread_once(&once, once_fn);
    dfth_pthread_once(&once, once_fn);

    dfth_pthread_key_t key;
    dfth_pthread_key_create(&key);
    dfth_pthread_t threads[8];
    for (auto& t : threads) {
      ASSERT_EQ(dfth_pthread_create(&t, nullptr, tls_worker, &key), 0);
    }
    for (auto& t : threads) {
      void* ok = nullptr;
      dfth_pthread_join(t, &ok);
      EXPECT_EQ(reinterpret_cast<intptr_t>(ok), 1);
    }

    // Bound ("system scope") thread through the attr API.
    dfth_pthread_attr_t attr;
    dfth_pthread_attr_init(&attr);
    dfth_pthread_attr_setscope(&attr, DFTH_PTHREAD_SCOPE_SYSTEM);
    dfth_pthread_t bound;
    ASSERT_EQ(dfth_pthread_create(
                  &bound, &attr,
                  [](void*) -> void* { return reinterpret_cast<void*>(0x5); },
                  nullptr),
              0);
    void* r = nullptr;
    dfth_pthread_join(bound, &r);
    EXPECT_EQ(r, reinterpret_cast<void*>(0x5));

    // Detached thread via attr.
    dfth_pthread_attr_setscope(&attr, DFTH_PTHREAD_SCOPE_PROCESS);
    dfth_pthread_attr_setdetachstate(&attr, DFTH_PTHREAD_CREATE_DETACHED);
    dfth_pthread_t detached;
    ASSERT_EQ(dfth_pthread_create(
                  &detached, &attr, [](void*) -> void* { return nullptr; },
                  nullptr),
              0);
    // run() drains detached threads before returning.
  });
  EXPECT_EQ(g_once_calls.load(), 1);
}

// --------- rwlock + semaphore through the compat surface ---------

TEST(PthreadCompat, RwlockAndSemaphore) {
  dfth::RuntimeOptions o;
  o.engine = dfth::EngineKind::Sim;
  o.nprocs = 4;
  dfth::run(o, [] {
    dfth_pthread_rwlock_t lock;
    EXPECT_EQ(dfth_pthread_rwlock_rdlock(&lock), 0);
    EXPECT_EQ(dfth_pthread_rwlock_tryrdlock(&lock), 0);
    EXPECT_NE(dfth_pthread_rwlock_trywrlock(&lock), 0);
    dfth_pthread_rwlock_unlock_rd(&lock);
    dfth_pthread_rwlock_unlock_rd(&lock);
    EXPECT_EQ(dfth_pthread_rwlock_wrlock(&lock), 0);
    dfth_pthread_rwlock_unlock_wr(&lock);

    dfth_sem_t sem;
    dfth_sem_init(&sem, 0, 2);
    EXPECT_EQ(dfth_sem_trywait(&sem), 0);
    EXPECT_EQ(dfth_sem_trywait(&sem), 0);
    EXPECT_NE(dfth_sem_trywait(&sem), 0);
    dfth_sem_post(&sem);
    EXPECT_EQ(dfth_sem_wait(&sem), 0);
  });
}

}  // namespace
