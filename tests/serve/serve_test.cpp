// Serving subsystem (src/serve/): bounded ingress, K-driven admission,
// overload-shedding tiers with hysteresis, deadline expiry in queue and in
// flight, the watchdog liveness heartbeat, and the timed-wait cancellation
// race — a handler blocked in CondVar::timed_wait / Semaphore::
// try_acquire_for whose request deadline fires mid-wait must unwind
// cooperatively without leaking tracked-heap bytes, on both engines, with
// the whole run recorded (and, on the RealEngine, replayed to an identical
// determinism signature).
#include "serve/server.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <string>
#include <vector>

#include "replay/log.h"
#include "replay/signature.h"
#include "runtime/api.h"
#include "runtime/sync.h"
#include "serve/admission.h"
#include "serve/ingress.h"
#include "serve/retry.h"
#include "space/tracked_heap.h"

namespace dfth {
namespace {

using serve::AdmissionController;
using serve::EndpointSpec;
using serve::IngressRing;
using serve::Outcome;
using serve::RejectReason;
using serve::Request;
using serve::RetryPolicy;
using serve::ServeReport;
using serve::Server;
using serve::ServerConfig;

// ---------- ingress ring (pure unit tests, no runtime) -----------------------

TEST(IngressRing, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(IngressRing<int>(0).capacity(), 2u);
  EXPECT_EQ(IngressRing<int>(2).capacity(), 2u);
  EXPECT_EQ(IngressRing<int>(3).capacity(), 4u);
  EXPECT_EQ(IngressRing<int>(256).capacity(), 256u);
  EXPECT_EQ(IngressRing<int>(257).capacity(), 512u);
}

TEST(IngressRing, FifoOrderAndDepth) {
  IngressRing<int> ring(4);
  EXPECT_EQ(ring.size(), 0u);
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(ring.try_push(i));
  EXPECT_EQ(ring.size(), 4u);
  EXPECT_FALSE(ring.try_push(99)) << "bounded: a full ring must reject";
  for (int i = 0; i < 4; ++i) {
    int v = -1;
    ASSERT_TRUE(ring.try_pop(&v));
    EXPECT_EQ(v, i) << "single-consumer pop must preserve FIFO order";
  }
  int v;
  EXPECT_FALSE(ring.try_pop(&v)) << "empty ring must report empty";
  EXPECT_EQ(ring.size(), 0u);
}

TEST(IngressRing, WrapsAcrossManyLaps) {
  IngressRing<int> ring(2);
  for (int lap = 0; lap < 1000; ++lap) {
    EXPECT_TRUE(ring.try_push(lap));
    EXPECT_TRUE(ring.try_push(lap + 1'000'000));
    EXPECT_FALSE(ring.try_push(0));
    int a = 0, b = 0;
    ASSERT_TRUE(ring.try_pop(&a));
    ASSERT_TRUE(ring.try_pop(&b));
    EXPECT_EQ(a, lap);
    EXPECT_EQ(b, lap + 1'000'000);
  }
}

// ---------- admission controller ---------------------------------------------

TEST(AdmissionController, ReservesAgainstBudgetMinusBaseline) {
  AdmissionController adm(/*budget=*/1000, /*baseline=*/200);
  EXPECT_EQ(adm.usable(), 800u);
  EXPECT_EQ(adm.headroom(), 800u);
  EXPECT_TRUE(adm.try_admit(500));
  EXPECT_TRUE(adm.try_admit(300));
  EXPECT_EQ(adm.headroom(), 0u);
  EXPECT_FALSE(adm.try_admit(1)) << "reserved + bound may never exceed usable";
  adm.release(300);
  EXPECT_EQ(adm.headroom(), 300u);
  EXPECT_TRUE(adm.try_admit(300));
  adm.release(500);
  adm.release(300);
  EXPECT_EQ(adm.reserved(), 0u);
}

TEST(AdmissionController, OversizedBoundIsPermanentlyInadmissible) {
  AdmissionController adm(1000, 0);
  EXPECT_FALSE(adm.try_admit(1001));
  EXPECT_EQ(adm.reserved(), 0u) << "a failed admit must not leak reservation";
}

TEST(AdmissionController, BaselineLargerThanBudgetMeansZeroUsable) {
  AdmissionController adm(100, 500);
  EXPECT_EQ(adm.usable(), 0u);
  EXPECT_FALSE(adm.try_admit(1));
}

// ---------- retry policy -----------------------------------------------------

TEST(RetryPolicy, OnlyTransientRejectionsRetry) {
  RetryPolicy p;
  p.max_attempts = 3;
  Request r;
  r.outcome = Outcome::kRejected;
  r.attempt = 0;
  EXPECT_TRUE(serve::should_retry(p, r));
  r.attempt = 2;  // attempts 0,1,2 = 3 total submits already possible
  EXPECT_FALSE(serve::should_retry(p, r));
  r.attempt = 0;
  r.outcome = Outcome::kExpired;
  EXPECT_FALSE(serve::should_retry(p, r))
      << "an expired request's latency budget is spent — no retry";
  r.outcome = Outcome::kCompleted;
  EXPECT_FALSE(serve::should_retry(p, r));
}

TEST(RetryPolicy, BackoffIsCappedAndDeterministic) {
  RetryPolicy p;
  p.base_backoff_ns = 1000;
  p.max_backoff_ns = 8000;
  EXPECT_EQ(serve::backoff_ns(p, 7, 0, 42), 0u);
  for (int attempt = 1; attempt <= 12; ++attempt) {
    const std::uint64_t cap =
        attempt - 1 >= 3 ? 8000u : (1000u << (attempt - 1));
    const std::uint64_t b1 = serve::backoff_ns(p, 7, attempt, 42);
    const std::uint64_t b2 = serve::backoff_ns(p, 7, attempt, 42);
    EXPECT_EQ(b1, b2) << "same (seed,id,attempt) must jitter identically";
    EXPECT_LE(b1, cap);
  }
  // Different request ids de-synchronize (full jitter breaks herds). With
  // 32 ids the chance of all-equal values is negligible unless broken.
  bool differ = false;
  for (std::uint64_t id = 1; id < 32 && !differ; ++id) {
    differ = serve::backoff_ns(p, id, 3, 42) != serve::backoff_ns(p, 0, 3, 42);
  }
  EXPECT_TRUE(differ);
}

// ---------- server behavior (both engines) -----------------------------------

class ServeTest : public ::testing::TestWithParam<EngineKind> {
 protected:
  RuntimeOptions opts(int nprocs = 2) const {
    RuntimeOptions o;
    o.engine = GetParam();
    o.sched = SchedKind::AsyncDf;
    o.nprocs = nprocs;
    o.default_stack_size = 32 << 10;
    return o;
  }
};

std::string engine_name(const ::testing::TestParamInfo<EngineKind>& info) {
  return to_string(info.param);
}

// Spawns the pump, runs `body(server)`, stops and joins. Keeps each test
// focused on its scenario instead of the serving-run scaffolding.
template <typename Body>
ServeReport serve_scenario(ServerConfig cfg, std::vector<EndpointSpec> eps,
                           const Body& body) {
  Server server(std::move(cfg), std::move(eps));
  Thread pump = spawn([&server]() -> void* {
    server.pump();
    return nullptr;
  });
  body(server);
  server.stop();
  join(pump);
  return server.report();
}

// Variant for the tier tests: `prefill(server)` runs BEFORE the pump fiber
// exists, so the queue depth the first pop observes is exactly the prefill
// count — the tier trajectory becomes a pure function of the thresholds on
// both engines (a live pump would race the submit loop and drain early).
template <typename Prefill>
ServeReport serve_prefilled(ServerConfig cfg, std::vector<EndpointSpec> eps,
                            const Prefill& prefill) {
  Server server(std::move(cfg), std::move(eps));
  prefill(server);
  Thread pump = spawn([&server]() -> void* {
    server.pump();
    return nullptr;
  });
  server.stop();
  join(pump);
  return server.report();
}

TEST_P(ServeTest, EveryRequestTerminatesExactlyOnce) {
  constexpr int kRequests = 32;
  std::atomic<int> done_calls{0};
  ServeReport rep;
  run(opts(), [&] {
    std::vector<Request> arena(kRequests);
    ServerConfig cfg;
    cfg.poll_ns = 100'000;
    cfg.on_done = [&done_calls](Request*) {
      done_calls.fetch_add(1, std::memory_order_relaxed);
    };
    EndpointSpec ep;
    ep.name = "echo";
    ep.mem_bound = 1024;
    ep.handler = [](Request&) {};
    rep = serve_scenario(cfg, {ep}, [&](Server& s) {
      for (int i = 0; i < kRequests; ++i) {
        arena[static_cast<std::size_t>(i)].id = static_cast<std::uint64_t>(i);
        s.submit(&arena[static_cast<std::size_t>(i)]);
      }
      // Drain before stop so completion (not shutdown) ends the requests.
      Semaphore idle{0};
      while (done_calls.load(std::memory_order_relaxed) < kRequests) {
        idle.try_acquire_for(100'000);
      }
    });
    for (const Request& r : arena) {
      EXPECT_EQ(r.outcome, Outcome::kCompleted);
      EXPECT_EQ(r.bytes_live.load(std::memory_order_relaxed), 0);
    }
  });
  EXPECT_EQ(done_calls.load(), kRequests) << "on_done must fire exactly once each";
  EXPECT_EQ(rep.submitted, static_cast<std::uint64_t>(kRequests));
  EXPECT_EQ(rep.completed, static_cast<std::uint64_t>(kRequests));
  EXPECT_EQ(rep.rejected_queue + rep.rejected_shed + rep.rejected_admission +
                rep.expired_queue + rep.expired_running,
            0u);
}

TEST_P(ServeTest, FullIngressRejectsSynchronously) {
  run(opts(), [&] {
    std::vector<Request> arena(3);
    for (std::size_t i = 0; i < arena.size(); ++i) arena[i].id = i;
    ServerConfig cfg;
    cfg.ingress_capacity = 2;
    EndpointSpec ep;
    ep.name = "echo";
    ep.mem_bound = 256;
    ep.handler = [](Request&) {};
    Server server(cfg, {ep});
    // No pump is running: the third push meets a full ring and the client
    // learns synchronously — bounded ingress never blocks or queues it.
    EXPECT_TRUE(server.submit(&arena[0]));
    EXPECT_TRUE(server.submit(&arena[1]));
    EXPECT_FALSE(server.submit(&arena[2]));
    EXPECT_EQ(arena[2].outcome, Outcome::kRejected);
    EXPECT_EQ(arena[2].reject, RejectReason::kQueueFull);
    Thread pump = spawn([&server]() -> void* {
      server.pump();
      return nullptr;
    });
    server.stop();
    join(pump);
    const ServeReport rep = server.report();
    EXPECT_EQ(rep.rejected_queue, 1u);
    EXPECT_EQ(rep.completed, 2u);
  });
}

// Pre-filling the ring before the pump starts makes the tier trajectory a
// pure function of the thresholds: with capacity 8 and alternating
// bulk/crit submits, the pump pops depths 7,6,...,0, entering kShedLow at
// fill 7/8 and exiting at fill 1/8 — so exactly the first three bulk
// requests shed, every crit request survives (priority 0 is below the shed
// floor), and the tier transitions exactly twice. Deterministic on both
// engines because all submits happen before the pump fiber exists.
TEST_P(ServeTest, ShedTierHasHysteresisAndSparesCriticalClass) {
  ServeReport rep;
  run(opts(), [&] {
    std::vector<Request> arena(8);
    ServerConfig cfg;
    cfg.ingress_capacity = 8;
    cfg.shed.shed_enter_depth = 0.75;
    cfg.shed.shed_exit_depth = 0.25;
    cfg.shed.drain_enter_depth = 1.1;  // unreachable: this test isolates shed
    cfg.shed.drain_exit_depth = 1.0;
    cfg.shed_priority_floor = 1;
    EndpointSpec crit;
    crit.name = "crit";
    crit.priority = 0;
    crit.mem_bound = 256;
    crit.handler = [](Request&) {};
    EndpointSpec bulk = crit;
    bulk.name = "bulk";
    bulk.priority = 1;
    rep = serve_prefilled(cfg, {crit, bulk}, [&](Server& s) {
      for (std::size_t i = 0; i < arena.size(); ++i) {
        arena[i].id = i;
        arena[i].endpoint = i % 2 == 0 ? 1 : 0;  // bulk, crit, bulk, ...
        ASSERT_TRUE(s.submit(&arena[i]));
      }
    });
  });
  ASSERT_EQ(rep.endpoints.size(), 2u);
  const serve::EndpointReport& crit_rep = rep.endpoints[0];
  const serve::EndpointReport& bulk_rep = rep.endpoints[1];
  EXPECT_EQ(crit_rep.rejected_shed, 0u)
      << "kShedLow must never reject the critical class";
  EXPECT_EQ(crit_rep.completed, 4u);
  EXPECT_EQ(bulk_rep.rejected_shed, 3u);
  EXPECT_EQ(bulk_rep.completed, 1u) << "hysteresis exit must re-admit bulk";
  EXPECT_EQ(rep.tier_transitions, 2u);  // accept -> shed-low -> accept
}

// Same trick for the top tier: drain-only rejects even priority 0, and the
// ladder de-escalates one rung at a time (drain -> shed-low -> accept).
TEST_P(ServeTest, DrainOnlyRejectsEverythingThenStepsDown) {
  ServeReport rep;
  run(opts(), [&] {
    std::vector<Request> arena(8);
    ServerConfig cfg;
    cfg.ingress_capacity = 8;
    cfg.shed.shed_enter_depth = 0.60;
    cfg.shed.shed_exit_depth = 0.25;
    cfg.shed.drain_enter_depth = 0.75;
    cfg.shed.drain_exit_depth = 0.25;
    EndpointSpec crit;
    crit.name = "crit";
    crit.priority = 0;  // below the shed floor: only kDrainOnly rejects it
    crit.mem_bound = 256;
    crit.handler = [](Request&) {};
    rep = serve_prefilled(cfg, {crit}, [&](Server& s) {
      for (std::size_t i = 0; i < arena.size(); ++i) {
        arena[i].id = i;
        ASSERT_TRUE(s.submit(&arena[i]));
      }
    });
  });
  // Depths seen: 7,6,5,4,3 reject in drain-only (fill .875..." .375 all
  // above the .25 exit), depth 2 steps down to shed-low (priority 0 runs),
  // depth 1 steps down to accept.
  EXPECT_EQ(rep.rejected_shed, 5u);
  EXPECT_EQ(rep.completed, 3u);
  EXPECT_EQ(rep.tier_transitions, 3u);
}

TEST_P(ServeTest, AdmissionRejectsWhenCertifiedBoundsExceedHeadroom) {
  std::atomic<int> rejected{0};
  ServeReport rep;
  run(opts(), [&] {
    std::vector<Request> arena(2);
    Semaphore gate{0};
    ServerConfig cfg;
    const auto baseline =
        static_cast<std::size_t>(TrackedHeap::instance().live_bytes() > 0
                                     ? TrackedHeap::instance().live_bytes()
                                     : 0);
    cfg.mem_budget = baseline + 64 * 1024;
    cfg.on_done = [&rejected](Request* r) {
      if (r->outcome == Outcome::kRejected) {
        rejected.fetch_add(1, std::memory_order_relaxed);
      }
    };
    EndpointSpec ep;
    ep.name = "heavy";
    ep.mem_bound = 40 * 1024;  // two in flight would need 80K of 64K usable
    ep.handler = [&gate](Request&) { gate.acquire(); };
    rep = serve_scenario(cfg, {ep}, [&](Server& s) {
      arena[0].id = 0;
      arena[1].id = 1;
      ASSERT_TRUE(s.submit(&arena[0]));
      ASSERT_TRUE(s.submit(&arena[1]));
      Semaphore idle{0};
      while (rejected.load(std::memory_order_relaxed) == 0) {
        idle.try_acquire_for(100'000);
      }
      gate.release();  // let the admitted request finish
    });
    EXPECT_EQ(arena[1].outcome, Outcome::kRejected);
    EXPECT_EQ(arena[1].reject, RejectReason::kAdmission);
  });
  EXPECT_EQ(rep.rejected_admission, 1u);
  EXPECT_EQ(rep.completed, 1u);
  EXPECT_LE(rep.peak_inflight, 1u)
      << "the reservation must serialize requests whose bounds cannot coexist";
}

TEST_P(ServeTest, DeadlineExpiresInQueueBeforeDispatch) {
  ServeReport rep;
  run(opts(), [&] {
    std::vector<Request> arena(1);
    arena[0].id = 1;
    ServerConfig cfg;
    EndpointSpec ep;
    ep.name = "late";
    ep.mem_bound = 256;
    ep.deadline_ns = 1;  // expires essentially immediately
    ep.handler = [](Request&) { ADD_FAILURE() << "expired request must not run"; };
    Server server(cfg, {ep});
    ASSERT_TRUE(server.submit(&arena[0]));
    // Let the deadline pass while queued (no pump yet): any blocking wait
    // advances the engine clock on both engines.
    Semaphore idle{0};
    idle.try_acquire_for(2'000'000);
    Thread pump = spawn([&server]() -> void* {
      server.pump();
      return nullptr;
    });
    server.stop();
    join(pump);
    rep = server.report();
    EXPECT_EQ(arena[0].outcome, Outcome::kExpired);
    EXPECT_TRUE(arena[0].token.is_cancelled());
  });
  EXPECT_EQ(rep.expired_queue, 1u);
  EXPECT_EQ(rep.expired_running, 0u);
}

// The satellite race this file exists for: a handler parks in timed waits
// (Semaphore::try_acquire_for and CondVar::timed_wait) holding tracked
// bytes while its request deadline fires. The cancellation must reach it
// cooperatively (cancel_requested() after each timed-wait wake), the
// request must classify as expired-in-flight, and the unwind must release
// every tracked byte — no leak through either primitive's timeout path.
// The whole run is recorded when the build carries -DDFTH_REPLAY, so the
// race's resolution is itself a pinned, replayable schedule.
TEST_P(ServeTest, TimedWaitDeadlineRaceUnwindsWithoutLeaks) {
  const std::int64_t live_before = TrackedHeap::instance().live_bytes();
  const std::string log_path = testing::TempDir() + "dfth_serve_timedwait_" +
                               to_string(GetParam()) + ".dfthlog";
  auto body = [this](RuntimeOptions o, ServeReport* rep_out) {
    run(o, [&] {
      std::vector<Request> arena(4);
      Mutex wait_mu;
      CondVar never_signaled;
      Semaphore never_released{0};
      ServerConfig cfg;
      cfg.poll_ns = 100'000;
      EndpointSpec ep;
      ep.name = "sleeper";
      ep.mem_bound = 16 * 1024;
      // Generous on the engine clock, tiny on the test's wall clock: Sim
      // virtual time and Real steady time both cross it within a few waits.
      ep.deadline_ns = 3'000'000;
      ep.handler = [&](Request&) {
        void* held = df_malloc(4096);
        ASSERT_NE(held, nullptr);
        // Alternate the two timed primitives until the deadline's cancel
        // lands; each wake is a cooperative cancellation poll point.
        bool use_cv = true;
        while (!cancel_requested()) {
          if (use_cv) {
            LockGuard g(wait_mu);
            never_signaled.timed_wait(wait_mu, 200'000);
          } else {
            never_released.try_acquire_for(200'000);
          }
          use_cv = !use_cv;
        }
        df_free(held);
      };
      *rep_out = serve_scenario(cfg, {ep}, [&](Server& s) {
        std::atomic<int> done{0};
        s.set_on_done([&done](Request*) {
          done.fetch_add(1, std::memory_order_relaxed);
        });
        for (std::size_t i = 0; i < arena.size(); ++i) {
          arena[i].id = i;
          ASSERT_TRUE(s.submit(&arena[i]));
        }
        Semaphore idle{0};
        while (done.load(std::memory_order_relaxed) <
               static_cast<int>(arena.size())) {
          idle.try_acquire_for(100'000);
        }
      });
      for (const Request& r : arena) {
        EXPECT_EQ(r.outcome, Outcome::kExpired);
        EXPECT_EQ(r.bytes_live.load(std::memory_order_relaxed), 0)
            << "request " << r.id
            << " leaked tracked bytes through the timed-wait unwind";
      }
    });
  };

  RuntimeOptions o = opts();
  if (replay::kReplayEnabled) o.record_path = log_path;
  ServeReport recorded;
  body(o, &recorded);
  EXPECT_EQ(recorded.expired_running, 4u);
  EXPECT_EQ(recorded.completed + recorded.rejected_queue +
                recorded.rejected_shed + recorded.rejected_admission +
                recorded.expired_queue,
            0u);
  EXPECT_EQ(TrackedHeap::instance().live_bytes(), live_before)
      << "tracked heap must return to its pre-run level (no stack/byte leak)";

  // Strict replay (RealEngine only — Sim logs cross-replay by design): the
  // recorded resolution of the deadline-vs-timeout race must reproduce,
  // down to the determinism signature.
  if (replay::kReplayEnabled && GetParam() == EngineKind::Real) {
    RuntimeOptions r = opts();
    r.replay_path = log_path;
    ServeReport replayed;
    body(r, &replayed);
    EXPECT_EQ(replayed.expired_running, 4u);
    EXPECT_EQ(replayed.completed, 0u);
  }
  if (replay::kReplayEnabled) std::remove(log_path.c_str());
}

INSTANTIATE_TEST_SUITE_P(Engines, ServeTest,
                         ::testing::Values(EngineKind::Sim, EngineKind::Real),
                         engine_name);

// ---------- watchdog liveness heartbeat (RealEngine) -------------------------

// An armed stall watchdog plus an idle-but-armed server: without the
// heartbeat the supervisor would see zero scheduler progress for longer
// than the deadline and abort the process; the pump's per-iteration beat
// is what keeps "serving, currently idle" alive. Surviving the idle window
// IS the assertion.
TEST(ServeWatchdog, HeartbeatKeepsIdleServerAliveUnderStallWatchdog) {
  std::atomic<std::uint64_t> heartbeat{0};
  RuntimeOptions o;
  o.engine = EngineKind::Real;
  o.sched = SchedKind::AsyncDf;
  o.nprocs = 2;
  o.default_stack_size = 32 << 10;
  o.watchdog.stall_deadline_ms = 300;
  o.watchdog.heartbeat = &heartbeat;
  run(o, [&] {
    ServerConfig cfg;
    cfg.poll_ns = 5'000'000;
    cfg.heartbeat = &heartbeat;
    EndpointSpec ep;
    ep.name = "idle";
    ep.mem_bound = 256;
    ep.handler = [](Request&) {};
    Server server(cfg, {ep});
    Thread pump = spawn([&server]() -> void* {
      server.pump();
      return nullptr;
    });
    // Idle for 3x the stall deadline — no submits, no scheduler progress.
    Semaphore idle{0};
    idle.try_acquire_for(900'000'000);
    server.stop();
    join(pump);
  });
  EXPECT_GT(heartbeat.load(), 0u);
}

// ---------- df_try_malloc overload classification ----------------------------

// kOverloaded vs kNoMem (src/runtime/api.h): exhaustion while other fibers
// hold tracked bytes is transient backpressure (their frees can make a
// retry succeed — the admission controller's shed signal); exhaustion with
// nothing held is terminal. An impossible allocation distinguishes the two
// paths deterministically. mem_quota = 0 keeps the oversized-allocation
// dummy-thread tree out of the way (it would be proportional to m/K).
TEST(DfTryMalloc, ReportsOverloadedWhileOtherFibersHoldTrackedBytes) {
  DfStatus status = DfStatus::kOk;
  RuntimeOptions o;
  o.engine = EngineKind::Sim;
  o.sched = SchedKind::AsyncDf;
  o.nprocs = 1;
  o.mem_quota = 0;
  run(o, [&] {
    void* held = df_malloc(1024);
    ASSERT_NE(held, nullptr);
    void* p = df_try_malloc(std::size_t{1} << 62, &status);
    EXPECT_EQ(p, nullptr);
    df_free(held);
  });
  EXPECT_EQ(status, DfStatus::kOverloaded)
      << "held tracked bytes mean a retry could succeed: backpressure";
}

TEST(DfTryMalloc, ReportsNoMemWhenNothingCanEverFree) {
  // Outside run() there is no engine to preempt through and no concurrent
  // holder — the same impossible allocation is terminal.
  ASSERT_EQ(TrackedHeap::instance().live_bytes(), 0);
  DfStatus status = DfStatus::kOk;
  void* p = df_try_malloc(std::size_t{1} << 62, &status);
  EXPECT_EQ(p, nullptr);
  EXPECT_EQ(status, DfStatus::kNoMem);
}

}  // namespace
}  // namespace dfth
