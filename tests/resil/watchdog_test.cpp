// Stall watchdog and flight recorder (src/resil/watchdog.h).
//
// The dump function itself is exercised directly (it writes, it does not
// abort); the engine trips are death tests — a SimEngine virtual-time
// deadline and a RealEngine wall-clock no-progress deadline, each on a
// workload that would otherwise hang forever.
#include "resil/watchdog.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/trace.h"
#include "runtime/api.h"
#include "runtime/sync.h"

namespace dfth {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

TEST(FlightRecorder, DumpHasEverySectionEvenWithNothingToReport) {
  resil::FlightInfo info;
  info.reason = "unit test";
  info.engine = "none";
  info.lanes.push_back({0, nullptr});
  resil::WatchdogConfig cfg;
  cfg.dump_path = ::testing::TempDir() + "dfth_flight_unit.txt";
  resil::dump_flight_recorder(info, cfg);

  const std::string dump = slurp(cfg.dump_path);
  EXPECT_NE(dump.find("==== DFTH FLIGHT RECORDER ===="), std::string::npos);
  EXPECT_NE(dump.find("reason: unit test"), std::string::npos);
  EXPECT_NE(dump.find("lane 0: idle"), std::string::npos);
  EXPECT_NE(dump.find("-- trace-ring tail --"), std::string::npos);
  EXPECT_NE(dump.find("-- fault injection --"), std::string::npos);
  EXPECT_NE(dump.find("==== END FLIGHT RECORDER ===="), std::string::npos);
}

TEST(WatchdogDeathTest, SimVirtualDeadlineTripsAndDumpsFlightRecorder) {
  ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
  const std::string dump_path = ::testing::TempDir() + "dfth_flight_sim.txt";
  auto hang = [&dump_path] {
    obs::Tracer tracer;
    RuntimeOptions o;
    o.engine = EngineKind::Sim;
    o.sched = SchedKind::AsyncDf;
    o.nprocs = 2;
    o.default_stack_size = 8 << 10;
    o.tracer = &tracer;
    o.watchdog.virtual_deadline_ns = 2'000'000;  // 2 virtual ms
    o.watchdog.dump_path = dump_path;
    run(o, [] {
      auto t = spawn([]() -> void* {
        // Burns virtual time forever; only the watchdog can end this run.
        while (true) {
          annotate_work(100'000);
          yield();
        }
        return nullptr;
      });
      join(t);
    });
  };
  EXPECT_DEATH(hang(), "DFTH FLIGHT RECORDER");

  // The aborting child wrote the dump before dying; check the promised
  // contents: per-thread state with held locks, the AsyncDF order list, and
  // the trace-ring tail.
  const std::string dump = slurp(dump_path);
  EXPECT_NE(dump.find("virtual-time deadline"), std::string::npos) << dump;
  EXPECT_NE(dump.find("-- threads"), std::string::npos) << dump;
  EXPECT_NE(dump.find("held-locks="), std::string::npos) << dump;
  EXPECT_NE(dump.find("order-list"), std::string::npos) << dump;
  EXPECT_NE(dump.find("-- trace-ring tail --"), std::string::npos) << dump;
#if DFTH_TRACE
  // A trace session was installed, so the tail has real events.
  EXPECT_NE(dump.find(" ns lane "), std::string::npos) << dump;
#endif
}

TEST(WatchdogDeathTest, RealStallDeadlineTripsOnNoProgress) {
  ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
  auto hang = [] {
    RuntimeOptions o;
    o.engine = EngineKind::Real;
    o.sched = SchedKind::AsyncDf;
    o.nprocs = 2;
    o.default_stack_size = 16 << 10;
    o.watchdog.stall_deadline_ms = 200;
    run(o, [] {
      auto t = spawn([]() -> void* {
        // Spins without ever yielding or blocking: not a deadlock (one
        // worker stays busy), but no dispatch/wake/exit progress either —
        // exactly the hang class only the watchdog can report.
        std::atomic<std::uint64_t> spin{0};
        for (;;) spin.fetch_add(1, std::memory_order_relaxed);
        return nullptr;
      });
      join(t);
    });
  };
  EXPECT_DEATH(hang(), "DFTH FLIGHT RECORDER");
}

TEST(Watchdog, GenerousDeadlinesDoNotTripHealthyRuns) {
  RuntimeOptions o;
  o.sched = SchedKind::AsyncDf;
  o.nprocs = 4;
  o.default_stack_size = 8 << 10;
  o.watchdog.stall_deadline_ms = 60'000;
  o.watchdog.virtual_deadline_ns = 60'000'000'000ull;
  for (const EngineKind engine : {EngineKind::Sim, EngineKind::Real}) {
    o.engine = engine;
    long long sum = 0;
    run(o, [&] {
      Mutex mu;
      std::vector<Thread> threads;
      for (int i = 1; i <= 32; ++i) {
        threads.push_back(spawn([&, i]() -> void* {
          LockGuard lock(mu);
          sum += i;
          return nullptr;
        }));
      }
      for (auto& t : threads) join(t);
    });
    EXPECT_EQ(sum, 32 * 33 / 2) << to_string(engine);
  }
}

}  // namespace
}  // namespace dfth
