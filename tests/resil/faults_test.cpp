// Unit tests for the deterministic fault injector (src/resil/faults.h).
//
// The FaultInjector class itself is compiled into every build — only the
// DFTH_FAULT_* probe macros (and the engines' arming of the injector) are
// gated on -DDFTH_FAULTS — so the schedule logic is unit-testable here in
// all build flavours. The OFF-build static_asserts at the bottom prove the
// hooks vanish to literal constants, mirroring the obs-layer hook proof in
// tests/obs/trace_ring_test.cpp.
#include "resil/faults.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

namespace dfth::resil {
namespace {

/// Re-arms with `plan`, runs `n` evaluations of `site`, returns the
/// failure pattern as a bool vector, and disarms.
std::vector<bool> schedule_of(const FaultPlan& plan, FaultSite site, int n) {
  auto& inj = FaultInjector::instance();
  inj.arm(plan);
  std::vector<bool> fired;
  fired.reserve(n);
  for (int i = 0; i < n; ++i) fired.push_back(inj.should_fail(site));
  inj.disarm();
  return fired;
}

TEST(FaultSiteNames, DottedNamesAreStable) {
  // These names appear in plans, logs, and the flight-recorder dump; CI
  // greps for them, so they are API.
  EXPECT_STREQ(to_string(FaultSite::kStackMmap), "stack.mmap");
  EXPECT_STREQ(to_string(FaultSite::kStackMprotect), "stack.mprotect");
  EXPECT_STREQ(to_string(FaultSite::kHeapAlloc), "heap.alloc");
  EXPECT_STREQ(to_string(FaultSite::kCtxCreate), "ctx.create");
  EXPECT_STREQ(to_string(FaultSite::kWorkerSpawn), "worker.spawn");
  EXPECT_STREQ(to_string(FaultSite::kSyncTimeout), "sync.timeout");
}

TEST(FaultPlan, DefaultPlanIsInert) {
  FaultPlan plan;
  EXPECT_FALSE(plan.enabled());
  for (int i = 0; i < kNumFaultSites; ++i) {
    EXPECT_FALSE(plan.sites[i].enabled());
  }
}

TEST(FaultPlan, UniformHelpersEnableEverySite) {
  const FaultPlan every = FaultPlan::uniform_every(7, 3);
  const FaultPlan prob = FaultPlan::uniform_probability(7, 0.25);
  EXPECT_TRUE(every.enabled());
  EXPECT_TRUE(prob.enabled());
  for (int i = 0; i < kNumFaultSites; ++i) {
    EXPECT_EQ(every.sites[i].every_nth, 3u);
    EXPECT_DOUBLE_EQ(prob.sites[i].probability, 0.25);
  }
}

TEST(FaultInjector, DisarmedNeverFails) {
  auto& inj = FaultInjector::instance();
  inj.disarm();
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(inj.should_fail(FaultSite::kHeapAlloc));
  }
}

TEST(FaultInjector, EveryNthFiresOnExactlyTheNth) {
  FaultPlan plan;
  plan.site(FaultSite::kHeapAlloc).every_nth = 3;
  const std::vector<bool> fired = schedule_of(plan, FaultSite::kHeapAlloc, 9);
  const std::vector<bool> want = {false, false, true, false, false,
                                  true,  false, false, true};
  EXPECT_EQ(fired, want);
}

TEST(FaultInjector, SkipFirstShiftsTheSchedule) {
  FaultPlan plan;
  plan.site(FaultSite::kCtxCreate).every_nth = 2;
  plan.site(FaultSite::kCtxCreate).skip_first = 3;
  // Evaluations 1..3 pass; thereafter every 2nd of the remainder fails.
  const std::vector<bool> fired = schedule_of(plan, FaultSite::kCtxCreate, 8);
  const std::vector<bool> want = {false, false, false, false,
                                  true,  false, true,  false};
  EXPECT_EQ(fired, want);
}

TEST(FaultInjector, MaxFailuresCapsInjection) {
  FaultPlan plan;
  plan.site(FaultSite::kSyncTimeout).every_nth = 1;
  plan.site(FaultSite::kSyncTimeout).max_failures = 2;
  auto& inj = FaultInjector::instance();
  inj.arm(plan);
  EXPECT_TRUE(inj.should_fail(FaultSite::kSyncTimeout));
  EXPECT_TRUE(inj.should_fail(FaultSite::kSyncTimeout));
  EXPECT_FALSE(inj.should_fail(FaultSite::kSyncTimeout));
  EXPECT_FALSE(inj.should_fail(FaultSite::kSyncTimeout));
  EXPECT_EQ(inj.injected(FaultSite::kSyncTimeout), 2u);
  EXPECT_EQ(inj.evaluations(FaultSite::kSyncTimeout), 4u);
  inj.disarm();
}

TEST(FaultInjector, SameSeedSameBernoulliSchedule) {
  FaultPlan plan;
  plan.seed = 0xfee1;
  plan.site(FaultSite::kStackMmap).probability = 0.3;
  const std::vector<bool> a = schedule_of(plan, FaultSite::kStackMmap, 200);
  const std::vector<bool> b = schedule_of(plan, FaultSite::kStackMmap, 200);
  EXPECT_EQ(a, b);
  // A 0.3 Bernoulli over 200 draws fires at least once and misses at least
  // once with probability ~1 - 2e-31; a violation means the stream is broken.
  EXPECT_NE(std::count(a.begin(), a.end(), true), 0);
  EXPECT_NE(std::count(a.begin(), a.end(), true), 200);
}

TEST(FaultInjector, DifferentSeedsDiverge) {
  FaultPlan a = FaultPlan::uniform_probability(1, 0.5);
  FaultPlan b = FaultPlan::uniform_probability(2, 0.5);
  EXPECT_NE(schedule_of(a, FaultSite::kHeapAlloc, 128),
            schedule_of(b, FaultSite::kHeapAlloc, 128));
}

TEST(FaultInjector, SitesDrawFromIndependentStreams) {
  // Probing one site must not perturb another site's draw sequence: run
  // heap.alloc alone, then interleaved with stack.mmap probes, and compare.
  FaultPlan plan = FaultPlan::uniform_probability(0xabcd, 0.4);
  const std::vector<bool> alone = schedule_of(plan, FaultSite::kHeapAlloc, 64);

  auto& inj = FaultInjector::instance();
  inj.arm(plan);
  std::vector<bool> interleaved;
  for (int i = 0; i < 64; ++i) {
    (void)inj.should_fail(FaultSite::kStackMmap);
    interleaved.push_back(inj.should_fail(FaultSite::kHeapAlloc));
  }
  inj.disarm();
  EXPECT_EQ(alone, interleaved);
}

TEST(FaultInjector, ArmResetsCountersDisarmPreservesThem) {
  auto& inj = FaultInjector::instance();
  FaultPlan plan;
  plan.site(FaultSite::kWorkerSpawn).every_nth = 1;
  inj.arm(plan);
  ASSERT_TRUE(inj.armed());
  EXPECT_TRUE(inj.should_fail(FaultSite::kWorkerSpawn));
  inj.on_recovered(FaultSite::kWorkerSpawn);
  inj.disarm();
  EXPECT_FALSE(inj.armed());
  // Counters survive disarm so a finished run's schedule is inspectable...
  EXPECT_EQ(inj.evaluations(FaultSite::kWorkerSpawn), 1u);
  EXPECT_EQ(inj.injected(FaultSite::kWorkerSpawn), 1u);
  EXPECT_EQ(inj.recovered(FaultSite::kWorkerSpawn), 1u);
  EXPECT_EQ(inj.injected_total(), 1u);
  EXPECT_EQ(inj.recovered_total(), 1u);
  // ...and the next arm starts from zero.
  inj.arm(plan);
  EXPECT_EQ(inj.evaluations_total(), 0u);
  EXPECT_EQ(inj.injected_total(), 0u);
  EXPECT_EQ(inj.recovered_total(), 0u);
  inj.disarm();
}

TEST(FaultInjector, SummaryNamesEverySite) {
  auto& inj = FaultInjector::instance();
  inj.arm(FaultPlan::uniform_every(1, 1));
  (void)inj.should_fail(FaultSite::kHeapAlloc);
  inj.disarm();
  std::string out;
  inj.append_summary(&out);
  for (int i = 0; i < kNumFaultSites; ++i) {
    EXPECT_NE(out.find(to_string(static_cast<FaultSite>(i))), std::string::npos)
        << out;
  }
  EXPECT_NE(out.find("injected=1"), std::string::npos) << out;
}

#if !DFTH_FAULTS
// With fault injection compiled out, the probe macros must expand to literal
// constants — no injector call, no argument evaluation, zero cost. This is
// the build-matrix guarantee the README advertises for the default build.
#define DFTH_STR2(x) #x
#define DFTH_STR(x) DFTH_STR2(x)
static_assert(sizeof(DFTH_STR(DFTH_FAULT_SHOULD_FAIL(anything))) ==
                  sizeof("(false)"),
              "DFTH_FAULT_SHOULD_FAIL must compile away to (false)");
static_assert(sizeof(DFTH_STR(DFTH_FAULT_RECOVERED(anything))) ==
                  sizeof("((void)0)"),
              "DFTH_FAULT_RECOVERED must compile away to ((void)0)");
static_assert(!kFaultsEnabled,
              "kFaultsEnabled must mirror the DFTH_FAULTS macro");
#else
static_assert(kFaultsEnabled,
              "kFaultsEnabled must mirror the DFTH_FAULTS macro");
#endif

}  // namespace
}  // namespace dfth::resil
