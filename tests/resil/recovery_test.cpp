// End-to-end recovery tests: programs complete *correctly* while the resil
// injector fails stacks, heap allocations, fiber contexts, worker spawns and
// timed waits on a deterministic schedule. Requires -DDFTH_FAULTS=ON (the CI
// faults-soak leg); every test self-skips in default builds.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <vector>

#include "resil/faults.h"
#include "runtime/api.h"
#include "runtime/sync.h"
#include "space/stack_pool.h"

namespace dfth {
namespace {

class RecoveryTest : public ::testing::TestWithParam<EngineKind> {
 protected:
  void SetUp() override {
    if (!resil::kFaultsEnabled) {
      GTEST_SKIP() << "build has no fault hooks (-DDFTH_FAULTS=OFF)";
    }
  }

  RuntimeOptions opts(const resil::FaultPlan* plan) const {
    RuntimeOptions o;
    o.engine = GetParam();
    o.sched = SchedKind::AsyncDf;
    o.nprocs = 4;
    o.default_stack_size = 8 << 10;
    o.fault_plan = plan;
    return o;
  }
};

std::string engine_name(const ::testing::TestParamInfo<EngineKind>& info) {
  return to_string(info.param);
}

/// Fork tree of depth `d`; every leaf df_mallocs a scratch block and adds its
/// index. The checksum proves no work was lost or duplicated under faults.
long long fork_tree_sum(int depth, int leaf_base) {
  if (depth == 0) {
    auto* scratch = static_cast<long long*>(df_malloc(256));
    EXPECT_NE(scratch, nullptr);
    scratch[0] = leaf_base;
    const long long v = scratch[0];
    df_free(scratch);
    return v;
  }
  long long left_v = 0, right_v = 0;
  auto left = spawn([&]() -> void* {
    left_v = fork_tree_sum(depth - 1, leaf_base);
    return nullptr;
  });
  auto right = spawn([&]() -> void* {
    right_v = fork_tree_sum(depth - 1, leaf_base + (1 << (depth - 1)));
    return nullptr;
  });
  join(left);
  join(right);
  return left_v + right_v;
}

// Leaves are numbered 0..2^d-1, so the tree sums to 2^d * (2^d - 1) / 2.
constexpr int kDepth = 6;
constexpr long long kLeaves = 1 << kDepth;
constexpr long long kWantSum = kLeaves * (kLeaves - 1) / 2;

TEST_P(RecoveryTest, HeapFaultsEveryThirdAllocationStillSumsCorrectly) {
  resil::FaultPlan plan;
  plan.site(resil::FaultSite::kHeapAlloc).every_nth = 3;
  long long sum = -1;
  const RunStats stats = run(opts(&plan), [&] { sum = fork_tree_sum(kDepth, 0); });
  EXPECT_EQ(sum, kWantSum);
  // Every third tracked allocation failed; the OOM-preempt retry absorbed
  // every one of them.
  EXPECT_GT(stats.faults_injected, 0u);
  EXPECT_GT(stats.oom_preemptions, 0u);
}

TEST_P(RecoveryTest, CtxCreateFaultsRunChildrenInline) {
  resil::FaultPlan plan;
  plan.site(resil::FaultSite::kCtxCreate).every_nth = 2;
  long long sum = -1;
  const RunStats stats = run(opts(&plan), [&] { sum = fork_tree_sum(kDepth, 0); });
  EXPECT_EQ(sum, kWantSum);
  EXPECT_GT(stats.inline_runs, 0u);
  EXPECT_EQ(stats.faults_injected, stats.faults_recovered);
}

TEST_P(RecoveryTest, StackMmapAlwaysFailingFallsBackToHeapStacks) {
  // Drain the cache first so acquires actually reach the mmap site, and use
  // an off-default size so no other test's cached stacks satisfy us.
  StackPool::instance().trim();
  resil::FaultPlan plan;
  plan.site(resil::FaultSite::kStackMmap).probability = 1.0;
  RuntimeOptions o = opts(&plan);
  o.default_stack_size = 24 << 10;
  long long sum = -1;
  const RunStats stats = run(o, [&] { sum = fork_tree_sum(kDepth, 0); });
  EXPECT_EQ(sum, kWantSum);
  EXPECT_GT(stats.faults_injected, 0u);
  StackPool::instance().trim();
}

TEST_P(RecoveryTest, SyncTimeoutFaultForcesOneTimedOutLock) {
  resil::FaultPlan plan;
  plan.site(resil::FaultSite::kSyncTimeout).every_nth = 1;
  plan.site(resil::FaultSite::kSyncTimeout).max_failures = 1;
  bool first = true, second = false;
  run(opts(&plan), [&] {
    Mutex mu;
    // Uncontended, so only an injected fault can make this fail...
    first = mu.try_lock_for(1'000'000);
    // ...and max_failures=1 means the retry must succeed.
    second = mu.try_lock_for(1'000'000);
    if (second) mu.unlock();
  });
  EXPECT_FALSE(first);
  EXPECT_TRUE(second);
}

TEST_P(RecoveryTest, DfTryMallocReportsNoMemWhenEveryRetryFails) {
  resil::FaultPlan plan;
  plan.site(resil::FaultSite::kHeapAlloc).probability = 1.0;
  DfStatus status = DfStatus::kOk;
  void* p = reinterpret_cast<void*>(1);
  const RunStats stats = run(opts(&plan), [&] {
    p = df_try_malloc(512, &status);
  });
  EXPECT_EQ(p, nullptr);
  EXPECT_EQ(status, DfStatus::kNoMem);
  // The engine exhausted its bounded OOM-preempt retries before giving up.
  EXPECT_GT(stats.oom_preemptions, 0u);
}

TEST(RecoveryRealTest, WorkerSpawnFaultsDegradeToFewerWorkers) {
  if (!resil::kFaultsEnabled) {
    GTEST_SKIP() << "build has no fault hooks (-DDFTH_FAULTS=OFF)";
  }
  // Fail every worker-spawn probe: only worker 0 (exempt by design — a
  // 0-worker engine cannot run anything) survives, and the run degrades to
  // serial execution rather than dying.
  resil::FaultPlan plan;
  plan.site(resil::FaultSite::kWorkerSpawn).every_nth = 1;
  RuntimeOptions o;
  o.engine = EngineKind::Real;
  o.sched = SchedKind::AsyncDf;
  o.nprocs = 4;
  o.default_stack_size = 8 << 10;
  o.fault_plan = &plan;
  long long sum = -1;
  const RunStats stats = run(o, [&] { sum = fork_tree_sum(kDepth, 0); });
  EXPECT_EQ(sum, kWantSum);
  EXPECT_GE(stats.faults_injected, 3u);  // workers 1..3 each probed once
  EXPECT_EQ(stats.faults_recovered, stats.faults_injected);
}

TEST(RecoveryDeterminismTest, SameSeedSamePlanIsByteForByteRepeatableOnSim) {
  if (!resil::kFaultsEnabled) {
    GTEST_SKIP() << "build has no fault hooks (-DDFTH_FAULTS=OFF)";
  }
  // SimEngine serializes all fibers onto one host thread, so an identical
  // FaultPlan must produce the identical failure schedule and therefore
  // identical stats — the property that makes every recovery path testable.
  resil::FaultPlan plan = resil::FaultPlan::uniform_probability(0xd06, 0.05);
  plan.site(resil::FaultSite::kWorkerSpawn) = {};  // real-engine-only site
  auto one_run = [&plan] {
    StackPool::instance().trim();
    RuntimeOptions o;
    o.engine = EngineKind::Sim;
    o.sched = SchedKind::AsyncDf;
    o.nprocs = 4;
    o.default_stack_size = 8 << 10;
    o.fault_plan = &plan;
    long long sum = -1;
    RunStats s = run(o, [&] { sum = fork_tree_sum(kDepth, 0); });
    EXPECT_EQ(sum, kWantSum);
    return s;
  };
  const RunStats a = one_run();
  const RunStats b = one_run();
  EXPECT_EQ(a.faults_injected, b.faults_injected);
  EXPECT_EQ(a.faults_recovered, b.faults_recovered);
  EXPECT_EQ(a.inline_runs, b.inline_runs);
  EXPECT_EQ(a.oom_preemptions, b.oom_preemptions);
  EXPECT_EQ(a.threads_created, b.threads_created);
  EXPECT_EQ(a.dispatches, b.dispatches);
  EXPECT_DOUBLE_EQ(a.elapsed_us, b.elapsed_us);
}

INSTANTIATE_TEST_SUITE_P(BothEngines, RecoveryTest,
                         ::testing::Values(EngineKind::Sim, EngineKind::Real),
                         engine_name);

}  // namespace
}  // namespace dfth
