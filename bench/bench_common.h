// Shared helpers for the figure/table-regeneration harnesses.
//
// Every bench binary reproduces one table or figure from the paper: it
// prints the same rows/series the paper reports (speedups vs a serial C
// baseline, heap high-water marks, max live thread counts) and can mirror
// them to CSV. Absolute numbers come from the simulator's cost model, so
// they are comparable in *shape*, not magnitude, with the 1998 hardware —
// see EXPERIMENTS.md.
#pragma once

#include <cstdio>
#include <string>

#include "runtime/api.h"
#include "util/cli.h"
#include "util/table.h"

namespace dfth::bench {

/// Standard options shared by the harnesses.
struct Common {
  Cli cli;
  std::int64_t* procs_max;
  std::string* csv;
  bool* full;
  std::int64_t* seed;

  Common(const std::string& name, const std::string& what)
      : cli(name, what),
        procs_max(cli.int_opt("max-procs", 8, "largest processor count swept")),
        csv(cli.str_opt("csv", "", "also write the table to this CSV path")),
        full(cli.flag("full", false, "use the paper's full problem sizes")),
        seed(cli.int_opt("seed", 0x5eed, "RNG seed for generators/schedulers")) {}

  bool parse(int argc, char** argv) { return cli.parse(argc, argv); }

  void emit(const Table& table, const std::string& title) const {
    std::fputs(table.to_string(title).c_str(), stdout);
    if (!csv->empty()) {
      if (table.write_csv(*csv)) {
        std::printf("(csv written to %s)\n", csv->c_str());
      } else {
        std::fprintf(stderr, "failed to write %s\n", csv->c_str());
      }
    }
    std::fflush(stdout);
  }
};

/// Simulation options for one run.
inline RuntimeOptions sim_opts(SchedKind sched, int nprocs,
                               std::size_t stack = 1 << 20,
                               std::uint64_t seed = 0x5eed) {
  RuntimeOptions o;
  o.engine = EngineKind::Sim;
  o.sched = sched;
  o.nprocs = nprocs;
  o.default_stack_size = stack;
  o.seed = seed;
  return o;
}

inline std::string mb(std::int64_t bytes) {
  return Table::fmt(static_cast<double>(bytes) / (1 << 20), 1);
}

}  // namespace dfth::bench
