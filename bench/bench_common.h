// Shared helpers for the figure/table-regeneration harnesses.
//
// Every bench binary reproduces one table or figure from the paper: it
// prints the same rows/series the paper reports (speedups vs a serial C
// baseline, heap high-water marks, max live thread counts) and can mirror
// them to CSV. Absolute numbers come from the simulator's cost model, so
// they are comparable in *shape*, not magnitude, with the 1998 hardware —
// see EXPERIMENTS.md.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "runtime/api.h"
#include "util/cli.h"
#include "util/table.h"

namespace dfth::bench {

/// One machine-readable result row for BENCH_<name>.json: the fields every
/// downstream comparison needs, regardless of which figure produced them.
struct BenchRecord {
  std::string label;       ///< row/series identifier within the bench
  std::string scheduler;
  int nprocs = 0;
  std::uint64_t quota_bytes = 0;
  double elapsed_us = 0;
  std::int64_t heap_peak = 0;
  std::int64_t max_live_threads = 0;
  std::uint64_t faults_injected = 0;   ///< resil injector failures this run
  std::uint64_t faults_recovered = 0;  ///< injected failures absorbed this run
  // Work/span profile (all zeros unless the run had a Profiler installed).
  std::uint64_t work_ns = 0;
  std::uint64_t span_ns = 0;
  std::uint64_t burdened_span_ns = 0;
  double parallelism = 0;
};

/// Standard options shared by the harnesses.
struct Common {
  Cli cli;
  std::int64_t* procs_max;
  std::string* csv;
  bool* full;
  std::int64_t* seed;
  std::string* json;

  Common(const std::string& name, const std::string& what)
      : cli(name, what),
        procs_max(cli.int_opt("max-procs", 8, "largest processor count swept")),
        csv(cli.str_opt("csv", "", "also write the table to this CSV path")),
        full(cli.flag("full", false, "use the paper's full problem sizes")),
        seed(cli.int_opt("seed", 0x5eed, "RNG seed for generators/schedulers")),
        json(cli.str_opt("json", "BENCH_" + name + ".json",
                         "machine-readable results path (empty disables)")),
        name_(name) {}

  bool parse(int argc, char** argv) { return cli.parse(argc, argv); }

  void emit(const Table& table, const std::string& title) const {
    std::fputs(table.to_string(title).c_str(), stdout);
    if (!csv->empty()) {
      if (table.write_csv(*csv)) {
        std::printf("(csv written to %s)\n", csv->c_str());
      } else {
        std::fprintf(stderr, "failed to write %s\n", csv->c_str());
      }
    }
    std::fflush(stdout);
  }

  /// Records one measured run for the JSON dump.
  void record(const std::string& label, const RuntimeOptions& opts,
              const RunStats& stats) {
    BenchRecord r;
    r.label = label;
    r.scheduler = to_string(stats.sched);
    r.nprocs = stats.nprocs;
    r.quota_bytes = opts.mem_quota;
    r.elapsed_us = stats.elapsed_us;
    r.heap_peak = stats.heap_peak;
    r.max_live_threads = stats.max_live_threads;
    r.faults_injected = stats.faults_injected;
    r.faults_recovered = stats.faults_recovered;
    copy_profile(&r, stats);
    records_.push_back(std::move(r));
  }

  /// Records one measured run whose harness built its options out of line
  /// (quota defaults to the runtime's default K).
  void record(const std::string& label, const RunStats& stats,
              std::uint64_t quota_bytes = RuntimeOptions{}.mem_quota) {
    BenchRecord r;
    r.label = label;
    r.scheduler = to_string(stats.sched);
    r.nprocs = stats.nprocs;
    r.quota_bytes = quota_bytes;
    r.elapsed_us = stats.elapsed_us;
    r.heap_peak = stats.heap_peak;
    r.max_live_threads = stats.max_live_threads;
    r.faults_injected = stats.faults_injected;
    r.faults_recovered = stats.faults_recovered;
    copy_profile(&r, stats);
    records_.push_back(std::move(r));
  }

  /// Records a row with no RunStats behind it (e.g. measured op costs).
  void record_raw(const std::string& label, const std::string& scheduler,
                  int nprocs, double elapsed_us, std::int64_t heap_peak = 0) {
    BenchRecord r;
    r.label = label;
    r.scheduler = scheduler;
    r.nprocs = nprocs;
    r.elapsed_us = elapsed_us;
    r.heap_peak = heap_peak;
    records_.push_back(std::move(r));
  }

  /// Writes BENCH_<name>.json (one record per line). Call once at the end
  /// of main; a no-op when --json '' was passed.
  void write_json() const {
    if (json->empty()) return;
    std::FILE* f = std::fopen(json->c_str(), "w");
    if (!f) {
      std::fprintf(stderr, "failed to write %s\n", json->c_str());
      return;
    }
    std::fprintf(f, "{\"bench\": \"%s\", \"records\": [", name_.c_str());
    bool first = true;
    for (const BenchRecord& r : records_) {
      std::fprintf(f,
                   "%s\n{\"label\": \"%s\", \"scheduler\": \"%s\", "
                   "\"nprocs\": %d, \"quota_bytes\": %llu, "
                   "\"elapsed_us\": %.3f, \"heap_peak\": %lld, "
                   "\"max_live_threads\": %lld, "
                   "\"faults_injected\": %llu, \"faults_recovered\": %llu, "
                   "\"work_ns\": %llu, \"span_ns\": %llu, "
                   "\"burdened_span_ns\": %llu, \"parallelism\": %.3f}",
                   first ? "" : ",", r.label.c_str(), r.scheduler.c_str(),
                   r.nprocs, static_cast<unsigned long long>(r.quota_bytes),
                   r.elapsed_us, static_cast<long long>(r.heap_peak),
                   static_cast<long long>(r.max_live_threads),
                   static_cast<unsigned long long>(r.faults_injected),
                   static_cast<unsigned long long>(r.faults_recovered),
                   static_cast<unsigned long long>(r.work_ns),
                   static_cast<unsigned long long>(r.span_ns),
                   static_cast<unsigned long long>(r.burdened_span_ns),
                   r.parallelism);
      first = false;
    }
    std::fprintf(f, "\n]}\n");
    std::fclose(f);
    std::printf("(json written to %s)\n", json->c_str());
  }

 private:
  static void copy_profile(BenchRecord* r, const RunStats& stats) {
    if (!stats.profile.enabled) return;
    r->work_ns = stats.profile.work_ns;
    r->span_ns = stats.profile.span_ns;
    r->burdened_span_ns = stats.profile.burdened_span_ns;
    r->parallelism = stats.profile.parallelism();
  }

  std::string name_;
  std::vector<BenchRecord> records_;
};

/// Simulation options for one run.
inline RuntimeOptions sim_opts(SchedKind sched, int nprocs,
                               std::size_t stack = 1 << 20,
                               std::uint64_t seed = 0x5eed) {
  RuntimeOptions o;
  o.engine = EngineKind::Sim;
  o.sched = sched;
  o.nprocs = nprocs;
  o.default_stack_size = stack;
  o.seed = seed;
  return o;
}

inline std::string mb(std::int64_t bytes) {
  return Table::fmt(static_cast<double>(bytes) / (1 << 20), 1);
}

}  // namespace dfth::bench
