// Registry of the seven paper benchmarks for the Figure-8 table and the
// §5.2 scalability sweep: per app, a serial baseline plus fine-grained
// (any scheduler) and — where the paper has one — a coarse-grained version.
//
// Default problem sizes are scaled down so the whole table regenerates in
// minutes on one host core; --full selects the paper's sizes.
#pragma once

#include <cctype>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "apps/barnes/barnes.h"
#include "apps/dtree/dtree.h"
#include "apps/fft/fft.h"
#include "apps/fmm/fmm.h"
#include "apps/matmul/matmul.h"
#include "apps/spmv/spmv.h"
#include "apps/volrend/volrend.h"
#include "bench_common.h"
#include "obs/profile.h"
#include "matmul_runner.h"

namespace dfth::bench {

struct AppSpec {
  std::string name;
  std::string problem;
  bool has_coarse = false;
  std::function<RunStats()> serial;
  /// Fine-grained run; coarse ignores the scheduler (it is insensitive by
  /// construction — one thread per processor).
  std::function<RunStats(SchedKind, int, std::uint64_t)> fine;
  std::function<RunStats(int)> coarse;
};

/// Filesystem-safe lowercase identifier for an app ("Vol. Rend." ->
/// "vol-rend"). Used to name schedule logs; tools/dfth-replay matches a
/// log's recorded tag back to an AppSpec through this same mapping.
inline std::string app_slug(const std::string& name) {
  std::string slug;
  for (char c : name) {
    if (std::isalnum(static_cast<unsigned char>(c))) {
      slug.push_back(
          static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
    } else if (!slug.empty() && slug.back() != '-') {
      slug.push_back('-');
    }
  }
  while (!slug.empty() && slug.back() == '-') slug.pop_back();
  return slug;
}

/// The `engine` parameter retargets the fine-grained runs (the resilience
/// soak drives the same seven apps through the RealEngine); serial and
/// coarse variants stay on the simulator — they exist to reproduce the
/// paper's cost-model baselines. A non-null `prof` is installed on every
/// fine-grained run (bench/prof_apps reads it back between runs). `tweak`,
/// when set, gets the final say on each fine-grained run's RuntimeOptions —
/// the record/replay harnesses use it to point record_path/replay_path at a
/// per-app schedule log without the registry knowing about either.
inline std::vector<AppSpec> make_apps(
    bool full, std::uint64_t seed, EngineKind engine = EngineKind::Sim,
    obs::Profiler* prof = nullptr,
    std::function<void(RuntimeOptions&)> tweak = {}) {
  std::vector<AppSpec> apps;
  auto fine_opts = [engine, prof,
                    tweak](SchedKind sched, int p, std::uint64_t sd) {
    RuntimeOptions o = sim_opts(sched, p, 8 << 10, sd);
    o.engine = engine;
    o.profiler = prof;
    if (tweak) tweak(o);
    return o;
  };

  // -- Matrix multiply (no coarse version in the paper) ---------------------
  {
    auto input = std::make_shared<MatmulInput>(full ? 1024 : 512);
    AppSpec spec;
    spec.name = "Matrix Mult.";
    spec.problem = std::to_string(input->cfg.n) + "x" + std::to_string(input->cfg.n);
    spec.serial = [input] { return matmul_serial_stats(*input); };
    spec.fine = [input, fine_opts](SchedKind sched, int p, std::uint64_t sd) {
      return run(fine_opts(sched, p, sd), [&] {
        apps::matmul_threaded(input->a, input->b, input->c, input->cfg);
      });
    };
    apps.push_back(std::move(spec));
  }

  // -- Barnes-Hut -------------------------------------------------------------
  {
    auto cfg = std::make_shared<apps::BarnesConfig>();
    cfg->bodies = full ? 100000 : 8192;
    cfg->timesteps = 2;
    cfg->seed = seed;
    auto bodies = std::make_shared<std::vector<apps::Body>>(apps::barnes_generate(*cfg));
    AppSpec spec;
    spec.name = "Barnes Hut";
    spec.problem = "N=" + std::to_string(cfg->bodies) + ", Plummer";
    spec.has_coarse = true;
    spec.serial = [cfg, bodies] {
      return run(sim_opts(SchedKind::AsyncDf, 1),
                 [&] { apps::barnes_serial(*bodies, *cfg); });
    };
    spec.fine = [cfg, bodies, fine_opts](SchedKind sched, int p, std::uint64_t sd) {
      return run(fine_opts(sched, p, sd),
                 [&] { apps::barnes_fine(*bodies, *cfg); });
    };
    spec.coarse = [cfg, bodies](int p) {
      return run(sim_opts(SchedKind::Fifo, p, 8 << 10),
                 [&] { apps::barnes_coarse(*bodies, *cfg, p); });
    };
    apps.push_back(std::move(spec));
  }

  // -- FMM (no coarse version in the paper) ------------------------------------
  {
    auto cfg = std::make_shared<apps::FmmConfig>();
    cfg->particles = full ? 10000 : 4000;
    cfg->levels = full ? 4 : 3;
    cfg->terms = 5;
    cfg->chunk = 9;  // 2-D interaction lists have <=27 entries (3-D: 875/25)
    cfg->seed = seed;
    auto particles =
        std::make_shared<std::vector<apps::FmmParticle>>(apps::fmm_generate(*cfg));
    AppSpec spec;
    spec.name = "FMM";
    spec.problem = "N=" + std::to_string(cfg->particles) + ", 5 terms";
    spec.serial = [cfg, particles] {
      auto copy = *particles;
      return run(sim_opts(SchedKind::AsyncDf, 1),
                 [&] { apps::fmm_serial(copy, *cfg); });
    };
    spec.fine = [cfg, particles, fine_opts](SchedKind sched, int p,
                                            std::uint64_t sd) {
      auto copy = *particles;
      return run(fine_opts(sched, p, sd),
                 [&] { apps::fmm_threaded(copy, *cfg); });
    };
    apps.push_back(std::move(spec));
  }

  // -- Decision tree (no coarse version: "would be highly complex") -----------
  {
    auto cfg = std::make_shared<apps::DtreeConfig>();
    cfg->instances = full ? 133999 : 30000;
    cfg->seed = seed;
    auto data = std::make_shared<std::vector<apps::Instance>>(apps::dtree_generate(*cfg));
    AppSpec spec;
    spec.name = "Decision Tree";
    spec.problem = std::to_string(cfg->instances) + " instances";
    spec.serial = [cfg, data] {
      return run(sim_opts(SchedKind::AsyncDf, 1),
                 [&] { apps::dtree_build_serial(*data, *cfg); });
    };
    spec.fine = [cfg, data, fine_opts](SchedKind sched, int p, std::uint64_t sd) {
      return run(fine_opts(sched, p, sd),
                 [&] { apps::dtree_build_threaded(*data, *cfg); });
    };
    apps.push_back(std::move(spec));
  }

  // -- FFT: coarse = p threads, fine = 256 threads ------------------------------
  {
    const std::size_t n = full ? (1u << 22) : (1u << 18);
    auto in = std::make_shared<std::vector<apps::Complex>>(n);
    apps::fft_fill(in->data(), n, seed);
    AppSpec spec;
    spec.name = "FFTW";
    spec.problem = "N=2^" + std::to_string(full ? 22 : 18);
    spec.has_coarse = true;
    spec.serial = [in, n] {
      return run(sim_opts(SchedKind::AsyncDf, 1), [&] {
        apps::FftPlan plan(n);
        auto* out = static_cast<apps::Complex*>(
            df_malloc(sizeof(apps::Complex) * n));
        plan.execute_serial(in->data(), out);
        df_free(out);
      });
    };
    spec.fine = [in, n, fine_opts](SchedKind sched, int p, std::uint64_t sd) {
      return run(fine_opts(sched, p, sd), [&] {
        apps::FftPlan plan(n);
        auto* out = static_cast<apps::Complex*>(
            df_malloc(sizeof(apps::Complex) * n));
        plan.execute_threaded(in->data(), out, 256);
        df_free(out);
      });
    };
    spec.coarse = [in, n](int p) {
      return run(sim_opts(SchedKind::Fifo, p, 8 << 10), [&] {
        apps::FftPlan plan(n);
        auto* out = static_cast<apps::Complex*>(
            df_malloc(sizeof(apps::Complex) * n));
        plan.execute_threaded(in->data(), out, p);
        df_free(out);
      });
    };
    apps.push_back(std::move(spec));
  }

  // -- Sparse matrix-vector product ----------------------------------------------
  {
    // The paper-size matrix is cheap to generate and multiply, so the
    // default keeps it; only the iteration count is scaled down.
    auto cfg = std::make_shared<apps::SpmvConfig>();
    if (!full) cfg->iterations = 10;
    cfg->seed = seed;
    auto m = std::make_shared<apps::CsrMatrix>(cfg->rows, cfg->rows);
    apps::spmv_generate(*m, *cfg);
    auto v = std::make_shared<std::vector<double>>(cfg->rows, 1.0);
    auto w = std::make_shared<std::vector<double>>(cfg->rows, 0.0);
    AppSpec spec;
    spec.name = "Sparse Matrix";
    spec.problem = std::to_string(cfg->rows) + " rows, " +
                   std::to_string(m->nnz()) + " nnz";
    spec.has_coarse = true;
    spec.serial = [cfg, m, v, w] {
      return run(sim_opts(SchedKind::AsyncDf, 1), [&] {
        for (int i = 0; i < cfg->iterations; ++i) {
          apps::spmv_serial(*m, v->data(), w->data());
        }
      });
    };
    spec.fine = [cfg, m, v, w, fine_opts](SchedKind sched, int p,
                                          std::uint64_t sd) {
      return run(fine_opts(sched, p, sd),
                 [&] { apps::spmv_fine(*m, v->data(), w->data(), *cfg); });
    };
    spec.coarse = [cfg, m, v, w](int p) {
      return run(sim_opts(SchedKind::Fifo, p, 8 << 10),
                 [&] { apps::spmv_coarse(*m, v->data(), w->data(), *cfg, p); });
    };
    apps.push_back(std::move(spec));
  }

  // -- Volume rendering -----------------------------------------------------------
  {
    auto cfg = std::make_shared<apps::VolrendConfig>();
    cfg->volume_dim = full ? 256 : 128;
    cfg->image_dim = full ? 375 : 192;
    cfg->tiles_per_thread = 64;
    cfg->seed = seed;
    auto vol = std::make_shared<apps::Volume>(*cfg);
    AppSpec spec;
    spec.name = "Vol. Rend.";
    spec.problem = std::to_string(cfg->volume_dim) + "^3 vol, " +
                   std::to_string(cfg->image_dim) + "^2 img";
    spec.has_coarse = true;
    spec.serial = [cfg, vol] {
      return run(sim_opts(SchedKind::AsyncDf, 1),
                 [&] { apps::volrend_serial(*vol, *cfg); });
    };
    spec.fine = [cfg, vol, fine_opts](SchedKind sched, int p, std::uint64_t sd) {
      return run(fine_opts(sched, p, sd),
                 [&] { apps::volrend_fine(*vol, *cfg); });
    };
    spec.coarse = [cfg, vol](int p) {
      return run(sim_opts(SchedKind::Fifo, p, 8 << 10),
                 [&] { apps::volrend_coarse(*vol, *cfg, p); });
    };
    apps.push_back(std::move(spec));
  }

  return apps;
}

}  // namespace dfth::bench
