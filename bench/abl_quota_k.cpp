// Ablation (§4 item 2 / [35]): the memory quota K trades space for time —
// small K preempts threads often and forks many dummy threads (more
// scheduling overhead, tighter memory); large K approaches plain depth-first
// order (less overhead, more live memory). The paper: "The constant K can be
// used as a parameter to adjust the trade-off between space and time."
#include <cstdio>

#include "matmul_runner.h"

int main(int argc, char** argv) {
  using namespace dfth;
  bench::Common common("abl_quota_k", "Ablation: memory quota K space/time trade-off");
  auto* size = common.cli.int_opt("n", 512, "matrix dimension");
  auto* procs = common.cli.int_opt("procs", 8, "processor count");
  if (!common.parse(argc, argv)) return 0;
  const std::size_t n = *common.full ? 1024 : static_cast<std::size_t>(*size);
  const int p = static_cast<int>(*procs);

  bench::MatmulInput input(n);
  const RunStats serial = bench::matmul_serial_stats(input);

  Table table({"K", "time (s)", "speedup", "heap (MB)", "dummy threads",
               "quota preemptions", "max live"});
  for (std::size_t k : {4u << 10, 16u << 10, 32u << 10, 128u << 10, 512u << 10,
                        2u << 20, 8u << 20}) {
    RuntimeOptions o = bench::sim_opts(SchedKind::AsyncDf, p, 8 << 10,
                                       static_cast<std::uint64_t>(*common.seed));
    o.mem_quota = k;
    const RunStats stats =
        run(o, [&] { apps::matmul_threaded(input.a, input.b, input.c, input.cfg); });
    common.record("K=" + std::to_string(k), o, stats);
    table.add_row({Table::fmt_bytes(static_cast<long long>(k)),
                   Table::fmt(stats.elapsed_us / 1e6, 3),
                   Table::fmt(serial.elapsed_us / stats.elapsed_us, 2),
                   bench::mb(stats.heap_peak),
                   Table::fmt_int(static_cast<long long>(stats.dummy_threads)),
                   Table::fmt_int(static_cast<long long>(stats.quota_preemptions)),
                   Table::fmt_int(stats.max_live_threads)});
  }
  common.emit(table, "Quota sweep: matmul " + std::to_string(n) + "², p=" +
                         std::to_string(p) + ", AsyncDF");
  common.write_json();
  return 0;
}
