// Ablation (§2.1): Cilk-style work stealing vs AsyncDF. Work stealing
// guarantees space <= p * S1 (each processor may hold a full serial-depth
// working set); AsyncDF guarantees S1 + O(p*K*D). The paper cites prior
// work [35] showing AsyncDF needs less memory on allocation-heavy
// benchmarks while staying competitive in time. We reproduce that on
// matmul (allocation-heavy) and on a deep serial-ish fork chain where the
// two bounds diverge most.
#include <cstdio>

#include "matmul_runner.h"

namespace {

// Full binary fork tree where every node allocates a buffer that stays live
// across its children's execution. A serial depth-first execution holds one
// root-to-leaf path of buffers (S1 = depth * bytes); under work stealing
// each processor descends its own subtree holding its own path, so live
// space approaches p * S1 — the divergence between the two bounds.
void alloc_tree(int depth, std::size_t bytes) {
  dfth::annotate_work(2000);
  if (depth == 0) return;
  void* buf = dfth::df_malloc(bytes);
  auto left = dfth::spawn([depth, bytes]() -> void* {
    alloc_tree(depth - 1, bytes);
    return nullptr;
  });
  auto right = dfth::spawn([depth, bytes]() -> void* {
    alloc_tree(depth - 1, bytes);
    return nullptr;
  });
  dfth::join(left);
  dfth::join(right);
  dfth::df_free(buf);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dfth;
  bench::Common common("abl_ws_vs_adf",
                       "Ablation: work stealing (p*S1) vs AsyncDF (S1+O(pKD))");
  auto* size = common.cli.int_opt("n", 512, "matmul dimension");
  if (!common.parse(argc, argv)) return 0;
  const std::size_t n = *common.full ? 1024 : static_cast<std::size_t>(*size);
  const auto seed = static_cast<std::uint64_t>(*common.seed);

  // Part 1: matmul.
  bench::MatmulInput input(n);
  const RunStats serial = bench::matmul_serial_stats(input);
  Table mm({"procs", "WS speedup", "ADF speedup", "WS heap (MB)", "ADF heap (MB)",
            "WS steals"});
  for (int p = 1; p <= static_cast<int>(*common.procs_max); p *= 2) {
    const RunStats ws = bench::matmul_run(input, SchedKind::WorkSteal, p, 8 << 10, seed);
    const RunStats adf = bench::matmul_run(input, SchedKind::AsyncDf, p, 8 << 10, seed);
    common.record("matmul p" + std::to_string(p) + " worksteal", ws);
    common.record("matmul p" + std::to_string(p) + " asyncdf", adf);
    mm.add_row({Table::fmt_int(p), Table::fmt(serial.elapsed_us / ws.elapsed_us, 2),
                Table::fmt(serial.elapsed_us / adf.elapsed_us, 2),
                bench::mb(ws.heap_peak), bench::mb(adf.heap_peak),
                Table::fmt_int(static_cast<long long>(ws.steals))});
  }
  common.emit(mm, "WS vs AsyncDF: matmul " + std::to_string(n) + "²");

  // Part 2: allocating binary fork tree (the divergence case).
  const int depth = 12;
  const std::size_t bytes = 128 << 10;
  Table chain({"procs", "WS heap (MB)", "ADF heap (MB)", "WS live", "ADF live"});
  for (int p = 1; p <= static_cast<int>(*common.procs_max); p *= 2) {
    auto one = [&](SchedKind sched) {
      return run(bench::sim_opts(sched, p, 8 << 10, seed),
                 [&] { alloc_tree(depth, bytes); });
    };
    const RunStats ws = one(SchedKind::WorkSteal);
    const RunStats adf = one(SchedKind::AsyncDf);
    common.record("tree p" + std::to_string(p) + " worksteal", ws);
    common.record("tree p" + std::to_string(p) + " asyncdf", adf);
    chain.add_row({Table::fmt_int(p), bench::mb(ws.heap_peak),
                   bench::mb(adf.heap_peak), Table::fmt_int(ws.max_live_threads),
                   Table::fmt_int(adf.max_live_threads)});
  }
  common.emit(chain, "WS vs AsyncDF: allocating binary fork tree (depth 12, "
                     "128 KB per node)");
  std::puts("(expected shape: WS memory grows ~linearly with p; ADF stays near S1)");
  common.write_json();
  return 0;
}
