// Acceptance driver for the observability layer: run matmul with a Tracer
// installed and export everything the layer produces — Chrome trace JSON
// (one lane per worker, loadable in Perfetto / chrome://tracing), the
// time-series CSV (the Figure 1 / Figure 9 curves), and the RunStats-
// superset JSON blob.
//
// Runs FIFO and AsyncDF under the simulator so the two CSVs reproduce the
// paper's headline contrast (FIFO's live-thread peak far above AsyncDF's),
// then one RealEngine run to exercise the steady-clock path. With tracing
// compiled out (-DDFTH_TRACE=OFF) it still runs, producing empty traces,
// and says so.
#include <algorithm>
#include <cstdio>

#include "matmul_runner.h"
#include "obs/export.h"
#include "obs/trace.h"
#include "resil/faults.h"

int main(int argc, char** argv) {
  using namespace dfth;
  bench::Common common("trace_matmul",
                       "observability demo: matmul -> trace.json/csv/stats");
  auto* size = common.cli.int_opt("n", 256, "matrix dimension (power of two)");
  auto* procs = common.cli.int_opt("procs", 4, "processor count");
  auto* out = common.cli.str_opt("out", "trace", "output file prefix");
  auto* real_flag = common.cli.flag("real", true, "also run the RealEngine leg");
  if (!common.parse(argc, argv)) return 0;
  const std::size_t n = *common.full ? 1024 : static_cast<std::size_t>(*size);
  const int p = static_cast<int>(*procs);
  const auto seed = static_cast<std::uint64_t>(*common.seed);

  if (!obs::kTraceEnabled) {
    std::puts("note: built with -DDFTH_TRACE=OFF; traces will be empty");
  }

  bench::MatmulInput input(n);

  auto traced = [&](const char* tag, RuntimeOptions o) {
    obs::Tracer tracer;
    o.tracer = &tracer;
    const RunStats stats = run(
        o, [&] { apps::matmul_threaded(input.a, input.b, input.c, input.cfg); });
    common.record(tag, o, stats);

    const std::string base = *out + "_" + tag;
    obs::write_chrome_trace(tracer, stats, base + ".json");
    obs::write_timeseries_csv(tracer, base + ".csv");
    obs::write_stats_json(stats, &tracer, base + "_stats.json");

    std::int64_t peak_live = 0;
    for (const obs::Sample& s : tracer.samples()) {
      peak_live = std::max(peak_live, s.live_threads);
    }
    std::printf(
        "%-12s %8.3f s  %5d lanes  %8zu events (%llu dropped)  "
        "peak live %lld\n",
        tag, stats.elapsed_us / 1e6, tracer.lanes(), tracer.event_count(),
        static_cast<unsigned long long>(tracer.dropped()),
        static_cast<long long>(peak_live));
    return peak_live;
  };

  const std::int64_t fifo_peak =
      traced("sim_fifo", bench::sim_opts(SchedKind::Fifo, p, 8 << 10, seed));
  const std::int64_t adf_peak =
      traced("sim_asyncdf", bench::sim_opts(SchedKind::AsyncDf, p, 8 << 10, seed));
  std::printf("live-thread peaks: FIFO %lld vs AsyncDF %lld (Figure 1 shape: "
              "FIFO >> AsyncDF)\n",
              static_cast<long long>(fifo_peak),
              static_cast<long long>(adf_peak));

  if (*real_flag) {
    RuntimeOptions o;
    o.engine = EngineKind::Real;
    o.sched = SchedKind::AsyncDf;
    o.nprocs = p;
    o.default_stack_size = 64 << 10;
    o.seed = seed;
    traced("real_asyncdf", o);
  }

  common.write_json();

  if (!resil::kFaultsEnabled) {
    // Zero-overhead check for the default build: with -DDFTH_FAULTS=OFF the
    // probe macros are literal constants, so after three full runs the
    // injector must never have been consulted.
    const auto evals = resil::FaultInjector::instance().evaluations_total();
    if (evals != 0) {
      std::fprintf(stderr,
                   "fault hooks leaked into the faults-OFF build: %llu site "
                   "evaluations\n",
                   static_cast<unsigned long long>(evals));
      return 1;
    }
    std::puts("fault hooks: compiled out, 0 site evaluations (zero overhead)");
  }

  std::printf("(inspect with: dfth-trace summary %s_sim_fifo.json)\n",
              out->c_str());
  return 0;
}
