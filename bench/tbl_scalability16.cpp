// §5.2 scalability: the paper re-ran the benchmarks on up to 16 processors
// of an Enterprise 6000 and reports "results similar to Figure 8". We sweep
// p in {8, 12, 16} under the new scheduler — also exposing the serialized
// scheduler's limits the paper admits in §6 ("we do not expect such a
// serialized scheduler to scale well beyond 16 processors").
#include <cstdio>

#include "apps_runner.h"

int main(int argc, char** argv) {
  using namespace dfth;
  bench::Common common("tbl_scalability16", "§5.2: scalability to 16 processors");
  if (!common.parse(argc, argv)) return 0;
  const auto seed = static_cast<std::uint64_t>(*common.seed);

  Table table({"Benchmark", "p=8 speedup", "p=12 speedup", "p=16 speedup",
               "p=16 live threads"});
  for (auto& app : bench::make_apps(*common.full, seed)) {
    std::fprintf(stderr, "[scal16] %s...\n", app.name.c_str());
    const double t_serial = app.serial().elapsed_us;
    std::vector<std::string> row{app.name};
    RunStats last{};
    for (int p : {8, 12, 16}) {
      last = app.fine(SchedKind::AsyncDf, p, seed);
      row.push_back(Table::fmt(t_serial / last.elapsed_us, 2));
      common.record(app.name + " p" + std::to_string(p), last);
    }
    row.push_back(Table::fmt_int(last.max_live_threads));
    table.add_row(row);
  }
  common.emit(table, "Scalability of the space-efficient scheduler to 16 procs");
  std::puts("(paper §5.2: 16-processor results similar to Figure 8)");
  common.write_json();
  return 0;
}
