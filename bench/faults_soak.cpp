// Resilience soak: the seven paper benchmarks, small configurations, with
// the fault injector armed on a randomized — but fully reproducible —
// schedule. The acceptance bar is binary: every app completes, nothing
// crashes, no DFTH_CHECK fires. CI runs this in the -DDFTH_FAULTS=ON leg
// with a fixed seed; run it locally with --fault-seed 0 to soak a fresh
// schedule (the chosen seed is printed so any failure can be replayed).
//
// The injector is armed manually around the whole sweep rather than via
// RuntimeOptions::fault_plan: the apps_runner lambdas own their
// RuntimeOptions, and one arming also makes the per-site failure counters
// accumulate across all seven apps for the summary printed at the end.
#include <cstdio>
#include <random>

#include "apps_runner.h"
#include "resil/faults.h"
#include "util/rng.h"

int main(int argc, char** argv) {
  using namespace dfth;
  bench::Common common("faults_soak",
                       "resilience soak: seven apps under injected faults");
  auto* fault_seed =
      common.cli.int_opt("fault-seed", 0, "fault-plan seed (0 = randomize and print)");
  auto* procs = common.cli.int_opt("procs", 4, "processor count");
  if (!common.parse(argc, argv)) return 0;

  if (!resil::kFaultsEnabled) {
    std::puts("faults_soak: built with -DDFTH_FAULTS=OFF; nothing to soak");
    return 0;
  }

  std::uint64_t seed = static_cast<std::uint64_t>(*fault_seed);
  if (seed == 0) {
    std::random_device rd;
    seed = (static_cast<std::uint64_t>(rd()) << 32) | rd();
    if (seed == 0) seed = 1;
  }
  std::printf("fault-plan seed: %llu  (replay with --fault-seed %llu)\n",
              static_cast<unsigned long long>(seed),
              static_cast<unsigned long long>(seed));

  // Derive a mixed trigger per site from the seed: a deterministic every-Nth
  // beat (N in 2..8) plus a 2-10% Bernoulli draw, capped so a pathological
  // schedule cannot starve the bounded retry loops forever.
  resil::FaultPlan plan;
  plan.seed = seed;
  Rng rng(seed);
  for (int i = 0; i < resil::kNumFaultSites; ++i) {
    resil::SiteSpec& s = plan.sites[i];
    s.every_nth = static_cast<std::uint64_t>(rng.next_range(2, 8));
    s.probability = rng.next_double(0.02, 0.10);
    s.skip_first = static_cast<std::uint64_t>(rng.next_range(0, 4));
    s.max_failures = 100000;
  }
  // sync.timeout stays off: the apps use untimed waits only, and forcing
  // try_lock_for failures would test code the apps do not contain.
  plan.site(resil::FaultSite::kSyncTimeout) = resil::SiteSpec{};

  const int p = static_cast<int>(*procs);
  const auto app_seed = static_cast<std::uint64_t>(*common.seed);

  // Build every input *before* arming: the generators df_malloc outside
  // run(), where there is no engine to absorb an injected failure.
  struct Pass {
    const char* tag;
    std::vector<bench::AppSpec> apps;
  };
  Pass passes[] = {
      {"sim", bench::make_apps(/*full=*/false, app_seed, EngineKind::Sim)},
      {"real", bench::make_apps(/*full=*/false, app_seed, EngineKind::Real)},
  };

  auto& inj = resil::FaultInjector::instance();
  inj.arm(plan);

  int failures = 0;
  for (Pass& pass : passes) {
    for (bench::AppSpec& app : pass.apps) {
      const std::uint64_t injected_before = inj.injected_total();
      const RunStats stats = app.fine(SchedKind::AsyncDf, p, app_seed);
      const std::uint64_t injected_here = inj.injected_total() - injected_before;
      common.record(app.name + " (" + pass.tag + ")", stats);
      std::printf(
          "%-4s %-14s %9.3f s  injected=%-6llu oom-preempts=%-5llu "
          "inline-runs=%-5llu%s\n",
          pass.tag, app.name.c_str(), stats.elapsed_us / 1e6,
          static_cast<unsigned long long>(injected_here),
          static_cast<unsigned long long>(stats.oom_preemptions),
          static_cast<unsigned long long>(stats.inline_runs),
          injected_here == 0 ? "  (no faults hit this app)" : "");
      std::fflush(stdout);
      // Reaching this line at all means the run completed; a recovery bug
      // would have aborted or hung. Threads may never be lost, though:
      if (stats.threads_created == 0) {
        std::fprintf(stderr, "faults_soak: %s (%s) reported zero threads\n",
                     app.name.c_str(), pass.tag);
        ++failures;
      }
    }
  }

  std::string summary;
  inj.append_summary(&summary);
  inj.disarm();
  std::printf("-- injector totals across all apps --\n%s", summary.c_str());
  common.write_json();
  if (failures != 0) {
    std::fprintf(stderr, "faults_soak: %d app(s) failed (seed %llu)\n",
                 failures, static_cast<unsigned long long>(seed));
    return 1;
  }
  std::printf("faults_soak: all apps completed under seed %llu\n",
              static_cast<unsigned long long>(seed));
  return 0;
}
