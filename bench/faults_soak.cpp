// Resilience soak: the seven paper benchmarks, small configurations, with
// the fault injector armed on a randomized — but fully reproducible —
// schedule. The acceptance bar is binary: every app completes, nothing
// crashes, no DFTH_CHECK fires. CI runs this in the -DDFTH_FAULTS=ON leg
// with a fixed seed; run it locally with --fault-seed 0 to soak a fresh
// schedule (the chosen seed is printed so any failure can be replayed).
//
// The injector is armed manually around the whole sweep rather than via
// RuntimeOptions::fault_plan: the apps_runner lambdas own their
// RuntimeOptions, and one arming also makes the per-site failure counters
// accumulate across all seven apps for the summary printed at the end.
//
// --record-dir / --replay-dir turn the soak into the record/replay
// acceptance harness: every fine-grained run writes (or replays) a per-app
// schedule log named <dir>/<pass>-<slug>.dfthlog, and a "DFTH-SIG" line per
// app carries the schedule-dependent RunStats signature so CI can diff the
// record leg against the replay leg textually. In these modes the fault
// plan travels through RuntimeOptions::fault_plan instead of manual arming
// — recording embeds the plan in the log header, and replay re-arms from
// that embedded copy, so the injector draws land on the pinned schedule.
#include <cstdio>
#include <filesystem>
#include <random>

#include "apps_runner.h"
#include "replay/log.h"
#include "replay/signature.h"
#include "resil/faults.h"
#include "util/rng.h"

int main(int argc, char** argv) {
  using namespace dfth;
  bench::Common common("faults_soak",
                       "resilience soak: seven apps under injected faults");
  auto* fault_seed =
      common.cli.int_opt("fault-seed", 0, "fault-plan seed (0 = randomize and print)");
  auto* procs = common.cli.int_opt("procs", 4, "processor count");
  auto* record_dir = common.cli.str_opt(
      "record-dir", "", "record every run's schedule log into this directory");
  auto* replay_dir = common.cli.str_opt(
      "replay-dir", "", "replay every run from this directory's schedule logs");
  if (!common.parse(argc, argv)) return 0;

  const bool recording = !record_dir->empty();
  const bool replaying = !replay_dir->empty();
  if ((recording || replaying) && !replay::kReplayEnabled) {
    std::fprintf(stderr,
                 "faults_soak: --record-dir/--replay-dir need -DDFTH_REPLAY=ON\n");
    return 1;
  }
  if (recording && replaying) {
    std::fprintf(stderr,
                 "faults_soak: --record-dir and --replay-dir are exclusive\n");
    return 1;
  }
  if (recording) std::filesystem::create_directories(*record_dir);

  if (!resil::kFaultsEnabled) {
    std::puts("faults_soak: built with -DDFTH_FAULTS=OFF; nothing to soak");
    return 0;
  }

  std::uint64_t seed = static_cast<std::uint64_t>(*fault_seed);
  if (seed == 0) {
    std::random_device rd;
    seed = (static_cast<std::uint64_t>(rd()) << 32) | rd();
    if (seed == 0) seed = 1;
  }
  std::printf("fault-plan seed: %llu  (replay with --fault-seed %llu)\n",
              static_cast<unsigned long long>(seed),
              static_cast<unsigned long long>(seed));

  // Derive a mixed trigger per site from the seed: a deterministic every-Nth
  // beat (N in 2..8) plus a 2-10% Bernoulli draw, capped so a pathological
  // schedule cannot starve the bounded retry loops forever.
  resil::FaultPlan plan;
  plan.seed = seed;
  Rng rng(seed);
  for (int i = 0; i < resil::kNumFaultSites; ++i) {
    resil::SiteSpec& s = plan.sites[i];
    s.every_nth = static_cast<std::uint64_t>(rng.next_range(2, 8));
    s.probability = rng.next_double(0.02, 0.10);
    s.skip_first = static_cast<std::uint64_t>(rng.next_range(0, 4));
    s.max_failures = 100000;
  }
  // sync.timeout stays off: the apps use untimed waits only, and forcing
  // try_lock_for failures would test code the apps do not contain.
  plan.site(resil::FaultSite::kSyncTimeout) = resil::SiteSpec{};

  const int p = static_cast<int>(*procs);
  const auto app_seed = static_cast<std::uint64_t>(*common.seed);

  // Per-run record/replay target: the loop below points these at the next
  // app's log before calling fine(), and the tweak lambda (which apps_runner
  // invokes synchronously while building the run's options) reads them.
  std::string rr_path;
  std::string rr_tag;
  std::function<void(RuntimeOptions&)> tweak;
  if (recording) {
    tweak = [&rr_path, &rr_tag, &plan](RuntimeOptions& o) {
      o.record_path = rr_path;
      o.record_tag = rr_tag;
      o.fault_plan = &plan;  // embedded into the log header
    };
  } else if (replaying) {
    // No fault_plan here: replay arms from the plan embedded in the log, so
    // the draws belong to the recorded schedule even if the seeds differ.
    tweak = [&rr_path](RuntimeOptions& o) { o.replay_path = rr_path; };
  }

  // Build every input *before* arming: the generators df_malloc outside
  // run(), where there is no engine to absorb an injected failure.
  struct Pass {
    const char* tag;
    std::vector<bench::AppSpec> apps;
  };
  Pass passes[] = {
      {"sim",
       bench::make_apps(/*full=*/false, app_seed, EngineKind::Sim, nullptr, tweak)},
      {"real",
       bench::make_apps(/*full=*/false, app_seed, EngineKind::Real, nullptr, tweak)},
  };

  auto& inj = resil::FaultInjector::instance();
  if (!recording && !replaying) inj.arm(plan);

  int failures = 0;
  for (Pass& pass : passes) {
    for (bench::AppSpec& app : pass.apps) {
      const std::string slug = bench::app_slug(app.name);
      if (recording) {
        rr_path = *record_dir + "/" + pass.tag + "-" + slug + ".dfthlog";
        rr_tag = slug;
      } else if (replaying) {
        rr_path = *replay_dir + "/" + pass.tag + "-" + slug + ".dfthlog";
      }
      const std::uint64_t injected_before = inj.injected_total();
      const RunStats stats = app.fine(SchedKind::AsyncDf, p, app_seed);
      // Per-run arming (rec/rep modes) resets the injector's counters each
      // run, so the cumulative delta only works in the manually-armed mode.
      const std::uint64_t injected_here =
          (recording || replaying) ? stats.faults_injected
                                   : inj.injected_total() - injected_before;
      common.record(app.name + " (" + pass.tag + ")", stats);
      std::printf(
          "%-4s %-14s %9.3f s  injected=%-6llu oom-preempts=%-5llu "
          "inline-runs=%-5llu%s\n",
          pass.tag, app.name.c_str(), stats.elapsed_us / 1e6,
          static_cast<unsigned long long>(injected_here),
          static_cast<unsigned long long>(stats.oom_preemptions),
          static_cast<unsigned long long>(stats.inline_runs),
          injected_here == 0 ? "  (no faults hit this app)" : "");
      if (recording || replaying) {
        // CI diffs these lines between the record and replay legs; only the
        // real pass is a strict byte-for-byte determinism promise (the sim
        // pass cross-replays, where the engine re-derives its own stats).
        std::printf("DFTH-SIG %s/%s %s\n", pass.tag, slug.c_str(),
                    replay::determinism_signature(stats).c_str());
      }
      std::fflush(stdout);
      // Reaching this line at all means the run completed; a recovery bug
      // would have aborted or hung. Threads may never be lost, though:
      if (stats.threads_created == 0) {
        std::fprintf(stderr, "faults_soak: %s (%s) reported zero threads\n",
                     app.name.c_str(), pass.tag);
        ++failures;
      }
    }
  }

  if (recording || replaying) {
    std::printf(
        "-- injector armed per run via the schedule logs; cumulative "
        "totals not tracked in this mode --\n");
  } else {
    std::string summary;
    inj.append_summary(&summary);
    inj.disarm();
    std::printf("-- injector totals across all apps --\n%s", summary.c_str());
  }
  common.write_json();
  if (failures != 0) {
    std::fprintf(stderr, "faults_soak: %d app(s) failed (seed %llu)\n",
                 failures, static_cast<unsigned long long>(seed));
    return 1;
  }
  std::printf("faults_soak: all apps completed under seed %llu\n",
              static_cast<unsigned long long>(seed));
  return 0;
}
