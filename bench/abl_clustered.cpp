// Ablation (§6): the serialized global scheduler vs the clustered design.
//
// "Our space-efficient scheduler maintains a globally ordered list of
// threads; accesses to this list are serialized by a lock. Therefore, we do
// not expect such a serialized scheduler to scale well beyond 16
// processors. A parallelized implementation of the scheduler would be
// required to ensure further scalability."
//
// We sweep processor counts past 16 on a fork-heavy workload (fine-grained
// matmul, whose scheduler-operation rate is high) and compare the global
// single-lock AsyncDF against the clustered variant (one AsyncDF queue +
// lock per 4-processor "SMP", migration only when a cluster runs dry).
#include <cstdio>

#include "matmul_runner.h"

int main(int argc, char** argv) {
  using namespace dfth;
  bench::Common common("abl_clustered",
                       "Ablation: global-lock AsyncDF vs clustered AsyncDF");
  auto* size = common.cli.int_opt("n", 512, "matmul dimension");
  auto* cluster = common.cli.int_opt("cluster-size", 4, "processors per SMP");
  if (!common.parse(argc, argv)) return 0;
  const std::size_t n = *common.full ? 1024 : static_cast<std::size_t>(*size);
  const auto seed = static_cast<std::uint64_t>(*common.seed);

  bench::MatmulInput input(n);
  const RunStats serial = bench::matmul_serial_stats(input);

  Table table({"procs", "global speedup", "clustered speedup", "global sched ms",
               "clustered sched ms", "clustered heap (MB)"});
  for (int p : {4, 8, 16, 24, 32}) {
    RuntimeOptions global = bench::sim_opts(SchedKind::AsyncDf, p, 8 << 10, seed);
    RuntimeOptions clustered =
        bench::sim_opts(SchedKind::ClusteredAdf, p, 8 << 10, seed);
    clustered.cluster_size = static_cast<int>(*cluster);
    auto one = [&](RuntimeOptions& o) {
      return run(o, [&] {
        apps::matmul_threaded(input.a, input.b, input.c, input.cfg);
      });
    };
    const RunStats g = one(global);
    const RunStats c = one(clustered);
    common.record("matmul p" + std::to_string(p) + " global", global, g);
    common.record("matmul p" + std::to_string(p) + " clustered", clustered, c);
    table.add_row({Table::fmt_int(p),
                   Table::fmt(serial.elapsed_us / g.elapsed_us, 2),
                   Table::fmt(serial.elapsed_us / c.elapsed_us, 2),
                   Table::fmt(g.breakdown.sched_us / 1e3, 1),
                   Table::fmt(c.breakdown.sched_us / 1e3, 1),
                   bench::mb(c.heap_peak)});
  }
  common.emit(table, "Global-lock vs clustered AsyncDF, matmul " +
                         std::to_string(n) + "², clusters of " +
                         std::to_string(*cluster));

  // Part 2: fork churn — thousands of threads only ~10x the cost of their
  // own scheduling. Every fork/exit is several queue operations under the
  // lock, so past ~16 processors the single serialized lock becomes the
  // bottleneck §6 predicts; the per-SMP locks keep scaling.
  Table churn({"procs", "global speedup", "clustered speedup",
               "global sched ms", "clustered sched ms"});
  auto churn_work = [] {
    struct Rec {
      static void go(int depth) {
        annotate_work(200);  // 2 µs of work per ~4 µs of scheduler ops
        if (depth == 0) return;
        auto left = spawn([depth]() -> void* {
          go(depth - 1);
          return nullptr;
        });
        auto right = spawn([depth]() -> void* {
          go(depth - 1);
          return nullptr;
        });
        join(left);
        join(right);
      }
    };
    Rec::go(13);  // 2^13 - 1 threads
  };
  const double churn_serial =
      run(bench::sim_opts(SchedKind::AsyncDf, 1, 8 << 10, seed), churn_work)
          .elapsed_us;
  for (int p : {8, 16, 24, 32}) {
    RuntimeOptions global = bench::sim_opts(SchedKind::AsyncDf, p, 8 << 10, seed);
    RuntimeOptions clustered =
        bench::sim_opts(SchedKind::ClusteredAdf, p, 8 << 10, seed);
    clustered.cluster_size = static_cast<int>(*cluster);
    const RunStats g = run(global, churn_work);
    const RunStats c = run(clustered, churn_work);
    common.record("churn p" + std::to_string(p) + " global", global, g);
    common.record("churn p" + std::to_string(p) + " clustered", clustered, c);
    churn.add_row({Table::fmt_int(p),
                   Table::fmt(churn_serial / g.elapsed_us, 2),
                   Table::fmt(churn_serial / c.elapsed_us, 2),
                   Table::fmt(g.breakdown.sched_us / 1e3, 1),
                   Table::fmt(c.breakdown.sched_us / 1e3, 1)});
  }
  common.emit(churn, "Fork churn (8191 fine threads): the §6 lock bottleneck");
  std::puts(
      "(expected: comparable on coarse work at any p; under fork churn the "
      "global lock's wait time explodes past ~16 procs while the clustered "
      "scheduler keeps scaling)");
  common.write_json();
  return 0;
}
