// Figure 10: FFT running time for p = 1..8 processors in three versions —
// (1) p threads (FFTW's recommended one-per-processor), (2) 256 threads on
// the original FIFO scheduler, (3) 256 threads on the new scheduler. The
// paper's point: with many lightweight threads, performance becomes
// insensitive to whether p divides the problem; for non-power-of-two p the
// 256-thread versions win because the scheduler load-balances them.
#include <cstdio>

#include "apps/fft/fft.h"
#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace dfth;
  bench::Common common("fig10_fft_threads",
                       "Figure 10: FFT, p threads vs 256 threads");
  auto* lg = common.cli.int_opt("log2n", 20, "transform size exponent");
  if (!common.parse(argc, argv)) return 0;
  const std::size_t n = std::size_t{1} << (*common.full ? 22 : *lg);
  const auto seed = static_cast<std::uint64_t>(*common.seed);

  auto* in = static_cast<apps::Complex*>(df_malloc(sizeof(apps::Complex) * n));
  apps::fft_fill(in, n, seed);

  auto timed = [&](SchedKind sched, int p, int nthreads) {
    const RunStats stats =
        run(bench::sim_opts(sched, p, 8 << 10, seed), [&] {
          apps::FftPlan plan(n);
          auto* out =
              static_cast<apps::Complex*>(df_malloc(sizeof(apps::Complex) * n));
          plan.execute_threaded(in, out, nthreads);
          df_free(out);
        });
    common.record(std::to_string(nthreads) + "thr p" + std::to_string(p), stats);
    return stats.elapsed_us;
  };
  const double serial_us = run(bench::sim_opts(SchedKind::AsyncDf, 1), [&] {
                             apps::FftPlan plan(n);
                             auto* out = static_cast<apps::Complex*>(
                                 df_malloc(sizeof(apps::Complex) * n));
                             plan.execute_serial(in, out);
                             df_free(out);
                           }).elapsed_us;
  std::printf("serial: %.3f s\n", serial_us / 1e6);

  Table table({"procs", "p threads (s)", "256 thr orig (s)", "256 thr new (s)"});
  for (int p = 1; p <= static_cast<int>(*common.procs_max); ++p) {
    table.add_row({Table::fmt_int(p),
                   Table::fmt(timed(SchedKind::Fifo, p, p) / 1e6, 3),
                   Table::fmt(timed(SchedKind::Fifo, p, 256) / 1e6, 3),
                   Table::fmt(timed(SchedKind::AsyncDf, p, 256) / 1e6, 3)});
  }
  common.emit(table, "Figure 10: 1-D DFT running times (N=" + std::to_string(n) + ")");
  std::puts(
      "(paper: for p in {2,4,8} the p-thread version is marginally faster; "
      "for every other p the 256-thread versions are better load balanced "
      "and win; schedulers comparable)");
  common.write_json();
  df_free(in);
  return 0;
}
