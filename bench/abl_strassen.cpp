// Ablation (§3): the paper notes Strassen's asymptotically faster multiply
// "can also be implemented in a similar divide-and-conquer fashion with a
// few extra lines of code" — dynamic lightweight threads make the irregular
// 7-way recursion as easy as the classical 8-way one, where a static
// partitioning would be "significantly more difficult". We run both under
// the space-efficient scheduler and show (a) Strassen's time advantage and
// (b) that its heavier temporary-buffer traffic makes the scheduler's space
// discipline matter even more than for the classical algorithm.
#include <cstdio>

#include "matmul_runner.h"

int main(int argc, char** argv) {
  using namespace dfth;
  bench::Common common("abl_strassen",
                       "Ablation: classical d&c matmul vs Strassen (threaded)");
  auto* size = common.cli.int_opt("n", 512, "matrix dimension (power of two)");
  if (!common.parse(argc, argv)) return 0;
  const std::size_t n = *common.full ? 1024 : static_cast<std::size_t>(*size);
  const auto seed = static_cast<std::uint64_t>(*common.seed);

  bench::MatmulInput input(n);
  input.cfg.base = 32;  // more recursion levels: Strassen's advantage grows
  const RunStats serial = bench::matmul_serial_stats(input);
  std::printf("classical serial: %.2f s\n", serial.elapsed_us / 1e6);

  Table table({"procs", "classical (s)", "Strassen (s)", "Strassen/classical",
               "classical heap (MB)", "Strassen heap (MB)"});
  for (int p = 1; p <= static_cast<int>(*common.procs_max); p *= 2) {
    RuntimeOptions o = bench::sim_opts(SchedKind::AsyncDf, p, 8 << 10, seed);
    const RunStats classical = run(o, [&] {
      apps::matmul_threaded(input.a, input.b, input.c, input.cfg);
    });
    const RunStats strassen = run(o, [&] {
      apps::matmul_strassen_threaded(input.a, input.b, input.c, input.cfg);
    });
    common.record("classical p" + std::to_string(p), o, classical);
    common.record("strassen p" + std::to_string(p), o, strassen);
    table.add_row({Table::fmt_int(p), Table::fmt(classical.elapsed_us / 1e6, 3),
                   Table::fmt(strassen.elapsed_us / 1e6, 3),
                   Table::fmt(strassen.elapsed_us / classical.elapsed_us, 2),
                   bench::mb(classical.heap_peak), bench::mb(strassen.heap_peak)});
  }
  common.emit(table, "Classical vs Strassen, AsyncDF, base=32, n=" +
                         std::to_string(n));

  // The scheduler dependence: Strassen's per-node buffer burst under FIFO.
  Table sched({"scheduler", "Strassen time (s)", "heap (MB)", "max live threads"});
  for (SchedKind kind : {SchedKind::Fifo, SchedKind::Lifo, SchedKind::AsyncDf,
                         SchedKind::DfDeques}) {
    RuntimeOptions o = bench::sim_opts(kind, 8, 8 << 10, seed);
    const RunStats stats = run(o, [&] {
      apps::matmul_strassen_threaded(input.a, input.b, input.c, input.cfg);
    });
    common.record(std::string("strassen sched ") + to_string(kind), o, stats);
    sched.add_row({to_string(kind), Table::fmt(stats.elapsed_us / 1e6, 3),
                   bench::mb(stats.heap_peak),
                   Table::fmt_int(stats.max_live_threads)});
  }
  common.emit(sched, "Strassen across schedulers, p=8");
  std::puts(
      "(expected: Strassen beats classical in time; its temporaries explode "
      "under FIFO and stay near one root-to-leaf path under AsyncDF)");
  common.write_json();
  return 0;
}
