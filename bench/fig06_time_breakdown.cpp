// Figure 6: breakdown of matmul execution time under the stock FIFO
// scheduler. The paper's profile showed processors spending a large share
// of their time in the kernel on memory-related system calls. Our simulator
// accounts every virtual microsecond to {work, thread ops, memory ops,
// synchronization, scheduler, idle}; memory ops correspond to the paper's
// "system calls related to memory allocation" plus stack allocation, and
// the pressure-inflated work models the TLB/page-miss tax.
#include <cstdio>

#include "matmul_runner.h"

int main(int argc, char** argv) {
  using namespace dfth;
  bench::Common common("fig06_time_breakdown",
                       "Figure 6: matmul execution-time breakdown (FIFO)");
  auto* size = common.cli.int_opt("n", 512, "matrix dimension (power of two)");
  auto* sched_name = common.cli.str_opt("sched", "fifo", "scheduler to profile");
  if (!common.parse(argc, argv)) return 0;
  const std::size_t n = *common.full ? 1024 : static_cast<std::size_t>(*size);
  const SchedKind sched = sched_kind_from_string(*sched_name);

  bench::MatmulInput input(n);
  const RunStats serial = bench::matmul_serial_stats(input);
  const double pure_work_us = serial.breakdown.work_us;

  // Build the columns from the Breakdown category list itself so a category
  // added to the runtime can never silently desync this table from
  // Breakdown::total_us(). "work" is split into the serial machine work and
  // the memory-pressure excess (the paper's TLB/page-miss overhead).
  std::vector<std::string> headers = {"procs"};
  for (int c = 0; c < Breakdown::kNumCategories; ++c) {
    const std::string name = Breakdown::category_name(c);
    if (name == "work") {
      headers.push_back("work %");
      headers.push_back("work(excess) %");
    } else {
      headers.push_back(name + " %");
    }
  }
  headers.push_back("total (s)");
  Table table(headers);
  for (int p : {1, 2, 4, 8}) {
    if (p > *common.procs_max) break;
    const RunStats stats = bench::matmul_run(
        input, sched, p, 1 << 20, static_cast<std::uint64_t>(*common.seed));
    const Breakdown& bd = stats.breakdown;
    const double total = bd.total_us();
    auto pct = [total](double us) { return Table::fmt(100.0 * us / total, 1); };
    std::vector<std::string> cells = {Table::fmt_int(p)};
    for (int c = 0; c < Breakdown::kNumCategories; ++c) {
      if (std::string(Breakdown::category_name(c)) == "work") {
        cells.push_back(pct(pure_work_us));
        cells.push_back(pct(bd.category(c) - pure_work_us));
      } else {
        cells.push_back(pct(bd.category(c)));
      }
    }
    cells.push_back(Table::fmt(stats.elapsed_us / 1e6, 2));
    table.add_row(cells);
    common.record("p" + std::to_string(p), stats, 1 << 20);
  }
  common.emit(table, "Figure 6: breakdown of processor time, matmul " +
                         std::to_string(n) + "² under " + to_string(sched));
  common.write_json();
  std::puts(
      "(paper: under FIFO the processors spend a large fraction of time on "
      "memory-allocation system calls and page/TLB misses; compare with "
      "--sched asyncdf)");
  return 0;
}
