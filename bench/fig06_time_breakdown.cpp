// Figure 6: breakdown of matmul execution time under the stock FIFO
// scheduler. The paper's profile showed processors spending a large share
// of their time in the kernel on memory-related system calls. Our simulator
// accounts every virtual microsecond to {work, thread ops, memory ops,
// synchronization, scheduler, idle}; memory ops correspond to the paper's
// "system calls related to memory allocation" plus stack allocation, and
// the pressure-inflated work models the TLB/page-miss tax.
#include <cstdio>

#include "matmul_runner.h"

int main(int argc, char** argv) {
  using namespace dfth;
  bench::Common common("fig06_time_breakdown",
                       "Figure 6: matmul execution-time breakdown (FIFO)");
  auto* size = common.cli.int_opt("n", 512, "matrix dimension (power of two)");
  auto* sched_name = common.cli.str_opt("sched", "fifo", "scheduler to profile");
  if (!common.parse(argc, argv)) return 0;
  const std::size_t n = *common.full ? 1024 : static_cast<std::size_t>(*size);
  const SchedKind sched = sched_kind_from_string(*sched_name);

  bench::MatmulInput input(n);
  const RunStats serial = bench::matmul_serial_stats(input);
  const double pure_work_us = serial.breakdown.work_us;

  Table table({"procs", "work %", "work(excess) %", "mem ops %", "thread ops %",
               "sched %", "idle %", "total (s)"});
  for (int p : {1, 2, 4, 8}) {
    if (p > *common.procs_max) break;
    const RunStats stats = bench::matmul_run(
        input, sched, p, 1 << 20, static_cast<std::uint64_t>(*common.seed));
    const Breakdown& bd = stats.breakdown;
    const double total = bd.total_us();
    // Split "work" into the serial machine work and the memory-pressure
    // excess (the paper's TLB/page-miss overhead).
    const double excess = bd.work_us - pure_work_us;
    auto pct = [total](double us) { return Table::fmt(100.0 * us / total, 1); };
    table.add_row({Table::fmt_int(p), pct(pure_work_us), pct(excess),
                   pct(bd.mem_us), pct(bd.thread_us), pct(bd.sched_us),
                   pct(bd.idle_us), Table::fmt(stats.elapsed_us / 1e6, 2)});
  }
  common.emit(table, "Figure 6: breakdown of processor time, matmul " +
                         std::to_string(n) + "² under " + to_string(sched));
  std::puts(
      "(paper: under FIFO the processors spend a large fraction of time on "
      "memory-allocation system calls and page/TLB misses; compare with "
      "--sched asyncdf)");
  return 0;
}
