// Figure 5: matmul on the stock (FIFO) Pthreads scheduler — (a) speedup
// over the serial C version and (b) heap high-water mark, versus processor
// count. The paper: speedup "unexpectedly poor" for a compute-bound code,
// memory 115 MB on 8 procs vs 25 MB serial, >4500 simultaneously-active
// threads on one processor.
#include <cstdio>

#include "matmul_runner.h"

int main(int argc, char** argv) {
  using namespace dfth;
  bench::Common common("fig05_matmul_fifo",
                       "Figure 5: matmul under the native FIFO scheduler");
  auto* size = common.cli.int_opt("n", 512, "matrix dimension (power of two)");
  if (!common.parse(argc, argv)) return 0;
  const std::size_t n = *common.full ? 1024 : static_cast<std::size_t>(*size);

  bench::MatmulInput input(n);
  const RunStats serial = bench::matmul_serial_stats(input);
  std::printf("serial C version: %.2f s, heap high-water %s MB\n",
              serial.elapsed_us / 1e6, bench::mb(serial.heap_peak).c_str());
  common.record("serial", serial);

  Table table({"procs", "time (s)", "speedup", "heap peak (MB)", "max live threads"});
  for (int p = 1; p <= static_cast<int>(*common.procs_max); ++p) {
    const RunStats stats =
        bench::matmul_run(input, SchedKind::Fifo, p, 1 << 20,
                          static_cast<std::uint64_t>(*common.seed));
    table.add_row({Table::fmt_int(p), Table::fmt(stats.elapsed_us / 1e6, 2),
                   Table::fmt(serial.elapsed_us / stats.elapsed_us, 2),
                   bench::mb(stats.heap_peak),
                   Table::fmt_int(stats.max_live_threads)});
    common.record("p" + std::to_string(p), stats, 1 << 20);
  }
  common.emit(table, "Figure 5: matmul " + std::to_string(n) + "² , FIFO scheduler");
  std::puts(
      "(paper @1024²: serial 25 MB; FIFO reaches ~115 MB on 8 procs, >4500 "
      "live threads, speedup 3.65 at p=8)");
  common.write_json();
  return 0;
}
