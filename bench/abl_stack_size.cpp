// Ablation (§4 item 3): default thread stack size. Solaris defaulted to
// 1 MB; the paper reduces it to one page (8 KB), cutting stack-allocation
// time and resident footprint. We sweep the default size under both the
// stock FIFO scheduler (thousands of live threads — the worst case) and the
// space-efficient scheduler (tens of live threads — nearly insensitive).
#include <cstdio>

#include "matmul_runner.h"

int main(int argc, char** argv) {
  using namespace dfth;
  bench::Common common("abl_stack_size", "Ablation: default stack size sweep");
  auto* size = common.cli.int_opt("n", 512, "matrix dimension");
  auto* procs = common.cli.int_opt("procs", 8, "processor count");
  if (!common.parse(argc, argv)) return 0;
  const std::size_t n = *common.full ? 1024 : static_cast<std::size_t>(*size);
  const int p = static_cast<int>(*procs);

  bench::MatmulInput input(n);
  const RunStats serial = bench::matmul_serial_stats(input);

  Table table({"stack size", "FIFO speedup", "FIFO stack peak", "FIFO fresh",
               "AsyncDF speedup", "AsyncDF stack peak", "AsyncDF fresh"});
  for (std::size_t stack : {8u << 10, 64u << 10, 256u << 10, 1u << 20}) {
    auto one = [&](SchedKind sched) {
      return bench::matmul_run(input, sched, p, stack,
                               static_cast<std::uint64_t>(*common.seed));
    };
    const RunStats fifo = one(SchedKind::Fifo);
    const RunStats adf = one(SchedKind::AsyncDf);
    common.record("stack" + std::to_string(stack) + " fifo", fifo);
    common.record("stack" + std::to_string(stack) + " asyncdf", adf);
    table.add_row({Table::fmt_bytes(static_cast<long long>(stack)),
                   Table::fmt(serial.elapsed_us / fifo.elapsed_us, 2),
                   Table::fmt_bytes(fifo.stack_peak),
                   Table::fmt_int(static_cast<long long>(fifo.stacks_fresh)),
                   Table::fmt(serial.elapsed_us / adf.elapsed_us, 2),
                   Table::fmt_bytes(adf.stack_peak),
                   Table::fmt_int(static_cast<long long>(adf.stacks_fresh))});
  }
  common.emit(table, "Default-stack-size sweep: matmul " + std::to_string(n) +
                         "², p=" + std::to_string(p));
  std::puts(
      "(paper: 1 MB defaults hurt when many threads are simultaneously "
      "live; 8 KB removes the cost; the space-efficient scheduler is nearly "
      "insensitive because it keeps few threads live)");
  common.write_json();
  return 0;
}
