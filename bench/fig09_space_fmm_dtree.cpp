// Figure 9: heap high-water versus processors for the two benchmarks with
// interesting dynamic allocation — (a) FMM (per-chunk expansion buffers in
// the downward pass) and (b) the decision-tree builder (per-node partition
// arrays) — original FIFO scheduler vs the new space-efficient scheduler.
#include <cstdio>

#include "apps/dtree/dtree.h"
#include "apps/fmm/fmm.h"
#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace dfth;
  bench::Common common("fig09_space_fmm_dtree",
                       "Figure 9: memory vs processors, FMM and decision tree");
  if (!common.parse(argc, argv)) return 0;
  const auto seed = static_cast<std::uint64_t>(*common.seed);

  // (a) FMM. (4 levels even at default size: phase 3's interaction lists
  // only reach their full 27 entries at an 8x8 leaf grid.)
  apps::FmmConfig fmm_cfg;
  fmm_cfg.particles = *common.full ? 10000 : 6000;
  fmm_cfg.levels = 4;
  fmm_cfg.terms = 5;
  fmm_cfg.chunk = 9;
  fmm_cfg.seed = seed;
  const auto particles = apps::fmm_generate(fmm_cfg);

  Table fmm_table({"procs", "FIFO heap (KB)", "AsyncDF heap (KB)",
                   "FIFO live threads", "AsyncDF live threads"});
  for (int p = 1; p <= static_cast<int>(*common.procs_max); p *= 2) {
    auto one = [&](SchedKind sched) {
      auto copy = particles;
      return run(bench::sim_opts(sched, p, 8 << 10, seed),
                 [&] { apps::fmm_threaded(copy, fmm_cfg); });
    };
    const RunStats fifo = one(SchedKind::Fifo);
    const RunStats adf = one(SchedKind::AsyncDf);
    common.record("fmm p" + std::to_string(p) + " fifo", fifo);
    common.record("fmm p" + std::to_string(p) + " asyncdf", adf);
    fmm_table.add_row({Table::fmt_int(p),
                       Table::fmt(static_cast<double>(fifo.heap_peak) / 1024, 0),
                       Table::fmt(static_cast<double>(adf.heap_peak) / 1024, 0),
                       Table::fmt_int(fifo.max_live_threads),
                       Table::fmt_int(adf.max_live_threads)});
  }
  common.emit(fmm_table, "Figure 9(a): FMM heap high-water vs processors");

  // (b) Decision tree.
  apps::DtreeConfig dt_cfg;
  dt_cfg.instances = *common.full ? 133999 : 30000;
  dt_cfg.seed = seed;
  const auto data = apps::dtree_generate(dt_cfg);

  Table dt_table({"procs", "FIFO heap (MB)", "AsyncDF heap (MB)",
                  "FIFO live threads", "AsyncDF live threads"});
  for (int p = 1; p <= static_cast<int>(*common.procs_max); p *= 2) {
    auto one = [&](SchedKind sched) {
      return run(bench::sim_opts(sched, p, 8 << 10, seed),
                 [&] { apps::dtree_build_threaded(data, dt_cfg); });
    };
    const RunStats fifo = one(SchedKind::Fifo);
    const RunStats adf = one(SchedKind::AsyncDf);
    common.record("dtree p" + std::to_string(p) + " fifo", fifo);
    common.record("dtree p" + std::to_string(p) + " asyncdf", adf);
    dt_table.add_row({Table::fmt_int(p), bench::mb(fifo.heap_peak),
                      bench::mb(adf.heap_peak),
                      Table::fmt_int(fifo.max_live_threads),
                      Table::fmt_int(adf.max_live_threads)});
  }
  common.emit(dt_table, "Figure 9(b): decision tree heap high-water vs processors");
  std::puts(
      "(paper: the new scheduling technique results in lower space "
      "requirement for both, and the gap does not grow with processors)");
  common.write_json();
  return 0;
}
