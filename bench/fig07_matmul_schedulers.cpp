// Figure 7: the effect of each scheduler modification on matmul — speedup
// (a) and heap high-water (b) versus processors, for:
//   Original (FIFO, 1 MB default stacks)  — the stock Solaris scheduler
//   LIFO (1 MB stacks)                    — §4 item 1
//   New scheduler (AsyncDF, 1 MB stacks)  — §4 item 2
//   LIFO + small stk (8 KB)               — §4 item 3
//   New + small stk (8 KB)                — §4 items 2+3
#include <cstdio>

#include "matmul_runner.h"

int main(int argc, char** argv) {
  using namespace dfth;
  bench::Common common("fig07_matmul_schedulers",
                       "Figure 7: matmul speedup & memory across scheduler variants");
  auto* size = common.cli.int_opt("n", 512, "matrix dimension (power of two)");
  if (!common.parse(argc, argv)) return 0;
  const std::size_t n = *common.full ? 1024 : static_cast<std::size_t>(*size);

  bench::MatmulInput input(n);
  const RunStats serial = bench::matmul_serial_stats(input);
  std::printf("serial C version: %.2f s, heap %s MB\n", serial.elapsed_us / 1e6,
              bench::mb(serial.heap_peak).c_str());
  common.record("serial", serial);

  struct Variant {
    const char* name;
    SchedKind sched;
    std::size_t stack;
  };
  const Variant variants[] = {
      {"Original", SchedKind::Fifo, 1 << 20},
      {"LIFO", SchedKind::Lifo, 1 << 20},
      {"New sched", SchedKind::AsyncDf, 1 << 20},
      {"LIFO + small stk", SchedKind::Lifo, 8 << 10},
      {"New + small stk", SchedKind::AsyncDf, 8 << 10},
  };

  Table speedups({"procs", "Original", "LIFO", "New sched", "LIFO + small stk",
                  "New + small stk"});
  Table memory({"procs", "Original", "LIFO", "New sched", "LIFO + small stk",
                "New + small stk"});
  for (int p = 1; p <= static_cast<int>(*common.procs_max); ++p) {
    std::vector<std::string> srow{Table::fmt_int(p)};
    std::vector<std::string> mrow{Table::fmt_int(p)};
    for (const auto& variant : variants) {
      const RunStats stats =
          bench::matmul_run(input, variant.sched, p, variant.stack,
                            static_cast<std::uint64_t>(*common.seed));
      srow.push_back(Table::fmt(serial.elapsed_us / stats.elapsed_us, 2));
      mrow.push_back(bench::mb(stats.heap_peak));
      common.record(std::string(variant.name) + " p" + std::to_string(p), stats);
    }
    speedups.add_row(srow);
    memory.add_row(mrow);
  }
  common.emit(speedups, "Figure 7(a): matmul " + std::to_string(n) +
                            "² speedup over serial C");
  common.emit(memory, "Figure 7(b): heap high-water (MB)");
  std::puts(
      "(paper @1024², p=8: New scheduler cuts running time ~44% and memory "
      "~63% vs Original; LIFO in between; small stacks help both)");
  common.write_json();
  return 0;
}
