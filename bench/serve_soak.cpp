// Serving soak: open-loop Poisson arrivals over a mix of the seven paper
// apps (tiny per-request problem sizes) served through the src/serve/
// front-end — bounded ingress, K-driven admission, per-request deadlines
// with caller-side retry/backoff, and tiered overload shedding.
//
// The acceptance bar is the robustness contract, not throughput: the soak
// must complete with zero crashes and zero watchdog aborts, every request
// must terminate in exactly one of {completed, rejected, deadline-expired},
// and the tracked-heap high water while serving must stay at or below the
// admission budget. Latency percentiles (p50/p99/p999 per endpoint from
// LogHistogram), rejection/shed/timeout counts, the admission-headroom time
// series and peak RSS are written to BENCH_serve_soak.json; read it back
// with `tools/dfth-trace --serve BENCH_serve_soak.json`.
//
// CI runs this under -DDFTH_FAULTS=ON with a fixed fault seed, then uses
// --record-dir / --replay-dir (one run per engine pass, like faults_soak)
// to gate the record leg against the replay leg on the DFTH-SIG lines.
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "apps/barnes/barnes.h"
#include "apps/dtree/dtree.h"
#include "apps/fft/fft.h"
#include "apps/fmm/fmm.h"
#include "apps/matmul/matmul.h"
#include "apps/spmv/spmv.h"
#include "apps/volrend/volrend.h"
#include "bench_common.h"
#include "replay/log.h"
#include "replay/signature.h"
#include "resil/faults.h"
#include "runtime/sync.h"
#include "serve/retry.h"
#include "serve/server.h"
#include "space/tracked_heap.h"
#include "util/rng.h"

namespace {

using namespace dfth;

// Shared read-only inputs, generated once (outside run(); their bytes are
// part of the server's baseline, not of any request's budget).
struct SoakInputs {
  apps::MatmulConfig mm_cfg;
  std::vector<double> mm_a, mm_b;

  std::size_t fft_n = 1u << 10;
  std::vector<apps::Complex> fft_in;

  apps::SpmvConfig spmv_cfg;
  std::unique_ptr<apps::CsrMatrix> spmv_m;
  std::vector<double> spmv_v;

  apps::DtreeConfig dt_cfg;
  std::vector<apps::Instance> dt_data;

  apps::BarnesConfig bh_cfg;
  std::vector<apps::Body> bh_bodies;

  apps::FmmConfig fmm_cfg;
  std::vector<apps::FmmParticle> fmm_particles;

  apps::VolrendConfig vr_cfg;
  std::unique_ptr<apps::Volume> vr_vol;
};

SoakInputs make_inputs(std::uint64_t seed) {
  SoakInputs in;
  in.mm_cfg.n = 64;
  in.mm_cfg.base = 16;
  in.mm_a.resize(in.mm_cfg.n * in.mm_cfg.n);
  in.mm_b.resize(in.mm_cfg.n * in.mm_cfg.n);
  apps::matmul_fill(in.mm_a.data(), in.mm_cfg.n, seed);
  apps::matmul_fill(in.mm_b.data(), in.mm_cfg.n, seed + 1);

  in.fft_in.resize(in.fft_n);
  apps::fft_fill(in.fft_in.data(), in.fft_n, seed + 2);

  in.spmv_cfg.rows = 2048;
  in.spmv_cfg.target_nnz = 10240;
  in.spmv_cfg.iterations = 2;
  in.spmv_cfg.threads_per_iter = 16;
  in.spmv_cfg.seed = seed + 3;
  in.spmv_m = std::make_unique<apps::CsrMatrix>(in.spmv_cfg.rows, in.spmv_cfg.rows);
  apps::spmv_generate(*in.spmv_m, in.spmv_cfg);
  in.spmv_v.assign(in.spmv_cfg.rows, 1.0);

  in.dt_cfg.instances = 2000;
  in.dt_cfg.serial_cutoff = 500;
  in.dt_cfg.min_leaf = 32;
  in.dt_cfg.seed = seed + 4;
  in.dt_data = apps::dtree_generate(in.dt_cfg);

  in.bh_cfg.bodies = 192;
  in.bh_cfg.timesteps = 1;
  in.bh_cfg.seed = seed + 5;
  in.bh_bodies = apps::barnes_generate(in.bh_cfg);

  in.fmm_cfg.particles = 192;
  in.fmm_cfg.levels = 2;
  in.fmm_cfg.terms = 4;
  in.fmm_cfg.chunk = 9;
  in.fmm_cfg.seed = seed + 6;
  in.fmm_particles = apps::fmm_generate(in.fmm_cfg);

  in.vr_cfg.volume_dim = 32;
  in.vr_cfg.image_dim = 32;
  in.vr_cfg.tiles_per_thread = 8;
  in.vr_cfg.seed = seed + 7;
  in.vr_vol = std::make_unique<apps::Volume>(in.vr_cfg);
  return in;
}

/// The seven endpoint handlers. Each allocates its per-request output
/// through df_malloc (so the admission budget is what bounds the heap) and
/// polls dfth::cancel_requested() between phases where it has any — the
/// cooperative-drain points for deadline expiry.
std::vector<serve::EndpointSpec> make_endpoints(const SoakInputs& in) {
  std::vector<serve::EndpointSpec> eps;

  {
    serve::EndpointSpec e;
    e.name = "matmul";
    e.priority = 0;
    e.mem_bound = 512 << 10;
    e.handler = [&in](serve::Request&) {
      const std::size_t n = in.mm_cfg.n;
      auto* c = static_cast<double*>(df_malloc(n * n * sizeof(double)));
      if (c == nullptr) return;
      if (!cancel_requested()) {
        apps::matmul_threaded(in.mm_a.data(), in.mm_b.data(), c, in.mm_cfg);
      }
      df_free(c);
    };
    eps.push_back(std::move(e));
  }
  {
    serve::EndpointSpec e;
    e.name = "fft";
    e.priority = 0;
    e.mem_bound = 256 << 10;
    e.handler = [&in](serve::Request&) {
      auto* out = static_cast<apps::Complex*>(
          df_malloc(in.fft_n * sizeof(apps::Complex)));
      if (out == nullptr) return;
      if (!cancel_requested()) {
        apps::FftPlan plan(in.fft_n);
        plan.execute_threaded(in.fft_in.data(), out, 8);
      }
      df_free(out);
    };
    eps.push_back(std::move(e));
  }
  {
    serve::EndpointSpec e;
    e.name = "spmv";
    e.priority = 1;
    e.mem_bound = 256 << 10;
    e.handler = [&in](serve::Request&) {
      auto* w = static_cast<double*>(
          df_malloc(in.spmv_cfg.rows * sizeof(double)));
      if (w == nullptr) return;
      for (int it = 0; it < in.spmv_cfg.iterations; ++it) {
        if (cancel_requested()) break;  // cooperative drain between sweeps
        apps::spmv_fine(*in.spmv_m, in.spmv_v.data(), w, in.spmv_cfg);
      }
      df_free(w);
    };
    eps.push_back(std::move(e));
  }
  {
    serve::EndpointSpec e;
    e.name = "dtree";
    e.priority = 1;
    e.mem_bound = 512 << 10;
    e.handler = [&in](serve::Request&) {
      if (cancel_requested()) return;
      auto tree = apps::dtree_build_threaded(in.dt_data, in.dt_cfg);
      (void)tree;
    };
    eps.push_back(std::move(e));
  }
  {
    serve::EndpointSpec e;
    e.name = "barnes";
    e.priority = 2;
    e.mem_bound = 512 << 10;
    e.handler = [&in](serve::Request&) {
      if (cancel_requested()) return;
      apps::barnes_fine(in.bh_bodies, in.bh_cfg);  // copies its input
    };
    eps.push_back(std::move(e));
  }
  {
    serve::EndpointSpec e;
    e.name = "fmm";
    e.priority = 2;
    e.mem_bound = 512 << 10;
    e.handler = [&in](serve::Request&) {
      if (cancel_requested()) return;
      auto copy = in.fmm_particles;
      apps::fmm_threaded(copy, in.fmm_cfg);
    };
    eps.push_back(std::move(e));
  }
  {
    serve::EndpointSpec e;
    e.name = "volrend";
    e.priority = 2;
    e.mem_bound = 512 << 10;
    e.handler = [&in](serve::Request&) {
      if (cancel_requested()) return;
      apps::volrend_fine(*in.vr_vol, in.vr_cfg);
    };
    eps.push_back(std::move(e));
  }
  return eps;
}

struct PassResult {
  std::string tag;
  RunStats stats;
  serve::ServeReport report;
  std::uint64_t requests = 0;
  std::uint64_t retries = 0;
  std::uint64_t completed = 0, rejected = 0, expired = 0;  // final outcomes
  std::int64_t baseline_live = 0;
  std::uint64_t wall_span_ns = 0;  ///< engine-clock span of the soak
};

struct SoakParams {
  int requests = 120;
  std::uint64_t mean_gap_ns = 400'000;
  std::uint64_t seed = 0x5eed;
  serve::RetryPolicy retry;
};

/// Runs the client+server inside an already-running engine. Returns through
/// `out` (final-outcome counts, serve report).
void soak_body(serve::Server& server, std::vector<serve::Request>& arena,
               const SoakParams& prm, PassResult* out) {
  // Retry plumbing: on_done pushes rejected-but-retryable requests here
  // with an absolute due time; the client loop resubmits them.
  struct Pending {
    std::uint64_t due_ns;
    serve::Request* r;
  };
  // All client-side bookkeeping lives under one runtime Mutex (not raw
  // atomics): every acquisition is a pinned sync decision, so the counters —
  // and the client loop's control flow that reads them — are deterministic
  // under strict replay.
  Mutex retry_mu;
  std::vector<Pending> retry_q;
  std::uint64_t terminal = 0;
  std::uint64_t retries = 0;
  std::uint64_t completed = 0, rejected = 0, expired = 0;

  // The terminal-outcome hook: decide retry-vs-final here, once, so every
  // request is counted exactly once. Installed before the pump starts.
  server.set_on_done([&](serve::Request* r) {
    if (serve::should_retry(prm.retry, *r)) {
      const std::uint64_t due =
          now_ns() + serve::backoff_ns(prm.retry, r->id, r->attempt + 1, prm.seed);
      LockGuard g(retry_mu);
      retry_q.push_back({due, r});
      return;
    }
    LockGuard g(retry_mu);
    switch (r->outcome) {
      case serve::Outcome::kCompleted: ++completed; break;
      case serve::Outcome::kRejected: ++rejected; break;
      case serve::Outcome::kExpired: ++expired; break;
      case serve::Outcome::kPending: break;  // unreachable; finish() checks
    }
    ++terminal;
  });

  Thread pump = spawn([&server]() -> void* {
    server.pump();
    return nullptr;
  });

  const std::uint64_t start_ns = now_ns();
  Rng rng(prm.seed ^ 0xc11e47ull);
  Semaphore zzz(0);  // never released: pure timed sleep
  std::uint64_t next_arrival = start_ns;
  std::size_t next_idx = 0;
  const auto n_endpoints = 7u;

  for (;;) {
    const std::uint64_t now = now_ns();

    // Resubmit due retries first (they are older than any new arrival).
    serve::Request* due_retry = nullptr;
    std::uint64_t nearest_due = ~std::uint64_t{0};
    {
      LockGuard g(retry_mu);
      if (terminal >= arena.size()) break;
      for (std::size_t i = 0; i < retry_q.size(); ++i) {
        if (retry_q[i].due_ns <= now) {
          due_retry = retry_q[i].r;
          retry_q[i] = retry_q.back();
          retry_q.pop_back();
          break;
        }
        if (retry_q[i].due_ns < nearest_due) nearest_due = retry_q[i].due_ns;
      }
      if (due_retry != nullptr) ++retries;
    }
    if (due_retry != nullptr) {
      ++due_retry->attempt;
      due_retry->reset_for_retry();
      server.submit(due_retry);  // a full ring re-rejects through on_done
      continue;
    }

    // Open-loop Poisson arrivals: exponential inter-arrival gaps.
    if (next_idx < arena.size() && now >= next_arrival) {
      serve::Request* r = &arena[next_idx];
      r->id = next_idx;
      // Endpoint mix: uniform over the seven apps.
      r->endpoint = static_cast<int>(rng.next_below(n_endpoints));
      ++next_idx;
      const double u = rng.next_double(1e-9, 1.0);
      next_arrival = now + static_cast<std::uint64_t>(
                               -std::log(u) * static_cast<double>(prm.mean_gap_ns));
      server.submit(r);
      continue;
    }

    // Idle: sleep until the next arrival or retry due time (bounded poll).
    std::uint64_t wake = next_idx < arena.size() ? next_arrival : now + 200'000;
    if (nearest_due < wake) wake = nearest_due;
    const std::uint64_t nap = wake > now ? wake - now : 50'000;
    zzz.try_acquire_for(nap > 2'000'000 ? 2'000'000 : nap);
  }

  server.stop();
  join(pump);
  out->requests = arena.size();
  {
    LockGuard g(retry_mu);
    out->retries = retries;
    out->completed = completed;
    out->rejected = rejected;
    out->expired = expired;
  }
  out->wall_span_ns = now_ns() - start_ns;
  out->report = server.report();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dfth;
  bench::Common common("serve_soak",
                       "serving soak: Poisson arrivals over the seven apps");
  auto* requests = common.cli.int_opt("requests", 120, "arrivals per pass");
  auto* gap_us = common.cli.int_opt("mean-gap-us", 400,
                                    "mean Poisson inter-arrival gap");
  auto* procs = common.cli.int_opt("procs", 4, "processor count");
  auto* budget_kb = common.cli.int_opt(
      "budget-kb", 4096, "admission budget over baseline, KiB");
  auto* fault_seed = common.cli.int_opt(
      "fault-seed", 0, "fault-plan seed (0 = faults off even when built in)");
  auto* record_dir = common.cli.str_opt(
      "record-dir", "", "record each pass's schedule log into this directory");
  auto* replay_dir = common.cli.str_opt(
      "replay-dir", "", "replay each pass from this directory's schedule logs");
  if (!common.parse(argc, argv)) return 0;

  const bool recording = !record_dir->empty();
  const bool replaying = !replay_dir->empty();
  if ((recording || replaying) && !replay::kReplayEnabled) {
    std::fprintf(stderr,
                 "serve_soak: --record-dir/--replay-dir need -DDFTH_REPLAY=ON\n");
    return 1;
  }
  if (recording && replaying) {
    std::fprintf(stderr, "serve_soak: --record-dir and --replay-dir are exclusive\n");
    return 1;
  }
  if (recording) std::filesystem::create_directories(*record_dir);

  SoakParams prm;
  prm.requests = static_cast<int>(*requests);
  prm.mean_gap_ns = static_cast<std::uint64_t>(*gap_us) * 1000;
  prm.seed = static_cast<std::uint64_t>(*common.seed);

  resil::FaultPlan plan;
  const bool faulting = resil::kFaultsEnabled && *fault_seed != 0;
  if (faulting) {
    plan.seed = static_cast<std::uint64_t>(*fault_seed);
    Rng rng(plan.seed);
    for (int i = 0; i < resil::kNumFaultSites; ++i) {
      resil::SiteSpec& s = plan.sites[i];
      s.every_nth = static_cast<std::uint64_t>(rng.next_range(3, 9));
      s.probability = rng.next_double(0.01, 0.06);
      s.skip_first = static_cast<std::uint64_t>(rng.next_range(0, 8));
      s.max_failures = 100000;
    }
    // The serve pump leans on timed waits for pacing; forcing sync timeouts
    // would only re-test the primitive, so that site stays quiet here too.
    plan.site(resil::FaultSite::kSyncTimeout) = resil::SiteSpec{};
    std::printf("fault-plan seed: %llu\n",
                static_cast<unsigned long long>(plan.seed));
  }

  SoakInputs inputs = make_inputs(prm.seed);
  const std::int64_t baseline = TrackedHeap::instance().live_bytes();

  struct PassSpec {
    const char* tag;
    EngineKind engine;
  };
  const PassSpec pass_specs[] = {
      {"sim", EngineKind::Sim},
      {"real", EngineKind::Real},
  };

  std::vector<PassResult> results;
  int failures = 0;

  for (const PassSpec& ps : pass_specs) {
    std::atomic<std::uint64_t> heartbeat{0};

    RuntimeOptions opts;
    opts.engine = ps.engine;
    opts.sched = SchedKind::AsyncDf;
    opts.nprocs = static_cast<int>(*procs);
    opts.default_stack_size = 64 << 10;
    opts.mem_quota = 64 << 10;
    opts.seed = prm.seed;
    opts.watchdog.heartbeat = &heartbeat;
    if (ps.engine == EngineKind::Real) {
      opts.watchdog.stall_deadline_ms = 10'000;
    } else {
      opts.watchdog.virtual_deadline_ns = 120ull * 1'000'000'000;
    }
    if (faulting) opts.fault_plan = &plan;
    if (recording) {
      opts.record_path = *record_dir + std::string("/serve-") + ps.tag + ".dfthlog";
      opts.record_tag = std::string("serve-") + ps.tag;
    } else if (replaying) {
      opts.replay_path = *replay_dir + std::string("/serve-") + ps.tag + ".dfthlog";
    }

    PassResult pr;
    pr.tag = ps.tag;
    pr.baseline_live = baseline;

    serve::ServerConfig cfg;
    cfg.ingress_capacity = 64;
    cfg.mem_budget = static_cast<std::size_t>(baseline) +
                     (static_cast<std::size_t>(*budget_kb) << 10);
    cfg.max_inflight = 16;
    cfg.shed_priority_floor = 2;  // barnes/fmm/volrend shed first
    cfg.poll_ns = 100'000;
    cfg.heartbeat = &heartbeat;
    // Per-request deadlines: generous against the tiny problem sizes, so
    // expirations come from genuine overload, not the baseline cost.
    std::vector<serve::EndpointSpec> eps = make_endpoints(inputs);
    for (serve::EndpointSpec& e : eps) e.deadline_ns = 80'000'000;

    std::vector<serve::Request> arena(static_cast<std::size_t>(prm.requests));

    pr.stats = run(opts, [&] {
      serve::Server server(cfg, std::move(eps));
      soak_body(server, arena, prm, &pr);
    });

    // Exactly-once termination: every request must be terminal.
    for (const serve::Request& r : arena) {
      if (r.outcome == serve::Outcome::kPending) {
        std::fprintf(stderr, "serve_soak[%s]: request %llu never terminated\n",
                     ps.tag, static_cast<unsigned long long>(r.id));
        ++failures;
      }
      if (r.bytes_live.load() != 0) {
        std::fprintf(stderr,
                     "serve_soak[%s]: request %llu leaked %lld tracked bytes\n",
                     ps.tag, static_cast<unsigned long long>(r.id),
                     static_cast<long long>(r.bytes_live.load()));
        ++failures;
      }
    }
    const std::uint64_t accounted = pr.completed + pr.rejected + pr.expired;
    if (accounted != pr.requests) {
      std::fprintf(stderr,
                   "serve_soak[%s]: %llu of %llu requests accounted for\n",
                   ps.tag, static_cast<unsigned long long>(accounted),
                   static_cast<unsigned long long>(pr.requests));
      ++failures;
    }
    if (pr.report.peak_live_bytes >
        static_cast<std::int64_t>(cfg.mem_budget)) {
      std::fprintf(stderr,
                   "serve_soak[%s]: peak tracked heap %lld exceeded the "
                   "admission budget %zu\n",
                   ps.tag, static_cast<long long>(pr.report.peak_live_bytes),
                   cfg.mem_budget);
      ++failures;
    }

    const double span_s = static_cast<double>(pr.wall_span_ns) / 1e9;
    std::printf(
        "%-4s %5llu req  %6.2f rps  done=%-5llu rej=%-4llu exp=%-4llu "
        "retries=%-4llu tiers=%llu peak-rss=%lld faults=%llu expired-disp=%llu\n",
        ps.tag, static_cast<unsigned long long>(pr.requests),
        span_s > 0 ? static_cast<double>(pr.requests) / span_s : 0.0,
        static_cast<unsigned long long>(pr.completed),
        static_cast<unsigned long long>(pr.rejected),
        static_cast<unsigned long long>(pr.expired),
        static_cast<unsigned long long>(pr.retries),
        static_cast<unsigned long long>(pr.report.tier_transitions),
        static_cast<long long>(pr.report.peak_live_bytes),
        static_cast<unsigned long long>(pr.stats.faults_injected),
        static_cast<unsigned long long>(pr.stats.deadline_expirations));
    for (const serve::EndpointReport& er : pr.report.endpoints) {
      std::printf(
          "     %-8s done=%-5llu q-full=%-4llu shed=%-4llu adm=%-4llu "
          "exp-q=%-3llu exp-run=%-3llu p50=%.2fms p99=%.2fms p999=%.2fms\n",
          er.name.c_str(), static_cast<unsigned long long>(er.completed),
          static_cast<unsigned long long>(er.rejected_queue),
          static_cast<unsigned long long>(er.rejected_shed),
          static_cast<unsigned long long>(er.rejected_admission),
          static_cast<unsigned long long>(er.expired_queue),
          static_cast<unsigned long long>(er.expired_running),
          static_cast<double>(er.latency.percentile(0.50)) / 1e6,
          static_cast<double>(er.latency.percentile(0.99)) / 1e6,
          static_cast<double>(er.latency.percentile(0.999)) / 1e6);
    }
    if (recording || replaying) {
      std::printf("DFTH-SIG serve/%s %s\n", ps.tag,
                  replay::determinism_signature(pr.stats).c_str());
    }
    std::fflush(stdout);
    common.record(std::string("serve (") + ps.tag + ")", opts, pr.stats);
    results.push_back(std::move(pr));
  }

  // Rich JSON (the bench::Common schema has no serve fields): per-pass
  // totals, per-endpoint percentiles and the headroom time series.
  if (!common.json->empty()) {
    std::FILE* f = std::fopen(common.json->c_str(), "w");
    if (f != nullptr) {
      std::fprintf(f, "{\"bench\": \"serve_soak\", \"passes\": [");
      for (std::size_t pi = 0; pi < results.size(); ++pi) {
        const PassResult& pr = results[pi];
        const double span_s = static_cast<double>(pr.wall_span_ns) / 1e9;
        std::fprintf(
            f,
            "%s\n{\"pass\": \"%s\", \"requests\": %llu, "
            "\"throughput_rps\": %.3f, \"completed\": %llu, "
            "\"rejected\": %llu, \"expired\": %llu, \"retries\": %llu, "
            "\"rejected_queue\": %llu, \"rejected_shed\": %llu, "
            "\"rejected_admission\": %llu, \"expired_queue\": %llu, "
            "\"expired_running\": %llu, \"tier_transitions\": %llu, "
            "\"peak_inflight\": %llu, \"peak_depth\": %llu, "
            "\"peak_live_bytes\": %lld, \"baseline_live_bytes\": %lld, "
            "\"admission_usable\": %zu, \"deadline_expirations\": %llu, "
            "\"faults_injected\": %llu, \"elapsed_us\": %.3f, ",
            pi == 0 ? "" : ",", pr.tag.c_str(),
            static_cast<unsigned long long>(pr.requests),
            span_s > 0 ? static_cast<double>(pr.requests) / span_s : 0.0,
            static_cast<unsigned long long>(pr.completed),
            static_cast<unsigned long long>(pr.rejected),
            static_cast<unsigned long long>(pr.expired),
            static_cast<unsigned long long>(pr.retries),
            static_cast<unsigned long long>(pr.report.rejected_queue),
            static_cast<unsigned long long>(pr.report.rejected_shed),
            static_cast<unsigned long long>(pr.report.rejected_admission),
            static_cast<unsigned long long>(pr.report.expired_queue),
            static_cast<unsigned long long>(pr.report.expired_running),
            static_cast<unsigned long long>(pr.report.tier_transitions),
            static_cast<unsigned long long>(pr.report.peak_inflight),
            static_cast<unsigned long long>(pr.report.peak_depth),
            static_cast<long long>(pr.report.peak_live_bytes),
            static_cast<long long>(pr.baseline_live),
            pr.report.admission_usable,
            static_cast<unsigned long long>(pr.stats.deadline_expirations),
            static_cast<unsigned long long>(pr.stats.faults_injected),
            pr.stats.elapsed_us);
        std::fprintf(f, "\"endpoints\": [");
        for (std::size_t ei = 0; ei < pr.report.endpoints.size(); ++ei) {
          const serve::EndpointReport& er = pr.report.endpoints[ei];
          std::fprintf(
              f,
              "%s{\"name\": \"%s\", \"completed\": %llu, "
              "\"rejected_queue\": %llu, \"rejected_shed\": %llu, "
              "\"rejected_admission\": %llu, \"expired_queue\": %llu, "
              "\"expired_running\": %llu, \"p50_ns\": %llu, "
              "\"p99_ns\": %llu, \"p999_ns\": %llu}",
              ei == 0 ? "" : ", ", er.name.c_str(),
              static_cast<unsigned long long>(er.completed),
              static_cast<unsigned long long>(er.rejected_queue),
              static_cast<unsigned long long>(er.rejected_shed),
              static_cast<unsigned long long>(er.rejected_admission),
              static_cast<unsigned long long>(er.expired_queue),
              static_cast<unsigned long long>(er.expired_running),
              static_cast<unsigned long long>(er.latency.percentile(0.50)),
              static_cast<unsigned long long>(er.latency.percentile(0.99)),
              static_cast<unsigned long long>(er.latency.percentile(0.999)));
        }
        std::fprintf(f, "], \"headroom\": [");
        for (std::size_t hi = 0; hi < pr.report.headroom.size(); ++hi) {
          const serve::HeadroomSample& h = pr.report.headroom[hi];
          std::fprintf(f,
                       "%s{\"t_ns\": %llu, \"headroom\": %llu, "
                       "\"depth\": %u, \"tier\": %u}",
                       hi == 0 ? "" : ", ",
                       static_cast<unsigned long long>(h.t_ns),
                       static_cast<unsigned long long>(h.headroom_bytes),
                       h.depth, h.tier);
        }
        std::fprintf(f, "]}");
      }
      std::fprintf(f, "\n]}\n");
      std::fclose(f);
      std::printf("(json written to %s)\n", common.json->c_str());
    } else {
      std::fprintf(stderr, "failed to write %s\n", common.json->c_str());
    }
  }

  if (failures != 0) {
    std::fprintf(stderr, "serve_soak: %d invariant violation(s)\n", failures);
    return 1;
  }
  std::printf("serve_soak: all requests terminated exactly once\n");
  return 0;
}
