// Microbenchmark (google-benchmark): raw cost of the scheduler data
// structures — ready-queue push/pop for each policy, the AsyncDF ordered
// list's insert-left-of-parent + leftmost-ready scan, and the
// order-maintenance list's tag operations. This is the real-machine cost of
// the operations the simulator charges sched_op_us for.
#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "core/asyncdf_sched.h"
#include "core/fifo_sched.h"
#include "core/lifo_sched.h"
#include "core/order_list.h"
#include "core/worksteal_sched.h"

namespace dfth {
namespace {

constexpr std::uint64_t kInf = ~0ull;

std::vector<std::unique_ptr<Tcb>> make_tcbs(std::size_t n) {
  std::vector<std::unique_ptr<Tcb>> tcbs;
  tcbs.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    tcbs.push_back(std::make_unique<Tcb>(i + 1));
  }
  return tcbs;
}

template <typename Sched>
void bench_push_pop(benchmark::State& state, Sched& sched) {
  auto tcbs = make_tcbs(static_cast<std::size_t>(state.range(0)));
  for (auto& t : tcbs) sched.register_thread(nullptr, t.get());
  std::uint64_t earliest = 0;
  for (auto _ : state) {
    for (auto& t : tcbs) {
      t->state.store(ThreadState::Ready, std::memory_order_relaxed);
      sched.on_ready(t.get(), 0);
    }
    for (std::size_t i = 0; i < tcbs.size(); ++i) {
      Tcb* picked = sched.pick_next(0, kInf, &earliest);
      picked->state.store(ThreadState::Running, std::memory_order_relaxed);
      benchmark::DoNotOptimize(picked);
    }
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(tcbs.size() * 2));
}

void BM_FifoPushPop(benchmark::State& state) {
  FifoScheduler sched;
  bench_push_pop(state, sched);
}
BENCHMARK(BM_FifoPushPop)->Arg(64)->Arg(1024);

void BM_LifoPushPop(benchmark::State& state) {
  LifoScheduler sched;
  bench_push_pop(state, sched);
}
BENCHMARK(BM_LifoPushPop)->Arg(64)->Arg(1024);

void BM_WorkStealPushPop(benchmark::State& state) {
  WorkStealScheduler sched(8, 42);
  bench_push_pop(state, sched);
}
BENCHMARK(BM_WorkStealPushPop)->Arg(64)->Arg(1024);

void BM_AsyncDfSpawnExitChurn(benchmark::State& state) {
  // The AsyncDF hot path: register child left of parent (it preempts),
  // parent re-readied, child exits, parent picked again.
  AsyncDfScheduler sched;
  auto root = std::make_unique<Tcb>(1);
  sched.register_thread(nullptr, root.get());
  root->state.store(ThreadState::Running, std::memory_order_relaxed);
  std::uint64_t earliest = 0;
  std::uint64_t next_id = 2;
  for (auto _ : state) {
    Tcb child(next_id++);
    sched.register_thread(root.get(), &child);
    root->state.store(ThreadState::Ready, std::memory_order_relaxed);
    sched.on_ready(root.get(), 0);
    child.state.store(ThreadState::Done, std::memory_order_relaxed);
    sched.unregister_thread(&child);
    Tcb* picked = sched.pick_next(0, kInf, &earliest);
    picked->state.store(ThreadState::Running, std::memory_order_relaxed);
    benchmark::DoNotOptimize(picked);
  }
  state.SetItemsProcessed(state.iterations() * 4);
}
BENCHMARK(BM_AsyncDfSpawnExitChurn);

void BM_AsyncDfLeftmostScan(benchmark::State& state) {
  // Leftmost-ready scan cost as a function of live (mostly blocked) threads.
  AsyncDfScheduler sched;
  auto tcbs = make_tcbs(static_cast<std::size_t>(state.range(0)));
  Tcb* parent = nullptr;
  for (auto& t : tcbs) {
    sched.register_thread(parent, t.get());
    t->state.store(ThreadState::Blocked, std::memory_order_relaxed);
    parent = t.get();
  }
  // One ready thread at the right end (worst case for the scan).
  tcbs.front()->state.store(ThreadState::Ready, std::memory_order_relaxed);
  sched.on_ready(tcbs.front().get(), 0);
  std::uint64_t earliest = 0;
  for (auto _ : state) {
    Tcb* picked = sched.pick_next(0, kInf, &earliest);
    benchmark::DoNotOptimize(picked);
    picked->state.store(ThreadState::Ready, std::memory_order_relaxed);
    sched.on_ready(picked, 0);
  }
}
BENCHMARK(BM_AsyncDfLeftmostScan)->Arg(8)->Arg(64)->Arg(512);

void BM_OrderListInsertErase(benchmark::State& state) {
  OrderList list;
  OrderNode anchor;
  list.push_back(&anchor);
  std::vector<OrderNode> nodes(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    for (auto& n : nodes) list.insert_before(&anchor, &n);
    for (auto& n : nodes) list.erase(&n);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(nodes.size() * 2));
  state.counters["relabels"] = static_cast<double>(list.relabel_count());
}
BENCHMARK(BM_OrderListInsertErase)->Arg(64)->Arg(4096);

void BM_OrderListBeforeQuery(benchmark::State& state) {
  OrderList list;
  std::vector<OrderNode> nodes(1024);
  for (auto& n : nodes) list.push_back(&n);
  std::size_t i = 0;
  for (auto _ : state) {
    const bool before = list.before(&nodes[i % 1024], &nodes[(i * 7 + 13) % 1024]);
    benchmark::DoNotOptimize(before);
    ++i;
  }
}
BENCHMARK(BM_OrderListBeforeQuery);

}  // namespace
}  // namespace dfth

BENCHMARK_MAIN();
