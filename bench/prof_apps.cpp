// Profiler acceptance driver: run all seven paper apps with the work/span
// profiler installed and emit PROF_<app>.json per app — ProfileStats, the
// Brent what-if sweep (predicted T_p bounds vs simulator-measured T_p),
// critical-path attribution by spawn site, and collapsed stacks for
// speedscope / flamegraph.pl (via `dfth-prof collapse`).
//
// The reference profile for the predictions is the p=1 run: work and span
// are schedule-invariant, so the serial profile predicts the parallel runs.
// The sweep runs descending so the profiler object ends the loop holding
// the p=1 ledger (critical path / collapsed stacks are read from it last).
//
// With -DDFTH_PROF=OFF the binary still runs and emits records, but says
// the profile sections will be empty and skips the work>=span>0 check.
#include <cstdio>
#include <string>
#include <vector>

#include "apps_runner.h"
#include "core/scheduler.h"
#include "obs/export.h"
#include "obs/profile.h"

int main(int argc, char** argv) {
  using namespace dfth;
  bench::Common common("prof_apps",
                       "work/span profiles for the seven paper apps");
  auto* sched_name =
      common.cli.str_opt("sched", "asyncdf", "scheduler for the profiled runs");
  if (!common.parse(argc, argv)) return 0;
  const auto seed = static_cast<std::uint64_t>(*common.seed);
  const SchedKind sched = sched_kind_from_string(*sched_name);

  if (!obs::kProfEnabled) {
    std::puts("note: built with -DDFTH_PROF=OFF; profiles will be empty");
  }

  obs::Profiler prof;
  std::vector<bench::AppSpec> apps =
      bench::make_apps(*common.full, seed, EngineKind::Sim, &prof);
  // Slugs for PROF_<app>.json, in make_apps order.
  static const char* kSlugs[] = {"matmul", "barnes", "fmm",    "dtree",
                                 "fft",    "spmv",   "volrend"};
  if (apps.size() != sizeof kSlugs / sizeof kSlugs[0]) {
    std::fprintf(stderr, "app registry changed: %zu apps, %zu slugs\n",
                 apps.size(), sizeof kSlugs / sizeof kSlugs[0]);
    return 1;
  }

  std::vector<int> ps;
  for (int p = 1; p <= static_cast<int>(*common.procs_max); p *= 2) {
    ps.push_back(p);
  }

  bool ok = true;
  for (std::size_t i = 0; i < apps.size(); ++i) {
    const bench::AppSpec& app = apps[i];
    const std::string slug = kSlugs[i];

    // Descending, so the final (p=1) run leaves its ledger in `prof`.
    RunStats ref;
    std::vector<obs::ProfSweepRow> sweep(ps.size());
    for (std::size_t j = ps.size(); j-- > 0;) {
      const int p = ps[j];
      const RunStats stats = app.fine(sched, p, seed);
      common.record(slug + "/p" + std::to_string(p), stats);
      sweep[j].p = p;
      sweep[j].measured_us = stats.elapsed_us;
      if (p == 1) ref = stats;
    }
    for (std::size_t j = 0; j < ps.size(); ++j) {
      sweep[j].predicted_lo_us = ref.profile.predict_lo_ns(ps[j]) / 1000.0;
      sweep[j].predicted_hi_us = ref.profile.predict_hi_ns(ps[j]) / 1000.0;
    }

    const std::string path = "PROF_" + slug + ".json";
    if (!obs::write_profile_json(slug, ref, &prof, sweep, path)) {
      std::fprintf(stderr, "failed to write %s\n", path.c_str());
      return 1;
    }

    std::printf("%-8s fibers %8llu  work %12.3f ms  span %10.3f ms  "
                "parallelism %7.2f  -> %s\n",
                slug.c_str(),
                static_cast<unsigned long long>(ref.profile.fibers),
                ref.profile.work_ns / 1e6, ref.profile.span_ns / 1e6,
                ref.profile.parallelism(), path.c_str());
    for (std::size_t j = 0; j < ps.size(); ++j) {
      std::printf("         p=%d  predicted [%10.3f, %10.3f] ms  "
                  "measured %10.3f ms\n",
                  ps[j], sweep[j].predicted_lo_us / 1000.0,
                  sweep[j].predicted_hi_us / 1000.0,
                  sweep[j].measured_us / 1000.0);
    }

    if (obs::kProfEnabled &&
        !(ref.profile.work_ns >= ref.profile.span_ns &&
          ref.profile.span_ns > 0)) {
      std::fprintf(stderr, "%s: profile violates work >= span > 0\n",
                   slug.c_str());
      ok = false;
    }
  }

  common.write_json();
  if (!ok) return 1;
  std::puts(obs::kProfEnabled
                ? "(inspect with: dfth-prof report PROF_matmul.json)"
                : "(profiles empty: rebuild with -DDFTH_PROF=ON)");
  return 0;
}
