// Figure 8: the headline table — 8-processor speedups over the serial C
// versions for all seven benchmarks, in three versions: the original
// coarse-grained code (where one exists), the fine-grained rewrite on the
// original FIFO scheduler, and the fine-grained rewrite on the new
// space-efficient scheduler (8 KB default stacks). "Threads" is the maximum
// number of simultaneously-active threads during the fine+new run.
#include <cstdio>

#include "apps_runner.h"

int main(int argc, char** argv) {
  using namespace dfth;
  bench::Common common("fig08_benchmark_table",
                       "Figure 8: speedups for the seven benchmarks");
  auto* procs = common.cli.int_opt("procs", 8, "processor count for the table");
  if (!common.parse(argc, argv)) return 0;
  const int p = static_cast<int>(*procs);
  const auto seed = static_cast<std::uint64_t>(*common.seed);

  Table table({"Benchmark", "Problem Size", "Coarse", "Fine+orig", "Fine+new",
               "Threads"});
  for (auto& app : bench::make_apps(*common.full, seed)) {
    std::fprintf(stderr, "[fig08] %s (%s)...\n", app.name.c_str(),
                 app.problem.c_str());
    const RunStats serial = app.serial();
    const double t_serial = serial.elapsed_us;

    std::string coarse = "-";
    if (app.has_coarse) {
      coarse = Table::fmt(t_serial / app.coarse(p).elapsed_us, 2);
    }
    const RunStats fine_orig = app.fine(SchedKind::Fifo, p, seed);
    const RunStats fine_new = app.fine(SchedKind::AsyncDf, p, seed);
    table.add_row({app.name, app.problem, coarse,
                   Table::fmt(t_serial / fine_orig.elapsed_us, 2),
                   Table::fmt(t_serial / fine_new.elapsed_us, 2),
                   Table::fmt_int(fine_new.max_live_threads)});
    common.record(app.name + " serial", serial);
    common.record(app.name + " fine+orig", fine_orig);
    common.record(app.name + " fine+new", fine_new);
  }
  common.emit(table, "Figure 8: speedups on " + std::to_string(p) +
                         " processors over serial C");
  std::puts(
      "(paper @8 procs: e.g. Matrix Mult 3.65 -> 6.56, Barnes 5.76 -> 7.80 "
      "(coarse 7.53), Sparse 4.41 -> 5.96 (coarse 6.14); fine+new matches or "
      "beats coarse, with tens of live threads)");
  common.write_json();
  return 0;
}
