// Shared matmul experiment driver for the Figure 5/6/7 harnesses.
#pragma once

#include <memory>
#include <vector>

#include "apps/matmul/matmul.h"
#include "bench_common.h"
#include "runtime/api.h"

namespace dfth::bench {

/// Input matrices allocated through df_malloc (so the "Serial" space line
/// includes them, matching the paper's ~25 MB for 1024²).
struct MatmulInput {
  apps::MatmulConfig cfg;
  double* a = nullptr;
  double* b = nullptr;
  double* c = nullptr;

  explicit MatmulInput(std::size_t n) {
    cfg.n = n;
    cfg.base = 64;
    a = static_cast<double*>(df_malloc(n * n * sizeof(double)));
    b = static_cast<double*>(df_malloc(n * n * sizeof(double)));
    c = static_cast<double*>(df_malloc(n * n * sizeof(double)));
    apps::matmul_fill(a, n, 1);
    apps::matmul_fill(b, n, 2);
  }
  ~MatmulInput() {
    df_free(a);
    df_free(b);
    df_free(c);
  }
};

/// Virtual time of the serial C version (p = 1, no thread operations).
inline RunStats matmul_serial_stats(MatmulInput& in) {
  return run(sim_opts(SchedKind::AsyncDf, 1),
             [&] { apps::matmul_serial(in.a, in.b, in.c, in.cfg); });
}

/// One threaded run under the given scheduler / processor count / stack.
inline RunStats matmul_run(MatmulInput& in, SchedKind sched, int nprocs,
                           std::size_t stack, std::uint64_t seed) {
  return run(sim_opts(sched, nprocs, stack, seed),
             [&] { apps::matmul_threaded(in.a, in.b, in.c, in.cfg); });
}

}  // namespace dfth::bench
