// Figure 1 (+ §2 discussion): executing the example fork/join computation
// graph serially, a FIFO ready queue keeps every thread simultaneously
// active (7 for the depth-3 binary tree) while LIFO stays near the depth
// (3) — the observation that motivates the whole paper. We sweep the tree
// depth and print max-live-threads per scheduler on one processor.
#include <cstdio>

#include "bench_common.h"
#include "runtime/api.h"

namespace {

void fork_tree(int depth) {
  dfth::annotate_work(50);
  if (depth <= 1) return;
  auto left = dfth::spawn([depth]() -> void* {
    fork_tree(depth - 1);
    return nullptr;
  });
  auto right = dfth::spawn([depth]() -> void* {
    fork_tree(depth - 1);
    return nullptr;
  });
  dfth::join(left);
  dfth::join(right);
  dfth::annotate_work(50);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dfth;
  bench::Common common("fig01_active_threads",
                       "Figure 1: serial execution order vs live thread count");
  if (!common.parse(argc, argv)) return 0;

  Table table({"depth", "total threads", "FIFO live", "LIFO live", "AsyncDF live",
               "WorkSteal live"});
  for (int depth : {3, 5, 7, 9, 11}) {
    std::vector<std::string> row;
    row.push_back(Table::fmt_int(depth));
    row.push_back(Table::fmt_int((1LL << depth) - 1));
    for (auto sched : {SchedKind::Fifo, SchedKind::Lifo, SchedKind::AsyncDf,
                       SchedKind::WorkSteal}) {
      auto opts = bench::sim_opts(sched, 1, 8 << 10,
                                  static_cast<std::uint64_t>(*common.seed));
      RunStats stats = run(opts, [depth] { fork_tree(depth); });
      row.push_back(Table::fmt_int(stats.max_live_threads));
      common.record("depth" + std::to_string(depth), opts, stats);
    }
    table.add_row(row);
  }
  common.emit(table,
              "Figure 1: max simultaneously-active threads, serial execution "
              "(binary fork/join tree)");
  std::puts("(paper: depth-3 tree -> 7 live under FIFO, at most 3 under LIFO/DF)");
  common.write_json();
  return 0;
}
