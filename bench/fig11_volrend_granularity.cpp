// Figure 11: volume-rendering speedup on 8 processors versus thread
// granularity (4x4-pixel tiles per thread), original FIFO scheduler vs the
// new space-efficient scheduler. The paper's shape: too-fine granularity
// loses locality (rays in nearby tiles share volume data, but the
// scheduler spreads them over processors) and the FIFO scheduler suffers
// more; beyond ~130 tiles/thread both lose to load imbalance. The optimum
// sits in the middle (~60 tiles/thread on their machine).
#include <cstdio>

#include "apps/volrend/volrend.h"
#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace dfth;
  bench::Common common("fig11_volrend_granularity",
                       "Figure 11: speedup vs thread granularity (volrend)");
  auto* procs = common.cli.int_opt("procs", 8, "processor count");
  if (!common.parse(argc, argv)) return 0;
  const int p = static_cast<int>(*procs);
  const auto seed = static_cast<std::uint64_t>(*common.seed);

  apps::VolrendConfig cfg;
  cfg.volume_dim = *common.full ? 256 : 128;
  cfg.image_dim = *common.full ? 375 : 192;
  cfg.seed = seed;
  apps::Volume vol(cfg);
  const std::size_t tiles = apps::volrend_tile_count(cfg);

  const double serial_us =
      run(bench::sim_opts(SchedKind::AsyncDf, 1),
          [&] { apps::volrend_serial(vol, cfg); })
          .elapsed_us;
  std::printf("serial: %.3f s over %zu tiles\n", serial_us / 1e6, tiles);

  Table table({"tiles/thread", "threads", "orig sched speedup", "new sched speedup",
               "new cache hit %"});
  for (std::size_t grain : {10, 20, 40, 60, 90, 130, 190, 260}) {
    cfg.tiles_per_thread = grain;
    auto one = [&](SchedKind sched) {
      return run(bench::sim_opts(sched, p, 8 << 10, seed),
                 [&] { apps::volrend_fine(vol, cfg); });
    };
    const RunStats orig = one(SchedKind::Fifo);
    const RunStats fresh = one(SchedKind::AsyncDf);
    common.record("grain" + std::to_string(grain) + " fifo", orig);
    common.record("grain" + std::to_string(grain) + " asyncdf", fresh);
    const double hits =
        100.0 * static_cast<double>(fresh.cache_hits) /
        static_cast<double>(fresh.cache_hits + fresh.cache_misses + 1);
    table.add_row({Table::fmt_int(static_cast<long long>(grain)),
                   Table::fmt_int(static_cast<long long>((tiles + grain - 1) / grain)),
                   Table::fmt(serial_us / orig.elapsed_us, 2),
                   Table::fmt(serial_us / fresh.elapsed_us, 2),
                   Table::fmt(hits, 1)});
  }
  common.emit(table, "Figure 11: volrend speedup vs granularity, p=" +
                         std::to_string(p));
  std::puts(
      "(paper: optimum near 60 tiles/thread; finer granularity hurts "
      "locality — more under the original scheduler — and coarser than "
      "~130 hurts load balance)");

  // §5.3's punchline, implemented: with tree-structured spawning and the
  // locality-aware DfDeques scheduler (the paper's "current work", later
  // published as Narlikar SPAA'99), fine granularity stops hurting — "good
  // space and time performance can be obtained even at the finer
  // granularity that simply amortizes thread operation costs."
  Table tree({"tiles/thread", "AsyncDF speedup", "AsyncDF hit %",
              "DfDeques speedup", "DfDeques hit %", "DfDeques live"});
  for (std::size_t grain : {1, 2, 4, 10, 20, 60}) {
    cfg.tiles_per_thread = grain;
    auto one = [&](SchedKind sched) {
      return run(bench::sim_opts(sched, p, 8 << 10, seed),
                 [&] { apps::volrend_fine_tree(vol, cfg); });
    };
    const RunStats adf = one(SchedKind::AsyncDf);
    const RunStats dfd = one(SchedKind::DfDeques);
    common.record("tree grain" + std::to_string(grain) + " asyncdf", adf);
    common.record("tree grain" + std::to_string(grain) + " dfdeques", dfd);
    auto hits = [](const RunStats& s) {
      return Table::fmt(100.0 * static_cast<double>(s.cache_hits) /
                            static_cast<double>(s.cache_hits + s.cache_misses + 1),
                        1);
    };
    tree.add_row({Table::fmt_int(static_cast<long long>(grain)),
                  Table::fmt(serial_us / adf.elapsed_us, 2), hits(adf),
                  Table::fmt(serial_us / dfd.elapsed_us, 2), hits(dfd),
                  Table::fmt_int(dfd.max_live_threads)});
  }
  common.emit(tree, "§5.3 follow-up: tree-spawned fine threads, AsyncDF vs "
                    "locality-aware DfDeques");
  common.write_json();
  return 0;
}
