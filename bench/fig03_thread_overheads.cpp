// Figure 3: uniprocessor timings (µs) of basic thread operations, bound vs
// unbound. The paper's table was measured on a 167 MHz UltraSPARC under
// Solaris 2.5; we measure OUR library on the host: unbound = dfth fibers
// (user-level, no kernel), bound = dedicated kernel threads, plus the raw
// std::thread cost for reference. The paper's point — user-level operations
// are an order of magnitude cheaper than kernel operations, but still much
// more than a function call — is reproduced by the ratio structure, not the
// absolute values. The simulator's CostModel constants (which ARE the
// paper's values) are printed alongside.
#include <cstdio>
#include <thread>

#include "bench_common.h"
#include "runtime/api.h"
#include "runtime/sync.h"
#include "util/timer.h"

namespace {

using namespace dfth;

double measured_us(int iters, const std::function<void()>& body) {
  Timer timer;
  for (int i = 0; i < iters; ++i) body();
  return timer.elapsed_us() / iters;
}

double create_join_us(bool bound, int iters) {
  double result = 0;
  RuntimeOptions o;
  o.engine = EngineKind::Real;
  o.sched = SchedKind::AsyncDf;
  o.nprocs = 1;
  o.default_stack_size = 8 << 10;
  run(o, [&] {
    // Warm the stack cache so we time creation, not the first mmap.
    Attr attr;
    attr.bound = bound;
    join(spawn([]() -> void* { return nullptr; }, attr));
    result = measured_us(iters, [&] {
      join(spawn([]() -> void* { return nullptr; }, attr));
    });
  });
  return result;
}

double join_exited_us(int iters) {
  double result = 0;
  RuntimeOptions o;
  o.engine = EngineKind::Real;
  o.nprocs = 1;
  o.default_stack_size = 8 << 10;
  run(o, [&] {
    std::vector<Thread> threads;
    threads.reserve(static_cast<std::size_t>(iters));
    for (int i = 0; i < iters; ++i) {
      threads.push_back(spawn([]() -> void* { return nullptr; }));
    }
    yield();  // let them all run to completion
    Timer timer;
    for (auto& t : threads) join(t);
    result = timer.elapsed_us() / iters;
  });
  return result;
}

double semaphore_sync_us(int iters) {
  // Figure 3's "semaphore synchronization": two threads ping-pong through a
  // pair of semaphores; one round trip includes one context switch each way.
  double result = 0;
  RuntimeOptions o;
  o.engine = EngineKind::Real;
  o.nprocs = 1;
  o.default_stack_size = 8 << 10;
  run(o, [&] {
    Semaphore ping(0), pong(0);
    auto t = spawn([&]() -> void* {
      for (int i = 0; i < iters; ++i) {
        ping.acquire();
        pong.release();
      }
      return nullptr;
    });
    Timer timer;
    for (int i = 0; i < iters; ++i) {
      ping.release();
      pong.acquire();
    }
    result = timer.elapsed_us() / iters / 2;  // per one-way sync
    join(t);
  });
  return result;
}

double std_thread_create_join_us(int iters) {
  return measured_us(iters, [] { std::thread([] {}).join(); });
}

double function_call_us(int iters) {
  volatile int sink = 0;
  auto f = [&sink]() { sink = sink + 1; };
  Timer timer;
  for (int i = 0; i < iters * 1000; ++i) f();
  return timer.elapsed_us() / (iters * 1000.0);
}

}  // namespace

int main(int argc, char** argv) {
  bench::Common common("fig03_thread_overheads",
                       "Figure 3: thread operation costs, bound vs unbound");
  auto* iters = common.cli.int_opt("iters", 2000, "timing iterations per row");
  if (!common.parse(argc, argv)) return 0;
  const int n = static_cast<int>(*iters);

  CostModel paper;  // the Figure-3-calibrated constants used by the simulator
  Table table({"operation", "this library (host µs)", "paper/sim model (µs)"});
  auto row = [&](const char* op, double host_us, int digits,
                 const std::string& model) {
    table.add_row({op, Table::fmt(host_us, digits), model});
    common.record_raw(op, "real", 1, host_us);
  };
  row("create+join unbound (cached stack)", create_join_us(false, n), 2,
      Table::fmt(paper.create_unbound_us + paper.join_us, 2));
  row("create+join bound (kernel thread)",
      create_join_us(true, std::max(100, n / 10)), 2,
      Table::fmt(paper.create_bound_us + paper.join_us, 2));
  row("join with exited thread", join_exited_us(n), 3,
      Table::fmt(paper.join_us, 2));
  row("semaphore synchronization", semaphore_sync_us(n), 2,
      Table::fmt(paper.sem_sync_us, 2));
  row("std::thread create+join (reference)",
      std_thread_create_join_us(std::max(100, n / 10)), 2, "-");
  row("function call (reference)", function_call_us(n), 4, "-");
  table.add_row({"fresh stack 8 KB (model)", "-",
                 Table::fmt(paper.stack_fresh_us(8 << 10), 1)});
  table.add_row({"fresh stack 1 MB (model)", "-",
                 Table::fmt(paper.stack_fresh_us(1 << 20), 1)});
  common.emit(table, "Figure 3: thread operation overheads");
  common.write_json();
  std::puts(
      "(paper, 167 MHz UltraSPARC: unbound create 20.5 us; bound ops ~10x "
      "unbound; fresh stacks 200-260 us)");
  return 0;
}
