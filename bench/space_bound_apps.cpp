// Observed side of the static space-bound certification (tools/dfth-check
// --space-bound, DESIGN.md §9): runs the seven paper benchmarks at small
// "quickstart" configurations on the simulator with the AsyncDF scheduler
// (p = 8, K = 32 KB) and records each run's heap high-water mark.
//
// Each app is driven through a named free function (space_matmul, space_fft,
// ...) rather than inline in main: those functions are the analysis *roots*
// the static side walks, so the input buffers the harness df_mallocs are
// charged to S1 exactly like the app's own allocations. The emitted
// SPACE_OBSERVED.json carries, per app, everything the static side needs to
// evaluate the same configuration — root name, parameter bindings for the
// symbols appearing in df_malloc size expressions, and sizeof bindings for
// app-internal types the analyzer cannot see (taken from the compiler where
// the type is visible here, generous constants otherwise). The ctest glue
// (tests/check/run_space_bound_test.py) feeds these to dfth-check and
// asserts static bound >= observed heap_peak for every app.
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "apps/barnes/barnes.h"
#include "apps/dtree/dtree.h"
#include "apps/fft/fft.h"
#include "apps/fmm/fmm.h"
#include "apps/matmul/matmul.h"
#include "apps/spmv/spmv.h"
#include "apps/volrend/volrend.h"
#include "bench_common.h"

namespace dfth::bench {
namespace {

// The certification configuration: must match the --space-procs/--space-quota
// the static side is invoked with (the JSON carries both so the test script
// never hard-codes them).
constexpr int kProcs = 8;
constexpr std::uint64_t kQuota = 32 << 10;

RuntimeOptions quick_opts(std::uint64_t seed) {
  RuntimeOptions o;
  o.engine = EngineKind::Sim;
  o.sched = SchedKind::AsyncDf;
  o.nprocs = kProcs;
  o.mem_quota = kQuota;
  o.seed = seed;
  return o;
}

// -- Analysis roots: one per app ---------------------------------------------
//
// Size-expression symbols bound by the JSON's `params` strings below refer to
// identifiers inside these functions and the app sources they reach (e.g.
// spmv's CsrMatrix charges sizeof(uint32_t) * (rows_ + 1), so rows_ is bound
// to the quickstart row count).

RunStats space_matmul(std::uint64_t seed) {
  apps::MatmulConfig cfg;
  cfg.n = 128;
  cfg.base = 64;
  auto* a = static_cast<double*>(df_malloc(cfg.n * cfg.n * sizeof(double)));
  auto* b = static_cast<double*>(df_malloc(cfg.n * cfg.n * sizeof(double)));
  auto* c = static_cast<double*>(df_malloc(cfg.n * cfg.n * sizeof(double)));
  apps::matmul_fill(a, cfg.n, 1);
  apps::matmul_fill(b, cfg.n, 2);
  const RunStats stats =
      run(quick_opts(seed), [&] { apps::matmul_threaded(a, b, c, cfg); });
  df_free(c);
  df_free(b);
  df_free(a);
  return stats;
}

RunStats space_fft(std::uint64_t seed) {
  const std::size_t n = 4096;
  auto* in = static_cast<apps::Complex*>(df_malloc(sizeof(apps::Complex) * n));
  auto* out = static_cast<apps::Complex*>(df_malloc(sizeof(apps::Complex) * n));
  apps::fft_fill(in, n, seed);
  const RunStats stats = run(quick_opts(seed), [&] {
    apps::FftPlan plan(n);
    plan.execute_threaded(in, out, 16);
  });
  df_free(out);
  df_free(in);
  return stats;
}

RunStats space_dtree(std::uint64_t seed) {
  apps::DtreeConfig cfg;
  cfg.instances = 2000;
  cfg.seed = seed;
  const std::vector<apps::Instance> data = apps::dtree_generate(cfg);
  return run(quick_opts(seed), [&] { apps::dtree_build_threaded(data, cfg); });
}

RunStats space_spmv(std::uint64_t seed) {
  apps::SpmvConfig cfg;
  cfg.rows = 2000;
  cfg.target_nnz = 10000;
  cfg.iterations = 2;
  cfg.seed = seed;
  apps::CsrMatrix m(cfg.rows, cfg.rows);
  apps::spmv_generate(m, cfg);
  auto* v = static_cast<double*>(df_malloc(sizeof(double) * cfg.rows));
  auto* w = static_cast<double*>(df_malloc(sizeof(double) * cfg.rows));
  for (std::size_t i = 0; i < cfg.rows; ++i) {
    v[i] = 1.0;
    w[i] = 0.0;
  }
  const RunStats stats =
      run(quick_opts(seed), [&] { apps::spmv_fine(m, v, w, cfg); });
  df_free(w);
  df_free(v);
  return stats;
}

RunStats space_barnes(std::uint64_t seed) {
  apps::BarnesConfig cfg;
  cfg.bodies = 1024;
  cfg.timesteps = 1;
  cfg.seed = seed;
  std::vector<apps::Body> bodies = apps::barnes_generate(cfg);
  return run(quick_opts(seed),
             [&] { apps::barnes_fine(std::move(bodies), cfg); });
}

RunStats space_fmm(std::uint64_t seed) {
  apps::FmmConfig cfg;
  cfg.particles = 512;
  cfg.levels = 3;
  cfg.terms = 4;
  cfg.chunk = 9;
  cfg.seed = seed;
  std::vector<apps::FmmParticle> particles = apps::fmm_generate(cfg);
  return run(quick_opts(seed), [&] { apps::fmm_threaded(particles, cfg); });
}

RunStats space_volrend(std::uint64_t seed) {
  apps::VolrendConfig cfg;
  cfg.volume_dim = 32;
  cfg.image_dim = 64;
  cfg.tiles_per_thread = 4;
  cfg.seed = seed;
  apps::Volume vol(cfg);
  return run(quick_opts(seed), [&] { apps::volrend_fine(vol, cfg); });
}

// -- Static-side bindings ----------------------------------------------------

struct SpaceApp {
  const char* name;
  const char* root;
  /// k=v symbol bindings for the df_malloc size expressions this root
  /// reaches; values mirror the quickstart configuration above (generous
  /// where the runtime value is data-dependent, e.g. spmv's nnz_).
  std::string params;
  /// T=bytes bindings for sizeof(T) of app-internal types. Real compiler
  /// sizeofs where the type is visible to this TU; padded constants for
  /// types private to an app's .cpp (VL, Cell, Cx).
  std::string sizeofs;
  RunStats (*drive)(std::uint64_t);
};

std::vector<SpaceApp> space_apps() {
  const auto sz = [](std::size_t s) { return std::to_string(s); };
  return {
      {"matmul", "space_matmul", "n=128", "", &space_matmul},
      {"fft", "space_fft", "n=4096,n_=4096",
       "Complex=" + sz(sizeof(apps::Complex)), &space_fft},
      {"dtree", "space_dtree", "n=2000",
       "Instance=" + sz(sizeof(apps::Instance)) + ",VL=16", &space_dtree},
      {"spmv", "space_spmv", "rows=2000,rows_=2000,nnz_=20000", "",
       &space_spmv},
      {"barnes", "space_barnes", "capacity_=4160",
       "Cell=512,Body=" + sz(sizeof(apps::Body)), &space_barnes},
      {"fmm", "space_fmm", "n=128,P=4,chunk_workspace_bytes=8192", "Cx=16",
       &space_fmm},
      {"volrend", "space_volrend", "dim_=32,bricks_=4", "", &space_volrend},
  };
}

}  // namespace
}  // namespace dfth::bench

int main(int argc, char** argv) {
  using namespace dfth;
  bench::Common common("space_bound_apps",
                       "observed heap peaks for the static space-bound gate");
  auto* observed = common.cli.str_opt(
      "observed", "SPACE_OBSERVED.json",
      "observed-side JSON consumed by run_space_bound_test.py");
  if (!common.parse(argc, argv)) return 0;
  const auto seed = static_cast<std::uint64_t>(*common.seed);

  std::vector<bench::SpaceApp> apps = bench::space_apps();
  std::vector<RunStats> stats;
  stats.reserve(apps.size());
  int failures = 0;
  std::printf("-- quickstart runs: AsyncDF, p=%d, K=%llu --\n", bench::kProcs,
              static_cast<unsigned long long>(bench::kQuota));
  for (const bench::SpaceApp& app : apps) {
    const RunStats s = app.drive(seed);
    common.record(std::string(app.name), s, bench::kQuota);
    std::printf("%-8s root=%-14s heap_peak=%-9lld max_live=%-5lld %8.3f s\n",
                app.name, app.root, static_cast<long long>(s.heap_peak),
                static_cast<long long>(s.max_live_threads), s.elapsed_us / 1e6);
    std::fflush(stdout);
    if (s.threads_created == 0 || s.heap_peak <= 0) {
      std::fprintf(stderr, "space_bound_apps: %s produced a degenerate run\n",
                   app.name);
      ++failures;
    }
    stats.push_back(s);
  }

  if (!observed->empty()) {
    std::FILE* f = std::fopen(observed->c_str(), "w");
    if (!f) {
      std::fprintf(stderr, "failed to write %s\n", observed->c_str());
      return 1;
    }
    std::fprintf(f, "{\"procs\": %d, \"quota_bytes\": %llu, \"apps\": [",
                 bench::kProcs, static_cast<unsigned long long>(bench::kQuota));
    for (std::size_t i = 0; i < apps.size(); ++i) {
      std::fprintf(f,
                   "%s\n{\"app\": \"%s\", \"root\": \"%s\", "
                   "\"params\": \"%s\", \"sizeofs\": \"%s\", "
                   "\"heap_peak\": %lld, \"max_live_threads\": %lld, "
                   "\"elapsed_us\": %.3f}",
                   i == 0 ? "" : ",", apps[i].name, apps[i].root,
                   apps[i].params.c_str(), apps[i].sizeofs.c_str(),
                   static_cast<long long>(stats[i].heap_peak),
                   static_cast<long long>(stats[i].max_live_threads),
                   stats[i].elapsed_us);
    }
    std::fprintf(f, "\n]}\n");
    std::fclose(f);
    std::printf("(observed json written to %s)\n", observed->c_str());
  }

  common.write_json();
  return failures == 0 ? 0 : 1;
}
