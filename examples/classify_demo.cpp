// Data-classification demo: trains the decision tree on the synthetic
// dataset with the fine-grained parallel builder (a thread per recursive
// call, nested parallel quicksorts) and reports accuracy plus what the
// scheduler saw — an example of highly irregular, data-dependent
// parallelism where no static partition exists.
//
//   $ ./classify_demo [--instances N] [--procs P] [--sched fifo|asyncdf|...]
#include <cstdio>

#include "apps/dtree/dtree.h"
#include "obs/export.h"
#include "runtime/api.h"
#include "util/cli.h"

using namespace dfth;

int main(int argc, char** argv) {
  Cli cli("classify_demo", "decision-tree training with dynamic parallelism");
  auto* instances = cli.int_opt("instances", 30000, "training instances");
  auto* procs = cli.int_opt("procs", 8, "simulated processors");
  auto* sched = cli.str_opt("sched", "asyncdf", "fifo|lifo|asyncdf|worksteal");
  auto* stats_json = cli.str_opt("stats-json", "", "write RunStats JSON here");
  if (!cli.parse(argc, argv)) return 0;

  apps::DtreeConfig cfg;
  cfg.instances = static_cast<std::size_t>(*instances);
  const auto data = apps::dtree_generate(cfg);

  RuntimeOptions opts;
  opts.engine = EngineKind::Sim;
  opts.sched = sched_kind_from_string(*sched);
  opts.nprocs = static_cast<int>(*procs);
  opts.default_stack_size = 8 << 10;

  std::unique_ptr<apps::DtreeNode> tree;
  const RunStats stats = run(opts, [&] {
    tree = apps::dtree_build_threaded(data, cfg);
  });

  const auto shape = apps::dtree_shape(*tree);
  std::printf("trained on %zu instances (%d continuous attrs)\n", data.size(),
              apps::kDtreeAttrs);
  std::printf("tree: %zu nodes, %zu leaves, depth %d\n", shape.nodes, shape.leaves,
              shape.depth);
  std::printf("training accuracy: %.2f%%\n",
              100.0 * apps::dtree_accuracy(*tree, data));
  std::printf("sched=%s procs=%d: vtime %.1f ms, %llu threads, %lld live peak, "
              "heap peak %.1f MB\n",
              to_string(stats.sched), stats.nprocs, stats.elapsed_us / 1e3,
              static_cast<unsigned long long>(stats.threads_created),
              static_cast<long long>(stats.max_live_threads),
              static_cast<double>(stats.heap_peak) / (1 << 20));
  if (!stats_json->empty()) obs::write_stats_json(stats, nullptr, *stats_json);
  return 0;
}
