// Quickstart: the DFThreads API in one file.
//
//   $ ./quickstart
//
// Spawns a dynamic, irregular fork/join computation (a naive parallel
// Fibonacci plus a tracked allocation), runs it on the simulated
// 8-processor machine under the paper's space-efficient scheduler, and
// prints what the runtime observed. Flip `opts.sched` to SchedKind::Fifo to
// watch the live-thread count explode — the paper's core observation.
#include <cstdio>

#include "obs/export.h"
#include "runtime/api.h"
#include "runtime/sync.h"
#include "util/cli.h"

using namespace dfth;

namespace {

// Each call level forks one child thread — dynamic parallelism with no
// mapping of work to processors anywhere in the code.
long long fib(int n) {
  annotate_work(10);  // tell the simulator this node costs ~10 "flops"
  if (n < 2) return n;
  Thread child = spawn([n]() -> void* {
    return reinterpret_cast<void*>(fib(n - 1));
  });
  const long long b = fib(n - 2);
  const long long a = reinterpret_cast<long long>(join(child));
  return a + b;
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli("quickstart", "the DFThreads API in one file");
  auto* stats_json = cli.str_opt("stats-json", "", "write RunStats JSON here");
  if (!cli.parse(argc, argv)) return 0;

  RuntimeOptions opts;
  opts.engine = EngineKind::Sim;      // deterministic virtual 8-way SMP
  opts.sched = SchedKind::AsyncDf;    // the paper's space-efficient scheduler
  opts.nprocs = 8;
  opts.default_stack_size = 8 << 10;  // the paper's reduced default
  opts.mem_quota = 32 << 10;          // memory quota K

  long long result = 0;
  RunStats stats = run(opts, [&result] {
    // Tracked allocation: df_malloc charges the thread's memory quota and
    // shows up in the run's heap high-water mark.
    void* scratch = df_malloc(1 << 20);

    // Mutexes, condition variables, semaphores and barriers all work under
    // every scheduler — blocked threads keep their place in the ready order.
    Mutex mu;
    {
      LockGuard lock(mu);
      result = fib(18);
    }
    df_free(scratch);
  });

  std::printf("fib(18) = %lld\n", result);
  std::printf("engine=%s sched=%s procs=%d\n", to_string(stats.engine),
              to_string(stats.sched), stats.nprocs);
  std::printf("threads created:        %llu\n",
              static_cast<unsigned long long>(stats.threads_created));
  std::printf("max simultaneously live: %lld\n",
              static_cast<long long>(stats.max_live_threads));
  std::printf("virtual time:           %.3f ms on %d processors\n",
              stats.elapsed_us / 1e3, stats.nprocs);
  std::printf("heap high-water:        %.2f MB\n",
              static_cast<double>(stats.heap_peak) / (1 << 20));
  if (!stats_json->empty()) obs::write_stats_json(stats, nullptr, *stats_json);
  return 0;
}
