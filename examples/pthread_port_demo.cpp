// Porting demo: a classic Pthreads-style program — written with C call
// shapes, function pointers and void* plumbing, exactly as 1998 code was —
// running on DFThreads through the source-compatibility layer. The only
// changes from a real pthread program are the header and the dfth_ prefix
// (or define DFTH_PTHREAD_ALIASES before including to keep the old names).
//
//   $ ./pthread_port_demo [--workers N] [--sched fifo|asyncdf|dfdeques]
//
// The program itself is the textbook bounded-buffer pipeline: producers
// push work items through a condition-variable-guarded ring to consumers.
#include <cstdio>
#include <cstring>

#include "compat/dfth_pthread.h"
#include "obs/export.h"
#include "util/cli.h"

namespace {

constexpr int kRing = 8;

struct Pipeline {
  dfth_pthread_mutex_t mu;
  dfth_pthread_cond_t not_empty;
  dfth_pthread_cond_t not_full;
  long long ring[kRing];
  int head = 0, count = 0;
  int produced = 0, to_produce = 0;
  int producers_done = 0, producers = 0;
  long long consumed_sum = 0;
};

void* producer(void* arg) {
  auto* p = static_cast<Pipeline*>(arg);
  while (true) {
    dfth_pthread_mutex_lock(&p->mu);
    if (p->produced >= p->to_produce) {
      if (++p->producers_done == p->producers) {
        dfth_pthread_cond_broadcast(&p->not_empty);  // wake the consumers
      }
      dfth_pthread_mutex_unlock(&p->mu);
      return nullptr;
    }
    while (p->count == kRing) dfth_pthread_cond_wait(&p->not_full, &p->mu);
    const long long item = ++p->produced;
    p->ring[(p->head + p->count) % kRing] = item;
    ++p->count;
    dfth_pthread_cond_signal(&p->not_empty);
    dfth_pthread_mutex_unlock(&p->mu);
  }
}

void* consumer(void* arg) {
  auto* p = static_cast<Pipeline*>(arg);
  long long local = 0;
  while (true) {
    dfth_pthread_mutex_lock(&p->mu);
    while (p->count == 0 && p->producers_done < p->producers) {
      dfth_pthread_cond_wait(&p->not_empty, &p->mu);
    }
    if (p->count == 0) {
      p->consumed_sum += local;
      dfth_pthread_mutex_unlock(&p->mu);
      return nullptr;
    }
    local += p->ring[p->head];
    p->head = (p->head + 1) % kRing;
    --p->count;
    dfth_pthread_cond_signal(&p->not_full);
    dfth_pthread_mutex_unlock(&p->mu);
  }
}

}  // namespace

int main(int argc, char** argv) {
  dfth::Cli cli("pthread_port_demo", "a 1998-style pthread program, ported");
  auto* workers = cli.int_opt("workers", 4, "producers and consumers each");
  auto* items = cli.int_opt("items", 5000, "work items to push through");
  auto* sched = cli.str_opt("sched", "asyncdf", "scheduler to run it under");
  auto* stats_json = cli.str_opt("stats-json", "", "write RunStats JSON here");
  if (!cli.parse(argc, argv)) return 0;

  dfth::RuntimeOptions opts;
  opts.engine = dfth::EngineKind::Sim;
  opts.sched = dfth::sched_kind_from_string(*sched);
  opts.nprocs = 8;
  opts.default_stack_size = 8 << 10;

  long long sum = 0;
  const dfth::RunStats stats = dfth::run(opts, [&] {
    Pipeline pipe;
    pipe.to_produce = static_cast<int>(*items);
    pipe.producers = static_cast<int>(*workers);

    const int n = static_cast<int>(*workers);
    std::vector<dfth_pthread_t> threads(static_cast<std::size_t>(2 * n));
    for (int i = 0; i < n; ++i) {
      dfth_pthread_create(&threads[static_cast<std::size_t>(i)], nullptr,
                          producer, &pipe);
      dfth_pthread_create(&threads[static_cast<std::size_t>(n + i)], nullptr,
                          consumer, &pipe);
    }
    for (auto& t : threads) dfth_pthread_join(t, nullptr);
    sum = pipe.consumed_sum;
  });

  const long long expect =
      static_cast<long long>(*items) * (*items + 1) / 2;
  std::printf("pipeline moved %lld items, checksum %lld (%s)\n",
              static_cast<long long>(*items), sum,
              sum == expect ? "correct" : "WRONG");
  std::printf("under %s on %d simulated procs: %.2f ms virtual, %lld live "
              "threads peak\n",
              to_string(stats.sched), stats.nprocs, stats.elapsed_us / 1e3,
              static_cast<long long>(stats.max_live_threads));
  if (!stats_json->empty()) {
    dfth::obs::write_stats_json(stats, nullptr, *stats_json);
  }
  return sum == expect ? 0 : 1;
}
