// N-body demo: Barnes-Hut on the runtime, comparing the hand-partitioned
// coarse-grained version (costzones + barriers, the SPLASH-2 style) with
// the fine-grained rewrite (a thread per unit of work, no partitioning) —
// the comparison at the heart of the paper's Figure 8.
//
//   $ ./nbody_demo [--bodies N] [--steps S] [--procs P]
#include <cstdio>

#include "apps/barnes/barnes.h"
#include "obs/export.h"
#include "runtime/api.h"
#include "util/cli.h"

using namespace dfth;

int main(int argc, char** argv) {
  Cli cli("nbody_demo", "Barnes-Hut N-body: coarse vs fine-grained threading");
  auto* bodies_n = cli.int_opt("bodies", 4096, "number of bodies (Plummer model)");
  auto* steps = cli.int_opt("steps", 2, "timesteps");
  auto* procs = cli.int_opt("procs", 8, "simulated processors");
  auto* stats_json =
      cli.str_opt("stats-json", "", "write fine-grained run's RunStats JSON");
  if (!cli.parse(argc, argv)) return 0;

  apps::BarnesConfig cfg;
  cfg.bodies = static_cast<std::size_t>(*bodies_n);
  cfg.timesteps = static_cast<int>(*steps);
  auto bodies = apps::barnes_generate(cfg);
  const double e0 = cfg.bodies <= 5000
                        ? apps::barnes_total_energy(bodies, cfg.eps)
                        : 0.0;

  RuntimeOptions opts;
  opts.engine = EngineKind::Sim;
  opts.nprocs = static_cast<int>(*procs);
  opts.default_stack_size = 8 << 10;

  // Serial baseline.
  apps::BarnesResult serial_result;
  opts.sched = SchedKind::AsyncDf;
  const RunStats serial = run(opts, [&] {
    serial_result = apps::barnes_serial(bodies, cfg);
  });

  // Coarse-grained: costzones partitioning, one thread per processor.
  opts.sched = SchedKind::Fifo;  // coarse code doesn't care about the policy
  apps::BarnesResult coarse_result;
  const RunStats coarse = run(opts, [&] {
    coarse_result = apps::barnes_coarse(bodies, cfg, opts.nprocs);
  });

  // Fine-grained: a thread per subtree/chunk, scheduler balances the load.
  opts.sched = SchedKind::AsyncDf;
  apps::BarnesResult fine_result;
  const RunStats fine = run(opts, [&] {
    fine_result = apps::barnes_fine(bodies, cfg);
  });

  std::printf("bodies=%zu steps=%d procs=%d\n", cfg.bodies, cfg.timesteps,
              opts.nprocs);
  std::printf("%-22s %10s %10s %12s\n", "version", "vtime(ms)", "speedup",
              "live threads");
  std::printf("%-22s %10.1f %10s %12s\n", "serial", serial.elapsed_us / 1e3, "-",
              "-");
  std::printf("%-22s %10.1f %10.2f %12lld\n", "coarse (costzones)",
              coarse.elapsed_us / 1e3, serial.elapsed_us / coarse.elapsed_us,
              static_cast<long long>(coarse.max_live_threads));
  std::printf("%-22s %10.1f %10.2f %12lld\n", "fine (AsyncDF)",
              fine.elapsed_us / 1e3, serial.elapsed_us / fine.elapsed_us,
              static_cast<long long>(fine.max_live_threads));
  std::printf("interactions: serial=%llu coarse=%llu fine=%llu (must match)\n",
              static_cast<unsigned long long>(serial_result.interactions),
              static_cast<unsigned long long>(coarse_result.interactions),
              static_cast<unsigned long long>(fine_result.interactions));
  if (e0 != 0.0) {
    const double e1 = apps::barnes_total_energy(fine_result.bodies, cfg.eps);
    std::printf("energy drift over %d steps: %.3f%%\n", cfg.timesteps,
                100.0 * (e1 - e0) / std::abs(e0));
  }
  if (!stats_json->empty()) obs::write_stats_json(fine, nullptr, *stats_json);
  return 0;
}
