// FFT demo: the Figure 10 experiment in miniature — transform a signal
// with p threads vs many threads and see how sensitivity to the processor
// count disappears, plus a round-trip check through the inverse transform.
//
//   $ ./fft_demo --log2n 16 --procs 6
#include <cmath>
#include <cstdio>
#include <vector>

#include "apps/fft/fft.h"
#include "obs/export.h"
#include "runtime/api.h"
#include "util/cli.h"

using namespace dfth;

int main(int argc, char** argv) {
  Cli cli("fft_demo", "1-D complex FFT, p threads vs many threads");
  auto* lg = cli.int_opt("log2n", 18, "transform size exponent");
  auto* procs = cli.int_opt("procs", 6, "simulated processors (try odd counts!)");
  auto* stats_json = cli.str_opt("stats-json", "", "write RunStats JSON here");
  if (!cli.parse(argc, argv)) return 0;
  const std::size_t n = std::size_t{1} << *lg;
  const int p = static_cast<int>(*procs);

  std::vector<apps::Complex> in(n), out(n), back(n);
  apps::fft_fill(in.data(), n, 2026);

  RuntimeOptions opts;
  opts.engine = EngineKind::Sim;
  opts.sched = SchedKind::AsyncDf;
  opts.nprocs = p;
  opts.default_stack_size = 8 << 10;

  apps::FftPlan plan(n), inverse(n, /*inverse=*/true);
  const double t_p = run(opts, [&] {
    plan.execute_threaded(in.data(), out.data(), p);
  }).elapsed_us;
  const int many = 64;
  const RunStats many_stats = run(opts, [&] {
    plan.execute_threaded(in.data(), out.data(), many);
  });
  const double t_many = many_stats.elapsed_us;
  if (!stats_json->empty()) {
    obs::write_stats_json(many_stats, nullptr, *stats_json);
  }

  inverse.execute_serial(out.data(), back.data());
  double worst = 0;
  for (std::size_t i = 0; i < n; ++i) {
    worst = std::max(worst, std::abs(back[i] / static_cast<double>(n) - in[i]));
  }

  std::printf("N = 2^%lld, %d simulated processors\n",
              static_cast<long long>(*lg), p);
  std::printf("  %3d threads: %.3f ms\n", p, t_p / 1e3);
  std::printf("  %3d threads: %.3f ms  (%+.1f%%)\n", many, t_many / 1e3,
              100.0 * (t_many - t_p) / t_p);
  std::printf("round-trip max error: %.2e\n", worst);
  std::puts(
      "(with p a power of two the p-thread version wins slightly; with odd p "
      "the many-thread version load-balances better — the paper's Figure 10)");
  return 0;
}
