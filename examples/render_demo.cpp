// Volume-rendering demo: ray casts the procedural CT head with the
// fine-grained renderer and writes a PGM image. Use --tiles-per-thread to
// play with the Figure 11 granularity knob and watch the locality model's
// cache-hit rate move.
//
//   $ ./render_demo --out head.pgm
#include <cstdio>

#include "apps/volrend/volrend.h"
#include "obs/export.h"
#include "runtime/api.h"
#include "util/cli.h"

using namespace dfth;

int main(int argc, char** argv) {
  Cli cli("render_demo", "ray-casting volume renderer");
  auto* vol_dim = cli.int_opt("volume", 128, "volume edge (power of two)");
  auto* img_dim = cli.int_opt("image", 256, "image edge in pixels");
  auto* grain = cli.int_opt("tiles-per-thread", 64, "Fig 11 granularity knob");
  auto* procs = cli.int_opt("procs", 8, "simulated processors");
  auto* out = cli.str_opt("out", "head.pgm", "output PGM path");
  auto* stats_json = cli.str_opt("stats-json", "", "write RunStats JSON here");
  if (!cli.parse(argc, argv)) return 0;

  apps::VolrendConfig cfg;
  cfg.volume_dim = static_cast<std::size_t>(*vol_dim);
  cfg.image_dim = static_cast<std::size_t>(*img_dim);
  cfg.tiles_per_thread = static_cast<std::size_t>(*grain);
  apps::Volume vol(cfg);

  RuntimeOptions opts;
  opts.engine = EngineKind::Sim;
  opts.sched = SchedKind::AsyncDf;
  opts.nprocs = static_cast<int>(*procs);
  opts.default_stack_size = 8 << 10;

  apps::Image img;
  const RunStats stats = run(opts, [&] { img = apps::volrend_fine(vol, cfg); });

  if (!apps::volrend_write_pgm(img, cfg.image_dim, out->c_str())) {
    std::fprintf(stderr, "failed to write %s\n", out->c_str());
    return 1;
  }
  const double hit_rate =
      100.0 * static_cast<double>(stats.cache_hits) /
      static_cast<double>(stats.cache_hits + stats.cache_misses + 1);
  std::printf("rendered %zux%zu image of a %zu^3 volume -> %s\n", cfg.image_dim,
              cfg.image_dim, cfg.volume_dim, out->c_str());
  std::printf("%zu tiles, %zu tiles/thread, %llu threads, vtime %.1f ms on %d "
              "procs, locality hit rate %.1f%%\n",
              apps::volrend_tile_count(cfg), cfg.tiles_per_thread,
              static_cast<unsigned long long>(stats.threads_created),
              stats.elapsed_us / 1e3, stats.nprocs, hit_rate);
  if (!stats_json->empty()) obs::write_stats_json(stats, nullptr, *stats_json);
  return 0;
}
