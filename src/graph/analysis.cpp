#include "graph/analysis.h"

#include <algorithm>
#include <cstdio>
#include <unordered_map>
#include <vector>

#include "util/check.h"

namespace dfth {

GraphSummary analyze(const Graph& graph) {
  GraphSummary out;
  const auto n = graph.segments.size();
  out.segment_count = static_cast<std::uint32_t>(n);
  if (n == 0) return out;

  // T1, allocation volume, thread census.
  std::unordered_map<std::uint64_t, std::uint32_t> thread_depth;  // fork nesting
  for (const auto& seg : graph.segments) {
    out.total_ops += seg.ops;
    if (seg.alloc_bytes > 0) out.total_alloc_bytes += seg.alloc_bytes;
    thread_depth.emplace(seg.thread_id, 1);
  }
  out.thread_count = static_cast<std::uint32_t>(thread_depth.size());

  // Longest path by ops. Segment indices are topological by construction;
  // verify on the fly (DFTH_DCHECK) and run the DP over incoming edges.
  std::vector<std::uint64_t> path_ops(n);
  std::vector<std::uint32_t> path_len(n);
  for (std::size_t i = 0; i < n; ++i) {
    path_ops[i] = graph.segments[i].ops;
    path_len[i] = 1;
  }
  for (const auto& e : graph.edges) {
    DFTH_DCHECK(e.from < e.to);
    // Edges arrive ordered by creation, which interleaves with segment
    // creation; process in a second pass sorted by target instead.
  }
  // Group incoming edges by target, then sweep targets in index order.
  std::vector<GraphEdge> edges = graph.edges;
  std::sort(edges.begin(), edges.end(),
            [](const GraphEdge& a, const GraphEdge& b) { return a.to < b.to; });
  for (const auto& e : edges) {
    const auto cand_ops = path_ops[e.from] + graph.segments[e.to].ops;
    if (cand_ops > path_ops[e.to] ||
        (cand_ops == path_ops[e.to] && path_len[e.from] + 1 > path_len[e.to])) {
      path_ops[e.to] = cand_ops;
      path_len[e.to] = path_len[e.from] + 1;
    }
    // Fork edges define thread nesting depth (serial DFS live-thread count).
    if (e.kind == EdgeKind::Fork) {
      const auto parent_tid = graph.segments[e.from].thread_id;
      const auto child_tid = graph.segments[e.to].thread_id;
      auto it = thread_depth.find(parent_tid);
      if (it != thread_depth.end()) {
        auto& child_depth = thread_depth[child_tid];
        child_depth = std::max(child_depth, it->second + 1);
      }
    }
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (path_ops[i] > out.span_ops) {
      out.span_ops = path_ops[i];
      out.span_segments = path_len[i];
    }
  }
  for (const auto& [tid, depth] : thread_depth) {
    (void)tid;
    out.serial_live_depth = std::max(out.serial_live_depth, depth);
  }
  out.avg_parallelism = out.span_ops
                            ? static_cast<double>(out.total_ops) /
                                  static_cast<double>(out.span_ops)
                            : 0.0;
  return out;
}

std::string to_dot(const Graph& graph) {
  std::string out = "digraph computation {\n  rankdir=TB;\n  node [shape=circle];\n";
  char buf[160];
  for (std::size_t i = 0; i < graph.segments.size(); ++i) {
    const auto& seg = graph.segments[i];
    std::snprintf(buf, sizeof buf,
                  "  s%zu [label=\"t%llu\\n%llu ops\"];\n", i,
                  static_cast<unsigned long long>(seg.thread_id),
                  static_cast<unsigned long long>(seg.ops));
    out += buf;
  }
  for (const auto& e : graph.edges) {
    const char* style = e.kind == EdgeKind::Join ? "dashed"
                        : e.kind == EdgeKind::Fork ? "solid"
                                                   : "dotted";
    std::snprintf(buf, sizeof buf, "  s%u -> s%u [style=%s];\n", e.from, e.to, style);
    out += buf;
  }
  out += "}\n";
  return out;
}

}  // namespace dfth
