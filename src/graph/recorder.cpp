#include "graph/recorder.h"

#include "util/check.h"

namespace dfth {
namespace {
Recorder* g_recorder = nullptr;
}

Recorder* active_recorder() { return g_recorder; }

namespace detail {
void set_recorder(Recorder* r) { g_recorder = r; }
}  // namespace detail

Recorder::ThreadRec& Recorder::rec_for(std::uint64_t tid) {
  if (tid >= tid_to_index_.size()) tid_to_index_.resize(tid + 1, -1);
  std::int64_t idx = tid_to_index_[tid];
  if (idx < 0) {
    idx = static_cast<std::int64_t>(threads_.size());
    threads_.push_back(ThreadRec{tid, -1, -1});
    tid_to_index_[tid] = idx;
  }
  return threads_[static_cast<std::size_t>(idx)];
}

std::uint32_t Recorder::open_new_segment(ThreadRec& rec, EdgeKind incoming_kind,
                                         std::int32_t extra_pred) {
  const auto seg = static_cast<std::uint32_t>(graph_.segments.size());
  graph_.segments.push_back(GraphSegment{rec.tid, 0, 0});
  if (rec.open_segment >= 0) {
    graph_.edges.push_back(
        {static_cast<std::uint32_t>(rec.open_segment), seg, EdgeKind::Continuation});
  }
  if (extra_pred >= 0) {
    graph_.edges.push_back({static_cast<std::uint32_t>(extra_pred), seg, incoming_kind});
  }
  rec.open_segment = static_cast<std::int32_t>(seg);
  rec.last_segment = rec.open_segment;
  return seg;
}

void Recorder::on_thread_start(std::uint64_t tid, std::uint64_t parent_tid) {
  std::lock_guard<std::mutex> lock(mu_);
  std::int32_t fork_pred = -1;
  if (parent_tid != 0) {
    ThreadRec& parent = rec_for(parent_tid);
    // The fork splits the parent's current segment: remember the forking
    // segment, then open the parent's continuation.
    fork_pred = parent.open_segment;
    open_new_segment(parent, EdgeKind::Continuation, -1);
  }
  ThreadRec& child = rec_for(tid);
  DFTH_CHECK_MSG(child.open_segment < 0, "thread started twice");
  open_new_segment(child, EdgeKind::Fork, fork_pred);
}

void Recorder::on_work(std::uint64_t tid, std::uint64_t ops) {
  std::lock_guard<std::mutex> lock(mu_);
  ThreadRec& rec = rec_for(tid);
  if (rec.open_segment < 0) open_new_segment(rec, EdgeKind::Continuation, -1);
  graph_.segments[static_cast<std::size_t>(rec.open_segment)].ops += ops;
}

void Recorder::on_alloc(std::uint64_t tid, std::int64_t bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  ThreadRec& rec = rec_for(tid);
  if (rec.open_segment < 0) open_new_segment(rec, EdgeKind::Continuation, -1);
  graph_.segments[static_cast<std::size_t>(rec.open_segment)].alloc_bytes += bytes;
}

void Recorder::on_join(std::uint64_t target_tid, std::uint64_t joiner_tid) {
  std::lock_guard<std::mutex> lock(mu_);
  ThreadRec& target = rec_for(target_tid);
  ThreadRec& joiner = rec_for(joiner_tid);
  open_new_segment(joiner, EdgeKind::Join, target.last_segment);
}

Graph Recorder::take() {
  std::lock_guard<std::mutex> lock(mu_);
  Graph out = std::move(graph_);
  graph_ = Graph{};
  threads_.clear();
  tid_to_index_.clear();
  return out;
}

}  // namespace dfth
