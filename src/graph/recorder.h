// Computation-graph recorder.
//
// Section 2 of the paper reasons about programs via their computation
// graphs (Figure 1): nodes are sequential chunks of a thread, solid edges
// are forks, dashed edges are joins. This module records exactly that DAG
// while a program runs (under either engine), so tests and benches can
// compute total work T1, critical-path work (span), average parallelism,
// and check schedule properties like Brent's bound and the AsyncDF space
// bound against ground truth.
//
// Model: each thread is a chain of *segments* split at fork and join
// points. Edges:
//   * continuation: segment i -> segment i+1 of the same thread,
//   * fork: forking segment -> first segment of the child,
//   * join: last segment of the exited thread -> segment after the join.
// Segment weights are the annotate_work() ops and net df_malloc bytes
// accrued while the segment was open. Segments are created in a valid
// topological order by construction.
//
// The recorder is attached by RuntimeOptions::record_graph and driven from
// the API layer; it is mutex-protected for the real engine.
#pragma once

#include <cstdint>
#include <mutex>
#include <vector>

namespace dfth {

enum class EdgeKind : std::uint8_t { Continuation, Fork, Join };

struct GraphSegment {
  std::uint64_t thread_id = 0;
  std::uint64_t ops = 0;          ///< annotated work units
  std::int64_t alloc_bytes = 0;   ///< net df_malloc - df_free while open
};

struct GraphEdge {
  std::uint32_t from = 0;
  std::uint32_t to = 0;
  EdgeKind kind = EdgeKind::Continuation;
};

struct Graph {
  std::vector<GraphSegment> segments;  ///< index order is topological
  std::vector<GraphEdge> edges;
};

class Recorder {
 public:
  /// Thread `tid` enters the system; `parent_tid` is 0 for the main thread.
  void on_thread_start(std::uint64_t tid, std::uint64_t parent_tid);

  void on_work(std::uint64_t tid, std::uint64_t ops);
  void on_alloc(std::uint64_t tid, std::int64_t bytes);

  /// `joiner` observed the exit of `target` (join edge).
  void on_join(std::uint64_t target_tid, std::uint64_t joiner_tid);

  /// Extracts the recorded graph (recorder becomes empty).
  Graph take();

 private:
  struct ThreadRec {
    std::uint64_t tid = 0;
    std::int32_t open_segment = -1;  ///< index into graph_.segments
    std::int32_t last_segment = -1;  ///< final segment (set implicitly)
  };

  // Finds/creates per-thread record; caller holds mu_.
  ThreadRec& rec_for(std::uint64_t tid);
  std::uint32_t open_new_segment(ThreadRec& rec, EdgeKind incoming_kind,
                                 std::int32_t extra_pred);

  std::mutex mu_;
  Graph graph_;
  std::vector<ThreadRec> threads_;  // indexed lookup by tid via map below
  std::vector<std::int64_t> tid_to_index_;
};

/// Recorder attached to the active run (nullptr when record_graph is off).
Recorder* active_recorder();
namespace detail {
void set_recorder(Recorder* r);
}

}  // namespace dfth
