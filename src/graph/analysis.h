// Work/span analysis of recorded computation graphs.
//
// T1 (total work) and T∞ (critical-path work, "D" in the paper's space
// bound S1 + O(p·D)) bound any greedy schedule via Brent's theorem:
//   T1/p  <=  Tp  <=  T1/p + T∞.
// Property tests check the simulator against these bounds; benches report
// average parallelism (T1/T∞) so figure shapes can be sanity-checked.
#pragma once

#include <cstdint>
#include <string>

#include "graph/recorder.h"

namespace dfth {

struct GraphSummary {
  std::uint64_t total_ops = 0;        ///< T1 in work units
  std::uint64_t span_ops = 0;         ///< T∞: heaviest path by ops
  std::uint32_t span_segments = 0;    ///< node count along that path
  std::uint32_t segment_count = 0;
  std::uint32_t thread_count = 0;
  std::int64_t total_alloc_bytes = 0; ///< sum of positive net allocations
  double avg_parallelism = 0.0;       ///< T1 / T∞

  /// Maximum number of threads simultaneously live in a serial depth-first
  /// execution — the paper's `d` ("as many as d simultaneously active
  /// threads" for a LIFO/DF schedule).
  std::uint32_t serial_live_depth = 0;
};

/// Computes the summary; `segments` index order must be topological (the
/// Recorder guarantees this).
GraphSummary analyze(const Graph& graph);

/// Graphviz DOT rendering (fork edges solid, join edges dashed, as in the
/// paper's Figure 1).
std::string to_dot(const Graph& graph);

}  // namespace dfth
