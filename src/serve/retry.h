// Caller-side retry policy for rejected requests: capped exponential
// backoff with deterministic full jitter.
//
// The server never retries — a rejection (queue-full, shed, admission) is a
// terminal transition and the *client* decides whether to resubmit. That
// keeps the exactly-once-outcome invariant trivial (each submit attempt is
// its own request lifecycle) and puts the pacing decision where the load
// originates.
//
// Jitter is full-jitter (uniform in [0, cap]) but *deterministic*: mixed
// from (seed, request id, attempt) with splitmix64, so a fixed-seed soak —
// and its recorded replay — schedules byte-identical retry times. Thundering
// herds are still broken up because ids differ.
#pragma once

#include <cstdint>

#include "serve/request.h"
#include "util/rng.h"

namespace dfth::serve {

struct RetryPolicy {
  int max_attempts = 4;                      ///< total submits, first included
  std::uint64_t base_backoff_ns = 1'000'000;  ///< cap after attempt 0
  std::uint64_t max_backoff_ns = 64'000'000;  ///< exponential growth ceiling
};

/// Whether `r`'s rejection is worth another submit: only kRejected outcomes
/// retry (a deadline-expired request's latency budget is already spent),
/// and only while attempts remain.
inline bool should_retry(const RetryPolicy& p, const Request& r) {
  return r.outcome == Outcome::kRejected && r.attempt + 1 < p.max_attempts;
}

/// Backoff before attempt `attempt` (1-based for the first retry): uniform
/// in [0, min(max, base << (attempt-1))], deterministically jittered.
inline std::uint64_t backoff_ns(const RetryPolicy& p, std::uint64_t request_id,
                                int attempt, std::uint64_t seed) {
  if (attempt <= 0) return 0;
  const int shift = attempt - 1 > 30 ? 30 : attempt - 1;
  std::uint64_t cap = p.base_backoff_ns << shift;
  if (cap > p.max_backoff_ns || cap < p.base_backoff_ns) cap = p.max_backoff_ns;
  std::uint64_t mix = seed ^ (request_id * 0x9e3779b97f4a7c15ull) ^
                      (static_cast<std::uint64_t>(attempt) << 56);
  const std::uint64_t r = splitmix64(mix);
  return cap == 0 ? 0 : r % (cap + 1);
}

}  // namespace dfth::serve
