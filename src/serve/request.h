// A request flowing through the serving front-end (src/serve/server.h).
//
// Requests are caller-owned: the client allocates one (typically from an
// arena that outlives the run), fills endpoint/submit fields, and hands a
// pointer through the bounded ingress ring. The server never frees one.
// Exactly-once termination: every submitted request ends in exactly one of
// {kCompleted, kRejected, kExpired}; `outcome` is written once, by the
// server, before on_done fires — the acceptance invariant the soak checks.
#pragma once

#include <atomic>
#include <cstdint>

#include "threads/cancel.h"

namespace dfth::serve {

/// Terminal states. kRejected covers both shed tiers and admission-control
/// rejections (RejectReason says which); kExpired covers deadline expiry
/// both while queued and while running.
enum class Outcome : std::uint8_t {
  kPending = 0,  ///< not yet terminal (in queue or running)
  kCompleted,
  kRejected,
  kExpired,
};

/// Why a kRejected request was turned away — drives the caller's retry
/// decision (all three are transient, but shed classes may prefer to give
/// up sooner) and the soak's rejection breakdown.
enum class RejectReason : std::uint8_t {
  kNone = 0,
  kQueueFull,   ///< ingress ring full at submit (client-side, synchronous)
  kShed,        ///< overload tier turned this priority class away
  kAdmission,   ///< no tracked-heap headroom for the endpoint's space bound
};

const char* to_string(Outcome o);
const char* to_string(RejectReason r);

struct Request {
  std::uint64_t id = 0;
  int endpoint = 0;        ///< index into the server's EndpointSpec table
  int attempt = 0;         ///< 0 on first submit; caller bumps on retry

  std::uint64_t submit_ns = 0;  ///< engine clock at submit (server fills)
  std::uint64_t admit_ns = 0;   ///< engine clock when admitted (0 if never)
  std::uint64_t finish_ns = 0;  ///< engine clock at the terminal transition

  Outcome outcome = Outcome::kPending;
  RejectReason reject = RejectReason::kNone;

  /// Cancellation scope for the request's whole spawn subtree: the server
  /// arms deadline_ns = submit_ns + endpoint deadline, wires alloc_charge
  /// at bytes_live, and passes the token through Attr::cancel on the root
  /// spawn — every descendant inherits it.
  CancelToken token;

  /// Shadow accounting of the request's live tracked-heap bytes, charged by
  /// df_malloc/df_free through token.alloc_charge. Must be zero after the
  /// terminal transition (leak invariant, asserted by tests even on the
  /// deadline-expiry drain path).
  std::atomic<std::int64_t> bytes_live{0};

  void reset_for_retry() {
    submit_ns = admit_ns = finish_ns = 0;
    outcome = Outcome::kPending;
    reject = RejectReason::kNone;
    token.cancelled.store(false, std::memory_order_relaxed);
    token.deadline_ns = 0;
  }
};

inline const char* to_string(Outcome o) {
  switch (o) {
    case Outcome::kPending: return "pending";
    case Outcome::kCompleted: return "completed";
    case Outcome::kRejected: return "rejected";
    case Outcome::kExpired: return "deadline-expired";
  }
  return "?";
}

inline const char* to_string(RejectReason r) {
  switch (r) {
    case RejectReason::kNone: return "none";
    case RejectReason::kQueueFull: return "queue-full";
    case RejectReason::kShed: return "shed";
    case RejectReason::kAdmission: return "admission";
  }
  return "?";
}

}  // namespace dfth::serve
