// Long-lived request-serving front-end over the DFThreads runtime.
//
// Shape of a serving run (bench/serve_soak.cpp is the reference harness):
//
//   dfth::run(opts, [&] {
//     serve::Server server(cfg, endpoints);
//     dfth::Thread pump = dfth::spawn([&] { server.pump(); return nullptr; });
//     ... client fibers: server.submit(req) per arrival, retry on reject ...
//     server.stop();
//     dfth::join(pump);
//   });
//
// Clients (any fiber, both engines) push caller-owned Request pointers
// through a bounded lock-free MPSC ring (ingress.h). One pump fiber pops,
// applies the overload tier and the K-driven admission check
// (admission.h), and launches each admitted request as a detached root
// spawn whose Attr::cancel carries the request's deadline token — the
// engine then checks the deadline at every dispatch of the subtree and the
// handler's code drains cooperatively via dfth::cancel_requested().
//
// Overload shedding is a three-tier ladder with hysteresis, driven by
// ingress depth and tracked-heap RSS:
//
//   kAccept     -> everything proceeds to admission
//   kShedLow    -> endpoints with priority >= shed_priority_floor are
//                  rejected (RejectReason::kShed); critical classes proceed
//   kDrainOnly  -> every popped request is rejected; only in-flight work
//                  and the backlog drain
//
// Every submitted request terminates in exactly one of {completed,
// rejected, deadline-expired}; the terminal transition happens exactly once
// and fires ServerConfig::on_done, where callers implement retry with
// capped exponential backoff (retry.h).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "obs/counters.h"
#include "runtime/sync.h"
#include "serve/admission.h"
#include "serve/ingress.h"
#include "serve/request.h"

namespace dfth::serve {

/// One served endpoint class. `mem_bound` is the endpoint's certified
/// per-request tracked-heap bound (space/ certification, or a measured
/// high-water mark) — the unit the admission controller reserves.
struct EndpointSpec {
  std::string name;
  int priority = 0;              ///< 0 = most critical; higher sheds first
  std::size_t mem_bound = 0;     ///< certified per-request space bound, bytes
  std::uint64_t deadline_ns = 0; ///< per-request latency budget; 0 = none
  std::function<void(Request&)> handler;  ///< runs on the request's root fiber
};

enum class Tier : std::uint8_t { kAccept = 0, kShedLow = 1, kDrainOnly = 2 };

const char* to_string(Tier t);

/// Shedding thresholds. Depth thresholds are fractions of ingress capacity;
/// RSS thresholds are absolute tracked-heap live bytes (0 disables). Enter
/// must exceed exit — the gap is the hysteresis band that keeps the tier
/// from flapping at the boundary.
struct ShedThresholds {
  double shed_enter_depth = 0.75;
  double shed_exit_depth = 0.50;
  double drain_enter_depth = 0.95;
  double drain_exit_depth = 0.70;
  std::size_t shed_enter_rss = 0;
  std::size_t shed_exit_rss = 0;
  std::size_t drain_enter_rss = 0;
  std::size_t drain_exit_rss = 0;
};

struct ServerConfig {
  std::size_t ingress_capacity = 256;  ///< rounded up to a power of two
  /// Total tracked-heap budget for in-flight requests (the admission
  /// controller's numerator). Baseline live bytes at Server construction
  /// are subtracted automatically.
  std::size_t mem_budget = 1 << 20;
  int max_inflight = 64;          ///< hard cap on concurrently running requests
  int shed_priority_floor = 1;    ///< kShedLow rejects priority >= this
  std::uint64_t poll_ns = 200'000;  ///< pump idle/backpressure wait quantum
  ShedThresholds shed;
  /// Liveness heartbeat shared with RuntimeOptions::watchdog.heartbeat: the
  /// pump beats it on every iteration (including idle ones), so an armed
  /// stall watchdog distinguishes "serving, currently idle" from "wedged".
  std::atomic<std::uint64_t>* heartbeat = nullptr;
  /// Terminal-transition callback (request outcome is final when it fires).
  /// Runs on a server fiber — keep it cheap; clients use it to drive retry.
  std::function<void(Request*)> on_done;
  std::size_t max_headroom_samples = 512;  ///< time-series cap (decimated)
};

/// One admission-headroom time-series sample (the soak's overload plot).
struct HeadroomSample {
  std::uint64_t t_ns = 0;
  std::uint64_t headroom_bytes = 0;
  std::uint32_t depth = 0;
  std::uint8_t tier = 0;
};

struct EndpointReport {
  std::string name;
  std::uint64_t completed = 0;
  std::uint64_t rejected_queue = 0;  ///< ingress ring full at submit
  std::uint64_t rejected_shed = 0;
  std::uint64_t rejected_admission = 0;
  std::uint64_t expired_queue = 0;    ///< deadline passed while queued
  std::uint64_t expired_running = 0;  ///< deadline fired in-flight
  obs::HistSnapshot latency;          ///< completed-request latency, ns
};

struct ServeReport {
  std::uint64_t submitted = 0;   ///< successful submits (ring accepted)
  std::uint64_t completed = 0;
  std::uint64_t rejected_queue = 0;
  std::uint64_t rejected_shed = 0;
  std::uint64_t rejected_admission = 0;
  std::uint64_t expired_queue = 0;
  std::uint64_t expired_running = 0;
  std::uint64_t tier_transitions = 0;
  std::uint64_t peak_inflight = 0;
  std::uint64_t peak_depth = 0;
  std::int64_t peak_live_bytes = 0;   ///< tracked-heap high water while serving
  std::size_t admission_usable = 0;   ///< budget minus baseline
  std::vector<EndpointReport> endpoints;
  std::vector<HeadroomSample> headroom;
};

class Server {
 public:
  /// Must be constructed inside run() (it reads the engine clock and the
  /// tracked-heap baseline at arm time).
  Server(ServerConfig cfg, std::vector<EndpointSpec> endpoints);

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Client side, any fiber. Stamps submit_ns and arms the deadline token,
  /// then pushes into the ingress ring. Returns false — with outcome
  /// kRejected / RejectReason::kQueueFull already recorded and on_done
  /// fired — when the ring is full: bounded ingress never blocks a client.
  bool submit(Request* r);

  /// Installs (or replaces) the terminal-transition callback. Must happen
  /// before the first submit/pump iteration — it is read without a lock.
  void set_on_done(std::function<void(Request*)> fn) {
    cfg_.on_done = std::move(fn);
  }

  /// Begins shutdown: the pump drains the backlog and in-flight requests,
  /// then returns. Idempotent; callable from any fiber.
  void stop();

  /// The pump loop — run it as its own fiber. Returns after stop() once
  /// the ring is empty and no request is in flight.
  void pump();

  Tier tier() const {
    return static_cast<Tier>(tier_.load(std::memory_order_relaxed));
  }
  std::size_t inflight() const {
    return static_cast<std::size_t>(inflight_.load(std::memory_order_relaxed));
  }
  const AdmissionController& admission() const { return admission_; }

  /// Aggregated counters and per-endpoint latency snapshots. Safe after
  /// pump() returned; racy-but-consistent (under the stats lock) before.
  ServeReport report();

 private:
  struct EndpointStats {
    std::uint64_t completed = 0;
    std::uint64_t rejected_queue = 0;
    std::uint64_t rejected_shed = 0;
    std::uint64_t rejected_admission = 0;
    std::uint64_t expired_queue = 0;
    std::uint64_t expired_running = 0;
    obs::LogHistogram latency;
  };

  void dispatch_one(Request* r);
  void launch(Request* r);
  /// The single place a request becomes terminal: stamps finish_ns, writes
  /// outcome/reject, updates counters, releases the admission reservation
  /// when `admitted`, wakes the pump and fires on_done.
  void finish(Request* r, Outcome o, RejectReason why, bool admitted);
  Tier decide_tier(std::size_t depth, std::int64_t live_bytes);
  void beat();
  void sample_headroom(std::uint64_t now);

  ServerConfig cfg_;
  std::vector<EndpointSpec> endpoints_;
  IngressRing<Request*> ingress_;
  AdmissionController admission_;

  std::atomic<bool> stop_{false};
  std::atomic<std::uint8_t> tier_{0};
  std::atomic<std::int64_t> inflight_{0};
  Semaphore signal_{0};  ///< submits + finishes wake the pump
  /// Serializes ring ops when replay::pinned() — the sync log then pins the
  /// op order, making the lock-free ring replayable (see server.cpp). Free
  /// runs never touch it.
  Mutex ring_mu_;

  Mutex mu_;  ///< guards stats below (handlers finish concurrently on Real)
  std::vector<EndpointStats> ep_stats_;
  std::uint64_t submitted_ = 0;
  std::uint64_t tier_transitions_ = 0;
  std::uint64_t peak_inflight_ = 0;
  std::uint64_t peak_depth_ = 0;
  std::int64_t peak_live_bytes_ = 0;
  std::vector<HeadroomSample> headroom_;
  std::uint64_t sample_every_ = 1;  ///< decimation stride
  std::uint64_t sample_tick_ = 0;
};

}  // namespace dfth::serve
