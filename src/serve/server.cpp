#include "serve/server.h"

#include "replay/hooks.h"
#include "replay/log.h"
#include "runtime/api.h"
#include "space/tracked_heap.h"
#include "util/check.h"

namespace dfth::serve {
namespace {

// Replayability of the serve layer splits its raced reads three ways:
//
//  * Ring push/pop are side-effecting races; a pure value pin cannot make
//    them replayable because an effect and its log record are not atomic —
//    record order can invert effect order across actors, and a replayer
//    waiting for the inverted effect deadlocks against its own next record.
//    Per the replay::pinned() contract, pinned runs (record or strict
//    replay) instead take a lock-ordered equivalent: every ring op runs
//    under ring_mu_, whose sync commit happens inside the guard, so the
//    op order is pinned and the ring outcome is a pure function of it.
//    Free runs keep the lock-free fast path.
//
//  * Pure value reads the pump branches on (tracked-heap RSS, the
//    stop/inflight exit check, the inflight cap) are pinned with
//    replay::observe_u64 — replay substitutes the recorded value, so
//    control flow re-takes the recorded branch. No spin, no deadlock.
//
//  * The admission CAS races against release effects whose timing the log
//    does not pin, so strict replay applies the recorded verdict verbatim
//    (force_admit) instead of re-running the race.
//
// Reads that only feed statistics (peak depth under mu_, headroom samples)
// stay unpinned — they cannot diverge the schedule.
constexpr std::uint64_t kObsExit = replay::kObsServeBase + 0;
constexpr std::uint64_t kObsRss = replay::kObsServeBase + 1;
constexpr std::uint64_t kObsInflight = replay::kObsServeBase + 2;
constexpr std::uint64_t kObsAdmit = replay::kObsServeBase + 3;

}  // namespace

const char* to_string(Tier t) {
  switch (t) {
    case Tier::kAccept: return "accept";
    case Tier::kShedLow: return "shed-low";
    case Tier::kDrainOnly: return "drain-only";
  }
  return "?";
}

Server::Server(ServerConfig cfg, std::vector<EndpointSpec> endpoints)
    : cfg_(std::move(cfg)),
      endpoints_(std::move(endpoints)),
      ingress_(cfg_.ingress_capacity),
      admission_(cfg_.mem_budget,
                 static_cast<std::size_t>(TrackedHeap::instance().live_bytes() > 0
                                              ? TrackedHeap::instance().live_bytes()
                                              : 0)),
      ep_stats_(endpoints_.size()) {
  DFTH_CHECK_MSG(!endpoints_.empty(), "server needs at least one endpoint");
  for (const EndpointSpec& e : endpoints_) {
    // An endpoint whose certified bound cannot fit even on an idle server
    // would be rejected forever — surface the misconfiguration at arm time.
    DFTH_CHECK_MSG(e.mem_bound <= admission_.usable(),
                   "endpoint space bound exceeds the admission budget");
  }
}

bool Server::submit(Request* r) {
  const std::uint64_t now = now_ns();
  r->submit_ns = now;
  const EndpointSpec& ep = endpoints_[static_cast<std::size_t>(r->endpoint)];
  r->token.deadline_ns = ep.deadline_ns == 0 ? 0 : now + ep.deadline_ns;
  bool pushed;
  if (replay::pinned()) {
    LockGuard g(ring_mu_);
    pushed = ingress_.try_push(r);
  } else {
    pushed = ingress_.try_push(r);
  }
  if (!pushed) {
    // Synchronous rejection: the ring is the bounded-ingress line, and the
    // client learns immediately (no queueing delay added to the retry).
    finish(r, Outcome::kRejected, RejectReason::kQueueFull, false);
    return false;
  }
  {
    LockGuard g(mu_);
    ++submitted_;
    const std::uint64_t depth = ingress_.size();
    if (depth > peak_depth_) peak_depth_ = depth;
  }
  signal_.release();
  return true;
}

void Server::stop() {
  stop_.store(true, std::memory_order_release);
  signal_.release();
}

void Server::beat() {
  if (cfg_.heartbeat != nullptr) {
    cfg_.heartbeat->fetch_add(1, std::memory_order_relaxed);
  }
}

void Server::pump() {
  for (;;) {
    Request* r = nullptr;
    bool got;
    if (replay::pinned()) {
      LockGuard g(ring_mu_);
      got = ingress_.try_pop(&r);
    } else {
      got = ingress_.try_pop(&r);
    }
    if (!got) {
      const bool exit_now = stop_.load(std::memory_order_acquire) &&
                            inflight_.load(std::memory_order_acquire) == 0;
      if (replay::observe_u64(kObsExit, exit_now ? 1 : 0) != 0) break;
      // Idle (or draining): beat the watchdog so "armed but no traffic"
      // is distinguishable from "wedged", then sleep one poll quantum.
      beat();
      sample_headroom(now_ns());
      signal_.try_acquire_for(cfg_.poll_ns);
      continue;
    }
    beat();
    dispatch_one(r);
  }
  beat();
}

void Server::dispatch_one(Request* r) {
  std::size_t depth;
  if (replay::pinned()) {
    // The depth read's own lock acquisition pins its position among the
    // ring ops, which determines the value it sees.
    LockGuard g(ring_mu_);
    depth = ingress_.size();
  } else {
    depth = ingress_.size();
  }
  const std::int64_t live_now = TrackedHeap::instance().live_bytes();
  const std::int64_t live = static_cast<std::int64_t>(replay::observe_u64(
      kObsRss, static_cast<std::uint64_t>(live_now > 0 ? live_now : 0)));
  {
    LockGuard g(mu_);
    if (live > peak_live_bytes_) peak_live_bytes_ = live;
  }
  sample_headroom(now_ns());

  // Deadline first: a request that expired in the queue is terminal no
  // matter what tier we are in. Fire its token for uniformity (nothing ran
  // under it) and classify as expired-in-queue.
  if (r->token.deadline_ns != 0 && now_ns() >= r->token.deadline_ns) {
    r->token.cancel();
    finish(r, Outcome::kExpired, RejectReason::kNone, false);
    return;
  }

  const Tier tier = decide_tier(depth, live);
  const EndpointSpec& ep = endpoints_[static_cast<std::size_t>(r->endpoint)];
  if (tier == Tier::kDrainOnly ||
      (tier == Tier::kShedLow && ep.priority >= cfg_.shed_priority_floor)) {
    finish(r, Outcome::kRejected, RejectReason::kShed, false);
    return;
  }

  // Backpressure on the inflight cap: hold the request (it is already
  // popped) and wait for completions, re-checking its deadline each
  // quantum so a held request can still expire.
  for (;;) {
    const bool at_cap =
        replay::observe_u64(
            kObsInflight,
            inflight_.load(std::memory_order_acquire) >= cfg_.max_inflight
                ? 1
                : 0) != 0;
    if (!at_cap) break;
    beat();
    signal_.try_acquire_for(cfg_.poll_ns);
    if (r->token.deadline_ns != 0 && now_ns() >= r->token.deadline_ns) {
      r->token.cancel();
      finish(r, Outcome::kExpired, RejectReason::kNone, false);
      return;
    }
  }

  // K-driven admission: reserve the endpoint's certified space bound or
  // reject with backpressure semantics (the client retries after backoff).
  // Strict replay applies the recorded verdict: the CAS races with release
  // effects whose timing the log does not pin, so a live re-run could flip.
  bool admitted;
  if (replay::pinned_active()) {
    admitted = replay::observe_u64(kObsAdmit, 0) != 0;
    if (admitted) admission_.force_admit(ep.mem_bound);
  } else {
    admitted = replay::observe_u64(
                   kObsAdmit, admission_.try_admit(ep.mem_bound) ? 1 : 0) != 0;
  }
  if (!admitted) {
    finish(r, Outcome::kRejected, RejectReason::kAdmission, false);
    return;
  }
  launch(r);
}

void Server::launch(Request* r) {
  r->admit_ns = now_ns();
  r->token.alloc_charge = &r->bytes_live;
  const std::int64_t now_inflight =
      inflight_.fetch_add(1, std::memory_order_acq_rel) + 1;
  {
    LockGuard g(mu_);
    if (static_cast<std::uint64_t>(now_inflight) > peak_inflight_) {
      peak_inflight_ = static_cast<std::uint64_t>(now_inflight);
    }
  }
  Attr attr;
  attr.cancel = &r->token;
  Thread root = spawn(
      [this, r]() -> void* {
        endpoints_[static_cast<std::size_t>(r->endpoint)].handler(*r);
        // Classify by the handler's own cancellation scope, through the
        // replay-logged poll — not a raw token read, which could race with
        // a late expiry on some subtree dispatch and diverge under replay.
        const bool expired = cancel_requested();
        finish(r, expired ? Outcome::kExpired : Outcome::kCompleted,
               RejectReason::kNone, true);
        return nullptr;
      },
      attr);
  detach(root);
}

void Server::finish(Request* r, Outcome o, RejectReason why, bool admitted) {
  r->finish_ns = now_ns();
  r->outcome = o;
  r->reject = why;
  const EndpointSpec& ep = endpoints_[static_cast<std::size_t>(r->endpoint)];
  {
    LockGuard g(mu_);
    EndpointStats& s = ep_stats_[static_cast<std::size_t>(r->endpoint)];
    switch (o) {
      case Outcome::kCompleted:
        ++s.completed;
        s.latency.record(r->finish_ns - r->submit_ns);
        break;
      case Outcome::kRejected:
        switch (why) {
          case RejectReason::kAdmission: ++s.rejected_admission; break;
          case RejectReason::kQueueFull: ++s.rejected_queue; break;
          default: ++s.rejected_shed; break;
        }
        break;
      case Outcome::kExpired:
        if (admitted) {
          ++s.expired_running;
        } else {
          ++s.expired_queue;
        }
        break;
      case Outcome::kPending:
        DFTH_CHECK_MSG(false, "finish() with non-terminal outcome");
    }
  }
  if (admitted) {
    admission_.release(ep.mem_bound);
    inflight_.fetch_sub(1, std::memory_order_acq_rel);
    signal_.release();  // wake a pump blocked on the inflight cap
  }
  if (cfg_.on_done) cfg_.on_done(r);
}

Tier Server::decide_tier(std::size_t depth, std::int64_t live_bytes) {
  const double cap = static_cast<double>(ingress_.capacity());
  const double fill = static_cast<double>(depth) / cap;
  const std::size_t live =
      live_bytes > 0 ? static_cast<std::size_t>(live_bytes) : 0;
  const ShedThresholds& th = cfg_.shed;
  Tier cur = tier();
  Tier next = cur;

  // Hysteresis ladder: escalate on the enter thresholds, de-escalate one
  // rung at a time only once below the exit thresholds — the band between
  // them absorbs boundary noise so the tier cannot flap per request.
  const bool drain_in = fill >= th.drain_enter_depth ||
                        (th.drain_enter_rss != 0 && live >= th.drain_enter_rss);
  const bool drain_out = fill <= th.drain_exit_depth &&
                         (th.drain_exit_rss == 0 || live <= th.drain_exit_rss);
  const bool shed_in = fill >= th.shed_enter_depth ||
                       (th.shed_enter_rss != 0 && live >= th.shed_enter_rss);
  const bool shed_out = fill <= th.shed_exit_depth &&
                        (th.shed_exit_rss == 0 || live <= th.shed_exit_rss);

  switch (cur) {
    case Tier::kAccept:
      if (drain_in) next = Tier::kDrainOnly;
      else if (shed_in) next = Tier::kShedLow;
      break;
    case Tier::kShedLow:
      if (drain_in) next = Tier::kDrainOnly;
      else if (shed_out) next = Tier::kAccept;
      break;
    case Tier::kDrainOnly:
      if (drain_out) next = Tier::kShedLow;
      break;
  }
  if (next != cur) {
    tier_.store(static_cast<std::uint8_t>(next), std::memory_order_relaxed);
    LockGuard g(mu_);
    ++tier_transitions_;
  }
  return next;
}

void Server::sample_headroom(std::uint64_t now) {
  LockGuard g(mu_);
  if (++sample_tick_ % sample_every_ != 0) return;
  if (headroom_.size() >= cfg_.max_headroom_samples &&
      cfg_.max_headroom_samples > 0) {
    // Decimate in place: keep every other sample and double the stride, so
    // a long soak keeps a bounded, evenly thinned series.
    std::size_t w = 0;
    for (std::size_t i = 0; i < headroom_.size(); i += 2) {
      headroom_[w++] = headroom_[i];
    }
    headroom_.resize(w);
    sample_every_ *= 2;
  }
  HeadroomSample s;
  s.t_ns = now;
  s.headroom_bytes = admission_.headroom();
  s.depth = static_cast<std::uint32_t>(ingress_.size());
  s.tier = tier_.load(std::memory_order_relaxed);
  headroom_.push_back(s);
}

ServeReport Server::report() {
  ServeReport out;
  LockGuard g(mu_);
  out.submitted = submitted_;
  out.tier_transitions = tier_transitions_;
  out.peak_inflight = peak_inflight_;
  out.peak_depth = peak_depth_;
  out.peak_live_bytes = peak_live_bytes_;
  out.admission_usable = admission_.usable();
  out.headroom = headroom_;
  out.endpoints.reserve(endpoints_.size());
  for (std::size_t i = 0; i < endpoints_.size(); ++i) {
    const EndpointStats& s = ep_stats_[i];
    EndpointReport r;
    r.name = endpoints_[i].name;
    r.completed = s.completed;
    r.rejected_queue = s.rejected_queue;
    r.rejected_shed = s.rejected_shed;
    r.rejected_admission = s.rejected_admission;
    r.expired_queue = s.expired_queue;
    r.expired_running = s.expired_running;
    r.latency = s.latency.snapshot();
    out.endpoints.push_back(std::move(r));
    out.completed += s.completed;
    out.rejected_queue += s.rejected_queue;
    out.rejected_shed += s.rejected_shed;
    out.rejected_admission += s.rejected_admission;
    out.expired_queue += s.expired_queue;
    out.expired_running += s.expired_running;
  }
  return out;
}

}  // namespace dfth::serve
