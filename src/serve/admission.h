// K-driven admission control for the serving front-end.
//
// The space-bound certifier (space/) proves each endpoint's handler runs in
// at most B_e tracked-heap bytes under the AsyncDF scheduler (S1 + O(p·K·D)
// with the endpoint's own serial bound). Admission then reduces to budget
// reservation: a request of endpoint e is admitted iff
//
//     reserved + B_e  <=  budget_total - baseline_live
//
// where `reserved` sums the B_e of every in-flight request and
// baseline_live is the tracked-heap level measured when the server armed
// (long-lived state that no request can free). Rejecting at this line is
// what turns would-be OOM aborts into DfStatus::kOverloaded-style
// backpressure: the heap can never be asked for more than the budget, so
// df_malloc inside an admitted request only fails if an endpoint exceeds
// its certified bound — a bug, not an overload.
//
// Reservations use a CAS loop (not fetch_add-then-undo) so a burst of
// concurrent admits on the RealEngine can never transiently overshoot the
// budget — overshoot is exactly the OOM window this controller exists to
// close.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>

namespace dfth::serve {

class AdmissionController {
 public:
  /// budget_bytes: total tracked-heap bytes the server may have in flight.
  /// baseline_bytes: live bytes already held when the server armed.
  AdmissionController(std::size_t budget_bytes, std::size_t baseline_bytes)
      : usable_(budget_bytes > baseline_bytes ? budget_bytes - baseline_bytes
                                              : 0) {}

  /// Reserves `bound_bytes` of headroom; false when it does not fit.
  /// An endpoint bound larger than the whole usable budget is permanently
  /// inadmissible — the caller should treat that as a config error.
  bool try_admit(std::size_t bound_bytes) {
    std::size_t cur = reserved_.load(std::memory_order_relaxed);
    for (;;) {
      if (bound_bytes > usable_ || cur > usable_ - bound_bytes) return false;
      if (reserved_.compare_exchange_weak(cur, cur + bound_bytes,
                                          std::memory_order_acquire,
                                          std::memory_order_relaxed)) {
        return true;
      }
    }
  }

  /// Takes a reservation unconditionally. Strict-replay only: the recorded
  /// run already proved this admit fit under the budget, and the CAS race
  /// cannot be re-run live (release effects lag their log position), so the
  /// replaying pump applies the recorded yes/no verbatim.
  void force_admit(std::size_t bound_bytes) {
    reserved_.fetch_add(bound_bytes, std::memory_order_acquire);
  }

  /// Returns a reservation taken by try_admit (at request termination).
  void release(std::size_t bound_bytes) {
    reserved_.fetch_sub(bound_bytes, std::memory_order_release);
  }

  std::size_t usable() const { return usable_; }
  std::size_t reserved() const {
    return reserved_.load(std::memory_order_relaxed);
  }
  /// Unreserved budget right now — the time series the soak samples.
  std::size_t headroom() const {
    const std::size_t r = reserved();
    return r >= usable_ ? 0 : usable_ - r;
  }

 private:
  const std::size_t usable_;
  std::atomic<std::size_t> reserved_{0};
};

}  // namespace dfth::serve
