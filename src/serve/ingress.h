// Bounded lock-free MPSC ingress ring for the serving front-end.
//
// Shape: Vyukov's bounded MPMC queue specialized to one consumer (the
// server's pump fiber). Producers are client fibers — possibly many, on
// either engine — so try_push must be multi-producer safe and *bounded*:
// when the ring is full it returns false immediately and the caller sheds
// or retries with backoff. Nothing ever blocks inside the ring, so it is
// safe to call from fibers on the SimEngine (where a spin would deadlock
// the single host CPU) and from concurrent workers on the RealEngine.
//
// Each cell carries a sequence number with the classic invariant:
//   seq == index            -> cell is free, a producer may claim it
//   seq == index + 1        -> cell is full, the consumer may take it
//   anything else           -> another producer/consumer owns the slot;
//                              for a bounded queue that means "full"/"empty"
// Producers claim a ticket with one fetch_add-free CAS loop; the consumer
// needs no CAS at all (single consumer).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>

namespace dfth::serve {

template <typename T>
class IngressRing {
 public:
  /// Capacity is rounded up to a power of two (minimum 2).
  explicit IngressRing(std::size_t capacity) {
    std::size_t cap = 2;
    while (cap < capacity) cap <<= 1;
    mask_ = cap - 1;
    cells_ = std::make_unique<Cell[]>(cap);
    for (std::size_t i = 0; i < cap; ++i) {
      cells_[i].seq.store(i, std::memory_order_relaxed);
    }
  }

  IngressRing(const IngressRing&) = delete;
  IngressRing& operator=(const IngressRing&) = delete;

  /// Multi-producer push. Returns false when the ring is full — the
  /// bounded-ingress contract: the caller (not the queue) decides whether
  /// to drop, retry later, or count the rejection.
  bool try_push(T v) {
    std::uint64_t pos = tail_.load(std::memory_order_relaxed);
    for (;;) {
      Cell& c = cells_[pos & mask_];
      const std::uint64_t seq = c.seq.load(std::memory_order_acquire);
      const std::int64_t dif =
          static_cast<std::int64_t>(seq) - static_cast<std::int64_t>(pos);
      if (dif == 0) {
        if (tail_.compare_exchange_weak(pos, pos + 1,
                                        std::memory_order_relaxed)) {
          c.val = std::move(v);
          c.seq.store(pos + 1, std::memory_order_release);
          depth_.fetch_add(1, std::memory_order_relaxed);
          return true;
        }
        // CAS refreshed pos; retry with the new tail.
      } else if (dif < 0) {
        return false;  // the cell one lap back is still occupied: full
      } else {
        pos = tail_.load(std::memory_order_relaxed);
      }
    }
  }

  /// Single-consumer pop. Returns false when empty.
  bool try_pop(T* out) {
    const std::uint64_t pos = head_;
    Cell& c = cells_[pos & mask_];
    const std::uint64_t seq = c.seq.load(std::memory_order_acquire);
    if (static_cast<std::int64_t>(seq) - static_cast<std::int64_t>(pos + 1) < 0) {
      return false;  // producer has not published this cell yet: empty
    }
    *out = std::move(c.val);
    c.seq.store(pos + mask_ + 1, std::memory_order_release);
    head_ = pos + 1;
    depth_.fetch_sub(1, std::memory_order_relaxed);
    return true;
  }

  /// Approximate occupancy — the overload-shedding signal. Exact only in
  /// quiescence; racy reads are fine, the tiers have hysteresis.
  std::size_t size() const { return depth_.load(std::memory_order_relaxed); }

  std::size_t capacity() const { return mask_ + 1; }

 private:
  struct Cell {
    std::atomic<std::uint64_t> seq{0};
    T val{};
  };

  std::unique_ptr<Cell[]> cells_;
  std::size_t mask_ = 0;
  std::atomic<std::uint64_t> tail_{0};  ///< producers' claim cursor
  std::uint64_t head_ = 0;              ///< consumer-private cursor
  std::atomic<std::int64_t> depth_{0};  ///< approximate size for shedding
};

}  // namespace dfth::serve
