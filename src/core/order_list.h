// Order-maintenance list: the data structure behind the space-efficient
// scheduler's global "serial, depth-first execution order" of all live
// threads (paper §4 item 2).
//
// Requirements it serves:
//  * insert a node immediately before/after another in O(1) amortized
//    (a forked child goes to the immediate left of its parent);
//  * erase in O(1) (thread exit removes its placeholder);
//  * answer "does a precede b?" in O(1) (used by scheduler invariant checks
//    and property tests).
//
// Implementation: an intrusive doubly-linked list whose nodes carry 64-bit
// tags in strictly increasing order. A new node takes the midpoint of its
// neighbors' tags; when the gap is exhausted we relabel — first locally
// (redistribute a small window of nodes), falling back to a full even
// relabel. With a 2^64 tag space full relabels are essentially amortized
// away (see tests/core/order_list_test.cpp for adversarial patterns).
#pragma once

#include <cstddef>
#include <cstdint>

#include "util/check.h"

namespace dfth {

struct OrderNode {
  OrderNode* prev = nullptr;
  OrderNode* next = nullptr;
  std::uint64_t tag = 0;
  void* owner = nullptr;  ///< back-pointer to the containing object (Tcb)

  bool linked() const { return prev != nullptr; }
};

class OrderList {
 public:
  OrderList();

  // Not copyable/movable: nodes point back into the sentinels.
  OrderList(const OrderList&) = delete;
  OrderList& operator=(const OrderList&) = delete;

  void push_front(OrderNode* node);
  void push_back(OrderNode* node);
  void insert_before(OrderNode* pos, OrderNode* node);
  void insert_after(OrderNode* pos, OrderNode* node);
  void erase(OrderNode* node);

  /// True iff `a` precedes `b`. O(1) via tag comparison.
  bool before(const OrderNode* a, const OrderNode* b) const {
    DFTH_DCHECK(a->linked() && b->linked());
    return a->tag < b->tag;
  }

  bool empty() const { return head_.next == &tail_; }
  std::size_t size() const { return size_; }

  /// First real node, or nullptr when empty. Iterate with node->next until
  /// end_sentinel().
  OrderNode* front() const { return empty() ? nullptr : head_.next; }
  OrderNode* back() const { return empty() ? nullptr : tail_.prev; }
  const OrderNode* end_sentinel() const { return &tail_; }

  /// Total relabel operations performed (for the scheduler microbench).
  std::uint64_t relabel_count() const { return relabels_; }

  /// Verifies the tag order invariant over the whole list (tests only).
  bool check_invariants() const;

 private:
  void link(OrderNode* before_node, OrderNode* node, OrderNode* after_node);
  /// Assigns node->tag strictly between its neighbors, relabeling if needed.
  void assign_tag(OrderNode* node);
  void relabel_around(OrderNode* node);
  void relabel_all();

  OrderNode head_;
  OrderNode tail_;
  std::size_t size_ = 0;
  std::uint64_t relabels_ = 0;
};

}  // namespace dfth
