// Scheduler policy interface.
//
// A Scheduler decides *which* ready thread a processor runs next and *where*
// newly runnable threads are placed — exactly the component of the Solaris
// Pthreads library the paper modifies. Engines (runtime/) own all
// synchronization: every method here is called with the engine's scheduler
// lock held (the paper's implementation serializes its global queue with a
// lock as well, §6).
//
// Lifecycle contract, in terms of thread states (threads/tcb.h):
//  * register_thread(parent, child): child enters the system (placeholder
//    creation for AsyncDF). Called once per thread, before it first becomes
//    ready or running. Returns true if the policy wants the child to run
//    IMMEDIATELY on the spawning processor, preempting the parent (AsyncDF
//    and work-first work stealing); the engine then marks the parent Ready
//    and calls on_ready(parent) — the child never visits the ready set.
//    Returns false for FIFO/LIFO: the engine calls on_ready(child) and the
//    parent keeps running.
//  * on_ready(t, proc): t became runnable (spawned-not-run, unblocked,
//    yielded, or quota-preempted) — enter the ready structure.
//  * pick_next(proc, now, earliest): remove and return the policy's choice
//    among ready threads with ready_at_ns <= now (virtual-time causality for
//    the simulator; the real engine passes now = UINT64_MAX). When nothing
//    is eligible, returns nullptr and stores the smallest ready_at_ns of any
//    ready thread into *earliest (UINT64_MAX if the ready set is empty).
//  * unregister_thread(t): t exited — drop its placeholder.
//
// Priorities: levels are strictly ordered; within a level the policy
// applies. (The paper proposes exactly this: their scheduler implements
// SCHED_OTHER and coexists with the prioritized SCHED_FIFO/SCHED_RR.)
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "threads/tcb.h"

namespace dfth {

enum class SchedKind {
  Fifo,         ///< stock Solaris SCHED_OTHER: global FIFO queue (breadth-first)
  Lifo,         ///< §4 item 1: global LIFO stack (≈ depth-first)
  AsyncDf,      ///< §4 item 2: the paper's space-efficient scheduler
  WorkSteal,    ///< Cilk-style per-processor deques (baseline from §2.1)
  ClusteredAdf, ///< §6 future work: per-SMP AsyncDF queues with migration
  DfDeques,     ///< §5.3 "current work": locality-aware ordered deques
};

const char* to_string(SchedKind kind);
SchedKind sched_kind_from_string(const std::string& name);

class Scheduler {
 public:
  virtual ~Scheduler() = default;

  virtual SchedKind kind() const = 0;

  /// True for policies that bound memory with a per-scheduling quota
  /// (AsyncDF). The engine then resets t->quota on each dispatch and
  /// preempts on exhaustion; df_malloc inserts dummy threads for
  /// allocations larger than the quota.
  virtual bool needs_quota() const { return false; }

  virtual bool register_thread(Tcb* parent, Tcb* child) = 0;
  virtual void on_ready(Tcb* t, int proc) = 0;
  virtual Tcb* pick_next(int proc, std::uint64_t now, std::uint64_t* earliest) = 0;
  virtual void unregister_thread(Tcb* t) = 0;

  /// Number of threads currently in the ready structure (stats/tests).
  virtual std::size_t ready_count() const = 0;

  /// The concrete policy object, unwrapping any validation decorator
  /// (DFTH_VALIDATE builds wrap every policy in analyze::AuditedScheduler);
  /// engines dynamic_cast this for policy-specific stats.
  virtual Scheduler* underlying() { return this; }

  /// Serialization domain of a processor's queue operations: the simulator
  /// models one scheduler lock per domain. The single-list schedulers all
  /// share domain 0 (the paper's serialized global lock, §6); the clustered
  /// scheduler returns the processor's cluster.
  virtual int lock_domain(int proc) const {
    (void)proc;
    return 0;
  }
};

/// Factory. `nprocs`/`seed` matter only to work stealing (deque count and
/// victim selection); `cluster_size` only to the clustered scheduler.
std::unique_ptr<Scheduler> make_scheduler(SchedKind kind, int nprocs,
                                          std::uint64_t seed,
                                          int cluster_size = 4);

}  // namespace dfth
