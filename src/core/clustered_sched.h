// Clustered AsyncDF — the paper's §6 future-work design, implemented:
//
//   "Our space-efficient scheduler maintains a globally ordered list of
//    threads; accesses to this list are serialized by a lock. Therefore, we
//    do not expect such a serialized scheduler to scale well beyond 16
//    processors. [...] to schedule threads on a hardware-coherent cluster
//    of SMPs, our scheduling algorithm could be used to maintain one shared
//    queue on each SMP, and threads would be moved between SMPs only when
//    required."
//
// Processors are partitioned into clusters of `cluster_size` ("one SMP"
// each). Each cluster runs the AsyncDF discipline on its own ordered list
// with its own lock (the simulator serializes scheduler operations per
// cluster, not globally — see Scheduler::lock_domain). A fork still
// preempts the parent and places the child immediately left of the parent
// in the parent's cluster. A processor whose cluster has no ready thread
// migrates the leftmost ready thread of another cluster into its own list —
// the "moved only when required" rule; migrations are counted.
//
// Space: each cluster independently maintains the AsyncDF invariants, so
// live space is bounded by the sum of per-cluster bounds,
// S1 + O(p·K·D + C·S1-ish migration effects) — abl_clustered measures the
// practical cost against the single-lock scheduler's contention.
//
// Priorities are not supported by this policy (like work stealing); all
// threads are scheduled at one level.
#pragma once

#include <cstddef>
#include <vector>

#include "core/order_list.h"
#include "core/scheduler.h"

namespace dfth {

class ClusteredAdfScheduler final : public Scheduler {
 public:
  ClusteredAdfScheduler(int nprocs, int cluster_size);

  SchedKind kind() const override { return SchedKind::ClusteredAdf; }
  bool needs_quota() const override { return true; }

  bool register_thread(Tcb* parent, Tcb* child) override;
  void on_ready(Tcb* t, int proc) override;
  Tcb* pick_next(int proc, std::uint64_t now, std::uint64_t* earliest) override;
  void unregister_thread(Tcb* t) override;
  std::size_t ready_count() const override { return ready_; }

  int lock_domain(int proc) const override { return cluster_of(proc); }
  int domains() const { return static_cast<int>(lists_.size()); }

  std::uint64_t migrations() const { return migrations_; }
  std::size_t live_count(int cluster) const {
    return lists_[static_cast<std::size_t>(cluster)].size();
  }

 private:
  int cluster_of(int proc) const { return proc / cluster_size_; }
  /// Leftmost ready thread in one cluster's list, honoring `now`.
  Tcb* scan(int cluster, std::uint64_t now, std::uint64_t* earliest);

  int cluster_size_;
  std::vector<OrderList> lists_;  ///< one serial-order list per cluster
  std::size_t ready_ = 0;
  std::uint64_t migrations_ = 0;
};

}  // namespace dfth
