// The paper's contribution (§4 item 2): a space-efficient scheduler that
// keeps every live thread — ready, blocked or executing — in its *serial,
// depth-first execution order* and always dispatches the leftmost ready
// thread. It is a variation of the AsyncDF algorithm [Narlikar & Blelloch
// 1998], which bounds live space by S1 + O(p·K·D).
//
// Mechanics reproduced from the paper:
//  * There is an entry (placeholder) in the ordered list for every thread
//    that has been created but has not yet exited; blocked and executing
//    threads keep their entries, which pin their position.
//  * When a parent forks a child, the parent is preempted immediately and
//    the processor runs the child (register_thread returns true).
//  * A newly forked child is placed to the immediate left of its parent.
//  * Every time a thread is scheduled it receives a memory quota of K bytes
//    (needs_quota() = true; the engine resets t->quota and preempts the
//    thread when the quota is exhausted).
//  * A preempted thread re-enters the ready set at the position marked by
//    its entry — i.e., nothing moves; its state simply flips back to Ready.
//  * Allocations of m > K bytes cause δ = ceil(m/K) dummy threads to be
//    forked (as a binary tree) before the allocation; that logic lives in
//    df_malloc (runtime/api.cpp) since it is a library-level rewrite, not a
//    queue policy.
//
// Dispatch scans the ordered list from the left for a Ready thread. The scan
// is O(live threads), and AsyncDF's entire point is that the live-thread
// count stays small (≈ serial depth + p·constant), so the scan is short in
// exactly the executions this scheduler produces; bench/micro_sched_ops
// measures it.
#pragma once

#include <array>
#include <cstddef>

#include "core/order_list.h"
#include "core/scheduler.h"

namespace dfth {

// Not final: the invariant-auditor tests subclass it with a deliberately
// wrong pick_next to prove the auditor catches scheduler bugs.
class AsyncDfScheduler : public Scheduler {
 public:
  SchedKind kind() const override { return SchedKind::AsyncDf; }
  bool needs_quota() const override { return true; }

  bool register_thread(Tcb* parent, Tcb* child) override;
  void on_ready(Tcb* t, int proc) override;
  Tcb* pick_next(int proc, std::uint64_t now, std::uint64_t* earliest) override;
  void unregister_thread(Tcb* t) override;
  std::size_t ready_count() const override { return ready_; }

  /// Live entries (placeholders) at a priority level — tests use this to
  /// verify the S1 + O(pKD) bound's structural preconditions.
  std::size_t live_count(int priority) const {
    return lists_[static_cast<std::size_t>(priority)].size();
  }

  /// True iff `a` precedes `b` in the serial order (same priority only).
  bool serial_before(const Tcb* a, const Tcb* b) const;

  /// Direct view of one priority level's serial-order list (the invariant
  /// auditor re-checks leftmost dispatch and tag monotonicity through it).
  const OrderList& order_list(int priority) const {
    return lists_[static_cast<std::size_t>(priority)];
  }

 private:
  std::array<OrderList, kNumPriorities> lists_;
  std::size_t ready_ = 0;
};

}  // namespace dfth
