#include "core/dfdeques_sched.h"

#include <limits>

#include "obs/counters.h"
#include "obs/profile.h"
#include "obs/trace.h"
#include "replay/hooks.h"
#include "util/check.h"

namespace dfth {

DfDequesScheduler::DfDequesScheduler(int nprocs)
    : deques_(static_cast<std::size_t>(nprocs > 0 ? nprocs : 1)) {
  // Initial order: processor 0's deque leftmost (it will receive the main
  // thread), the rest following — their first contact with work is a steal,
  // which repositions them anyway.
  for (std::size_t i = 0; i < deques_.size(); ++i) {
    deques_[i].owner = static_cast<int>(i);
    deques_[i].order.owner = &deques_[i];
    order_.push_back(&deques_[i].order);
  }
}

bool DfDequesScheduler::register_thread(Tcb* parent, Tcb* child) {
  (void)parent;
  (void)child;
  // Work-first, as in DFDeques: the processor dives into the child and its
  // continuation (the parent) is pushed onto the processor's own deque.
  return true;
}

void DfDequesScheduler::on_ready(Tcb* t, int proc) {
  Deque& dq = deque_of(proc);
  t->home_proc = dq.owner;
  dq.threads.push_back(t);  // back == top (owner's LIFO end)
  ++ready_;
  DFTH_COUNT(obs::Counter::ReadyPushes);
}

Tcb* DfDequesScheduler::take(Deque& dq, bool from_top, std::uint64_t now,
                             std::uint64_t* earliest) {
  if (from_top) {
    for (auto it = dq.threads.rbegin(); it != dq.threads.rend(); ++it) {
      Tcb* t = *it;
      if (t->ready_at_ns <= now) {
        dq.threads.erase(std::next(it).base());
        --ready_;
        return t;
      }
      if (t->ready_at_ns < *earliest) *earliest = t->ready_at_ns;
    }
  } else {
    for (auto it = dq.threads.begin(); it != dq.threads.end(); ++it) {
      Tcb* t = *it;
      if (t->ready_at_ns <= now) {
        dq.threads.erase(it);
        --ready_;
        return t;
      }
      if (t->ready_at_ns < *earliest) *earliest = t->ready_at_ns;
    }
  }
  return nullptr;
}

Tcb* DfDequesScheduler::pick_next(int proc, std::uint64_t now,
                                  std::uint64_t* earliest) {
  *earliest = std::numeric_limits<std::uint64_t>::max();
  Deque& own = deque_of(proc);

  // Own deque first, newest thread first: the locality path.
  if (Tcb* t = take(own, /*from_top=*/true, now, earliest)) {
    DFTH_COUNT(obs::Counter::ReadyPops);
    DFTH_HIST_WAIT(obs::Hist::ReadyWaitNs, now, t->ready_at_ns);
    return t;
  }

  // Steal: walk the global deque order from the left and take the BOTTOM
  // (serially earliest) thread of the first deque that has one.
  for (OrderNode* node = order_.front();
       node != nullptr && node != order_.end_sentinel(); node = node->next) {
    auto* victim = static_cast<Deque*>(node->owner);
    if (victim == &own) continue;
    if (Tcb* t = take(*victim, /*from_top=*/false, now, earliest)) {
      ++steals_;
      DFTH_COUNT(obs::Counter::ReadyPops);
      DFTH_COUNT(obs::Counter::Steals);
      DFTH_TRACE_EMIT(proc, obs::EvKind::Steal, t->id,
                      static_cast<std::uint64_t>(victim->owner));
      DFTH_REPLAY_STEAL(proc, t->id, static_cast<std::uint64_t>(victim->owner));
      DFTH_HIST_WAIT(obs::Hist::ReadyWaitNs, now, t->ready_at_ns);
      DFTH_HIST_WAIT(obs::Hist::StealLatencyNs, now, t->ready_at_ns);
      if (now != std::numeric_limits<std::uint64_t>::max() &&
          now >= t->ready_at_ns) {
        DFTH_PROF_STEAL(t->id, now - t->ready_at_ns);
      }
      // Reposition the thief's deque right of the victim so work spawned
      // from the stolen thread keeps its serial-order neighborhood.
      order_.erase(&own.order);
      order_.insert_after(&victim->order, &own.order);
      t->home_proc = own.owner;
      return t;
    }
  }
  return nullptr;
}

void DfDequesScheduler::unregister_thread(Tcb* t) {
  // Exiting threads were Running, hence in no deque.
  (void)t;
}

bool DfDequesScheduler::deque_before(int a, int b) const {
  const Deque& da = deques_[static_cast<std::size_t>(a) % deques_.size()];
  const Deque& db = deques_[static_cast<std::size_t>(b) % deques_.size()];
  return order_.before(&da.order, &db.order);
}

}  // namespace dfth
