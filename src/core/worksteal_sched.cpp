#include "core/worksteal_sched.h"

#include <limits>

#include "obs/counters.h"
#include "obs/profile.h"
#include "obs/trace.h"
#include "replay/hooks.h"
#include "util/check.h"

namespace dfth {

WorkStealScheduler::WorkStealScheduler(int nprocs, std::uint64_t seed)
    : deques_(static_cast<std::size_t>(nprocs > 0 ? nprocs : 1)), rng_(seed) {}

bool WorkStealScheduler::register_thread(Tcb* parent, Tcb* child) {
  (void)parent;
  (void)child;
  // Work-first: the processor dives into the child; the parent continuation
  // is pushed onto the deque (by the engine via on_ready(parent)).
  return true;
}

void WorkStealScheduler::on_ready(Tcb* t, int proc) {
  const auto idx = static_cast<std::size_t>(proc) % deques_.size();
  t->home_proc = static_cast<int>(idx);
  deques_[idx].push_back(t);  // back == top (owner end)
  ++ready_;
  DFTH_COUNT(obs::Counter::ReadyPushes);
}

Tcb* WorkStealScheduler::take(std::deque<Tcb*>& dq, bool from_top, std::uint64_t now,
                              std::uint64_t* earliest) {
  // Scan from the requested end for the first virtual-time-eligible thread.
  if (from_top) {
    for (auto it = dq.rbegin(); it != dq.rend(); ++it) {
      Tcb* t = *it;
      if (t->ready_at_ns <= now) {
        dq.erase(std::next(it).base());
        --ready_;
        return t;
      }
      if (t->ready_at_ns < *earliest) *earliest = t->ready_at_ns;
    }
  } else {
    for (auto it = dq.begin(); it != dq.end(); ++it) {
      Tcb* t = *it;
      if (t->ready_at_ns <= now) {
        dq.erase(it);
        --ready_;
        return t;
      }
      if (t->ready_at_ns < *earliest) *earliest = t->ready_at_ns;
    }
  }
  return nullptr;
}

Tcb* WorkStealScheduler::pick_next(int proc, std::uint64_t now, std::uint64_t* earliest) {
  *earliest = std::numeric_limits<std::uint64_t>::max();
  const auto n = deques_.size();
  const auto self = static_cast<std::size_t>(proc) % n;

  // Own deque first, owner end.
  if (Tcb* t = take(deques_[self], /*from_top=*/true, now, earliest)) {
    DFTH_COUNT(obs::Counter::ReadyPops);
    DFTH_HIST_WAIT(obs::Hist::ReadyWaitNs, now, t->ready_at_ns);
    return t;
  }

  // Steal: random starting victim, then cycle, taking from the bottom.
  if (n > 1) {
    const std::size_t start = static_cast<std::size_t>(rng_.next_below(n));
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t victim = (start + i) % n;
      if (victim == self) continue;
      if (Tcb* t = take(deques_[victim], /*from_top=*/false, now, earliest)) {
        ++steals_;
        DFTH_COUNT(obs::Counter::ReadyPops);
        DFTH_COUNT(obs::Counter::Steals);
        DFTH_TRACE_EMIT(proc, obs::EvKind::Steal, t->id, victim);
        DFTH_REPLAY_STEAL(proc, t->id, static_cast<std::uint64_t>(victim));
        DFTH_HIST_WAIT(obs::Hist::ReadyWaitNs, now, t->ready_at_ns);
        DFTH_HIST_WAIT(obs::Hist::StealLatencyNs, now, t->ready_at_ns);
        // The steal latency burdens the stolen thread's critical path: an
        // ideal scheduler would have run it the instant it became ready.
        if (now != std::numeric_limits<std::uint64_t>::max() &&
            now >= t->ready_at_ns) {
          DFTH_PROF_STEAL(t->id, now - t->ready_at_ns);
        }
        return t;
      }
    }
  }
  return nullptr;
}

void WorkStealScheduler::unregister_thread(Tcb* t) {
  DFTH_DCHECK(t->state.load(std::memory_order_relaxed) != ThreadState::Ready);
  (void)t;
}

}  // namespace dfth
