#include "core/lifo_sched.h"

#include <limits>

#include "obs/counters.h"
#include "util/check.h"

namespace dfth {

bool LifoScheduler::register_thread(Tcb* parent, Tcb* child) {
  (void)parent;
  (void)child;
  return false;  // child is pushed; parent keeps the processor
}

void LifoScheduler::on_ready(Tcb* t, int proc) {
  (void)proc;
  Tcb*& top = tops_[static_cast<std::size_t>(t->attr.priority)];
  t->sched_next = top;
  top = t;
  ++ready_;
  DFTH_COUNT(obs::Counter::ReadyPushes);
}

Tcb* LifoScheduler::pick_next(int proc, std::uint64_t now, std::uint64_t* earliest) {
  (void)proc;
  *earliest = std::numeric_limits<std::uint64_t>::max();
  for (int prio = kNumPriorities - 1; prio >= 0; --prio) {
    Tcb** link = &tops_[static_cast<std::size_t>(prio)];
    for (Tcb* t = *link; t; link = &t->sched_next, t = t->sched_next) {
      if (t->ready_at_ns <= now) {
        *link = t->sched_next;
        t->sched_next = nullptr;
        --ready_;
        DFTH_COUNT(obs::Counter::ReadyPops);
        DFTH_HIST_WAIT(obs::Hist::ReadyWaitNs, now, t->ready_at_ns);
        return t;
      }
      if (t->ready_at_ns < *earliest) *earliest = t->ready_at_ns;
    }
  }
  return nullptr;
}

void LifoScheduler::unregister_thread(Tcb* t) {
  DFTH_DCHECK(t->sched_next == nullptr);
  (void)t;
}

}  // namespace dfth
