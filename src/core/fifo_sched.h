// The stock scheduler: a global FIFO ready queue per priority level, as in
// the Solaris 2.5 Pthreads SCHED_OTHER implementation the paper studies.
// A forked child is appended to the queue and the parent keeps running, so
// fork trees execute breadth-first — the root cause of the thread explosion
// in Figures 5 and 6.
#pragma once

#include <array>
#include <cstddef>

#include "core/scheduler.h"

namespace dfth {

class FifoScheduler final : public Scheduler {
 public:
  SchedKind kind() const override { return SchedKind::Fifo; }

  bool register_thread(Tcb* parent, Tcb* child) override;
  void on_ready(Tcb* t, int proc) override;
  Tcb* pick_next(int proc, std::uint64_t now, std::uint64_t* earliest) override;
  void unregister_thread(Tcb* t) override;
  std::size_t ready_count() const override { return ready_; }

 private:
  struct Queue {
    Tcb* head = nullptr;
    Tcb* tail = nullptr;
  };
  std::array<Queue, kNumPriorities> queues_;
  std::size_t ready_ = 0;
};

}  // namespace dfth
