#include "core/order_list.h"

#include <limits>

namespace dfth {
namespace {

constexpr std::uint64_t kMinTag = 0;  // head sentinel
constexpr std::uint64_t kMaxTag = std::numeric_limits<std::uint64_t>::max();  // tail

/// Window scanned on a tag collision before falling back to a full relabel.
constexpr int kLocalWindow = 24;

}  // namespace

OrderList::OrderList() {
  head_.prev = nullptr;
  head_.next = &tail_;
  head_.tag = kMinTag;
  tail_.prev = &head_;
  tail_.next = nullptr;
  tail_.tag = kMaxTag;
}

void OrderList::link(OrderNode* before_node, OrderNode* node, OrderNode* after_node) {
  DFTH_DCHECK(!node->linked());
  node->prev = before_node;
  node->next = after_node;
  before_node->next = node;
  after_node->prev = node;
  ++size_;
  assign_tag(node);
}

void OrderList::push_front(OrderNode* node) { link(&head_, node, head_.next); }

void OrderList::push_back(OrderNode* node) { link(tail_.prev, node, &tail_); }

void OrderList::insert_before(OrderNode* pos, OrderNode* node) {
  DFTH_DCHECK(pos->linked() && pos != &head_);
  link(pos->prev, node, pos);
}

void OrderList::insert_after(OrderNode* pos, OrderNode* node) {
  DFTH_DCHECK(pos->linked() && pos != &tail_);
  link(pos, node, pos->next);
}

void OrderList::erase(OrderNode* node) {
  DFTH_DCHECK(node->linked() && node != &head_ && node != &tail_);
  node->prev->next = node->next;
  node->next->prev = node->prev;
  node->prev = nullptr;
  node->next = nullptr;
  --size_;
}

void OrderList::assign_tag(OrderNode* node) {
  const std::uint64_t lo = node->prev->tag;
  const std::uint64_t hi = node->next->tag;
  if (hi - lo >= 2) {
    node->tag = lo + (hi - lo) / 2;
    return;
  }
  relabel_around(node);
}

void OrderList::relabel_around(OrderNode* node) {
  ++relabels_;
  // Find a window of up to kLocalWindow nodes around `node` whose enclosing
  // tag gap is large enough to give everyone breathing room, then spread the
  // window evenly across that gap.
  OrderNode* lo_fence = node->prev;
  OrderNode* hi_fence = node->next;
  int count = 1;  // `node` itself
  for (int step = 0; step < kLocalWindow; ++step) {
    // Alternately widen toward head and tail.
    if (lo_fence != &head_) {
      lo_fence = lo_fence->prev;
      ++count;
    }
    if (hi_fence != &tail_) {
      hi_fence = hi_fence->next;
      ++count;
    }
    const std::uint64_t gap = hi_fence->tag - lo_fence->tag;
    // Require gap comfortably larger than the node count so the next few
    // inserts in this window do not immediately re-trigger a relabel.
    if (gap / (static_cast<std::uint64_t>(count) + 2) >= 1024) {
      const std::uint64_t stride = gap / (static_cast<std::uint64_t>(count) + 1);
      std::uint64_t tag = lo_fence->tag;
      for (OrderNode* n = lo_fence->next; n != hi_fence; n = n->next) {
        tag += stride;
        n->tag = tag;
      }
      return;
    }
  }
  relabel_all();
}

void OrderList::relabel_all() {
  // Distribute all nodes evenly over the full tag space.
  const std::uint64_t stride = kMaxTag / (static_cast<std::uint64_t>(size_) + 1);
  DFTH_CHECK_MSG(stride >= 2, "order list too large to relabel");
  std::uint64_t tag = 0;
  for (OrderNode* n = head_.next; n != &tail_; n = n->next) {
    tag += stride;
    n->tag = tag;
  }
}

bool OrderList::check_invariants() const {
  std::size_t seen = 0;
  const OrderNode* prev = &head_;
  for (const OrderNode* n = head_.next; n != &tail_; n = n->next) {
    if (n->prev != prev) return false;
    if (n->tag <= prev->tag) return false;
    prev = n;
    ++seen;
  }
  if (tail_.prev != prev) return false;
  if (prev->tag >= kMaxTag) return false;
  return seen == size_;
}

}  // namespace dfth
