#include "core/fifo_sched.h"

#include <limits>

#include "obs/counters.h"
#include "util/check.h"

namespace dfth {

bool FifoScheduler::register_thread(Tcb* parent, Tcb* child) {
  (void)parent;
  (void)child;
  return false;  // child is enqueued; parent keeps the processor
}

void FifoScheduler::on_ready(Tcb* t, int proc) {
  (void)proc;
  Queue& q = queues_[static_cast<std::size_t>(t->attr.priority)];
  t->sched_next = nullptr;
  if (q.tail) {
    q.tail->sched_next = t;
  } else {
    q.head = t;
  }
  q.tail = t;
  ++ready_;
  DFTH_COUNT(obs::Counter::ReadyPushes);
}

Tcb* FifoScheduler::pick_next(int proc, std::uint64_t now, std::uint64_t* earliest) {
  (void)proc;
  *earliest = std::numeric_limits<std::uint64_t>::max();
  for (int prio = kNumPriorities - 1; prio >= 0; --prio) {
    Queue& q = queues_[static_cast<std::size_t>(prio)];
    Tcb* prev = nullptr;
    for (Tcb* t = q.head; t; prev = t, t = t->sched_next) {
      if (t->ready_at_ns <= now) {
        if (prev) {
          prev->sched_next = t->sched_next;
        } else {
          q.head = t->sched_next;
        }
        if (q.tail == t) q.tail = prev;
        t->sched_next = nullptr;
        --ready_;
        DFTH_COUNT(obs::Counter::ReadyPops);
        DFTH_HIST_WAIT(obs::Hist::ReadyWaitNs, now, t->ready_at_ns);
        return t;
      }
      if (t->ready_at_ns < *earliest) *earliest = t->ready_at_ns;
    }
  }
  return nullptr;
}

void FifoScheduler::unregister_thread(Tcb* t) {
  // Exiting threads were Running, hence not in any queue.
  DFTH_DCHECK(t->sched_next == nullptr);
  (void)t;
}

}  // namespace dfth
