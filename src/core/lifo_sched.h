// The paper's first fix (§4 item 1): turn the global ready queue into a
// LIFO stack. A forked child is pushed on top and the parent keeps running;
// dispatch pops the most recently pushed thread, which yields an execution
// order close to depth-first and sharply fewer simultaneously-live threads.
#pragma once

#include <array>
#include <cstddef>

#include "core/scheduler.h"

namespace dfth {

class LifoScheduler final : public Scheduler {
 public:
  SchedKind kind() const override { return SchedKind::Lifo; }

  bool register_thread(Tcb* parent, Tcb* child) override;
  void on_ready(Tcb* t, int proc) override;
  Tcb* pick_next(int proc, std::uint64_t now, std::uint64_t* earliest) override;
  void unregister_thread(Tcb* t) override;
  std::size_t ready_count() const override { return ready_; }

 private:
  std::array<Tcb*, kNumPriorities> tops_{};
  std::size_t ready_ = 0;
};

}  // namespace dfth
