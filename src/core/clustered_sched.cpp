#include "core/clustered_sched.h"

#include <algorithm>
#include <limits>

#include "obs/counters.h"
#include "obs/profile.h"
#include "obs/trace.h"
#include "replay/hooks.h"
#include "util/check.h"

namespace dfth {

ClusteredAdfScheduler::ClusteredAdfScheduler(int nprocs, int cluster_size)
    : cluster_size_(std::max(1, cluster_size)) {
  const int clusters =
      (std::max(1, nprocs) + cluster_size_ - 1) / cluster_size_;
  lists_ = std::vector<OrderList>(static_cast<std::size_t>(clusters));
}

bool ClusteredAdfScheduler::register_thread(Tcb* parent, Tcb* child) {
  child->order.owner = child;
  if (parent && parent->order.linked()) {
    // Child joins its parent's cluster, immediately to the parent's left —
    // the AsyncDF placement, per SMP.
    child->home_proc = parent->home_proc;
    lists_[static_cast<std::size_t>(child->home_proc)].insert_before(
        &parent->order, &child->order);
  } else {
    child->home_proc = 0;
    lists_[0].push_front(&child->order);
  }
  return true;  // the parent is preempted; the processor runs the child
}

void ClusteredAdfScheduler::on_ready(Tcb* t, int proc) {
  (void)proc;  // a thread stays on its home SMP until explicitly migrated
  DFTH_DCHECK(t->order.linked());
  DFTH_DCHECK(t->state.load(std::memory_order_relaxed) == ThreadState::Ready);
  ++ready_;
  DFTH_COUNT(obs::Counter::ReadyPushes);
}

Tcb* ClusteredAdfScheduler::scan(int cluster, std::uint64_t now,
                                 std::uint64_t* earliest) {
  const OrderList& list = lists_[static_cast<std::size_t>(cluster)];
  for (OrderNode* node = list.front();
       node != nullptr && node != list.end_sentinel(); node = node->next) {
    auto* t = static_cast<Tcb*>(node->owner);
    if (t->state.load(std::memory_order_relaxed) != ThreadState::Ready) continue;
    if (t->ready_at_ns <= now) return t;
    if (t->ready_at_ns < *earliest) *earliest = t->ready_at_ns;
  }
  return nullptr;
}

Tcb* ClusteredAdfScheduler::pick_next(int proc, std::uint64_t now,
                                      std::uint64_t* earliest) {
  *earliest = std::numeric_limits<std::uint64_t>::max();
  const int home = std::min(cluster_of(proc),
                            static_cast<int>(lists_.size()) - 1);
  if (Tcb* t = scan(home, now, earliest)) {
    --ready_;
    DFTH_COUNT(obs::Counter::ReadyPops);
    DFTH_HIST_WAIT(obs::Hist::ReadyWaitNs, now, t->ready_at_ns);
    return t;
  }
  // "Threads would be moved between SMPs only when required": the home
  // cluster is dry, so migrate the leftmost ready thread of another cluster
  // (round-robin from the right neighbor) into this one.
  for (std::size_t offset = 1; offset < lists_.size(); ++offset) {
    const int victim =
        static_cast<int>((static_cast<std::size_t>(home) + offset) % lists_.size());
    if (Tcb* t = scan(victim, now, earliest)) {
      lists_[static_cast<std::size_t>(victim)].erase(&t->order);
      // The migrant becomes the leftmost (most urgent) entry of its new SMP;
      // its future children will fork relative to this position.
      lists_[static_cast<std::size_t>(home)].push_front(&t->order);
      t->home_proc = home;
      ++migrations_;
      --ready_;
      DFTH_COUNT(obs::Counter::ReadyPops);
      DFTH_COUNT(obs::Counter::Steals);
      DFTH_TRACE_EMIT(proc, obs::EvKind::Steal, t->id,
                      static_cast<std::uint64_t>(victim));
      DFTH_REPLAY_STEAL(proc, t->id, static_cast<std::uint64_t>(victim));
      DFTH_HIST_WAIT(obs::Hist::ReadyWaitNs, now, t->ready_at_ns);
      DFTH_HIST_WAIT(obs::Hist::StealLatencyNs, now, t->ready_at_ns);
      if (now != std::numeric_limits<std::uint64_t>::max() &&
          now >= t->ready_at_ns) {
        DFTH_PROF_STEAL(t->id, now - t->ready_at_ns);
      }
      return t;
    }
  }
  return nullptr;
}

void ClusteredAdfScheduler::unregister_thread(Tcb* t) {
  if (!t->order.linked()) return;
  lists_[static_cast<std::size_t>(t->home_proc)].erase(&t->order);
}

}  // namespace dfth
