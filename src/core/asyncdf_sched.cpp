#include "core/asyncdf_sched.h"

#include <limits>

#include "obs/counters.h"
#include "util/check.h"

namespace dfth {

bool AsyncDfScheduler::register_thread(Tcb* parent, Tcb* child) {
  child->order.owner = child;
  OrderList& list = lists_[static_cast<std::size_t>(child->attr.priority)];
  if (parent && parent->order.linked() &&
      parent->attr.priority == child->attr.priority) {
    // "A newly forked thread is placed to the immediate left of its parent."
    list.insert_before(&parent->order, &child->order);
  } else {
    // Roots (and cross-priority forks) start at the left end of their level:
    // in a serial depth-first execution the newest work runs first.
    list.push_front(&child->order);
  }
  // "When a parent thread forks a child thread, the parent is preempted
  // immediately and the processor starts executing the child thread."
  // Running a lower-priority child would invert the priority order, so the
  // preemption applies only when the child's level is at least the parent's.
  return parent == nullptr || child->attr.priority >= parent->attr.priority;
}

void AsyncDfScheduler::on_ready(Tcb* t, int proc) {
  (void)t;
  (void)proc;
  // The thread's placeholder never moved; becoming ready is a pure state
  // flip. ("When a thread is preempted, it is returned to the scheduling
  // queue in the same position that it was in when it was last selected.")
  DFTH_DCHECK(t->order.linked());
  DFTH_DCHECK(t->state.load(std::memory_order_relaxed) == ThreadState::Ready);
  ++ready_;
  DFTH_COUNT(obs::Counter::ReadyPushes);
}

Tcb* AsyncDfScheduler::pick_next(int proc, std::uint64_t now, std::uint64_t* earliest) {
  (void)proc;
  *earliest = std::numeric_limits<std::uint64_t>::max();
  for (int prio = kNumPriorities - 1; prio >= 0; --prio) {
    const OrderList& list = lists_[static_cast<std::size_t>(prio)];
    if (list.empty()) continue;
    for (OrderNode* node = list.front(); node != list.end_sentinel(); node = node->next) {
      auto* t = static_cast<Tcb*>(node->owner);
      if (t->state.load(std::memory_order_relaxed) != ThreadState::Ready) continue;
      if (t->ready_at_ns <= now) {
        --ready_;
        DFTH_COUNT(obs::Counter::ReadyPops);
        DFTH_HIST_WAIT(obs::Hist::ReadyWaitNs, now, t->ready_at_ns);
        return t;  // leftmost ready thread at the highest non-empty level
      }
      if (t->ready_at_ns < *earliest) *earliest = t->ready_at_ns;
    }
  }
  return nullptr;
}

void AsyncDfScheduler::unregister_thread(Tcb* t) {
  if (!t->order.linked()) return;
  lists_[static_cast<std::size_t>(t->attr.priority)].erase(&t->order);
}

bool AsyncDfScheduler::serial_before(const Tcb* a, const Tcb* b) const {
  DFTH_CHECK(a->attr.priority == b->attr.priority);
  return lists_[static_cast<std::size_t>(a->attr.priority)].before(&a->order, &b->order);
}

}  // namespace dfth
