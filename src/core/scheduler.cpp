#include "core/scheduler.h"

#include <memory>

#include "core/asyncdf_sched.h"
#include "core/clustered_sched.h"
#include "core/dfdeques_sched.h"
#include "core/fifo_sched.h"
#include "core/lifo_sched.h"
#include "core/worksteal_sched.h"
#include "util/check.h"

namespace dfth {

const char* to_string(SchedKind kind) {
  switch (kind) {
    case SchedKind::Fifo: return "fifo";
    case SchedKind::Lifo: return "lifo";
    case SchedKind::AsyncDf: return "asyncdf";
    case SchedKind::WorkSteal: return "worksteal";
    case SchedKind::ClusteredAdf: return "clustered";
    case SchedKind::DfDeques: return "dfdeques";
  }
  return "?";
}

SchedKind sched_kind_from_string(const std::string& name) {
  if (name == "fifo") return SchedKind::Fifo;
  if (name == "lifo") return SchedKind::Lifo;
  if (name == "asyncdf" || name == "adf" || name == "new") return SchedKind::AsyncDf;
  if (name == "worksteal" || name == "ws" || name == "cilk") return SchedKind::WorkSteal;
  if (name == "clustered" || name == "cadf") return SchedKind::ClusteredAdf;
  if (name == "dfdeques" || name == "dfd") return SchedKind::DfDeques;
  DFTH_CHECK_MSG(false, "unknown scheduler name");
}

std::unique_ptr<Scheduler> make_scheduler(SchedKind kind, int nprocs,
                                          std::uint64_t seed, int cluster_size) {
  switch (kind) {
    case SchedKind::Fifo: return std::make_unique<FifoScheduler>();
    case SchedKind::Lifo: return std::make_unique<LifoScheduler>();
    case SchedKind::AsyncDf: return std::make_unique<AsyncDfScheduler>();
    case SchedKind::WorkSteal:
      return std::make_unique<WorkStealScheduler>(nprocs, seed);
    case SchedKind::ClusteredAdf:
      return std::make_unique<ClusteredAdfScheduler>(nprocs, cluster_size);
    case SchedKind::DfDeques:
      return std::make_unique<DfDequesScheduler>(nprocs);
  }
  DFTH_CHECK_MSG(false, "unknown scheduler kind");
}

}  // namespace dfth
