#include "core/scheduler.h"

#include <memory>

#include "analyze/auditor.h"
#include "core/asyncdf_sched.h"
#include "core/clustered_sched.h"
#include "core/dfdeques_sched.h"
#include "core/fifo_sched.h"
#include "core/lifo_sched.h"
#include "core/worksteal_sched.h"
#include "util/check.h"

namespace dfth {

const char* to_string(SchedKind kind) {
  switch (kind) {
    case SchedKind::Fifo: return "fifo";
    case SchedKind::Lifo: return "lifo";
    case SchedKind::AsyncDf: return "asyncdf";
    case SchedKind::WorkSteal: return "worksteal";
    case SchedKind::ClusteredAdf: return "clustered";
    case SchedKind::DfDeques: return "dfdeques";
  }
  return "?";
}

SchedKind sched_kind_from_string(const std::string& name) {
  if (name == "fifo") return SchedKind::Fifo;
  if (name == "lifo") return SchedKind::Lifo;
  if (name == "asyncdf" || name == "adf" || name == "new") return SchedKind::AsyncDf;
  if (name == "worksteal" || name == "ws" || name == "cilk") return SchedKind::WorkSteal;
  if (name == "clustered" || name == "cadf") return SchedKind::ClusteredAdf;
  if (name == "dfdeques" || name == "dfd") return SchedKind::DfDeques;
  DFTH_CHECK_MSG(false, "unknown scheduler name");
}

std::unique_ptr<Scheduler> make_scheduler(SchedKind kind, int nprocs,
                                          std::uint64_t seed, int cluster_size) {
  std::unique_ptr<Scheduler> sched;
  switch (kind) {
    case SchedKind::Fifo: sched = std::make_unique<FifoScheduler>(); break;
    case SchedKind::Lifo: sched = std::make_unique<LifoScheduler>(); break;
    case SchedKind::AsyncDf: sched = std::make_unique<AsyncDfScheduler>(); break;
    case SchedKind::WorkSteal:
      sched = std::make_unique<WorkStealScheduler>(nprocs, seed);
      break;
    case SchedKind::ClusteredAdf:
      sched = std::make_unique<ClusteredAdfScheduler>(nprocs, cluster_size);
      break;
    case SchedKind::DfDeques:
      sched = std::make_unique<DfDequesScheduler>(nprocs);
      break;
  }
  DFTH_CHECK_MSG(sched != nullptr, "unknown scheduler kind");
#if DFTH_VALIDATE
  sched = std::make_unique<analyze::AuditedScheduler>(std::move(sched));
#endif
  return sched;
}

}  // namespace dfth
