// Cilk-style work stealing, the space-efficient baseline the paper compares
// against in §2.1: per-processor deques of ready threads; on a fork the
// processor runs the child and pushes the parent (work-first); an idle
// processor picks a random victim and steals from the *bottom* (oldest end)
// of its deque. Guarantees live space ≤ p · S1, which bench/abl_ws_vs_adf
// contrasts with AsyncDF's S1 + O(pKD).
//
// Priorities are not supported by this policy (Cilk has none); all threads
// are treated as one level. Victim selection uses a deterministic seeded RNG
// so simulator runs are reproducible.
#pragma once

#include <cstddef>
#include <deque>
#include <vector>

#include "core/scheduler.h"
#include "util/rng.h"

namespace dfth {

class WorkStealScheduler final : public Scheduler {
 public:
  WorkStealScheduler(int nprocs, std::uint64_t seed);

  SchedKind kind() const override { return SchedKind::WorkSteal; }

  bool register_thread(Tcb* parent, Tcb* child) override;
  void on_ready(Tcb* t, int proc) override;
  Tcb* pick_next(int proc, std::uint64_t now, std::uint64_t* earliest) override;
  void unregister_thread(Tcb* t) override;
  std::size_t ready_count() const override { return ready_; }

  std::uint64_t steal_count() const { return steals_; }

 private:
  /// Pops an eligible thread from `dq`; `from_top` selects the owner end
  /// (top/back) vs the thief end (bottom/front).
  Tcb* take(std::deque<Tcb*>& dq, bool from_top, std::uint64_t now,
            std::uint64_t* earliest);

  std::vector<std::deque<Tcb*>> deques_;
  std::size_t ready_ = 0;
  std::uint64_t steals_ = 0;
  Rng rng_;
};

}  // namespace dfth
