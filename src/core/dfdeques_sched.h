// DFDeques-style scheduler: the algorithm the paper says it is "currently
// working on" in §5.3 —
//
//   "ideally, we would not require the user to further coarsen threads for
//    locality. Instead, the scheduling algorithm should schedule threads
//    that are close in the computation graph on the same processor [...]
//    We are currently working on such a space-efficient scheduling
//    algorithm, and preliminary results indicate that good space and time
//    performance can be obtained even at the finer granularity."
//
// (Published after this paper as Narlikar's DFDeques, SPAA'99.) The design
// implemented here follows that work in spirit:
//
//  * each processor owns a deque of ready threads and works on it LIFO
//    (newest first) — consecutive fine-grained threads spawned by the same
//    computation stay on one processor, giving the locality a single global
//    queue destroys;
//  * the deques themselves are kept in a global *serial order* (an
//    order-maintenance list); an idle processor steals the BOTTOM (oldest)
//    thread of the LEFTMOST non-empty deque — stealing follows the serial
//    order instead of picking random victims, preserving the depth-first
//    space discipline;
//  * after a steal the thief's deque is repositioned immediately to the
//    right of the victim's, so work spawned from the stolen thread keeps
//    its serial-order neighborhood;
//  * the AsyncDF memory quota applies unchanged (needs_quota() = true).
//
// Priorities are not supported (single level, like work stealing).
#pragma once

#include <cstddef>
#include <deque>
#include <vector>

#include "core/order_list.h"
#include "core/scheduler.h"

namespace dfth {

class DfDequesScheduler final : public Scheduler {
 public:
  explicit DfDequesScheduler(int nprocs);

  SchedKind kind() const override { return SchedKind::DfDeques; }
  bool needs_quota() const override { return true; }

  bool register_thread(Tcb* parent, Tcb* child) override;
  void on_ready(Tcb* t, int proc) override;
  Tcb* pick_next(int proc, std::uint64_t now, std::uint64_t* earliest) override;
  void unregister_thread(Tcb* t) override;
  std::size_t ready_count() const override { return ready_; }

  std::uint64_t steal_count() const { return steals_; }

  /// True iff proc a's deque precedes proc b's in the global order (tests).
  bool deque_before(int a, int b) const;

 private:
  struct Deque {
    OrderNode order;               ///< position in the global deque order
    std::deque<Tcb*> threads;      ///< back = top (owner end)
    int owner = 0;
  };

  Deque& deque_of(int proc) {
    return deques_[static_cast<std::size_t>(proc) % deques_.size()];
  }
  /// Pops an eligible thread from one end; nullptr if none eligible.
  Tcb* take(Deque& dq, bool from_top, std::uint64_t now, std::uint64_t* earliest);

  std::vector<Deque> deques_;  ///< one per processor, stable addresses
  OrderList order_;            ///< global serial order over the deques
  std::size_t ready_ = 0;
  std::uint64_t steals_ = 0;
};

}  // namespace dfth
