// Heap accounting — the substrate for every space measurement in the paper.
//
// All benchmark allocations go through df_malloc/df_free (runtime/api.h),
// which delegate here. The heap records live bytes, the historical peak
// ("high water mark of total heap memory allocation", the paper's space
// metric in Figs 5b, 7b and 9), allocation counts, and the number of bytes
// that were *fresh* (grew the peak) — the simulator charges fresh pages more
// because the OS must zero-fill and map them.
//
// Thread-safe: counters are atomics; the real engine allocates from many
// kernel threads concurrently.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <unordered_map>
#include <vector>

namespace dfth {

// -- race-detector shadow memory ----------------------------------------------
//
// The happens-before race detector (analyze/race_detector.h) keeps one
// shadow cell per 8-byte *granule* of df_malloc'd memory that the program
// has annotated with df_read/df_write. A cell remembers the last write as a
// FastTrack epoch (thread id, clock) and the read history as either a single
// epoch (the common, O(1) case) or an escalated per-thread clock vector when
// reads are genuinely concurrent. Cells live here — beside the heap that
// owns the memory they shadow — so df_free can retire a block's shadow in
// the same breath that retires the block (stale cells across allocator reuse
// would otherwise report races between unrelated lifetimes).

inline constexpr std::size_t kShadowGranuleBytes = 8;

/// One side of a recorded access, kept for race reports.
struct ShadowAccess {
  const char* site = nullptr;     ///< caller-supplied annotation label
  std::uint64_t order_tag = 0;    ///< serial-order (order-list) position
};

struct ShadowCell {
  std::uint64_t write_epoch = 0;  ///< packed (tid, clock); 0 = never written
  std::uint64_t read_epoch = 0;   ///< single-reader epoch; 0 = none
  std::vector<std::uint64_t> read_vc;  ///< escalated read clocks (index = tid)
  ShadowAccess write_info;
  ShadowAccess read_info;         ///< most recent read
};

/// Hash map of shadow cells keyed by granule index (address >> 3). The race
/// detector performs all cell reads/updates while holding mu(); the heap's
/// deallocation path clears ranges through the self-locking helpers.
class ShadowTable {
 public:
  /// Finds or creates the cell for a granule. Caller holds mu().
  ShadowCell& cell(std::uintptr_t granule);

  /// Drops every cell shadowing [p, p+bytes) — called on df_free so a
  /// recycled block starts with clean shadow. Early-outs without locking
  /// while the table has never held a cell (release-build fast path).
  void clear_range(const void* p, std::size_t bytes);

  void clear_all();
  std::size_t cell_count() const;

  std::mutex& mu() { return mu_; }

 private:
  mutable std::mutex mu_;
  std::atomic<std::size_t> count_{0};  ///< cells_ size mirror (lock-free gate)
  std::unordered_map<std::uintptr_t, ShadowCell> cells_;
};

class TrackedHeap {
 public:
  static TrackedHeap& instance();

  /// Allocates `bytes` (16-byte aligned) and records it. Returns nullptr on
  /// exhaustion with *no* counter mutated — the failure path is effect-free
  /// so callers can retry after the engines' OOM-preempt recovery. No
  /// exception ever leaves this class (a bad_alloc unwinding across a fiber
  /// context switch would kill the process).
  void* allocate(std::size_t bytes);

  /// Frees a pointer from allocate(); nullptr is a no-op.
  void deallocate(void* p);

  /// Size recorded for an allocate()d pointer.
  static std::size_t allocated_size(const void* p);

  std::int64_t live_bytes() const { return live_.load(std::memory_order_relaxed); }
  std::int64_t peak_bytes() const { return peak_.load(std::memory_order_relaxed); }
  std::uint64_t alloc_count() const { return allocs_.load(std::memory_order_relaxed); }
  std::uint64_t free_count() const { return frees_.load(std::memory_order_relaxed); }

  /// Starts a new measurement epoch: peak is reset to the current live level.
  /// Engines call this at run() entry so each experiment reports its own peak.
  void begin_epoch();

  /// Bytes by which the given allocation grew the peak (0 if it fit under
  /// the previous high water mark). Returned by allocate via out-param.
  /// Returns nullptr (leaving *fresh_bytes_out zero and every counter
  /// untouched) when the backing allocation fails, when sizeof(Header) +
  /// bytes would overflow, or when the resil injector fails the
  /// `heap.alloc` site.
  /// `probe_faults` = false skips the kHeapAlloc fault-site evaluation:
  /// df_try_malloc's OOM-recovery retries use it, so one allocation request
  /// draws the site exactly once and an injected failure is transient by
  /// construction (an aggressive plan — every 2nd evaluation failing —
  /// could otherwise fail all bounded retries and surface kNoMem into code
  /// that treats allocation as infallible). `injected_out` (may be null)
  /// reports whether a nullptr return was an injected failure as opposed to
  /// the backing malloc failing.
  void* allocate_ex(std::size_t bytes, std::int64_t* fresh_bytes_out,
                    bool probe_faults = true, bool* injected_out = nullptr);

  /// Shadow cells for the race detector; deallocate() clears a freed
  /// block's range automatically.
  ShadowTable& shadow() { return shadow_; }

 private:
  TrackedHeap() = default;

  std::atomic<std::int64_t> live_{0};
  std::atomic<std::int64_t> peak_{0};
  std::atomic<std::uint64_t> allocs_{0};
  std::atomic<std::uint64_t> frees_{0};
  ShadowTable shadow_;
};

}  // namespace dfth
