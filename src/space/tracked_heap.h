// Heap accounting — the substrate for every space measurement in the paper.
//
// All benchmark allocations go through df_malloc/df_free (runtime/api.h),
// which delegate here. The heap records live bytes, the historical peak
// ("high water mark of total heap memory allocation", the paper's space
// metric in Figs 5b, 7b and 9), allocation counts, and the number of bytes
// that were *fresh* (grew the peak) — the simulator charges fresh pages more
// because the OS must zero-fill and map them.
//
// Thread-safe: counters are atomics; the real engine allocates from many
// kernel threads concurrently.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>

namespace dfth {

class TrackedHeap {
 public:
  static TrackedHeap& instance();

  /// Allocates `bytes` (16-byte aligned) and records it. Aborts on OOM —
  /// callers in this codebase never handle allocation failure locally.
  void* allocate(std::size_t bytes);

  /// Frees a pointer from allocate(); nullptr is a no-op.
  void deallocate(void* p);

  /// Size recorded for an allocate()d pointer.
  static std::size_t allocated_size(const void* p);

  std::int64_t live_bytes() const { return live_.load(std::memory_order_relaxed); }
  std::int64_t peak_bytes() const { return peak_.load(std::memory_order_relaxed); }
  std::uint64_t alloc_count() const { return allocs_.load(std::memory_order_relaxed); }
  std::uint64_t free_count() const { return frees_.load(std::memory_order_relaxed); }

  /// Starts a new measurement epoch: peak is reset to the current live level.
  /// Engines call this at run() entry so each experiment reports its own peak.
  void begin_epoch();

  /// Bytes by which the given allocation grew the peak (0 if it fit under
  /// the previous high water mark). Returned by allocate via out-param.
  void* allocate_ex(std::size_t bytes, std::int64_t* fresh_bytes_out);

 private:
  TrackedHeap() = default;

  std::atomic<std::int64_t> live_{0};
  std::atomic<std::int64_t> peak_{0};
  std::atomic<std::uint64_t> allocs_{0};
  std::atomic<std::uint64_t> frees_{0};
};

}  // namespace dfth
