#include "space/stack_pool.h"

#include <sys/mman.h>
#include <unistd.h>

#include <cstdlib>

#include "analyze/san_fibers.h"
#include "obs/counters.h"
#include "util/check.h"

namespace dfth {
namespace {

std::size_t page_size() {
  static const std::size_t size = static_cast<std::size_t>(::sysconf(_SC_PAGESIZE));
  return size;
}

std::size_t round_up_pages(std::size_t bytes) {
  const std::size_t mask = page_size() - 1;
  return (bytes + mask) & ~mask;
}

}  // namespace

void* Stack::top() const {
  // Skip the guard page at the bottom of the mapping.
  return static_cast<char*>(base) + /*guard*/ 0 + size;
}

StackPool& StackPool::instance() {
  static StackPool* pool = new StackPool();  // leaked: outlives all fibers
  return *pool;
}

Stack StackPool::acquire(std::size_t usable_bytes) {
  const std::size_t usable = round_up_pages(usable_bytes == 0 ? page_size() : usable_bytes);

  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = cache_.find(usable);
    if (it != cache_.end() && !it->second.empty()) {
      void* base = it->second.back();
      it->second.pop_back();
      ++reuse_;
      DFTH_COUNT(obs::Counter::StacksReused);
      live_ += static_cast<std::int64_t>(usable);
      if (live_ > peak_) peak_ = live_;
      // Cached stacks are poisoned while idle (release below); re-arm.
      san::unpoison_stack(base, usable);
      return Stack{base, usable, /*fresh=*/false};
    }
  }

  // Fresh mapping: guard page + usable region. The guard page sits at the
  // *start* of the mapping because stacks grow downward from top().
  const std::size_t total = usable + page_size();
  void* mapping = ::mmap(nullptr, total, PROT_NONE, MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
  DFTH_CHECK_MSG(mapping != MAP_FAILED, "mmap for fiber stack failed");
  void* usable_lo = static_cast<char*>(mapping) + page_size();
  DFTH_CHECK(::mprotect(usable_lo, usable, PROT_READ | PROT_WRITE) == 0);

  std::lock_guard<std::mutex> lock(mu_);
  ++fresh_;
  DFTH_COUNT(obs::Counter::StacksFresh);
  live_ += static_cast<std::int64_t>(usable);
  if (live_ > peak_) peak_ = live_;
  // Stack.base stores the start of the *usable* region; release() and trim()
  // recompute the mapping base from it.
  return Stack{usable_lo, usable, /*fresh=*/true};
}

void StackPool::release(Stack stack) {
  if (!stack) return;
  // Poison the idle stack: any access to a cached-but-unowned stack (a
  // use-after-exit through a stale fiber pointer) becomes an ASan report.
  san::poison_stack(stack.base, stack.size);
  std::lock_guard<std::mutex> lock(mu_);
  live_ -= static_cast<std::int64_t>(stack.size);
  cache_[stack.size].push_back(stack.base);
}

void StackPool::trim() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [size, bases] : cache_) {
    for (void* usable_lo : bases) {
      // Clear our poisoning before the pages go back to the OS — the address
      // range may be recycled by an unrelated mmap with stale shadow.
      san::unpoison_stack(usable_lo, size);
      void* mapping = static_cast<char*>(usable_lo) - page_size();
      ::munmap(mapping, size + page_size());
    }
    bases.clear();
  }
  cache_.clear();
}

std::uint64_t StackPool::fresh_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return fresh_;
}

std::uint64_t StackPool::reuse_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return reuse_;
}

std::int64_t StackPool::live_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return live_;
}

std::int64_t StackPool::peak_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return peak_;
}

void StackPool::begin_epoch() {
  std::lock_guard<std::mutex> lock(mu_);
  peak_ = live_;
  fresh_ = 0;
  reuse_ = 0;
}

StackPool::~StackPool() { trim(); }

}  // namespace dfth
