#include "space/stack_pool.h"

#include <sys/mman.h>
#include <unistd.h>

#include <chrono>
#include <cstdlib>
#include <cstring>
#include <thread>

#include "analyze/san_fibers.h"
#include "obs/counters.h"
#include "resil/faults.h"
#include "space/tracked_heap.h"
#include "util/check.h"

namespace dfth {
namespace {

// Mapping attempts before degrading to a heap-backed stack. Attempt n > 0 is
// preceded by a cache trim and a (50 µs << n) backoff, so a transient
// address-space shortage has three chances to clear.
constexpr int kMapAttempts = 4;

std::size_t page_size() {
  static const std::size_t size = static_cast<std::size_t>(::sysconf(_SC_PAGESIZE));
  return size;
}

std::size_t round_up_pages(std::size_t bytes) {
  const std::size_t mask = page_size() - 1;
  return (bytes + mask) & ~mask;
}

#if DFTH_STACK_USAGE
// Watermark pattern for per-fiber usage measurement: acquire() paints the
// whole usable region, release() scans upward from the low end (stacks grow
// downward) for the first overwritten byte. An unlikely byte value keeps
// false low readings rare.
constexpr unsigned char kStackPaint = 0xDF;

void paint_stack(void* base, std::size_t size) {
  std::memset(base, kStackPaint, size);
}

std::size_t painted_usage(const void* base, std::size_t size) {
  const auto* p = static_cast<const unsigned char*>(base);
  std::size_t i = 0;
  while (i < size && p[i] == kStackPaint) ++i;
  return size - i;
}
#endif

}  // namespace

void* Stack::top() const {
  // `base` already points at the usable-region start — the guard page (when
  // this is a mapped stack) lies entirely below it, so the usable span is
  // exactly [base, base + size).
  DFTH_DCHECK(reinterpret_cast<std::uintptr_t>(base) % page_size() == 0);
  return static_cast<char*>(base) + size;
}

StackPool& StackPool::instance() {
  static StackPool* pool = new StackPool();  // leaked: outlives all fibers
  return *pool;
}

Stack StackPool::acquire(std::size_t usable_bytes) {
  const std::size_t usable = round_up_pages(usable_bytes == 0 ? page_size() : usable_bytes);

  // Both stack-site fault draws happen up front, on *every* acquire, not on
  // the fresh-mapping path only: reuse-vs-fresh is pool state that the
  // record/replay log (src/replay/) does not order, so the per-acquire probe
  // sequence must not depend on it — a replayed run that reuses where the
  // recording mapped fresh would otherwise probe a different site sequence
  // and be reported as a divergence. An injected failure forces the
  // fresh-mapping path below, which treats it as attempt 0's failure.
  const bool pre_inj_mmap = DFTH_FAULT_SHOULD_FAIL(resil::FaultSite::kStackMmap);
  const bool pre_inj_mprotect =
      !pre_inj_mmap && DFTH_FAULT_SHOULD_FAIL(resil::FaultSite::kStackMprotect);

  if (!pre_inj_mmap && !pre_inj_mprotect) {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = cache_.find(usable);
    if (it != cache_.end() && !it->second.empty()) {
      void* base = it->second.back();
      it->second.pop_back();
      ++reuse_;
      DFTH_COUNT(obs::Counter::StacksReused);
      live_ += static_cast<std::int64_t>(usable);
      if (live_ > peak_) peak_ = live_;
      // Cached stacks are poisoned while idle (release below); re-arm.
      san::unpoison_stack(base, usable);
#if DFTH_STACK_USAGE
      paint_stack(base, usable);
#endif
      return Stack{base, usable, /*fresh=*/false, /*heap=*/false};
    }
  }

  // Fresh mapping: guard page + usable region. The guard page sits at the
  // *start* of the mapping because stacks grow downward from top().
  const std::size_t total = usable + page_size();
  bool mmap_failed = false;
  bool mprotect_failed = false;
  for (int attempt = 0; attempt < kMapAttempts; ++attempt) {
    if (attempt > 0) {
      // Resource pressure: hand the idle cached stacks back to the OS, back
      // off exponentially, then ask again.
      trim();
      std::this_thread::sleep_for(std::chrono::microseconds(50u << attempt));
    }
    // Attempt 0 consumes the pre-lookup draws; later attempts draw afresh.
    const bool inj_mmap = attempt == 0
                              ? pre_inj_mmap
                              : DFTH_FAULT_SHOULD_FAIL(resil::FaultSite::kStackMmap);
    void* mapping = MAP_FAILED;
    if (inj_mmap) {
      mmap_failed = true;
    } else {
      mapping = ::mmap(nullptr, total, PROT_NONE, MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
      if (mapping == MAP_FAILED) mmap_failed = true;
    }
    if (mapping == MAP_FAILED) continue;
    void* usable_lo = static_cast<char*>(mapping) + page_size();
    const bool inj_mprotect =
        attempt == 0 ? pre_inj_mprotect
                     : DFTH_FAULT_SHOULD_FAIL(resil::FaultSite::kStackMprotect);
    if (inj_mprotect ||
        ::mprotect(usable_lo, usable, PROT_READ | PROT_WRITE) != 0) {
      mprotect_failed = true;
      ::munmap(mapping, total);
      continue;
    }

    {
      std::lock_guard<std::mutex> lock(mu_);
      ++fresh_;
      DFTH_COUNT(obs::Counter::StacksFresh);
      live_ += static_cast<std::int64_t>(usable);
      if (live_ > peak_) peak_ = live_;
    }
    if (mmap_failed) DFTH_FAULT_RECOVERED(resil::FaultSite::kStackMmap);
    if (mprotect_failed) DFTH_FAULT_RECOVERED(resil::FaultSite::kStackMprotect);
    // Stack.base stores the start of the *usable* region; release() and
    // trim() recompute the mapping base from it.
#if DFTH_STACK_USAGE
    paint_stack(usable_lo, usable);
#endif
    return Stack{usable_lo, usable, /*fresh=*/true, /*heap=*/false};
  }

  // Every mapping attempt failed: degrade to a plain heap allocation. No
  // guard page — an overflow corrupts the heap instead of faulting — but a
  // degraded run beats an aborted one, and the engines still account the
  // bytes. Page-aligned so top()/context_make see the same geometry.
  void* heap_base = std::aligned_alloc(page_size(), usable);
  if (heap_base == nullptr) return Stack{};  // caller degrades further
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++fresh_;
    DFTH_COUNT(obs::Counter::StacksFresh);
    live_ += static_cast<std::int64_t>(usable);
    if (live_ > peak_) peak_ = live_;
  }
  if (mmap_failed) DFTH_FAULT_RECOVERED(resil::FaultSite::kStackMmap);
  if (mprotect_failed) DFTH_FAULT_RECOVERED(resil::FaultSite::kStackMprotect);
#if DFTH_STACK_USAGE
  paint_stack(heap_base, usable);
#endif
  return Stack{heap_base, usable, /*fresh=*/true, /*heap=*/true};
}

void StackPool::release(Stack stack) {
  if (!stack) return;
  // Retire race-detector shadow covering the stack before it can be recycled:
  // a later fiber reusing this region must not inherit epochs from a dead
  // one's locals (the same reuse hazard df_free handles for heap blocks).
  // O(1) while the shadow table is empty, i.e. in every non-race run.
  TrackedHeap::instance().shadow().clear_range(stack.base, stack.size);
#if DFTH_STACK_USAGE
  const auto used = static_cast<std::int64_t>(painted_usage(stack.base, stack.size));
#else
  constexpr std::int64_t used = 0;
#endif
  if (stack.heap) {
    // Heap-backed fallback stacks exist only under memory pressure; free
    // them immediately rather than caching a guard-less stack for reuse.
    std::lock_guard<std::mutex> lock(mu_);
    if (used > high_water_) high_water_ = used;
    live_ -= static_cast<std::int64_t>(stack.size);
    std::free(stack.base);
    return;
  }
  // Poison the idle stack: any access to a cached-but-unowned stack (a
  // use-after-exit through a stale fiber pointer) becomes an ASan report.
  san::poison_stack(stack.base, stack.size);
  std::lock_guard<std::mutex> lock(mu_);
  if (used > high_water_) high_water_ = used;
  live_ -= static_cast<std::int64_t>(stack.size);
  cache_[stack.size].push_back(stack.base);
}

void StackPool::trim() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [size, bases] : cache_) {
    for (void* usable_lo : bases) {
      // Clear our poisoning before the pages go back to the OS — the address
      // range may be recycled by an unrelated mmap with stale shadow.
      san::unpoison_stack(usable_lo, size);
      void* mapping = static_cast<char*>(usable_lo) - page_size();
      ::munmap(mapping, size + page_size());
    }
    bases.clear();
  }
  cache_.clear();
}

std::uint64_t StackPool::fresh_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return fresh_;
}

std::uint64_t StackPool::reuse_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return reuse_;
}

std::int64_t StackPool::live_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return live_;
}

std::int64_t StackPool::peak_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return peak_;
}

std::int64_t StackPool::high_water_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return high_water_;
}

void StackPool::begin_epoch() {
  std::lock_guard<std::mutex> lock(mu_);
  peak_ = live_;
  fresh_ = 0;
  reuse_ = 0;
  high_water_ = 0;
}

StackPool::~StackPool() { trim(); }

}  // namespace dfth
