#include "space/tracked_heap.h"

#include <cstdlib>

#include "analyze/san_fibers.h"
#include "obs/counters.h"
#include "resil/faults.h"
#include "util/check.h"

namespace dfth {
namespace {

// Header stored immediately before the user pointer. 16 bytes keeps the user
// block 16-aligned (malloc returns 16-aligned storage on x86-64 glibc).
struct alignas(16) Header {
  std::uint64_t size;
  std::uint64_t magic;
};
constexpr std::uint64_t kMagic = 0xdf7ea11ced0c0de5ULL;

// Peeking at the header of a pointer that did not come from df_malloc is
// itself an out-of-bounds read under ASan (e.g. a redzone below a stack
// variable), so ASan would report the peek before our own diagnostic runs.
// Probe addressability first and let the DFTH_CHECK fire instead.
bool header_readable(const Header* header) {
#if defined(DFTH_ASAN_ENABLED)
  return __asan_region_is_poisoned(const_cast<Header*>(header),
                                   sizeof(Header)) == nullptr;
#else
  (void)header;
  return true;
#endif
}

}  // namespace

// -- ShadowTable --------------------------------------------------------------

ShadowCell& ShadowTable::cell(std::uintptr_t granule) {
  auto [it, inserted] = cells_.try_emplace(granule);
  if (inserted) count_.fetch_add(1, std::memory_order_relaxed);
  return it->second;
}

void ShadowTable::clear_range(const void* p, std::size_t bytes) {
  if (count_.load(std::memory_order_relaxed) == 0 || bytes == 0) return;
  const auto lo = reinterpret_cast<std::uintptr_t>(p) / kShadowGranuleBytes;
  const auto hi =
      (reinterpret_cast<std::uintptr_t>(p) + bytes - 1) / kShadowGranuleBytes;
  std::lock_guard<std::mutex> g(mu_);
  for (std::uintptr_t granule = lo; granule <= hi; ++granule) {
    if (cells_.erase(granule)) count_.fetch_sub(1, std::memory_order_relaxed);
  }
}

void ShadowTable::clear_all() {
  std::lock_guard<std::mutex> g(mu_);
  cells_.clear();
  count_.store(0, std::memory_order_relaxed);
}

std::size_t ShadowTable::cell_count() const {
  std::lock_guard<std::mutex> g(mu_);
  return cells_.size();
}

// -- TrackedHeap --------------------------------------------------------------

TrackedHeap& TrackedHeap::instance() {
  static TrackedHeap heap;
  return heap;
}

void* TrackedHeap::allocate(std::size_t bytes) {
  std::int64_t fresh = 0;
  return allocate_ex(bytes, &fresh);
}

void* TrackedHeap::allocate_ex(std::size_t bytes, std::int64_t* fresh_bytes_out,
                               bool probe_faults, bool* injected_out) {
  *fresh_bytes_out = 0;
  if (injected_out) *injected_out = false;
  // Failure must be effect-free: counters, live bytes and the peak are only
  // touched once the backing allocation is in hand, so a failed attempt
  // followed by an engine OOM-preempt retry never double-counts. (The old
  // path threw bad_alloc here — out of a fiber, through a context switch,
  // straight into std::terminate.)
  if (bytes > SIZE_MAX - sizeof(Header)) return nullptr;  // size overflow
  if (probe_faults && DFTH_FAULT_SHOULD_FAIL(resil::FaultSite::kHeapAlloc)) {
    if (injected_out) *injected_out = true;
    return nullptr;
  }
  auto* header = static_cast<Header*>(std::malloc(sizeof(Header) + bytes));
  if (!header) return nullptr;
  header->size = bytes;
  header->magic = kMagic;

  allocs_.fetch_add(1, std::memory_order_relaxed);
  DFTH_COUNT(obs::Counter::Allocs);
  DFTH_COUNT_N(obs::Counter::AllocBytes, bytes);
  const std::int64_t live_now =
      live_.fetch_add(static_cast<std::int64_t>(bytes), std::memory_order_relaxed) +
      static_cast<std::int64_t>(bytes);
  // Raise the peak with a CAS loop; report how much of this allocation was
  // above the previous peak ("fresh" memory the OS had to provide).
  std::int64_t prev_peak = peak_.load(std::memory_order_relaxed);
  std::int64_t fresh = 0;
  while (live_now > prev_peak) {
    if (peak_.compare_exchange_weak(prev_peak, live_now, std::memory_order_relaxed)) {
      fresh = live_now - prev_peak;
      break;
    }
  }
  *fresh_bytes_out = fresh;
  return header + 1;
}

void TrackedHeap::deallocate(void* p) {
  if (!p) return;
  auto* header = static_cast<Header*>(p) - 1;
  DFTH_CHECK_MSG(header_readable(header) && header->magic == kMagic,
                 "df_free of pointer not from df_malloc");
  header->magic = 0;
  // Retire the block's shadow with the block: the allocator may hand this
  // range to an unrelated thread immediately, and a stale cell would pair
  // the new owner's first access against the dead lifetime's last one.
  shadow_.clear_range(p, header->size);
  frees_.fetch_add(1, std::memory_order_relaxed);
  DFTH_COUNT(obs::Counter::Frees);
  DFTH_COUNT_N(obs::Counter::FreeBytes, header->size);
  live_.fetch_sub(static_cast<std::int64_t>(header->size), std::memory_order_relaxed);
  std::free(header);
}

std::size_t TrackedHeap::allocated_size(const void* p) {
  auto* header = static_cast<const Header*>(p) - 1;
  DFTH_CHECK_MSG(header_readable(header) && header->magic == kMagic,
                 "allocated_size of foreign pointer");
  return header->size;
}

void TrackedHeap::begin_epoch() {
  peak_.store(live_.load(std::memory_order_relaxed), std::memory_order_relaxed);
}

}  // namespace dfth
