// Fiber stack management with caching, mirroring the Solaris Pthreads
// behaviour the paper studies in §4 item 3.
//
// Solaris caches freed default-size (1 MB) thread stacks for reuse; a fresh
// stack costs an mmap + page faults (the paper measures 200 µs for 8 KB up
// to 260 µs for 1 MB), while a cached one is nearly free. We reproduce that
// structure: stacks are mmap'd with a PROT_NONE guard page below the usable
// region, cached per size class on release, and the pool reports
// fresh-vs-reused counts plus live/peak stack bytes so engines can charge
// the right virtual cost and report stack footprints.
//
// Resource exhaustion is recoverable, not fatal: when the mapping syscalls
// fail (or the resil fault injector says they did), acquire() trims the
// idle cache and retries with exponential backoff, then degrades to a
// guard-less heap-backed stack, and only returns a null Stack once even the
// heap is gone — callers (the engines) then degrade further by running the
// child inline on its parent's stack.
#pragma once

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <unordered_map>
#include <vector>

namespace dfth {

struct Stack {
  void* base = nullptr;    ///< start of the *usable* region; null = "no stack".
  std::size_t size = 0;    ///< usable bytes (excludes the guard page).
  bool fresh = false;      ///< true if this acquire mapped/allocated rather than reused.
  bool heap = false;       ///< guard-less heap fallback; freed (not cached) on release.

  /// One-past-the-highest usable address; fiber stacks grow downward from
  /// here. `base` is the usable-region start (the guard page, when present,
  /// sits *below* base and is not part of [base, top())).
  void* top() const;
  explicit operator bool() const { return base != nullptr; }
};

class StackPool {
 public:
  static StackPool& instance();

  /// Returns a stack with at least `usable_bytes` of usable space (rounded
  /// up to a whole number of pages). Reuses a cached stack of the same size
  /// class when available. Under resource exhaustion it retries (trimming
  /// the cache, backing off exponentially), then falls back to a
  /// heap-backed stack without a guard page; a null Stack is returned only
  /// when every fallback failed.
  Stack acquire(std::size_t usable_bytes);

  /// Returns the stack to the size-class cache (does not unmap). Heap-backed
  /// fallback stacks are freed immediately instead of cached.
  void release(Stack stack);

  /// Unmaps every cached stack (used between experiments, by tests, and by
  /// acquire() itself under memory pressure).
  void trim();

  // -- statistics ---------------------------------------------------------
  std::uint64_t fresh_count() const;
  std::uint64_t reuse_count() const;
  std::int64_t live_bytes() const;   ///< bytes in stacks currently acquired
  std::int64_t peak_bytes() const;   ///< high water of live_bytes
  void begin_epoch();                ///< reset peak + counters to current

  /// Largest per-fiber stack usage observed: bytes actually written on any
  /// single stack, measured at release() by scanning for the watermark
  /// pattern painted at acquire(). Only -DDFTH_STACK_USAGE builds paint and
  /// scan (touching every page defeats lazy allocation, so it is opt-in);
  /// elsewhere this is always 0. tools/stack_bound.py compares this
  /// observed value against the static worst-case bound.
  std::int64_t high_water_bytes() const;

  ~StackPool();

 private:
  StackPool() = default;

  mutable std::mutex mu_;
  std::unordered_map<std::size_t, std::vector<void*>> cache_;  // size -> bases
  std::uint64_t fresh_ = 0;
  std::uint64_t reuse_ = 0;
  std::int64_t live_ = 0;
  std::int64_t peak_ = 0;
  std::int64_t high_water_ = 0;
};

}  // namespace dfth
