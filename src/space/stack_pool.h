// Fiber stack management with caching, mirroring the Solaris Pthreads
// behaviour the paper studies in §4 item 3.
//
// Solaris caches freed default-size (1 MB) thread stacks for reuse; a fresh
// stack costs an mmap + page faults (the paper measures 200 µs for 8 KB up
// to 260 µs for 1 MB), while a cached one is nearly free. We reproduce that
// structure: stacks are mmap'd with a PROT_NONE guard page below the usable
// region, cached per size class on release, and the pool reports
// fresh-vs-reused counts plus live/peak stack bytes so engines can charge
// the right virtual cost and report stack footprints.
#pragma once

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <unordered_map>
#include <vector>

namespace dfth {

struct Stack {
  void* base = nullptr;    ///< mmap base (guard page); null means "no stack".
  std::size_t size = 0;    ///< usable bytes (excludes the guard page).
  bool fresh = false;      ///< true if this acquire mmap'd rather than reused.

  /// Highest usable address; fiber stacks grow downward from here.
  void* top() const;
  explicit operator bool() const { return base != nullptr; }
};

class StackPool {
 public:
  static StackPool& instance();

  /// Returns a stack with at least `usable_bytes` of usable space (rounded
  /// up to a whole number of pages). Reuses a cached stack of the same size
  /// class when available.
  Stack acquire(std::size_t usable_bytes);

  /// Returns the stack to the size-class cache (does not unmap).
  void release(Stack stack);

  /// Unmaps every cached stack (used between experiments and by tests).
  void trim();

  // -- statistics ---------------------------------------------------------
  std::uint64_t fresh_count() const;
  std::uint64_t reuse_count() const;
  std::int64_t live_bytes() const;   ///< bytes in stacks currently acquired
  std::int64_t peak_bytes() const;   ///< high water of live_bytes
  void begin_epoch();                ///< reset peak + counters to current

  ~StackPool();

 private:
  StackPool() = default;

  mutable std::mutex mu_;
  std::unordered_map<std::size_t, std::vector<void*>> cache_;  // size -> bases
  std::uint64_t fresh_ = 0;
  std::uint64_t reuse_ = 0;
  std::int64_t live_ = 0;
  std::int64_t peak_ = 0;
};

}  // namespace dfth
