#include "apps/spmv/spmv.h"

#include <algorithm>
#include <cmath>

#include "runtime/api.h"
#include "runtime/sync.h"
#include "util/check.h"
#include "util/rng.h"

namespace dfth::apps {

CsrMatrix::CsrMatrix(std::size_t rows, std::size_t cols) : rows_(rows), cols_(cols) {
  row_ptr_ = static_cast<std::uint32_t*>(
      df_malloc(sizeof(std::uint32_t) * (rows_ + 1)));
  row_ptr_[0] = 0;
}

CsrMatrix::~CsrMatrix() {
  df_free(row_ptr_);
  df_free(col_idx_);
  df_free(values_);
}

void CsrMatrix::assign(const std::vector<std::vector<std::uint32_t>>& pattern,
                       std::uint64_t value_seed) {
  DFTH_CHECK(pattern.size() == rows_);
  nnz_ = 0;
  for (const auto& row : pattern) nnz_ += row.size();
  df_free(col_idx_);
  df_free(values_);
  col_idx_ = static_cast<std::uint32_t*>(df_malloc(sizeof(std::uint32_t) * nnz_));
  values_ = static_cast<double*>(df_malloc(sizeof(double) * nnz_));
  Rng rng(value_seed);
  std::size_t at = 0;
  for (std::size_t i = 0; i < rows_; ++i) {
    row_ptr_[i] = static_cast<std::uint32_t>(at);
    for (std::uint32_t col : pattern[i]) {
      DFTH_CHECK(col < cols_);
      col_idx_[at] = col;
      values_[at] = rng.next_double(-1.0, 1.0);
      ++at;
    }
  }
  row_ptr_[rows_] = static_cast<std::uint32_t>(at);
}

void spmv_generate(CsrMatrix& m, const SpmvConfig& cfg) {
  Rng rng(cfg.seed);
  const std::size_t n = cfg.rows;
  // Spatially correlated row densities: the middle of the index range is a
  // "refined region" with ~8x denser rows, so equal row-count partitions are
  // strongly imbalanced (the property the fine-grained experiment needs).
  std::vector<double> weight(n);
  double weight_sum = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double x = static_cast<double>(i) / static_cast<double>(n) - 0.5;
    weight[i] = 1.0 + 7.0 * std::exp(-x * x / 0.02);
    weight_sum += weight[i];
  }

  std::vector<std::vector<std::uint32_t>> pattern(n);
  const double per_weight =
      static_cast<double>(cfg.target_nnz) / weight_sum;
  for (std::size_t i = 0; i < n; ++i) {
    // At least the diagonal; remaining degree from the row's weight with a
    // little jitter (finite-element rows vary locally).
    const double want = weight[i] * per_weight + rng.next_double(-0.5, 0.5);
    const auto degree = static_cast<std::size_t>(std::max(1.0, want));
    auto& row = pattern[i];
    row.push_back(static_cast<std::uint32_t>(i));
    // Bandwidth-limited neighbors, as in a node-numbered FE mesh.
    const std::int64_t band = 2000;
    for (std::size_t k = 1; k < degree; ++k) {
      const std::int64_t off = rng.next_range(-band, band);
      std::int64_t col = static_cast<std::int64_t>(i) + off;
      if (col < 0) col = -col;
      if (col >= static_cast<std::int64_t>(n)) col = 2 * static_cast<std::int64_t>(n) - 2 - col;
      row.push_back(static_cast<std::uint32_t>(col));
    }
    std::sort(row.begin(), row.end());
    row.erase(std::unique(row.begin(), row.end()), row.end());
  }
  m.assign(pattern, cfg.seed ^ 0x9e3779b97f4a7c15ULL);
}

namespace {

/// w[lo..hi) = (M·v)[lo..hi). Annotates 30 work units per nonzero: SpMV is
/// memory-bound — each nonzero is an irregular gather (index load + two
/// value loads, usually missing cache) worth ~50 cycles of machine time,
/// not its 2 flops. This calibrates the kernel to the few-Mflop/s rates
/// 1990s machines sustained on sparse codes, vs the ~100 Mflop/s the cost
/// model assumes for blocked dense kernels.
void product_rows(const CsrMatrix& m, const double* v, double* w, std::size_t lo,
                  std::size_t hi) {
  const std::uint32_t* row_ptr = m.row_ptr();
  const std::uint32_t* col = m.col_idx();
  const double* val = m.values();
  df_read(v, m.cols() * sizeof(double), "spmv/product_rows:v");
  df_write(w + lo, (hi - lo) * sizeof(double), "spmv/product_rows:w");
  for (std::size_t i = lo; i < hi; ++i) {
    double sum = 0.0;
    for (std::uint32_t k = row_ptr[i]; k < row_ptr[i + 1]; ++k) {
      sum += val[k] * v[col[k]];
    }
    w[i] = sum;
  }
  annotate_work(30ull * (row_ptr[hi] - row_ptr[lo]));
}

/// Row boundaries splitting [0, rows) into `parts` with ~equal nonzeros.
std::vector<std::size_t> nnz_balanced_bounds(const CsrMatrix& m, int parts) {
  std::vector<std::size_t> bounds(static_cast<std::size_t>(parts) + 1, 0);
  const auto total = static_cast<double>(m.nnz());
  std::size_t row = 0;
  for (int part = 1; part < parts; ++part) {
    const auto target = static_cast<std::uint32_t>(
        total * static_cast<double>(part) / static_cast<double>(parts));
    while (row < m.rows() && m.row_ptr()[row] < target) ++row;
    bounds[static_cast<std::size_t>(part)] = row;
  }
  bounds[static_cast<std::size_t>(parts)] = m.rows();
  return bounds;
}

}  // namespace

void spmv_serial(const CsrMatrix& m, const double* v, double* w) {
  product_rows(m, v, w, 0, m.rows());
}

void spmv_coarse(const CsrMatrix& m, const double* v, double* w,
                 const SpmvConfig& cfg, int nprocs) {
  DFTH_CHECK_MSG(in_runtime(), "spmv_coarse outside dfth::run");
  // One long-lived thread per processor; disjoint nnz-balanced row ranges
  // (writes to w need no locking); a barrier ends each iteration.
  const auto bounds = nnz_balanced_bounds(m, nprocs);
  Barrier barrier(nprocs);
  std::vector<Thread> threads;
  threads.reserve(static_cast<std::size_t>(nprocs));
  for (int t = 0; t < nprocs; ++t) {
    const std::size_t lo = bounds[static_cast<std::size_t>(t)];
    const std::size_t hi = bounds[static_cast<std::size_t>(t) + 1];
    threads.push_back(spawn([&m, v, w, lo, hi, &barrier, &cfg]() -> void* {
      for (int iter = 0; iter < cfg.iterations; ++iter) {
        product_rows(m, v, w, lo, hi);
        barrier.arrive_and_wait();
      }
      return nullptr;
    }));
  }
  for (auto& t : threads) join(t);
}

void spmv_fine(const CsrMatrix& m, const double* v, double* w,
               const SpmvConfig& cfg) {
  DFTH_CHECK_MSG(in_runtime(), "spmv_fine outside dfth::run");
  // threads_per_iter threads created and destroyed in each iteration; rows
  // "partitioned equally rather than by number of nonzeros, and the load is
  // automatically balanced by the threads scheduler."
  const int parts = cfg.threads_per_iter;
  for (int iter = 0; iter < cfg.iterations; ++iter) {
    std::vector<Thread> threads;
    threads.reserve(static_cast<std::size_t>(parts));
    for (int t = 0; t < parts; ++t) {
      const std::size_t lo = m.rows() * static_cast<std::size_t>(t) /
                             static_cast<std::size_t>(parts);
      const std::size_t hi = m.rows() * (static_cast<std::size_t>(t) + 1) /
                             static_cast<std::size_t>(parts);
      threads.push_back(spawn([&m, v, w, lo, hi]() -> void* {
        product_rows(m, v, w, lo, hi);
        return nullptr;
      }));
    }
    for (auto& t : threads) join(t);
  }
}

double spmv_max_abs_diff(const double* x, const double* y, std::size_t n) {
  double worst = 0.0;
  for (std::size_t i = 0; i < n; ++i) worst = std::max(worst, std::abs(x[i] - y[i]));
  return worst;
}

}  // namespace dfth::apps
