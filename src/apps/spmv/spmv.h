// Sparse matrix-vector product — the paper's Spark98 benchmark (§5.1.5).
//
// The paper times 20 iterations of w = M·v for an unsymmetric sparse matrix
// from a San Fernando-valley earthquake finite-element mesh (30,169 rows,
// 151,239 nonzeros). That mesh is not distributable, so we generate a
// synthetic finite-element-style matrix with the same dimensions and — the
// property that actually matters for the scheduling experiment — a skewed
// row-length distribution: equal *row-count* partitions then carry unequal
// work, which defeats the fine-grained version's naive partition unless the
// scheduler load-balances it (exactly the paper's point).
//
// Two parallelizations, as in the paper:
//  * coarse: one thread per processor created once; rows partitioned by
//    nonzero count (balanced); a Barrier ends each iteration.
//  * fine: `threads_per_iter` threads (128 in the paper) created and
//    destroyed every iteration; rows partitioned equally by row count
//    (imbalanced); the scheduler balances the load.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace dfth::apps {

/// CSR matrix. Buffers are df_malloc'd so the matrix shows up in the space
/// accounting (it dominates the benchmark's S1).
class CsrMatrix {
 public:
  CsrMatrix(std::size_t rows, std::size_t cols);
  ~CsrMatrix();
  CsrMatrix(const CsrMatrix&) = delete;
  CsrMatrix& operator=(const CsrMatrix&) = delete;

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t nnz() const { return nnz_; }

  const std::uint32_t* row_ptr() const { return row_ptr_; }
  const std::uint32_t* col_idx() const { return col_idx_; }
  const double* values() const { return values_; }

  /// Builder: set the pattern from per-row column lists (sorted, deduped).
  void assign(const std::vector<std::vector<std::uint32_t>>& pattern,
              std::uint64_t value_seed);

 private:
  std::size_t rows_, cols_, nnz_ = 0;
  std::uint32_t* row_ptr_ = nullptr;
  std::uint32_t* col_idx_ = nullptr;
  double* values_ = nullptr;
};

struct SpmvConfig {
  std::size_t rows = 30169;   ///< paper: San Fernando mesh rows
  std::size_t target_nnz = 151239;
  int iterations = 20;
  int threads_per_iter = 128;  ///< fine-grained version
  std::uint64_t seed = 1998;
};

/// Generates the synthetic finite-element-style matrix (see header comment):
/// a 1-D bandwidth-limited stencil with power-law row densities.
void spmv_generate(CsrMatrix& m, const SpmvConfig& cfg);

/// Serial reference: w = M·v once (callers loop for iterations).
void spmv_serial(const CsrMatrix& m, const double* v, double* w);

/// Coarse-grained: nprocs long-lived threads + barrier per iteration; writes
/// the final iterate into w. Must run inside dfth::run().
void spmv_coarse(const CsrMatrix& m, const double* v, double* w,
                 const SpmvConfig& cfg, int nprocs);

/// Fine-grained: threads_per_iter threads spawned per iteration, equal row
/// ranges. Must run inside dfth::run().
void spmv_fine(const CsrMatrix& m, const double* v, double* w,
               const SpmvConfig& cfg);

double spmv_max_abs_diff(const double* x, const double* y, std::size_t n);

}  // namespace dfth::apps
