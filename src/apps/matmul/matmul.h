// Dense matrix multiply — the paper's case study (§3, Figure 4).
//
// A block-based divide-and-conquer multiply: each recursive call runs in a
// freshly forked thread; the recursion stops at `base` (64 on the paper's
// UltraSPARC) and switches to a serial blocked kernel. Internal nodes
// allocate an n×n temporary T through df_malloc, compute the four C-quadrant
// products and four T-quadrant products in eight forked children, join,
// parallel-add T into C, and free T — precisely the allocation pattern that
// makes the FIFO scheduler's breadth-first execution blow up to ~115 MB on
// the 1024×1024 input (Figure 5b) while a depth-first order needs ~25 MB.
//
// Work annotations: 2·b³ virtual ops per b×b×b base multiply, b² per b×b
// base addition — so total annotated work is 2n³ + O(n²·log) regardless of
// schedule, and simulated speedups are comparable across schedulers.
#pragma once

#include <cstddef>
#include <cstdint>

namespace dfth::apps {

struct MatmulConfig {
  std::size_t n = 512;     ///< matrix dimension (power of two)
  std::size_t base = 64;   ///< serial recursion cutoff (power of two)
};

/// Validates the configuration (powers of two, base <= n).
bool matmul_config_valid(const MatmulConfig& cfg);

/// Fills `a` (n*n, row-major) with deterministic pseudo-random values.
void matmul_fill(double* a, std::size_t n, std::uint64_t seed);

/// Serial reference: C = A·B with the same blocked kernel and the same work
/// annotations as the parallel version (the paper's "serial C version").
void matmul_serial(const double* a, const double* b, double* c,
                   const MatmulConfig& cfg);

/// Fine-grained threaded version (Figure 4): must run inside dfth::run().
/// C = A·B.
void matmul_threaded(const double* a, const double* b, double* c,
                     const MatmulConfig& cfg);

/// Strassen's algorithm, threaded — the paper's §3 remark made concrete:
/// "The more complex but asymptotically faster Strassen's matrix multiply
/// can also be implemented in a similar divide-and-conquer fashion with a
/// few extra lines of code." Seven recursive products forked per node, each
/// internal node df_malloc'ing its M-buffers and operand temporaries — an
/// even harsher allocation pattern than Figure 4's, which makes the
/// space-efficient scheduler matter more (bench/abl_strassen). Must run
/// inside dfth::run(). C = A·B.
void matmul_strassen_threaded(const double* a, const double* b, double* c,
                              const MatmulConfig& cfg);

/// Max |x-y| over two n*n matrices (verification).
double matmul_max_abs_diff(const double* x, const double* y, std::size_t n);

/// Total annotated work of one multiply (for analytic speedup checks).
std::uint64_t matmul_total_ops(const MatmulConfig& cfg);

}  // namespace dfth::apps
