#include "apps/matmul/matmul.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <vector>

#include "runtime/api.h"
#include "util/check.h"
#include "util/rng.h"

namespace dfth::apps {
namespace {

bool power_of_two(std::size_t x) { return x != 0 && (x & (x - 1)) == 0; }

/// View over a square sub-block of a row-major matrix with leading
/// dimension `ld`.
struct View {
  double* p;
  std::size_t ld;

  View quad(std::size_t qi, std::size_t qj, std::size_t half) const {
    return View{p + qi * half * ld + qj * half, ld};
  }
};

struct ConstView {
  const double* p;
  std::size_t ld;

  ConstView quad(std::size_t qi, std::size_t qj, std::size_t half) const {
    return ConstView{p + qi * half * ld + qj * half, ld};
  }
};

/// Serial blocked kernel: C += A·B for an n×n block (ikj order for stride-1
/// inner loops). One work annotation covers the whole call.
void serial_mult_add(ConstView a, ConstView b, View c, std::size_t n) {
  // Race-detector annotations are per row (the views are strided, so one
  // span per matrix would cover bytes the kernel never touches). C is
  // read-modify-write; the write annotation is the stronger claim.
  for (std::size_t k = 0; k < n; ++k) {
    df_read(b.p + k * b.ld, n * sizeof(double), "matmul/serial_mult_add:B");
  }
  for (std::size_t i = 0; i < n; ++i) {
    const double* arow = a.p + i * a.ld;
    double* crow = c.p + i * c.ld;
    df_read(arow, n * sizeof(double), "matmul/serial_mult_add:A");
    df_write(crow, n * sizeof(double), "matmul/serial_mult_add:C");
    for (std::size_t k = 0; k < n; ++k) {
      const double aik = arow[k];
      const double* brow = b.p + k * b.ld;
      for (std::size_t j = 0; j < n; ++j) crow[j] += aik * brow[j];
    }
  }
  annotate_work(2 * n * n * n);
}

void serial_add(ConstView t, View c, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    const double* trow = t.p + i * t.ld;
    double* crow = c.p + i * c.ld;
    df_read(trow, n * sizeof(double), "matmul/serial_add:T");
    df_write(crow, n * sizeof(double), "matmul/serial_add:C");
    for (std::size_t j = 0; j < n; ++j) crow[j] += trow[j];
  }
  annotate_work(n * n);
}

// -- serial divide and conquer ---------------------------------------------
// The serial version performs the eight products sequentially, accumulating
// straight into C (no temporary — this is why the paper's serial program
// peaks at just the input size).
void serial_rec(ConstView a, ConstView b, View c, std::size_t n, std::size_t base) {
  if (n <= base) {
    serial_mult_add(a, b, c, n);
    return;
  }
  const std::size_t h = n / 2;
  for (std::size_t i = 0; i < 2; ++i) {
    for (std::size_t j = 0; j < 2; ++j) {
      View cij = c.quad(i, j, h);
      serial_rec(a.quad(i, 0, h), b.quad(0, j, h), cij, h, base);
      serial_rec(a.quad(i, 1, h), b.quad(1, j, h), cij, h, base);
    }
  }
}

// -- parallel divide and conquer (paper Figure 4) -----------------------------

void parallel_add_rec(ConstView t, View c, std::size_t n, std::size_t base) {
  if (n <= base) {
    serial_add(t, c, n);
    return;
  }
  const std::size_t h = n / 2;
  Thread kids[4];
  int nk = 0;
  for (std::size_t i = 0; i < 2; ++i) {
    for (std::size_t j = 0; j < 2; ++j) {
      ConstView tq = t.quad(i, j, h);
      View cq = c.quad(i, j, h);
      kids[nk++] = spawn([tq, cq, h, base]() -> void* {
        parallel_add_rec(tq, cq, h, base);
        return nullptr;
      });
    }
  }
  for (int i = 0; i < nk; ++i) join(kids[i]);
}

void parallel_rec(ConstView a, ConstView b, View c, std::size_t n, std::size_t base) {
  if (n <= base) {
    serial_mult_add(a, b, c, n);
    return;
  }
  // T = mem_alloc(size * size): the temporary that the FIFO schedule keeps
  // live at every tree level simultaneously.
  auto* tbuf = static_cast<double*>(df_malloc(n * n * sizeof(double)));
  std::fill(tbuf, tbuf + n * n, 0.0);
  annotate_work(n * n / 4);  // zero-fill cost
  View t{tbuf, n};

  const std::size_t h = n / 2;
  struct Job {
    ConstView a, b;
    View c;
  };
  const Job jobs[8] = {
      // Four products accumulate into C's quadrants...
      {a.quad(0, 0, h), b.quad(0, 0, h), c.quad(0, 0, h)},
      {a.quad(0, 0, h), b.quad(0, 1, h), c.quad(0, 1, h)},
      {a.quad(1, 0, h), b.quad(0, 0, h), c.quad(1, 0, h)},
      {a.quad(1, 0, h), b.quad(0, 1, h), c.quad(1, 1, h)},
      // ...and four into T's quadrants.
      {a.quad(0, 1, h), b.quad(1, 0, h), t.quad(0, 0, h)},
      {a.quad(0, 1, h), b.quad(1, 1, h), t.quad(0, 1, h)},
      {a.quad(1, 1, h), b.quad(1, 0, h), t.quad(1, 0, h)},
      {a.quad(1, 1, h), b.quad(1, 1, h), t.quad(1, 1, h)},
  };
  Thread kids[8];
  for (int i = 0; i < 8; ++i) {
    const Job job = jobs[i];
    kids[i] = spawn([job, h, base]() -> void* {
      parallel_rec(job.a, job.b, job.c, h, base);
      return nullptr;
    });
  }
  for (int i = 0; i < 8; ++i) join(kids[i]);

  parallel_add_rec(ConstView{t.p, t.ld}, c, n, base);
  df_free(tbuf);
}

// -- Strassen (threaded) ------------------------------------------------------

/// Dense half-size scratch matrix backed by df_malloc.
struct Scratch {
  double* p;
  std::size_t n;
  explicit Scratch(std::size_t n_in)
      : p(static_cast<double*>(df_malloc(n_in * n_in * sizeof(double)))), n(n_in) {}
  ~Scratch() { df_free(p); }
  Scratch(const Scratch&) = delete;
  Scratch& operator=(const Scratch&) = delete;
  View view() { return View{p, n}; }
  ConstView cview() const { return ConstView{p, n}; }
};

/// dst = a + sign * b over h×h views; annotated as h² ops.
void add_into(ConstView a, ConstView b, View dst, std::size_t h, double sign) {
  for (std::size_t i = 0; i < h; ++i) {
    const double* ar = a.p + i * a.ld;
    const double* br = b.p + i * b.ld;
    double* dr = dst.p + i * dst.ld;
    df_read(ar, h * sizeof(double), "matmul/add_into:A");
    df_read(br, h * sizeof(double), "matmul/add_into:B");
    df_write(dr, h * sizeof(double), "matmul/add_into:dst");
    for (std::size_t j = 0; j < h; ++j) dr[j] = ar[j] + sign * br[j];
  }
  annotate_work(h * h);
}

void strassen_rec(ConstView a, ConstView b, View c, std::size_t n,
                  std::size_t base) {
  if (n <= base) {
    // Base case overwrites: zero then accumulate with the blocked kernel.
    for (std::size_t i = 0; i < n; ++i) {
      std::fill(c.p + i * c.ld, c.p + i * c.ld + n, 0.0);
    }
    serial_mult_add(a, b, c, n);
    return;
  }
  const std::size_t h = n / 2;
  const ConstView a11 = a.quad(0, 0, h), a12 = a.quad(0, 1, h);
  const ConstView a21 = a.quad(1, 0, h), a22 = a.quad(1, 1, h);
  const ConstView b11 = b.quad(0, 0, h), b12 = b.quad(0, 1, h);
  const ConstView b21 = b.quad(1, 0, h), b22 = b.quad(1, 1, h);

  // Seven products M1..M7 into fresh buffers; each product thread owns its
  // two operand temporaries (allocated before the fork, like Figure 4's T).
  Scratch m[7] = {Scratch(h), Scratch(h), Scratch(h), Scratch(h),
                  Scratch(h), Scratch(h), Scratch(h)};
  struct Job {
    ConstView la, lb;   // operands if no temp needed
    int mode;           // bit 0: left is temp, bit 1: right is temp
    ConstView ta1, ta2; // left temp = ta1 + lsign*ta2
    double lsign;
    ConstView tb1, tb2; // right temp = tb1 + rsign*tb2
    double rsign;
  };
  const Job jobs[7] = {
      // M1 = (A11+A22)(B11+B22)
      {a11, b11, 3, a11, a22, 1.0, b11, b22, 1.0},
      // M2 = (A21+A22) B11
      {a11, b11, 1, a21, a22, 1.0, b11, b11, 0.0},
      // M3 = A11 (B12-B22)
      {a11, b11, 2, a11, a11, 0.0, b12, b22, -1.0},
      // M4 = A22 (B21-B11)
      {a22, b11, 2, a11, a11, 0.0, b21, b11, -1.0},
      // M5 = (A11+A12) B22
      {a11, b22, 1, a11, a12, 1.0, b11, b11, 0.0},
      // M6 = (A21-A11)(B11+B12)
      {a11, b11, 3, a21, a11, -1.0, b11, b12, 1.0},
      // M7 = (A12-A22)(B21+B22)
      {a11, b11, 3, a12, a22, -1.0, b21, b22, 1.0},
  };
  Thread kids[7];
  for (int i = 0; i < 7; ++i) {
    const Job& job = jobs[i];
    View mi = m[i].view();
    kids[i] = spawn([job, mi, h, base]() -> void* {
      // Operand temporaries live only as long as the product needs them.
      std::unique_ptr<Scratch> lt, rt;
      ConstView left = job.la, right = job.lb;
      if (job.mode & 1) {
        lt = std::make_unique<Scratch>(h);
        add_into(job.ta1, job.ta2, lt->view(), h, job.lsign);
        left = lt->cview();
      }
      if (job.mode & 2) {
        rt = std::make_unique<Scratch>(h);
        add_into(job.tb1, job.tb2, rt->view(), h, job.rsign);
        right = rt->cview();
      }
      strassen_rec(left, right, mi, h, base);
      return nullptr;
    });
  }
  for (auto& kid : kids) join(kid);

  // C11 = M1+M4-M5+M7, C12 = M3+M5, C21 = M2+M4, C22 = M1-M2+M3+M6.
  View c11 = c.quad(0, 0, h), c12 = c.quad(0, 1, h);
  View c21 = c.quad(1, 0, h), c22 = c.quad(1, 1, h);
  add_into(m[0].cview(), m[3].cview(), c11, h, 1.0);
  add_into(ConstView{c11.p, c11.ld}, m[4].cview(), c11, h, -1.0);
  add_into(ConstView{c11.p, c11.ld}, m[6].cview(), c11, h, 1.0);
  add_into(m[2].cview(), m[4].cview(), c12, h, 1.0);
  add_into(m[1].cview(), m[3].cview(), c21, h, 1.0);
  add_into(m[0].cview(), m[1].cview(), c22, h, -1.0);
  add_into(ConstView{c22.p, c22.ld}, m[2].cview(), c22, h, 1.0);
  add_into(ConstView{c22.p, c22.ld}, m[5].cview(), c22, h, 1.0);
}

}  // namespace

bool matmul_config_valid(const MatmulConfig& cfg) {
  return power_of_two(cfg.n) && power_of_two(cfg.base) && cfg.base <= cfg.n;
}

void matmul_fill(double* a, std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  for (std::size_t i = 0; i < n * n; ++i) a[i] = rng.next_double(-1.0, 1.0);
}

void matmul_serial(const double* a, const double* b, double* c,
                   const MatmulConfig& cfg) {
  DFTH_CHECK(matmul_config_valid(cfg));
  std::fill(c, c + cfg.n * cfg.n, 0.0);
  serial_rec(ConstView{a, cfg.n}, ConstView{b, cfg.n}, View{c, cfg.n}, cfg.n,
             cfg.base);
}

void matmul_threaded(const double* a, const double* b, double* c,
                     const MatmulConfig& cfg) {
  DFTH_CHECK(matmul_config_valid(cfg));
  DFTH_CHECK_MSG(in_runtime(), "matmul_threaded outside dfth::run");
  std::fill(c, c + cfg.n * cfg.n, 0.0);
  parallel_rec(ConstView{a, cfg.n}, ConstView{b, cfg.n}, View{c, cfg.n}, cfg.n,
               cfg.base);
}

void matmul_strassen_threaded(const double* a, const double* b, double* c,
                              const MatmulConfig& cfg) {
  DFTH_CHECK(matmul_config_valid(cfg));
  DFTH_CHECK_MSG(in_runtime(), "matmul_strassen_threaded outside dfth::run");
  strassen_rec(ConstView{a, cfg.n}, ConstView{b, cfg.n}, View{c, cfg.n}, cfg.n,
               cfg.base);
}

double matmul_max_abs_diff(const double* x, const double* y, std::size_t n) {
  double worst = 0.0;
  for (std::size_t i = 0; i < n * n; ++i) {
    worst = std::max(worst, std::fabs(x[i] - y[i]));
  }
  return worst;
}

std::uint64_t matmul_total_ops(const MatmulConfig& cfg) {
  // 2n^3 from the base multiplies plus the add/zero-fill terms of each level.
  std::uint64_t total = 2ull * cfg.n * cfg.n * cfg.n;
  for (std::size_t m = cfg.n; m > cfg.base; m /= 2) {
    // At size m there are (n/m)^3 multiply nodes... but additions happen per
    // node of the *multiply* recursion: each internal node of size m does a
    // zero-fill (m²/4) and an add of m² over its T. Number of internal nodes
    // of size m is 8^(log2(n/m)) = (n/m)^3.
    const std::uint64_t nodes = (cfg.n / m) * (cfg.n / m) * (cfg.n / m);
    total += nodes * (m * m + m * m / 4);
  }
  return total;
}

}  // namespace dfth::apps
