// One-dimensional complex FFT — the paper's FFTW benchmark (§5.1.4).
//
// FFTW 1.x's multithreaded DFT "forks a Pthread for each recursive
// transform, until the specified number of threads are created; after that
// it executes the recursion serially." We reproduce exactly that thread
// structure over a from-scratch recursive Cooley-Tukey radix-2 DIT
// transform (out-of-place, precomputed twiddle table). The paper runs
// N = 2^22 with either p threads (p = processor count) or 256 threads and
// shows that the 256-thread version is insensitive to awkward processor
// counts because the scheduler load-balances it (Figure 10).
//
// Work annotation: 10 flops per butterfly (4 mul + 6 add), i.e. 5·N per
// combine level — the standard 5·N·log2(N) radix-2 operation count.
#pragma once

#include <complex>
#include <cstddef>
#include <cstdint>

namespace dfth::apps {

using Complex = std::complex<double>;

/// Precomputed twiddle factors for transforms of size n (allocated through
/// df_malloc so plans are part of the space accounting, like FFTW plans).
class FftPlan {
 public:
  /// n must be a power of two. `inverse` builds the conjugate plan.
  explicit FftPlan(std::size_t n, bool inverse = false);
  ~FftPlan();
  FftPlan(const FftPlan&) = delete;
  FftPlan& operator=(const FftPlan&) = delete;

  std::size_t size() const { return n_; }
  bool inverse() const { return inverse_; }

  /// Serial transform: out = DFT(in). in/out must not alias; |in| = |out| = n.
  void execute_serial(const Complex* in, Complex* out) const;

  /// Threaded transform mirroring FFTW's model: forks a thread per recursive
  /// sub-transform until `nthreads` exist. Must run inside dfth::run().
  /// (nthreads = 1 degenerates to execute_serial's recursion.)
  void execute_threaded(const Complex* in, Complex* out, int nthreads) const;

 private:
  friend struct FftRec;
  std::size_t n_ = 0;
  bool inverse_ = false;
  Complex* twiddle_ = nullptr;  ///< w^k, k in [0, n/2)
};

/// Fills `data` with a deterministic pseudo-random signal.
void fft_fill(Complex* data, std::size_t n, std::uint64_t seed);

/// O(n^2) reference DFT (test oracle for small n).
void naive_dft(const Complex* in, Complex* out, std::size_t n, bool inverse = false);

/// Max |x-y| over n complex values.
double fft_max_abs_diff(const Complex* x, const Complex* y, std::size_t n);

/// Total annotated work of one transform: 5·n·log2(n).
std::uint64_t fft_total_ops(std::size_t n);

}  // namespace dfth::apps
