#include "apps/fft/fft.h"

#include <cmath>

#include "runtime/api.h"
#include "util/check.h"
#include "util/rng.h"

namespace dfth::apps {
namespace {

constexpr double kPi = 3.14159265358979323846;

bool power_of_two(std::size_t x) { return x != 0 && (x & (x - 1)) == 0; }

std::uint32_t log2_size(std::size_t n) {
  std::uint32_t lg = 0;
  while ((std::size_t{1} << lg) < n) ++lg;
  return lg;
}

}  // namespace

// Recursive decimation-in-time worker. Shared by the serial and threaded
// paths; `threads_left` > 1 forks the even-half transform as a new thread
// (FFTW's model: one fork per recursive transform until the budget is
// spent).
struct FftRec {
  const FftPlan* plan;

  // out[0..n) = DFT of in[0], in[stride], in[2*stride], ...
  void transform(const Complex* in, Complex* out, std::size_t n, std::size_t stride,
                 int threads_left) const {
    if (n == 1) {
      df_read(in, sizeof(Complex), "fft/transform:in");
      df_write(out, sizeof(Complex), "fft/transform:out");
      out[0] = in[0];
      return;
    }
    const std::size_t half = n / 2;
    if (threads_left > 1) {
      const int child_budget = threads_left / 2;
      const int my_budget = threads_left - child_budget;
      Thread child = spawn([this, in, out, half, stride, child_budget]() -> void* {
        transform(in, out, half, stride * 2, child_budget);
        return nullptr;
      });
      transform(in + stride, out + half, half, stride * 2, my_budget);
      join(child);
    } else {
      transform(in, out, half, stride * 2, 1);
      transform(in + stride, out + half, half, stride * 2, 1);
    }
    combine(out, n);
  }

  // Butterfly pass merging the two half transforms in out[0..n).
  void combine(Complex* out, std::size_t n) const {
    const std::size_t half = n / 2;
    const std::size_t twiddle_stride = plan->n_ / n;
    // Butterflies read and rewrite the whole out[0..n) range in place.
    df_write(out, n * sizeof(Complex), "fft/combine:out");
    for (std::size_t k = 0; k < half; ++k) {
      const Complex t = plan->twiddle_[k * twiddle_stride] * out[k + half];
      out[k + half] = out[k] - t;
      out[k] = out[k] + t;
    }
    annotate_work(5 * n);  // 10 flops per butterfly, n/2 butterflies
  }
};

FftPlan::FftPlan(std::size_t n, bool inverse) : n_(n), inverse_(inverse) {
  DFTH_CHECK_MSG(power_of_two(n), "FFT size must be a power of two");
  twiddle_ = static_cast<Complex*>(df_malloc(sizeof(Complex) * (n_ / 2)));
  df_write(twiddle_, sizeof(Complex) * (n_ / 2), "fft/plan:twiddle");
  const double sign = inverse_ ? 2.0 : -2.0;
  for (std::size_t k = 0; k < n_ / 2; ++k) {
    const double angle = sign * kPi * static_cast<double>(k) / static_cast<double>(n_);
    twiddle_[k] = Complex(std::cos(angle), std::sin(angle));
  }
}

FftPlan::~FftPlan() { df_free(twiddle_); }

void FftPlan::execute_serial(const Complex* in, Complex* out) const {
  FftRec rec{this};
  rec.transform(in, out, n_, 1, 1);
}

void FftPlan::execute_threaded(const Complex* in, Complex* out, int nthreads) const {
  DFTH_CHECK_MSG(in_runtime(), "execute_threaded outside dfth::run");
  DFTH_CHECK(nthreads >= 1);
  FftRec rec{this};
  rec.transform(in, out, n_, 1, nthreads);
}

void fft_fill(Complex* data, std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  for (std::size_t i = 0; i < n; ++i) {
    data[i] = Complex(rng.next_double(-1.0, 1.0), rng.next_double(-1.0, 1.0));
  }
}

void naive_dft(const Complex* in, Complex* out, std::size_t n, bool inverse) {
  const double sign = inverse ? 2.0 : -2.0;
  for (std::size_t k = 0; k < n; ++k) {
    Complex sum(0.0, 0.0);
    for (std::size_t j = 0; j < n; ++j) {
      const double angle =
          sign * kPi * static_cast<double>(k * j % n) / static_cast<double>(n);
      sum += in[j] * Complex(std::cos(angle), std::sin(angle));
    }
    out[k] = sum;
  }
}

double fft_max_abs_diff(const Complex* x, const Complex* y, std::size_t n) {
  double worst = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    worst = std::max(worst, std::abs(x[i] - y[i]));
  }
  return worst;
}

std::uint64_t fft_total_ops(std::size_t n) {
  return 5ull * n * log2_size(n);
}

}  // namespace dfth::apps
