#include "apps/fmm/fmm.h"

#include <cmath>

#include "runtime/api.h"
#include "util/check.h"
#include "util/rng.h"

namespace dfth::apps {
namespace {

using Cx = std::complex<double>;

/// Binomial coefficient table up to 2*terms (tiny; recomputed per run).
struct Binomials {
  explicit Binomials(int max_n) : n_(max_n + 1), c_(n_ * n_, 0.0) {
    for (int n = 0; n < n_; ++n) {
      at(n, 0) = 1.0;
      for (int k = 1; k <= n; ++k) {
        at(n, k) = at(n - 1, k - 1) + (k <= n - 1 ? at(n - 1, k) : 0.0);
      }
    }
  }
  double& at(int n, int k) { return c_[static_cast<std::size_t>(n) * n_ + k]; }
  double get(int n, int k) const {
    return c_[static_cast<std::size_t>(n) * static_cast<std::size_t>(n_) + k];
  }
  int n_;
  std::vector<double> c_;
};

/// One level of the uniform grid: side*side cells, each holding multipole
/// (a[0..P]) and local (b[0..P]) coefficient blocks in flat df_malloc'd
/// arrays.
struct Level {
  int side = 0;
  int terms = 0;
  Cx* multipole = nullptr;
  Cx* local = nullptr;

  std::size_t cells() const { return static_cast<std::size_t>(side) * side; }
  Cx* mult(int ix, int iy) {
    return multipole + (static_cast<std::size_t>(iy) * side + ix) * (terms + 1);
  }
  Cx* loc(int ix, int iy) {
    return local + (static_cast<std::size_t>(iy) * side + ix) * (terms + 1);
  }
  Cx center(int ix, int iy) const {
    const double w = 1.0 / side;
    return Cx((ix + 0.5) * w, (iy + 0.5) * w);
  }
};

struct FmmGrid {
  explicit FmmGrid(const FmmConfig& cfg, const std::vector<FmmParticle>& particles)
      : cfg_(cfg), binom_(2 * cfg.terms + 2) {
    levels_.resize(static_cast<std::size_t>(cfg.levels));
    for (int l = 0; l < cfg.levels; ++l) {
      Level& lev = levels_[static_cast<std::size_t>(l)];
      lev.side = 1 << l;
      lev.terms = cfg.terms;
      const std::size_t n = lev.cells() * static_cast<std::size_t>(cfg.terms + 1);
      lev.multipole = static_cast<Cx*>(df_malloc(sizeof(Cx) * n));
      lev.local = static_cast<Cx*>(df_malloc(sizeof(Cx) * n));
      for (std::size_t i = 0; i < n; ++i) {
        lev.multipole[i] = Cx(0, 0);
        lev.local[i] = Cx(0, 0);
      }
    }
    // Bucket particles into finest-level cells.
    Level& leaf = leaf_level();
    buckets_.resize(leaf.cells());
    for (std::size_t i = 0; i < particles.size(); ++i) {
      const auto [ix, iy] = cell_of(particles[i]);
      buckets_[static_cast<std::size_t>(iy) * leaf.side + ix].push_back(
          static_cast<std::uint32_t>(i));
    }
  }
  ~FmmGrid() {
    for (auto& lev : levels_) {
      df_free(lev.multipole);
      df_free(lev.local);
    }
  }

  Level& leaf_level() { return levels_.back(); }
  std::pair<int, int> cell_of(const FmmParticle& p) const {
    const int side = 1 << (cfg_.levels - 1);
    const int ix = std::min(side - 1, static_cast<int>(p.x * side));
    const int iy = std::min(side - 1, static_cast<int>(p.y * side));
    return {ix, iy};
  }
  const std::vector<std::uint32_t>& bucket(int ix, int iy) const {
    return buckets_[static_cast<std::size_t>(iy) * levels_.back().side + ix];
  }

  FmmConfig cfg_;
  Binomials binom_;
  std::vector<Level> levels_;
  std::vector<std::vector<std::uint32_t>> buckets_;
};

// ---------------------------------------------------------------------------
// Expansion operators (Greengard & Rokhlin 2-D Laplace)
// ---------------------------------------------------------------------------

/// P2M: multipole about `center` from particles. a[0] = sum q;
/// a[k] = -sum q (z - c)^k / k.
void p2m(const std::vector<FmmParticle>& particles,
         const std::vector<std::uint32_t>& idx, Cx center, Cx* a, int terms) {
  df_write(a, sizeof(Cx) * static_cast<std::size_t>(terms + 1), "fmm/p2m:multipole");
  for (int k = 0; k <= terms; ++k) a[k] = Cx(0, 0);
  for (std::uint32_t i : idx) {
    const FmmParticle& p = particles[i];
    const Cx dz = Cx(p.x, p.y) - center;
    a[0] += p.charge;
    Cx pow = dz;
    for (int k = 1; k <= terms; ++k) {
      a[k] -= p.charge * pow / static_cast<double>(k);
      pow *= dz;
    }
  }
  annotate_work(idx.size() * static_cast<std::uint64_t>(terms) * 8 + 10);
}

/// M2M: child multipole (about zc) shifted to parent center zp.
/// b[l] += a[0] * (-d^l / l) + sum_{k=1..l} a[k] d^{l-k} C(l-1, k-1), d = zc-zp.
void m2m(const Cx* a, Cx zc, Cx* b, Cx zp, int terms, const Binomials& binom) {
  df_read(a, sizeof(Cx) * static_cast<std::size_t>(terms + 1), "fmm/m2m:child");
  df_write(b, sizeof(Cx) * static_cast<std::size_t>(terms + 1), "fmm/m2m:parent");
  const Cx d = zc - zp;
  b[0] += a[0];
  Cx dl = d;  // d^l
  for (int l = 1; l <= terms; ++l) {
    Cx sum = -a[0] * dl / static_cast<double>(l);
    Cx dpow(1, 0);  // d^(l-k), built from k=l down
    for (int k = l; k >= 1; --k) {
      sum += a[k] * dpow * binom.get(l - 1, k - 1);
      dpow *= d;
    }
    b[l] += sum;
    dl *= d;
  }
  annotate_work(static_cast<std::uint64_t>(terms) * terms * 3 + 10);
}

/// M2L: multipole about z0 converted to a local expansion about z1
/// (well-separated; d = z1 - z0):
///   b[0] += a[0] log(d) + sum_k a[k] / d^k * (-1)^k
///   b[l] += -a[0]/(l (-d)^l) + (1/(-d)^l) sum_k a[k]/d^k C(l+k-1,k-1) (-1)^k
/// (signs folded below; derived from log(z-z0) = log(-d) + log(1 - w/d)
/// with w = z - z1 ... implemented in the equivalent "expand about z1" form)
void m2l(const Cx* a, Cx z0, Cx* b, Cx z1, int terms, const Binomials& binom) {
  df_read(a, sizeof(Cx) * static_cast<std::size_t>(terms + 1), "fmm/m2l:multipole");
  df_write(b, sizeof(Cx) * static_cast<std::size_t>(terms + 1), "fmm/m2l:local");
  const Cx d = z0 - z1;  // vector from target center to source center
  // log(z - z0) about z1: with w = z - z1, z - z0 = w - d = -d (1 - w/d):
  //   log(z - z0) = log(-d) - sum_{l>=1} (w/d)^l / l
  // 1/(z - z0)^k = (-1)^k d^{-k} (1 - w/d)^{-k}
  //             = (-1)^k d^{-k} sum_l C(k+l-1, l) (w/d)^l.
  const Cx logd = std::log(-d);
  Cx dk(1, 0);  // d^-k accumulator via division
  // l = 0 term:
  Cx b0 = a[0] * logd;
  {
    Cx invdk(1, 0);
    double sign = 1.0;
    for (int k = 1; k <= terms; ++k) {
      invdk /= d;
      sign = -sign;
      b0 += a[k] * invdk * sign;
    }
  }
  b[0] += b0;
  (void)dk;
  Cx invdl(1, 0);
  for (int l = 1; l <= terms; ++l) {
    invdl /= d;
    Cx sum = -a[0] / static_cast<double>(l);
    Cx invdk(1, 0);
    double sign = 1.0;
    for (int k = 1; k <= terms; ++k) {
      invdk /= d;
      sign = -sign;
      sum += a[k] * invdk * sign * binom.get(l + k - 1, k - 1);
    }
    b[l] += sum * invdl;
  }
  annotate_work(static_cast<std::uint64_t>(terms) * terms * 4 + 16);
}

/// L2L: local about z0 shifted to z1: b[l] += sum_{k>=l} a[k] C(k,l) (z1-z0)^{k-l}.
void l2l(const Cx* a, Cx z0, Cx* b, Cx z1, int terms, const Binomials& binom) {
  df_read(a, sizeof(Cx) * static_cast<std::size_t>(terms + 1), "fmm/l2l:src");
  df_write(b, sizeof(Cx) * static_cast<std::size_t>(terms + 1), "fmm/l2l:dst");
  const Cx d = z1 - z0;
  for (int l = 0; l <= terms; ++l) {
    Cx sum(0, 0);
    Cx dpow(1, 0);
    for (int k = l; k <= terms; ++k) {
      sum += a[k] * binom.get(k, l) * dpow;
      dpow *= d;
    }
    b[l] += sum;
  }
  annotate_work(static_cast<std::uint64_t>(terms) * terms * 3 + 8);
}

/// L2P: evaluate the local expansion at a particle.
double l2p(const Cx* b, Cx center, const FmmParticle& p, int terms) {
  const Cx w = Cx(p.x, p.y) - center;
  Cx acc = b[terms];
  for (int k = terms - 1; k >= 0; --k) acc = acc * w + b[k];  // Horner
  return acc.real();
}

/// Direct particle-particle potential between two buckets (may alias).
void p2p(std::vector<FmmParticle>& particles, const std::vector<std::uint32_t>& a,
         const std::vector<std::uint32_t>& b, std::vector<double>& out) {
  for (std::uint32_t i : a) {
    double phi = 0.0;
    df_write(&out[i], sizeof(double), "fmm/p2p:out");
    const FmmParticle& pi = particles[i];
    for (std::uint32_t j : b) {
      if (i == j) continue;
      const FmmParticle& pj = particles[j];
      const double dx = pi.x - pj.x, dy = pi.y - pj.y;
      phi += pj.charge * 0.5 * std::log(dx * dx + dy * dy);
    }
    out[i] += phi;
  }
  annotate_work(a.size() * b.size() * 8);
}

// ---------------------------------------------------------------------------
// Binary-tree parallel-for: the paper forks δ-way work "as a binary tree
// instead of a δ-way fork" because Pthreads only has a binary fork.
// ---------------------------------------------------------------------------

template <typename Fn>
void binary_tree_for(std::size_t lo, std::size_t hi, std::size_t grain, const Fn& fn) {
  if (hi - lo <= grain) {
    for (std::size_t i = lo; i < hi; ++i) fn(i);
    return;
  }
  const std::size_t mid = lo + (hi - lo) / 2;
  Thread left = spawn([lo, mid, grain, &fn]() -> void* {
    binary_tree_for(lo, mid, grain, fn);
    return nullptr;
  });
  binary_tree_for(mid, hi, grain, fn);
  join(left);
}

// ---------------------------------------------------------------------------
// Solver phases; `threaded` selects serial or forked execution.
// ---------------------------------------------------------------------------

void run_fmm(std::vector<FmmParticle>& particles, const FmmConfig& cfg,
             bool threaded) {
  DFTH_CHECK(cfg.levels >= 2);
  DFTH_CHECK(cfg.terms >= 1);
  FmmGrid grid(cfg, particles);
  const int finest = cfg.levels - 1;
  Level& leaf = grid.leaf_level();
  const int side = leaf.side;
  const int P = cfg.terms;
  const Binomials& binom = grid.binom_;

  // Phase 1: P2M — one thread per leaf cell.
  auto phase1 = [&](std::size_t cell) {
    const int ix = static_cast<int>(cell) % side;
    const int iy = static_cast<int>(cell) / side;
    p2m(particles, grid.bucket(ix, iy), leaf.center(ix, iy), leaf.mult(ix, iy), P);
  };
  if (threaded) {
    binary_tree_for(0, leaf.cells(), 1, phase1);
  } else {
    for (std::size_t c = 0; c < leaf.cells(); ++c) phase1(c);
  }

  // Phase 2: M2M upward — one thread per parent cell, level by level.
  for (int l = finest - 1; l >= 0; --l) {
    Level& parent = grid.levels_[static_cast<std::size_t>(l)];
    Level& child = grid.levels_[static_cast<std::size_t>(l + 1)];
    auto phase2 = [&](std::size_t cell) {
      const int ix = static_cast<int>(cell) % parent.side;
      const int iy = static_cast<int>(cell) / parent.side;
      for (int cy = 2 * iy; cy <= 2 * iy + 1; ++cy) {
        for (int cx = 2 * ix; cx <= 2 * ix + 1; ++cx) {
          m2m(child.mult(cx, cy), child.center(cx, cy), parent.mult(ix, iy),
              parent.center(ix, iy), P, binom);
        }
      }
    };
    if (threaded) {
      binary_tree_for(0, parent.cells(), 1, phase2);
    } else {
      for (std::size_t c = 0; c < parent.cells(); ++c) phase2(c);
    }
  }

  // Phase 3: downward — L2L from parent plus M2L over the interaction list,
  // chunked `cfg.chunk` entries per thread; each chunk accumulates into a
  // df_malloc'd partial expansion (the phase's dynamic allocation).
  for (int l = 1; l <= finest; ++l) {
    Level& cur = grid.levels_[static_cast<std::size_t>(l)];
    Level& up = grid.levels_[static_cast<std::size_t>(l - 1)];
    auto phase3 = [&](std::size_t cell) {
      const int ix = static_cast<int>(cell) % cur.side;
      const int iy = static_cast<int>(cell) / cur.side;
      Cx* local = cur.loc(ix, iy);
      // L2L from parent.
      l2l(up.loc(ix / 2, iy / 2), up.center(ix / 2, iy / 2), local,
          cur.center(ix, iy), P, binom);
      // Interaction list: children of parent's neighbors that are not our
      // own neighbors (|dx|>1 or |dy|>1), within bounds. Up to 27 entries.
      int list_x[32], list_y[32];
      int count = 0;
      for (int ny = 2 * (iy / 2) - 2; ny <= 2 * (iy / 2) + 3; ++ny) {
        for (int nx = 2 * (ix / 2) - 2; nx <= 2 * (ix / 2) + 3; ++nx) {
          if (nx < 0 || ny < 0 || nx >= cur.side || ny >= cur.side) continue;
          if (std::abs(nx - ix) <= 1 && std::abs(ny - iy) <= 1) continue;
          list_x[count] = nx;
          list_y[count] = ny;
          ++count;
        }
      }
      const int chunk = std::max(1, cfg.chunk);
      const int nchunks = (count + chunk - 1) / chunk;
      if (threaded && nchunks > 1) {
        // Per-chunk partial expansions, allocated dynamically — this is the
        // allocation burst Figure 9(a) measures.
        std::vector<Thread> workers;
        std::vector<Cx*> partials;
        std::vector<void*> scratches;
        for (int c = 0; c < nchunks; ++c) {
          // Per-chunk partial expansion plus translation workspace (see
          // FmmConfig::chunk_workspace_bytes), allocated before the fork and
          // released after the join-reduce — under a breadth-first schedule
          // every cell's buffers are live at once, which is the allocation
          // burst Figure 9(a) measures.
          auto* partial = static_cast<Cx*>(df_malloc(sizeof(Cx) * (P + 1)));
          df_write(partial, sizeof(Cx) * (P + 1), "fmm/phase3:partial");
          for (int k = 0; k <= P; ++k) partial[k] = Cx(0, 0);
          partials.push_back(partial);
          scratches.push_back(cfg.chunk_workspace_bytes
                                  ? df_malloc(cfg.chunk_workspace_bytes)
                                  : nullptr);
          const int lo = c * chunk;
          const int hi = std::min(count, lo + chunk);
          workers.push_back(spawn([&, partial, lo, hi, ix, iy]() -> void* {
            for (int e = lo; e < hi; ++e) {
              m2l(cur.mult(list_x[e], list_y[e]), cur.center(list_x[e], list_y[e]),
                  partial, cur.center(ix, iy), P, binom);
            }
            return nullptr;
          }));
        }
        for (auto& w : workers) join(w);
        for (int c = 0; c < nchunks; ++c) {
          for (int k = 0; k <= P; ++k) local[k] += partials[c][k];
          df_free(partials[c]);
          df_free(scratches[c]);
        }
      } else {
        for (int e = 0; e < count; ++e) {
          m2l(cur.mult(list_x[e], list_y[e]), cur.center(list_x[e], list_y[e]),
              local, cur.center(ix, iy), P, binom);
        }
      }
    };
    if (threaded) {
      binary_tree_for(0, cur.cells(), 1, phase3);
    } else {
      for (std::size_t c = 0; c < cur.cells(); ++c) phase3(c);
    }
  }

  // Phase 4: L2P + near-field P2P — one thread per leaf cell.
  std::vector<double> phi(particles.size(), 0.0);
  auto phase4 = [&](std::size_t cell) {
    const int ix = static_cast<int>(cell) % side;
    const int iy = static_cast<int>(cell) / side;
    const auto& own = grid.bucket(ix, iy);
    for (std::uint32_t i : own) {
      phi[i] += l2p(leaf.loc(ix, iy), leaf.center(ix, iy), particles[i], P);
    }
    annotate_work(own.size() * static_cast<std::uint64_t>(P) * 4);
    for (int ny = iy - 1; ny <= iy + 1; ++ny) {
      for (int nx = ix - 1; nx <= ix + 1; ++nx) {
        if (nx < 0 || ny < 0 || nx >= side || ny >= side) continue;
        p2p(particles, own, grid.bucket(nx, ny), phi);
      }
    }
  };
  if (threaded) {
    binary_tree_for(0, leaf.cells(), 1, phase4);
  } else {
    for (std::size_t c = 0; c < leaf.cells(); ++c) phase4(c);
  }

  df_write(particles.data(), particles.size() * sizeof(FmmParticle),
           "fmm/run_fmm:potential");
  for (std::size_t i = 0; i < particles.size(); ++i) particles[i].potential = phi[i];
}

}  // namespace

std::vector<FmmParticle> fmm_generate(const FmmConfig& cfg) {
  Rng rng(cfg.seed);
  std::vector<FmmParticle> particles(cfg.particles);
  for (auto& p : particles) {
    p.x = rng.next_double();
    p.y = rng.next_double();
    p.charge = rng.next_bool() ? 1.0 : -1.0;
    p.potential = 0.0;
  }
  return particles;
}

void fmm_serial(std::vector<FmmParticle>& particles, const FmmConfig& cfg) {
  run_fmm(particles, cfg, /*threaded=*/false);
}

void fmm_threaded(std::vector<FmmParticle>& particles, const FmmConfig& cfg) {
  DFTH_CHECK_MSG(in_runtime(), "fmm_threaded outside dfth::run");
  run_fmm(particles, cfg, /*threaded=*/true);
}

void fmm_direct(std::vector<FmmParticle>& particles) {
  for (auto& pi : particles) pi.potential = 0.0;
  for (std::size_t i = 0; i < particles.size(); ++i) {
    for (std::size_t j = 0; j < particles.size(); ++j) {
      if (i == j) continue;
      const double dx = particles[i].x - particles[j].x;
      const double dy = particles[i].y - particles[j].y;
      particles[i].potential +=
          particles[j].charge * 0.5 * std::log(dx * dx + dy * dy);
    }
  }
}

double fmm_max_rel_error(const std::vector<FmmParticle>& test,
                         const std::vector<FmmParticle>& ref) {
  DFTH_CHECK(test.size() == ref.size());
  double scale = 1e-12;
  for (const auto& p : ref) scale = std::max(scale, std::fabs(p.potential));
  double worst = 0.0;
  for (std::size_t i = 0; i < test.size(); ++i) {
    worst = std::max(worst,
                     std::fabs(test[i].potential - ref[i].potential) / scale);
  }
  return worst;
}

}  // namespace dfth::apps
