// Uniform Fast Multipole Method — the paper's FMM benchmark (§5.1.2).
//
// The paper runs a 3-D uniform FMM (10,000 particles, 4 levels, 5 expansion
// terms). We implement the 2-D uniform FMM with complex-series expansions
// (Greengard & Rokhlin): the multipole mathematics is exactly verifiable
// against direct summation, and — what the scheduling experiment actually
// measures — the phase/thread/allocation structure is identical:
//
//   1. P2M: multipole expansions of leaf cells from their particles — one
//      thread per leaf cell;
//   2. M2M: upward pass, parents from children — one thread per parent;
//   3. M2L + L2L: downward pass — interaction-list translations chunked
//      `chunk` entries per thread (the paper used 25 of up to 875 3-D
//      neighbors; the 2-D list has up to 27), with the per-thread partial
//      local expansions allocated dynamically through df_malloc — this
//      phase's allocation burst is what Figure 9(a) measures;
//   4. L2P + P2P: potentials from local expansions plus direct near-field —
//      one thread per leaf cell.
//
// Threads are forked as binary trees ("since the Pthreads interface allows
// only a binary fork").
//
// Potential: phi(z) = sum_i q_i * log|z - z_i| (2-D Laplace kernel).
#pragma once

#include <complex>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace dfth::apps {

struct FmmParticle {
  double x, y;
  double charge;
  double potential = 0.0;  ///< filled by the solver
};

struct FmmConfig {
  std::size_t particles = 10000;  ///< paper size
  int levels = 4;                 ///< paper: 4-level tree (finest 8x8 in 2-D)
  int terms = 5;                  ///< paper: 5 expansion terms
  int chunk = 25;                 ///< interaction-list entries per thread

  /// Scratch allocated by each phase-3 chunk thread alongside its partial
  /// expansion. A 2-D local expansion is only (terms+1) complex numbers; the
  /// 3-D FMM the paper ran needs (terms+1)^2 coefficients plus per-
  /// translation workspace, so this pads each chunk's dynamic allocation to
  /// a 3-D-equivalent volume — preserving the phase-3 allocation burst that
  /// Figure 9(a) measures (see DESIGN.md substitutions).
  std::size_t chunk_workspace_bytes = 8 << 10;

  std::uint64_t seed = 77;
};

/// Uniformly distributed particles with mixed-sign charges.
std::vector<FmmParticle> fmm_generate(const FmmConfig& cfg);

/// Serial reference FMM; fills `potential` for every particle.
void fmm_serial(std::vector<FmmParticle>& particles, const FmmConfig& cfg);

/// Fine-grained threaded FMM (phase structure above). Must run inside
/// dfth::run().
void fmm_threaded(std::vector<FmmParticle>& particles, const FmmConfig& cfg);

/// O(n^2) direct-summation oracle.
void fmm_direct(std::vector<FmmParticle>& particles);

/// Max |phi_test - phi_ref| / (scale of phi) over the particle set.
double fmm_max_rel_error(const std::vector<FmmParticle>& test,
                         const std::vector<FmmParticle>& ref);

}  // namespace dfth::apps
