// Decision-tree builder — the paper's data-mining benchmark (§5.1.3).
//
// An ID3-style top-down builder with C4.5-like handling of continuous
// attributes: at each node, instances are sorted by every attribute (via a
// parallel divide-and-conquer quicksort in the fine-grained version), the
// best binary split is chosen by gain ratio, instances are partitioned, and
// the two children are built recursively — each recursive call and each
// quicksort recursion forks a new thread, switching to serial recursion
// below 2000 instances, exactly as in the paper. The recursion tree is
// highly irregular and data-dependent; per-node working arrays come from
// df_malloc, which is what makes this benchmark's space profile interesting
// (Figure 9b).
//
// The paper's input was a speech-recognition dataset with 133,999 instances,
// 4 continuous attributes and a boolean class; it is not distributable, so
// dtree_generate() synthesizes a dataset of identical shape from a Gaussian
// mixture with class overlap (so the tree is deep and unbalanced, not a
// one-split wonder).
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace dfth::apps {

inline constexpr int kDtreeAttrs = 4;

struct Instance {
  float attr[kDtreeAttrs];
  std::uint8_t label;  // 0 or 1
};

struct DtreeConfig {
  std::size_t instances = 133999;  ///< paper size
  std::size_t serial_cutoff = 2000;  ///< switch to serial recursion (paper)
  std::size_t min_leaf = 64;         ///< stop splitting below this
  int max_depth = 24;
  std::uint64_t seed = 43;
};

struct DtreeNode {
  bool leaf = true;
  std::uint8_t majority = 0;
  int attr = -1;
  float threshold = 0.0f;
  std::size_t count = 0;
  std::unique_ptr<DtreeNode> left, right;
};

/// Synthesizes the dataset (see header comment).
std::vector<Instance> dtree_generate(const DtreeConfig& cfg);

/// Serial reference build.
std::unique_ptr<DtreeNode> dtree_build_serial(const std::vector<Instance>& data,
                                              const DtreeConfig& cfg);

/// Fine-grained threaded build (forks per tree node and per quicksort
/// recursion). Must run inside dfth::run().
std::unique_ptr<DtreeNode> dtree_build_threaded(const std::vector<Instance>& data,
                                                const DtreeConfig& cfg);

/// Classifies one instance.
std::uint8_t dtree_classify(const DtreeNode& root, const Instance& x);

/// Training-set accuracy (sanity metric printed by benches/examples).
double dtree_accuracy(const DtreeNode& root, const std::vector<Instance>& data);

/// Structural statistics for verification (serial == threaded).
struct DtreeShape {
  std::size_t nodes = 0;
  std::size_t leaves = 0;
  int depth = 0;
};
DtreeShape dtree_shape(const DtreeNode& root);

/// True if the two trees are structurally identical (same splits).
bool dtree_equal(const DtreeNode& a, const DtreeNode& b);

}  // namespace dfth::apps
