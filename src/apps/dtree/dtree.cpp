#include "apps/dtree/dtree.h"

#include <algorithm>
#include <cmath>

#include "runtime/api.h"
#include "util/check.h"
#include "util/rng.h"

namespace dfth::apps {
namespace {

/// (value, label) pair sorted per attribute to evaluate split candidates.
struct VL {
  float v;
  std::uint8_t l;
};

std::uint64_t ilog2(std::size_t n) {
  std::uint64_t lg = 0;
  while (n >>= 1) ++lg;
  return lg;
}

double entropy(std::size_t pos, std::size_t total) {
  if (total == 0 || pos == 0 || pos == total) return 0.0;
  const double p = static_cast<double>(pos) / static_cast<double>(total);
  return -(p * std::log2(p) + (1.0 - p) * std::log2(1.0 - p));
}

// ---------------------------------------------------------------------------
// Parallel divide-and-conquer quicksort over VL pairs (the paper forks a
// thread for each recursive quicksort call, switching to serial recursion at
// the same 2000-instance cutoff as the tree builder).
// ---------------------------------------------------------------------------

std::size_t partition_vl(VL* a, std::size_t n) {
  // Median-of-three pivot; Hoare partition. Ties are fine: split evaluation
  // only looks at distinct-value boundaries, so it is tie-order independent.
  const auto mid = n / 2;
  auto key = [](const VL& x) { return x.v; };
  if (key(a[mid]) < key(a[0])) std::swap(a[0], a[mid]);
  if (key(a[n - 1]) < key(a[0])) std::swap(a[0], a[n - 1]);
  if (key(a[n - 1]) < key(a[mid])) std::swap(a[mid], a[n - 1]);
  const float pivot = a[mid].v;
  std::size_t i = 0, j = n - 1;
  while (true) {
    while (a[i].v < pivot) ++i;
    while (a[j].v > pivot) --j;
    if (i >= j) return j + 1;
    std::swap(a[i], a[j]);
    ++i;
    --j;
  }
}

void quicksort_serial(VL* a, std::size_t n) {
  if (n < 2) return;
  std::sort(a, a + n, [](const VL& x, const VL& y) { return x.v < y.v; });
  annotate_work(2 * n * ilog2(n));
}

void quicksort_parallel(VL* a, std::size_t n, std::size_t cutoff) {
  if (n <= cutoff) {
    quicksort_serial(a, n);
    return;
  }
  const std::size_t split = partition_vl(a, n);
  annotate_work(n);  // one partition pass
  // Degenerate pivots: fall back to serial to bound recursion depth.
  if (split == 0 || split >= n) {
    quicksort_serial(a, n);
    return;
  }
  Thread left = spawn([a, split, cutoff]() -> void* {
    quicksort_parallel(a, split, cutoff);
    return nullptr;
  });
  quicksort_parallel(a + split, n - split, cutoff);
  join(left);
}

// ---------------------------------------------------------------------------
// Split evaluation (C4.5-style gain ratio on continuous attributes)
// ---------------------------------------------------------------------------

struct SplitChoice {
  double gain_ratio = -1.0;
  int attr = -1;
  float threshold = 0.0f;
};

/// Evaluates the best binary split of `sorted` (ascending by value); scans
/// distinct-value boundaries and scores entropy gain ratio.
SplitChoice best_split_of_sorted(const VL* sorted, std::size_t n, int attr,
                                 std::size_t min_leaf) {
  std::size_t total_pos = 0;
  for (std::size_t i = 0; i < n; ++i) total_pos += sorted[i].l;
  const double base = entropy(total_pos, n);

  SplitChoice best;
  std::size_t left_pos = 0;
  for (std::size_t i = 0; i + 1 < n; ++i) {
    left_pos += sorted[i].l;
    if (sorted[i].v == sorted[i + 1].v) continue;  // not a boundary
    const std::size_t nl = i + 1, nr = n - nl;
    if (nl < min_leaf || nr < min_leaf) continue;
    const double cond =
        (static_cast<double>(nl) * entropy(left_pos, nl) +
         static_cast<double>(nr) * entropy(total_pos - left_pos, nr)) /
        static_cast<double>(n);
    const double gain = base - cond;
    const double split_info = entropy(nl, n);
    if (split_info <= 1e-12) continue;
    const double ratio = gain / split_info;
    if (ratio > best.gain_ratio) {
      best.gain_ratio = ratio;
      best.attr = attr;
      best.threshold = 0.5f * (sorted[i].v + sorted[i + 1].v);
    }
  }
  annotate_work(2 * n);  // the boundary scan
  return best;
}

using InstVec = std::vector<Instance, TrackedAllocator<Instance>>;

/// Sorts a copy of (attr values, labels) and evaluates the attribute's best
/// split. `parallel_sort` enables the forked quicksort.
SplitChoice evaluate_attribute(const Instance* data, std::size_t n, int attr,
                               const DtreeConfig& cfg, bool parallel_sort) {
  auto* pairs = static_cast<VL*>(df_malloc(sizeof(VL) * n));
  df_write(pairs, sizeof(VL) * n, "dtree/evaluate_attribute:pairs");
  for (std::size_t i = 0; i < n; ++i) {
    pairs[i] = {data[i].attr[attr], data[i].label};
  }
  annotate_work(n);
  if (parallel_sort) {
    quicksort_parallel(pairs, n, cfg.serial_cutoff);
  } else {
    quicksort_serial(pairs, n);
  }
  SplitChoice choice = best_split_of_sorted(pairs, n, attr, cfg.min_leaf);
  df_free(pairs);
  return choice;
}

std::unique_ptr<DtreeNode> make_leaf(const Instance* data, std::size_t n) {
  std::size_t pos = 0;
  for (std::size_t i = 0; i < n; ++i) pos += data[i].label;
  auto node = std::make_unique<DtreeNode>();
  node->leaf = true;
  node->majority = (2 * pos >= n) ? 1 : 0;
  node->count = n;
  return node;
}

std::unique_ptr<DtreeNode> build_rec(const Instance* data, std::size_t n, int depth,
                                     const DtreeConfig& cfg, bool threaded) {
  // Leaf conditions: small, deep, or pure.
  std::size_t pos = 0;
  for (std::size_t i = 0; i < n; ++i) pos += data[i].label;
  annotate_work(n);
  if (n < 2 * cfg.min_leaf || depth >= cfg.max_depth || pos == 0 || pos == n) {
    return make_leaf(data, n);
  }

  // "The instances are sorted by each attribute to calculate the optimal
  // split." Fine-grained version forks one thread per attribute; each sort
  // is itself a parallel quicksort.
  const bool parallel_here = threaded && n > cfg.serial_cutoff;
  SplitChoice choices[kDtreeAttrs];
  if (parallel_here) {
    Thread workers[kDtreeAttrs];
    for (int a = 0; a < kDtreeAttrs; ++a) {
      workers[a] = spawn([data, n, a, &cfg, &choices]() -> void* {
        df_write(&choices[a], sizeof(SplitChoice), "dtree/build_rec:choice");
        choices[a] = evaluate_attribute(data, n, a, cfg, /*parallel_sort=*/true);
        return nullptr;
      });
    }
    for (auto& w : workers) join(w);
  } else {
    for (int a = 0; a < kDtreeAttrs; ++a) {
      choices[a] = evaluate_attribute(data, n, a, cfg, /*parallel_sort=*/false);
    }
  }
  SplitChoice best;
  for (const auto& c : choices) {
    if (c.gain_ratio > best.gain_ratio) best = c;
  }
  if (best.attr < 0) return make_leaf(data, n);

  // Partition into left (<= threshold) and right. The TrackedAllocator
  // reservations below are invisible to the df_malloc scan, so declare them
  // for the static space bound:
  // dfth-space-alloc: 2 * n * sizeof(Instance)
  InstVec left, right;
  left.reserve(n);
  right.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (data[i].attr[best.attr] <= best.threshold) {
      left.push_back(data[i]);
    } else {
      right.push_back(data[i]);
    }
  }
  annotate_work(n);
  if (left.empty() || right.empty()) return make_leaf(data, n);

  auto node = std::make_unique<DtreeNode>();
  node->leaf = false;
  node->attr = best.attr;
  node->threshold = best.threshold;
  node->count = n;
  std::size_t lpos = 0;
  for (const auto& inst : left) lpos += inst.label;
  node->majority = (2 * pos >= n) ? 1 : 0;
  (void)lpos;

  if (parallel_here) {
    Thread lt = spawn([&left, depth, &cfg, &node]() -> void* {
      df_write(&node->left, sizeof(node->left), "dtree/build_rec:left");
      node->left = build_rec(left.data(), left.size(), depth + 1, cfg, true);
      return nullptr;
    });
    node->right = build_rec(right.data(), right.size(), depth + 1, cfg, true);
    join(lt);
  } else {
    node->left = build_rec(left.data(), left.size(), depth + 1, cfg, threaded);
    node->right = build_rec(right.data(), right.size(), depth + 1, cfg, threaded);
  }
  return node;
}

}  // namespace

std::vector<Instance> dtree_generate(const DtreeConfig& cfg) {
  Rng rng(cfg.seed);
  std::vector<Instance> data(cfg.instances);
  // Three Gaussian clusters per class in 4-D, overlapping, plus 8% label
  // noise: produces a deep, unbalanced, data-dependent tree.
  const double centers[2][3][kDtreeAttrs] = {
      {{0, 0, 0, 0}, {3, 1, -2, 0.5}, {-2, 3, 1, -1}},
      {{1.5, 0.5, 0.5, 0.2}, {-1, -2, 2, 1}, {4, -3, -1, 2}},
  };
  for (auto& inst : data) {
    const int label = rng.next_bool() ? 1 : 0;
    const auto cluster = static_cast<int>(rng.next_below(3));
    for (int a = 0; a < kDtreeAttrs; ++a) {
      inst.attr[a] = static_cast<float>(centers[label][cluster][a] +
                                        rng.next_gaussian() * 1.6);
    }
    inst.label = static_cast<std::uint8_t>(rng.next_bool(0.08) ? 1 - label : label);
  }
  return data;
}

std::unique_ptr<DtreeNode> dtree_build_serial(const std::vector<Instance>& data,
                                              const DtreeConfig& cfg) {
  return build_rec(data.data(), data.size(), 0, cfg, /*threaded=*/false);
}

std::unique_ptr<DtreeNode> dtree_build_threaded(const std::vector<Instance>& data,
                                                const DtreeConfig& cfg) {
  DFTH_CHECK_MSG(in_runtime(), "dtree_build_threaded outside dfth::run");
  return build_rec(data.data(), data.size(), 0, cfg, /*threaded=*/true);
}

std::uint8_t dtree_classify(const DtreeNode& root, const Instance& x) {
  const DtreeNode* node = &root;
  while (!node->leaf) {
    node = (x.attr[node->attr] <= node->threshold) ? node->left.get()
                                                   : node->right.get();
  }
  return node->majority;
}

double dtree_accuracy(const DtreeNode& root, const std::vector<Instance>& data) {
  if (data.empty()) return 0.0;
  std::size_t hits = 0;
  for (const auto& inst : data) hits += (dtree_classify(root, inst) == inst.label);
  return static_cast<double>(hits) / static_cast<double>(data.size());
}

DtreeShape dtree_shape(const DtreeNode& root) {
  DtreeShape s;
  s.nodes = 1;
  if (root.leaf) {
    s.leaves = 1;
    s.depth = 1;
    return s;
  }
  const DtreeShape l = dtree_shape(*root.left);
  const DtreeShape r = dtree_shape(*root.right);
  s.nodes += l.nodes + r.nodes;
  s.leaves = l.leaves + r.leaves;
  s.depth = 1 + std::max(l.depth, r.depth);
  return s;
}

bool dtree_equal(const DtreeNode& a, const DtreeNode& b) {
  if (a.leaf != b.leaf || a.count != b.count) return false;
  if (a.leaf) return a.majority == b.majority;
  if (a.attr != b.attr || a.threshold != b.threshold) return false;
  return dtree_equal(*a.left, *b.left) && dtree_equal(*a.right, *b.right);
}

}  // namespace dfth::apps
