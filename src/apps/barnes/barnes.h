// Barnes-Hut N-body simulation — the paper's SPLASH-2 "Barnes" benchmark
// (§5.1.1).
//
// Each timestep: (1) build an octree over the bodies — the fine-grained
// build inserts bodies concurrently and synchronizes with per-cell Mutexes
// ("this application uses Pthread mutexes in the tree building phase");
// (2) compute forces by traversing the tree with the theta opening
// criterion; (3) advance positions/velocities (leapfrog).
//
// Versions, as in the paper:
//  * serial reference;
//  * coarse: one thread per processor with barriers between phases and
//    costzones-style partitioning — bodies are laid out in tree (Morton)
//    order, per-body work is estimated from the previous step's interaction
//    counts, and each processor takes a contiguous zone of roughly equal
//    cost (the SPLASH-2 load-balancing scheme);
//  * fine: a new thread per small unit of work — tree build from per-chunk
//    insertions, force phase by recursive spawning over subtrees until a
//    subtree has under `leaf_cutoff` leaves — no partitioning code at all.
//
// Bodies come from a Plummer-model generator (as in the paper's 100 K-body
// run); forces are verified against direct O(N^2) summation in the tests.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace dfth::apps {

struct Body {
  double pos[3];
  double vel[3];
  double acc[3];
  double mass;
  std::uint64_t work = 1;  ///< interactions last step (costzones input)
};

struct BarnesConfig {
  std::size_t bodies = 16384;
  int timesteps = 2;       ///< timed steps (paper: 2 timed of 4)
  double theta = 0.7;      ///< opening criterion
  double dt = 0.025;
  double eps = 0.05;       ///< softening
  std::size_t leaf_cutoff = 8;  ///< fine: stop spawning below this many leaves
  std::size_t bodies_per_leaf = 8;
  std::uint64_t seed = 123;
};

/// Plummer-model initial conditions (standard Aarseth/Henon sampling),
/// deterministic in cfg.seed.
std::vector<Body> barnes_generate(const BarnesConfig& cfg);

/// Result of one simulation run (bodies after the final step).
struct BarnesResult {
  std::vector<Body> bodies;
  std::uint64_t interactions = 0;  ///< total body-cell interactions
};

BarnesResult barnes_serial(std::vector<Body> bodies, const BarnesConfig& cfg);

/// Coarse-grained (costzones + barriers). Must run inside dfth::run().
BarnesResult barnes_coarse(std::vector<Body> bodies, const BarnesConfig& cfg,
                           int nprocs);

/// Fine-grained (thread per work unit, mutex-guarded parallel tree build).
/// Must run inside dfth::run().
BarnesResult barnes_fine(std::vector<Body> bodies, const BarnesConfig& cfg);

/// Direct O(N^2) accelerations (verification oracle); fills acc fields.
void barnes_direct_forces(std::vector<Body>& bodies, const BarnesConfig& cfg);

/// Max relative acceleration error vs a reference set (same body order).
double barnes_max_rel_acc_error(const std::vector<Body>& test,
                                const std::vector<Body>& ref);

/// Total system kinetic + potential energy (drift sanity checks).
double barnes_total_energy(const std::vector<Body>& bodies, double eps);

}  // namespace dfth::apps
