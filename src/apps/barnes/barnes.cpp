#include "apps/barnes/barnes.h"

#include <algorithm>
#include <atomic>
#include <cmath>

#include "replay/session.h"
#include "runtime/api.h"
#include "runtime/sync.h"
#include "util/check.h"
#include "util/rng.h"

namespace dfth::apps {
namespace {

constexpr std::size_t kMaxDepth = 48;

// ---------------------------------------------------------------------------
// Octree
// ---------------------------------------------------------------------------

struct Cell {
  double center[3];
  double half = 0.0;  ///< half edge length
  Mutex mu;           ///< guards splits/inserts/child creation (build phase)
  std::atomic<bool> leaf_flag{true};
  std::size_t depth = 0;
  std::atomic<Cell*> child[8] = {};
  std::vector<std::uint32_t> bodies;  ///< leaf contents (body indices)

  bool is_leaf_relaxed() const { return leaf_flag.load(std::memory_order_relaxed); }

  // Filled by the center-of-mass pass.
  double mass = 0.0;
  double com[3] = {0, 0, 0};
  std::size_t nbodies = 0;
};

/// Bump arena for cells: one allocation region per timestep, df_malloc-backed
/// so tree memory shows in the space accounting. Thread-safe bump pointer.
class CellArena {
 public:
  explicit CellArena(std::size_t max_cells) : capacity_(max_cells) {
    raw_ = static_cast<Cell*>(df_malloc(sizeof(Cell) * capacity_));
  }
  ~CellArena() {
    const std::size_t used = used_.load(std::memory_order_relaxed);
    for (std::size_t i = 0; i < used; ++i) raw_[i].~Cell();
    df_free(raw_);
  }
  Cell* make(const double center[3], double half, std::size_t depth) {
    const std::size_t i = used_.fetch_add(1, std::memory_order_relaxed);
    DFTH_CHECK_MSG(i < capacity_, "cell arena exhausted");
    Cell* c = new (&raw_[i]) Cell();
    c->center[0] = center[0];
    c->center[1] = center[1];
    c->center[2] = center[2];
    c->half = half;
    c->depth = depth;
    return c;
  }
  std::size_t used() const { return used_.load(std::memory_order_relaxed); }

 private:
  std::size_t capacity_;
  Cell* raw_;
  std::atomic<std::size_t> used_{0};
};

int octant_of(const Cell& cell, const Body& b) {
  return (b.pos[0] > cell.center[0] ? 1 : 0) |
         (b.pos[1] > cell.center[1] ? 2 : 0) |
         (b.pos[2] > cell.center[2] ? 4 : 0);
}

Cell* make_child(CellArena& arena, const Cell& parent, int octant) {
  const double q = parent.half / 2.0;
  double center[3] = {
      parent.center[0] + ((octant & 1) ? q : -q),
      parent.center[1] + ((octant & 2) ? q : -q),
      parent.center[2] + ((octant & 4) ? q : -q),
  };
  return arena.make(center, q, parent.depth + 1);
}

/// Inserts one body, SPLASH-2 style: descend optimistically without locks,
/// lock only the cell being modified ("this application uses Pthread
/// mutexes in the tree building phase, to synchronize modifications to the
/// partially built octree"), re-validate after acquiring, and retry if a
/// concurrent split got there first. Child pointers and the leaf flag are
/// atomics published with release stores so lock-free readers see fully
/// initialized cells.
void insert_body(CellArena& arena, Cell* cell, const std::vector<Body>& bodies,
                 std::uint32_t idx, std::size_t leaf_cap, bool use_locks) {
  // Under a record/replay session the optimistic descent is unreplayable by
  // construction: the unlocked leaf_flag/child reads observe concurrent
  // splits at physical-timing granularity, so the descent path (hence which
  // cell each insert locks) is schedule-dependent in a way the sync-order
  // log cannot pin. Degrade to the lock-first descent below — every tree-
  // state read then happens inside an ordered critical section, and the
  // logged lock order fully determines the tree.
  if (use_locks && replay::pinned()) {
    std::uint64_t hops = 0;
    while (true) {
      ++hops;
      cell->mu.lock();
      if (cell->is_leaf_relaxed()) {
        if (cell->bodies.size() < leaf_cap || cell->depth >= kMaxDepth) {
          cell->bodies.push_back(idx);
          cell->mu.unlock();
          break;
        }
        for (std::uint32_t resident : cell->bodies) {
          const int oct = octant_of(*cell, bodies[resident]);
          Cell* ch = cell->child[oct].load(std::memory_order_relaxed);
          if (!ch) {
            ch = make_child(arena, *cell, oct);
            cell->child[oct].store(ch, std::memory_order_release);
          }
          ch->bodies.push_back(resident);
        }
        cell->bodies.clear();
        cell->bodies.shrink_to_fit();
        cell->leaf_flag.store(false, std::memory_order_release);
        cell->mu.unlock();
        continue;  // now internal; descend under the next lock
      }
      const int oct = octant_of(*cell, bodies[idx]);
      Cell* next = cell->child[oct].load(std::memory_order_relaxed);
      if (!next) {
        next = make_child(arena, *cell, oct);
        cell->child[oct].store(next, std::memory_order_release);
      }
      cell->mu.unlock();
      cell = next;
    }
    annotate_work(hops * 12);
    return;
  }
  std::uint64_t hops = 0;
  while (true) {
    ++hops;
    if (cell->leaf_flag.load(std::memory_order_acquire)) {
      if (use_locks) cell->mu.lock();
      if (!cell->is_leaf_relaxed()) {
        // A concurrent insert split this cell between our check and the
        // lock: it is internal now, descend instead.
        if (use_locks) cell->mu.unlock();
        continue;
      }
      if (cell->bodies.size() < leaf_cap || cell->depth >= kMaxDepth) {
        cell->bodies.push_back(idx);
        if (use_locks) cell->mu.unlock();
        break;
      }
      // Split: push the resident bodies one level down, then retry. Each
      // child receives at most leaf_cap bodies, so no recursive split here.
      for (std::uint32_t resident : cell->bodies) {
        const int oct = octant_of(*cell, bodies[resident]);
        Cell* ch = cell->child[oct].load(std::memory_order_relaxed);
        if (!ch) {
          ch = make_child(arena, *cell, oct);
          cell->child[oct].store(ch, std::memory_order_release);
        }
        ch->bodies.push_back(resident);
      }
      cell->bodies.clear();
      cell->bodies.shrink_to_fit();
      cell->leaf_flag.store(false, std::memory_order_release);
      if (use_locks) cell->mu.unlock();
      continue;  // now internal; descend
    }
    const int oct = octant_of(*cell, bodies[idx]);
    Cell* next = cell->child[oct].load(std::memory_order_acquire);
    if (!next) {
      if (use_locks) cell->mu.lock();
      next = cell->child[oct].load(std::memory_order_relaxed);
      if (!next) {
        next = make_child(arena, *cell, oct);
        cell->child[oct].store(next, std::memory_order_release);
      }
      if (use_locks) cell->mu.unlock();
    }
    cell = next;
  }
  annotate_work(hops * 12);
}

/// Leaf COM needs the body array; separate pass entry that binds it.
std::size_t compute_com_with_bodies(Cell* cell, const std::vector<Body>& bodies) {
  // COM fields (mass/com/nbodies) are declared contiguously at the end of
  // Cell; one write annotation summarizes the whole block.
  df_write(&cell->mass,
           sizeof(cell->mass) + sizeof(cell->com) + sizeof(cell->nbodies),
           "barnes/compute_com:cell");
  if (cell->is_leaf_relaxed()) {
    double m = 0, cx = 0, cy = 0, cz = 0;
    for (std::uint32_t idx : cell->bodies) {
      const Body& b = bodies[idx];
      m += b.mass;
      cx += b.mass * b.pos[0];
      cy += b.mass * b.pos[1];
      cz += b.mass * b.pos[2];
    }
    cell->mass = m;
    cell->nbodies = cell->bodies.size();
    if (m > 0) {
      cell->com[0] = cx / m;
      cell->com[1] = cy / m;
      cell->com[2] = cz / m;
    }
    annotate_work(8 * cell->bodies.size() + 8);
    return cell->nbodies;
  }
  double m = 0, cx = 0, cy = 0, cz = 0;
  std::size_t count = 0;
  for (auto& slot : cell->child) {
    Cell* ch = slot.load(std::memory_order_relaxed);
    if (!ch) continue;
    count += compute_com_with_bodies(ch, bodies);
    m += ch->mass;
    cx += ch->mass * ch->com[0];
    cy += ch->mass * ch->com[1];
    cz += ch->mass * ch->com[2];
  }
  cell->mass = m;
  cell->nbodies = count;
  if (m > 0) {
    cell->com[0] = cx / m;
    cell->com[1] = cy / m;
    cell->com[2] = cz / m;
  }
  annotate_work(72);
  return count;
}

/// Barnes-Hut acceleration on one body; returns interaction count.
std::uint64_t force_on_body(const Cell* root, const std::vector<Body>& bodies,
                            Body& target, double theta, double eps2) {
  std::uint64_t interactions = 0;
  df_write(target.acc, sizeof(target.acc), "barnes/force_on_body:acc");
  target.acc[0] = target.acc[1] = target.acc[2] = 0.0;
  // Explicit stack walk (cheap + no recursion-depth concerns).
  const Cell* stack[256];
  int top = 0;
  stack[top++] = root;
  while (top > 0) {
    const Cell* cell = stack[--top];
    if (cell->nbodies == 0) continue;
    const double dx = cell->com[0] - target.pos[0];
    const double dy = cell->com[1] - target.pos[1];
    const double dz = cell->com[2] - target.pos[2];
    const double dist2 = dx * dx + dy * dy + dz * dz + eps2;
    const double size = 2.0 * cell->half;
    const bool leaf = cell->is_leaf_relaxed();
    if (leaf || size * size < theta * theta * dist2) {
      if (leaf) {
        for (std::uint32_t idx : cell->bodies) {
          const Body& other = bodies[idx];
          if (&other == &target) continue;
          const double bx = other.pos[0] - target.pos[0];
          const double by = other.pos[1] - target.pos[1];
          const double bz = other.pos[2] - target.pos[2];
          const double r2 = bx * bx + by * by + bz * bz + eps2;
          const double inv = 1.0 / std::sqrt(r2);
          const double f = other.mass * inv * inv * inv;
          target.acc[0] += f * bx;
          target.acc[1] += f * by;
          target.acc[2] += f * bz;
          ++interactions;
        }
      } else {
        const double inv = 1.0 / std::sqrt(dist2);
        const double f = cell->mass * inv * inv * inv;
        target.acc[0] += f * dx;
        target.acc[1] += f * dy;
        target.acc[2] += f * dz;
        ++interactions;
      }
    } else {
      for (const auto& slot : cell->child) {
        if (const Cell* ch = slot.load(std::memory_order_relaxed)) {
          DFTH_CHECK(top < 256);
          stack[top++] = ch;
        }
      }
    }
  }
  return interactions;
}

void leapfrog_update(Body& b, double dt) {
  df_write(&b, sizeof(Body), "barnes/leapfrog:body");
  for (int d = 0; d < 3; ++d) {
    b.vel[d] += b.acc[d] * dt;
    b.pos[d] += b.vel[d] * dt;
  }
}

double bounding_half(const std::vector<Body>& bodies) {
  double extent = 1.0;
  for (const auto& b : bodies) {
    for (double coordinate : b.pos) extent = std::max(extent, std::fabs(coordinate));
  }
  return extent * 1.01;
}

// -- fine-grained helpers -----------------------------------------------------

/// Recursively spawns force computations: a new thread per subtree until the
/// subtree has at most `cutoff * bodies_per_leaf` bodies (the paper: the
/// recursion "terminated when the subtree had (on average) under 8 leaves").
void fine_forces(const Cell* root, const Cell* cell, std::vector<Body>& bodies,
                 const BarnesConfig& cfg, double eps2,
                 std::atomic<std::uint64_t>& interactions) {
  if (cell->is_leaf_relaxed() ||
      cell->nbodies <= cfg.leaf_cutoff * cfg.bodies_per_leaf) {
    // Compute forces for every body in this subtree.
    std::uint64_t local = 0;
    const Cell* stack[256];
    int top = 0;
    stack[top++] = cell;
    while (top > 0) {
      const Cell* c = stack[--top];
      if (c->is_leaf_relaxed()) {
        for (std::uint32_t idx : c->bodies) {
          const std::uint64_t n =
              force_on_body(root, bodies, bodies[idx], cfg.theta, eps2);
          df_write(&bodies[idx].work, sizeof(std::uint64_t),
                   "barnes/fine_forces:work");
          bodies[idx].work = n;
          local += n;
        }
      } else {
        for (const auto& slot : c->child) {
          if (const Cell* ch = slot.load(std::memory_order_relaxed)) {
            DFTH_CHECK(top < 256);
            stack[top++] = ch;
          }
        }
      }
    }
    annotate_work(local * 25);
    interactions.fetch_add(local, std::memory_order_relaxed);
    return;
  }
  Thread kids[8];
  int nk = 0;
  for (auto& slot : cell->child) {
    Cell* ch = slot.load(std::memory_order_relaxed);
    if (!ch) continue;
    kids[nk++] = spawn([root, ch, &bodies, &cfg, eps2, &interactions]() -> void* {
      fine_forces(root, ch, bodies, cfg, eps2, interactions);
      return nullptr;
    });
  }
  for (int i = 0; i < nk; ++i) join(kids[i]);
}

// -- coarse-grained helpers (costzones) -----------------------------------------

std::uint64_t morton_key(const Body& b, double half) {
  // 10 bits per axis over the bounding cube.
  auto quantize = [half](double x) {
    const double t = (x + half) / (2.0 * half);
    return static_cast<std::uint32_t>(
        std::clamp(t, 0.0, 0.999999) * 1024.0);
  };
  const std::uint32_t qx = quantize(b.pos[0]), qy = quantize(b.pos[1]),
                      qz = quantize(b.pos[2]);
  std::uint64_t key = 0;
  for (int bit = 9; bit >= 0; --bit) {
    key = (key << 3) | (((qx >> bit) & 1u) << 2) | (((qy >> bit) & 1u) << 1) |
          ((qz >> bit) & 1u);
  }
  return key;
}

/// Contiguous equal-cost zones over bodies in Morton order ("costzones").
std::vector<std::size_t> costzone_bounds(const std::vector<Body>& bodies,
                                         const std::vector<std::uint32_t>& order,
                                         int parts) {
  std::vector<std::size_t> bounds(static_cast<std::size_t>(parts) + 1, 0);
  std::uint64_t total = 0;
  for (const auto& b : bodies) total += b.work;
  std::uint64_t running = 0;
  int part = 1;
  for (std::size_t i = 0; i < order.size() && part < parts; ++i) {
    running += bodies[order[i]].work;
    if (running >= total * static_cast<std::uint64_t>(part) /
                       static_cast<std::uint64_t>(parts)) {
      bounds[static_cast<std::size_t>(part)] = i + 1;
      ++part;
    }
  }
  for (; part < parts; ++part) bounds[static_cast<std::size_t>(part)] = order.size();
  bounds[static_cast<std::size_t>(parts)] = order.size();
  return bounds;
}

}  // namespace

std::vector<Body> barnes_generate(const BarnesConfig& cfg) {
  // Plummer model (Aarseth, Henon & Wielen 1974): sample radius from the
  // cumulative mass profile, isotropic direction, velocity from the local
  // escape-speed distribution via von Neumann rejection.
  Rng rng(cfg.seed);
  std::vector<Body> bodies(cfg.bodies);
  const double scale = 16.0 / (3.0 * 3.14159265358979323846);
  for (auto& b : bodies) {
    b.mass = 1.0 / static_cast<double>(cfg.bodies);
    // Radius: m uniform in (0,1), r = (m^(-2/3) - 1)^(-1/2).
    double r;
    do {
      const double m = rng.next_double(1e-8, 0.999);
      r = 1.0 / std::sqrt(std::pow(m, -2.0 / 3.0) - 1.0);
    } while (r > 8.0);  // clip distant outliers, as standard generators do
    // Isotropic position.
    const double z = rng.next_double(-1.0, 1.0);
    const double phi = rng.next_double(0.0, 2.0 * 3.14159265358979323846);
    const double rxy = std::sqrt(std::max(0.0, 1.0 - z * z));
    b.pos[0] = r * rxy * std::cos(phi);
    b.pos[1] = r * rxy * std::sin(phi);
    b.pos[2] = r * z;
    // Speed via rejection: g(q) = q^2 (1-q^2)^(7/2), q = v / v_esc.
    double q, g;
    do {
      q = rng.next_double(0.0, 1.0);
      g = rng.next_double(0.0, 0.1);
    } while (g > q * q * std::pow(1.0 - q * q, 3.5));
    const double vesc = std::sqrt(2.0) * std::pow(1.0 + r * r, -0.25);
    const double speed = q * vesc;
    const double vz = rng.next_double(-1.0, 1.0);
    const double vphi = rng.next_double(0.0, 2.0 * 3.14159265358979323846);
    const double vxy = std::sqrt(std::max(0.0, 1.0 - vz * vz));
    b.vel[0] = speed * vxy * std::cos(vphi) * scale;
    b.vel[1] = speed * vxy * std::sin(vphi) * scale;
    b.vel[2] = speed * vz * scale;
    b.acc[0] = b.acc[1] = b.acc[2] = 0.0;
    b.work = 1;
  }
  return bodies;
}

BarnesResult barnes_serial(std::vector<Body> bodies, const BarnesConfig& cfg) {
  const double eps2 = cfg.eps * cfg.eps;
  std::uint64_t total_inter = 0;
  for (int step = 0; step < cfg.timesteps; ++step) {
    const double half = bounding_half(bodies);
    CellArena arena(bodies.size() * 4 + 64);
    const double origin[3] = {0, 0, 0};
    Cell* root = arena.make(origin, half, 0);
    for (std::uint32_t i = 0; i < bodies.size(); ++i) {
      insert_body(arena, root, bodies, i, cfg.bodies_per_leaf, /*use_locks=*/false);
    }
    compute_com_with_bodies(root, bodies);
    for (auto& b : bodies) {
      const std::uint64_t n = force_on_body(root, bodies, b, cfg.theta, eps2);
      b.work = n;
      total_inter += n;
      annotate_work(n * 25);
    }
    for (auto& b : bodies) leapfrog_update(b, cfg.dt);
    annotate_work(bodies.size() * 9);
  }
  return BarnesResult{std::move(bodies), total_inter};
}

BarnesResult barnes_fine(std::vector<Body> bodies, const BarnesConfig& cfg) {
  DFTH_CHECK_MSG(in_runtime(), "barnes_fine outside dfth::run");
  const double eps2 = cfg.eps * cfg.eps;
  std::atomic<std::uint64_t> total_inter{0};
  for (int step = 0; step < cfg.timesteps; ++step) {
    const double half = bounding_half(bodies);
    CellArena arena(bodies.size() * 4 + 64);
    const double origin[3] = {0, 0, 0};
    Cell* root = arena.make(origin, half, 0);

    // Phase 1: parallel tree build — one thread per chunk of bodies,
    // inserting concurrently under per-cell mutexes.
    {
      const std::size_t chunk =
          std::max<std::size_t>(bodies.size() / 32, cfg.bodies_per_leaf * cfg.leaf_cutoff);
      std::vector<Thread> threads;
      threads.reserve(bodies.size() / chunk + 1);
      for (std::size_t lo = 0; lo < bodies.size(); lo += chunk) {
        const std::size_t hi = std::min(bodies.size(), lo + chunk);
        threads.push_back(spawn([&, lo, hi]() -> void* {
          for (std::size_t i = lo; i < hi; ++i) {
            insert_body(arena, root, bodies, static_cast<std::uint32_t>(i),
                        cfg.bodies_per_leaf, /*use_locks=*/true);
          }
          return nullptr;
        }));
      }
      for (auto& t : threads) join(t);
    }

    // Phase 2: centers of mass (cheap, O(cells); done by this thread).
    compute_com_with_bodies(root, bodies);

    // Phase 3: forces — recursive spawning over subtrees; no partitioning.
    fine_forces(root, root, bodies, cfg, eps2, total_inter);

    // Phase 4: position/velocity update — a thread per chunk.
    {
      const std::size_t chunk = std::max<std::size_t>(bodies.size() / 64, 256);
      std::vector<Thread> threads;
      for (std::size_t lo = 0; lo < bodies.size(); lo += chunk) {
        const std::size_t hi = std::min(bodies.size(), lo + chunk);
        threads.push_back(spawn([&, lo, hi]() -> void* {
          for (std::size_t i = lo; i < hi; ++i) leapfrog_update(bodies[i], cfg.dt);
          annotate_work((hi - lo) * 9);
          return nullptr;
        }));
      }
      for (auto& t : threads) join(t);
    }
  }
  return BarnesResult{std::move(bodies), total_inter.load()};
}

BarnesResult barnes_coarse(std::vector<Body> bodies, const BarnesConfig& cfg,
                           int nprocs) {
  DFTH_CHECK_MSG(in_runtime(), "barnes_coarse outside dfth::run");
  const double eps2 = cfg.eps * cfg.eps;
  std::atomic<std::uint64_t> total_inter{0};

  for (int step = 0; step < cfg.timesteps; ++step) {
    const double half = bounding_half(bodies);
    CellArena arena(bodies.size() * 4 + 64);
    const double origin[3] = {0, 0, 0};
    Cell* root = arena.make(origin, half, 0);

    // Costzones: bodies in Morton (tree) order, zones of ~equal estimated
    // work from the previous step's interaction counts.
    std::vector<std::uint32_t> order(bodies.size());
    for (std::uint32_t i = 0; i < order.size(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(), [&](std::uint32_t a, std::uint32_t b) {
      return morton_key(bodies[a], half) < morton_key(bodies[b], half);
    });
    annotate_work(bodies.size() * 12);
    const auto zones = costzone_bounds(bodies, order, nprocs);

    Barrier barrier(nprocs);
    std::vector<Thread> threads;
    threads.reserve(static_cast<std::size_t>(nprocs));
    for (int t = 0; t < nprocs; ++t) {
      const std::size_t lo = zones[static_cast<std::size_t>(t)];
      const std::size_t hi = zones[static_cast<std::size_t>(t) + 1];
      threads.push_back(spawn([&, t, lo, hi]() -> void* {
        // Phase 1: parallel build of this zone's bodies (per-cell locks).
        for (std::size_t i = lo; i < hi; ++i) {
          insert_body(arena, root, bodies, order[i], cfg.bodies_per_leaf,
                      /*use_locks=*/true);
        }
        barrier.arrive_and_wait();
        // Phase 2: COM by thread 0 (O(cells), negligible).
        if (t == 0) compute_com_with_bodies(root, bodies);
        barrier.arrive_and_wait();
        // Phase 3: forces over the zone.
        std::uint64_t local = 0;
        for (std::size_t i = lo; i < hi; ++i) {
          Body& b = bodies[order[i]];
          const std::uint64_t n = force_on_body(root, bodies, b, cfg.theta, eps2);
          b.work = n;
          local += n;
        }
        annotate_work(local * 25);
        total_inter.fetch_add(local, std::memory_order_relaxed);
        barrier.arrive_and_wait();
        // Phase 4: updates over the zone.
        for (std::size_t i = lo; i < hi; ++i) leapfrog_update(bodies[order[i]], cfg.dt);
        annotate_work((hi - lo) * 9);
        return nullptr;
      }));
    }
    for (auto& t : threads) join(t);
  }
  return BarnesResult{std::move(bodies), total_inter.load()};
}

void barnes_direct_forces(std::vector<Body>& bodies, const BarnesConfig& cfg) {
  const double eps2 = cfg.eps * cfg.eps;
  for (auto& target : bodies) {
    target.acc[0] = target.acc[1] = target.acc[2] = 0.0;
    for (const auto& other : bodies) {
      if (&other == &target) continue;
      const double dx = other.pos[0] - target.pos[0];
      const double dy = other.pos[1] - target.pos[1];
      const double dz = other.pos[2] - target.pos[2];
      const double r2 = dx * dx + dy * dy + dz * dz + eps2;
      const double inv = 1.0 / std::sqrt(r2);
      const double f = other.mass * inv * inv * inv;
      target.acc[0] += f * dx;
      target.acc[1] += f * dy;
      target.acc[2] += f * dz;
    }
  }
}

double barnes_max_rel_acc_error(const std::vector<Body>& test,
                                const std::vector<Body>& ref) {
  DFTH_CHECK(test.size() == ref.size());
  double worst = 0.0;
  for (std::size_t i = 0; i < test.size(); ++i) {
    double diff2 = 0, norm2 = 0;
    for (int d = 0; d < 3; ++d) {
      const double delta = test[i].acc[d] - ref[i].acc[d];
      diff2 += delta * delta;
      norm2 += ref[i].acc[d] * ref[i].acc[d];
    }
    if (norm2 > 1e-20) worst = std::max(worst, std::sqrt(diff2 / norm2));
  }
  return worst;
}

double barnes_total_energy(const std::vector<Body>& bodies, double eps) {
  const double eps2 = eps * eps;
  double kinetic = 0.0, potential = 0.0;
  for (std::size_t i = 0; i < bodies.size(); ++i) {
    const Body& a = bodies[i];
    kinetic += 0.5 * a.mass *
               (a.vel[0] * a.vel[0] + a.vel[1] * a.vel[1] + a.vel[2] * a.vel[2]);
    for (std::size_t j = i + 1; j < bodies.size(); ++j) {
      const Body& b = bodies[j];
      const double dx = a.pos[0] - b.pos[0];
      const double dy = a.pos[1] - b.pos[1];
      const double dz = a.pos[2] - b.pos[2];
      potential -= a.mass * b.mass / std::sqrt(dx * dx + dy * dy + dz * dz + eps2);
    }
  }
  return kinetic + potential;
}

}  // namespace dfth::apps
