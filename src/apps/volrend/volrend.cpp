#include "apps/volrend/volrend.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "runtime/api.h"
#include "runtime/sync.h"
#include "util/check.h"
#include "util/rng.h"

namespace dfth::apps {
namespace {

constexpr double kOpacityThreshold = 0.35;  ///< transfer function cut-in
constexpr double kEarlyTermination = 0.98;  ///< stop once alpha saturates
constexpr double kStep = 0.75;              ///< ray step in voxels

struct Vec3 {
  double x, y, z;
};

Vec3 rotate_y(Vec3 v, double angle) {
  const double c = std::cos(angle), s = std::sin(angle);
  return {c * v.x + s * v.z, v.y, -s * v.x + c * v.z};
}

}  // namespace

Volume::Volume(const VolrendConfig& cfg) : dim_(cfg.volume_dim) {
  DFTH_CHECK(dim_ % kBrickDim == 0);
  bricks_ = dim_ / kBrickDim;
  data_ = static_cast<std::uint8_t*>(df_malloc(dim_ * dim_ * dim_));
  brick_max_ = static_cast<std::uint8_t*>(df_malloc(bricks_ * bricks_ * bricks_));
  build_procedural(cfg.seed);
  build_octree();
}

Volume::~Volume() {
  df_free(data_);
  df_free(brick_max_);
}

void Volume::build_procedural(std::uint64_t seed) {
  // "CT head" stand-in: skin ellipsoid, skull shell, brain blob, airway
  // cavity — graded densities with deterministic low-frequency noise.
  const double c = static_cast<double>(dim_) / 2.0;
  for (std::size_t z = 0; z < dim_; ++z) {
    for (std::size_t y = 0; y < dim_; ++y) {
      for (std::size_t x = 0; x < dim_; ++x) {
        const double dx = (static_cast<double>(x) - c) / c;
        const double dy = (static_cast<double>(y) - c) / c;
        const double dz = (static_cast<double>(z) - c * 1.05) / c;
        const double head = dx * dx / 0.55 + dy * dy / 0.72 + dz * dz / 0.62;
        double density = 0.0;
        if (head < 1.0) {
          density = 40.0;  // soft tissue
          const double skull = dx * dx / 0.47 + dy * dy / 0.62 + dz * dz / 0.53;
          if (skull < 1.0 && skull > 0.78) density = 220.0;  // bone shell
          if (skull <= 0.78) density = 95.0;                 // brain
          // Airway/sinus cavity.
          const double sinus =
              dx * dx / 0.02 + (dy + 0.35) * (dy + 0.35) / 0.05 +
              (dz + 0.3) * (dz + 0.3) / 0.08;
          if (sinus < 1.0) density = 5.0;
        }
        // Deterministic smooth-ish noise from the coordinates + seed.
        std::uint64_t h = seed ^ (x / 4 * 73856093ULL) ^ (y / 4 * 19349663ULL) ^
                          (z / 4 * 83492791ULL);
        const double noise =
            static_cast<double>(splitmix64(h) & 0xff) / 255.0 * 14.0 - 7.0;
        density = std::clamp(density + (density > 0 ? noise : 0.0), 0.0, 255.0);
        data_[(z * dim_ + y) * dim_ + x] = static_cast<std::uint8_t>(density);
      }
    }
  }
}

void Volume::build_octree() {
  for (std::size_t bz = 0; bz < bricks_; ++bz) {
    for (std::size_t by = 0; by < bricks_; ++by) {
      for (std::size_t bx = 0; bx < bricks_; ++bx) {
        std::uint8_t peak = 0;
        for (std::size_t z = bz * kBrickDim; z < (bz + 1) * kBrickDim; ++z) {
          for (std::size_t y = by * kBrickDim; y < (by + 1) * kBrickDim; ++y) {
            for (std::size_t x = bx * kBrickDim; x < (bx + 1) * kBrickDim; ++x) {
              peak = std::max(peak, at(x, y, z));
            }
          }
        }
        brick_max_[(bz * bricks_ + by) * bricks_ + bx] = peak;
      }
    }
  }
}

double Volume::sample(double x, double y, double z) const {
  const auto xi = static_cast<std::size_t>(x);
  const auto yi = static_cast<std::size_t>(y);
  const auto zi = static_cast<std::size_t>(z);
  if (xi + 1 >= dim_ || yi + 1 >= dim_ || zi + 1 >= dim_) return 0.0;
  const double fx = x - static_cast<double>(xi);
  const double fy = y - static_cast<double>(yi);
  const double fz = z - static_cast<double>(zi);
  auto v = [&](std::size_t dx, std::size_t dy, std::size_t dz) {
    return static_cast<double>(at(xi + dx, yi + dy, zi + dz));
  };
  const double c00 = v(0, 0, 0) * (1 - fx) + v(1, 0, 0) * fx;
  const double c10 = v(0, 1, 0) * (1 - fx) + v(1, 1, 0) * fx;
  const double c01 = v(0, 0, 1) * (1 - fx) + v(1, 0, 1) * fx;
  const double c11 = v(0, 1, 1) * (1 - fx) + v(1, 1, 1) * fx;
  const double c0 = c00 * (1 - fy) + c10 * fy;
  const double c1 = c01 * (1 - fy) + c11 * fy;
  return c0 * (1 - fz) + c1 * fz;
}

std::uint32_t Volume::brick_id(double x, double y, double z) const {
  const auto bx = static_cast<std::size_t>(x) / kBrickDim;
  const auto by = static_cast<std::size_t>(y) / kBrickDim;
  const auto bz = static_cast<std::size_t>(z) / kBrickDim;
  return static_cast<std::uint32_t>((bz * bricks_ + by) * bricks_ + bx);
}

bool Volume::brick_empty(double x, double y, double z) const {
  return static_cast<double>(brick_max_[brick_id(x, y, z)]) <
         kOpacityThreshold * 255.0;
}

namespace {

/// Casts one ray; returns the pixel value and reports touched bricks + work.
std::uint8_t cast_ray(const Volume& vol, const VolrendConfig& cfg, std::size_t px,
                      std::size_t py, double view_angle) {
  const double n = static_cast<double>(vol.dim());
  const double img = static_cast<double>(cfg.image_dim);
  // Orthographic camera rotated about the volume's vertical (y) axis.
  const double u = (static_cast<double>(px) / img - 0.5) * n;
  const double v = (static_cast<double>(py) / img - 0.5) * n;
  const Vec3 dir = rotate_y({0, 0, 1}, view_angle);
  const Vec3 right = rotate_y({1, 0, 0}, view_angle);
  const Vec3 center{n / 2, n / 2, n / 2};
  // Ray origin: backed out of the volume along -dir.
  Vec3 pos{center.x + right.x * u - dir.x * n,
           center.y + v,
           center.z + right.z * u - dir.z * n};

  double alpha = 0.0, intensity = 0.0;
  std::uint32_t touched[64];
  std::size_t touched_count = 0;
  std::uint32_t last_brick = UINT32_MAX;
  std::uint64_t steps = 0;

  const double tmax = 2.0 * n;
  for (double t = 0.0; t < tmax; t += kStep) {
    const double x = pos.x + dir.x * t;
    const double y = pos.y + dir.y * t;
    const double z = pos.z + dir.z * t;
    if (x < 1 || y < 1 || z < 1 || x >= n - 2 || y >= n - 2 || z >= n - 2) continue;
    ++steps;
    // Empty-space skipping via the min/max octree bricks.
    const std::uint32_t brick = vol.brick_id(x, y, z);
    if (brick != last_brick) {
      last_brick = brick;
      if (touched_count < std::size(touched)) touched[touched_count++] = brick;
    }
    if (vol.brick_empty(x, y, z)) {
      // Jump to roughly the end of this brick.
      t += static_cast<double>(kBrickDim) * 0.5;
      continue;
    }
    const double density = vol.sample(x, y, z) / 255.0;
    if (density < kOpacityThreshold) continue;
    const double opacity = (density - kOpacityThreshold) * 0.22;
    const double light = 0.4 + 0.6 * density;
    intensity += (1.0 - alpha) * opacity * light;
    alpha += (1.0 - alpha) * opacity;
    if (alpha > kEarlyTermination) break;  // early ray termination
  }
  annotate_work(steps * 18 + 40);  // sampling + compositing flops
  annotate_touch(touched, touched_count);
  return static_cast<std::uint8_t>(std::clamp(intensity * 255.0, 0.0, 255.0));
}

// Renders one 4x4 tile into its private block of the tile-major scratch
// buffer (tile t owns bytes [t*16, t*16+16)). Rendering directly into the
// row-major image would be correct byte-wise but racy granule-wise: a 4-pixel
// row segment is half of an 8-byte race-detector granule, so horizontally
// adjacent tiles on different fibers would falsely share shadow cells. The
// tile-major layout makes every tile's writes granule-disjoint by
// construction; assemble_tiles() folds the scratch into the image on the
// spawning fiber, after the joins that order it against every renderer.
void render_tile(const Volume& vol, const VolrendConfig& cfg,
                 std::uint8_t* tiles_out, std::size_t tile, double view_angle) {
  const std::size_t tiles_x = (cfg.image_dim + kTilePixels - 1) / kTilePixels;
  const std::size_t tx = (tile % tiles_x) * kTilePixels;
  const std::size_t ty = (tile / tiles_x) * kTilePixels;
  std::uint8_t* slot = tiles_out + tile * kTilePixels * kTilePixels;
  df_write(slot, kTilePixels * kTilePixels, "volrend/render_tile:tile");
  for (std::size_t dy = 0; dy < kTilePixels; ++dy) {
    const std::size_t py = ty + dy;
    if (py >= cfg.image_dim) break;
    const std::size_t row = std::min(kTilePixels, cfg.image_dim - tx);
    for (std::size_t dx = 0; dx < row; ++dx) {
      const std::size_t px = tx + dx;
      slot[dy * kTilePixels + dx] = cast_ray(vol, cfg, px, py, view_angle);
    }
  }
}

/// Copies the tile-major scratch into the row-major image. Callers run this
/// on the fiber that joined every renderer, so the whole image is covered by
/// one annotation up front.
void assemble_tiles(const std::uint8_t* tiles_in, const VolrendConfig& cfg,
                    Image& out) {
  df_write(out.data(), out.size(), "volrend/assemble_tiles:image");
  const std::size_t tiles_x = (cfg.image_dim + kTilePixels - 1) / kTilePixels;
  for (std::size_t tile = 0; tile < tiles_x * tiles_x; ++tile) {
    const std::size_t tx = (tile % tiles_x) * kTilePixels;
    const std::size_t ty = (tile / tiles_x) * kTilePixels;
    const std::uint8_t* slot = tiles_in + tile * kTilePixels * kTilePixels;
    for (std::size_t dy = 0; dy < kTilePixels; ++dy) {
      const std::size_t py = ty + dy;
      if (py >= cfg.image_dim) break;
      const std::size_t row = std::min(kTilePixels, cfg.image_dim - tx);
      for (std::size_t dx = 0; dx < row; ++dx) {
        out[py * cfg.image_dim + tx + dx] = slot[dy * kTilePixels + dx];
      }
    }
  }
}

double frame_angle(int frame) { return 0.35 + 0.12 * static_cast<double>(frame); }

}  // namespace

std::size_t volrend_tile_count(const VolrendConfig& cfg) {
  const std::size_t tiles_x = (cfg.image_dim + kTilePixels - 1) / kTilePixels;
  return tiles_x * tiles_x;
}

Image volrend_serial(const Volume& vol, const VolrendConfig& cfg) {
  Image img(cfg.image_dim * cfg.image_dim, 0);
  std::vector<std::uint8_t> tiles_buf(
      volrend_tile_count(cfg) * kTilePixels * kTilePixels, 0);
  for (int f = 0; f < cfg.frames; ++f) {
    const double angle = frame_angle(f);
    for (std::size_t tile = 0; tile < volrend_tile_count(cfg); ++tile) {
      render_tile(vol, cfg, tiles_buf.data(), tile, angle);
    }
    assemble_tiles(tiles_buf.data(), cfg, img);
  }
  return img;
}

Image volrend_coarse(const Volume& vol, const VolrendConfig& cfg, int nprocs) {
  DFTH_CHECK_MSG(in_runtime(), "volrend_coarse outside dfth::run");
  Image img(cfg.image_dim * cfg.image_dim, 0);
  const std::size_t tiles = volrend_tile_count(cfg);
  std::vector<std::uint8_t> tiles_buf(tiles * kTilePixels * kTilePixels, 0);

  // SPLASH-2 scheme: the image is pre-partitioned into contiguous blocks of
  // tiles, one explicit task queue per processor; a processor that runs out
  // steals a tile from another queue.
  struct TaskQueue {
    Mutex mu;
    std::vector<std::size_t> tiles;
  };

  for (int f = 0; f < cfg.frames; ++f) {
    const double angle = frame_angle(f);
    std::vector<TaskQueue> queues(static_cast<std::size_t>(nprocs));
    for (std::size_t tile = 0; tile < tiles; ++tile) {
      queues[tile * static_cast<std::size_t>(nprocs) / tiles].tiles.push_back(tile);
    }
    std::vector<Thread> threads;
    threads.reserve(static_cast<std::size_t>(nprocs));
    for (int t = 0; t < nprocs; ++t) {
      threads.push_back(spawn([&, t]() -> void* {
        const auto self = static_cast<std::size_t>(t);
        while (true) {
          // Own queue first, then steal round-robin.
          bool found = false;
          std::size_t tile = 0;
          for (std::size_t attempt = 0; attempt < queues.size(); ++attempt) {
            auto& q = queues[(self + attempt) % queues.size()];
            LockGuard lock(q.mu);
            if (!q.tiles.empty()) {
              tile = q.tiles.back();
              q.tiles.pop_back();
              found = true;
              break;
            }
          }
          if (!found) break;
          render_tile(vol, cfg, tiles_buf.data(), tile, angle);
        }
        return nullptr;
      }));
    }
    for (auto& th : threads) join(th);
    assemble_tiles(tiles_buf.data(), cfg, img);
  }
  return img;
}

Image volrend_fine(const Volume& vol, const VolrendConfig& cfg) {
  DFTH_CHECK_MSG(in_runtime(), "volrend_fine outside dfth::run");
  Image img(cfg.image_dim * cfg.image_dim, 0);
  const std::size_t tiles = volrend_tile_count(cfg);
  const std::size_t per_thread = std::max<std::size_t>(1, cfg.tiles_per_thread);
  std::vector<std::uint8_t> tiles_buf(tiles * kTilePixels * kTilePixels, 0);

  for (int f = 0; f < cfg.frames; ++f) {
    const double angle = frame_angle(f);
    std::vector<Thread> threads;
    threads.reserve(tiles / per_thread + 1);
    for (std::size_t lo = 0; lo < tiles; lo += per_thread) {
      const std::size_t hi = std::min(tiles, lo + per_thread);
      threads.push_back(spawn([&, lo, hi, angle]() -> void* {
        for (std::size_t tile = lo; tile < hi; ++tile) {
          render_tile(vol, cfg, tiles_buf.data(), tile, angle);
        }
        return nullptr;
      }));
    }
    for (auto& t : threads) join(t);
    assemble_tiles(tiles_buf.data(), cfg, img);
  }
  return img;
}

namespace {

void render_range_tree(const Volume& vol, const VolrendConfig& cfg,
                       std::uint8_t* tiles_out, std::size_t lo, std::size_t hi,
                       std::size_t grain, double angle) {
  if (hi - lo <= grain) {
    for (std::size_t tile = lo; tile < hi; ++tile) {
      render_tile(vol, cfg, tiles_out, tile, angle);
    }
    return;
  }
  const std::size_t mid = lo + (hi - lo) / 2;
  Thread left = spawn([&, lo, mid, grain, angle]() -> void* {
    render_range_tree(vol, cfg, tiles_out, lo, mid, grain, angle);
    return nullptr;
  });
  render_range_tree(vol, cfg, tiles_out, mid, hi, grain, angle);
  join(left);
}

}  // namespace

Image volrend_fine_tree(const Volume& vol, const VolrendConfig& cfg) {
  DFTH_CHECK_MSG(in_runtime(), "volrend_fine_tree outside dfth::run");
  Image img(cfg.image_dim * cfg.image_dim, 0);
  const std::size_t tiles = volrend_tile_count(cfg);
  const std::size_t per_thread = std::max<std::size_t>(1, cfg.tiles_per_thread);
  std::vector<std::uint8_t> tiles_buf(tiles * kTilePixels * kTilePixels, 0);
  for (int f = 0; f < cfg.frames; ++f) {
    render_range_tree(vol, cfg, tiles_buf.data(), 0, tiles, per_thread,
                      frame_angle(f));
    assemble_tiles(tiles_buf.data(), cfg, img);
  }
  return img;
}

bool volrend_images_equal(const Image& a, const Image& b) { return a == b; }

bool volrend_write_pgm(const Image& img, std::size_t dim, const char* path) {
  std::FILE* f = std::fopen(path, "wb");
  if (!f) return false;
  std::fprintf(f, "P5\n%zu %zu\n255\n", dim, dim);
  std::fwrite(img.data(), 1, img.size(), f);
  std::fclose(f);
  return true;
}

}  // namespace dfth::apps
