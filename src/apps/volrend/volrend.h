// Ray-casting volume renderer — the paper's SPLASH-2 volrend benchmark
// (§5.1.6, Figure 11).
//
// A 256^3 scalar volume (a procedural "CT head": nested ellipsoid shells
// for skin, skull and brain plus deterministic noise, standing in for the
// non-distributable Computed Tomography dataset) is rendered by casting one
// ray per pixel of a 375^2 image plane from a per-frame viewpoint. A
// min/max octree over 8^3 bricks provides empty-space skipping; rays
// terminate early once opacity saturates. Parallelism is over 4x4-pixel
// tiles:
//  * coarse (SPLASH-2 scheme): one thread per processor, the image split
//    into per-processor blocks of tiles, an explicit task queue per
//    processor, and stealing from other queues when a processor runs dry;
//  * fine (the paper's rewrite): one thread per `tiles_per_thread` tiles —
//    the Figure 11 granularity knob — with no explicit queues at all.
//
// Locality model: each ray reports the volume bricks it traverses through
// annotate_touch(), driving the simulator's per-processor LRU cache — rays
// through nearby pixels share bricks, which is why Figure 11's speedup
// collapses at too-fine granularities.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace dfth::apps {

struct VolrendConfig {
  std::size_t volume_dim = 256;   ///< cubic volume edge (power of two)
  std::size_t image_dim = 375;    ///< square image edge
  int frames = 1;                 ///< viewpoints rendered (paper: a sequence)
  std::size_t tiles_per_thread = 64;  ///< fine-grained granularity (Fig 11)
  std::uint64_t seed = 7;
};

inline constexpr std::size_t kTilePixels = 4;  ///< 4x4 tiles, as in SPLASH-2
inline constexpr std::size_t kBrickDim = 8;    ///< octree leaf brick edge

/// The volume plus its min/max brick octree. Storage is df_malloc'd.
class Volume {
 public:
  explicit Volume(const VolrendConfig& cfg);
  ~Volume();
  Volume(const Volume&) = delete;
  Volume& operator=(const Volume&) = delete;

  std::size_t dim() const { return dim_; }
  std::uint8_t at(std::size_t x, std::size_t y, std::size_t z) const {
    return data_[(z * dim_ + y) * dim_ + x];
  }
  /// Trilinear density sample at a point inside [0, dim-1]^3.
  double sample(double x, double y, double z) const;

  /// Brick id containing the voxel (for annotate_touch / LRU model).
  std::uint32_t brick_id(double x, double y, double z) const;
  /// True if the brick containing the point is empty (max density below the
  /// transfer function's threshold) — empty-space skipping.
  bool brick_empty(double x, double y, double z) const;

 private:
  void build_procedural(std::uint64_t seed);
  void build_octree();

  std::size_t dim_ = 0;
  std::size_t bricks_ = 0;  ///< bricks per edge
  std::uint8_t* data_ = nullptr;
  std::uint8_t* brick_max_ = nullptr;
};

/// One rendered grayscale frame (row-major image_dim^2, values 0..255).
using Image = std::vector<std::uint8_t>;

/// Renders `cfg.frames` frames serially; returns the last frame.
Image volrend_serial(const Volume& vol, const VolrendConfig& cfg);

/// Coarse-grained: per-processor tile queues with stealing (SPLASH-2
/// scheme). Must run inside dfth::run().
Image volrend_coarse(const Volume& vol, const VolrendConfig& cfg, int nprocs);

/// Fine-grained: one thread per cfg.tiles_per_thread tiles, spawned as a
/// flat sequence (the paper's version). Must run inside dfth::run().
Image volrend_fine(const Volume& vol, const VolrendConfig& cfg);

/// Fine-grained with tree-structured spawning: the tile range is split by
/// recursive binary forks down to cfg.tiles_per_thread. Same work and same
/// image as volrend_fine, but threads adjacent in the image are adjacent in
/// the fork tree — the structure a locality-aware scheduler (DfDeques,
/// §5.3) can exploit by keeping stolen subtrees on one processor. Must run
/// inside dfth::run().
Image volrend_fine_tree(const Volume& vol, const VolrendConfig& cfg);

/// Number of 4x4 tiles in one frame.
std::size_t volrend_tile_count(const VolrendConfig& cfg);

/// Exact pixel equality between frames (renders are deterministic).
bool volrend_images_equal(const Image& a, const Image& b);

/// Writes a PGM file (examples use this); returns false on I/O error.
bool volrend_write_pgm(const Image& img, std::size_t dim, const char* path);

}  // namespace dfth::apps
