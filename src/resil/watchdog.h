// Stall watchdog and flight recorder.
//
// A hung parallel run is the one failure mode neither the tracer (which is
// read after the run) nor the auditor (which checks per-operation
// invariants) can report, because nothing *happens* anymore. The watchdog
// closes that gap: RealEngine runs a supervisor thread that notices when no
// scheduler progress (dispatch / wake / exit) occurs within a wall-clock
// deadline, and SimEngine enforces a ceiling on virtual time. Either trip
// ends in dump_flight_recorder(): a best-effort crash dump of everything
// the runtime knows — per-worker current fibers, every thread's state and
// held locks (PR-1 LockGraph data), the AsyncDF serial-order list, the tail
// of the obs trace rings, and the fault-injection counters — written to
// stderr and optionally a file, followed by abort().
//
// The dump lives in src/resil (not src/runtime) deliberately: the engine
// layers are stdio-free by lint rule; a crash dump is the one place raw
// stderr is the right tool.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace dfth {

struct Tcb;
class Scheduler;

namespace obs {
class Tracer;
}

namespace resil {

/// Watchdog knobs, carried by RuntimeOptions. Both deadlines default to 0 =
/// disabled; the watchdog is an opt-in diagnostic, not a supervisor that
/// kills slow-but-correct runs.
struct WatchdogConfig {
  /// RealEngine: abort when no dispatch/wake/exit progress is observed for
  /// this many wall-clock milliseconds.
  std::uint64_t stall_deadline_ms = 0;

  /// SimEngine: abort when the virtual clock of any processor exceeds this
  /// many virtual nanoseconds (a stalled simulation either stops advancing —
  /// caught by the deadlock check — or spins past any plausible ceiling).
  std::uint64_t virtual_deadline_ns = 0;

  /// When non-empty, the flight-recorder dump is also written to this file
  /// (CI uploads it as an artifact on failure).
  std::string dump_path;

  /// Optional caller-owned liveness heartbeat for intentionally idle runs.
  /// A long-lived serving engine with an empty ingress makes no scheduler
  /// progress by design — that is liveness, not a stall. When set, the
  /// caller bumps this counter whenever it is alive-but-idle (the serve
  /// pump's drain/poll loop), and both watchdogs treat a beat like
  /// dispatch progress: RealEngine folds it into the supervisor's progress
  /// snapshot, SimEngine restarts the virtual deadline window from the last
  /// beat instead of measuring from time zero. The deadline itself stays
  /// tight — a wedged pump stops beating and still trips it.
  const std::atomic<std::uint64_t>* heartbeat = nullptr;
};

/// One execution lane (kernel worker or virtual processor) and the fiber it
/// was running when the recorder fired.
struct FlightLane {
  int lane = 0;
  const Tcb* running = nullptr;
};

/// Everything the dump needs, gathered by the tripping engine. All pointers
/// are borrowed; reads are best-effort (the process is about to abort, and
/// for a real-engine stall the other workers may still be mutating state —
/// `sched_state_consistent` records whether the engine managed to lock its
/// scheduler before collecting).
struct FlightInfo {
  const char* reason = "";
  const char* engine = "";
  std::int64_t live_threads = -1;
  bool sched_state_consistent = true;
  std::vector<FlightLane> lanes;
  const std::vector<Tcb*>* all_tcbs = nullptr;
  Scheduler* sched = nullptr;      ///< may be an AuditedScheduler decorator
  obs::Tracer* tracer = nullptr;   ///< active trace session, if any

  /// Record/replay context (src/replay/): when the aborting run was
  /// recording, the engine flushes the in-flight schedule log before
  /// gathering this info and sets record_log to its path plus replay_cmd to
  /// a paste-ready command line that re-executes the recorded schedule.
  /// When the aborting run itself was a replay, replay_log names its input.
  std::string record_log;
  std::string replay_cmd;
  std::string replay_log;
  /// Replaying runs: cursor + next expected decision at abort time.
  std::string replay_position;
};

/// Writes the flight-recorder dump to stderr (and cfg.dump_path when set).
/// Does not abort — callers decide (engines abort; tests capture).
void dump_flight_recorder(const FlightInfo& info, const WatchdogConfig& cfg);

}  // namespace resil
}  // namespace dfth
