// Deterministic fault injection — the "chaos" half of the resilience layer.
//
// Every recoverable resource-acquisition point in the runtime is a named
// *fault site* (stack.mmap, heap.alloc, ctx.create, ...). A build with
// -DDFTH_FAULTS=ON compiles a DFTH_FAULT_SHOULD_FAIL(site) probe into each
// site; an armed FaultInjector then decides — from a seeded PRNG, an
// every-Nth counter, or both — whether that particular acquisition should
// pretend to fail. Because the injector consumes one deterministic stream
// per site, an identical FaultPlan replayed under SimEngine (which
// serializes all fibers onto one host thread) produces the identical
// failure schedule, so every recovery path is testable byte-for-byte.
//
// With -DDFTH_FAULTS=OFF (the default) both hooks are literal constants:
// DFTH_FAULT_SHOULD_FAIL(site) expands to (false) and
// DFTH_FAULT_RECOVERED(site) to ((void)0), so production builds pay nothing
// — tests/resil/faults_test.cpp static_asserts the expansion, mirroring the
// obs-layer hook proof.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>

#include "util/rng.h"

namespace dfth::resil {

#if DFTH_FAULTS
inline constexpr bool kFaultsEnabled = true;
#else
inline constexpr bool kFaultsEnabled = false;
#endif

/// Named resource-acquisition points that can be made to fail.
enum class FaultSite : int {
  kStackMmap = 0,   ///< StackPool::acquire — the guard+usable mmap
  kStackMprotect,   ///< StackPool::acquire — re-protecting the usable region
  kHeapAlloc,       ///< TrackedHeap::allocate_ex — the backing malloc
  kCtxCreate,       ///< engine make_tcb — fiber context creation
  kWorkerSpawn,     ///< RealEngine::run — kernel worker thread creation
  kSyncTimeout,     ///< sync timed waits — force an immediate timeout
  kCount,
};

inline constexpr int kNumFaultSites = static_cast<int>(FaultSite::kCount);

/// The dotted name used in plans, logs, and the watchdog dump
/// ("stack.mmap", "heap.alloc", ...).
const char* to_string(FaultSite site);

/// Per-site trigger rule. A site fails when its every-Nth counter fires OR
/// its per-evaluation Bernoulli draw fires, subject to skip_first and
/// max_failures. All-zero (the default) means the site never fails.
struct SiteSpec {
  std::uint64_t every_nth = 0;    ///< fail every Nth evaluation (0 = off)
  double probability = 0.0;       ///< independent failure chance per evaluation
  std::uint64_t skip_first = 0;   ///< let this many evaluations through first
  std::uint64_t max_failures = UINT64_MAX;  ///< stop injecting after this many

  bool enabled() const { return every_nth != 0 || probability > 0.0; }
};

/// A complete injection schedule: one seed (forked into an independent
/// per-site PRNG stream) plus one SiteSpec per site. Passed to the runtime
/// via RuntimeOptions::fault_plan; the engine arms the injector for the
/// duration of run().
struct FaultPlan {
  std::uint64_t seed = 0x5eed;
  SiteSpec sites[kNumFaultSites] = {};

  SiteSpec& site(FaultSite s) { return sites[static_cast<int>(s)]; }
  const SiteSpec& site(FaultSite s) const { return sites[static_cast<int>(s)]; }

  bool enabled() const {
    for (const SiteSpec& s : sites) {
      if (s.enabled()) return true;
    }
    return false;
  }

  /// Every site fails deterministically every `nth` evaluation.
  static FaultPlan uniform_every(std::uint64_t seed, std::uint64_t nth);

  /// Every site fails independently with probability `p` per evaluation.
  static FaultPlan uniform_probability(std::uint64_t seed, double p);
};

/// Process-global injector. Disarmed it is a single relaxed atomic load per
/// probe; armed it serializes evaluations through a mutex — acceptable
/// because fault sites sit on resource-acquisition slow paths, and required
/// so the per-site streams stay deterministic under SimEngine.
class FaultInjector {
 public:
  static FaultInjector& instance();

  /// Installs `plan`, reseeds every per-site stream, and zeroes the per-site
  /// evaluation/injection/recovery counters.
  void arm(const FaultPlan& plan);

  /// Stops injecting. Counters are preserved so callers can inspect the
  /// schedule a finished run experienced.
  void disarm();

  bool armed() const { return armed_.load(std::memory_order_acquire); }

  /// One evaluation of `site`: returns true if this acquisition must fail.
  bool should_fail(FaultSite site);

  /// Records that a previously injected failure at `site` was absorbed by a
  /// degradation path (retry succeeded, fallback engaged, child ran inline).
  void on_recovered(FaultSite site);

  // -- counters (valid since the last arm()) --------------------------------
  std::uint64_t evaluations(FaultSite site) const;
  std::uint64_t injected(FaultSite site) const;
  std::uint64_t recovered(FaultSite site) const;
  std::uint64_t evaluations_total() const;
  std::uint64_t injected_total() const;
  std::uint64_t recovered_total() const;

  /// Appends a human-readable per-site summary (used by the watchdog dump).
  void append_summary(std::string* out) const;

 private:
  FaultInjector() = default;

  mutable std::mutex mu_;
  std::atomic<bool> armed_{false};
  FaultPlan plan_;
  Rng rng_[kNumFaultSites];
  std::uint64_t evals_[kNumFaultSites] = {};
  std::uint64_t injected_[kNumFaultSites] = {};
  std::atomic<std::uint64_t> recovered_[kNumFaultSites] = {};
};

}  // namespace dfth::resil

#if DFTH_FAULTS
#define DFTH_FAULT_SHOULD_FAIL(site) \
  (::dfth::resil::FaultInjector::instance().should_fail(site))
#define DFTH_FAULT_RECOVERED(site) \
  ::dfth::resil::FaultInjector::instance().on_recovered(site)
#else
#define DFTH_FAULT_SHOULD_FAIL(site) (false)
#define DFTH_FAULT_RECOVERED(site) ((void)0)
#endif
