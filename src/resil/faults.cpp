#include "resil/faults.h"

#include <cstdio>

#include "obs/counters.h"
#include "replay/hooks.h"

namespace dfth::resil {

const char* to_string(FaultSite site) {
  switch (site) {
    case FaultSite::kStackMmap: return "stack.mmap";
    case FaultSite::kStackMprotect: return "stack.mprotect";
    case FaultSite::kHeapAlloc: return "heap.alloc";
    case FaultSite::kCtxCreate: return "ctx.create";
    case FaultSite::kWorkerSpawn: return "worker.spawn";
    case FaultSite::kSyncTimeout: return "sync.timeout";
    case FaultSite::kCount: break;
  }
  return "?";
}

FaultPlan FaultPlan::uniform_every(std::uint64_t seed, std::uint64_t nth) {
  FaultPlan plan;
  plan.seed = seed;
  for (SiteSpec& s : plan.sites) s.every_nth = nth;
  return plan;
}

FaultPlan FaultPlan::uniform_probability(std::uint64_t seed, double p) {
  FaultPlan plan;
  plan.seed = seed;
  for (SiteSpec& s : plan.sites) s.probability = p;
  return plan;
}

FaultInjector& FaultInjector::instance() {
  static FaultInjector* injector = new FaultInjector();  // leaked: outlives engines
  return *injector;
}

void FaultInjector::arm(const FaultPlan& plan) {
  std::lock_guard<std::mutex> lock(mu_);
  plan_ = plan;
  // One independent stream per site: the order in which *different* sites
  // are probed cannot perturb any single site's draw sequence.
  Rng root(plan.seed);
  for (int i = 0; i < kNumFaultSites; ++i) {
    rng_[i] = root.fork_stream(static_cast<std::uint64_t>(i));
    evals_[i] = 0;
    injected_[i] = 0;
    recovered_[i].store(0, std::memory_order_relaxed);
  }
  armed_.store(true, std::memory_order_release);
}

void FaultInjector::disarm() { armed_.store(false, std::memory_order_release); }

bool FaultInjector::should_fail(FaultSite site) {
  if (!armed_.load(std::memory_order_acquire)) return false;
  const int i = static_cast<int>(site);
#if DFTH_REPLAY
  // Only probes of *enabled* sites are ordered decisions: a site's per-thread
  // probe interleaving decides which thread draws each every_nth/probability
  // outcome, so replay must pin it. Disabled-site probes are order-free
  // no-ops; gating them would serialize every heap allocation and flood the
  // log. plan_ is constant while armed_ (arm() publishes it with release),
  // so this pre-lock read is safe. Every probe site sits outside any shared
  // lock (verified per site), so gating here cannot deadlock.
  const bool ordered = ::dfth::replay::active() != nullptr &&
                       plan_.sites[i].enabled();
  if (ordered) DFTH_REPLAY_FAULT_GATE();
#endif
  std::lock_guard<std::mutex> lock(mu_);
  const SiteSpec& spec = plan_.sites[i];
  const std::uint64_t n = ++evals_[i];
  bool fail = false;
  if (spec.enabled() && n > spec.skip_first && injected_[i] < spec.max_failures) {
    if (spec.every_nth != 0 && (n - spec.skip_first) % spec.every_nth == 0) {
      fail = true;
    }
    if (spec.probability > 0.0 && rng_[i].next_bool(spec.probability)) {
      fail = true;
    }
    if (fail) {
      ++injected_[i];
      DFTH_COUNT(obs::Counter::FaultsInjected);
    }
  }
#if DFTH_REPLAY
  if (ordered) DFTH_REPLAY_FAULT_COMMIT(site, fail);
#endif
  return fail;
}

void FaultInjector::on_recovered(FaultSite site) {
  recovered_[static_cast<int>(site)].fetch_add(1, std::memory_order_relaxed);
  DFTH_COUNT(obs::Counter::FaultsRecovered);
}

std::uint64_t FaultInjector::evaluations(FaultSite site) const {
  std::lock_guard<std::mutex> lock(mu_);
  return evals_[static_cast<int>(site)];
}

std::uint64_t FaultInjector::injected(FaultSite site) const {
  std::lock_guard<std::mutex> lock(mu_);
  return injected_[static_cast<int>(site)];
}

std::uint64_t FaultInjector::recovered(FaultSite site) const {
  return recovered_[static_cast<int>(site)].load(std::memory_order_relaxed);
}

std::uint64_t FaultInjector::evaluations_total() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::uint64_t total = 0;
  for (std::uint64_t v : evals_) total += v;
  return total;
}

std::uint64_t FaultInjector::injected_total() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::uint64_t total = 0;
  for (std::uint64_t v : injected_) total += v;
  return total;
}

std::uint64_t FaultInjector::recovered_total() const {
  std::uint64_t total = 0;
  for (const auto& v : recovered_) total += v.load(std::memory_order_relaxed);
  return total;
}

void FaultInjector::append_summary(std::string* out) const {
  std::lock_guard<std::mutex> lock(mu_);
  char line[128];
  for (int i = 0; i < kNumFaultSites; ++i) {
    std::snprintf(line, sizeof line,
                  "  %-14s evaluated=%llu injected=%llu recovered=%llu\n",
                  to_string(static_cast<FaultSite>(i)),
                  static_cast<unsigned long long>(evals_[i]),
                  static_cast<unsigned long long>(injected_[i]),
                  static_cast<unsigned long long>(
                      recovered_[i].load(std::memory_order_relaxed)));
    *out += line;
  }
}

}  // namespace dfth::resil
