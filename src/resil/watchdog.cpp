#include "resil/watchdog.h"

#include <cinttypes>
#include <cstdarg>
#include <cstdio>

#include "core/asyncdf_sched.h"
#include "core/scheduler.h"
#include "obs/trace.h"
#include "resil/faults.h"
#include "threads/tcb.h"

namespace dfth::resil {
namespace {

// How many trailing trace events the dump shows per run. The rings keep the
// *earliest* events (see obs/trace.h), so "tail" here means the latest of
// what survived — still the best available picture of the run's shape.
constexpr std::size_t kTraceTail = 64;

void append(std::string* out, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));

void append(std::string* out, const char* fmt, ...) {
  char line[512];
  va_list ap;
  va_start(ap, fmt);
  std::vsnprintf(line, sizeof line, fmt, ap);
  va_end(ap);
  *out += line;
}

void append_threads(std::string* out, const std::vector<Tcb*>& tcbs) {
  append(out, "-- threads (%zu total) --\n", tcbs.size());
  for (const Tcb* t : tcbs) {
    if (!t) continue;
    const ThreadState st = t->state.load(std::memory_order_relaxed);
    append(out,
           "  t%" PRIu64 " state=%s%s%s%s dispatches=%" PRIu64
           " quota=%lld held-locks=%zu",
           t->id, to_string(st), t->is_main ? " main" : "",
           t->is_dummy ? " dummy" : "", t->attr.bound ? " bound" : "",
           t->dispatches, static_cast<long long>(t->quota),
           t->held_locks.size());
    for (const void* lock : t->held_locks) append(out, " %p", lock);
    append(out, "\n");
  }
}

void append_order_list(std::string* out, Scheduler* sched) {
  auto* adf = dynamic_cast<AsyncDfScheduler*>(sched->underlying());
  if (!adf) {
    append(out, "-- order-list: n/a (scheduler %s keeps no serial order) --\n",
           to_string(sched->kind()));
    return;
  }
  append(out, "-- order-list (AsyncDF serial order, leftmost first) --\n");
  for (int prio = kNumPriorities - 1; prio >= 0; --prio) {
    const OrderList& list = adf->order_list(prio);
    if (list.empty()) continue;
    append(out, "  prio %d:", prio);
    for (const OrderNode* node = list.front();
         node != nullptr && node != list.end_sentinel(); node = node->next) {
      const auto* t = static_cast<const Tcb*>(node->owner);
      if (!t) {
        append(out, " <?>");
        continue;
      }
      append(out, " t%" PRIu64 "(%s)", t->id,
             to_string(t->state.load(std::memory_order_relaxed)));
    }
    append(out, "\n");
  }
}

void append_trace_tail(std::string* out, obs::Tracer* tracer) {
  append(out, "-- trace-ring tail --\n");
  if (!tracer) {
    append(out, "  (no trace session installed)\n");
    return;
  }
  const std::vector<obs::TraceEvent> events = tracer->merged();
  if (events.empty()) {
    append(out, "  (no events recorded)\n");
    return;
  }
  const std::size_t begin =
      events.size() > kTraceTail ? events.size() - kTraceTail : 0;
  if (begin > 0) append(out, "  ... %zu earlier events elided ...\n", begin);
  for (std::size_t i = begin; i < events.size(); ++i) {
    const obs::TraceEvent& ev = events[i];
    append(out, "  %12" PRIu64 " ns lane %u %-13s t%" PRIu64 " arg=%" PRIu64 "\n",
           ev.ts_ns, ev.lane, to_string(ev.kind), ev.tid, ev.arg);
  }
}

// -- full-fidelity sections (file dump only; stderr keeps the tail) ----------

void append_counters(std::string* out) {
  append(out, "-- counters (live values at abort) --\n");
  for (int c = 0; c < obs::kNumCounters; ++c) {
    const auto counter = static_cast<obs::Counter>(c);
    const std::uint64_t v = obs::counters().value(counter);
    if (v == 0) continue;
    append(out, "  %-16s %" PRIu64 "\n", obs::to_string(counter), v);
  }
}

void append_histograms(std::string* out) {
  append(out, "-- histograms (live at abort) --\n");
  for (int h = 0; h < obs::kNumHists; ++h) {
    const auto hist = static_cast<obs::Hist>(h);
    const obs::HistSnapshot s = obs::histograms().snapshot(hist);
    append(out,
           "  %-16s count=%" PRIu64 " p50<=%" PRIu64 " p99<=%" PRIu64
           " p999<=%" PRIu64 " max<=%" PRIu64 "\n",
           obs::to_string(hist), s.count(), s.percentile(0.50),
           s.percentile(0.99), s.percentile(0.999), s.max_bound());
  }
}

void append_samples(std::string* out, obs::Tracer* tracer) {
  append(out, "-- time series (ts live heap stack ready) --\n");
  if (!tracer) {
    append(out, "  (no trace session installed)\n");
    return;
  }
  // SimEngine hands its samples to the tracer only at a clean run end, so
  // an aborted Sim run may legitimately have none here.
  const std::vector<obs::Sample>& samples = tracer->samples();
  if (samples.empty()) {
    append(out, "  (no samples recorded before abort)\n");
    return;
  }
  for (const obs::Sample& s : samples) {
    append(out,
           "  %12" PRIu64 " ns live=%lld heap=%lld stack=%lld ready=%lld\n",
           s.ts_ns, static_cast<long long>(s.live_threads),
           static_cast<long long>(s.heap_bytes),
           static_cast<long long>(s.stack_bytes),
           static_cast<long long>(s.ready));
  }
}

void append_full_rings(std::string* out, obs::Tracer* tracer) {
  append(out, "-- trace rings (full contents, per lane) --\n");
  if (!tracer) {
    append(out, "  (no trace session installed)\n");
    return;
  }
  for (int lane = 0; lane < tracer->lanes(); ++lane) {
    const std::vector<obs::TraceEvent> events = tracer->lane_events(lane);
    append(out, "  lane %d: %zu events\n", lane, events.size());
    for (const obs::TraceEvent& ev : events) {
      append(out, "    %12" PRIu64 " ns %-13s t%" PRIu64 " arg=%" PRIu64 "\n",
             ev.ts_ns, to_string(ev.kind), ev.tid, ev.arg);
    }
  }
  append(out, "  dropped (all lanes): %" PRIu64 "\n", tracer->dropped());
}

}  // namespace

void dump_flight_recorder(const FlightInfo& info, const WatchdogConfig& cfg) {
  std::string out;
  out.reserve(4096);
  append(&out, "==== DFTH FLIGHT RECORDER ====\n");
  append(&out, "reason: %s\n", info.reason);
  append(&out, "engine: %s  live-threads: %lld  scheduler-state: %s\n",
         info.engine, static_cast<long long>(info.live_threads),
         info.sched_state_consistent ? "consistent"
                                     : "unlocked (best-effort snapshot)");
  append(&out, "-- lanes (current fiber per worker/vproc) --\n");
  for (const FlightLane& lane : info.lanes) {
    if (lane.running) {
      append(&out, "  lane %d: t%" PRIu64 " (%s)\n", lane.lane,
             lane.running->id,
             to_string(lane.running->state.load(std::memory_order_relaxed)));
    } else {
      append(&out, "  lane %d: idle\n", lane.lane);
    }
  }
  if (info.all_tcbs) append_threads(&out, *info.all_tcbs);
  if (info.sched) append_order_list(&out, info.sched);
  append_trace_tail(&out, info.tracer);
  append(&out, "-- fault injection --\n");
  if (FaultInjector::instance().armed()) {
    FaultInjector::instance().append_summary(&out);
  } else {
    append(&out, "  (injector disarmed)\n");
  }
  append(&out, "-- record/replay --\n");
  if (!info.record_log.empty()) {
    append(&out, "  in-flight schedule log flushed to: %s\n",
           info.record_log.c_str());
    append(&out, "  reproduce with: %s\n", info.replay_cmd.c_str());
  } else if (!info.replay_log.empty()) {
    append(&out, "  this run was replaying: %s\n", info.replay_log.c_str());
    if (!info.replay_position.empty()) {
      append(&out, "  %s\n", info.replay_position.c_str());
    }
  } else {
    append(&out,
           "  (no recording session — set RuntimeOptions::record_path to "
           "make the next failure replayable)\n");
  }
  std::string tail = out;
  append(&tail, "==== END FLIGHT RECORDER ====\n");

  std::fputs(tail.c_str(), stderr);
  std::fflush(stderr);
  if (!cfg.dump_path.empty()) {
    // The file gets the full-fidelity dump: every lane's complete ring (not
    // just the merged tail), the counter registry, histogram summaries and
    // the sampled time series — everything the abort would otherwise lose.
    append_counters(&out);
    append_histograms(&out);
    append_samples(&out, info.tracer);
    append_full_rings(&out, info.tracer);
    append(&out, "==== END FLIGHT RECORDER ====\n");
    if (std::FILE* f = std::fopen(cfg.dump_path.c_str(), "w")) {
      std::fputs(out.c_str(), f);
      std::fclose(f);
    } else {
      std::fprintf(stderr, "watchdog: could not write dump to %s\n",
                   cfg.dump_path.c_str());
    }
  }
}

}  // namespace dfth::resil
