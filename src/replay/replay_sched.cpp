#include "replay/replay_sched.h"

#include <limits>

#include "util/check.h"
#include "util/log.h"

namespace dfth::replay {
namespace {

constexpr std::uint64_t kInf = std::numeric_limits<std::uint64_t>::max();

}  // namespace

ReplayScheduler::ReplayScheduler(Session* session, SchedKind logged_kind,
                                 Pinning pinning)
    : session_(session), logged_kind_(logged_kind), pinning_(pinning) {
  DFTH_CHECK(session_ != nullptr);
  if (pinning_ != Pinning::Cross) return;
  // Index the log for tid translation: children per parent in spawn order,
  // and the global order of non-dive dispatches (fork dives re-happen on the
  // simulator's own spawn path, so only queue-served picks are replayed
  // through pick_next).
  for (const Record& r : session_->log().ordered) {
    switch (static_cast<EvKind>(r.kind)) {
      case EvKind::SpawnReg:
        children_of_[r.actor].push_back({r.a, r.b});
        break;
      case EvKind::Dispatch:
        // Fork dives re-happen on the simulator's own spawn path; the
        // deadline flag may ride on a queue-served dispatch, so mask rather
        // than compare against zero.
        if ((r.b & kDispatchForkDive) == 0) dispatch_order_.push_back(r.a);
        break;
      default:
        break;
    }
  }
}

ReplayScheduler::~ReplayScheduler() {
  if (pinning_ == Pinning::Cross) {
    DFTH_LOG_INFO(
        "cross-replay: served %llu of %llu logged dispatches in order "
        "(%llu divergences)",
        static_cast<unsigned long long>(served_in_order_),
        static_cast<unsigned long long>(dispatch_order_.size()),
        static_cast<unsigned long long>(divergences_));
  }
}

bool ReplayScheduler::needs_quota() const {
  switch (logged_kind_) {
    case SchedKind::AsyncDf:
    case SchedKind::ClusteredAdf:
    case SchedKind::DfDeques:
      return true;
    default:
      return false;
  }
}

bool ReplayScheduler::register_thread(Tcb* parent, Tcb* child) {
  if (pinning_ == Pinning::Pin) {
    // The caller gated on this spawn's SpawnReg record, so the head's flags
    // are this child's logged placement. After log exhaustion, free-run as
    // FIFO (no preemption).
    return (session_->spawn_flags_hint(0) & kSpawnPreempt) != 0;
  }
  const std::uint64_t log_parent = parent ? [this, parent] {
    auto it = sim_to_log_.find(parent->id);
    return it == sim_to_log_.end() ? kActorHost : it->second;
  }() : kActorHost;
  auto kids = children_of_.find(log_parent);
  const std::size_t ordinal = next_ordinal_[log_parent]++;
  if (kids == children_of_.end() || ordinal >= kids->second.size()) {
    // The simulated run spawned more children here than the log saw (fault
    // or OOM timing differs across engines) — unmapped, FIFO placement.
    ++divergences_;
    return false;
  }
  const LoggedChild& lc = kids->second[ordinal];
  sim_to_log_[child->id] = lc.tid;
  log_to_sim_[lc.tid] = child->id;
  return (lc.flags & kSpawnPreempt) != 0;
}

void ReplayScheduler::on_ready(Tcb* t, int proc) {
  (void)proc;
  ready_.push_back(t);
  by_tid_[t->id] = std::prev(ready_.end());
}

Tcb* ReplayScheduler::take_ready(std::uint64_t tid) {
  auto it = by_tid_.find(tid);
  if (it == by_tid_.end()) return nullptr;
  Tcb* t = *it->second;
  ready_.erase(it->second);
  by_tid_.erase(it);
  return t;
}

Tcb* ReplayScheduler::pop_fifo(std::uint64_t now, std::uint64_t* earliest) {
  for (auto it = ready_.begin(); it != ready_.end(); ++it) {
    Tcb* t = *it;
    if (t->ready_at_ns <= now) {
      by_tid_.erase(t->id);
      ready_.erase(it);
      return t;
    }
    if (t->ready_at_ns < *earliest) *earliest = t->ready_at_ns;
  }
  return nullptr;
}

Tcb* ReplayScheduler::pick_next(int proc, std::uint64_t now,
                                std::uint64_t* earliest) {
  *earliest = kInf;
  if (pinning_ == Pinning::Pin) {
    if (session_->replay_exhausted()) return pop_fifo(now, earliest);
    std::uint64_t tid = 0;
    std::uint64_t seq = 0;
    if (!session_->head_is(EvKind::Dispatch, lane_actor(proc), &tid, &seq)) {
      // Not this lane's turn — the worker's gate should have prevented the
      // call; treat as a spurious wakeup and let it re-gate.
      return nullptr;
    }
    Tcb* t = take_ready(tid);
    if (t == nullptr) {
      DFTH_LOG_ERROR(
          "replay: log dispatches thread %llu on lane %d (seq %llu) but it "
          "is not in the ready set",
          static_cast<unsigned long long>(tid), proc,
          static_cast<unsigned long long>(seq));
      DFTH_CHECK_MSG(false, "replay diverged: logged dispatch target not ready");
    }
    std::uint64_t victim = 0;
    if (session_->consume_steal(proc, tid, seq, &victim)) ++steals_;
    return t;
  }

  // Cross mode: serve the logged global dispatch order when the mapped
  // thread is ready and eligible at this virtual time; skip entries whose
  // thread already exited on the simulator (its dispatch count differed);
  // otherwise fall back to FIFO so the simulation keeps moving — the skipped
  // head is retried once its thread becomes ready.
  (void)proc;
  while (dispatch_cursor_ < dispatch_order_.size()) {
    const std::uint64_t log_tid = dispatch_order_[dispatch_cursor_];
    auto it = log_to_sim_.find(log_tid);
    if (it == log_to_sim_.end()) break;  // not spawned yet on the simulator
    if (exited_sim_.count(it->second) != 0) {
      ++divergences_;
      ++dispatch_cursor_;
      continue;
    }
    auto rit = by_tid_.find(it->second);
    if (rit == by_tid_.end()) break;  // alive but not ready — run others first
    Tcb* t = *rit->second;
    if (t->ready_at_ns > now) {
      // Ready but in the virtual future: honor simulator causality.
      *earliest = t->ready_at_ns;
      return nullptr;
    }
    ready_.erase(rit->second);
    by_tid_.erase(rit);
    ++dispatch_cursor_;
    ++served_in_order_;
    return t;
  }
  return pop_fifo(now, earliest);
}

void ReplayScheduler::unregister_thread(Tcb* t) {
  // Engines unregister on exit; the thread is normally not in the ready
  // structure by then, but stay safe on divergent paths.
  auto it = by_tid_.find(t->id);
  if (it != by_tid_.end()) {
    ready_.erase(it->second);
    by_tid_.erase(it);
  }
  if (pinning_ == Pinning::Cross) exited_sim_.insert(t->id);
}

std::size_t ReplayScheduler::ready_count() const { return ready_.size(); }

}  // namespace dfth::replay
