// Record/replay session: the gate/commit protocol over the schedule log.
//
// The protocol has one invariant: every ordered decision is committed inside
// the same critical section that serializes it in the live runtime (the
// engine's mu_, a sync primitive's guard_, a Tcb's join_lock, the fault
// injector's mu_, or the session's own tid-order lock), and every such
// section is entered through a gate taken while holding NO instrumented
// lock.
//
//   Record:  gate() is a no-op; commit() stamps the decision with the next
//            global seq (fetched inside the section, so seq order is a valid
//            linearization: same-lock commits are ordered by section order,
//            same-actor commits by program order, and concurrent commits
//            under different locks touch disjoint state).
//   Replay:  gate(actor) blocks until the log's next ordered record belongs
//            to `actor` — admission control, so the recorded winner of every
//            lock race wins again. commit() then verifies the decision's
//            payload against the head record, advances the cursor and wakes
//            the next gated actor. Any mismatch is a diagnosed divergence
//            abort, and no cursor progress within kStallNs is a diagnosed
//            stall — never a hang or silent drift.
//
// Deadlock-freedom of nested gates (e.g. CondVar::wait holds its guard_
// while the inner Mutex::unlock gates): every record between two commits of
// a section's owner was recorded while the owner held that section's lock,
// so it cannot need the lock — its actor proceeds in replay, the cursor
// reaches the owner's next record, and the owner resumes. Induction from
// cursor 0 gives global progress.
//
// When the log is exhausted (including a truncated abort-time log) every
// gate opens and the run free-runs to completion — partial logs degrade
// gracefully instead of wedging the runtime.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "replay/log.h"
#include "resil/faults.h"

namespace dfth {
struct RuntimeOptions;
}

namespace dfth::replay {

enum class Mode : std::uint8_t {
  Record,       ///< append every decision; save on finish (or abort)
  Replay,       ///< same engine: pin every decision to the log
  CrossReplay,  ///< other engine: no pinning; ReplayScheduler maps the log
};

/// Sync-section op codes (Record.b of EvKind::Sync). One code per
/// guard_-serialized section in runtime/sync.cpp.
enum class SyncOp : std::uint64_t {
  MutexLock = 1,
  MutexTryLockFor,
  MutexTryLock,
  MutexUnlock,
  CvWait,
  CvTimedWait,
  CvSignal,
  CvBroadcast,
  SemAcquire,
  SemTryAcquire,
  SemTryAcquireFor,
  SemRelease,
  BarrierArrive,
  RwRdLock,
  RwTryRdLock,
  RwRdUnlock,
  RwWrLock,
  RwTryWrLock,
  RwWrUnlock,
  OnceCall,
};

class Session {
 public:
  /// Recording session: `lanes` writer lanes (nprocs workers + 1 external).
  /// The header is filled from `opts` by the caller (api.cpp) so this layer
  /// stays ignorant of RuntimeOptions' full shape.
  static std::unique_ptr<Session> start_record(const LogHeader& header, int lanes,
                                               std::string path);

  /// Replaying session over a loaded log (Replay or CrossReplay per the
  /// engine the run is about to use).
  static std::unique_ptr<Session> start_replay(LoadedLog log, Mode mode,
                                               std::string path);

  ~Session();

  Mode mode() const { return mode_; }
  /// True when this session pins runtime decisions (Record or Replay —
  /// e.g. Once::call must take its instrumented slow path).
  bool pins() const { return mode_ != Mode::CrossReplay; }

  enum class Turn { Mine, Free };

  /// Replay: block until the next ordered record belongs to `actor`
  /// (Turn::Mine) or the log is exhausted (Turn::Free). Record/CrossReplay:
  /// immediate Turn::Mine. Call with no instrumented lock held (nested sync
  /// sections excepted — see file comment).
  Turn gate(std::uint64_t actor);

  /// Record: append. Replay: verify against the head record and advance.
  /// Call inside the decision's critical section.
  void commit(EvKind kind, std::uint64_t actor, std::uint64_t a, std::uint64_t b);

  /// TidAlloc: gate + serialize + fetch + commit in one step, so thread-id
  /// assignment order is itself a logged decision (next_tid_ alone is a
  /// racy atomic the log could not otherwise reproduce).
  std::uint64_t alloc_tid(std::atomic<std::uint64_t>& next, std::uint64_t actor);

  /// Sync section commit: translates the primitive's address to a stable
  /// dense object id (assigned in first-use order when recording, bound
  /// positionally when replaying — addresses themselves never match across
  /// processes).
  void commit_sync(std::uint64_t actor, const void* obj, SyncOp op);

  /// Drops a destroyed primitive's address→id binding. The allocator can
  /// recycle the address within the same run (arena-per-phase apps destroy
  /// a whole tree of mutexes and rebuild at the same spot); a stale entry
  /// would name the new object with its corpse's id, and since the two runs
  /// recycle memory in different orders, record and replay would conflate
  /// *different* pairs of objects — a binding divergence with no real
  /// schedule difference behind it.
  void forget_sync(const void* obj);

  /// Steal annotation (never gated, never advances the cursor). Replay
  /// consumption happens in ReplayScheduler via consume_steal().
  void annotate_steal(int lane, std::uint64_t tid, std::uint64_t victim);

  /// Cancel-fire annotation: lane expired fiber `tid`'s deadline at a
  /// dispatch. Diagnostics only (dfth-replay event counts); the pinned
  /// decision is the Dispatch record's kDispatchDeadline flag.
  void annotate_cancel_fire(int lane, std::uint64_t tid);

  /// Replay: pop lane's next recorded steal if it names `tid` and was logged
  /// before `before_seq` (the Dispatch about to be served). Returns true and
  /// the victim on a match.
  bool consume_steal(int lane, std::uint64_t tid, std::uint64_t before_seq,
                     std::uint64_t* victim);

  /// Replay: non-blocking head peek — true when the next ordered record is
  /// {kind, actor}; fills *a (and *seq / *b when non-null). Timer/bound-
  /// waiter polling, ReplayScheduler's dispatch serving, and the engines'
  /// recorded-Dispatch-flags reads (deadline expiry).
  bool head_is(EvKind kind, std::uint64_t actor, std::uint64_t* a,
               std::uint64_t* seq = nullptr, std::uint64_t* b = nullptr) const;

  /// Replay: every ordered record has been consumed — free-run from here.
  bool replay_exhausted() const;

  /// Replay: index of the next ordered record to be committed (diagnostics).
  std::size_t cursor() const {
    std::lock_guard<std::mutex> lk(cursor_mu_);
    return cursor_;
  }

  /// Replay: one-line cursor + next-decision summary for the flight
  /// recorder (where the schedule wedged when an abort interrupts a
  /// replay). Empty for Record/CrossReplay sessions.
  std::string position_summary() const;

  /// Replay: flags of the head SpawnReg record (ReplayScheduler's
  /// register_thread answer). Falls back to `fallback` when not replaying or
  /// the head is not a SpawnReg.
  std::uint64_t spawn_flags_hint(std::uint64_t fallback) const;

  /// Record: write the log file (clean_end flag set). Idempotent with the
  /// abort-time flush — whichever runs first wins the clean_end marker.
  bool finish_record(bool clean, std::string* error);

  /// Best-effort in-flight flush for abort paths (watchdog dumps, SIGABRT).
  /// Lane buffers are snapshotted with try_lock so a crash inside commit()
  /// cannot self-deadlock; the written file is internally consistent
  /// (checksummed) but marked clean_end = 0.
  void flush_partial();

  const LogHeader& header() const { return header_; }
  const std::string& path() const { return path_; }
  const LoadedLog& log() const { return log_; }
  /// Fault plan reconstructed from the log header, or nullptr when the
  /// recorded run armed no plan through RuntimeOptions.
  const resil::FaultPlan* embedded_plan() const;

 private:
  Session(Mode mode, std::string path);

  void divergence(const char* what, EvKind kind, std::uint64_t actor,
                  std::uint64_t a, std::uint64_t b) const;

  struct LaneBuf {
    std::mutex mu;
    std::vector<Record> records;
  };

  Mode mode_;
  std::string path_;
  LogHeader header_{};
  resil::FaultPlan plan_{};
  bool has_plan_ = false;

  // -- record state ----------------------------------------------------------
  std::atomic<std::uint64_t> seq_{0};
  std::vector<std::unique_ptr<LaneBuf>> lanes_;
  std::mutex tid_order_mu_;  ///< serializes {fetch tid, commit} in alloc_tid
  std::mutex obj_mu_;
  std::unordered_map<const void*, std::uint64_t> obj_ids_;
  std::uint64_t next_obj_id_ = 1;
  std::atomic<bool> flushed_{false};

  // -- replay state ----------------------------------------------------------
  LoadedLog log_;
  mutable std::mutex cursor_mu_;
  mutable std::condition_variable cursor_cv_;
  std::size_t cursor_ = 0;
  std::uint64_t last_advance_ns_ = 0;  ///< steady clock at last cursor move
  std::unordered_map<std::uint64_t, std::deque<Record>> steal_fifos_;  ///< by lane actor
  std::mutex steal_mu_;
};

/// The installed session, or nullptr. Installed by api.cpp around a run;
/// read from hot paths with a relaxed atomic (same discipline as
/// obs::tracer()).
Session* active();
void set_active(Session* s);

/// Binds the calling kernel thread to a writer lane (workers: worker id).
/// Unbound threads (host, supervisor, bound fibers) write to the shared
/// external lane, the last one.
void bind_lane(int lane);

/// Actor id for the calling context: current fiber's tid, else kActorHost.
std::uint64_t self_actor();

/// True when an installed session pins runtime decisions (Record or Replay).
/// Code whose control flow reads concurrently-mutated state outside any
/// instrumented critical section (optimistic lock-free descents and similar)
/// is unreplayable by construction — when this returns true it must take a
/// lock-ordered equivalent so the schedule log captures every decision.
bool pinned();

/// True when an installed session is in strict (same-engine) Replay and the
/// ordered log still has records to serve. Code with side-effecting raced
/// operations (an MPSC pop consumes an element; an admission CAS reserves
/// bytes) consults this to *pre-read* the recorded outcome via observe_u64
/// before performing — or skipping — the live operation.
bool pinned_active();

/// Pins a raced read. Record (Real engine only): commits {Observe, actor,
/// live, site} and returns `live`. Replay: gates, verifies the head record's
/// site, commits and returns the *recorded* value — control flow that
/// branches on the result re-takes the recorded path even when the live
/// value raced differently. CrossReplay, no session, log exhausted, or Sim
/// engine (virtual time is already deterministic): passthrough of `live`.
std::uint64_t observe_u64(std::uint64_t site, std::uint64_t live);

}  // namespace dfth::replay
