#include "replay/session.h"

#include <chrono>
#include <csignal>

#include "runtime/engine.h"
#include "threads/tcb.h"
#include "util/check.h"
#include "util/log.h"

namespace dfth::replay {
namespace {

// Replay abort threshold: no cursor progress for this long means the run has
// diverged into a schedule the log cannot drive (or a fiber is stuck outside
// any instrumented section). Abort with the head record rather than hang.
constexpr std::uint64_t kStallNs = 10ull * 1000 * 1000 * 1000;

std::atomic<Session*> g_active{nullptr};
thread_local int g_tls_lane = -1;

// Previous SIGABRT disposition, restored when the recording session dies.
void (*g_prev_abort)(int) = SIG_DFL;

void on_abort(int) {
  // Best-effort: persist the in-flight record log so the abort itself is
  // replayable. abort() re-raises with the default action after we return.
  if (Session* s = g_active.load(std::memory_order_acquire)) s->flush_partial();
}

std::uint64_t steady_now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

Session* active() { return g_active.load(std::memory_order_acquire); }

void set_active(Session* s) { g_active.store(s, std::memory_order_release); }

void bind_lane(int lane) { g_tls_lane = lane; }

bool pinned() {
  Session* s = active();
  return s != nullptr && s->pins();
}

std::uint64_t self_actor() {
  if (Engine* e = engine()) {
    if (Tcb* cur = e->current()) return cur->id;
  }
  return kActorHost;
}

bool pinned_active() {
  Session* s = active();
  return s != nullptr && s->mode() == Mode::Replay && !s->replay_exhausted();
}

std::uint64_t observe_u64(std::uint64_t site, std::uint64_t live) {
  Session* rs = active();
  if (rs == nullptr) return live;
  // Sim runs are deterministic under virtual time and always cross-replay;
  // pinning them would only bloat the log with records CrossReplay ignores.
  Engine* e = engine();
  if (e == nullptr || e->kind() != EngineKind::Real) return live;
  const std::uint64_t actor = self_actor();
  if (rs->mode() == Mode::Replay) {
    if (rs->replay_exhausted()) return live;
    if (rs->gate(actor) == Session::Turn::Mine) {
      std::uint64_t a = 0, seq = 0, b = 0;
      if (rs->head_is(EvKind::Observe, actor, &a, &seq, &b) && b == site) {
        rs->commit(EvKind::Observe, actor, a, site);
        return a;
      }
      // Our turn but the log expected a different event (or a different
      // site): commit the live value so the session diagnoses the
      // divergence and aborts with both sides printed.
      rs->commit(EvKind::Observe, actor, live, site);
      return live;
    }
    // Log exhausted between the check above and the gate: free-run.
    return live;
  }
  // Record appends; CrossReplay's commit() is a no-op.
  rs->commit(EvKind::Observe, actor, live, site);
  return live;
}

Session::Session(Mode mode, std::string path)
    : mode_(mode), path_(std::move(path)) {}

std::unique_ptr<Session> Session::start_record(const LogHeader& header, int lanes,
                                               std::string path) {
  DFTH_CHECK(lanes >= 1);
  auto s = std::unique_ptr<Session>(new Session(Mode::Record, std::move(path)));
  s->header_ = header;
  s->lanes_.reserve(static_cast<std::size_t>(lanes));
  for (int i = 0; i < lanes; ++i) s->lanes_.push_back(std::make_unique<LaneBuf>());
  g_prev_abort = std::signal(SIGABRT, &on_abort);
  return s;
}

std::unique_ptr<Session> Session::start_replay(LoadedLog log, Mode mode,
                                               std::string path) {
  DFTH_CHECK(mode == Mode::Replay || mode == Mode::CrossReplay);
  auto s = std::unique_ptr<Session>(new Session(mode, std::move(path)));
  s->header_ = log.header;
  s->log_ = std::move(log);
  s->last_advance_ns_ = steady_now_ns();
  for (const Record& r : s->log_.annotations) {
    if (r.kind == static_cast<std::uint16_t>(EvKind::Steal)) {
      s->steal_fifos_[r.actor].push_back(r);
    }
  }
  if (s->header_.has_fault_plan) {
    s->has_plan_ = true;
    s->plan_.seed = s->header_.fault_seed;
    for (int i = 0; i < resil::kNumFaultSites && i < kMaxFaultSitesWire; ++i) {
      const SiteSpecWire& w = s->header_.fault_sites[i];
      s->plan_.sites[i].every_nth = w.every_nth;
      s->plan_.sites[i].probability = w.probability;
      s->plan_.sites[i].skip_first = w.skip_first;
      s->plan_.sites[i].max_failures = w.max_failures;
    }
  }
  return s;
}

Session::~Session() {
  if (mode_ == Mode::Record) std::signal(SIGABRT, g_prev_abort);
}

const resil::FaultPlan* Session::embedded_plan() const {
  return has_plan_ ? &plan_ : nullptr;
}

void Session::divergence(const char* what, EvKind kind, std::uint64_t actor,
                         std::uint64_t a, std::uint64_t b) const {
  // Called with cursor_mu_ held; we only read and then abort.
  if (cursor_ < log_.ordered.size()) {
    const Record& h = log_.ordered[cursor_];
    DFTH_LOG_ERROR(
        "replay divergence (%s) at ordered event %zu/%zu of '%s': log has "
        "{seq=%llu kind=%s actor=%llx a=%llu b=%llu}, run performed "
        "{kind=%s actor=%llx a=%llu b=%llu}",
        what, cursor_, log_.ordered.size(), path_.c_str(),
        static_cast<unsigned long long>(h.seq),
        to_string(static_cast<EvKind>(h.kind)),
        static_cast<unsigned long long>(h.actor),
        static_cast<unsigned long long>(h.a),
        static_cast<unsigned long long>(h.b), to_string(kind),
        static_cast<unsigned long long>(actor),
        static_cast<unsigned long long>(a),
        static_cast<unsigned long long>(b));
  }
  DFTH_CHECK_MSG(false, "replay diverged from the recorded schedule");
}

Session::Turn Session::gate(std::uint64_t actor) {
  if (mode_ != Mode::Replay) return Turn::Mine;
  std::unique_lock<std::mutex> lk(cursor_mu_);
  while (cursor_ < log_.ordered.size()) {
    if (log_.ordered[cursor_].actor == actor) return Turn::Mine;
    if (cursor_cv_.wait_for(lk, std::chrono::milliseconds(100)) ==
        std::cv_status::timeout) {
      if (steady_now_ns() - last_advance_ns_ > kStallNs &&
          cursor_ < log_.ordered.size()) {
        const Record& h = log_.ordered[cursor_];
        DFTH_LOG_ERROR(
            "replay stalled at ordered event %zu/%zu of '%s': waiting actor "
            "%llx, but the log's next decision is {seq=%llu kind=%s "
            "actor=%llx a=%llu b=%llu} and its actor made no progress",
            cursor_, log_.ordered.size(), path_.c_str(),
            static_cast<unsigned long long>(actor),
            static_cast<unsigned long long>(h.seq),
            to_string(static_cast<EvKind>(h.kind)),
            static_cast<unsigned long long>(h.actor),
            static_cast<unsigned long long>(h.a),
            static_cast<unsigned long long>(h.b));
        DFTH_CHECK_MSG(false, "replay stalled — schedule cannot be driven");
      }
    }
  }
  return Turn::Free;
}

std::string Session::position_summary() const {
  if (mode_ != Mode::Replay) return std::string();
  std::lock_guard<std::mutex> lk(cursor_mu_);
  char buf[224];
  if (cursor_ >= log_.ordered.size()) {
    std::snprintf(buf, sizeof(buf),
                  "ordered log exhausted (%zu events) — was free-running",
                  log_.ordered.size());
    return buf;
  }
  const Record& h = log_.ordered[cursor_];
  std::snprintf(
      buf, sizeof(buf),
      "cursor at ordered event %zu/%zu; next decision {seq=%llu kind=%s "
      "actor=%llx a=%llu b=%llu}",
      cursor_, log_.ordered.size(),
      static_cast<unsigned long long>(h.seq),
      to_string(static_cast<EvKind>(h.kind)),
      static_cast<unsigned long long>(h.actor),
      static_cast<unsigned long long>(h.a),
      static_cast<unsigned long long>(h.b));
  return buf;
}

void Session::commit(EvKind kind, std::uint64_t actor, std::uint64_t a,
                     std::uint64_t b) {
  if (mode_ == Mode::Record) {
    const int lane = (g_tls_lane >= 0 &&
                      g_tls_lane < static_cast<int>(lanes_.size()))
                         ? g_tls_lane
                         : static_cast<int>(lanes_.size()) - 1;
    LaneBuf& buf = *lanes_[static_cast<std::size_t>(lane)];
    std::lock_guard<std::mutex> lg(buf.mu);
    Record r;
    r.seq = seq_.fetch_add(1, std::memory_order_relaxed);
    r.actor = actor;
    r.kind = static_cast<std::uint16_t>(kind);
    r.lane = static_cast<std::uint32_t>(lane);
    r.a = a;
    r.b = b;
    buf.records.push_back(r);
    return;
  }
  if (mode_ != Mode::Replay) return;
  std::lock_guard<std::mutex> lk(cursor_mu_);
  if (cursor_ >= log_.ordered.size()) return;  // exhausted: free-run
  const Record& h = log_.ordered[cursor_];
  if (h.actor != actor || h.kind != static_cast<std::uint16_t>(kind)) {
    divergence("event mismatch", kind, actor, a, b);
  }
  if (h.a != a || h.b != b) divergence("payload mismatch", kind, actor, a, b);
  ++cursor_;
  last_advance_ns_ = steady_now_ns();
  cursor_cv_.notify_all();
}

std::uint64_t Session::alloc_tid(std::atomic<std::uint64_t>& next,
                                 std::uint64_t actor) {
  if (mode_ == Mode::CrossReplay) return next++;
  gate(actor);
  std::lock_guard<std::mutex> lg(tid_order_mu_);
  const std::uint64_t tid = next++;
  commit(EvKind::TidAlloc, actor, tid, 0);
  return tid;
}

void Session::commit_sync(std::uint64_t actor, const void* obj, SyncOp op) {
  if (mode_ == Mode::Record) {
    std::uint64_t id;
    {
      std::lock_guard<std::mutex> lg(obj_mu_);
      auto it = obj_ids_.find(obj);
      if (it == obj_ids_.end()) {
        id = next_obj_id_++;
        obj_ids_.emplace(obj, id);
      } else {
        id = it->second;
      }
    }
    commit(EvKind::Sync, actor, id, static_cast<std::uint64_t>(op));
    return;
  }
  if (mode_ != Mode::Replay) return;
  std::lock_guard<std::mutex> lk(cursor_mu_);
  if (cursor_ >= log_.ordered.size()) return;
  const Record& h = log_.ordered[cursor_];
  if (h.actor != actor || h.kind != static_cast<std::uint16_t>(EvKind::Sync)) {
    divergence("sync event mismatch", EvKind::Sync, actor, 0,
               static_cast<std::uint64_t>(op));
  }
  {
    // Positional address binding: the replay run's object addresses differ
    // from the recorded ones; first use under a matching head adopts the
    // logged id, later uses must keep it.
    std::lock_guard<std::mutex> lg(obj_mu_);
    auto it = obj_ids_.find(obj);
    if (it == obj_ids_.end()) {
      obj_ids_.emplace(obj, h.a);
    } else if (it->second != h.a) {
      divergence("sync object binding", EvKind::Sync, actor, it->second,
                 static_cast<std::uint64_t>(op));
    }
  }
  if (h.b != static_cast<std::uint64_t>(op)) {
    divergence("sync op mismatch", EvKind::Sync, actor, h.a,
               static_cast<std::uint64_t>(op));
  }
  ++cursor_;
  last_advance_ns_ = steady_now_ns();
  cursor_cv_.notify_all();
}

void Session::forget_sync(const void* obj) {
  std::lock_guard<std::mutex> lg(obj_mu_);
  obj_ids_.erase(obj);
}

void Session::annotate_steal(int lane, std::uint64_t tid, std::uint64_t victim) {
  if (mode_ != Mode::Record) return;
  const int idx = (lane >= 0 && lane < static_cast<int>(lanes_.size()))
                      ? lane
                      : static_cast<int>(lanes_.size()) - 1;
  LaneBuf& buf = *lanes_[static_cast<std::size_t>(idx)];
  std::lock_guard<std::mutex> lg(buf.mu);
  Record r;
  r.seq = seq_.fetch_add(1, std::memory_order_relaxed);
  r.actor = lane_actor(lane);
  r.kind = static_cast<std::uint16_t>(EvKind::Steal);
  r.flags = kFlagAnnotation;
  r.lane = static_cast<std::uint32_t>(idx);
  r.a = tid;
  r.b = victim;
  buf.records.push_back(r);
}

void Session::annotate_cancel_fire(int lane, std::uint64_t tid) {
  if (mode_ != Mode::Record) return;
  const int idx = (lane >= 0 && lane < static_cast<int>(lanes_.size()))
                      ? lane
                      : static_cast<int>(lanes_.size()) - 1;
  LaneBuf& buf = *lanes_[static_cast<std::size_t>(idx)];
  std::lock_guard<std::mutex> lg(buf.mu);
  Record r;
  r.seq = seq_.fetch_add(1, std::memory_order_relaxed);
  r.actor = lane_actor(lane);
  r.kind = static_cast<std::uint16_t>(EvKind::CancelFire);
  r.flags = kFlagAnnotation;
  r.lane = static_cast<std::uint32_t>(idx);
  r.a = tid;
  r.b = 0;
  buf.records.push_back(r);
}

bool Session::consume_steal(int lane, std::uint64_t tid, std::uint64_t before_seq,
                            std::uint64_t* victim) {
  if (mode_ != Mode::Replay) return false;
  std::lock_guard<std::mutex> lg(steal_mu_);
  auto it = steal_fifos_.find(lane_actor(lane));
  if (it == steal_fifos_.end() || it->second.empty()) return false;
  const Record& front = it->second.front();
  if (front.seq >= before_seq || front.a != tid) return false;
  if (victim != nullptr) *victim = front.b;
  it->second.pop_front();
  return true;
}

bool Session::head_is(EvKind kind, std::uint64_t actor, std::uint64_t* a,
                      std::uint64_t* seq, std::uint64_t* b) const {
  if (mode_ != Mode::Replay) return false;
  std::lock_guard<std::mutex> lk(cursor_mu_);
  if (cursor_ >= log_.ordered.size()) return false;
  const Record& h = log_.ordered[cursor_];
  if (h.kind != static_cast<std::uint16_t>(kind) || h.actor != actor) return false;
  if (a != nullptr) *a = h.a;
  if (seq != nullptr) *seq = h.seq;
  if (b != nullptr) *b = h.b;
  return true;
}

bool Session::replay_exhausted() const {
  if (mode_ != Mode::Replay) return true;
  std::lock_guard<std::mutex> lk(cursor_mu_);
  return cursor_ >= log_.ordered.size();
}

std::uint64_t Session::spawn_flags_hint(std::uint64_t fallback) const {
  if (mode_ != Mode::Replay) return fallback;
  std::lock_guard<std::mutex> lk(cursor_mu_);
  if (cursor_ >= log_.ordered.size()) return fallback;
  const Record& h = log_.ordered[cursor_];
  if (h.kind != static_cast<std::uint16_t>(EvKind::SpawnReg)) return fallback;
  return h.b;
}

bool Session::finish_record(bool clean, std::string* error) {
  if (mode_ != Mode::Record) return true;
  if (flushed_.exchange(true, std::memory_order_acq_rel)) {
    // An abort-path flush already persisted the log.
    return true;
  }
  header_.clean_end = clean ? 1 : 0;
  std::vector<std::vector<Record>> blocks;
  blocks.reserve(lanes_.size());
  for (auto& lane : lanes_) {
    std::lock_guard<std::mutex> lg(lane->mu);
    blocks.push_back(lane->records);
  }
  return save_log(path_, header_, blocks, error);
}

void Session::flush_partial() {
  if (mode_ != Mode::Record) return;
  if (flushed_.exchange(true, std::memory_order_acq_rel)) return;
  header_.clean_end = 0;
  std::vector<std::vector<Record>> blocks;
  blocks.reserve(lanes_.size());
  for (auto& lane : lanes_) {
    // try_lock: the aborting thread may be inside commit() on this very
    // lane; an unsynchronized snapshot beats a self-deadlock in the abort
    // handler, and the checksum keeps the written file internally
    // consistent either way.
    const bool locked = lane->mu.try_lock();
    blocks.push_back(lane->records);
    if (locked) lane->mu.unlock();
  }
  std::string error;
  if (!save_log(path_, header_, blocks, &error)) {
    DFTH_LOG_WARN("replay: abort-time log flush failed: %s", error.c_str());
  } else {
    DFTH_LOG_WARN("replay: in-flight schedule log flushed to %s", path_.c_str());
  }
}

}  // namespace dfth::replay
