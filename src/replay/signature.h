// Determinism signature: the schedule-dependent RunStats counters folded
// into one comparable line. A record→replay pair that reproduced the same
// schedule produces byte-identical signatures; CI and the property tests
// diff these instead of eyeballing whole stat dumps.
//
// Deliberately excluded:
//   - elapsed_us (wall clock is never pinned),
//   - heap_peak / oom_preemptions (a *genuine* allocator OOM depends on the
//     host heap, which the log does not control),
//   - stacks_fresh / stacks_reused (the stack pool's internal free-list
//     order is not an ordered decision — reuse vs. fresh can differ while
//     the schedule is identical).
#pragma once

#include <string>

#include "runtime/run_stats.h"

namespace dfth::replay {

inline std::string determinism_signature(const RunStats& s) {
  std::string sig;
  auto field = [&sig](const char* key, std::uint64_t v) {
    if (!sig.empty()) sig += ' ';
    sig += key;
    sig += '=';
    sig += std::to_string(v);
  };
  field("threads", s.threads_created);
  field("dummies", s.dummy_threads);
  field("live", static_cast<std::uint64_t>(s.max_live_threads));
  field("dispatches", s.dispatches);
  field("quota", s.quota_preemptions);
  field("steals", s.steals);
  field("inline", s.inline_runs);
  field("timeouts", s.sync_timeouts);
  field("faults", s.faults_injected);
  field("expired", s.deadline_expirations);
  return sig;
}

}  // namespace dfth::replay
