// Schedule-pinned Scheduler implementations for replay runs.
//
// Pin mode (RealEngine replay): the policy scheduler is replaced entirely —
// pick_next serves exactly the logged Dispatch decision for the asking lane.
// Replaying the *outcome* rather than re-running the policy sidesteps the
// one genuinely unpinnable input a policy has: WorkSteal's victim RNG is
// advanced by failed picks, whose count depends on wall-clock idle timing
// the log cannot (and should not) pin. Logged steals are consumed as
// annotations so RunStats::steals reproduces.
//
// Cross mode (SimEngine re-examination of a RealEngine log): the log's tids
// are translated through (parent, spawn-ordinal) — each thread's spawns
// happen in its own program order on both engines, so ordinals line up even
// though raw tids do not. pick_next serves the logged global dispatch order
// whenever the mapped thread is ready; when the simulator's own causality
// disagrees (virtual time, different OOM/fault timing) it falls back to FIFO
// and keeps a divergence count instead of wedging. Constructed directly, not
// through make_scheduler, so DFTH_VALIDATE's AuditedScheduler never audits a
// pinned schedule against a policy it does not implement.
//
// This header is only compiled into the build when -DDFTH_REPLAY is ON (the
// source list gates on the option); everything else reaches replay through
// replay/hooks.h.
#pragma once

#include <cstdint>
#include <list>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/scheduler.h"
#include "replay/session.h"

namespace dfth::replay {

class ReplayScheduler final : public Scheduler {
 public:
  enum class Pinning { Pin, Cross };

  ReplayScheduler(Session* session, SchedKind logged_kind, Pinning pinning);
  ~ReplayScheduler() override;

  SchedKind kind() const override { return logged_kind_; }
  bool needs_quota() const override;

  bool register_thread(Tcb* parent, Tcb* child) override;
  void on_ready(Tcb* t, int proc) override;
  Tcb* pick_next(int proc, std::uint64_t now, std::uint64_t* earliest) override;
  void unregister_thread(Tcb* t) override;
  std::size_t ready_count() const override;

  /// Steals consumed from the log's annotations (Pin mode). Only WorkSteal
  /// feeds RunStats::steals in live runs, so other kinds report 0 to keep
  /// replayed stats identical to recorded ones.
  std::uint64_t steal_count() const {
    return logged_kind_ == SchedKind::WorkSteal ? steals_ : 0;
  }
  /// Cross mode: decisions the simulator could not serve in logged order.
  std::uint64_t divergences() const { return divergences_; }

 private:
  Tcb* take_ready(std::uint64_t tid);
  Tcb* pop_fifo(std::uint64_t now, std::uint64_t* earliest);

  Session* session_;
  SchedKind logged_kind_;
  Pinning pinning_;

  // Ready structure: FIFO order for fallback picks, tid index for pinned
  // picks. Engines call every method with their scheduler lock held.
  std::list<Tcb*> ready_;
  std::unordered_map<std::uint64_t, std::list<Tcb*>::iterator> by_tid_;

  std::uint64_t steals_ = 0;
  std::uint64_t divergences_ = 0;

  // -- Cross mode ------------------------------------------------------------
  struct LoggedChild {
    std::uint64_t tid = 0;
    std::uint64_t flags = 0;
  };
  std::unordered_map<std::uint64_t, std::vector<LoggedChild>> children_of_;
  std::unordered_map<std::uint64_t, std::size_t> next_ordinal_;  ///< by log tid
  std::unordered_map<std::uint64_t, std::uint64_t> sim_to_log_;
  std::unordered_map<std::uint64_t, std::uint64_t> log_to_sim_;
  std::unordered_set<std::uint64_t> exited_sim_;
  std::vector<std::uint64_t> dispatch_order_;  ///< logged non-dive dispatch tids
  std::size_t dispatch_cursor_ = 0;
  std::uint64_t served_in_order_ = 0;
};

}  // namespace dfth::replay
