// Schedule-log reader/writer. This translation unit is the replay layer's
// designated file-I/O sink (tools/lint.sh audits every other replay file for
// stdio usage).
#include "replay/log.h"

#include <algorithm>
#include <cstdarg>
#include <cstdio>
#include <cstring>
#include <memory>

namespace dfth::replay {
namespace {

// snprintf into *error; keeps diagnostics one-line and allocation-light.
void set_error(std::string* error, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));

void set_error(std::string* error, const char* fmt, ...) {
  if (error == nullptr) return;
  char buf[512];
  va_list ap;
  va_start(ap, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, ap);
  va_end(ap);
  *error = buf;
}

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};

}  // namespace

const char* to_string(EvKind kind) {
  switch (kind) {
    case EvKind::TidAlloc: return "tid-alloc";
    case EvKind::SpawnReg: return "spawn";
    case EvKind::Dispatch: return "dispatch";
    case EvKind::Requeue: return "requeue";
    case EvKind::Wake: return "wake";
    case EvKind::ExitSched: return "exit-sched";
    case EvKind::ExitJoin: return "exit-join";
    case EvKind::Join: return "join";
    case EvKind::Sync: return "sync";
    case EvKind::TimeoutClaim: return "timeout-claim";
    case EvKind::TimeoutReady: return "timeout-ready";
    case EvKind::Fault: return "fault";
    case EvKind::Steal: return "steal";
    case EvKind::QuotaShrink: return "quota-shrink";
    case EvKind::CancelFire: return "cancel-fire";
    case EvKind::CancelCheck: return "cancel-check";
    case EvKind::Observe: return "observe";
    case EvKind::kCount: break;
  }
  return "?";
}

std::uint64_t checksum_record(std::uint64_t h, const Record& r) {
  unsigned char bytes[sizeof(Record)];
  std::memcpy(bytes, &r, sizeof(Record));
  for (unsigned char byte : bytes) {
    h ^= byte;
    h *= 0x100000001b3ull;  // FNV-1a prime
  }
  return h;
}

bool save_log(const std::string& path, LogHeader header,
              const std::vector<std::vector<Record>>& lane_records,
              std::string* error) {
  std::memcpy(header.magic, kLogMagic, sizeof(kLogMagic));
  header.version = kLogVersion;
  header.lanes = static_cast<std::uint32_t>(lane_records.size());
  header.event_count = 0;
  std::uint64_t sum = kChecksumSeed;
  for (const auto& records : lane_records) {
    header.event_count += records.size();
    for (const Record& r : records) sum = checksum_record(sum, r);
  }
  header.checksum = sum;

  std::unique_ptr<std::FILE, FileCloser> f(std::fopen(path.c_str(), "wb"));
  if (!f) {
    set_error(error, "replay log: cannot open '%s' for writing", path.c_str());
    return false;
  }
  if (std::fwrite(&header, sizeof(header), 1, f.get()) != 1) {
    set_error(error, "replay log: short write of header to '%s'", path.c_str());
    return false;
  }
  for (std::size_t lane = 0; lane < lane_records.size(); ++lane) {
    LaneBlockHeader block;
    block.lane = static_cast<std::uint32_t>(lane);
    block.count = lane_records[lane].size();
    if (std::fwrite(&block, sizeof(block), 1, f.get()) != 1 ||
        (block.count != 0 &&
         std::fwrite(lane_records[lane].data(), sizeof(Record), lane_records[lane].size(),
                     f.get()) != lane_records[lane].size())) {
      set_error(error, "replay log: short write of lane %zu to '%s'", lane, path.c_str());
      return false;
    }
  }
  if (std::fflush(f.get()) != 0) {
    set_error(error, "replay log: flush of '%s' failed", path.c_str());
    return false;
  }
  return true;
}

bool load_log(const std::string& path, LoadedLog* out, std::string* error) {
  std::unique_ptr<std::FILE, FileCloser> f(std::fopen(path.c_str(), "rb"));
  if (!f) {
    set_error(error, "replay log: cannot open '%s'", path.c_str());
    return false;
  }
  LogHeader& header = out->header;
  if (std::fread(&header, sizeof(header), 1, f.get()) != 1) {
    set_error(error, "replay log: '%s' is shorter than a log header (%zu bytes)",
              path.c_str(), sizeof(LogHeader));
    return false;
  }
  if (std::memcmp(header.magic, kLogMagic, sizeof(kLogMagic)) != 0) {
    set_error(error, "replay log: '%s' has no DFTHLOG1 magic — not a schedule log",
              path.c_str());
    return false;
  }
  if (header.version != kLogVersion) {
    set_error(error, "replay log: '%s' is format version %u, this build reads %u",
              path.c_str(), header.version, kLogVersion);
    return false;
  }

  out->ordered.clear();
  out->annotations.clear();
  std::uint64_t sum = kChecksumSeed;
  std::uint64_t total = 0;
  std::vector<Record> lane_buf;
  for (std::uint32_t lane = 0; lane < header.lanes; ++lane) {
    LaneBlockHeader block;
    if (std::fread(&block, sizeof(block), 1, f.get()) != 1) {
      set_error(error, "replay log: '%s' truncated at lane block %u of %u",
                path.c_str(), lane, header.lanes);
      return false;
    }
    lane_buf.resize(block.count);
    if (block.count != 0 &&
        std::fread(lane_buf.data(), sizeof(Record), block.count, f.get()) != block.count) {
      set_error(error,
                "replay log: '%s' truncated inside lane %u (%llu records promised)",
                path.c_str(), block.lane,
                static_cast<unsigned long long>(block.count));
      return false;
    }
    std::uint64_t prev_seq = 0;
    bool first_in_lane = true;
    for (const Record& r : lane_buf) {
      sum = checksum_record(sum, r);
      if (r.kind >= static_cast<std::uint16_t>(EvKind::kCount)) {
        set_error(error, "replay log: '%s' lane %u has unknown event kind %u (seq %llu)",
                  path.c_str(), block.lane, r.kind,
                  static_cast<unsigned long long>(r.seq));
        return false;
      }
      // seq must ascend within a lane block (single writer per lane).
      if (!first_in_lane && r.seq <= prev_seq) {
        set_error(error, "replay log: '%s' lane %u seq not ascending (%llu after %llu)",
                  path.c_str(), block.lane, static_cast<unsigned long long>(r.seq),
                  static_cast<unsigned long long>(prev_seq));
        return false;
      }
      first_in_lane = false;
      prev_seq = r.seq;
      ++total;
      if ((r.flags & kFlagAnnotation) != 0) {
        out->annotations.push_back(r);
      } else {
        out->ordered.push_back(r);
      }
    }
  }
  if (total != header.event_count) {
    set_error(error, "replay log: '%s' holds %llu records but header promised %llu",
              path.c_str(), static_cast<unsigned long long>(total),
              static_cast<unsigned long long>(header.event_count));
    return false;
  }
  if (sum != header.checksum) {
    set_error(error,
              "replay log: '%s' checksum mismatch (%016llx computed, %016llx stored) — "
              "file is corrupt",
              path.c_str(), static_cast<unsigned long long>(sum),
              static_cast<unsigned long long>(header.checksum));
    return false;
  }
  auto by_seq = [](const Record& x, const Record& y) { return x.seq < y.seq; };
  std::stable_sort(out->ordered.begin(), out->ordered.end(), by_seq);
  std::stable_sort(out->annotations.begin(), out->annotations.end(), by_seq);
  return true;
}

}  // namespace dfth::replay
