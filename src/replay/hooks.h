// Record/replay hook macros, compiled to ((void)0) when -DDFTH_REPLAY is
// OFF — the same zero-cost discipline as obs/trace.h and obs/profile.h
// (tests/replay static_assert the OFF expansion).
//
// Placement contract (see replay/session.h for the protocol):
//  * DFTH_REPLAY_GATE / _GATE_SELF run while the caller holds no
//    instrumented lock (nested sync sections excepted — proven safe there).
//  * DFTH_REPLAY_COMMIT / _SYNC_COMMIT / _FAULT_COMMIT run inside the
//    critical section that serializes the decision being logged.
//  * DFTH_REPLAY_STEAL is an annotation: recorded inside the scheduler's
//    pick (itself inside the dispatching lane's section), verified on replay
//    by ReplayScheduler — never gated on.
#pragma once

#if DFTH_REPLAY

#include "replay/session.h"

#define DFTH_REPLAY_BIND_LANE(lane) ::dfth::replay::bind_lane(lane)

#define DFTH_REPLAY_GATE(actor)                              \
  do {                                                       \
    if (auto* dfth_rs_ = ::dfth::replay::active()) dfth_rs_->gate(actor); \
  } while (0)

#define DFTH_REPLAY_GATE_SELF()                              \
  do {                                                       \
    if (auto* dfth_rs_ = ::dfth::replay::active())           \
      dfth_rs_->gate(::dfth::replay::self_actor());          \
  } while (0)

#define DFTH_REPLAY_COMMIT(kind, actor, a, b)                \
  do {                                                       \
    if (auto* dfth_rs_ = ::dfth::replay::active())           \
      dfth_rs_->commit((kind), (actor), (a), (b));           \
  } while (0)

#define DFTH_REPLAY_SYNC_GATE() DFTH_REPLAY_GATE_SELF()

#define DFTH_REPLAY_SYNC_COMMIT(obj, op)                     \
  do {                                                       \
    if (auto* dfth_rs_ = ::dfth::replay::active())           \
      dfth_rs_->commit_sync(::dfth::replay::self_actor(), (obj), (op)); \
  } while (0)

#define DFTH_REPLAY_SYNC_DESTROY(obj)                        \
  do {                                                       \
    if (auto* dfth_rs_ = ::dfth::replay::active())           \
      dfth_rs_->forget_sync(obj);                            \
  } while (0)

#define DFTH_REPLAY_FAULT_GATE() DFTH_REPLAY_GATE_SELF()

#define DFTH_REPLAY_FAULT_COMMIT(site, injected)             \
  do {                                                       \
    if (auto* dfth_rs_ = ::dfth::replay::active())           \
      dfth_rs_->commit(::dfth::replay::EvKind::Fault,        \
                       ::dfth::replay::self_actor(),         \
                       static_cast<std::uint64_t>(site),     \
                       (injected) ? 1u : 0u);                \
  } while (0)

#define DFTH_REPLAY_STEAL(lane, tid, victim)                 \
  do {                                                       \
    if (auto* dfth_rs_ = ::dfth::replay::active())           \
      dfth_rs_->annotate_steal((lane), (tid), (victim));     \
  } while (0)

#define DFTH_REPLAY_CANCEL_FIRE(lane, tid)                   \
  do {                                                       \
    if (auto* dfth_rs_ = ::dfth::replay::active())           \
      dfth_rs_->annotate_cancel_fire((lane), (tid));         \
  } while (0)

#else  // !DFTH_REPLAY

#include <cstdint>

namespace dfth::replay {
// Function-shaped hooks (serve/server.cpp threads observed values through
// its control flow, which a statement macro cannot express): OFF-mode
// passthroughs matching the session.h declarations.
inline bool pinned() { return false; }
inline bool pinned_active() { return false; }
inline std::uint64_t observe_u64(std::uint64_t /*site*/, std::uint64_t live) {
  return live;
}
}  // namespace dfth::replay

#define DFTH_REPLAY_BIND_LANE(lane) ((void)0)
#define DFTH_REPLAY_GATE(actor) ((void)0)
#define DFTH_REPLAY_GATE_SELF() ((void)0)
#define DFTH_REPLAY_COMMIT(kind, actor, a, b) ((void)0)
#define DFTH_REPLAY_SYNC_GATE() ((void)0)
#define DFTH_REPLAY_SYNC_COMMIT(obj, op) ((void)0)
#define DFTH_REPLAY_SYNC_DESTROY(obj) ((void)0)
#define DFTH_REPLAY_FAULT_GATE() ((void)0)
#define DFTH_REPLAY_FAULT_COMMIT(site, injected) ((void)0)
#define DFTH_REPLAY_STEAL(lane, tid, victim) ((void)0)
#define DFTH_REPLAY_CANCEL_FIRE(lane, tid) ((void)0)

#endif  // DFTH_REPLAY
