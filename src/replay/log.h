// Binary schedule-log format for deterministic record/replay.
//
// A RealEngine run is nondeterministic in exactly the places its shared
// state is serialized: which lane wins the scheduler lock for the next
// dispatch, which fiber's sync operation lands first on a primitive's
// guard, whether a timed wait was claimed by its timer or by a waker, and
// what the fault injector's per-site stream answered. The recorder logs one
// fixed-size record per such decision, stamped with a process-global
// logical clock (`seq`, a single atomic counter fetched while the relevant
// lock is held), so the merged seq order is a valid linearization of every
// recorded run: per-lock order equals section order, and per-actor order
// equals program order.
//
// On disk a log is a fixed header, then one block per writer lane (kernel
// worker, plus a shared "external" lane for the host, the supervisor and
// bound threads) of seq-ascending records, so writers never contend on one
// stream; the loader merges blocks by the seq key. The header embeds enough
// of RuntimeOptions (engine, sched, nprocs, seeds, quota, fault plan) to
// re-create the recorded run, and a checksum so truncation or corruption is
// a diagnosed error, never UB.
//
// This file is stdio-free; the log *writer* (log.cpp) is the replay layer's
// one designated file-I/O sink, mirroring obs/export.cpp and
// resil/watchdog.cpp.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace dfth::replay {

#if DFTH_REPLAY
inline constexpr bool kReplayEnabled = true;
#else
inline constexpr bool kReplayEnabled = false;
#endif

/// Ordered decision kinds (consumed strictly in seq order on replay) plus
/// annotation kinds (per-actor verification streams, never gated on).
enum class EvKind : std::uint16_t {
  TidAlloc = 0,   ///< actor allocated thread id `a` (linearizes next_tid_)
  SpawnReg,       ///< actor registered child `a` with the scheduler; b = flags
  Dispatch,       ///< lane actor dispatched fiber `a`; b = kDispatch* flags
  Requeue,        ///< lane actor re-enqueued preempted/yielded fiber `a`
  Wake,           ///< actor made blocked fiber `a` runnable
  ExitSched,      ///< exiting fiber (actor) left the scheduler; a = own tid
  ExitJoin,       ///< exiting fiber published `finished` under its join lock
  Join,           ///< actor joined child `a`; b = 1 when the joiner blocked
  Sync,           ///< actor's sync-primitive op: a = object id, b = op code
  TimeoutClaim,   ///< timer (or bound waiter) claimed sleeper `a` off its wait list
  TimeoutReady,   ///< timer re-enqueued timed-out fiber `a` with the scheduler
  Fault,          ///< actor probed fault site `a`; b = 1 when injected
  Steal,          ///< annotation: lane actor stole fiber `a` from victim `b`
  QuotaShrink,    ///< actor halved eff_quota_ to `a` on OOM (attempt `b`)
  CancelFire,     ///< annotation: lane actor expired fiber `a`'s deadline at
                  ///< dispatch (the decision itself is pinned by the Dispatch
                  ///< record's kDispatchDeadline flag, not by this record)
  CancelCheck,    ///< actor polled cancel_requested(); a = observed value
  Observe,        ///< actor pinned a raced read (replay::observe_u64):
                  ///< a = observed value, b = site id (kObs*)
  kCount,
};

const char* to_string(EvKind kind);

// -- actor encoding ------------------------------------------------------------
//
// Fibers are identified by their (replay-linearized) thread id. Execution
// lanes, the host thread and the timer supervisor make decisions of their
// own and get reserved encodings well above any plausible tid.

inline constexpr std::uint64_t kActorHost = ~std::uint64_t{0};
inline constexpr std::uint64_t kActorTimer = ~std::uint64_t{1};
inline constexpr std::uint64_t kLaneActorBit = std::uint64_t{1} << 63;

inline std::uint64_t lane_actor(int lane) {
  return kLaneActorBit | static_cast<std::uint64_t>(lane);
}

/// SpawnReg `b` flags.
inline constexpr std::uint64_t kSpawnPreempt = 1;  ///< fork dive: child runs now
inline constexpr std::uint64_t kSpawnBound = 2;    ///< child got a kernel thread
inline constexpr std::uint64_t kSpawnInline = 4;   ///< child ran on the parent's stack

/// Dispatch `b` flags. The deadline bit rides on the Dispatch record (one
/// ordered decision, committed in one critical section) instead of being a
/// separate ordered record: a sibling actor's sync commit could take the seq
/// between two back-to-back commits, and the replaying lane — which may not
/// gate while holding the scheduler lock — would stall on it forever.
inline constexpr std::uint64_t kDispatchForkDive = 1;  ///< parent preempted
inline constexpr std::uint64_t kDispatchDeadline = 2;  ///< cancel token fired here

/// Observe `b` site ids: which raced read a replay::observe_u64 call pinned.
/// Sites make divergence diagnostics readable and let replay verify that the
/// run is replaying the *same* read, not merely one with an equal value.
inline constexpr std::uint64_t kObsClockNs = 1;     ///< dfth::now_ns() (Real)
inline constexpr std::uint64_t kObsServeBase = 16;  ///< serve/server.cpp sites

/// One recorded decision. 40 bytes, written verbatim (the format is
/// host-endian; logs are artifacts of one machine's run, not an interchange
/// format, and the checksum rejects a foreign-endian file).
struct Record {
  std::uint64_t seq = 0;    ///< logical clock: global merge key
  std::uint64_t actor = 0;  ///< deciding fiber tid / lane / host / timer
  std::uint16_t kind = 0;   ///< EvKind
  std::uint16_t flags = 0;  ///< kFlagAnnotation
  std::uint32_t lane = 0;   ///< writer lane (diagnostics only)
  std::uint64_t a = 0;
  std::uint64_t b = 0;
};
static_assert(sizeof(Record) == 40, "log records are fixed 40-byte cells");

inline constexpr std::uint16_t kFlagAnnotation = 1;

/// Wire copy of resil::SiteSpec (resil/faults.h), kept independent so the
/// log format cannot drift when the in-memory struct grows.
struct SiteSpecWire {
  std::uint64_t every_nth = 0;
  double probability = 0.0;
  std::uint64_t skip_first = 0;
  std::uint64_t max_failures = 0;
};

inline constexpr char kLogMagic[8] = {'D', 'F', 'T', 'H', 'L', 'O', 'G', '1'};
inline constexpr std::uint32_t kLogVersion = 2;
inline constexpr int kMaxFaultSitesWire = 8;

struct LogHeader {
  char magic[8] = {};
  std::uint32_t version = 0;
  std::uint32_t engine = 0;        ///< EngineKind of the recorded run
  std::uint32_t sched = 0;         ///< SchedKind
  std::uint32_t nprocs = 0;
  std::uint32_t cluster_size = 0;
  std::uint32_t lanes = 0;         ///< writer-lane blocks that follow
  std::uint64_t seed = 0;          ///< RuntimeOptions::seed (steal RNG etc.)
  std::uint64_t mem_quota = 0;
  std::uint64_t default_stack_size = 0;
  char tag[64] = {};               ///< RuntimeOptions::record_tag (app name)
  std::uint8_t has_fault_plan = 0;
  std::uint8_t clean_end = 0;      ///< 0 = abort-time flush (partial log)
  std::uint8_t pad[6] = {};
  std::uint64_t fault_seed = 0;
  SiteSpecWire fault_sites[kMaxFaultSitesWire] = {};
  std::uint64_t event_count = 0;   ///< records across all lane blocks
  std::uint64_t checksum = 0;      ///< FNV-1a over every record, block order
};

struct LaneBlockHeader {
  std::uint32_t lane = 0;
  std::uint32_t pad = 0;
  std::uint64_t count = 0;
};

/// FNV-1a over a record's bytes, continuing `h` (seed with kChecksumSeed).
inline constexpr std::uint64_t kChecksumSeed = 0xcbf29ce484222325ull;
std::uint64_t checksum_record(std::uint64_t h, const Record& r);

/// A parsed log: the header, the ordered decisions merged across lanes by
/// seq, and the annotation records (Steal) in seq order.
struct LoadedLog {
  LogHeader header;
  std::vector<Record> ordered;
  std::vector<Record> annotations;
};

/// Writes header + per-lane blocks; fills in lanes/event_count/checksum.
/// Returns false with a one-line diagnostic in *error on any I/O failure.
bool save_log(const std::string& path, LogHeader header,
              const std::vector<std::vector<Record>>& lane_records,
              std::string* error);

/// Reads and validates `path`. Every malformation — short file, bad magic,
/// unknown version, truncated lane block, record-count or checksum mismatch
/// — is a false return with a specific diagnostic in *error, never UB.
bool load_log(const std::string& path, LoadedLog* out, std::string* error);

}  // namespace dfth::replay
